package logicallog

import (
	"flag"
	"fmt"
	"math/rand"
	"testing"
)

// seedFlag pins the randomized DB crash trials to one seed so a failure
// reported as "seed N" reproduces with `go test -run TestDBCrashMatrix -seed N`.
var seedFlag = flag.Int64("seed", 0, "pin randomized crash tests to this single seed (0 = full range)")

// TestDBCrashMatrix drives the public API through randomized workloads with
// crashes, mirroring internal/sim but exercising the exported surface: all
// option combinations, custom registered transforms, and the
// Sync/FlushOne/Checkpoint lifecycle.
func TestDBCrashMatrix(t *testing.T) {
	configs := map[string]Options{
		"default":      DefaultOptions(),
		"classic-W":    {WriteGraph: ClassicWriteGraph, Strategy: ShadowFlush, RedoTest: ClassicVSI, LogInstallRecords: true},
		"flush-txn":    {WriteGraph: RefinedWriteGraph, Strategy: FlushTransaction, RedoTest: GeneralizedRSI, LogInstallRecords: true},
		"no-installs":  {WriteGraph: RefinedWriteGraph, Strategy: IdentityWriteBreakup, RedoTest: GeneralizedRSI},
		"physio-basis": {WriteGraph: RefinedWriteGraph, Strategy: IdentityWriteBreakup, RedoTest: ClassicVSI, LogInstallRecords: true, Physiological: true},
	}
	for name, opts := range configs {
		opts := opts
		t.Run(name, func(t *testing.T) {
			if *seedFlag != 0 {
				runDBCrashTrial(t, opts, *seedFlag)
				return
			}
			for seed := int64(1); seed <= 8; seed++ {
				runDBCrashTrial(t, opts, seed)
			}
		})
	}
}

func runDBCrashTrial(t *testing.T, opts Options, seed int64) {
	t.Helper()
	t.Logf("trial seed %d (reproduce with -seed %d)", seed, seed)
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// "concat" chains values across objects so recovery order matters;
	// it must be registered identically pre- and post-crash (same DB
	// instance here, as in a real process restart the app re-registers).
	db.RegisterFunc("chain", func(params []byte, reads map[string][]byte) (map[string][]byte, error) {
		dst := string(params)
		var merged []byte
		for _, id := range []string{"a", "b", "c"} {
			if v, ok := reads[id]; ok {
				merged = append(merged, v...)
			}
		}
		if len(merged) > 64 {
			merged = merged[len(merged)-64:]
		}
		return map[string][]byte{dst: merged}, nil
	})

	rng := rand.New(rand.NewSource(seed))
	objects := []string{"a", "b", "c"}
	for _, id := range objects {
		if err := db.Create(id, []byte(id)); err != nil {
			t.Fatal(err)
		}
	}

	// Shadow the expected state; the trial syncs before crashing, so the
	// recovered database must match the full final state exactly.
	state := map[string][]byte{"a": []byte("a"), "b": []byte("b"), "c": []byte("c")}
	snapshot := func() map[string][]byte {
		out := map[string][]byte{}
		for k, v := range state {
			out[k] = append([]byte(nil), v...)
		}
		return out
	}
	var durable map[string][]byte

	for step := 0; step < 60; step++ {
		x := objects[rng.Intn(len(objects))]
		switch rng.Intn(4) {
		case 0:
			v := []byte(fmt.Sprintf("s%d", step))
			if err := db.Set(x, v); err != nil {
				t.Fatal(err)
			}
			state[x] = v
		case 1:
			src := objects[rng.Intn(len(objects))]
			if src == x {
				src = objects[(rng.Intn(len(objects))+1)%len(objects)]
			}
			if err := db.ApplyLogical("chain", []byte(x), []string{src}, []string{x}); err != nil {
				t.Fatal(err)
			}
			merged := append([]byte(nil), state[src]...)
			if len(merged) > 64 {
				merged = merged[len(merged)-64:]
			}
			state[x] = merged
		case 2:
			if err := db.FlushOne(); err != nil {
				t.Fatal(err)
			}
		default:
			// no-op beat
		}
		if rng.Intn(6) == 0 {
			if err := db.Sync(); err != nil {
				t.Fatal(err)
			}
			durable = snapshot()
		}
		if rng.Intn(15) == 0 {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			durable = snapshot()
		}
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	durable = snapshot()

	db.Crash()
	if _, err := db.Recover(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	for _, id := range objects {
		got, err := db.Get(id)
		if err != nil {
			t.Fatalf("seed %d: %s lost: %v", seed, id, err)
		}
		if string(got) != string(durable[id]) {
			t.Fatalf("seed %d: %s = %q, want %q", seed, id, got, durable[id])
		}
	}
	// Post-recovery, the database keeps working.
	if err := db.Set("a", []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
}
