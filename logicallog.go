// Package logicallog is a redo-recovery engine built on logical logging, a
// from-scratch implementation of Lomet & Tuttle, "Logical Logging to Extend
// Recovery to New Domains" (SIGMOD 1999).
//
// A DB stores opaque byte values under string ids and makes them crash-
// recoverable through a write-ahead log.  Updates are *operations*: besides
// physical writes (value on the log) and physiological updates (one object,
// transformed by a registered function), the engine supports fully logical
// operations that read any set of recoverable objects and write any other —
// logging only ids, function names, and parameters.  For large objects
// (files, application states) this reduces logging cost by orders of
// magnitude; the engine's refined write graph (rW), cache-manager identity
// writes, and generalized recovery-SI REDO test keep the stable database
// recoverable despite the resulting flush-order dependencies.
//
// Basic use:
//
//	db, _ := logicallog.Open(logicallog.DefaultOptions())
//	db.Create("greeting", []byte("hello"))
//	db.RegisterFunc("shout", func(params []byte, reads map[string][]byte) (map[string][]byte, error) {
//		return map[string][]byte{"loud": append(reads["greeting"], params...)}, nil
//	})
//	db.ApplyLogical("shout", []byte("!!!"), []string{"greeting"}, []string{"loud"})
//	db.Flush()
//
// After a crash, Open the DB over the same log device and call Recover.
package logicallog

import (
	"fmt"

	"logicallog/internal/cache"
	"logicallog/internal/core"
	"logicallog/internal/op"
	"logicallog/internal/recovery"
	"logicallog/internal/wal"
	"logicallog/internal/writegraph"
)

// WriteGraphPolicy selects how flush-order dependencies are tracked.
type WriteGraphPolicy uint8

const (
	// RefinedWriteGraph is the paper's rW: unexposed objects leave atomic
	// flush sets, enabling single-object flushing.  The default.
	RefinedWriteGraph WriteGraphPolicy = iota
	// ClassicWriteGraph is the write graph W of Lomet & Tuttle 1995:
	// flush sets only grow.  Provided for comparison.
	ClassicWriteGraph
)

// FlushStrategy selects how multi-object atomic flush sets are handled.
type FlushStrategy uint8

const (
	// IdentityWriteBreakup peels objects out of atomic flush sets with
	// cache-manager identity writes (the paper's Section 4).  The default.
	IdentityWriteBreakup FlushStrategy = iota
	// ShadowFlush writes multi-object sets atomically via shadowing.
	ShadowFlush
	// FlushTransaction writes multi-object sets atomically via a flush
	// transaction (log values, commit, update in place).
	FlushTransaction
)

// RedoTest selects the recovery-time REDO predicate.
type RedoTest uint8

const (
	// GeneralizedRSI combines the installed test with an exposed test via
	// generalized recovery SIs (the paper's Section 5).  The default.
	GeneralizedRSI RedoTest = iota
	// ClassicVSI is the traditional state-identifier test.
	ClassicVSI
	// RedoAll replays every logged operation (safe only for physical-write
	// logs; replays are trial executions that void on error).
	RedoAll
)

// Options configures a DB.
type Options struct {
	// WriteGraph selects the flush-dependency tracking policy.
	WriteGraph WriteGraphPolicy
	// Strategy selects the multi-object flush mechanism.
	Strategy FlushStrategy
	// RedoTest selects the recovery REDO predicate.
	RedoTest RedoTest
	// LogInstallRecords enables installation/flush records, which let the
	// recovery analysis pass advance recovery SIs and shorten redo.
	LogInstallRecords bool
	// Physiological lowers every logical operation to physical form before
	// logging (values materialized onto the log) — the traditional design,
	// provided as a comparison baseline.
	Physiological bool
	// LogPath, when non-empty, backs the write-ahead log with a file so
	// the database survives process restarts; empty means in-memory.
	LogPath string
}

// DefaultOptions returns the paper's recommended configuration.
func DefaultOptions() Options {
	return Options{
		WriteGraph:        RefinedWriteGraph,
		Strategy:          IdentityWriteBreakup,
		RedoTest:          GeneralizedRSI,
		LogInstallRecords: true,
	}
}

// Transform is a deterministic user transformation: given the logged
// parameters and the current values of the operation's read set, it returns
// the new values of the write set.  It must be pure — recovery re-executes
// it against recovering state.
type Transform func(params []byte, reads map[string][]byte) (map[string][]byte, error)

// DB is a recoverable object store.  DB methods are not safe for concurrent
// use; callers serialize access (the engine models recovery ordering, not
// latching).
type DB struct {
	eng *core.Engine
	dev wal.Device
}

// Open creates a DB from options.  If LogPath names an existing log file,
// call Recover before issuing operations.
func Open(opts Options) (*DB, error) {
	copts := core.Options{
		LogInstalls:   opts.LogInstallRecords,
		Physiological: opts.Physiological,
	}
	switch opts.WriteGraph {
	case RefinedWriteGraph:
		copts.Policy = writegraph.PolicyRW
	case ClassicWriteGraph:
		copts.Policy = writegraph.PolicyW
	default:
		return nil, fmt.Errorf("logicallog: unknown write graph policy %d", opts.WriteGraph)
	}
	switch opts.Strategy {
	case IdentityWriteBreakup:
		copts.Strategy = cache.StrategyIdentityWrite
	case ShadowFlush:
		copts.Strategy = cache.StrategyShadow
	case FlushTransaction:
		copts.Strategy = cache.StrategyFlushTxn
	default:
		return nil, fmt.Errorf("logicallog: unknown flush strategy %d", opts.Strategy)
	}
	switch opts.RedoTest {
	case GeneralizedRSI:
		copts.RedoTest = recovery.TestRSI
	case ClassicVSI:
		copts.RedoTest = recovery.TestVSI
	case RedoAll:
		copts.RedoTest = recovery.TestRedoAll
	default:
		return nil, fmt.Errorf("logicallog: unknown redo test %d", opts.RedoTest)
	}
	if copts.Policy == writegraph.PolicyW && copts.Strategy == cache.StrategyIdentityWrite {
		// Identity breakup needs rW; fall back to the shadow mechanism.
		copts.Strategy = cache.StrategyShadow
	}
	db := &DB{}
	if opts.LogPath != "" {
		dev, err := wal.OpenFileDevice(opts.LogPath)
		if err != nil {
			return nil, err
		}
		copts.LogDevice = dev
		db.dev = dev
	}
	eng, err := core.New(copts)
	if err != nil {
		return nil, err
	}
	db.eng = eng
	return db, nil
}

// Close releases the log device (no implicit flush: call Flush first if the
// cache must reach the stable store).
func (db *DB) Close() error {
	if db.dev != nil {
		return db.dev.Close()
	}
	return nil
}

// Engine exposes the underlying engine for in-module substrates (B-tree,
// application recovery, file system) and experiments.
func (db *DB) Engine() *core.Engine { return db.eng }

// RegisterFunc installs a named deterministic transformation for use with
// Update and ApplyLogical.  Registering the same name twice panics.
func (db *DB) RegisterFunc(name string, fn Transform) {
	db.eng.Registry().Register(op.FuncID(name), func(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
		in := make(map[string][]byte, len(reads))
		for k, v := range reads {
			in[string(k)] = v
		}
		out, err := fn(params, in)
		if err != nil {
			return nil, err
		}
		conv := make(map[op.ObjectID][]byte, len(out))
		for k, v := range out {
			conv[op.ObjectID(k)] = v
		}
		return conv, nil
	})
}

// Create brings an object into existence with an initial value (a physical
// operation: the value is logged).
func (db *DB) Create(id string, v []byte) error {
	return db.eng.Execute(op.NewCreate(op.ObjectID(id), v))
}

// Set blindly overwrites an object with a logged value (physical write).
func (db *DB) Set(id string, v []byte) error {
	return db.eng.Execute(op.NewPhysicalWrite(op.ObjectID(id), v))
}

// Update applies a registered transformation to a single object, reading
// and writing only it (physiological operation: only fn and params logged).
func (db *DB) Update(id string, fn string, params []byte) error {
	return db.eng.Execute(op.NewPhysioWrite(op.ObjectID(id), op.FuncID(fn), params))
}

// ApplyLogical executes a general logical operation: writeSet <- fn(readSet).
// Only the function name, parameters, and object ids are logged; at recovery
// the inputs are re-read from the recovering database.  This is the class of
// operation the paper makes affordable.
func (db *DB) ApplyLogical(fn string, params []byte, readSet, writeSet []string) error {
	return db.eng.Execute(op.NewLogical(op.FuncID(fn), params, toIDs(readSet), toIDs(writeSet)))
}

// Delete terminates objects.
func (db *DB) Delete(ids ...string) error {
	return db.eng.Execute(op.NewDelete(toIDs(ids)...))
}

// Get returns an object's current value.
func (db *DB) Get(id string) ([]byte, error) {
	return db.eng.Get(op.ObjectID(id))
}

// Flush installs every logged operation into the stable database, honoring
// write-graph order (full cache purge).
func (db *DB) Flush() error { return db.eng.FlushAll() }

// FlushOne installs one minimal write-graph node (incremental cache
// pressure); a no-op when nothing is uninstalled.
func (db *DB) FlushOne() error { return db.eng.InstallOne() }

// Checkpoint writes a checkpoint record and truncates the log before the
// earliest record still needed for recovery.
func (db *DB) Checkpoint() error { return db.eng.Checkpoint() }

// Sync forces the write-ahead log (operations become durable without being
// installed).
func (db *DB) Sync() error { return db.eng.Log().Force() }

// Crash simulates a crash: volatile state and the unforced log tail are
// lost.  Testing hook.
func (db *DB) Crash() { db.eng.Crash() }

// RecoveryReport summarizes a recovery run.
type RecoveryReport struct {
	// RedoStart is the LSN the redo scan started at.
	RedoStart uint64
	// OpsScanned, Redone, SkippedInstalled, SkippedUnexposed, Voided count
	// redo-pass decisions.
	OpsScanned, Redone, SkippedInstalled, SkippedUnexposed, Voided int
}

// Recover runs crash recovery (analysis + redo) and resumes operation on
// the recovered state.
func (db *DB) Recover() (RecoveryReport, error) {
	res, err := db.eng.Recover()
	if err != nil {
		return RecoveryReport{}, err
	}
	return RecoveryReport{
		RedoStart:        uint64(res.RedoStart),
		OpsScanned:       res.ScannedOps,
		Redone:           res.Redone,
		SkippedInstalled: res.SkippedInstalled,
		SkippedUnexposed: res.SkippedUnexposed,
		Voided:           res.Voided,
	}, nil
}

// Stats reports cumulative engine counters.
type Stats struct {
	// LogBytesAppended is the total framed bytes appended to the log.
	LogBytesAppended int64
	// LogValueBytes counts logged data values (what logical ops avoid).
	LogValueBytes int64
	// ObjectWrites counts stable-store object writes.
	ObjectWrites int64
	// IdentityWrites counts cache-manager-initiated W_IP operations.
	IdentityWrites int64
	// Installs counts write-graph node installations.
	Installs int64
	// InstalledNotFlushed counts objects installed without being flushed.
	InstalledNotFlushed int64
}

// Stats returns a snapshot of the counters.
func (db *DB) Stats() Stats {
	s := db.eng.Stats()
	return Stats{
		LogBytesAppended:    s.Log.BytesAppended,
		LogValueBytes:       s.Log.ValueBytes,
		ObjectWrites:        s.Store.ObjectWrites,
		IdentityWrites:      s.Cache.IdentityWrites,
		Installs:            s.Cache.Installs,
		InstalledNotFlushed: s.Cache.InstalledNotFlushed,
	}
}

func toIDs(ss []string) []op.ObjectID {
	out := make([]op.ObjectID, len(ss))
	for i, s := range ss {
		out[i] = op.ObjectID(s)
	}
	return out
}
