package logicallog

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

func openDefault(t *testing.T) *DB {
	t.Helper()
	db, err := Open(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenRejectsBadOptions(t *testing.T) {
	for _, opts := range []Options{
		{WriteGraph: 99},
		{Strategy: 99},
		{RedoTest: 99},
	} {
		if _, err := Open(opts); err == nil {
			t.Errorf("Open(%+v) succeeded", opts)
		}
	}
}

func TestOpenClassicGraphFallsBackFromIdentity(t *testing.T) {
	opts := DefaultOptions()
	opts.WriteGraph = ClassicWriteGraph
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The fallback must actually work end to end: a workload that would
	// need identity breakup under rW flushes atomically under W+shadow.
	db.Create("x", []byte{1})
	db.Create("y", []byte{2})
	db.RegisterFunc("mix", func(_ []byte, reads map[string][]byte) (map[string][]byte, error) {
		return map[string][]byte{"y": append(reads["x"], reads["y"]...)}, nil
	})
	if err := db.ApplyLogical("mix", nil, []string{"x", "y"}, []string{"y"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestCRUDAndLogicalRoundTrip(t *testing.T) {
	db := openDefault(t)
	if err := db.Create("a", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get("a")
	if err != nil || string(v) != "v1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := db.Set("a", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	db.RegisterFunc("exclaim", func(params []byte, reads map[string][]byte) (map[string][]byte, error) {
		return map[string][]byte{"a": append(reads["a"], params...)}, nil
	})
	if err := db.Update("a", "exclaim", []byte("!")); err != nil {
		t.Fatal(err)
	}
	v, _ = db.Get("a")
	if string(v) != "v2!" {
		t.Errorf("after update: %q", v)
	}
	db.RegisterFunc("dup", func(_ []byte, reads map[string][]byte) (map[string][]byte, error) {
		return map[string][]byte{"b": reads["a"]}, nil
	})
	if err := db.ApplyLogical("dup", nil, []string{"a"}, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	v, _ = db.Get("b")
	if string(v) != "v2!" {
		t.Errorf("logical dup: %q", v)
	}
	if err := db.Delete("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get("b"); err == nil {
		t.Error("deleted object readable")
	}
}

func TestCrashRecoverFlow(t *testing.T) {
	db := openDefault(t)
	db.Create("k", []byte("base"))
	db.RegisterFunc("app", func(p []byte, r map[string][]byte) (map[string][]byte, error) {
		return map[string][]byte{"k": append(r["k"], p...)}, nil
	})
	db.Update("k", "app", []byte("+1"))
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	db.Update("k", "app", []byte("+lost")) // never synced
	db.Crash()
	rep, err := db.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Redone != 2 {
		t.Errorf("Redone = %d, want 2", rep.Redone)
	}
	v, err := db.Get("k")
	if err != nil || string(v) != "base+1" {
		t.Errorf("recovered k = %q, %v", v, err)
	}
}

func TestStatsAndFlushOne(t *testing.T) {
	db := openDefault(t)
	db.Create("x", []byte("1234"))
	if err := db.FlushOne(); err != nil {
		t.Fatal(err)
	}
	if err := db.FlushOne(); err != nil { // empty graph: no-op
		t.Fatal(err)
	}
	st := db.Stats()
	if st.LogBytesAppended == 0 || st.ObjectWrites != 1 || st.Installs != 1 {
		t.Errorf("Stats = %+v", st)
	}
	if st.LogValueBytes < 4 {
		t.Errorf("LogValueBytes = %d", st.LogValueBytes)
	}
}

func TestCheckpointTruncates(t *testing.T) {
	db := openDefault(t)
	for i := 0; i < 20; i++ {
		db.Set("x", []byte{byte(i)})
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	rep, err := db.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OpsScanned != 0 {
		t.Errorf("post-checkpoint recovery scanned %d ops", rep.OpsScanned)
	}
}

func TestFileBackedRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.wal")
	opts := DefaultOptions()
	opts.LogPath = path

	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	db.Create("persistent", []byte("survives"))
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the same log file in a "new process" and recover.
	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Recover(); err != nil {
		t.Fatal(err)
	}
	v, err := db2.Get("persistent")
	if err != nil || string(v) != "survives" {
		t.Errorf("after restart: %q, %v", v, err)
	}
}

func TestPhysiologicalBaselineOption(t *testing.T) {
	opts := DefaultOptions()
	opts.Physiological = true
	opts.RedoTest = ClassicVSI
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	big := []byte(strings.Repeat("v", 8192))
	db.Create("src", big)
	db.RegisterFunc("copy2", func(_ []byte, r map[string][]byte) (map[string][]byte, error) {
		return map[string][]byte{"dst": r["src"]}, nil
	})
	before := db.Stats().LogValueBytes
	if err := db.ApplyLogical("copy2", nil, []string{"src"}, []string{"dst"}); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().LogValueBytes - before; got < 8192 {
		t.Errorf("physiological option logged only %d value bytes", got)
	}
	v, _ := db.Get("dst")
	if string(v) != string(big) {
		t.Error("lowered logical op produced wrong value")
	}
}

func TestRedoAllOption(t *testing.T) {
	opts := DefaultOptions()
	opts.RedoTest = RedoAll
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		db.Set("p", []byte(fmt.Sprintf("v%d", i)))
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	rep, err := db.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Redone != 5 {
		t.Errorf("Redone = %d, want 5", rep.Redone)
	}
	v, _ := db.Get("p")
	if string(v) != "v4" {
		t.Errorf("p = %q", v)
	}
}

func TestEngineEscapeHatch(t *testing.T) {
	db := openDefault(t)
	if db.Engine() == nil {
		t.Fatal("Engine() nil")
	}
	if db.Close() != nil {
		t.Error("Close on memory-backed DB must be nil")
	}
}
