// Package forensics reconstructs recovery decision provenance from the two
// durable observability artifacts logicallog leaves behind after a crash: the
// write-ahead log itself and the flight recorder's spill file
// (internal/obs/flight).  It answers the question "why was this record
// redone (or skipped)?" with the concrete witness the redo predicate saw —
// the installed version that beat it, the dirty-table entry that exposed it,
// or the absorption that elided it — and renders compact forensic dumps and
// merged timelines for the crash explorers and llinspect.
//
// Everything here is read-only and log-derived: Explain re-derives the dirty
// object table by replaying analysis over the scanned records, so it works
// on a bare WAL file even when no flight events were captured (the flight
// event, when present, upgrades the explanation from "what the log implies"
// to "what the recovery pass actually decided").
package forensics

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"logicallog/internal/obs"
	"logicallog/internal/obs/flight"
	"logicallog/internal/op"
	"logicallog/internal/recovery"
	"logicallog/internal/wal"
)

// Explanation is the reconstructed decision chain for one log record.
type Explanation struct {
	// LSN is the record being explained.
	LSN op.SI
	// Record is the record at that LSN (never nil).
	Record *wal.Record
	// Decision is the flight-recorded redo decision for the LSN, or
	// flight.DecNone when no flight event covers it (the explanation then
	// rests on log-derived provenance alone).
	Decision flight.Decision
	// Event is the flight event the Decision came from (nil if none).
	Event *flight.Event
	// Lines is the rendered decision chain, one finding per line.
	Lines []string
}

// String renders the explanation as a multi-line report.
func (x *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "lsn=%d %s\n", x.LSN, recordLabel(x.Record))
	for _, ln := range x.Lines {
		fmt.Fprintf(&b, "  %s\n", ln)
	}
	return b.String()
}

func recordLabel(rec *wal.Record) string {
	switch rec.Type {
	case wal.RecOperation:
		return fmt.Sprintf("op %s", rec.Op)
	case wal.RecInstall:
		return fmt.Sprintf("install ops=%v", rec.Install.Ops)
	case wal.RecFlush:
		return fmt.Sprintf("flush %s vSI=%d", rec.Flush.Object, rec.Flush.VSI)
	case wal.RecAbsorbed:
		return fmt.Sprintf("absorbed %s", rec.Absorbed.Object)
	case wal.RecCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("type=%v", rec.Type)
	}
}

// Explain reconstructs the decision chain for the record at lsn.  recs is
// the scanned log (ascending LSN, as wal.Log.Scan yields it); events is the
// flight record (ring or spill), possibly empty.  The returned explanation
// combines the flight-recorded decision (when one covers the LSN) with
// provenance re-derived from the log alone: the dirty-object-table state the
// analysis pass would have built just before the LSN, the install record
// that installed the operation (if any), and absorption lineage.
func Explain(recs []*wal.Record, events []flight.Event, lsn op.SI) (*Explanation, error) {
	var target *wal.Record
	for _, rec := range recs {
		if rec.LSN == lsn {
			target = rec
			break
		}
	}
	if target == nil {
		return nil, fmt.Errorf("forensics: no record at LSN %d (log covers %d records)", lsn, len(recs))
	}
	x := &Explanation{LSN: lsn, Record: target, Decision: flight.DecNone}

	// The flight-recorded decision, if the recorder saw this LSN.  Take
	// the latest matching event: a standby may re-decide after a rewind,
	// and the last word is the one that stuck.
	for i := range events {
		ev := &events[i]
		if ev.Kind == flight.KindRedoDecision && ev.LSN == lsn {
			x.Event = ev
			x.Decision = ev.Dec
		}
	}

	switch target.Type {
	case wal.RecOperation:
		explainOperation(x, recs, events)
	case wal.RecAbsorbed:
		explainAbsorbed(x, events)
	default:
		x.Lines = append(x.Lines,
			fmt.Sprintf("bookkeeping record (%s): not subject to a redo decision", recordLabel(target)))
	}
	return x, nil
}

func explainOperation(x *Explanation, recs []*wal.Record, events []flight.Event) {
	// Re-derive the dirty object table exactly as the analysis pass builds
	// it: over the whole log (a checkpoint record restates the table, so
	// replaying every record is equivalent to starting at the last one).
	// The redo predicate consults this end-of-log table — a later install
	// that cleaned an object explains a skip of an earlier record.
	dot := make(map[op.ObjectID]op.SI)
	for _, rec := range recs {
		recovery.UpdateDirtyTable(dot, rec, recovery.TestRSI)
	}

	if x.Event != nil {
		ev := x.Event
		switch ev.Dec {
		case flight.DecRedo:
			if ev.Object != "" {
				x.Lines = append(x.Lines, fmt.Sprintf(
					"decision (%s): redone — object %s dirtied at LSN %d, record LSN %d ≥ rSI %d, and no installed version beat it",
					ev.Actor, ev.Object, ev.Ref, x.LSN, ev.Ref))
			} else {
				x.Lines = append(x.Lines, fmt.Sprintf(
					"decision (%s): redone — predicate requires no witness (redo-all or vSI mode)", ev.Actor))
			}
		case flight.DecSkipInstalled:
			x.Lines = append(x.Lines, fmt.Sprintf(
				"decision (%s): skipped — object %s version %d ≥ record version %d (a newer write is already installed)",
				ev.Actor, ev.Object, ev.Ref, x.LSN))
		case flight.DecSkipUnexposed:
			x.Lines = append(x.Lines, fmt.Sprintf(
				"decision (%s): skipped — no writeset object of LSN %d is both possibly uninstalled and exposed (the write was never exposed, or a later install already covers it)",
				ev.Actor, x.LSN))
		case flight.DecVoided:
			x.Lines = append(x.Lines, fmt.Sprintf(
				"decision (%s): redo selected but the trial execution voided — effects already equal current state", ev.Actor))
		}
	} else {
		x.Lines = append(x.Lines, "no flight decision recorded for this LSN (recorder off, ring-evicted, or pre-crash); provenance below is log-derived")
	}

	// Dirty-table provenance for each writeset object, against the table
	// the redo predicate actually consulted.
	for _, obj := range x.Record.Op.WriteSet {
		if rsi, dirty := dot[obj]; dirty {
			rel := "≥"
			verdict := "possibly uninstalled, exposed to redo"
			if x.LSN < rsi {
				rel, verdict = "<", "this update already covered by a later install"
			}
			x.Lines = append(x.Lines, fmt.Sprintf(
				"analysis dirty table: %s dirty since LSN %d (record LSN %s rSI → %s)",
				obj, rsi, rel, verdict))
		} else {
			x.Lines = append(x.Lines, fmt.Sprintf(
				"analysis dirty table: %s clean at end of log (every update installed or never written)", obj))
		}
	}

	// Install provenance: the install record that logged this op as
	// installed, if any.
	for _, rec := range recs {
		if rec.Type != wal.RecInstall {
			continue
		}
		for _, installed := range rec.Install.Ops {
			if installed == x.LSN {
				x.Lines = append(x.Lines, fmt.Sprintf(
					"installed by install record at LSN %d (ops %v)", rec.LSN, rec.Install.Ops))
			}
		}
	}

	// Absorption and install-graph lineage from the flight record.
	for i := range events {
		ev := &events[i]
		if ev.LSN != x.LSN {
			continue
		}
		switch ev.Kind {
		case flight.KindAbsorbRecord:
			x.Lines = append(x.Lines, fmt.Sprintf(
				"absorption: write to %s superseded by LSN %d (candidate for elision)", ev.Object, ev.Ref))
		case flight.KindAbsorbCancel:
			x.Lines = append(x.Lines, fmt.Sprintf(
				"absorption canceled: observer at LSN %d read %s inside the elision interval", ev.Ref, ev.Object))
		case flight.KindValueResolve:
			x.Lines = append(x.Lines, fmt.Sprintf(
				"install graph: oracle resolved %s from this record's value", ev.Object))
		case flight.KindShipApply:
			x.Lines = append(x.Lines, fmt.Sprintf(
				"ship: standby %s (want=%d)", ev.Dec, ev.Ref))
		}
	}
}

func explainAbsorbed(x *Explanation, events []flight.Event) {
	ab := x.Record.Absorbed
	x.Lines = append(x.Lines, fmt.Sprintf(
		"absorbed: write to %s superseded by the write at LSN %d before reaching the log (%dB of payload elided)",
		ab.Object, ab.By, ab.Elided))
	for i := range events {
		ev := &events[i]
		if ev.LSN != x.LSN {
			continue
		}
		switch ev.Kind {
		case flight.KindAbsorbRecord:
			x.Lines = append(x.Lines, fmt.Sprintf(
				"flight: absorption recorded at +%s (by LSN %d)", fmtAt(ev.At), ev.Ref))
		case flight.KindAbsorbCommit:
			x.Lines = append(x.Lines, fmt.Sprintf(
				"flight: absorption committed to the merged log at +%s (tombstone substituted during merge)", fmtAt(ev.At)))
		}
	}
}

// Dump renders a compact forensic dump: the last max events (all of them if
// max <= 0), one line each, newest last.  It is what the crash explorers
// attach to a failing schedule's repro output.
func Dump(events []flight.Event, max int) string {
	if len(events) == 0 {
		return "flight dump: no events recorded\n"
	}
	evs := make([]flight.Event, len(events))
	copy(evs, events)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	shown := evs
	if max > 0 && len(evs) > max {
		shown = evs[len(evs)-max:]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flight dump: last %d of %d events\n", len(shown), len(evs))
	for _, ev := range shown {
		fmt.Fprintf(&b, "  [+%9s] %s\n", fmtAt(ev.At), ev)
	}
	return b.String()
}

// MergeTimeline converts flight events to instant timeline events (one lane
// per actor) and merges them with tracer events so obs.RenderTimeline shows
// decisions inline with the recovery phases that made them.  Flight lanes
// get TIDs above the tracer's so the two sets never collide.
func MergeTimeline(fl []flight.Event, trace []obs.Event) []obs.Event {
	out := make([]obs.Event, 0, len(trace)+len(fl))
	out = append(out, trace...)
	var maxTID int64
	for _, ev := range trace {
		if ev.TID > maxTID {
			maxTID = ev.TID
		}
	}
	laneTID := make(map[string]int64)
	for _, ev := range fl {
		lane := "flight/" + ev.Actor
		tid, ok := laneTID[lane]
		if !ok {
			maxTID++
			tid = maxTID
			laneTID[lane] = tid
		}
		name := ev.Kind.String()
		if ev.Dec != flight.DecNone {
			name += " " + ev.Dec.String()
		}
		args := map[string]any{"seq": ev.Seq}
		if ev.LSN != op.NilSI {
			args["lsn"] = uint64(ev.LSN)
		}
		if ev.Ref != op.NilSI {
			args["ref"] = uint64(ev.Ref)
		}
		if ev.Object != "" {
			args["obj"] = string(ev.Object)
		}
		if ev.N != 0 {
			args["n"] = ev.N
		}
		out = append(out, obs.Event{
			Name:  name,
			Lane:  lane,
			TID:   tid,
			Phase: "i",
			Start: ev.At,
			Args:  args,
		})
	}
	return out
}

// ScanAll drains a scanner into a record slice, the form Explain consumes.
func ScanAll(log *wal.Log, from op.SI) ([]*wal.Record, error) {
	sc, err := log.Scan(from)
	if err != nil {
		return nil, err
	}
	var recs []*wal.Record
	for {
		rec, err := sc.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return recs, nil
			}
			return nil, err
		}
		recs = append(recs, rec)
	}
}

func fmtAt(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}
