package forensics_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"logicallog/internal/cache"
	"logicallog/internal/core"
	"logicallog/internal/fault"
	"logicallog/internal/forensics"
	"logicallog/internal/obs"
	"logicallog/internal/obs/flight"
	"logicallog/internal/op"
	"logicallog/internal/recovery"
	"logicallog/internal/wal"
	"logicallog/internal/writegraph"
)

// TestExplainEndToEnd is the acceptance test for -explain: crash a workload
// via a fault plan, recover with both the Trace oracle and the flight
// recorder (spilling to disk), then assert that Explain names the same
// decision — with a concrete reason — that the recovery pass actually made
// for every operation record.
func TestExplainEndToEnd(t *testing.T) {
	spillPath := filepath.Join(t.TempDir(), "flight.bin")
	rec, recovered, err := flight.OpenSpill(spillPath, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh spill recovered %d events", len(recovered))
	}

	pts, err := fault.ParseToken("wal@14:crash")
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(pts...)

	opts := core.DefaultOptions()
	opts.LogDevice = plan.WrapDevice(wal.NewMemDevice())
	opts.Flight = rec
	eng, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: create a "keeper" object that stays dirty for the whole
	// run — its rSI of 1 drags the redo scan back over everything — then
	// create a and b and install exactly their nodes.  The a/b create
	// records stay in the log below installed stable versions:
	// skip-installed territory.
	objs := []op.ObjectID{"a", "b"}
	if err := eng.Execute(op.NewCreate("keeper", []byte("k0"))); err != nil {
		t.Fatal(err)
	}
	for _, x := range objs {
		if err := eng.Execute(op.NewCreate(x, []byte("v0-"+string(x)))); err != nil {
			t.Fatal(err)
		}
	}
	for _, x := range objs {
		id, ok := eng.Cache().WriteGraph().NodeOf(x)
		if !ok {
			t.Fatalf("no write-graph node for %s", x)
		}
		if _, err := eng.Cache().InstallNode(id); err != nil {
			t.Fatalf("install %s: %v", x, err)
		}
	}

	// Phase 2: dirty the objects again and force each record durable, so
	// these survive the crash with nothing installed over them: redo
	// territory.  Keep going until the armed fault kills the device.
	faulted := false
	for i := 0; i < 100 && !faulted; i++ {
		x := objs[i%len(objs)]
		if err := eng.Execute(op.NewPhysioWrite(x, op.FuncAppend, []byte{byte(2 + i)})); err != nil {
			faulted = true
			break
		}
		if err := eng.Log().Force(); err != nil {
			faulted = true
		}
	}
	if !faulted {
		t.Fatal("fault plan never fired")
	}
	eng.Crash()
	plan.Heal()

	// Recover with the Trace oracle feeding one map and the flight
	// recorder feeding the spill.  Serial redo keeps the oracle ordering
	// trivial; parallel redo is decision-identical by construction.
	oracle := make(map[op.SI]string)
	if _, err := recovery.Recover(eng.Log(), eng.Store(), recovery.Options{
		Test: recovery.TestRSI,
		Cache: cache.Config{
			Policy:      writegraph.PolicyRW,
			Strategy:    cache.StrategyIdentityWrite,
			LogInstalls: true,
			Registry:    eng.Registry(),
		},
		RedoWorkers: 1,
		Trace:       func(o *op.Operation, decision string) { oracle[o.LSN] = decision },
		Flight:      rec,
	}); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := rec.Sync(); err != nil {
		t.Fatal(err)
	}

	events, err := flight.ReadSpill(spillPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := forensics.ScanAll(eng.Log(), eng.Log().FirstLSN())
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle) == 0 {
		t.Fatal("oracle saw no redo decisions")
	}

	wantDec := map[string]flight.Decision{
		"redo":           flight.DecRedo,
		"skip-installed": flight.DecSkipInstalled,
		"skip-unexposed": flight.DecSkipUnexposed,
		"voided":         flight.DecVoided,
	}
	seen := make(map[string]int)
	for lsn, decision := range oracle {
		x, err := forensics.Explain(recs, events, lsn)
		if err != nil {
			t.Fatalf("explain lsn=%d: %v", lsn, err)
		}
		want, ok := wantDec[decision]
		if !ok {
			t.Fatalf("oracle produced unknown decision %q", decision)
		}
		if x.Decision != want {
			t.Errorf("lsn=%d: explain decision %s, oracle says %s\n%s", lsn, x.Decision, decision, x)
		}
		out := x.String()
		switch want {
		case flight.DecSkipInstalled:
			if !strings.Contains(out, "already installed") || !strings.Contains(out, "≥ record version") {
				t.Errorf("lsn=%d: skip-installed explanation lacks the witness reason:\n%s", lsn, out)
			}
		case flight.DecRedo:
			if !strings.Contains(out, "redone") || !strings.Contains(out, "dirtied at LSN") {
				t.Errorf("lsn=%d: redo explanation lacks the dirty-table reason:\n%s", lsn, out)
			}
		case flight.DecSkipUnexposed:
			if !strings.Contains(out, "never exposed") {
				t.Errorf("lsn=%d: skip-unexposed explanation lacks the reason:\n%s", lsn, out)
			}
		}
		seen[decision]++
	}
	// The workload is built to exercise both main branches; if either is
	// missing the test has stopped testing what it claims to.
	if seen["skip-installed"] == 0 {
		t.Error("workload produced no skip-installed decisions")
	}
	if seen["redo"] == 0 {
		t.Error("workload produced no redo decisions")
	}
}

func TestExplainAbsorbedRecord(t *testing.T) {
	recs := []*wal.Record{
		{LSN: 5, Type: wal.RecAbsorbed, Absorbed: &wal.AbsorbedRecord{Object: "x", Elided: 42, By: 9}},
	}
	events := []flight.Event{
		{Seq: 0, Kind: flight.KindAbsorbRecord, LSN: 5, Ref: 9, Object: "x", Actor: "wal"},
		{Seq: 1, Kind: flight.KindAbsorbCommit, LSN: 5, Ref: 9, Object: "x", N: 42, Actor: "wal"},
	}
	x, err := forensics.Explain(recs, events, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := x.String()
	for _, want := range []string{"superseded by the write at LSN 9", "42B of payload elided", "absorption committed"} {
		if !strings.Contains(out, want) {
			t.Errorf("absorbed explanation missing %q:\n%s", want, out)
		}
	}
}

func TestExplainUnknownLSN(t *testing.T) {
	if _, err := forensics.Explain(nil, nil, 7); err == nil {
		t.Fatal("want error for unknown LSN")
	}
}

func TestDumpOrdersAndTruncates(t *testing.T) {
	var events []flight.Event
	for i := 4; i >= 0; i-- { // deliberately out of order
		events = append(events, flight.Event{
			Seq:  uint64(i),
			At:   time.Duration(i) * time.Millisecond,
			Kind: flight.KindMerge,
			LSN:  op.SI(10 + i),
			N:    1,
		})
	}
	out := forensics.Dump(events, 3)
	if !strings.Contains(out, "last 3 of 5 events") {
		t.Errorf("dump header wrong:\n%s", out)
	}
	if strings.Contains(out, "lsn=10") || !strings.Contains(out, "lsn=14") {
		t.Errorf("dump must keep the newest events:\n%s", out)
	}
	if i2, i4 := strings.Index(out, "#2"), strings.Index(out, "#4"); i2 < 0 || i4 < 0 || i2 > i4 {
		t.Errorf("dump must sort by sequence:\n%s", out)
	}
	if forensics.Dump(nil, 10) != "flight dump: no events recorded\n" {
		t.Error("empty dump wording changed")
	}
}

func TestMergeTimelineLanesAndInstants(t *testing.T) {
	trace := []obs.Event{
		{Name: "restart", Lane: "recovery", TID: 1, Phase: "X", Start: 0, Dur: time.Millisecond},
	}
	fl := []flight.Event{
		{Seq: 0, At: 100 * time.Microsecond, Kind: flight.KindRedoDecision, Dec: flight.DecRedo, LSN: 3, Actor: "recovery"},
		{Seq: 1, At: 200 * time.Microsecond, Kind: flight.KindCheckpoint, LSN: 9, N: 2, Actor: "ckpt"},
	}
	merged := forensics.MergeTimeline(fl, trace)
	if len(merged) != 3 {
		t.Fatalf("merged %d events, want 3", len(merged))
	}
	lanes := make(map[string]int64)
	for _, ev := range merged[1:] {
		if ev.Phase != "i" {
			t.Errorf("flight event %q must be an instant, got phase %q", ev.Name, ev.Phase)
		}
		if ev.TID <= 1 {
			t.Errorf("flight lane %q TID %d collides with tracer TIDs", ev.Lane, ev.TID)
		}
		lanes[ev.Lane] = ev.TID
	}
	if len(lanes) != 2 {
		t.Errorf("want one lane per actor, got %v", lanes)
	}
	if merged[1].Name != "redo-decision redo" {
		t.Errorf("instant name = %q", merged[1].Name)
	}
	// Rendering must not panic and must show the flight lanes.
	var b strings.Builder
	obs.RenderTimeline(&b, merged)
	if !strings.Contains(b.String(), "flight/recovery") || !strings.Contains(b.String(), "flight/ckpt") {
		t.Errorf("timeline missing flight lanes:\n%s", b.String())
	}
}

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestForensicTimelineGolden pins the rendered forensic timeline — tracer
// spans merged with flight-decision instant rows — byte for byte.  Every
// input carries a fixed offset, so the render is deterministic.
func TestForensicTimelineGolden(t *testing.T) {
	trace := []obs.Event{
		{Name: "restart", Lane: "recovery", TID: 1, Phase: "X", Start: 0, Dur: 2 * time.Millisecond},
		{Name: "analysis", Lane: "recovery", TID: 1, Phase: "X", Start: 2 * time.Millisecond, Dur: 3 * time.Millisecond,
			Args: map[string]any{"analyzed_records": 18}},
		{Name: "chain", Lane: "redo-worker-00", TID: 2, Phase: "X", Start: 5 * time.Millisecond, Dur: 4 * time.Millisecond},
	}
	fl := []flight.Event{
		{Seq: 0, At: 5500 * time.Microsecond, Kind: flight.KindRedoDecision, Dec: flight.DecSkipInstalled,
			LSN: 12, Ref: 17, Object: "p3", Actor: "recovery"},
		{Seq: 1, At: 6 * time.Millisecond, Kind: flight.KindRedoDecision, Dec: flight.DecRedo,
			LSN: 14, Ref: 9, Object: "p5", Actor: "recovery"},
		{Seq: 2, At: 8 * time.Millisecond, Kind: flight.KindCheckpoint, LSN: 20, N: 3, Actor: "ckpt"},
		{Seq: 3, At: 8500 * time.Microsecond, Kind: flight.KindTruncate, LSN: 11, Actor: "ckpt"},
	}
	var buf bytes.Buffer
	obs.RenderTimeline(&buf, forensics.MergeTimeline(fl, trace))
	buf.WriteString(forensics.Dump(fl, 10))

	path := filepath.Join("testdata", "forensic_timeline.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("forensic timeline drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
