// Package server is the network front-end over core.Engine: a concurrent
// TCP server speaking a length-prefixed CRC-framed binary protocol, with
// biscuit-style admission control (a bounded token channel brackets every
// operation, Op_begin/Op_end), pipelined clients, graceful drain on
// shutdown, and — the headline — instant recovery: after a crash the
// listener opens while redo is still running, each request drains exactly
// the dependency chains its objects need (Engine gating over
// recovery.OnDemand), and background workers finish the rest.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Framing mirrors the WAL and the flight-recorder spill file:
// u32le payload length | u32le CRC32C of the payload | payload.  A frame
// whose checksum does not match is corrupt; a frame cut short by the
// connection dying mid-write is torn — like the WAL's torn tail it carries
// no information and the reader reports io.ErrUnexpectedEOF, never a
// partial payload.
const (
	frameHeaderSize = 8
	// MaxFrame bounds a single frame's payload so a corrupt or hostile
	// length prefix cannot balloon allocation.
	MaxFrame = 1 << 20
)

// frameCRC is the Castagnoli table shared with the WAL device framing.
var frameCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrFrameTooLarge is returned for a length prefix above MaxFrame.
var ErrFrameTooLarge = errors.New("server: frame exceeds size limit")

// ErrFrameCorrupt is returned when a fully read frame fails its checksum.
var ErrFrameCorrupt = errors.New("server: frame checksum mismatch")

// writeFrame writes one frame.  The payload may be empty.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	hdr := make([]byte, frameHeaderSize, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, frameCRC))
	// One Write call so a frame is never torn by interleaved writers on a
	// shared connection (the server's per-connection write mutex makes this
	// belt-and-braces, but the client demux relies on it too).
	_, err := w.Write(append(hdr, payload...))
	return err
}

// readFrame reads one frame and returns its payload.  A clean EOF at a
// frame boundary returns io.EOF; a connection cut mid-frame returns
// io.ErrUnexpectedEOF (torn frame — WAL torn-tail rule: no partial payload
// is ever surfaced); a checksum failure returns ErrFrameCorrupt.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, torn(err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, torn(err)
	}
	if crc32.Checksum(payload, frameCRC) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, ErrFrameCorrupt
	}
	return payload, nil
}

// torn maps an EOF inside a frame to io.ErrUnexpectedEOF.
func torn(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
