package server

import (
	"errors"
	"fmt"

	"logicallog/internal/btree"
	"logicallog/internal/cache"
	"logicallog/internal/core"
	"logicallog/internal/lsm"
	"logicallog/internal/op"
	"logicallog/internal/workload"
)

// kvPrefix namespaces KV objects in the engine's object space so a KV
// backend coexists with other substrates on one engine.
const kvPrefix = "kv/"

// KV is the flat key/value backend: each key is one engine object.  It is
// the instant-recovery showcase — with no shared index pages, every key's
// dependency chain is small, so demand redo touches a tiny log slice per
// request while a B+tree shares root-split chains across keys.
type KV struct {
	eng *core.Engine
}

// NewKV wraps an engine as a flat KV domain.
func NewKV(eng *core.Engine) *KV { return &KV{eng: eng} }

func kvID(key []byte) op.ObjectID { return op.ObjectID(kvPrefix + string(key)) }

// Put implements workload.Domain: a blind physical write (creates or
// overwrites; resurrects a deleted key).
func (kv *KV) Put(key, val []byte) error {
	return kv.eng.Execute(op.NewPhysicalWrite(kvID(key), val))
}

// Get implements workload.Domain.
func (kv *KV) Get(key []byte) ([]byte, bool, error) {
	v, err := kv.eng.Get(kvID(key))
	if errors.Is(err, cache.ErrNotFound) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// Delete implements workload.Domain.
func (kv *KV) Delete(key []byte) (bool, error) {
	x := kvID(key)
	if _, err := kv.eng.Get(x); errors.Is(err, cache.ErrNotFound) {
		return false, nil
	} else if err != nil {
		return false, err
	}
	return true, kv.eng.Execute(op.NewDelete(x))
}

// Range implements workload.Domain: enumerate live kv objects in [lo, hi)
// (hi nil/empty = unbounded) in key order.  During an on-demand drain the
// engine gates the enumeration on the range's writer chains.
func (kv *KV) Range(lo, hi []byte, fn func(key, val []byte) bool) error {
	lower := op.ObjectID(kvPrefix + string(lo))
	var upper op.ObjectID
	if len(hi) > 0 {
		upper = op.ObjectID(kvPrefix + string(hi))
	} else {
		// One past every "kv/..." id: bump the prefix's last byte.
		upper = op.ObjectID(kvPrefix[:len(kvPrefix)-1] + string(kvPrefix[len(kvPrefix)-1]+1))
	}
	ids, err := kv.eng.Objects(lower, upper)
	if err != nil {
		return err
	}
	for _, x := range ids {
		v, err := kv.eng.Get(x)
		if errors.Is(err, cache.ErrNotFound) {
			continue // deleted between enumeration and read
		}
		if err != nil {
			return err
		}
		if !fn([]byte(x[len(kvPrefix):]), v) {
			return nil
		}
	}
	return nil
}

// Check implements workload.Domain: every enumerated key must be readable
// and carry the prefix invariant.
func (kv *KV) Check() error {
	return kv.Range(nil, nil, func(key, val []byte) bool { return true })
}

// Compile-time interface check.
var _ workload.Domain = (*KV)(nil)

// Backend defaults shared by llserve and the harness.
const (
	backendTreeName  = "srv"
	backendTreeOrder = 8
)

func backendLSMOptions() lsm.Options { return lsm.Options{FlushThreshold: 8, Fanout: 4} }

// RegisterBackends installs every backend's transform functions on a
// registry (idempotent); an engine that may recover any backend's log needs
// them before redo.
func RegisterBackends(reg *op.Registry) {
	if _, ok := reg.Lookup(btree.FuncInsertLeaf); !ok {
		btree.Register(reg)
	}
	if _, ok := reg.Lookup(lsm.FuncMemPut); !ok {
		lsm.Register(reg)
	}
}

// OpenBackend builds the named backend ("kv", "btree", "lsm") over an
// engine — fresh for a new store, opening existing structures otherwise.
// Shared by llserve and the harness.
func OpenBackend(eng *core.Engine, name string, fresh bool) (workload.Domain, error) {
	RegisterBackends(eng.Registry())
	switch name {
	case "kv":
		return NewKV(eng), nil
	case "btree":
		if fresh {
			return btree.New(eng, backendTreeName, backendTreeOrder)
		}
		return btree.Open(eng, backendTreeName)
	case "lsm":
		if fresh {
			return lsm.New(eng, backendTreeName, backendLSMOptions())
		}
		return lsm.Open(eng, backendTreeName, backendLSMOptions())
	default:
		return nil, fmt.Errorf("server: unknown backend %q (have kv, btree, lsm)", name)
	}
}
