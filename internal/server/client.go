package server

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Client is a pipelined connection to a Server.  It satisfies
// workload.Domain, so a MixDriver (llrun -connect) drives a remote engine
// exactly as it drives a local tree.  Calls are safe for concurrent use:
// each request carries a fresh id, a single demux goroutine routes response
// frames to their waiters, and responses may arrive in any order.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex // frames must not interleave
	mu      sync.Mutex // id counter + waiter table + terminal error
	nextID  uint64
	waiters map[uint64]chan response
	closed  error
}

// response is one demuxed reply.
type response struct {
	status uint8
	body   []byte
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (tests use net.Pipe).
func NewClient(conn net.Conn) *Client {
	c := &Client{conn: conn, waiters: make(map[uint64]chan response)}
	go c.demux()
	return c
}

// Close tears the connection down; in-flight calls fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.fail(errors.New("server: client closed"))
	return err
}

// demux routes response frames to their waiters until the connection dies.
func (c *Client) demux() {
	for {
		payload, err := readFrame(c.conn)
		if err != nil {
			c.fail(fmt.Errorf("server: connection lost: %w", err))
			return
		}
		id, status, body, err := decodeResponse(payload)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.waiters[id]
		delete(c.waiters, id)
		c.mu.Unlock()
		if ok {
			ch <- response{status: status, body: append([]byte(nil), body...)}
		}
	}
}

// fail terminates every pending and future call with err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed == nil {
		c.closed = err
	}
	for id, ch := range c.waiters {
		delete(c.waiters, id)
		ch <- response{status: StatusErr, body: []byte(c.closed.Error())}
	}
}

// call sends one request and waits for its response.  Other goroutines'
// calls pipeline freely in between.
func (c *Client) call(req *Request) (response, error) {
	c.mu.Lock()
	if c.closed != nil {
		err := c.closed
		c.mu.Unlock()
		return response{}, err
	}
	c.nextID++
	req.ID = c.nextID
	ch := make(chan response, 1)
	c.waiters[req.ID] = ch
	c.mu.Unlock()

	payload, err := EncodeRequest(req)
	if err == nil {
		c.writeMu.Lock()
		err = writeFrame(c.conn, payload)
		c.writeMu.Unlock()
	}
	if err != nil {
		c.mu.Lock()
		delete(c.waiters, req.ID)
		c.mu.Unlock()
		return response{}, err
	}
	resp := <-ch
	if resp.status == StatusShutdown {
		return resp, errShutdown
	}
	if resp.status == StatusErr {
		return resp, fmt.Errorf("server: %s", resp.body)
	}
	return resp, nil
}

// Ping round-trips an empty request.
func (c *Client) Ping() error {
	_, err := c.call(&Request{Op: OpPing})
	return err
}

// Get implements workload.Domain.
func (c *Client) Get(key []byte) ([]byte, bool, error) {
	resp, err := c.call(&Request{Op: OpGet, Key: key})
	if err != nil {
		return nil, false, err
	}
	if resp.status == StatusNotFound {
		return nil, false, nil
	}
	return resp.body, true, nil
}

// Put implements workload.Domain.
func (c *Client) Put(key, val []byte) error {
	_, err := c.call(&Request{Op: OpPut, Key: key, Val: val})
	return err
}

// Delete implements workload.Domain.
func (c *Client) Delete(key []byte) (bool, error) {
	resp, err := c.call(&Request{Op: OpDelete, Key: key})
	if err != nil {
		return false, err
	}
	if len(resp.body) != 1 {
		return false, errMalformed
	}
	return resp.body[0] == 1, nil
}

// Range implements workload.Domain by iterating scan chunks.  Chunk N+1
// resumes just past chunk N's last key, so the scan is consistent per chunk
// (not snapshot-consistent across chunks — same as iterating a live tree).
func (c *Client) Range(lo, hi []byte, fn func(key, val []byte) bool) error {
	cursor := append([]byte(nil), lo...)
	for {
		resp, err := c.call(&Request{Op: OpScan, Lo: cursor, Hi: hi, N: defaultScanChunk})
		if err != nil {
			return err
		}
		pairs, more, err := decodeScanChunk(resp.body)
		if err != nil {
			return err
		}
		for _, p := range pairs {
			if !fn(p.Key, p.Val) {
				return nil
			}
		}
		if !more || len(pairs) == 0 {
			return nil
		}
		last := pairs[len(pairs)-1].Key
		// Smallest key strictly greater than last: append a zero byte.
		cursor = append(append([]byte(nil), last...), 0)
	}
}

// Check implements workload.Domain.
func (c *Client) Check() error {
	_, err := c.call(&Request{Op: OpCheck})
	return err
}

// Stats fetches the server's stats lines as a name -> value map; boolean
// values arrive as 0/1.
func (c *Client) Stats() (map[string]int64, error) {
	resp, err := c.call(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64)
	for _, line := range strings.Split(strings.TrimSpace(string(resp.body)), "\n") {
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("%w: stats line %q", errMalformed, line)
		}
		switch val {
		case "true":
			out[name] = 1
		case "false":
			out[name] = 0
		default:
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: stats line %q", errMalformed, line)
			}
			out[name] = n
		}
	}
	return out, nil
}
