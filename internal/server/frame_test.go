package server

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte("abc"), 1000),
		make([]byte, MaxFrame),
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: %d bytes, want %d", i, len(got), len(p))
		}
	}
	if _, err := readFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: %v, want EOF", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	if err := writeFrame(io.Discard, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write oversized: %v", err)
	}
	// A hostile length prefix is rejected before allocation.
	raw := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, err := readFrame(bytes.NewReader(raw)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read oversized: %v", err)
	}
}

// TestFrameTornTail mirrors the WAL torn-tail rule: a frame cut at any
// point before its last byte yields io.ErrUnexpectedEOF (no partial payload
// is ever surfaced); a cut at a frame boundary is a clean EOF.
func TestFrameTornTail(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("the torn frame carries no information")
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, err := readFrame(bytes.NewReader(full[:cut]))
		switch {
		case cut == 0:
			if !errors.Is(err, io.EOF) {
				t.Fatalf("cut %d: %v, want EOF", cut, err)
			}
		default:
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("cut %d: %v, want ErrUnexpectedEOF", cut, err)
			}
		}
	}
}

// TestFrameCorruption: every single-byte flip anywhere in the frame is
// detected — the payload is never silently misread.
func TestFrameCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("checksummed payload")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := range full {
		for _, flip := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), full...)
			mut[i] ^= flip
			got, err := readFrame(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("flip byte %d (%#x): corrupted frame read back as %q", i, flip, got)
			}
		}
	}
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpGet, Key: []byte("k")},
		{ID: 3, Op: OpPut, Key: []byte("key"), Val: []byte("value with \x00 bytes")},
		{ID: 4, Op: OpDelete, Key: []byte("")},
		{ID: 5, Op: OpScan, Lo: []byte("a"), Hi: []byte("z"), N: 17},
		{ID: 6, Op: OpScan, Lo: nil, Hi: nil, N: 0},
		{ID: 7, Op: OpCheck},
		{ID: 8, Op: OpStats},
	}
	for _, req := range reqs {
		p, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		got, err := DecodeRequest(p)
		if err != nil {
			t.Fatalf("%+v: decode: %v", req, err)
		}
		if got.ID != req.ID || got.Op != req.Op ||
			!bytes.Equal(got.Key, req.Key) || !bytes.Equal(got.Val, req.Val) ||
			!bytes.Equal(got.Lo, req.Lo) || !bytes.Equal(got.Hi, req.Hi) || got.N != req.N {
			t.Fatalf("round trip: %+v -> %+v", req, got)
		}
	}
}

func TestScanChunkRoundTrip(t *testing.T) {
	cases := []struct {
		pairs []ScanPair
		more  bool
	}{
		{nil, false},
		{nil, true},
		{[]ScanPair{{Key: []byte("a"), Val: nil}}, false},
		{[]ScanPair{{Key: []byte("a"), Val: []byte("1")}, {Key: []byte("bb"), Val: bytes.Repeat([]byte("v"), 5000)}}, true},
	}
	for i, c := range cases {
		body := encodeScanChunk(c.pairs, c.more)
		pairs, more, err := decodeScanChunk(body)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if more != c.more || len(pairs) != len(c.pairs) {
			t.Fatalf("case %d: %d pairs more=%v, want %d more=%v", i, len(pairs), more, len(c.pairs), c.more)
		}
		for j := range pairs {
			if !bytes.Equal(pairs[j].Key, c.pairs[j].Key) || !bytes.Equal(pairs[j].Val, c.pairs[j].Val) {
				t.Fatalf("case %d pair %d diverges", i, j)
			}
		}
	}
}

// FuzzDecodeRequest: arbitrary bytes never panic the decoder, and whatever
// decodes re-encodes to an equivalent request.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []*Request{
		{ID: 9, Op: OpPut, Key: []byte("key"), Val: []byte("val")},
		{ID: 10, Op: OpScan, Lo: []byte("a"), Hi: []byte("b"), N: 3},
		{ID: 11, Op: OpGet, Key: []byte("zz")},
	}
	for _, req := range seeds {
		p, err := EncodeRequest(req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		p, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v", err)
		}
		again, err := DecodeRequest(p)
		if err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if again.ID != req.ID || again.Op != req.Op || !bytes.Equal(again.Key, req.Key) ||
			!bytes.Equal(again.Val, req.Val) || !bytes.Equal(again.Lo, req.Lo) ||
			!bytes.Equal(again.Hi, req.Hi) || again.N != req.N {
			t.Fatalf("decode/encode/decode not stable: %+v vs %+v", req, again)
		}
	})
}

// FuzzDecodeScanChunk: arbitrary scan bodies never panic.
func FuzzDecodeScanChunk(f *testing.F) {
	f.Add(encodeScanChunk(nil, false))
	f.Add(encodeScanChunk([]ScanPair{{Key: []byte("k"), Val: []byte("v")}}, true))
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		pairs, more, err := decodeScanChunk(data)
		if err != nil {
			return
		}
		body := encodeScanChunk(pairs, more)
		p2, m2, err := decodeScanChunk(body)
		if err != nil || m2 != more || len(p2) != len(pairs) {
			t.Fatalf("re-encode not stable: %v", err)
		}
	})
}
