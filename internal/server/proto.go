package server

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire protocol, inside the CRC framing (frame.go):
//
//	request  payload: u64le reqID | u8 opcode | body
//	response payload: u64le reqID | u8 status | body
//
// Clients pipeline freely: requests carry client-chosen ids, responses echo
// them, and the server may answer out of order (each request is handled by
// its own goroutine once admitted).  Body encodings use u16le length
// prefixes for keys and u32le for values.

// Opcodes.
const (
	OpPing   uint8 = 1 // body: empty            -> OK, empty
	OpGet    uint8 = 2 // body: key              -> OK, value | NotFound
	OpPut    uint8 = 3 // body: klen|key|value   -> OK
	OpDelete uint8 = 4 // body: key              -> OK, u8 found
	OpScan   uint8 = 5 // body: lo|hi|limit      -> OK, pair chunk (see Scan types)
	OpCheck  uint8 = 6 // body: empty            -> OK | Err(message)
	OpStats  uint8 = 7 // body: empty            -> OK, "name value" lines
)

// Statuses.
const (
	StatusOK       uint8 = 0
	StatusNotFound uint8 = 1
	StatusErr      uint8 = 2 // body is the error message
	StatusShutdown uint8 = 3 // server draining; the operation did not run
)

// errShutdown is what a client call returns when the server refused the
// operation because it is draining.
var errShutdown = errors.New("server: shutting down")

// ErrShutdown reports whether err is the server-draining refusal.
func ErrShutdown(err error) bool { return errors.Is(err, errShutdown) }

// errMalformed covers every request/response body that fails to parse.
var errMalformed = errors.New("server: malformed message")

// Request is a decoded request.
type Request struct {
	ID  uint64
	Op  uint8
	Key []byte // Get, Put, Delete
	Val []byte // Put
	Lo  []byte // Scan
	Hi  []byte // Scan; empty = unbounded
	N   int    // Scan chunk limit
}

// ScanPair is one key/value pair in a scan response chunk.
type ScanPair struct {
	Key, Val []byte
}

// appendU16Bytes appends u16le len | bytes.
func appendU16Bytes(dst, b []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(b)))
	return append(dst, b...)
}

// takeU16Bytes splits u16le len | bytes off the front of b.
func takeU16Bytes(b []byte) ([]byte, []byte, error) {
	if len(b) < 2 {
		return nil, nil, errMalformed
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return nil, nil, errMalformed
	}
	return b[:n], b[n:], nil
}

// EncodeRequest builds a request payload.
func EncodeRequest(req *Request) ([]byte, error) {
	out := binary.LittleEndian.AppendUint64(make([]byte, 0, 16+len(req.Key)+len(req.Val)), req.ID)
	out = append(out, req.Op)
	switch req.Op {
	case OpPing, OpCheck, OpStats:
	case OpGet, OpDelete:
		if len(req.Key) > 0xffff {
			return nil, fmt.Errorf("server: key too long (%d bytes)", len(req.Key))
		}
		out = append(out, req.Key...)
	case OpPut:
		if len(req.Key) > 0xffff {
			return nil, fmt.Errorf("server: key too long (%d bytes)", len(req.Key))
		}
		out = appendU16Bytes(out, req.Key)
		out = append(out, req.Val...)
	case OpScan:
		if len(req.Lo) > 0xffff || len(req.Hi) > 0xffff {
			return nil, fmt.Errorf("server: scan bound too long")
		}
		out = appendU16Bytes(out, req.Lo)
		out = appendU16Bytes(out, req.Hi)
		out = binary.LittleEndian.AppendUint16(out, uint16(req.N))
	default:
		return nil, fmt.Errorf("server: unknown opcode %d", req.Op)
	}
	return out, nil
}

// DecodeRequest parses a request payload.
func DecodeRequest(p []byte) (*Request, error) {
	if len(p) < 9 {
		return nil, errMalformed
	}
	req := &Request{ID: binary.LittleEndian.Uint64(p), Op: p[8]}
	body := p[9:]
	var err error
	switch req.Op {
	case OpPing, OpCheck, OpStats:
		if len(body) != 0 {
			return nil, errMalformed
		}
	case OpGet, OpDelete:
		req.Key = body
	case OpPut:
		if req.Key, body, err = takeU16Bytes(body); err != nil {
			return nil, err
		}
		req.Val = body
	case OpScan:
		if req.Lo, body, err = takeU16Bytes(body); err != nil {
			return nil, err
		}
		if req.Hi, body, err = takeU16Bytes(body); err != nil {
			return nil, err
		}
		if len(body) != 2 {
			return nil, errMalformed
		}
		req.N = int(binary.LittleEndian.Uint16(body))
	default:
		return nil, fmt.Errorf("%w: unknown opcode %d", errMalformed, req.Op)
	}
	return req, nil
}

// encodeResponse builds a response payload header; body is appended by the
// caller-specific encoders below.
func encodeResponse(id uint64, status uint8, body []byte) []byte {
	out := binary.LittleEndian.AppendUint64(make([]byte, 0, 9+len(body)), id)
	out = append(out, status)
	return append(out, body...)
}

// decodeResponse splits a response payload.
func decodeResponse(p []byte) (id uint64, status uint8, body []byte, err error) {
	if len(p) < 9 {
		return 0, 0, nil, errMalformed
	}
	return binary.LittleEndian.Uint64(p), p[8], p[9:], nil
}

// encodeScanChunk builds a scan response body: u16le count, count pairs of
// (u16le klen | key | u32le vlen | val), u8 more.
func encodeScanChunk(pairs []ScanPair, more bool) []byte {
	out := binary.LittleEndian.AppendUint16(nil, uint16(len(pairs)))
	for _, p := range pairs {
		out = appendU16Bytes(out, p.Key)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Val)))
		out = append(out, p.Val...)
	}
	if more {
		return append(out, 1)
	}
	return append(out, 0)
}

// decodeScanChunk parses a scan response body.
func decodeScanChunk(body []byte) (pairs []ScanPair, more bool, err error) {
	if len(body) < 2 {
		return nil, false, errMalformed
	}
	n := int(binary.LittleEndian.Uint16(body))
	body = body[2:]
	for i := 0; i < n; i++ {
		var k []byte
		if k, body, err = takeU16Bytes(body); err != nil {
			return nil, false, err
		}
		if len(body) < 4 {
			return nil, false, errMalformed
		}
		vn := int(binary.LittleEndian.Uint32(body))
		body = body[4:]
		if len(body) < vn {
			return nil, false, errMalformed
		}
		pairs = append(pairs, ScanPair{Key: k, Val: body[:vn]})
		body = body[vn:]
	}
	if len(body) != 1 || body[0] > 1 {
		return nil, false, errMalformed
	}
	return pairs, body[0] == 1, nil
}
