package server

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"logicallog/internal/core"
	"logicallog/internal/obs"
)

var serverSeed = flag.Int64("server-seed", 11, "seed for the server recovery kill-point sweep")

// buildCrashedKV drives a deterministic key/value history into a fresh
// engine and crashes it with a durable redo suffix: creates, overwrites,
// deletes, periodic minimal installs, one checkpoint, final force.  The
// same seed always yields the same crashed image.
func buildCrashedKV(t *testing.T, seed int64) (*core.Engine, *KV) {
	t.Helper()
	opts := core.DefaultOptions()
	opts.RedoWorkers = 1 // slow drain: keep chains pending under traffic
	eng, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	kv := NewKV(eng)
	rng := rand.New(rand.NewSource(seed))
	key := func(i int) []byte { return []byte(fmt.Sprintf("k%02d", i)) }
	const keys = 40
	for i := 0; i < keys; i++ {
		v := make([]byte, 48)
		rng.Read(v)
		if err := kv.Put(key(i), v); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; step < 160; step++ {
		i := rng.Intn(keys)
		switch {
		case step%11 == 7:
			if _, err := kv.Delete(key(i)); err != nil {
				t.Fatal(err)
			}
		default:
			v := make([]byte, 48)
			rng.Read(v)
			if err := kv.Put(key(i), v); err != nil {
				t.Fatal(err)
			}
		}
		if step%13 == 5 {
			if err := eng.InstallOne(); err != nil {
				t.Fatal(err)
			}
		}
		if step == 80 {
			if err := eng.CheckpointOnly(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	return eng, kv
}

// referenceState fully recovers a same-seed image and captures every key's
// value — the oracle every kill point is checked against.
func referenceState(t *testing.T, seed int64) map[string][]byte {
	t.Helper()
	eng, kv := buildCrashedKV(t, seed)
	if _, err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	ref := make(map[string][]byte)
	if err := kv.Range(nil, nil, func(k, v []byte) bool {
		ref[string(k)] = append([]byte(nil), v...)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("reference state empty; workload broken")
	}
	return ref
}

// TestServerKillMidRedo is the crash-explorer extension for the serving-
// during-redo path: at each kill point k, restart a crashed image with
// on-demand recovery, serve live traffic (reads verified against the
// full-redo oracle, plus writes), then kill the server and the engine after
// k responses — mid-drain, with chains still pending — recover fully, and
// require the state to be byte-identical to the oracle.  It must be: demand
// and background replay never force the log, and the killed run's client
// writes were never forced either, so the durable image is unchanged.
func TestServerKillMidRedo(t *testing.T) {
	seed := *serverSeed
	ref := referenceState(t, seed)
	key := func(i int) []byte { return []byte(fmt.Sprintf("k%02d", i)) }

	for _, kill := range []int{0, 1, 3, 7, 15} {
		t.Run(fmt.Sprintf("kill=%d", kill), func(t *testing.T) {
			eng, kv := buildCrashedKV(t, seed)
			od, err := eng.RecoverOnDemand()
			if err != nil {
				t.Fatal(err)
			}
			srv, err := New(Config{Backend: kv, Obs: obs.NewRegistry(), Drain: od})
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			serveDone := make(chan error, 1)
			go func() { serveDone <- srv.Serve(ln) }()
			cl, err := Dial(ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}

			// Live traffic against the recovering server: reads checked
			// against the oracle, writes racing the drain.
			rng := rand.New(rand.NewSource(seed * 31))
			for r := 0; r < kill; r++ {
				i := rng.Intn(40)
				if r%3 == 2 {
					if err := cl.Put(key(i), []byte(fmt.Sprintf("mid-drain-%d", r))); err != nil {
						t.Fatalf("response %d: Put: %v", r, err)
					}
					continue
				}
				v, found, err := cl.Get(key(i))
				if err != nil {
					t.Fatalf("response %d: Get: %v", r, err)
				}
				want, wantFound := ref[string(key(i))]
				// A key this run already overwrote mid-drain no longer
				// matches the oracle; only verify untouched keys.
				if !bytes.HasPrefix(v, []byte("mid-drain-")) {
					if found != wantFound {
						t.Fatalf("response %d: Get(%s) found=%v, oracle says %v", r, key(i), found, wantFound)
					}
					if found && !bytes.Equal(v, want) {
						t.Fatalf("response %d: Get(%s) diverges from full-redo oracle", r, key(i))
					}
				}
			}

			// Kill: hard server stop plus engine crash, mid-drain.
			_ = cl.Close()
			srv.Shutdown(50 * time.Millisecond)
			<-serveDone
			eng.Crash()

			// Restart with full recovery: the durable image is unchanged
			// (nothing above forced), so the state must equal the oracle.
			if _, err := eng.Recover(); err != nil {
				t.Fatal(err)
			}
			got := make(map[string][]byte)
			if err := kv.Range(nil, nil, func(k, v []byte) bool {
				got[string(k)] = append([]byte(nil), v...)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(ref) {
				t.Fatalf("recovered %d keys, oracle has %d", len(got), len(ref))
			}
			for k, want := range ref {
				if !bytes.Equal(got[k], want) {
					t.Errorf("key %s diverges from oracle after kill-point %d", k, kill)
				}
			}
			if err := kv.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestServeDuringRedoToCompletion: a server over an on-demand drain serves
// a full scripted workload to completion; afterwards the drain is done and
// the final state matches a full-redo restart (no kill — the clean path of
// the explorer config above).
func TestServeDuringRedoToCompletion(t *testing.T) {
	seed := *serverSeed + 1
	ref := referenceState(t, seed)

	eng, kv := buildCrashedKV(t, seed)
	od, err := eng.RecoverOnDemand()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	// Rebuild the engine metrics registry association: StartOnDemand used
	// the engine's own (nil) registry; the server's is separate.
	srv, err := New(Config{Backend: kv, Obs: reg, Drain: od})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// First request is served while recovery may still be draining; Stats
	// exposes the chain table either way.
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stats["chains_done"]; !ok {
		t.Errorf("stats missing chain table: %v", stats)
	}
	for k, want := range ref {
		v, found, err := cl.Get([]byte(k))
		if err != nil || !found || !bytes.Equal(v, want) {
			t.Fatalf("Get(%s) = found=%v err=%v; diverges from oracle", k, found, err)
		}
	}
	if _, err := od.Wait(); err != nil {
		t.Fatal(err)
	}
	if !od.Done() {
		t.Error("drain not done after Wait")
	}
	srv.Shutdown(2 * time.Second)
	if err := <-serveDone; err != nil {
		t.Errorf("Serve: %v", err)
	}
}
