package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"logicallog/internal/obs"
	"logicallog/internal/recovery"
	"logicallog/internal/workload"
)

// defaultMaxInFlight bounds admitted operations when Config leaves it zero.
const defaultMaxInFlight = 64

// maxScanChunk caps the pairs returned per scan request; clients iterate
// chunks (the client library's Range does this transparently).
const maxScanChunk = 256

// defaultScanChunk is used when a scan request asks for 0.
const defaultScanChunk = 128

// Config configures a Server.
type Config struct {
	// Backend serves the five domain calls.  The server serializes calls
	// through one mutex: domain implementations (btree, lsm) issue multiple
	// engine operations per call and are not internally latched — the
	// engine's own mutex protects each operation, the server's protects the
	// traversal.  Concurrency still pays: framing, parsing, admission, and
	// response writing for other requests all overlap a backend call.
	Backend workload.Domain
	// MaxInFlight bounds admitted operations (the admission channel's
	// capacity, biscuit Op_begin style).  0 means defaultMaxInFlight.
	MaxInFlight int
	// Obs receives the server.* metrics family; nil disables.
	Obs *obs.Registry
	// Drain, when non-nil, is the on-demand redo scheduler still draining
	// beneath the backend; Stats reports its chain-state table so clients
	// can watch recovery progress behind live traffic.
	Drain *recovery.OnDemand
}

// Server is the concurrent front-end.  One goroutine per connection reads
// and parses frames; each admitted request is handled on its own goroutine
// so a slow backend call never blocks the connection's other pipelined
// requests; responses are written under a per-connection mutex.
type Server struct {
	cfg     Config
	backend workload.Domain
	ln      net.Listener

	// backendMu serializes backend calls (see Config.Backend).
	backendMu sync.Mutex

	// admission is the Op_begin token channel: a request must place a token
	// before running and removes it after (Op_end).  Capacity is the
	// in-flight bound; a full channel is backpressure.
	admission chan struct{}

	// stateMu guards ln and the drain flag's handoff with admission: an
	// operation is admitted (reqWG.Add) only under stateMu with the flag
	// unset, and Shutdown sets the flag under stateMu before waiting, so
	// reqWG.Add never races reqWG.Wait.
	stateMu  sync.Mutex
	drainSet bool
	draining atomic.Bool   // fast-path mirror of drainSet
	drainCh  chan struct{} // closed when Shutdown begins

	reqWG  sync.WaitGroup // admitted requests
	connWG sync.WaitGroup // connection readers

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	mConns     *obs.Counter
	mRequests  *obs.Counter
	mResponses *obs.Counter
	mRefused   *obs.Counter
	mErrors    *obs.Counter
	gInFlight  *obs.Gauge
	mAdmWaits  *obs.Counter
	hAdmWaitNs *obs.Histogram
	hRequestNs *obs.Histogram
}

// New builds a server over its config.  Call Serve with a listener.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("server: config needs a backend")
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = defaultMaxInFlight
	}
	if cfg.MaxInFlight < 1 {
		return nil, fmt.Errorf("server: MaxInFlight %d < 1", cfg.MaxInFlight)
	}
	return &Server{
		cfg:       cfg,
		backend:   cfg.Backend,
		admission: make(chan struct{}, cfg.MaxInFlight),
		drainCh:   make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),

		mConns:     cfg.Obs.Counter("server.conns"),
		mRequests:  cfg.Obs.Counter("server.requests"),
		mResponses: cfg.Obs.Counter("server.responses"),
		mRefused:   cfg.Obs.Counter("server.refused"),
		mErrors:    cfg.Obs.Counter("server.errors"),
		gInFlight:  cfg.Obs.Gauge("server.inflight"),
		mAdmWaits:  cfg.Obs.Counter("server.admission_waits"),
		hAdmWaitNs: cfg.Obs.Histogram("server.admission_wait_ns"),
		hRequestNs: cfg.Obs.Histogram("server.request_ns"),
	}, nil
}

// Serve accepts connections on ln until Shutdown closes it.  It returns nil
// after a drain-initiated close, the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.stateMu.Lock()
	s.ln = ln
	if s.drainSet {
		// Shutdown already ran; don't accept.
		s.stateMu.Unlock()
		_ = ln.Close()
		return nil
	}
	s.stateMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mConns.Inc()
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

// Shutdown drains gracefully: stop accepting, refuse new operations
// (StatusShutdown), let admitted operations finish and their responses
// flush, then close every connection.  If the deadline passes first the
// remaining connections are closed anyway (their in-flight responses are
// lost, exactly like a crash — recovery owns that case).
func (s *Server) Shutdown(deadline time.Duration) {
	s.stateMu.Lock()
	if s.drainSet {
		s.stateMu.Unlock()
		return
	}
	s.drainSet = true
	s.draining.Store(true)
	ln := s.ln
	s.stateMu.Unlock()
	close(s.drainCh)
	if ln != nil {
		_ = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(deadline):
	}
	s.connMu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.connMu.Unlock()
	s.connWG.Wait()
}

// opBegin admits one operation, blocking while MaxInFlight are in flight
// (backpressure).  It returns false when the server is draining.
func (s *Server) opBegin() bool {
	if s.draining.Load() {
		return false
	}
	select {
	case s.admission <- struct{}{}:
	default:
		// Channel full: record the backpressure wait.
		s.mAdmWaits.Inc()
		var start time.Time
		if s.hAdmWaitNs.Enabled() {
			start = time.Now()
		}
		select {
		case s.admission <- struct{}{}:
			s.hAdmWaitNs.Since(start)
		case <-s.drainCh:
			return false
		}
	}
	s.stateMu.Lock()
	if s.drainSet {
		// Raced a concurrent Shutdown; hand the token back.
		s.stateMu.Unlock()
		<-s.admission
		return false
	}
	s.reqWG.Add(1)
	s.stateMu.Unlock()
	s.gInFlight.Add(1)
	return true
}

// opEnd returns the admission token and retires the request.
func (s *Server) opEnd() {
	s.gInFlight.Add(-1)
	<-s.admission
	s.reqWG.Done()
}

// handleConn reads framed requests and dispatches each to its own goroutine.
func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		_ = conn.Close()
	}()
	var writeMu sync.Mutex
	respond := func(payload []byte) {
		writeMu.Lock()
		defer writeMu.Unlock()
		if err := writeFrame(conn, payload); err != nil {
			s.mErrors.Inc()
		} else {
			s.mResponses.Inc()
		}
	}
	for {
		payload, err := readFrame(conn)
		if err != nil {
			// EOF: client done.  Torn frame / corrupt frame / dead socket:
			// drop the connection; the WAL torn-tail rule applies — a
			// partial request carries no information and is never acted on.
			if !errors.Is(err, io.EOF) {
				s.mErrors.Inc()
			}
			return
		}
		req, err := DecodeRequest(payload)
		if err != nil {
			s.mErrors.Inc()
			return
		}
		s.mRequests.Inc()
		if !s.opBegin() {
			s.mRefused.Inc()
			respond(encodeResponse(req.ID, StatusShutdown, nil))
			continue
		}
		go func() {
			defer s.opEnd()
			var start time.Time
			if s.hRequestNs.Enabled() {
				start = time.Now()
			}
			respond(s.handle(req))
			s.hRequestNs.Since(start)
		}()
	}
}

// handle runs one admitted request against the backend.
func (s *Server) handle(req *Request) []byte {
	switch req.Op {
	case OpPing:
		return encodeResponse(req.ID, StatusOK, nil)
	case OpGet:
		s.backendMu.Lock()
		v, found, err := s.backend.Get(req.Key)
		s.backendMu.Unlock()
		if err != nil {
			return s.fail(req.ID, err)
		}
		if !found {
			return encodeResponse(req.ID, StatusNotFound, nil)
		}
		return encodeResponse(req.ID, StatusOK, v)
	case OpPut:
		s.backendMu.Lock()
		err := s.backend.Put(req.Key, req.Val)
		s.backendMu.Unlock()
		if err != nil {
			return s.fail(req.ID, err)
		}
		return encodeResponse(req.ID, StatusOK, nil)
	case OpDelete:
		s.backendMu.Lock()
		found, err := s.backend.Delete(req.Key)
		s.backendMu.Unlock()
		if err != nil {
			return s.fail(req.ID, err)
		}
		b := byte(0)
		if found {
			b = 1
		}
		return encodeResponse(req.ID, StatusOK, []byte{b})
	case OpScan:
		pairs, more, err := s.scan(req)
		if err != nil {
			return s.fail(req.ID, err)
		}
		return encodeResponse(req.ID, StatusOK, encodeScanChunk(pairs, more))
	case OpCheck:
		s.backendMu.Lock()
		err := s.backend.Check()
		s.backendMu.Unlock()
		if err != nil {
			return s.fail(req.ID, err)
		}
		return encodeResponse(req.ID, StatusOK, nil)
	case OpStats:
		return encodeResponse(req.ID, StatusOK, s.statsBody())
	default:
		return s.fail(req.ID, fmt.Errorf("unknown opcode %d", req.Op))
	}
}

// scan collects one bounded chunk of the range [lo, hi) plus a "more"
// marker (one probe past the chunk).
func (s *Server) scan(req *Request) (pairs []ScanPair, more bool, err error) {
	limit := req.N
	if limit <= 0 {
		limit = defaultScanChunk
	}
	if limit > maxScanChunk {
		limit = maxScanChunk
	}
	var hi []byte
	if len(req.Hi) > 0 {
		hi = req.Hi
	}
	s.backendMu.Lock()
	defer s.backendMu.Unlock()
	err = s.backend.Range(req.Lo, hi, func(k, v []byte) bool {
		if len(pairs) == limit {
			more = true
			return false
		}
		pairs = append(pairs, ScanPair{
			Key: append([]byte(nil), k...),
			Val: append([]byte(nil), v...),
		})
		return true
	})
	return pairs, more, err
}

// fail encodes a backend or protocol error response.
func (s *Server) fail(id uint64, err error) []byte {
	s.mErrors.Inc()
	return encodeResponse(id, StatusErr, []byte(err.Error()))
}

// statsBody renders "name value" lines: request counters plus, during an
// on-demand drain, the chain-state table.
func (s *Server) statsBody() []byte {
	out := fmt.Sprintf("requests %d\nresponses %d\nrefused %d\nerrors %d\ninflight %d\n",
		s.mRequests.Value(), s.mResponses.Value(), s.mRefused.Value(),
		s.mErrors.Value(), s.gInFlight.Value())
	if d := s.cfg.Drain; d != nil {
		pending, inFlight, done := d.ChainCounts()
		out += fmt.Sprintf("recovery_done %v\nchains_pending %d\nchains_inflight %d\nchains_done %d\n",
			d.Done(), pending, inFlight, done)
	}
	return []byte(out)
}
