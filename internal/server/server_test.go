package server

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"logicallog/internal/core"
	"logicallog/internal/obs"
	"logicallog/internal/workload"
)

// startServer spins up a server on loopback and returns it, a connected
// client, and the listen address.  Cleanup shuts both down.
func startServer(t *testing.T, cfg Config) (*Server, *Client, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cl.Close()
		srv.Shutdown(2 * time.Second)
		if err := <-serveDone; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, cl, addr
}

func newKVServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	eng, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s, c, _ := startServer(t, Config{Backend: NewKV(eng), Obs: obs.NewRegistry()})
	return s, c
}

func TestServerBasicOps(t *testing.T) {
	_, cl := newKVServer(t)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, found, err := cl.Get([]byte("missing")); err != nil || found {
		t.Fatalf("Get(missing) = found=%v, %v", found, err)
	}
	if err := cl.Put([]byte("a"), []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put([]byte("b"), []byte("beta")); err != nil {
		t.Fatal(err)
	}
	v, found, err := cl.Get([]byte("a"))
	if err != nil || !found || string(v) != "alpha" {
		t.Fatalf("Get(a) = %q, %v, %v", v, found, err)
	}
	var keys []string
	if err := cl.Range(nil, nil, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(keys) != "[a b]" {
		t.Fatalf("Range = %v", keys)
	}
	found, err = cl.Delete([]byte("a"))
	if err != nil || !found {
		t.Fatalf("Delete(a) = %v, %v", found, err)
	}
	found, err = cl.Delete([]byte("a"))
	if err != nil || found {
		t.Fatalf("second Delete(a) = %v, %v", found, err)
	}
	if err := cl.Check(); err != nil {
		t.Fatal(err)
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["requests"] < 8 {
		t.Errorf("stats requests = %d", stats["requests"])
	}
}

// TestServerMixWorkloads drives every named scenario mix through the wire
// against each backend — the same differential model check the local
// domains get, now spanning protocol encode/decode and the pipelined demux.
func TestServerMixWorkloads(t *testing.T) {
	for _, backend := range []string{"kv", "btree", "lsm"} {
		for _, mix := range workload.Mixes() {
			t.Run(backend+"/"+mix.Name, func(t *testing.T) {
				eng, err := core.New(core.DefaultOptions())
				if err != nil {
					t.Fatal(err)
				}
				dom, err := OpenBackend(eng, backend, true)
				if err != nil {
					t.Fatal(err)
				}
				_, cl, _ := startServer(t, Config{Backend: dom, Obs: obs.NewRegistry()})
				drv, err := workload.NewMixDriver(mix, 42)
				if err != nil {
					t.Fatal(err)
				}
				if err := drv.Steps(cl, 150); err != nil {
					t.Fatal(err)
				}
				if err := drv.Verify(cl); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// blockingDomain parks every Get on a gate channel so tests control how
// long a backend call stays in flight.
type blockingDomain struct {
	workload.Domain
	gate chan struct{}
}

func (b *blockingDomain) Get(key []byte) ([]byte, bool, error) {
	<-b.gate
	return []byte("v"), true, nil
}

// TestAdmissionBackpressure: with MaxInFlight=2 and the backend parked, a
// third concurrent request must wait in Op_begin (admission channel full)
// and the server must record the wait.
func TestAdmissionBackpressure(t *testing.T) {
	reg := obs.NewRegistry()
	eng, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bd := &blockingDomain{Domain: NewKV(eng), gate: make(chan struct{})}
	_, cl, _ := startServer(t, Config{Backend: bd, MaxInFlight: 2, Obs: reg})

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := cl.Get([]byte("k")); err != nil {
				t.Errorf("Get: %v", err)
			}
		}()
	}
	// Wait until exactly two are admitted and the third is queued.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("server.admission_waits").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("admission wait never recorded (inflight=%d)",
				reg.Gauge("server.inflight").Value())
		}
		time.Sleep(time.Millisecond)
	}
	if got := reg.Gauge("server.inflight").Value(); got != 2 {
		t.Errorf("inflight with a full admission channel = %d, want 2", got)
	}
	close(bd.gate) // release all three
	wg.Wait()
	if got := reg.Gauge("server.inflight").Value(); got != 0 {
		t.Errorf("inflight after completion = %d", got)
	}
	if reg.Histogram("server.admission_wait_ns").Snapshot().Count == 0 {
		t.Error("admission wait histogram empty")
	}
}

// TestGracefulDrain: a shutdown mid-operation lets the admitted operation
// finish and flush its response; operations arriving during the drain are
// refused with StatusShutdown, not dropped.
func TestGracefulDrain(t *testing.T) {
	reg := obs.NewRegistry()
	eng, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bd := &blockingDomain{Domain: NewKV(eng), gate: make(chan struct{})}
	srv, err := New(Config{Backend: bd, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	slow := make(chan error, 1)
	go func() {
		_, _, err := cl.Get([]byte("k"))
		slow <- err
	}()
	for reg.Gauge("server.inflight").Value() != 1 {
		time.Sleep(time.Millisecond)
	}
	shutDone := make(chan struct{})
	go func() {
		srv.Shutdown(5 * time.Second)
		close(shutDone)
	}()
	for !srv.draining.Load() {
		time.Sleep(time.Millisecond)
	}
	// A request during the drain is refused, and the refusal is a response,
	// not a dropped connection.
	if err := cl.Ping(); !ErrShutdown(err) {
		t.Errorf("Ping during drain = %v, want shutdown refusal", err)
	}
	// The in-flight Get is still running; release it and it completes.
	close(bd.gate)
	if err := <-slow; err != nil {
		t.Errorf("in-flight Get across drain: %v", err)
	}
	<-shutDone
	if err := <-serveDone; err != nil {
		t.Errorf("Serve: %v", err)
	}
	if reg.Counter("server.refused").Value() == 0 {
		t.Error("refused counter never bumped")
	}
}

// TestShutdownMidPipeline: a burst of pipelined requests racing Shutdown
// each ends deterministically — served or refused, never hung or lost.
func TestShutdownMidPipeline(t *testing.T) {
	eng, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Backend: NewKV(eng), MaxInFlight: 4, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const burst = 64
	errs := make(chan error, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- cl.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
		}(i)
		if i == burst/2 {
			go srv.Shutdown(5 * time.Second)
		}
	}
	wg.Wait()
	close(errs)
	served, refused, failed := 0, 0, 0
	for err := range errs {
		switch {
		case err == nil:
			served++
		case ErrShutdown(err):
			refused++
		default:
			// Connection torn down after drain: also a deterministic end.
			failed++
		}
	}
	t.Logf("served=%d refused=%d failed=%d", served, refused, failed)
	if served+refused+failed != burst {
		t.Fatalf("lost requests: %d+%d+%d != %d", served, refused, failed, burst)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("Serve: %v", err)
	}
}

// TestSlowAndHostileClients: a half-written (torn) frame and a corrupt
// frame are both dropped without acting on the partial bytes; well-behaved
// connections are unaffected.
func TestSlowAndHostileClients(t *testing.T) {
	reg := obs.NewRegistry()
	eng, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, cl, addr := startServer(t, Config{Backend: NewKV(eng), Obs: reg})

	// Torn frame: header promising 100 bytes, connection dies after 3.
	torn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var hdr bytes.Buffer
	if err := writeFrame(&hdr, bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := torn.Write(hdr.Bytes()[:frameHeaderSize+3]); err != nil {
		t.Fatal(err)
	}
	_ = torn.Close()

	// Corrupt frame: valid length, wrong checksum.
	corrupt, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	bad := hdr.Bytes()
	bad[frameHeaderSize] ^= 0xff
	if _, err := corrupt.Write(bad); err != nil {
		t.Fatal(err)
	}
	// The server must close this connection (read returns EOF).
	_ = corrupt.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := corrupt.Read(make([]byte, 1)); err == nil {
		t.Error("server kept a corrupt-framed connection open")
	}
	_ = corrupt.Close()

	// The healthy client still works.
	if err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, found, err := cl.Get([]byte("k")); err != nil || !found || string(v) != "v" {
		t.Fatalf("Get = %q, %v, %v", v, found, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("server.errors").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("protocol errors never counted")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClientPipelining: many goroutines sharing one client see their own
// responses (the demux routes by request id, not arrival order).
func TestClientPipelining(t *testing.T) {
	_, cl := newKVServer(t)
	const n = 32
	for i := 0; i < n; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("p%02d", i)), []byte(fmt.Sprintf("val-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				k := []byte(fmt.Sprintf("p%02d", i))
				v, found, err := cl.Get(k)
				if err != nil || !found || string(v) != fmt.Sprintf("val-%02d", i) {
					t.Errorf("Get(%s) = %q, %v, %v", k, v, found, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
