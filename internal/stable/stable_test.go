package stable

import (
	"errors"
	"fmt"
	"testing"

	"logicallog/internal/fault"
)

// mustWrite is for test setup writes whose success is a precondition, not
// the behavior under test.
func mustWrite(t *testing.T, s *Store, entries []Entry, mode BatchMode) {
	t.Helper()
	if err := s.WriteBatch(entries, mode); err != nil {
		t.Fatal(err)
	}
}

// crashAt installs a fresh fault plan that crashes the idx-th simulated
// device write of the next batches (the store's probe is consulted once per
// write, so idx is relative to installation).
func crashAt(s *Store, idx int) *fault.Plan {
	plan := fault.NewPlan(fault.Point{Chan: fault.ChanStable, Index: idx, Kind: fault.KindCrash})
	s.SetWriteProbe(plan.StableProbe())
	return plan
}

func TestModeString(t *testing.T) {
	if ModeSingle.String() != "single" || ModeShadow.String() != "shadow" ||
		ModeFlushTxn.String() != "flushtxn" || ModeUnsafe.String() != "unsafe" ||
		BatchMode(9).String() == "" {
		t.Error("BatchMode.String wrong")
	}
}

func TestReadWriteSingle(t *testing.T) {
	s := NewStore()
	if _, err := s.Read("X"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Read missing = %v", err)
	}
	if err := s.WriteBatch([]Entry{{ID: "X", Val: []byte("v1"), VSI: 3}}, ModeSingle); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read("X")
	if err != nil || string(v.Val) != "v1" || v.VSI != 3 {
		t.Errorf("Read = %+v, %v", v, err)
	}
	// Returned value must not alias storage.
	v.Val[0] = 'z'
	v2, _ := s.Read("X")
	if string(v2.Val) != "v1" {
		t.Error("Read aliased storage")
	}
	if !s.Contains("X") || s.Contains("Y") || s.Len() != 1 {
		t.Error("Contains/Len wrong")
	}
	if err := s.WriteBatch([]Entry{{ID: "A"}, {ID: "B"}}, ModeSingle); err == nil {
		t.Error("ModeSingle must reject multi-entry batches")
	}
	if err := s.WriteBatch(nil, ModeShadow); err != nil {
		t.Errorf("empty batch = %v", err)
	}
}

func TestDelete(t *testing.T) {
	s := NewStore()
	mustWrite(t, s, []Entry{{ID: "X", Val: []byte("v")}}, ModeSingle)
	mustWrite(t, s, []Entry{{ID: "X", Delete: true}}, ModeSingle)
	if s.Contains("X") {
		t.Error("delete failed")
	}
}

func TestIDs(t *testing.T) {
	s := NewStore()
	mustWrite(t, s, []Entry{{ID: "b"}}, ModeSingle)
	mustWrite(t, s, []Entry{{ID: "a"}}, ModeSingle)
	ids := s.IDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("IDs = %v", ids)
	}
}

func TestShadowAtomicity(t *testing.T) {
	s := NewStore()
	mustWrite(t, s, []Entry{{ID: "X", Val: []byte("old"), VSI: 1}}, ModeSingle)
	mustWrite(t, s, []Entry{{ID: "Y", Val: []byte("old"), VSI: 1}}, ModeSingle)
	s.ResetStats()

	// Crash during shadow phase: old state fully intact.
	plan := crashAt(s, 1)
	err := s.WriteBatch([]Entry{
		{ID: "X", Val: []byte("new"), VSI: 5},
		{ID: "Y", Val: []byte("new"), VSI: 5},
	}, ModeShadow)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	x, _ := s.Read("X")
	y, _ := s.Read("Y")
	if string(x.Val) != "old" || string(y.Val) != "old" {
		t.Error("shadow crash must leave old state intact")
	}
	plan.Heal()

	// Successful shadow batch installs everything with one pointer swing.
	if err := s.WriteBatch([]Entry{
		{ID: "X", Val: []byte("new"), VSI: 5},
		{ID: "Y", Val: []byte("new"), VSI: 5},
	}, ModeShadow); err != nil {
		t.Fatal(err)
	}
	x, _ = s.Read("X")
	y, _ = s.Read("Y")
	if string(x.Val) != "new" || string(y.Val) != "new" || x.VSI != 5 {
		t.Error("shadow install failed")
	}
	st := s.Stats()
	if st.PointerSwings != 1 {
		t.Errorf("PointerSwings = %d", st.PointerSwings)
	}
	if st.Batches[ModeShadow] != 2 {
		t.Errorf("Batches[shadow] = %d", st.Batches[ModeShadow])
	}
}

func TestFlushTxnCommitRepair(t *testing.T) {
	s := NewStore()
	mustWrite(t, s, []Entry{{ID: "X", Val: []byte("old")}}, ModeSingle)
	mustWrite(t, s, []Entry{{ID: "Y", Val: []byte("old")}}, ModeSingle)

	// Crash before commit (during value logging): old state, no pending.
	crashAt(s, 1)
	err := s.WriteBatch([]Entry{
		{ID: "X", Val: []byte("new")},
		{ID: "Y", Val: []byte("new")},
	}, ModeFlushTxn)
	if !errors.Is(err, fault.ErrInjected) || s.HasPending() {
		t.Fatalf("pre-commit crash: err=%v pending=%v", err, s.HasPending())
	}
	x, _ := s.Read("X")
	if string(x.Val) != "old" {
		t.Error("pre-commit crash must preserve old state")
	}

	// Crash after commit (during in-place phase): pending repair completes it.
	crashAt(s, 3) // 2 log writes pass, crash on 2nd in-place write (idx 3)
	err = s.WriteBatch([]Entry{
		{ID: "X", Val: []byte("new")},
		{ID: "Y", Val: []byte("new")},
	}, ModeFlushTxn)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if !s.HasPending() {
		t.Fatal("post-commit crash must leave a pending flush transaction")
	}
	if n := s.RecoverPending(); n != 2 {
		t.Errorf("RecoverPending applied %d", n)
	}
	x, _ = s.Read("X")
	y, _ := s.Read("Y")
	if string(x.Val) != "new" || string(y.Val) != "new" {
		t.Error("pending repair incomplete")
	}
	if s.HasPending() || s.RecoverPending() != 0 {
		t.Error("RecoverPending not idempotent")
	}
}

func TestFlushTxnCosts(t *testing.T) {
	// Section 4: "each object in the atomic flush set needs to be written
	// twice": once to the flush-transaction log and once in place.
	s := NewStore()
	s.ResetStats()
	entries := []Entry{
		{ID: "A", Val: make([]byte, 100)},
		{ID: "B", Val: make([]byte, 100)},
	}
	if err := s.WriteBatch(entries, ModeFlushTxn); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FlushTxnLogWrites != 3 { // 2 values + 1 commit
		t.Errorf("FlushTxnLogWrites = %d, want 3", st.FlushTxnLogWrites)
	}
	if st.FlushTxnLogBytes != 200 {
		t.Errorf("FlushTxnLogBytes = %d", st.FlushTxnLogBytes)
	}
	if st.ObjectWrites != 2 || st.ObjectWriteBytes != 200 {
		t.Errorf("ObjectWrites = %d (%d bytes)", st.ObjectWrites, st.ObjectWriteBytes)
	}
}

func TestUnsafeTornWrite(t *testing.T) {
	s := NewStore()
	mustWrite(t, s, []Entry{{ID: "X", Val: []byte("old")}}, ModeSingle)
	mustWrite(t, s, []Entry{{ID: "Y", Val: []byte("old")}}, ModeSingle)
	crashAt(s, 1)
	err := s.WriteBatch([]Entry{
		{ID: "X", Val: []byte("new")},
		{ID: "Y", Val: []byte("new")},
	}, ModeUnsafe)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatal(err)
	}
	x, _ := s.Read("X")
	y, _ := s.Read("Y")
	if string(x.Val) != "new" || string(y.Val) != "old" {
		t.Errorf("unsafe crash must tear: X=%q Y=%q", x.Val, y.Val)
	}
}

func TestCrashAtZero(t *testing.T) {
	s := NewStore()
	plan := crashAt(s, 0)
	err := s.WriteBatch([]Entry{{ID: "X", Val: []byte("v")}}, ModeSingle)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatal(err)
	}
	if s.Contains("X") {
		t.Error("crash-at-zero must write nothing")
	}
	// A dead plan keeps failing writes (the machine stopped) until healed.
	if err := s.WriteBatch([]Entry{{ID: "X", Val: []byte("v")}}, ModeSingle); !errors.Is(err, fault.ErrInjected) {
		t.Errorf("write on dead plan = %v, want injected failure", err)
	}
	plan.Heal()
	if err := s.WriteBatch([]Entry{{ID: "X", Val: []byte("v")}}, ModeSingle); err != nil {
		t.Errorf("post-heal write = %v", err)
	}
}

// TestShadowMidBatchFailureEveryIndex is the regression test for shadow
// batches interrupted at every possible write boundary: phase-1 shadow
// writes 0..n-1 and the pointer swing at n.  Whatever the boundary, the
// store must hold the fully-old state (never torn), report no pending
// repair, and accept a clean retry of the same batch afterwards — i.e. a
// mid-batch failure loses no recoverability.
func TestShadowMidBatchFailureEveryIndex(t *testing.T) {
	batch := []Entry{
		{ID: "X", Val: []byte("newX"), VSI: 9},
		{ID: "Y", Val: []byte("newY"), VSI: 9},
		{ID: "Z", Val: []byte("newZ"), VSI: 9},
	}
	for idx := 0; idx <= len(batch); idx++ {
		t.Run(fmt.Sprintf("write%d", idx), func(t *testing.T) {
			s := NewStore()
			mustWrite(t, s, []Entry{{ID: "X", Val: []byte("oldX"), VSI: 1}}, ModeSingle)
			mustWrite(t, s, []Entry{{ID: "Y", Val: []byte("oldY"), VSI: 1}}, ModeSingle)
			// Z does not exist yet: a torn shadow batch would create it.
			plan := fault.NewPlan(fault.Point{Chan: fault.ChanStable, Index: idx, Kind: fault.KindCrash})
			s.SetWriteProbe(plan.StableProbe())
			err := s.WriteBatch(batch, ModeShadow)
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("err = %v, want injected failure", err)
			}
			x, _ := s.Read("X")
			y, _ := s.Read("Y")
			if string(x.Val) != "oldX" || x.VSI != 1 || string(y.Val) != "oldY" || y.VSI != 1 {
				t.Errorf("state torn at write %d: X=%q Y=%q", idx, x.Val, y.Val)
			}
			if s.Contains("Z") {
				t.Errorf("write %d: Z leaked from an uninstalled shadow batch", idx)
			}
			if s.HasPending() {
				t.Errorf("write %d: shadow mode must never leave a pending repair", idx)
			}
			// After healing, the same batch retries cleanly to the new state.
			plan.Heal()
			mustWrite(t, s, batch, ModeShadow)
			x, _ = s.Read("X")
			z, _ := s.Read("Z")
			if string(x.Val) != "newX" || x.VSI != 9 || string(z.Val) != "newZ" {
				t.Errorf("retry after write-%d failure incomplete: X=%q Z=%q", idx, x.Val, z.Val)
			}
		})
	}
}

// TestFlushTxnMidBatchFailureEveryIndex does the same sweep for the
// flush-transaction mechanism: failures before the commit boundary leave
// old state and no pending entries; failures after it leave a pending
// repair that RecoverPending completes to the fully-new state.
func TestFlushTxnMidBatchFailureEveryIndex(t *testing.T) {
	batch := []Entry{
		{ID: "X", Val: []byte("newX"), VSI: 9},
		{ID: "Y", Val: []byte("newY"), VSI: 9},
	}
	// Write boundaries: log writes 0..1, then in-place writes 2..3.
	for idx := 0; idx <= 3; idx++ {
		t.Run(fmt.Sprintf("write%d", idx), func(t *testing.T) {
			s := NewStore()
			mustWrite(t, s, []Entry{{ID: "X", Val: []byte("oldX"), VSI: 1}}, ModeSingle)
			mustWrite(t, s, []Entry{{ID: "Y", Val: []byte("oldY"), VSI: 1}}, ModeSingle)
			plan := fault.NewPlan(fault.Point{Chan: fault.ChanStable, Index: idx, Kind: fault.KindCrash})
			s.SetWriteProbe(plan.StableProbe())
			err := s.WriteBatch(batch, ModeFlushTxn)
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("err = %v, want injected failure", err)
			}
			committed := idx >= len(batch)
			if s.HasPending() != committed {
				t.Fatalf("write %d: pending = %v, want %v", idx, s.HasPending(), committed)
			}
			plan.Heal()
			s.RecoverPending()
			x, _ := s.Read("X")
			y, _ := s.Read("Y")
			if committed {
				if string(x.Val) != "newX" || string(y.Val) != "newY" {
					t.Errorf("write %d: repair incomplete: X=%q Y=%q", idx, x.Val, y.Val)
				}
			} else {
				if string(x.Val) != "oldX" || string(y.Val) != "oldY" {
					t.Errorf("write %d: pre-commit failure not atomic: X=%q Y=%q", idx, x.Val, y.Val)
				}
			}
		})
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := NewStore()
	mustWrite(t, s, []Entry{{ID: "X", Val: []byte("v1"), VSI: 7}}, ModeSingle)
	snap := s.Snapshot()
	mustWrite(t, s, []Entry{{ID: "X", Val: []byte("v2"), VSI: 9}}, ModeSingle)
	mustWrite(t, s, []Entry{{ID: "Y", Val: []byte("y")}}, ModeSingle)
	s.Restore(snap)
	v, err := s.Read("X")
	if err != nil || string(v.Val) != "v1" || v.VSI != 7 {
		t.Errorf("restored X = %+v, %v", v, err)
	}
	if s.Contains("Y") {
		t.Error("restore kept later object")
	}
	// Snapshot is deep: mutating it doesn't affect the store.
	snap["X"].Val[0] = 'z'
	v, _ = s.Read("X")
	if string(v.Val) != "v1" {
		t.Error("snapshot aliased storage")
	}
}

func TestReadCounting(t *testing.T) {
	s := NewStore()
	mustWrite(t, s, []Entry{{ID: "X", Val: []byte("v")}}, ModeSingle)
	s.ResetStats()
	s.Read("X")
	s.Read("X")
	s.Read("missing")
	if got := s.Stats().ObjectReads; got != 2 {
		t.Errorf("ObjectReads = %d, want 2 (misses don't count)", got)
	}
}
