package stable

import (
	"errors"
	"testing"
)

// mustWrite is for test setup writes whose success is a precondition, not
// the behavior under test.
func mustWrite(t *testing.T, s *Store, entries []Entry, mode BatchMode) {
	t.Helper()
	if err := s.WriteBatch(entries, mode); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if ModeSingle.String() != "single" || ModeShadow.String() != "shadow" ||
		ModeFlushTxn.String() != "flushtxn" || ModeUnsafe.String() != "unsafe" ||
		BatchMode(9).String() == "" {
		t.Error("BatchMode.String wrong")
	}
}

func TestReadWriteSingle(t *testing.T) {
	s := NewStore()
	if _, err := s.Read("X"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Read missing = %v", err)
	}
	if err := s.WriteBatch([]Entry{{ID: "X", Val: []byte("v1"), VSI: 3}}, ModeSingle); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read("X")
	if err != nil || string(v.Val) != "v1" || v.VSI != 3 {
		t.Errorf("Read = %+v, %v", v, err)
	}
	// Returned value must not alias storage.
	v.Val[0] = 'z'
	v2, _ := s.Read("X")
	if string(v2.Val) != "v1" {
		t.Error("Read aliased storage")
	}
	if !s.Contains("X") || s.Contains("Y") || s.Len() != 1 {
		t.Error("Contains/Len wrong")
	}
	if err := s.WriteBatch([]Entry{{ID: "A"}, {ID: "B"}}, ModeSingle); err == nil {
		t.Error("ModeSingle must reject multi-entry batches")
	}
	if err := s.WriteBatch(nil, ModeShadow); err != nil {
		t.Errorf("empty batch = %v", err)
	}
}

func TestDelete(t *testing.T) {
	s := NewStore()
	mustWrite(t, s, []Entry{{ID: "X", Val: []byte("v")}}, ModeSingle)
	mustWrite(t, s, []Entry{{ID: "X", Delete: true}}, ModeSingle)
	if s.Contains("X") {
		t.Error("delete failed")
	}
}

func TestIDs(t *testing.T) {
	s := NewStore()
	mustWrite(t, s, []Entry{{ID: "b"}}, ModeSingle)
	mustWrite(t, s, []Entry{{ID: "a"}}, ModeSingle)
	ids := s.IDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("IDs = %v", ids)
	}
}

func TestShadowAtomicity(t *testing.T) {
	s := NewStore()
	mustWrite(t, s, []Entry{{ID: "X", Val: []byte("old"), VSI: 1}}, ModeSingle)
	mustWrite(t, s, []Entry{{ID: "Y", Val: []byte("old"), VSI: 1}}, ModeSingle)
	s.ResetStats()

	// Crash during shadow phase: old state fully intact.
	s.FailAfterWrites(1)
	err := s.WriteBatch([]Entry{
		{ID: "X", Val: []byte("new"), VSI: 5},
		{ID: "Y", Val: []byte("new"), VSI: 5},
	}, ModeShadow)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	x, _ := s.Read("X")
	y, _ := s.Read("Y")
	if string(x.Val) != "old" || string(y.Val) != "old" {
		t.Error("shadow crash must leave old state intact")
	}

	// Successful shadow batch installs everything with one pointer swing.
	if err := s.WriteBatch([]Entry{
		{ID: "X", Val: []byte("new"), VSI: 5},
		{ID: "Y", Val: []byte("new"), VSI: 5},
	}, ModeShadow); err != nil {
		t.Fatal(err)
	}
	x, _ = s.Read("X")
	y, _ = s.Read("Y")
	if string(x.Val) != "new" || string(y.Val) != "new" || x.VSI != 5 {
		t.Error("shadow install failed")
	}
	st := s.Stats()
	if st.PointerSwings != 1 {
		t.Errorf("PointerSwings = %d", st.PointerSwings)
	}
	if st.Batches[ModeShadow] != 2 {
		t.Errorf("Batches[shadow] = %d", st.Batches[ModeShadow])
	}
}

func TestFlushTxnCommitRepair(t *testing.T) {
	s := NewStore()
	mustWrite(t, s, []Entry{{ID: "X", Val: []byte("old")}}, ModeSingle)
	mustWrite(t, s, []Entry{{ID: "Y", Val: []byte("old")}}, ModeSingle)

	// Crash before commit (during value logging): old state, no pending.
	s.FailAfterWrites(1)
	err := s.WriteBatch([]Entry{
		{ID: "X", Val: []byte("new")},
		{ID: "Y", Val: []byte("new")},
	}, ModeFlushTxn)
	if !errors.Is(err, ErrCrashed) || s.HasPending() {
		t.Fatalf("pre-commit crash: err=%v pending=%v", err, s.HasPending())
	}
	x, _ := s.Read("X")
	if string(x.Val) != "old" {
		t.Error("pre-commit crash must preserve old state")
	}

	// Crash after commit (during in-place phase): pending repair completes it.
	s.FailAfterWrites(3) // 2 log writes pass, crash on 2nd in-place write (idx 3)
	err = s.WriteBatch([]Entry{
		{ID: "X", Val: []byte("new")},
		{ID: "Y", Val: []byte("new")},
	}, ModeFlushTxn)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	if !s.HasPending() {
		t.Fatal("post-commit crash must leave a pending flush transaction")
	}
	if n := s.RecoverPending(); n != 2 {
		t.Errorf("RecoverPending applied %d", n)
	}
	x, _ = s.Read("X")
	y, _ := s.Read("Y")
	if string(x.Val) != "new" || string(y.Val) != "new" {
		t.Error("pending repair incomplete")
	}
	if s.HasPending() || s.RecoverPending() != 0 {
		t.Error("RecoverPending not idempotent")
	}
}

func TestFlushTxnCosts(t *testing.T) {
	// Section 4: "each object in the atomic flush set needs to be written
	// twice": once to the flush-transaction log and once in place.
	s := NewStore()
	s.ResetStats()
	entries := []Entry{
		{ID: "A", Val: make([]byte, 100)},
		{ID: "B", Val: make([]byte, 100)},
	}
	if err := s.WriteBatch(entries, ModeFlushTxn); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FlushTxnLogWrites != 3 { // 2 values + 1 commit
		t.Errorf("FlushTxnLogWrites = %d, want 3", st.FlushTxnLogWrites)
	}
	if st.FlushTxnLogBytes != 200 {
		t.Errorf("FlushTxnLogBytes = %d", st.FlushTxnLogBytes)
	}
	if st.ObjectWrites != 2 || st.ObjectWriteBytes != 200 {
		t.Errorf("ObjectWrites = %d (%d bytes)", st.ObjectWrites, st.ObjectWriteBytes)
	}
}

func TestUnsafeTornWrite(t *testing.T) {
	s := NewStore()
	mustWrite(t, s, []Entry{{ID: "X", Val: []byte("old")}}, ModeSingle)
	mustWrite(t, s, []Entry{{ID: "Y", Val: []byte("old")}}, ModeSingle)
	s.FailAfterWrites(1)
	err := s.WriteBatch([]Entry{
		{ID: "X", Val: []byte("new")},
		{ID: "Y", Val: []byte("new")},
	}, ModeUnsafe)
	if !errors.Is(err, ErrCrashed) {
		t.Fatal(err)
	}
	x, _ := s.Read("X")
	y, _ := s.Read("Y")
	if string(x.Val) != "new" || string(y.Val) != "old" {
		t.Errorf("unsafe crash must tear: X=%q Y=%q", x.Val, y.Val)
	}
}

func TestFailAfterZero(t *testing.T) {
	s := NewStore()
	s.FailAfterWrites(0)
	err := s.WriteBatch([]Entry{{ID: "X", Val: []byte("v")}}, ModeSingle)
	if !errors.Is(err, ErrCrashed) {
		t.Fatal(err)
	}
	if s.Contains("X") {
		t.Error("crash-at-zero must write nothing")
	}
	// Injection disarms after firing.
	if err := s.WriteBatch([]Entry{{ID: "X", Val: []byte("v")}}, ModeSingle); err != nil {
		t.Errorf("second write = %v", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := NewStore()
	mustWrite(t, s, []Entry{{ID: "X", Val: []byte("v1"), VSI: 7}}, ModeSingle)
	snap := s.Snapshot()
	mustWrite(t, s, []Entry{{ID: "X", Val: []byte("v2"), VSI: 9}}, ModeSingle)
	mustWrite(t, s, []Entry{{ID: "Y", Val: []byte("y")}}, ModeSingle)
	s.Restore(snap)
	v, err := s.Read("X")
	if err != nil || string(v.Val) != "v1" || v.VSI != 7 {
		t.Errorf("restored X = %+v, %v", v, err)
	}
	if s.Contains("Y") {
		t.Error("restore kept later object")
	}
	// Snapshot is deep: mutating it doesn't affect the store.
	snap["X"].Val[0] = 'z'
	v, _ = s.Read("X")
	if string(v.Val) != "v1" {
		t.Error("snapshot aliased storage")
	}
}

func TestReadCounting(t *testing.T) {
	s := NewStore()
	mustWrite(t, s, []Entry{{ID: "X", Val: []byte("v")}}, ModeSingle)
	s.ResetStats()
	s.Read("X")
	s.Read("X")
	s.Read("missing")
	if got := s.Stats().ObjectReads; got != 2 {
		t.Errorf("ObjectReads = %d, want 2 (misses don't count)", got)
	}
}
