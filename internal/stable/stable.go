// Package stable simulates the stable database: the disk-resident versioned
// object store beneath the cache manager.
//
// The store models exactly what the paper's arguments depend on:
//
//   - per-object values with their state identifiers (vSI, the pageLSN
//     analogue stored with each object);
//   - multi-object batch writes under the atomicity mechanisms Section 4
//     compares — shadowing (System R style: write copies, then one atomic
//     pointer swing) and flush transactions (log the values, commit, then
//     update in place) — plus the unsafe in-place mode that demonstrates why
//     a mechanism is needed at all;
//   - I/O and byte accounting (object writes, pointer swings, flush-
//     transaction log traffic) that experiments E4/E5 report;
//   - crash injection in the middle of a batch, leaving old state (shadow),
//     recoverable state (committed flush transaction), or torn state
//     (unsafe), matching each mechanism's real behaviour.
//
// The store itself survives Crash; it is the cache and log tail that a crash
// destroys.  Failure injection here models crashes *during* a flush.
package stable

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"logicallog/internal/op"
)

// BatchMode selects the multi-object atomicity mechanism for a batch write.
type BatchMode uint8

const (
	// ModeSingle writes exactly one object in place; single-object writes
	// are atomic in the disk model (as a page write is).
	ModeSingle BatchMode = iota
	// ModeShadow writes all objects to shadow locations and then installs
	// them with one atomic pointer swing (System R [3]).  A crash before
	// the swing leaves the old state intact.
	ModeShadow
	// ModeFlushTxn wraps the batch in a flush transaction: the values are
	// written to the flush-transaction log, a commit record is forced, and
	// the objects are then updated in place.  A crash after commit is
	// repaired by RecoverPending; before commit the old state survives.
	ModeFlushTxn
	// ModeUnsafe writes the objects in place sequentially with no
	// atomicity mechanism.  A crash mid-batch leaves a torn multi-object
	// state — the failure the write-graph discipline exists to prevent.
	ModeUnsafe
)

func (m BatchMode) String() string {
	switch m {
	case ModeSingle:
		return "single"
	case ModeShadow:
		return "shadow"
	case ModeFlushTxn:
		return "flushtxn"
	case ModeUnsafe:
		return "unsafe"
	}
	return fmt.Sprintf("BatchMode(%d)", uint8(m))
}

// Entry is one object write (or delete) in a batch.
type Entry struct {
	ID op.ObjectID
	// Val is the new value; ignored when Delete is set.
	Val []byte
	// VSI is the state identifier stored with the object (the lSI of the
	// last installed operation that wrote it).
	VSI op.SI
	// Delete terminates the object.
	Delete bool
}

// Versioned is a stored object value with its state identifier.
type Versioned struct {
	Val []byte
	VSI op.SI
}

// IOStats counts simulated I/O.  All byte counts are value bytes (the
// simulator has no sector geometry).
type IOStats struct {
	// ObjectReads counts object fetches.
	ObjectReads int64
	// ObjectWrites counts in-place or shadow object writes (each entry of
	// a batch counts once; a flush transaction's in-place phase counts
	// again because the mechanism really writes the data twice).
	ObjectWrites int64
	// ObjectWriteBytes totals bytes across ObjectWrites.
	ObjectWriteBytes int64
	// PointerSwings counts shadow-mechanism atomic installs.
	PointerSwings int64
	// FlushTxnLogWrites counts flush-transaction log appends (one per
	// value plus one commit per batch).
	FlushTxnLogWrites int64
	// FlushTxnLogBytes totals flush-transaction log bytes.
	FlushTxnLogBytes int64
	// Batches counts batch operations by mode.
	Batches map[BatchMode]int64
}

func newIOStats() IOStats { return IOStats{Batches: make(map[BatchMode]int64)} }

func (s IOStats) clone() IOStats {
	c := s
	c.Batches = make(map[BatchMode]int64, len(s.Batches))
	for k, v := range s.Batches {
		c.Batches[k] = v
	}
	return c
}

// ErrCrashed is returned when injected failure interrupts a batch.
var ErrCrashed = errors.New("stable: injected crash during batch write")

// ErrNotFound is returned by Read for absent objects.
var ErrNotFound = errors.New("stable: object not found")

// Store is the simulated stable database.  Safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	objects map[op.ObjectID]Versioned
	stats   IOStats

	// failAfter, when >= 0, injects a crash after that many object writes
	// within the next batch.
	failAfter int

	// pending is a committed-but-unapplied flush transaction, repaired by
	// RecoverPending (a real system replays it from the log at restart).
	pending []Entry
}

// NewStore returns an empty stable store.
func NewStore() *Store {
	return &Store{
		objects:   make(map[op.ObjectID]Versioned),
		stats:     newIOStats(),
		failAfter: -1,
	}
}

// Read fetches an object.  The returned value aliases nothing.
func (s *Store) Read(x op.ObjectID) (Versioned, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.objects[x]
	if !ok {
		return Versioned{}, fmt.Errorf("%w: %q", ErrNotFound, x)
	}
	s.stats.ObjectReads++
	return Versioned{Val: append([]byte(nil), v.Val...), VSI: v.VSI}, nil
}

// Contains reports whether x exists without counting an I/O.
func (s *Store) Contains(x op.ObjectID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objects[x]
	return ok
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

// IDs returns all object ids in ascending order (no I/O accounting; this is
// a catalog operation).
func (s *Store) IDs() []op.ObjectID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]op.ObjectID, 0, len(s.objects))
	for x := range s.objects {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FailAfterWrites arms crash injection: the next WriteBatch crashes after n
// successful object writes (n may be 0 to crash immediately).  The injection
// disarms after firing.
func (s *Store) FailAfterWrites(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failAfter = n
}

// WriteBatch writes entries under the given atomicity mode.
//
// ModeSingle requires exactly one entry.  Under injected failure the store
// is left in the state the real mechanism would leave: unchanged (shadow
// before swing, flush transaction before commit), torn (unsafe), or fully
// old with a pending repair (flush transaction after commit — see
// RecoverPending).
func (s *Store) WriteBatch(entries []Entry, mode BatchMode) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(entries) == 0 {
		return nil
	}
	if mode == ModeSingle && len(entries) != 1 {
		return fmt.Errorf("stable: ModeSingle batch has %d entries", len(entries))
	}
	s.stats.Batches[mode]++
	switch mode {
	case ModeSingle:
		if s.consumeFailure(0) {
			return ErrCrashed
		}
		s.applyEntry(entries[0])
		return nil

	case ModeUnsafe:
		for i, e := range entries {
			if s.consumeFailure(i) {
				return ErrCrashed // torn: first i entries applied
			}
			s.applyEntry(e)
		}
		return nil

	case ModeShadow:
		// Phase 1: write shadow copies (costed as object writes).
		for i, e := range entries {
			if s.consumeFailure(i) {
				return ErrCrashed // old state intact: swing never happened
			}
			s.stats.ObjectWrites++
			if !e.Delete {
				s.stats.ObjectWriteBytes += int64(len(e.Val))
			}
		}
		// Phase 2: atomic pointer swing installs every entry at once.
		if s.consumeFailure(len(entries)) {
			return ErrCrashed
		}
		s.stats.PointerSwings++
		for _, e := range entries {
			s.installEntry(e)
		}
		return nil

	case ModeFlushTxn:
		// Phase 1: log each value to the flush-transaction log.
		for i, e := range entries {
			if s.consumeFailure(i) {
				return ErrCrashed // before commit: old state intact
			}
			s.stats.FlushTxnLogWrites++
			if !e.Delete {
				s.stats.FlushTxnLogBytes += int64(len(e.Val))
			}
		}
		// Commit record (forced).
		s.stats.FlushTxnLogWrites++
		s.pending = cloneEntries(entries)
		// Phase 2: in-place writes; a crash here leaves pending set, and
		// RecoverPending finishes the job (idempotently).
		for i, e := range entries {
			if s.consumeFailure(len(entries) + i) {
				return ErrCrashed
			}
			s.applyEntry(e)
		}
		s.pending = nil
		return nil
	}
	return fmt.Errorf("stable: unknown batch mode %v", mode)
}

// consumeFailure fires the injected crash if armed for this write index.
func (s *Store) consumeFailure(idx int) bool {
	if s.failAfter >= 0 && idx >= s.failAfter {
		s.failAfter = -1
		return true
	}
	return false
}

// applyEntry performs and costs one in-place object write.
func (s *Store) applyEntry(e Entry) {
	s.stats.ObjectWrites++
	if !e.Delete {
		s.stats.ObjectWriteBytes += int64(len(e.Val))
	}
	s.installEntry(e)
}

// installEntry mutates state without I/O accounting (shadow swing phase).
func (s *Store) installEntry(e Entry) {
	if e.Delete {
		delete(s.objects, e.ID)
		return
	}
	s.objects[e.ID] = Versioned{Val: append([]byte(nil), e.Val...), VSI: e.VSI}
}

// HasPending reports whether a committed flush transaction awaits repair.
func (s *Store) HasPending() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending != nil
}

// RecoverPending applies a committed-but-interrupted flush transaction, as
// restart processing would replay it from the flush-transaction log.  It is
// idempotent and returns the number of entries applied.
func (s *Store) RecoverPending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == nil {
		return 0
	}
	n := len(s.pending)
	for _, e := range s.pending {
		s.applyEntry(e)
	}
	s.pending = nil
	return n
}

// Stats returns a snapshot of the I/O statistics.
func (s *Store) Stats() IOStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.clone()
}

// ResetStats zeroes the I/O statistics.
func (s *Store) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = newIOStats()
}

// Snapshot returns a deep copy of the stored state (test oracle use).
func (s *Store) Snapshot() map[op.ObjectID]Versioned {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[op.ObjectID]Versioned, len(s.objects))
	for x, v := range s.objects {
		out[x] = Versioned{Val: append([]byte(nil), v.Val...), VSI: v.VSI}
	}
	return out
}

// Restore replaces the stored state with a snapshot (media-recovery /
// backup support and test use).
func (s *Store) Restore(snap map[op.ObjectID]Versioned) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects = make(map[op.ObjectID]Versioned, len(snap))
	for x, v := range snap {
		s.objects[x] = Versioned{Val: append([]byte(nil), v.Val...), VSI: v.VSI}
	}
	s.pending = nil
}

func cloneEntries(entries []Entry) []Entry {
	out := make([]Entry, len(entries))
	for i, e := range entries {
		out[i] = Entry{ID: e.ID, VSI: e.VSI, Delete: e.Delete, Val: append([]byte(nil), e.Val...)}
	}
	return out
}
