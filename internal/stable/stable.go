// Package stable simulates the stable database: the disk-resident versioned
// object store beneath the cache manager.
//
// The store models exactly what the paper's arguments depend on:
//
//   - per-object values with their state identifiers (vSI, the pageLSN
//     analogue stored with each object);
//   - multi-object batch writes under the atomicity mechanisms Section 4
//     compares — shadowing (System R style: write copies, then one atomic
//     pointer swing) and flush transactions (log the values, commit, then
//     update in place) — plus the unsafe in-place mode that demonstrates why
//     a mechanism is needed at all;
//   - I/O and byte accounting (object writes, pointer swings, flush-
//     transaction log traffic) that experiments E4/E5 report;
//   - crash injection in the middle of a batch, leaving old state (shadow),
//     recoverable state (committed flush transaction), or torn state
//     (unsafe), matching each mechanism's real behaviour.
//
// The store itself survives Crash; it is the cache and log tail that a crash
// destroys.  Failure injection here models crashes *during* a flush.
package stable

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"logicallog/internal/op"
)

// BatchMode selects the multi-object atomicity mechanism for a batch write.
type BatchMode uint8

const (
	// ModeSingle writes exactly one object in place; single-object writes
	// are atomic in the disk model (as a page write is).
	ModeSingle BatchMode = iota
	// ModeShadow writes all objects to shadow locations and then installs
	// them with one atomic pointer swing (System R [3]).  A crash before
	// the swing leaves the old state intact.
	ModeShadow
	// ModeFlushTxn wraps the batch in a flush transaction: the values are
	// written to the flush-transaction log, a commit record is forced, and
	// the objects are then updated in place.  A crash after commit is
	// repaired by RecoverPending; before commit the old state survives.
	ModeFlushTxn
	// ModeUnsafe writes the objects in place sequentially with no
	// atomicity mechanism.  A crash mid-batch leaves a torn multi-object
	// state — the failure the write-graph discipline exists to prevent.
	ModeUnsafe
)

func (m BatchMode) String() string {
	switch m {
	case ModeSingle:
		return "single"
	case ModeShadow:
		return "shadow"
	case ModeFlushTxn:
		return "flushtxn"
	case ModeUnsafe:
		return "unsafe"
	}
	return fmt.Sprintf("BatchMode(%d)", uint8(m))
}

// Entry is one object write (or delete) in a batch.
type Entry struct {
	ID op.ObjectID
	// Val is the new value; ignored when Delete is set.
	Val []byte
	// VSI is the state identifier stored with the object (the lSI of the
	// last installed operation that wrote it).
	VSI op.SI
	// Delete terminates the object.
	Delete bool
}

// Versioned is a stored object value with its state identifier.
type Versioned struct {
	Val []byte
	VSI op.SI
}

// IOStats counts simulated I/O.  All byte counts are value bytes (the
// simulator has no sector geometry).
type IOStats struct {
	// ObjectReads counts object fetches.
	ObjectReads int64
	// ObjectWrites counts in-place or shadow object writes (each entry of
	// a batch counts once; a flush transaction's in-place phase counts
	// again because the mechanism really writes the data twice).
	ObjectWrites int64
	// ObjectWriteBytes totals bytes across ObjectWrites.
	ObjectWriteBytes int64
	// PointerSwings counts shadow-mechanism atomic installs.
	PointerSwings int64
	// FlushTxnLogWrites counts flush-transaction log appends (one per
	// value plus one commit per batch).
	FlushTxnLogWrites int64
	// FlushTxnLogBytes totals flush-transaction log bytes.
	FlushTxnLogBytes int64
	// Batches counts batch operations by mode.
	Batches map[BatchMode]int64
}

// ErrNotFound is returned by Read for absent objects.
var ErrNotFound = errors.New("stable: object not found")

// storeShards stripes the object map so concurrent readers (parallel redo
// workers faulting objects in) never contend on one mutex.  Power of two.
const storeShards = 32

var shardSeed = maphash.MakeSeed()

type storeShard struct {
	mu      sync.RWMutex
	objects map[op.ObjectID]Versioned
}

// Store is the simulated stable database.  Safe for concurrent use: reads
// take only the owning shard's read lock plus atomic counters, so parallel
// redo scales; batch writes (and their crash-injection state) serialize on
// batchMu, preserving the single-writer atomicity semantics each flush
// mechanism models.
type Store struct {
	shards [storeShards]storeShard

	// batchMu serializes WriteBatch, failure injection, and the pending
	// flush transaction.
	batchMu sync.Mutex

	// Hot I/O counters, updated atomically (reads happen outside any
	// global lock).
	objectReads       atomic.Int64
	objectWrites      atomic.Int64
	objectWriteBytes  atomic.Int64
	pointerSwings     atomic.Int64
	flushTxnLogWrites atomic.Int64
	flushTxnLogBytes  atomic.Int64

	// batches is only touched under batchMu (plus Stats's snapshot).
	statsMu sync.Mutex
	batches map[BatchMode]int64

	// readDelayNS, when > 0, adds that much simulated device latency to
	// every Read — the disk-resident-store regime parallel redo overlaps.
	// Benchmarks only; nanoseconds, accessed atomically.
	readDelayNS atomic.Int64

	// probe, when non-nil, is consulted before every simulated device
	// write a batch performs; a non-nil error injects a failure at exactly
	// that write boundary (see SetWriteProbe).  Guarded by batchMu.
	probe WriteProbe

	// pending is a committed-but-unapplied flush transaction, repaired by
	// RecoverPending (a real system replays it from the log at restart).
	// Guarded by batchMu.
	pending []Entry
}

// NewStore returns an empty stable store.
func NewStore() *Store {
	s := &Store{
		batches: make(map[BatchMode]int64),
	}
	for i := range s.shards {
		s.shards[i].objects = make(map[op.ObjectID]Versioned)
	}
	return s
}

func (s *Store) shard(x op.ObjectID) *storeShard {
	return &s.shards[maphash.String(shardSeed, string(x))&(storeShards-1)]
}

// SetReadDelay models per-read device latency (a disk-backed store) for
// benchmarks; zero (the default) reads at memory speed.
func (s *Store) SetReadDelay(d time.Duration) {
	s.readDelayNS.Store(int64(d))
}

// Read fetches an object.  The returned value aliases nothing.
func (s *Store) Read(x op.ObjectID) (Versioned, error) {
	if d := s.readDelayNS.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	sh := s.shard(x)
	sh.mu.RLock()
	v, ok := sh.objects[x]
	var val []byte
	if ok {
		val = append([]byte(nil), v.Val...)
	}
	sh.mu.RUnlock()
	if !ok {
		return Versioned{}, fmt.Errorf("%w: %q", ErrNotFound, x)
	}
	s.objectReads.Add(1)
	return Versioned{Val: val, VSI: v.VSI}, nil
}

// Contains reports whether x exists without counting an I/O.
func (s *Store) Contains(x op.ObjectID) bool {
	sh := s.shard(x)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.objects[x]
	return ok
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.objects)
		sh.mu.RUnlock()
	}
	return n
}

// IDs returns all object ids in ascending order (no I/O accounting; this is
// a catalog operation).
func (s *Store) IDs() []op.ObjectID {
	var out []op.ObjectID
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for x := range sh.objects {
			out = append(out, x)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteProbe is consulted before each simulated device write inside
// WriteBatch — one consult per in-place write, shadow write, pointer swing,
// and flush-transaction log write, in batch order.  Returning a non-nil
// error injects a failure at exactly that I/O boundary, leaving the store
// in the state the real mechanism would leave there.  The fault layer's
// Plan.StableProbe produces deterministic, replayable probes.
type WriteProbe func() error

// SetWriteProbe installs the fault probe; nil removes it.
func (s *Store) SetWriteProbe(p WriteProbe) {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	s.probe = p
}

// probeErr consults the write probe, if any.  Caller holds batchMu.
func (s *Store) probeErr() error {
	if s.probe == nil {
		return nil
	}
	return s.probe()
}

// WriteBatch writes entries under the given atomicity mode.
//
// ModeSingle requires exactly one entry.  Under injected failure the store
// is left in the state the real mechanism would leave: unchanged (shadow
// before swing, flush transaction before commit), torn (unsafe), or fully
// old with a pending repair (flush transaction after commit — see
// RecoverPending).
func (s *Store) WriteBatch(entries []Entry, mode BatchMode) error {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	if len(entries) == 0 {
		return nil
	}
	if mode == ModeSingle && len(entries) != 1 {
		return fmt.Errorf("stable: ModeSingle batch has %d entries", len(entries))
	}
	s.statsMu.Lock()
	s.batches[mode]++
	s.statsMu.Unlock()
	switch mode {
	case ModeSingle:
		if err := s.probeErr(); err != nil {
			return fmt.Errorf("stable: single write: %w", err)
		}
		s.applyEntry(entries[0])
		return nil

	case ModeUnsafe:
		for i, e := range entries {
			if err := s.probeErr(); err != nil {
				// Torn: the first i entries are already applied.
				return fmt.Errorf("stable: unsafe write %d: %w", i, err)
			}
			s.applyEntry(e)
		}
		return nil

	case ModeShadow:
		// Phase 1: write shadow copies (costed as object writes).
		for i, e := range entries {
			if err := s.probeErr(); err != nil {
				// Old state intact: the swing never happened.
				return fmt.Errorf("stable: shadow write %d: %w", i, err)
			}
			s.objectWrites.Add(1)
			if !e.Delete {
				s.objectWriteBytes.Add(int64(len(e.Val)))
			}
		}
		// Phase 2: atomic pointer swing installs every entry at once.
		if err := s.probeErr(); err != nil {
			return fmt.Errorf("stable: shadow swing: %w", err)
		}
		s.pointerSwings.Add(1)
		for _, e := range entries {
			s.installEntry(e)
		}
		return nil

	case ModeFlushTxn:
		// Phase 1: log each value to the flush-transaction log.
		for i, e := range entries {
			if err := s.probeErr(); err != nil {
				// Before commit: old state intact.
				return fmt.Errorf("stable: flush-txn log write %d: %w", i, err)
			}
			s.flushTxnLogWrites.Add(1)
			if !e.Delete {
				s.flushTxnLogBytes.Add(int64(len(e.Val)))
			}
		}
		// Commit record (forced).
		s.flushTxnLogWrites.Add(1)
		s.pending = cloneEntries(entries)
		// Phase 2: in-place writes; a crash here leaves pending set, and
		// RecoverPending finishes the job (idempotently).
		for i, e := range entries {
			if err := s.probeErr(); err != nil {
				return fmt.Errorf("stable: flush-txn in-place write %d: %w", i, err)
			}
			s.applyEntry(e)
		}
		s.pending = nil
		return nil
	}
	return fmt.Errorf("stable: unknown batch mode %v", mode)
}

// applyEntry performs and costs one in-place object write.
func (s *Store) applyEntry(e Entry) {
	s.objectWrites.Add(1)
	if !e.Delete {
		s.objectWriteBytes.Add(int64(len(e.Val)))
	}
	s.installEntry(e)
}

// installEntry mutates state without I/O accounting (shadow swing phase).
func (s *Store) installEntry(e Entry) {
	sh := s.shard(e.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e.Delete {
		delete(sh.objects, e.ID)
		return
	}
	sh.objects[e.ID] = Versioned{Val: append([]byte(nil), e.Val...), VSI: e.VSI}
}

// HasPending reports whether a committed flush transaction awaits repair.
func (s *Store) HasPending() bool {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	return s.pending != nil
}

// RecoverPending applies a committed-but-interrupted flush transaction, as
// restart processing would replay it from the flush-transaction log.  It is
// idempotent and returns the number of entries applied.
func (s *Store) RecoverPending() int {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	if s.pending == nil {
		return 0
	}
	n := len(s.pending)
	for _, e := range s.pending {
		s.applyEntry(e)
	}
	s.pending = nil
	return n
}

// Stats returns a snapshot of the I/O statistics.
func (s *Store) Stats() IOStats {
	st := IOStats{
		ObjectReads:       s.objectReads.Load(),
		ObjectWrites:      s.objectWrites.Load(),
		ObjectWriteBytes:  s.objectWriteBytes.Load(),
		PointerSwings:     s.pointerSwings.Load(),
		FlushTxnLogWrites: s.flushTxnLogWrites.Load(),
		FlushTxnLogBytes:  s.flushTxnLogBytes.Load(),
		Batches:           make(map[BatchMode]int64),
	}
	s.statsMu.Lock()
	for k, v := range s.batches {
		st.Batches[k] = v
	}
	s.statsMu.Unlock()
	return st
}

// ResetStats zeroes the I/O statistics.
func (s *Store) ResetStats() {
	s.objectReads.Store(0)
	s.objectWrites.Store(0)
	s.objectWriteBytes.Store(0)
	s.pointerSwings.Store(0)
	s.flushTxnLogWrites.Store(0)
	s.flushTxnLogBytes.Store(0)
	s.statsMu.Lock()
	s.batches = make(map[BatchMode]int64)
	s.statsMu.Unlock()
}

// Snapshot returns a deep copy of the stored state (test oracle use).
func (s *Store) Snapshot() map[op.ObjectID]Versioned {
	out := make(map[op.ObjectID]Versioned)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for x, v := range sh.objects {
			out[x] = Versioned{Val: append([]byte(nil), v.Val...), VSI: v.VSI}
		}
		sh.mu.RUnlock()
	}
	return out
}

// Restore replaces the stored state with a snapshot (media-recovery /
// backup support and test use).
func (s *Store) Restore(snap map[op.ObjectID]Versioned) {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.objects = make(map[op.ObjectID]Versioned)
		sh.mu.Unlock()
	}
	for x, v := range snap {
		s.installEntry(Entry{ID: x, Val: v.Val, VSI: v.VSI})
	}
	s.pending = nil
}

func cloneEntries(entries []Entry) []Entry {
	out := make([]Entry, len(entries))
	for i, e := range entries {
		out[i] = Entry{ID: e.ID, VSI: e.VSI, Delete: e.Delete, Val: append([]byte(nil), e.Val...)}
	}
	return out
}
