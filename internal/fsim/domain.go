package fsim

import (
	"errors"

	"logicallog/internal/workload"
)

// Domain adapts an FS to workload.Domain so the scenario-mix machinery
// (MixDriver, llrun -scenario, the explorer mix sweeps) can drive the
// file-system example the paper opens with: keys are file names, values
// file contents.  Inserts and updates land as the domain's own operations
// (Create for new files, physical WriteFile for overwrites), deletes
// terminate file lifetimes, and scans walk the live directory listing.
type Domain struct {
	fs *FS
}

// NewDomain wraps a file system as a scenario-mix domain.
func NewDomain(fs *FS) *Domain { return &Domain{fs: fs} }

// Put implements workload.Domain: Create for a new file, WriteFile for an
// overwrite.
func (d *Domain) Put(key, val []byte) error {
	if d.fs.Exists(string(key)) {
		return d.fs.WriteFile(string(key), val)
	}
	return d.fs.Create(string(key), val)
}

// Get implements workload.Domain.
func (d *Domain) Get(key []byte) ([]byte, bool, error) {
	v, err := d.fs.ReadFile(string(key))
	if errors.Is(err, ErrNotFound) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// Delete implements workload.Domain.
func (d *Domain) Delete(key []byte) (bool, error) {
	if !d.fs.Exists(string(key)) {
		return false, nil
	}
	return true, d.fs.Remove(string(key))
}

// Range implements workload.Domain: walk the live directory listing over
// [lo, hi) (hi nil/empty = unbounded) in name order.
func (d *Domain) Range(lo, hi []byte, fn func(key, val []byte) bool) error {
	names, err := d.fs.List()
	if err != nil {
		return err
	}
	for _, n := range names {
		if n < string(lo) || (len(hi) > 0 && n >= string(hi)) {
			continue
		}
		v, err := d.fs.ReadFile(n)
		if errors.Is(err, ErrNotFound) {
			continue
		}
		if err != nil {
			return err
		}
		if !fn([]byte(n), v) {
			return nil
		}
	}
	return nil
}

// Check implements workload.Domain: every listed file must be readable.
func (d *Domain) Check() error {
	names, err := d.fs.List()
	if err != nil {
		return err
	}
	for _, n := range names {
		if _, err := d.fs.ReadFile(n); err != nil {
			return err
		}
	}
	return nil
}

// Compile-time interface check.
var _ workload.Domain = (*Domain)(nil)
