package fsim

import (
	"testing"

	"logicallog/internal/core"
	"logicallog/internal/workload"
)

// TestDomainMixSweep drives the file-system domain through every built-in
// scenario mix with interleaved forces, minimal installs, and purges, then
// a forced crash: recovery must reproduce the driver's model exactly and
// the directory listing must stay consistent.
func TestDomainMixSweep(t *testing.T) {
	for _, mixName := range workload.MixNames() {
		t.Run(mixName, func(t *testing.T) {
			mix, err := workload.ParseMix(mixName)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := core.New(core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			Register(eng.Registry())
			dom := NewDomain(New(eng, "fs"))
			drv, err := workload.NewMixDriver(mix, 0xf51)
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 160; step++ {
				switch {
				case step%3 == 1:
					err = eng.Log().Force()
				case step%4 == 2:
					err = eng.InstallOne()
				case step%23 == 19:
					err = eng.FlushAll()
				}
				if err == nil {
					err = drv.Step(dom)
				}
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
			if err := eng.Log().Force(); err != nil {
				t.Fatal(err)
			}
			eng.Crash()
			if _, err := eng.Recover(); err != nil {
				t.Fatal(err)
			}
			if err := drv.Verify(dom); err != nil {
				t.Fatalf("recovered state diverges from the mix model: %v", err)
			}
			if err := dom.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDomainServesDuringRedo crashes a file-system mix run and reopens it
// with on-demand recovery: reads and the directory listing must come back
// correct while chains are still draining.
func TestDomainServesDuringRedo(t *testing.T) {
	mix, err := workload.ParseMix("write-burst")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.RedoWorkers = 1
	eng, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	Register(eng.Registry())
	dom := NewDomain(New(eng, "fs"))
	drv, err := workload.NewMixDriver(mix, 0xf52)
	if err != nil {
		t.Fatal(err)
	}
	if err := drv.Steps(dom, 120); err != nil {
		t.Fatal(err)
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	if _, err := eng.RecoverOnDemand(); err != nil {
		t.Fatal(err)
	}
	// Every read and the full listing below demand-redoes what it needs.
	if err := drv.Verify(dom); err != nil {
		t.Fatalf("mid-drain state diverges from the mix model: %v", err)
	}
	if err := dom.Check(); err != nil {
		t.Fatal(err)
	}
}
