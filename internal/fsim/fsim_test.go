package fsim

import (
	"bytes"
	"sort"
	"testing"

	"logicallog/internal/core"
	"logicallog/internal/op"
)

func newFS(t *testing.T) (*FS, *core.Engine) {
	t.Helper()
	eng, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	Register(eng.Registry())
	return New(eng, "fs"), eng
}

func TestCreateReadWriteRemove(t *testing.T) {
	fs, _ := newFS(t)
	if err := fs.Create("a.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, err := fs.ReadFile("a.txt")
	if err != nil || string(v) != "hello" {
		t.Fatalf("ReadFile = %q, %v", v, err)
	}
	if err := fs.WriteFile("a.txt", []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	v, _ = fs.ReadFile("a.txt")
	if string(v) != "rewritten" {
		t.Errorf("after write: %q", v)
	}
	if !fs.Exists("a.txt") || fs.Exists("nope") {
		t.Error("Exists wrong")
	}
	if err := fs.Remove("a.txt"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("a.txt") {
		t.Error("file survives Remove")
	}
	if _, err := fs.ReadFile("a.txt"); err == nil {
		t.Error("reading a removed file succeeded")
	}
}

func TestAppendTruncate(t *testing.T) {
	fs, _ := newFS(t)
	fs.Create("f", []byte("abc"))
	if err := fs.Append("f", []byte("def")); err != nil {
		t.Fatal(err)
	}
	v, _ := fs.ReadFile("f")
	if string(v) != "abcdef" {
		t.Errorf("append: %q", v)
	}
	if err := fs.Truncate("f", 2); err != nil {
		t.Fatal(err)
	}
	v, _ = fs.ReadFile("f")
	if string(v) != "ab" {
		t.Errorf("truncate: %q", v)
	}
	// Truncating longer than the file is a no-op.
	if err := fs.Truncate("f", 100); err != nil {
		t.Fatal(err)
	}
	v, _ = fs.ReadFile("f")
	if string(v) != "ab" {
		t.Errorf("over-truncate: %q", v)
	}
}

func TestCopySortConcat(t *testing.T) {
	fs, _ := newFS(t)
	fs.Create("src", []byte("dcba"))
	if err := fs.Copy("dst", "src"); err != nil {
		t.Fatal(err)
	}
	v, _ := fs.ReadFile("dst")
	if string(v) != "dcba" {
		t.Errorf("copy: %q", v)
	}
	if err := fs.Sort("sorted", "src"); err != nil {
		t.Fatal(err)
	}
	v, _ = fs.ReadFile("sorted")
	if string(v) != "abcd" {
		t.Errorf("sort: %q", v)
	}
	if err := fs.Concat("both", "src", "sorted"); err != nil {
		t.Fatal(err)
	}
	v, _ = fs.ReadFile("both")
	if string(v) != "dcbaabcd" {
		t.Errorf("concat: %q", v)
	}
}

func TestLogicalOpsLogOnlyIDs(t *testing.T) {
	fs, eng := newFS(t)
	big := bytes.Repeat([]byte("payload!"), 16*1024) // 128 KiB
	fs.Create("big", big)
	eng.ResetStats()
	if err := fs.Copy("copy", "big"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sort("sorted", "big"); err != nil {
		t.Fatal(err)
	}
	st := eng.Log().Stats()
	if st.ValueBytes != 0 {
		t.Errorf("logical copy/sort logged %d value bytes", st.ValueBytes)
	}
	if st.TotalOpPayloadBytes() > 256 {
		t.Errorf("logical copy/sort payload = %d bytes; want id-sized", st.TotalOpPayloadBytes())
	}
	// The physiological versions log the whole file.
	eng.ResetStats()
	if err := fs.CopyPhysical("copy2", "big"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SortPhysical("sorted2", "big"); err != nil {
		t.Fatal(err)
	}
	if got := eng.Log().Stats().ValueBytes; got < int64(2*len(big)) {
		t.Errorf("physical copy/sort logged %d bytes, want >= %d", got, 2*len(big))
	}
	// Both paths produce identical contents.
	a, _ := fs.ReadFile("copy")
	b, _ := fs.ReadFile("copy2")
	if !bytes.Equal(a, b) {
		t.Error("logical and physical copies differ")
	}
	s1, _ := fs.ReadFile("sorted")
	s2, _ := fs.ReadFile("sorted2")
	if !bytes.Equal(s1, s2) {
		t.Error("logical and physical sorts differ")
	}
	if !sort.SliceIsSorted(s1, func(i, j int) bool { return s1[i] < s1[j] }) {
		t.Error("sort output unsorted")
	}
}

func TestFilesSurviveCrash(t *testing.T) {
	fs, eng := newFS(t)
	fs.Create("keep", []byte("zyx"))
	fs.Copy("copy", "keep")
	fs.Sort("sorted", "keep")
	fs.Create("tmp", []byte("scratch"))
	fs.Remove("tmp")
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	if _, err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]string{"keep": "zyx", "copy": "zyx", "sorted": "xyz"} {
		v, err := fs.ReadFile(name)
		if err != nil || string(v) != want {
			t.Errorf("recovered %s = %q, %v", name, v, err)
		}
	}
	if fs.Exists("tmp") {
		t.Error("removed file resurrected")
	}
}

func TestCopyChainSurvivesCrashMidFlush(t *testing.T) {
	// A chain of copies builds real flush dependencies; crash with some of
	// them installed.
	fs, eng := newFS(t)
	fs.Create(fname(0), []byte("root"))
	for i := 1; i <= 5; i++ {
		if err := fs.Copy(fname(i), fname(i-1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.InstallOne(); err != nil {
		t.Fatal(err)
	}
	if err := eng.InstallOne(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	if _, err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 5; i++ {
		v, err := fs.ReadFile(fname(i))
		if err != nil || string(v) != "root" {
			t.Errorf("recovered %s = %q, %v", fname(i), v, err)
		}
	}
}

func fname(i int) string {
	return string(rune('a'+i)) + ".dat"
}

func TestList(t *testing.T) {
	fs, eng := newFS(t)
	fs.Create("b", []byte("2"))
	fs.Create("a", []byte("1"))
	fs.Create("doomed", []byte("3"))
	fs.Remove("doomed")
	// No flush: a created-but-never-installed file must still be listed.
	got, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("List = %v", got)
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// A deletion that reached the stable store stays hidden too.
	if got, err = fs.List(); err != nil || len(got) != 2 {
		t.Errorf("List after flush = %v, %v", got, err)
	}
	// A second FS namespace is invisible.
	other := New(eng, "other")
	other.Create("c", []byte("x"))
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if got, err = fs.List(); err != nil || len(got) != 2 {
		t.Errorf("namespaces leaked: %v, %v", got, err)
	}
	if got, err = other.List(); err != nil || len(got) != 1 {
		t.Errorf("other namespace = %v, %v", got, err)
	}
}

func TestTruncateBadParams(t *testing.T) {
	fs, eng := newFS(t)
	fs.Create("f", []byte("abc"))
	bad := op.NewPhysioWrite(op.ObjectID("fs/f"), FuncTruncate, []byte("junk"))
	if err := eng.Execute(bad); err == nil {
		t.Error("bad truncate params accepted")
	}
}
