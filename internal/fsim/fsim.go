// Package fsim implements the file-system recovery domain of the paper
// (Section 1): files are recoverable objects, and the bulk operations the
// paper highlights — copy and sort — are logged as B-form logical operations
// (X <- g(Y)) that record only the source and target file ids, never the
// file contents.
//
// The package also provides physiological fallbacks (copy/sort that log the
// produced contents) so experiment E8 can compare logging cost on identical
// workloads.
package fsim

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"logicallog/internal/core"
	"logicallog/internal/op"
)

// Function ids registered by Register.
const (
	// FuncTruncate is a physiological truncation: X <- X[:n].
	FuncTruncate op.FuncID = "fsim.truncate"
	// FuncAppendData is a physiological append of logged data: X <- X||p.
	FuncAppendData op.FuncID = "fsim.append"
	// FuncConcatFiles is a logical concatenation: Z <- X || Y.
	FuncConcatFiles op.FuncID = "fsim.concat"
)

// Register installs the file-system transformations on a registry.
func Register(reg *op.Registry) {
	reg.Register(FuncTruncate, truncateFn)
	reg.Register(FuncAppendData, appendFn)
	reg.Register(FuncConcatFiles, concatFn)
}

func truncateFn(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	id, v, err := sole(reads)
	if err != nil {
		return nil, err
	}
	fields, err := op.DecodeParams(params)
	if err != nil || len(fields) != 1 || len(fields[0]) != 8 {
		return nil, fmt.Errorf("fsim: truncate wants an 8-byte length param")
	}
	n := int(beUint64(fields[0]))
	if n > len(v) {
		n = len(v)
	}
	return map[op.ObjectID][]byte{id: append([]byte(nil), v[:n]...)}, nil
}

func appendFn(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	id, v, err := sole(reads)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(v)+len(params))
	out = append(out, v...)
	out = append(out, params...)
	return map[op.ObjectID][]byte{id: out}, nil
}

// concatFn params: EncodeParams(target, first, second).
func concatFn(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	fields, err := op.DecodeParams(params)
	if err != nil || len(fields) != 3 {
		return nil, fmt.Errorf("fsim: concat wants (target, first, second) params")
	}
	a, ok := reads[op.ObjectID(fields[1])]
	if !ok {
		return nil, fmt.Errorf("fsim: concat missing %q", fields[1])
	}
	b, ok := reads[op.ObjectID(fields[2])]
	if !ok {
		return nil, fmt.Errorf("fsim: concat missing %q", fields[2])
	}
	out := make([]byte, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return map[op.ObjectID][]byte{op.ObjectID(fields[0]): out}, nil
}

func sole(reads map[op.ObjectID][]byte) (op.ObjectID, []byte, error) {
	if len(reads) != 1 {
		return "", nil, fmt.Errorf("fsim: expected 1 read, got %d", len(reads))
	}
	for id, v := range reads {
		return id, v, nil
	}
	panic("unreachable")
}

func beUint64(b []byte) uint64 {
	var x uint64
	for _, c := range b {
		x = x<<8 | uint64(c)
	}
	return x
}

func beBytes(x uint64) []byte {
	out := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		out[i] = byte(x)
		x >>= 8
	}
	return out
}

// ErrNotFound is returned for missing files.
var ErrNotFound = errors.New("fsim: file not found")

// FS is a recoverable flat file system over an engine.  File names map to
// object ids under a prefix so several file systems can share one engine.
type FS struct {
	eng    *core.Engine
	prefix string
}

// New returns a file system over eng with the given namespace prefix
// (e.g. "fs").  The engine's registry must have Register applied.
func New(eng *core.Engine, prefix string) *FS {
	return &FS{eng: eng, prefix: prefix}
}

func (fs *FS) oid(name string) op.ObjectID {
	return op.ObjectID(fs.prefix + "/" + name)
}

// Create creates a file with the given contents (physical operation: the
// initial contents must be logged — they exist nowhere else).
func (fs *FS) Create(name string, contents []byte) error {
	return fs.eng.Execute(op.NewCreate(fs.oid(name), contents))
}

// ReadFile returns the file contents.
func (fs *FS) ReadFile(name string) ([]byte, error) {
	v, err := fs.eng.Get(fs.oid(name))
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return v, nil
}

// WriteFile overwrites the file with logged contents (physical).
func (fs *FS) WriteFile(name string, contents []byte) error {
	return fs.eng.Execute(op.NewPhysicalWrite(fs.oid(name), contents))
}

// Append appends logged data (physiological: only the delta is logged).
func (fs *FS) Append(name string, data []byte) error {
	return fs.eng.Execute(op.NewPhysioWrite(fs.oid(name), FuncAppendData, data))
}

// Truncate shortens the file to n bytes (physiological).
func (fs *FS) Truncate(name string, n uint64) error {
	return fs.eng.Execute(op.NewPhysioWrite(fs.oid(name), FuncTruncate, op.EncodeParams(beBytes(n))))
}

// Copy copies src to dst as a logical B-form operation: only the two file
// ids are logged (the paper's file-copy example).
func (fs *FS) Copy(dst, src string) error {
	return fs.eng.Execute(op.NewLogical(op.FuncCopy, []byte(fs.oid(dst)),
		[]op.ObjectID{fs.oid(src)}, []op.ObjectID{fs.oid(dst)}))
}

// CopyPhysical copies src to dst logging dst's full contents — the
// physiological comparison (Figure 1(b)).
func (fs *FS) CopyPhysical(dst, src string) error {
	v, err := fs.ReadFile(src)
	if err != nil {
		return err
	}
	return fs.eng.Execute(op.NewPhysicalWrite(fs.oid(dst), v))
}

// Sort writes the byte-sorted contents of src into dst as a logical
// operation (the paper's sort example — only ids logged).
func (fs *FS) Sort(dst, src string) error {
	return fs.eng.Execute(op.NewLogical(op.FuncSort, []byte(fs.oid(dst)),
		[]op.ObjectID{fs.oid(src)}, []op.ObjectID{fs.oid(dst)}))
}

// SortPhysical sorts src into dst logging the sorted contents.
func (fs *FS) SortPhysical(dst, src string) error {
	v, err := fs.ReadFile(src)
	if err != nil {
		return err
	}
	out := append([]byte(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return fs.eng.Execute(op.NewPhysicalWrite(fs.oid(dst), out))
}

// Concat concatenates files a and b into dst logically.
func (fs *FS) Concat(dst, a, b string) error {
	params := op.EncodeParams([]byte(fs.oid(dst)), []byte(fs.oid(a)), []byte(fs.oid(b)))
	return fs.eng.Execute(op.NewLogical(FuncConcatFiles, params,
		[]op.ObjectID{fs.oid(a), fs.oid(b)}, []op.ObjectID{fs.oid(dst)}))
}

// Remove deletes the file (terminating its lifetime; Section 5's transient-
// file optimization applies).
func (fs *FS) Remove(name string) error {
	return fs.eng.Execute(op.NewDelete(fs.oid(name)))
}

// Exists reports whether the file currently exists.
func (fs *FS) Exists(name string) bool {
	_, err := fs.eng.Get(fs.oid(name))
	return err == nil
}

// List returns the names of all live files under this prefix, in order.
// It enumerates through the engine, so it sees created-but-never-installed
// files the stable store alone would miss, hides cached deletions, and —
// during an on-demand recovery drain — gates on the range's writer chains.
func (fs *FS) List() ([]string, error) {
	lo := op.ObjectID(fs.prefix + "/")
	hi := op.ObjectID(fs.prefix + "0") // one past '/': every name is below it
	ids, err := fs.eng.Objects(lo, hi)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ids))
	for _, id := range ids {
		if n, ok := fs.nameOf(id); ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

func (fs *FS) nameOf(id op.ObjectID) (string, bool) {
	p := fs.prefix + "/"
	if strings.HasPrefix(string(id), p) {
		return string(id)[len(p):], true
	}
	return "", false
}
