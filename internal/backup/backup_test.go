package backup_test

import (
	"fmt"
	"testing"

	"logicallog/internal/backup"
	"logicallog/internal/cache"
	"logicallog/internal/core"
	"logicallog/internal/op"
	"logicallog/internal/recovery"
	"logicallog/internal/sim"
	"logicallog/internal/writegraph"
)

func recOpts(eng *core.Engine) recovery.Options {
	return recovery.Options{
		Test: recovery.TestVSI,
		Cache: cache.Config{
			Policy:      writegraph.PolicyRW,
			Strategy:    cache.StrategyIdentityWrite,
			LogInstalls: true,
			Registry:    eng.Registry(),
		},
	}
}

func TestBackupRestoreQuiescent(t *testing.T) {
	eng, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := eng.Execute(op.NewCreate(op.ObjectID(fmt.Sprintf("o%d", i)), []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	b, err := backup.Take(eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Objects) != 5 {
		t.Fatalf("backup has %d objects", len(b.Objects))
	}
	if b.MinRetainLSN() != b.StartLSN {
		t.Error("MinRetainLSN wrong")
	}

	// Media failure: nuke the stable store, recover from backup + log.
	eng.Store().Restore(nil)
	eng.Crash()
	res, err := backup.MediaRecover(eng, b, recOpts(eng))
	if err != nil {
		t.Fatal(err)
	}
	if res.Redone != 0 {
		t.Errorf("quiescent backup needed %d redos", res.Redone)
	}
	for i := 0; i < 5; i++ {
		v, err := res.Manager.Get(op.ObjectID(fmt.Sprintf("o%d", i)))
		if err != nil || v[0] != byte(i) {
			t.Errorf("o%d = %v, %v", i, v, err)
		}
	}
}

// TestFuzzyBackupMediaRecovery interleaves updates and installs between the
// backup's object copies — some copied objects are older than others — and
// verifies media recovery reconciles everything via log replay.
func TestFuzzyBackupMediaRecovery(t *testing.T) {
	eng, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ids := []op.ObjectID{"a", "b", "c", "d"}
	for i, id := range ids {
		if err := eng.Execute(op.NewCreate(id, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// During the backup, update every object (logically, chaining values
	// across objects) and install aggressively so the stable store churns
	// under the copier's feet.
	step := 0
	b, err := backup.Take(eng, func(copied int) error {
		for j := 0; j < 3; j++ {
			x := ids[step%len(ids)]
			y := ids[(step+1)%len(ids)]
			step++
			o := op.NewLogical(op.FuncXor, op.EncodeParams([]byte(y), []byte(x)),
				[]op.ObjectID{x, y}, []op.ObjectID{y})
			if err := eng.Execute(o); err != nil {
				return err
			}
		}
		return eng.InstallOne()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Keep going after the backup finishes, then force the log.
	for j := 0; j < 5; j++ {
		if err := eng.Execute(op.NewPhysioWrite(ids[j%len(ids)], op.FuncAppend, []byte{byte(j)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	horizon := eng.Log().StableLSN()

	// Expected final values from the durable history oracle.
	oracle := sim.NewOracle(eng.Registry())
	for _, o := range eng.History() {
		if o.LSN != op.NilSI && o.LSN <= horizon {
			if err := oracle.Apply(o); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Media failure + media recovery from the fuzzy backup.
	eng.Store().Restore(nil)
	eng.Crash()
	res, err := backup.MediaRecover(eng, b, recOpts(eng))
	if err != nil {
		t.Fatal(err)
	}
	if res.Redone == 0 {
		t.Error("fuzzy backup required no redo; the interleave did nothing")
	}
	for _, id := range ids {
		want, _ := oracle.Value(id)
		got, err := res.Manager.Get(id)
		if err != nil || !op.Equal(got, want) {
			t.Errorf("%s = %v (%v), want %v", id, got, err, want)
		}
	}
}

func TestMediaRecoverRejectsTruncatedLog(t *testing.T) {
	eng, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Execute(op.NewCreate("x", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	b, err := backup.Take(eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	// More activity, then checkpoint + truncate past the backup horizon.
	for i := 0; i < 10; i++ {
		if err := eng.Execute(op.NewPhysicalWrite("x", []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if eng.Log().FirstLSN() <= b.MinRetainLSN() {
		t.Skip("truncation did not pass the backup horizon")
	}
	if _, err := backup.MediaRecover(eng, b, recOpts(eng)); err == nil {
		t.Error("media recovery with a truncated log must fail loudly")
	}
}

func TestBackupSkipsVanishedObjects(t *testing.T) {
	eng, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Execute(op.NewCreate("stays", []byte("s"))); err != nil {
		t.Fatal(err)
	}
	if err := eng.Execute(op.NewCreate("goes", []byte("g"))); err != nil {
		t.Fatal(err)
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Delete "goes" (and install the delete) in the middle of the copy.
	b, err := backup.Take(eng, func(copied int) error {
		if copied == 1 {
			if err := eng.Execute(op.NewDelete("goes")); err != nil {
				return err
			}
			return eng.FlushAll()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Store().Restore(nil)
	eng.Crash()
	res, err := backup.MediaRecover(eng, b, recOpts(eng))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Manager.Get("goes"); err == nil {
		t.Error("deleted object resurrected by media recovery")
	}
	if v, err := res.Manager.Get("stays"); err != nil || string(v) != "s" {
		t.Errorf("stays = %q, %v", v, err)
	}
}
