// Package backup implements fuzzy backups and media recovery, the extension
// the paper defers to its reference [10] ("Media Recovery When Using Logical
// Log Operations").
//
// A fuzzy backup copies the stable database object by object while normal
// execution — including installs that reorder object states — continues.
// The copy is therefore not action-consistent: different objects reflect
// different moments.  Media recovery makes it consistent the same way crash
// recovery makes the stable database consistent: restore the backup as the
// stable state and replay the log from the backup's start horizon with the
// standard REDO machinery.  The vSI stored with each backed-up object makes
// the replay skip exactly the operations each object already reflects.
//
// The one constraint a fuzzy backup adds (as [10] discusses) is on log
// truncation: the log must retain every record from the backup's start
// horizon onward until the backup is superseded, because the backup's older
// object states need older log records than the live stable database does.
// BackupSet.MinRetainLSN reports that horizon.
package backup

import (
	"fmt"

	"logicallog/internal/cache"
	"logicallog/internal/core"
	"logicallog/internal/op"
	"logicallog/internal/recovery"
	"logicallog/internal/stable"
	"logicallog/internal/wal"
)

// Backup is one fuzzy backup of a stable store.
type Backup struct {
	// StartLSN is the durable log horizon when the copy began; media
	// recovery replays from here.
	StartLSN op.SI
	// EndLSN is the horizon when the copy finished (diagnostics).
	EndLSN op.SI
	// Objects is the fuzzy object copy (values with their vSIs).
	Objects map[op.ObjectID]stable.Versioned
}

// Take copies the engine's stable store object by object.  interleave, when
// non-nil, is invoked between object copies so tests and simulations can run
// normal execution (updates, installs, checkpoints) mid-backup — that is
// what makes the backup fuzzy.
func Take(eng *core.Engine, interleave func(copied int) error) (*Backup, error) {
	// The replay origin is the engine's recovery horizon, not just the
	// durable log horizon: an operation logged before the backup began
	// but still uninstalled is in neither the image nor a replay from
	// StableLSN+1, so the origin must reach back to the earliest dirty
	// rSI.  Each copied object's vSI keeps the longer replay exact.
	start, err := eng.RecoveryHorizon()
	if err != nil {
		return nil, err
	}
	b := &Backup{
		StartLSN: start,
		Objects:  make(map[op.ObjectID]stable.Versioned),
	}
	for i, id := range eng.Store().IDs() {
		v, err := eng.Store().Read(id)
		if err != nil {
			// The object vanished mid-backup (installed delete): skip it;
			// replay of the delete is a no-op for a missing object.
			continue
		}
		b.Objects[id] = v
		if interleave != nil {
			if err := interleave(i + 1); err != nil {
				return nil, err
			}
		}
	}
	b.EndLSN = eng.Log().StableLSN()
	return b, nil
}

// MinRetainLSN returns the earliest log record media recovery from this
// backup could need; the log must not be truncated past it while the backup
// is the restore point.
func (b *Backup) MinRetainLSN() op.SI { return b.StartLSN }

// RegisterRetention pins the log's truncation floor at the backup's horizon
// (see wal.Log.RegisterRetention) so a checkpoint can never strand the
// backup.  Call the returned release once the backup is superseded.
func (b *Backup) RegisterRetention(l *wal.Log) (release func()) {
	return l.RegisterRetention("backup", b.MinRetainLSN)
}

// MediaRecover rebuilds a database from the backup plus the surviving log:
// it restores the backup image into the engine's stable store and runs the
// standard recovery machinery (analysis from the backup horizon, then redo).
// The live stable store is assumed lost (that is the media failure).
func MediaRecover(eng *core.Engine, b *Backup, opts recovery.Options) (*recovery.Result, error) {
	if eng.Log().FirstLSN() > b.StartLSN {
		return nil, fmt.Errorf("backup: log truncated to %d, backup needs %d",
			eng.Log().FirstLSN(), b.StartLSN)
	}
	eng.Store().Restore(b.Objects)
	// The dirty-object-table bookkeeping (checkpoints, install records)
	// describes the *lost* stable state, not the backup image; analysis
	// must therefore distrust it and scan from the backup horizon.  We do
	// that by running the redo pass over [StartLSN, end) with the vSI
	// test: each backed-up object's vSI makes replay exact per object.
	mgr, err := cache.NewManager(opts.Cache, eng.Log(), eng.Store())
	if err != nil {
		return nil, err
	}
	res := &recovery.Result{Manager: mgr, RedoStart: b.StartLSN}
	sc, err := eng.Log().Scan(b.StartLSN)
	if err != nil {
		return nil, err
	}
	for {
		rec, err := scanNext(sc)
		if rec == nil || err != nil {
			if err != nil {
				return nil, err
			}
			break
		}
		if rec.Type != wal.RecOperation {
			continue
		}
		res.ScannedOps++
		o := rec.Op
		installed := false
		for _, x := range o.WriteSet {
			if mgr.CurrentVSI(x) >= o.LSN {
				installed = true
				break
			}
		}
		if installed {
			res.SkippedInstalled++
			continue
		}
		voided, err := mgr.TryApplyLogged(o.Clone())
		if err != nil {
			return nil, fmt.Errorf("backup: media redo of %s: %w", o, err)
		}
		if voided {
			res.Voided++
		} else {
			res.Redone++
		}
	}
	return res, nil
}

func scanNext(sc *wal.Scanner) (*wal.Record, error) {
	rec, err := sc.Next()
	if err != nil {
		// io.EOF terminates the scan cleanly.
		return nil, nil
	}
	return rec, err
}
