// Determinism tests for parallel redo: every crash/recover scenario must
// yield bit-identical recovered state and Result counters at every worker
// count.  The test lives in an external package so it can drive full engine
// workloads (core + sim) against recovery directly.
package recovery_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"logicallog/internal/cache"
	"logicallog/internal/core"
	"logicallog/internal/op"
	"logicallog/internal/recovery"
	"logicallog/internal/sim"
	"logicallog/internal/stable"
	"logicallog/internal/wal"
	"logicallog/internal/writegraph"
)

// crashImage is a deep copy of the durable state a crash leaves behind: the
// forced log bytes and the stable store contents.
type crashImage struct {
	logBytes []byte
	snap     map[op.ObjectID]stable.Versioned
}

// capture runs the scenario's workload against a fresh engine, crashes it,
// and returns the durable image plus the object universe in play.
func capture(t *testing.T, opts core.Options, sc sim.Scenario) (crashImage, []op.ObjectID) {
	t.Helper()
	dev := wal.NewMemDevice()
	opts.LogDevice = dev
	eng, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.DriveWorkload(eng, sc); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	logBytes, err := dev.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	img := crashImage{logBytes: logBytes, snap: eng.Store().Snapshot()}
	universe := make([]op.ObjectID, sc.Objects)
	for i := range universe {
		universe[i] = op.ObjectID(fmt.Sprintf("obj%02d", i))
	}
	return img, universe
}

// counters is the comparable projection of recovery.Result.
type counters struct {
	CheckpointLSN, RedoStart                           op.SI
	Analyzed, Scanned                                  int
	Redone, SkippedInstalled, SkippedUnexposed, Voided int
	Repaired                                           bool
}

// recoverImage recovers an independent copy of the crash image with the
// given worker count and returns the counters, the post-recovery stable
// snapshot, and each universe object's recovered value ("" marks absent).
func recoverImage(t *testing.T, img crashImage, test recovery.RedoTest, cfg cache.Config, workers int, universe []op.ObjectID) (counters, map[op.ObjectID]stable.Versioned, map[op.ObjectID]string) {
	t.Helper()
	dev := wal.NewMemDevice()
	if err := dev.Append(img.logBytes); err != nil {
		t.Fatal(err)
	}
	log, err := wal.New(dev)
	if err != nil {
		t.Fatal(err)
	}
	store := stable.NewStore()
	store.Restore(img.snap)
	res, err := recovery.Recover(log, store, recovery.Options{
		Test:        test,
		Cache:       cfg,
		RedoWorkers: workers,
	})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	c := counters{
		CheckpointLSN:    res.CheckpointLSN,
		RedoStart:        res.RedoStart,
		Analyzed:         res.AnalyzedRecords,
		Scanned:          res.ScannedOps,
		Redone:           res.Redone,
		SkippedInstalled: res.SkippedInstalled,
		SkippedUnexposed: res.SkippedUnexposed,
		Voided:           res.Voided,
		Repaired:         res.PendingFlushTxnRepaired,
	}
	values := make(map[op.ObjectID]string, len(universe))
	for _, x := range universe {
		v, err := res.Manager.Get(x)
		switch {
		case err == nil:
			values[x] = string(v)
		case errors.Is(err, cache.ErrNotFound):
			values[x] = ""
		default:
			t.Fatalf("workers=%d: Get(%s): %v", workers, x, err)
		}
	}
	return c, store.Snapshot(), values
}

func sameSnap(a, b map[op.ObjectID]stable.Versioned) bool {
	if len(a) != len(b) {
		return false
	}
	for x, av := range a {
		bv, ok := b[x]
		if !ok || av.VSI != bv.VSI || !bytes.Equal(av.Val, bv.Val) {
			return false
		}
	}
	return true
}

// parallelConfigs mirrors the sim test matrix: every REDO test × flush
// strategy combination the engine supports.
func parallelConfigs() map[string]core.Options {
	return map[string]core.Options{
		"rW/identity/rSI": {
			Policy: writegraph.PolicyRW, Strategy: cache.StrategyIdentityWrite,
			RedoTest: recovery.TestRSI, LogInstalls: true,
		},
		"rW/shadow/rSI": {
			Policy: writegraph.PolicyRW, Strategy: cache.StrategyShadow,
			RedoTest: recovery.TestRSI, LogInstalls: true,
		},
		"rW/flushtxn/vSI": {
			Policy: writegraph.PolicyRW, Strategy: cache.StrategyFlushTxn,
			RedoTest: recovery.TestVSI, LogInstalls: true,
		},
		"W/shadow/vSI": {
			Policy: writegraph.PolicyW, Strategy: cache.StrategyShadow,
			RedoTest: recovery.TestVSI, LogInstalls: true,
		},
		"rW/identity/redo-all": {
			Policy: writegraph.PolicyRW, Strategy: cache.StrategyIdentityWrite,
			RedoTest: recovery.TestRedoAll, LogInstalls: true,
		},
	}
}

var workerCounts = []int{1, 2, 8}

// checkScenario recovers one crash image at every worker count and requires
// identical counters, stable snapshots, and recovered object values.
func checkScenario(t *testing.T, opts core.Options, sc sim.Scenario) {
	t.Helper()
	img, universe := capture(t, opts, sc)
	cfg := cache.Config{
		Policy:      opts.Policy,
		Strategy:    opts.Strategy,
		LogInstalls: opts.LogInstalls,
		Registry:    op.NewRegistry(),
	}
	baseC, baseSnap, baseVals := recoverImage(t, img, opts.RedoTest, cfg, workerCounts[0], universe)
	for _, w := range workerCounts[1:] {
		c, snap, vals := recoverImage(t, img, opts.RedoTest, cfg, w, universe)
		if c != baseC {
			t.Errorf("seed %d workers=%d: counters diverged:\n got %+v\nwant %+v", sc.Seed, w, c, baseC)
		}
		if !sameSnap(snap, baseSnap) {
			t.Errorf("seed %d workers=%d: stable snapshot diverged", sc.Seed, w)
		}
		for x, want := range baseVals {
			if vals[x] != want {
				t.Errorf("seed %d workers=%d: object %s diverged: got %q want %q", sc.Seed, w, x, vals[x], want)
			}
		}
	}
}

// TestParallelRedoMatrix runs the full configuration matrix over randomized
// scenarios at worker counts {1, 2, 8}.
func TestParallelRedoMatrix(t *testing.T) {
	for name, opts := range parallelConfigs() {
		opts := opts
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 10; seed++ {
				checkScenario(t, opts, sim.DefaultScenario(seed))
			}
		})
	}
}

// TestParallelRedoLogOnly recovers a log-only history (nothing installed or
// checkpointed before the crash) — the longest possible redo scan.
func TestParallelRedoLogOnly(t *testing.T) {
	opts := core.DefaultOptions()
	for seed := int64(30); seed < 36; seed++ {
		sc := sim.DefaultScenario(seed)
		sc.InstallEvery = 0
		sc.CheckpointEvery = 0
		sc.ForceEvery = 2
		sc.Steps = 150
		checkScenario(t, opts, sc)
	}
}

// TestParallelRedoHeavyDelete stresses terminated-object voiding under
// concurrency.
func TestParallelRedoHeavyDelete(t *testing.T) {
	opts := core.DefaultOptions()
	for seed := int64(60); seed < 66; seed++ {
		sc := sim.DefaultScenario(seed)
		sc.DeletePercent = 30
		sc.Steps = 120
		checkScenario(t, opts, sc)
	}
}

// TestParallelRedoWideUniverse uses many objects so the stream splits into
// many genuinely independent chains.
func TestParallelRedoWideUniverse(t *testing.T) {
	opts := core.DefaultOptions()
	for seed := int64(90); seed < 94; seed++ {
		sc := sim.DefaultScenario(seed)
		sc.Objects = 48
		sc.Steps = 300
		checkScenario(t, opts, sc)
	}
}
