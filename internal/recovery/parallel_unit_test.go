package recovery

import (
	"testing"

	"logicallog/internal/op"
)

// mkOp builds a minimal operation with the given read/write sets for
// partitioning tests (the partitioner inspects only the sets).
func mkOp(reads, writes []op.ObjectID) *op.Operation {
	return &op.Operation{ReadSet: reads, WriteSet: writes}
}

// chainShape reduces a partition to per-chain operation indices for
// comparison.
func chainShape(ops []*op.Operation, chains [][]*op.Operation) [][]int {
	idx := make(map[*op.Operation]int, len(ops))
	for i, o := range ops {
		idx[o] = i
	}
	out := make([][]int, len(chains))
	for ci, chain := range chains {
		for _, o := range chain {
			out[ci] = append(out[ci], idx[o])
		}
	}
	return out
}

func TestPartitionChains(t *testing.T) {
	a, b, c, d := op.ObjectID("A"), op.ObjectID("B"), op.ObjectID("C"), op.ObjectID("D")
	cases := []struct {
		name string
		ops  []*op.Operation
		want [][]int
	}{
		{
			name: "disjoint writers split",
			ops: []*op.Operation{
				mkOp(nil, []op.ObjectID{a}),
				mkOp(nil, []op.ObjectID{b}),
				mkOp(nil, []op.ObjectID{a}),
			},
			want: [][]int{{0, 2}, {1}},
		},
		{
			name: "RAW merges reader with writer",
			ops: []*op.Operation{
				mkOp(nil, []op.ObjectID{a}),
				mkOp([]op.ObjectID{a}, []op.ObjectID{b}),
				mkOp(nil, []op.ObjectID{c}),
			},
			want: [][]int{{0, 1}, {2}},
		},
		{
			name: "WAR merges earlier reader with later writer",
			ops: []*op.Operation{
				mkOp([]op.ObjectID{a}, []op.ObjectID{b}),
				mkOp(nil, []op.ObjectID{a}),
			},
			want: [][]int{{0, 1}},
		},
		{
			name: "read-read does not merge",
			ops: []*op.Operation{
				mkOp([]op.ObjectID{d}, []op.ObjectID{a}),
				mkOp([]op.ObjectID{d}, []op.ObjectID{b}),
			},
			want: [][]int{{0}, {1}},
		},
		{
			name: "transitive chain through shared object",
			ops: []*op.Operation{
				mkOp(nil, []op.ObjectID{a}),
				mkOp([]op.ObjectID{a}, []op.ObjectID{b}),
				mkOp([]op.ObjectID{b}, []op.ObjectID{c}),
				mkOp(nil, []op.ObjectID{d}),
			},
			want: [][]int{{0, 1, 2}, {3}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := chainShape(tc.ops, partitionChains(tc.ops))
			if len(got) != len(tc.want) {
				t.Fatalf("chains = %v, want %v", got, tc.want)
			}
			for ci := range got {
				if len(got[ci]) != len(tc.want[ci]) {
					t.Fatalf("chains = %v, want %v", got, tc.want)
				}
				for j := range got[ci] {
					if got[ci][j] != tc.want[ci][j] {
						t.Fatalf("chains = %v, want %v", got, tc.want)
					}
				}
			}
		})
	}
}

// TestPartitionChainsPreservesLogOrder checks the per-chain order invariant
// on a synthetic interleaving: within any chain, operation indices ascend.
func TestPartitionChainsPreservesLogOrder(t *testing.T) {
	var ops []*op.Operation
	objs := []op.ObjectID{"A", "B", "C", "D", "E"}
	for i := 0; i < 100; i++ {
		x := objs[i%len(objs)]
		y := objs[(i*7+3)%len(objs)]
		ops = append(ops, mkOp([]op.ObjectID{y}, []op.ObjectID{x}))
	}
	for ci, chain := range chainShape(ops, partitionChains(ops)) {
		for j := 1; j < len(chain); j++ {
			if chain[j] <= chain[j-1] {
				t.Fatalf("chain %d out of log order: %v", ci, chain)
			}
		}
	}
}
