package recovery_test

import (
	"testing"

	"logicallog/internal/cache"
	"logicallog/internal/core"
	"logicallog/internal/fault"
	"logicallog/internal/op"
	. "logicallog/internal/recovery"
	"logicallog/internal/stable"
	"logicallog/internal/wal"
	"logicallog/internal/writegraph"
)

func TestRedoTestString(t *testing.T) {
	if TestRedoAll.String() != "redo-all" || TestVSI.String() != "vSI" ||
		TestRSI.String() != "rSI" || RedoTest(9).String() == "" {
		t.Error("RedoTest.String wrong")
	}
}

func newEngine(t *testing.T, opts core.Options) *core.Engine {
	t.Helper()
	eng, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func exec(t *testing.T, eng *core.Engine, o *op.Operation) {
	t.Helper()
	if err := eng.Execute(o); err != nil {
		t.Fatalf("Execute(%s): %v", o, err)
	}
}

func TestRecoverEmptyLog(t *testing.T) {
	eng := newEngine(t, core.DefaultOptions())
	eng.Crash()
	res, err := eng.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Redone != 0 || res.ScannedOps != 0 {
		t.Errorf("empty recovery = %+v", res)
	}
}

func TestRecoverNothingForced(t *testing.T) {
	// Ops executed but never forced: a crash loses them entirely; the
	// stable database stays empty and recovery redoes nothing.
	eng := newEngine(t, core.DefaultOptions())
	exec(t, eng, op.NewCreate("X", []byte("v")))
	eng.Crash()
	res, err := eng.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Redone != 0 {
		t.Errorf("Redone = %d, want 0", res.Redone)
	}
	if _, err := eng.Get("X"); err == nil {
		t.Error("unforced operation survived the crash")
	}
}

func TestRecoverForcedButUnflushed(t *testing.T) {
	// Ops forced to the log but not installed: redo recreates them.
	eng := newEngine(t, core.DefaultOptions())
	exec(t, eng, op.NewCreate("X", []byte("v0")))
	exec(t, eng, op.NewPhysioWrite("X", op.FuncAppend, []byte("+1")))
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	res, err := eng.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Redone != 2 {
		t.Errorf("Redone = %d, want 2", res.Redone)
	}
	v, err := eng.Get("X")
	if err != nil || string(v) != "v0+1" {
		t.Errorf("recovered X = %q, %v", v, err)
	}
	// The recovered write graph lets the engine flush.
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	sv, err := eng.Store().Read("X")
	if err != nil || string(sv.Val) != "v0+1" {
		t.Errorf("flushed X = %+v, %v", sv, err)
	}
}

func TestVSISkipsInstalledOps(t *testing.T) {
	// Installation logging off: the redo scan covers installed operations,
	// and only the per-object vSI comparison prevents their re-execution.
	eng := newEngine(t, core.Options{
		Policy:      writegraph.PolicyRW,
		Strategy:    cache.StrategyIdentityWrite,
		RedoTest:    TestVSI,
		LogInstalls: false,
	})
	exec(t, eng, op.NewCreate("X", []byte("v0")))
	exec(t, eng, op.NewCreate("Y", []byte("w0")))
	if err := eng.FlushAll(); err != nil { // installs both
		t.Fatal(err)
	}
	exec(t, eng, op.NewPhysioWrite("X", op.FuncAppend, []byte("+1")))
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	res, err := eng.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Redone != 1 {
		t.Errorf("Redone = %d, want 1 (only the unflushed append)", res.Redone)
	}
	if res.SkippedInstalled == 0 {
		t.Error("vSI test skipped nothing")
	}
	v, _ := eng.Get("X")
	if string(v) != "v0+1" {
		t.Errorf("recovered X = %q", v)
	}
}

// TestRSISkipsUnexposed is the paper's headline recovery optimization: an
// operation whose entire writeset is unexposed (operation A below — its only
// written object X was installed without flushing because C blindly rewrote
// it) must be bypassed by the generalized rSI test, while the traditional
// vSI test — seeing no installed witness, because X was never flushed —
// re-executes it.
func TestRSISkipsUnexposed(t *testing.T) {
	run := func(test RedoTest) *Result {
		eng := newEngine(t, core.Options{
			Policy:      writegraph.PolicyRW,
			Strategy:    cache.StrategyIdentityWrite,
			RedoTest:    test,
			LogInstalls: true,
		})
		// pin: a never-installed object that pins the redo scan start at
		// LSN 1 so every record is scanned and tested.
		exec(t, eng, op.NewCreate("pin", []byte("p")))       // LSN 1
		exec(t, eng, op.NewPhysicalWrite("X", []byte("xA"))) // LSN 2: A
		exec(t, eng, op.NewLogical(op.FuncCopy, []byte("Z"), // LSN 3: B
			[]op.ObjectID{"X"}, []op.ObjectID{"Z"}))
		exec(t, eng, op.NewPhysicalWrite("X", []byte("xC"))) // LSN 4: C

		// Install B's node (flushes Z), then A's node, whose flush set is
		// empty: X was removed from it by C's blind write, so A installs
		// without flushing anything.
		wg := eng.Cache().WriteGraph()
		nb, ok := wg.NodeOfOp(3)
		if !ok {
			t.Fatal("no node for B")
		}
		if _, err := eng.Cache().InstallNode(nb); err != nil {
			t.Fatal(err)
		}
		na, ok := wg.NodeOfOp(2)
		if !ok {
			t.Fatal("no node for A")
		}
		if _, err := eng.Cache().InstallNode(na); err != nil {
			t.Fatal(err)
		}
		if err := eng.Log().Force(); err != nil {
			t.Fatal(err)
		}
		eng.Crash()
		res, err := eng.Recover()
		if err != nil {
			t.Fatal(err)
		}
		// Whatever the test, the recovered state must be correct.
		for x, want := range map[op.ObjectID]string{"pin": "p", "X": "xC", "Z": "xA"} {
			v, err := eng.Get(x)
			if err != nil || string(v) != want {
				t.Fatalf("test %v: recovered %s = %q, %v", test, x, v, err)
			}
		}
		return res
	}

	rsi := run(TestRSI)
	vsi := run(TestVSI)
	// Under rSI: pin and C are redone; A is bypassed as unexposed; B is
	// manifestly installed (Z's stable vSI).
	if rsi.Redone != 2 {
		t.Errorf("rSI Redone = %d, want 2 (pin and C)", rsi.Redone)
	}
	if rsi.SkippedUnexposed != 1 {
		t.Errorf("rSI SkippedUnexposed = %d, want 1 (A)", rsi.SkippedUnexposed)
	}
	if rsi.SkippedInstalled != 1 {
		t.Errorf("rSI SkippedInstalled = %d, want 1 (B)", rsi.SkippedInstalled)
	}
	// The plain vSI test re-executes A: X was never flushed, so no object
	// of A's writeset witnesses its installation.
	if vsi.Redone != 3 {
		t.Errorf("vSI Redone = %d, want 3 (pin, A, C)", vsi.Redone)
	}
}

func TestCheckpointShortensAnalysis(t *testing.T) {
	eng := newEngine(t, core.DefaultOptions())
	for i := 0; i < 20; i++ {
		exec(t, eng, op.NewPhysicalWrite("X", []byte{byte(i)}))
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	exec(t, eng, op.NewPhysicalWrite("X", []byte{99}))
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	res, err := eng.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointLSN == 0 {
		t.Error("analysis missed the checkpoint")
	}
	if res.ScannedOps != 1 {
		t.Errorf("ScannedOps = %d, want 1 (scan starts after checkpointed clean state)", res.ScannedOps)
	}
	if res.Redone != 1 {
		t.Errorf("Redone = %d, want 1", res.Redone)
	}
	v, _ := eng.Get("X")
	if len(v) != 1 || v[0] != 99 {
		t.Errorf("recovered X = %v", v)
	}
}

func TestDeletedObjectOpsBypassed(t *testing.T) {
	// Section 5: "Many objects named in log records will, in fact, be
	// terminated or deleted, and so will not be exposed.  Hence, one can
	// treat all their operations as installed ... even when they have not
	// been flushed recently, or ever."
	eng := newEngine(t, core.DefaultOptions())
	exec(t, eng, op.NewCreate("tmp", []byte("scratch")))
	exec(t, eng, op.NewPhysioWrite("tmp", op.FuncAppend, []byte("work")))
	exec(t, eng, op.NewDelete("tmp"))
	exec(t, eng, op.NewCreate("keep", []byte("k")))
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	res, err := eng.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Redone != 0 {
		t.Errorf("Redone = %d, want 0 (everything installed)", res.Redone)
	}
	if _, err := eng.Get("tmp"); err == nil {
		t.Error("deleted object resurrected")
	}
	v, err := eng.Get("keep")
	if err != nil || string(v) != "k" {
		t.Errorf("keep = %q, %v", v, err)
	}
}

func TestRedoAllOnPhysicalLog(t *testing.T) {
	// Redo-all is safe for a physical-write-only log (Section 5's example).
	eng := newEngine(t, core.Options{
		Policy:      writegraph.PolicyRW,
		Strategy:    cache.StrategyIdentityWrite,
		RedoTest:    TestRedoAll,
		LogInstalls: true,
	})
	exec(t, eng, op.NewPhysicalWrite("X", []byte("1")))
	exec(t, eng, op.NewPhysicalWrite("X", []byte("2")))
	exec(t, eng, op.NewPhysicalWrite("Y", []byte("3")))
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	res, err := eng.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Redone != 3 {
		t.Errorf("Redone = %d, want 3", res.Redone)
	}
	x, _ := eng.Get("X")
	if string(x) != "2" {
		t.Errorf("X = %q", x)
	}
}

func TestVoidedTrialExecution(t *testing.T) {
	// An operation whose input object is gone from the recovering state is
	// voided, not fatal.  Construct the log by hand: a logical op reading
	// an object that never existed on the stable side.
	log, err := wal.New(wal.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	store := stable.NewStore()
	ghost := op.NewLogical(op.FuncCopy, []byte("out"), []op.ObjectID{"ghost"}, []op.ObjectID{"out"})
	if _, err := log.AppendOp(ghost); err != nil {
		t.Fatal(err)
	}
	if err := log.Force(); err != nil {
		t.Fatal(err)
	}
	res, err := Recover(log, store, Options{
		Test:  TestRSI,
		Cache: cache.Config{Policy: writegraph.PolicyRW, Registry: op.NewRegistry(), LogInstalls: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Voided != 1 || res.Redone != 0 {
		t.Errorf("Voided = %d, Redone = %d", res.Voided, res.Redone)
	}
}

func TestRecoverRepairsPendingFlushTxn(t *testing.T) {
	eng := newEngine(t, core.Options{
		Policy:      writegraph.PolicyRW,
		Strategy:    cache.StrategyFlushTxn,
		RedoTest:    TestRSI,
		LogInstalls: true,
	})
	// Build a multi-object flush set via the cycle example, then crash the
	// store mid-flush after the flush transaction commits.
	exec(t, eng, op.NewCreate("X", []byte{1}))
	exec(t, eng, op.NewCreate("Y", []byte{2}))
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	exec(t, eng, op.NewLogical(op.FuncXor, op.EncodeParams([]byte("Y"), []byte("X")),
		[]op.ObjectID{"X", "Y"}, []op.ObjectID{"Y"}))
	exec(t, eng, op.NewLogical(op.FuncCopy, []byte("X"), []op.ObjectID{"Y"}, []op.ObjectID{"X"}))
	exec(t, eng, op.NewPhysioWrite("Y", op.FuncAppend, []byte{9}))

	// The three ops collapse to one node with vars {X,Y}.  Crash after the
	// flush transaction committed (2 log writes + commit) but before the
	// in-place writes completed: that is the batch's 4th write (index 3).
	plan := fault.NewPlan(fault.Point{Chan: fault.ChanStable, Index: 3, Kind: fault.KindCrash})
	eng.Store().SetWriteProbe(plan.StableProbe())
	err := eng.FlushAll()
	if err == nil {
		t.Fatal("expected injected crash")
	}
	if !eng.Store().HasPending() {
		t.Fatal("no pending flush transaction")
	}
	eng.Crash()
	plan.Heal()
	res, err := eng.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !res.PendingFlushTxnRepaired {
		t.Error("pending flush transaction not repaired")
	}
	x, _ := eng.Get("X")
	y, _ := eng.Get("Y")
	wantY := []byte{1 ^ 2}
	wantX := append([]byte(nil), wantY...)
	wantY = append(wantY, 9)
	if !op.Equal(x, wantX) || !op.Equal(y, wantY) {
		t.Errorf("recovered X=%v Y=%v, want X=%v Y=%v", x, y, wantX, wantY)
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	eng := newEngine(t, core.DefaultOptions())
	exec(t, eng, op.NewCreate("X", []byte("a")))
	exec(t, eng, op.NewPhysioWrite("X", op.FuncAppend, []byte("b")))
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	if _, err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	v1, _ := eng.Get("X")
	// Crash again before flushing anything; recover again.
	eng.Crash()
	if _, err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	v2, _ := eng.Get("X")
	if !op.Equal(v1, v2) || string(v2) != "ab" {
		t.Errorf("idempotence broken: %q vs %q", v1, v2)
	}
}
