// Package recovery implements crash recovery: the ARIES-style analysis pass
// that reconstructs the dirty object table (with generalized recovery SIs)
// from checkpoint, flush, and installation records, and the redo pass of
// Figure 2 driven by one of the paper's REDO tests.
//
// Three REDO tests are provided, in increasing sophistication, matching the
// progression of Section 5:
//
//   - TestRedoAll replays every logged operation (safe only because redo is
//     wrapped in a trial execution that voids inapplicable replays);
//   - TestVSI is the traditional state-identifier test: redo unless some
//     object of writeset(Op) already carries vSI >= lSI (manifest
//     installation; atomic installation makes one object's witness enough);
//   - TestRSI is the paper's generalized test: redo iff some object of
//     writeset(Op) is both uninstalled (lSI >= rSI from the dirty object
//     table) and exposed (lSI > vSI) — operations whose results are wholly
//     unexposed (deleted files, dead application states, blind-overwritten
//     objects) are bypassed even though their values were never flushed.
package recovery

import (
	"errors"
	"fmt"
	"io"

	"logicallog/internal/cache"
	"logicallog/internal/obs"
	"logicallog/internal/obs/flight"
	"logicallog/internal/op"
	"logicallog/internal/stable"
	"logicallog/internal/wal"
)

// RedoTest selects the REDO predicate.
type RedoTest uint8

const (
	// TestRedoAll redoes every scanned operation (with trial-execution
	// voiding).
	TestRedoAll RedoTest = iota
	// TestVSI is the traditional "is installed" vSI test.
	TestVSI
	// TestRSI combines "is installed" with "is exposed" using generalized
	// recovery SIs (the paper's contribution).
	TestRSI
)

func (t RedoTest) String() string {
	switch t {
	case TestRedoAll:
		return "redo-all"
	case TestVSI:
		return "vSI"
	case TestRSI:
		return "rSI"
	}
	return fmt.Sprintf("RedoTest(%d)", uint8(t))
}

// Options parameterizes recovery.
type Options struct {
	// Test selects the REDO predicate (default TestRSI).
	Test RedoTest
	// Cache configures the cache manager recovery rebuilds (policy,
	// strategy, registry).  Registry is required.
	Cache cache.Config
	// RedoWorkers bounds the redo pass's worker pool.  0 (the default)
	// resolves to runtime.GOMAXPROCS(0); 1 forces the streaming serial
	// path.  Any value yields bit-identical recovered state and counters;
	// see parallel.go for the dependency-chain argument.
	RedoWorkers int
	// Trace, when non-nil, receives each redo-pass decision ("redo",
	// "skip-installed", "skip-unexposed", "voided") as it is made.  Debug
	// and inspection use only.
	Trace func(o *op.Operation, decision string)
	// Tracer, when non-nil, records the recovery pipeline's phase spans —
	// restart, flush-txn repair, analysis, redo-chain partitioning, and one
	// lane per redo worker with a span per replayed dependency chain.
	// Timing is observational only: it never feeds replay ordering, so
	// traced runs recover bit-identical state.
	Tracer *obs.Tracer
	// Obs, when non-nil, receives recovery metrics: the dependency-chain
	// count and per-chain operation-count distribution of the parallel redo
	// partitioner, plus the recovery.decide.* decision family.
	Obs *obs.Registry
	// Flight, when non-nil, records every redo decision (with its witness
	// or dirty-table reason) in the flight recorder for post-hoc forensics
	// (llinspect -explain).  Observational only; never feeds replay.
	Flight *flight.Recorder
}

// Result reports what recovery did.
type Result struct {
	// Manager is the rebuilt cache manager holding the recovered volatile
	// state (dirty objects and reconstructed write graph); normal
	// operation continues on it.
	Manager *cache.Manager
	// CheckpointLSN is the checkpoint analysis started from (0 if none).
	CheckpointLSN op.SI
	// RedoStart is the LSN the redo scan started at.
	RedoStart op.SI
	// AnalyzedRecords counts records examined by the analysis pass.
	AnalyzedRecords int
	// ScannedOps counts operation records examined by the redo pass.
	ScannedOps int
	// Redone counts operations re-executed.
	Redone int
	// SkippedInstalled counts operations bypassed as manifestly installed
	// (vSI witness).
	SkippedInstalled int
	// SkippedUnexposed counts operations bypassed because their writesets
	// were wholly unexposed or clean per the dirty object table (rSI
	// reasoning; only under TestRSI).
	SkippedUnexposed int
	// Voided counts trial executions voided (Section 5 cases b/c).
	Voided int
	// PendingFlushTxnRepaired reports whether a committed flush
	// transaction was completed before redo.
	PendingFlushTxnRepaired bool
}

// dirtyTable is the analysis pass's reconstruction of the dirty object
// table: object -> rSI of its earliest possibly-uninstalled update.
type dirtyTable map[op.ObjectID]op.SI

// Recover performs full crash recovery over the durable log and stable
// store and returns the rebuilt volatile state.  It is idempotent: crashing
// during recovery and recovering again yields the same stable state, because
// recovery itself follows the same WAL and write-graph disciplines as normal
// operation and never resets installed state (history is repeated, not
// undone).
func Recover(log *wal.Log, store *stable.Store, opts Options) (*Result, error) {
	res := &Result{}
	lane := opts.Tracer.Lane("recovery")
	dot, err := recoverPrologue(log, store, opts, res, lane)
	if err != nil {
		return nil, err
	}
	mgr := res.Manager

	// Redo pass (Figure 2): scan from the start point, test, replay.
	sc, err := log.Scan(res.RedoStart)
	if err != nil {
		return nil, err
	}
	if workers := resolveWorkers(opts.RedoWorkers); workers > 1 {
		if err := redoParallel(sc, mgr, dot, opts, workers, res, lane); err != nil {
			return nil, err
		}
		return res, nil
	}
	sp := lane.Begin("redo-serial")
	defer func() {
		sp.Arg("scanned", res.ScannedOps).Arg("redone", res.Redone).
			Arg("skipped_installed", res.SkippedInstalled).
			Arg("skipped_unexposed", res.SkippedUnexposed).
			Arg("voided", res.Voided).End()
	}()
	dc := newDecideCounters(opts.Obs)
	for {
		rec, err := sc.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if rec.Type != wal.RecOperation {
			continue
		}
		res.ScannedOps++
		o := rec.Op
		ex := DecideRedoExplain(opts.Test, mgr, dot, o)
		if !ex.Redo {
			if ex.InstalledWitness {
				res.SkippedInstalled++
				trace(opts, o, "skip-installed")
			} else {
				res.SkippedUnexposed++
				trace(opts, o, "skip-unexposed")
			}
			dc.skip(opts.Flight, "recovery", o.LSN, ex)
			continue
		}
		voided, err := mgr.TryApplyLogged(o.Clone())
		if err != nil {
			return nil, fmt.Errorf("recovery: redo of %s: %w", o, err)
		}
		if voided {
			res.Voided++
			trace(opts, o, "voided")
		} else {
			res.Redone++
			trace(opts, o, "redo")
		}
		dc.applied(opts.Flight, "recovery", o.LSN, ex, voided)
	}
	return res, nil
}

// recoverPrologue runs the recovery phases that precede redo: the log
// restart (torn-tail trim, LSN horizon re-derivation), the flush-transaction
// repair, the cache-manager rebuild, the analysis pass, and the redo-start
// computation.  Results land in res (Manager, CheckpointLSN, AnalyzedRecords,
// RedoStart, PendingFlushTxnRepaired); the returned dirty table drives the
// redo pass — full (Recover) or on-demand (StartOnDemand).
func recoverPrologue(log *wal.Log, store *stable.Store, opts Options, res *Result, lane *obs.Lane) (dirtyTable, error) {
	// Restart the log over its device first, as a process restart would:
	// trim the untrustworthy debris of a torn, bit-flipped, or reordered
	// final append, and re-derive the LSN horizon from the durable log so
	// post-recovery appends keep it gap-free (see wal.Log.Restart).
	sp := lane.Begin("restart")
	if err := log.Restart(); err != nil {
		sp.End()
		return nil, err
	}
	sp.End()

	// Step 0: finish any committed-but-interrupted flush transaction, as
	// restart processing replays the flush-transaction log.
	if store.HasPending() {
		sp = lane.Begin("flush-txn-repair")
		store.RecoverPending()
		res.PendingFlushTxnRepaired = true
		sp.End()
	}

	mgr, err := cache.NewManager(opts.Cache, log, store)
	if err != nil {
		return nil, err
	}
	res.Manager = mgr

	// Analysis pass.
	sp = lane.Begin("analysis")
	dot, err := analyze(log, res, opts.Test)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.Arg("analyzed_records", res.AnalyzedRecords).
		Arg("dirty_objects", len(dot)).
		Arg("checkpoint_lsn", int64(res.CheckpointLSN)).
		End()

	// Redo scan start point: the minimum rSI over the reconstructed dirty
	// object table.  With an empty table nothing needs redo, but scanning
	// from the end is still performed so counters stay meaningful.
	redoStart := log.NextLSN()
	//lint:ignore replaydeterminism commutative min-fold
	for _, rsi := range dot {
		if rsi < redoStart {
			redoStart = rsi
		}
	}
	res.RedoStart = redoStart
	return dot, nil
}

// decideCounters bundles the recovery.decide.* metric family with the
// flight-recorder emission for one redo pass; handles are resolved once
// per Recover (or standby) so the per-decision cost with observability
// disabled stays a nil check.
type decideCounters struct {
	redo, skipInstalled, skipUnexposed, voided *obs.Counter
}

func newDecideCounters(reg *obs.Registry) decideCounters {
	return decideCounters{
		redo:          reg.Counter("recovery.decide.redo"),
		skipInstalled: reg.Counter("recovery.decide.skip_installed"),
		skipUnexposed: reg.Counter("recovery.decide.skip_unexposed"),
		voided:        reg.Counter("recovery.decide.voided"),
	}
}

// skip records a non-redo decision: the installed witness (object and its
// current vSI) or the unexposed/clean verdict.
func (dc decideCounters) skip(fl *flight.Recorder, actor string, lsn op.SI, ex RedoExplanation) {
	if ex.InstalledWitness {
		dc.skipInstalled.Inc()
		fl.RedoDecision(actor, lsn, flight.DecSkipInstalled, ex.WitnessObject, ex.WitnessVSI)
	} else {
		dc.skipUnexposed.Inc()
		fl.RedoDecision(actor, lsn, flight.DecSkipUnexposed, "", op.NilSI)
	}
}

// applied records the outcome of an attempted redo: replayed, or voided
// by the trial execution.  The dirty-table entry that exposed the record
// rides along as the reason.
func (dc decideCounters) applied(fl *flight.Recorder, actor string, lsn op.SI, ex RedoExplanation, voided bool) {
	if voided {
		dc.voided.Inc()
		fl.RedoDecision(actor, lsn, flight.DecVoided, ex.DirtyObject, ex.DirtyRSI)
	} else {
		dc.redo.Inc()
		fl.RedoDecision(actor, lsn, flight.DecRedo, ex.DirtyObject, ex.DirtyRSI)
	}
}

// analyze reconstructs the dirty object table from the most recent
// checkpoint (if any) forward, applying the Section 5 update rules:
// operation records dirty their written objects; flush records clean their
// object; installation records clean flushed objects and — only under the
// generalized TestRSI — advance rSIs of unflushed (unexposed) objects.  A
// traditional vSI recovery has no notion of installed-without-flushing, so
// under TestVSI/TestRedoAll those objects stay dirty at their first-update
// rSI and the redo scan is correspondingly longer.
func analyze(log *wal.Log, res *Result, test RedoTest) (dirtyTable, error) {
	dot := make(dirtyTable)
	scanFrom := log.FirstLSN()
	cp, err := log.LastCheckpoint()
	if err != nil {
		return nil, err
	}
	if cp != nil {
		res.CheckpointLSN = cp.LSN
		scanFrom = cp.LSN
		for _, d := range cp.Checkpoint.Dirty {
			dot[d.ID] = d.RSI
		}
	}
	sc, err := log.Scan(scanFrom)
	if err != nil {
		return nil, err
	}
	for {
		rec, err := sc.Next()
		if errors.Is(err, io.EOF) {
			return dot, nil
		}
		if err != nil {
			return nil, err
		}
		res.AnalyzedRecords++
		UpdateDirtyTable(dot, rec, test)
	}
}

// UpdateDirtyTable applies one log record's Section 5 analysis rule to the
// dirty object table, in place.  It is the incremental unit of the analysis
// pass, exported so a warm standby can maintain its table continuously as
// shipped records arrive instead of re-running analysis at promotion.
func UpdateDirtyTable(dot map[op.ObjectID]op.SI, rec *wal.Record, test RedoTest) {
	switch rec.Type {
	case wal.RecOperation:
		for _, x := range rec.Op.WriteSet {
			if _, dirty := dot[x]; !dirty {
				// First uninstalled update after the object was last
				// clean: its rSI.
				dot[x] = rec.LSN
			}
		}
	case wal.RecFlush:
		delete(dot, rec.Flush.Object)
	case wal.RecInstall:
		for _, f := range rec.Install.Flushed {
			if f.RSI == op.NilSI {
				delete(dot, f.ID)
			} else {
				dot[f.ID] = f.RSI
			}
		}
		if test == TestRSI {
			for _, u := range rec.Install.Unflushed {
				if u.RSI == op.NilSI {
					delete(dot, u.ID)
				} else {
					// The unexposed object's rSI advances to the lSI
					// of the blind write that follows it.
					dot[u.ID] = u.RSI
				}
			}
		}
	case wal.RecCheckpoint:
		// A later checkpoint restates the table.  Cleared in place so
		// callers holding the map see the restatement.
		//lint:ignore replaydeterminism order-free map clear
		for x := range dot {
			delete(dot, x)
		}
		for _, d := range rec.Checkpoint.Dirty {
			dot[d.ID] = d.RSI
		}
	}
}

func trace(opts Options, o *op.Operation, decision string) {
	if opts.Trace != nil {
		opts.Trace(o, decision)
	}
}

// redoDecision evaluates the REDO test for o against the recovering state.
func redoDecision(test RedoTest, mgr *cache.Manager, dot dirtyTable, o *op.Operation) (redo, installedWitness bool) {
	return DecideRedo(test, mgr, dot, o)
}

// RedoExplanation is a REDO decision with its evidence: the witness that
// proved the operation installed, or the dirty-table entry that exposed
// it.  It is what the flight recorder persists and `llinspect -explain`
// renders.
type RedoExplanation struct {
	// Redo is the verdict: replay the operation.
	Redo bool
	// InstalledWitness reports a skip justified by manifest installation;
	// WitnessObject then names the written object whose current version
	// WitnessVSI is at or past the record's lSI.
	InstalledWitness bool
	WitnessObject    op.ObjectID
	WitnessVSI       op.SI
	// DirtyObject, on a redo under TestRSI, names the written object the
	// dirty table exposed (its rSI at or below the record's lSI); DirtyRSI
	// is that rSI.  Empty for TestRedoAll/TestVSI redos, which need no
	// dirty-table evidence.
	DirtyObject op.ObjectID
	DirtyRSI    op.SI
}

// DecideRedo evaluates the REDO test for o against the given state — the
// recovering engine's during crash recovery, or a warm standby's as shipped
// records arrive (replication is recovery that never stops).  It returns
// whether to redo, and (when not redoing) whether the skip was justified by
// an installed witness (vSI) as opposed to unexposed/clean reasoning (rSI).
func DecideRedo(test RedoTest, mgr *cache.Manager, dot map[op.ObjectID]op.SI, o *op.Operation) (redo, installedWitness bool) {
	ex := DecideRedoExplain(test, mgr, dot, o)
	return ex.Redo, ex.InstalledWitness
}

// DecideRedoExplain is DecideRedo returning the full evidence for the
// verdict.  Same predicate, same order of tests; DecideRedo delegates
// here.
func DecideRedoExplain(test RedoTest, mgr *cache.Manager, dot map[op.ObjectID]op.SI, o *op.Operation) RedoExplanation {
	if test == TestRedoAll {
		return RedoExplanation{Redo: true}
	}
	// Manifest installation: atomic installation of writeset(Op) means one
	// object with vSI >= lSI proves Op installed.  This also protects
	// exposed objects from being reset by a spurious redo.
	for _, x := range o.WriteSet {
		if vsi := mgr.CurrentVSI(x); vsi >= o.LSN {
			return RedoExplanation{InstalledWitness: true, WitnessObject: x, WitnessVSI: vsi}
		}
	}
	if test == TestVSI {
		return RedoExplanation{Redo: true}
	}
	// Generalized test: redo iff some written object is both possibly
	// uninstalled (lSI >= rSI) and exposed (lSI > vSI; already established
	// above).  Objects absent from the dirty object table are clean —
	// every update of theirs is installed.
	for _, x := range o.WriteSet {
		rsi, dirty := dot[x]
		if dirty && o.LSN >= rsi {
			return RedoExplanation{Redo: true, DirtyObject: x, DirtyRSI: rsi}
		}
	}
	return RedoExplanation{}
}
