// Parallel redo: the redo stream is partitioned into conflict-disjoint
// dependency chains and independent chains are replayed concurrently on a
// bounded worker pool.
//
// Operation B depends on operation A (earlier in the log) iff B reads or
// writes an object A wrote.  Taking the symmetric closure — connected
// components over "shares an object at least one of the two writes" — yields
// chains with the property that every operation touching a written object
// lives in the same chain as all that object's writers.  Replaying each
// chain serially in log order therefore preserves per-object replay order
// exactly, and cross-chain object sharing is read-only (objects no chain
// writes), so chains commute: the recovered state and every Result counter
// are bit-identical to the serial pass regardless of worker count or
// scheduling.  (DESIGN.md, "Dependency-chain partitioning".)
package recovery

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"logicallog/internal/cache"
	"logicallog/internal/obs"
	"logicallog/internal/op"
	"logicallog/internal/wal"
)

// resolveWorkers maps the Options.RedoWorkers knob to a concrete pool size.
func resolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// unionFind is a path-halving union-find over operation indices.  Roots are
// kept at the smallest member index so chain numbering is deterministic.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(i int) int {
	for u.parent[i] != i {
		u.parent[i] = u.parent[u.parent[i]]
		i = u.parent[i]
	}
	return i
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if ra > rb {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}

// partitionChains splits the scanned operation stream into dependency
// chains.  Two operations land in the same chain iff they are connected by
// conflicts: a writer of x merges with every earlier writer and every
// earlier reader of x (WAW, RAW, WAR), and a reader of x merges with x's
// earlier writers.  Read-read sharing does not merge.  Each chain lists its
// operations in log order; chains are ordered by their first operation.
func partitionChains(ops []*op.Operation) [][]*op.Operation {
	uf := newUnionFind(len(ops))
	// written maps an object with at least one writer so far to any member
	// of the (single) component holding all its writers; readers collects
	// reads of objects not yet written, which merge lazily if a writer
	// arrives.
	written := make(map[op.ObjectID]int)
	readers := make(map[op.ObjectID][]int)
	for i, o := range ops {
		for _, x := range o.WriteSet {
			if w, ok := written[x]; ok {
				uf.union(i, w)
			}
			if rs := readers[x]; len(rs) > 0 {
				for _, r := range rs {
					uf.union(i, r)
				}
				delete(readers, x)
			}
			written[x] = i
		}
		for _, x := range o.ReadSet {
			if w, ok := written[x]; ok {
				uf.union(i, w)
			} else {
				readers[x] = append(readers[x], i)
			}
		}
	}
	chainOf := make(map[int]int)
	var chains [][]*op.Operation
	for i, o := range ops {
		root := uf.find(i)
		ci, ok := chainOf[root]
		if !ok {
			ci = len(chains)
			chainOf[root] = ci
			chains = append(chains, nil)
		}
		chains[ci] = append(chains[ci], o)
	}
	return chains
}

// redoCounters are the per-chain tallies merged into Result.  Each counter
// is a sum of per-operation 0/1 decisions that depend only on intra-chain
// state, so the merged totals are independent of chain scheduling.
type redoCounters struct {
	redone           int
	skippedInstalled int
	skippedUnexposed int
	voided           int
}

func (c *redoCounters) add(d redoCounters) {
	c.redone += d.redone
	c.skippedInstalled += d.skippedInstalled
	c.skippedUnexposed += d.skippedUnexposed
	c.voided += d.voided
}

// redoChain replays one dependency chain serially in log order, exactly as
// the serial redo loop would.  stop is checked between operations so one
// chain's failure aborts the others promptly.  lane, when tracing, is the
// executing worker's span lane; the chain span records the chain's length
// and outcome counters.
func redoChain(mgr *cache.Manager, dot dirtyTable, opts Options, traceMu *sync.Mutex, stop *atomic.Bool, chain []*op.Operation, lane *obs.Lane) (c redoCounters, err error) {
	sp := lane.Begin("chain")
	defer func() {
		sp.Arg("ops", len(chain)).Arg("first_lsn", int64(chain[0].LSN)).
			Arg("redone", c.redone).Arg("voided", c.voided).End()
	}()
	dc := newDecideCounters(opts.Obs)
	for _, o := range chain {
		if stop.Load() {
			return c, nil
		}
		ex := DecideRedoExplain(opts.Test, mgr, dot, o)
		if !ex.Redo {
			if ex.InstalledWitness {
				c.skippedInstalled++
				traceLocked(opts, traceMu, o, "skip-installed")
			} else {
				c.skippedUnexposed++
				traceLocked(opts, traceMu, o, "skip-unexposed")
			}
			dc.skip(opts.Flight, "recovery", o.LSN, ex)
			continue
		}
		voided, err := mgr.TryApplyLogged(o.Clone())
		if err != nil {
			return c, fmt.Errorf("recovery: redo of %s: %w", o, err)
		}
		if voided {
			c.voided++
			traceLocked(opts, traceMu, o, "voided")
		} else {
			c.redone++
			traceLocked(opts, traceMu, o, "redo")
		}
		dc.applied(opts.Flight, "recovery", o.LSN, ex, voided)
	}
	return c, nil
}

func traceLocked(opts Options, mu *sync.Mutex, o *op.Operation, decision string) {
	if opts.Trace == nil {
		return
	}
	mu.Lock()
	opts.Trace(o, decision)
	mu.Unlock()
}

// redoParallel runs the redo pass over the scanner with the given worker
// count: it drains the scan, partitions the stream into dependency chains,
// and dispatches whole chains onto the pool.  Counters land in res; lane
// (nil-safe) carries the coordinator's scan/partition spans, and each
// worker traces its chains into its own lane.
func redoParallel(sc *wal.Scanner, mgr *cache.Manager, dot dirtyTable, opts Options, workers int, res *Result, lane *obs.Lane) error {
	sp := lane.Begin("redo-scan")
	var ops []*op.Operation
	for {
		rec, err := sc.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			sp.End()
			return err
		}
		if rec.Type != wal.RecOperation {
			continue
		}
		ops = append(ops, rec.Op)
	}
	res.ScannedOps = len(ops)
	sp.Arg("ops", len(ops)).End()

	sp = lane.Begin("redo-partition")
	chains := partitionChains(ops)
	if workers > len(chains) {
		workers = len(chains)
	}
	sp.Arg("chains", len(chains)).Arg("workers", workers).End()
	if reg := opts.Obs; reg != nil {
		reg.Gauge("recovery.redo.chains").Set(int64(len(chains)))
		reg.Gauge("recovery.redo.workers").Set(int64(workers))
		h := reg.Histogram("recovery.redo.chain_ops")
		for _, chain := range chains {
			h.Observe(int64(len(chain)))
		}
	}

	var (
		traceMu  sync.Mutex
		stop     atomic.Bool
		errMu    sync.Mutex
		firstErr error
		totalMu  sync.Mutex
		total    redoCounters
		wg       sync.WaitGroup
	)
	work := make(chan []*op.Operation)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			var wl *obs.Lane
			if opts.Tracer != nil {
				wl = opts.Tracer.Lane(fmt.Sprintf("redo-worker-%02d", worker))
			}
			for chain := range work {
				c, err := redoChain(mgr, dot, opts, &traceMu, &stop, chain, wl)
				totalMu.Lock()
				total.add(c)
				totalMu.Unlock()
				if err != nil {
					stop.Store(true)
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}(w)
	}
	for _, chain := range chains {
		if stop.Load() {
			break
		}
		work <- chain
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	res.Redone = total.redone
	res.SkippedInstalled = total.skippedInstalled
	res.SkippedUnexposed = total.skippedUnexposed
	res.Voided = total.voided
	return nil
}
