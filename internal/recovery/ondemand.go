// On-demand redo: the instant-recovery entry point (Sauer & Härder's
// REDO-only instant restart, PAPERS.md).  StartOnDemand runs the cheap
// recovery phases — log restart, flush-txn repair, analysis — eagerly, then
// partitions the redo suffix into the same conflict-disjoint dependency
// chains the parallel redo pass uses, but instead of draining them before
// returning it publishes a per-chain state table (pending / in-flight /
// done) and returns immediately.  A caller about to serve a request drains
// exactly the chains owning the objects the request touches (Require*);
// background workers drain the remainder at lower priority.  Because every
// operation touching a written object lives in the same chain as all of that
// object's writers (parallel.go), replaying a chain to completion makes its
// objects' recovered values final — so serving an object after its chain is
// done observes exactly the state a full redo would have produced, and the
// fully drained state is byte-identical to Recover's regardless of the order
// demand and background replays interleave.
//
// Gating rules (what a request must wait for):
//
//   - reading object x: the chain that writes x (if any).  Chains that only
//     read x cannot change it.
//   - writing object x: every chain that touches x.  A pending chain reading
//     x must observe x's pre-crash value, exactly as it would have during a
//     full redo that finishes before new writes are admitted.
//   - enumerating a key range (catalog scans): every chain writing an object
//     in the range, so creations and deletions in the redo suffix are
//     visible before the scan runs.
package recovery

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"logicallog/internal/cache"
	"logicallog/internal/obs"
	"logicallog/internal/op"
	"logicallog/internal/stable"
	"logicallog/internal/wal"
)

// ChainState is one dependency chain's position in the on-demand lifecycle.
type ChainState uint8

const (
	// ChainPending: not yet claimed by anyone.
	ChainPending ChainState = iota
	// ChainInFlight: claimed and replaying (by a demand caller or a
	// background worker).
	ChainInFlight
	// ChainDone: fully replayed; its objects' recovered values are final.
	ChainDone
)

// ErrAborted is returned by Require*/Wait after Abort (the engine crashed or
// restarted full recovery mid-drain).
var ErrAborted = errors.New("recovery: on-demand redo aborted")

// OnDemand is the instant-recovery scheduler returned by StartOnDemand.
// Require* methods are safe for concurrent use; each blocks only until the
// chains the request needs are done, replaying pending ones on the calling
// goroutine (demand has priority — it never queues behind background work).
type OnDemand struct {
	opts Options
	mgr  *cache.Manager
	dot  dirtyTable

	mu            sync.Mutex
	res           *Result
	chains        [][]*op.Operation
	state         []ChainState
	chainDone     []chan struct{}
	writer        map[op.ObjectID]int   // object -> the chain writing it
	touch         map[op.ObjectID][]int // object -> every chain touching it
	cursor        int                   // background claim scan position
	remaining     int
	failure       error
	drained       chan struct{}
	drainedClosed bool
	aborted       bool

	stop     atomic.Bool // tells redoChain to bail between operations
	doneFlag atomic.Bool // fast path: drain complete and clean

	traceMu    sync.Mutex
	bg         sync.WaitGroup
	demandLane *obs.Lane

	mDemandChains *obs.Counter
	mBgChains     *obs.Counter
	mRequires     *obs.Counter
	mWaits        *obs.Counter
	mWaitNs       *obs.Histogram
	gPending      *obs.Gauge
	gDone         *obs.Gauge
}

// StartOnDemand begins instant recovery over the durable log and stable
// store: restart, flush-txn repair, and analysis run now (they are cheap and
// proportional to the log suffix, not the redo work); the redo suffix is
// partitioned into dependency chains; opts.RedoWorkers background workers
// start draining them; and the scheduler returns so the caller can serve
// requests immediately, gating each on Require*.  Wait drains to completion
// and returns the full recovery Result, counter-identical to Recover's.
func StartOnDemand(log *wal.Log, store *stable.Store, opts Options) (*OnDemand, error) {
	res := &Result{}
	lane := opts.Tracer.Lane("recovery-ondemand")
	dot, err := recoverPrologue(log, store, opts, res, lane)
	if err != nil {
		return nil, err
	}

	sp := lane.Begin("redo-scan")
	sc, err := log.Scan(res.RedoStart)
	if err != nil {
		sp.End()
		return nil, err
	}
	var ops []*op.Operation
	for {
		rec, err := sc.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			sp.End()
			return nil, err
		}
		if rec.Type != wal.RecOperation {
			continue
		}
		ops = append(ops, rec.Op)
	}
	res.ScannedOps = len(ops)
	sp.Arg("ops", len(ops)).End()

	sp = lane.Begin("redo-partition")
	chains := partitionChains(ops)
	sp.Arg("chains", len(chains)).End()

	od := &OnDemand{
		opts:      opts,
		mgr:       res.Manager,
		dot:       dot,
		res:       res,
		chains:    chains,
		state:     make([]ChainState, len(chains)),
		chainDone: make([]chan struct{}, len(chains)),
		writer:    make(map[op.ObjectID]int),
		touch:     make(map[op.ObjectID][]int),
		remaining: len(chains),
		drained:   make(chan struct{}),

		mDemandChains: opts.Obs.Counter("recovery.ondemand.demand_chains"),
		mBgChains:     opts.Obs.Counter("recovery.ondemand.background_chains"),
		mRequires:     opts.Obs.Counter("recovery.ondemand.requires"),
		mWaits:        opts.Obs.Counter("recovery.ondemand.demand_waits"),
		mWaitNs:       opts.Obs.Histogram("recovery.ondemand.demand_wait_ns"),
		gPending:      opts.Obs.Gauge("recovery.ondemand.chains_pending"),
		gDone:         opts.Obs.Gauge("recovery.ondemand.chains_done"),
	}
	if opts.Tracer != nil {
		od.demandLane = opts.Tracer.Lane("ondemand-demand")
	}
	for ci, chain := range chains {
		od.chainDone[ci] = make(chan struct{})
		for _, o := range chain {
			for _, x := range o.WriteSet {
				od.writer[x] = ci
				od.addTouch(x, ci)
			}
			for _, x := range o.ReadSet {
				od.addTouch(x, ci)
			}
		}
	}
	if reg := opts.Obs; reg != nil {
		reg.Gauge("recovery.redo.chains").Set(int64(len(chains)))
		h := reg.Histogram("recovery.redo.chain_ops")
		for _, chain := range chains {
			h.Observe(int64(len(chain)))
		}
	}
	od.gPending.Set(int64(len(chains)))
	od.gDone.Set(0)

	if len(chains) == 0 {
		od.mu.Lock()
		od.signalDrained()
		od.mu.Unlock()
		return od, nil
	}
	workers := resolveWorkers(opts.RedoWorkers)
	if workers > len(chains) {
		workers = len(chains)
	}
	for w := 0; w < workers; w++ {
		od.bg.Add(1)
		go od.background(w)
	}
	return od, nil
}

// addTouch appends ci to touch[x] unless it is already the last entry (one
// chain touches an object through many operations; dedupe cheaply — a chain's
// operations are indexed consecutively often enough that full dedupe at
// Require time stays cheap).
func (od *OnDemand) addTouch(x op.ObjectID, ci int) {
	if cis := od.touch[x]; len(cis) > 0 && cis[len(cis)-1] == ci {
		return
	}
	od.touch[x] = append(od.touch[x], ci)
}

// Manager returns the cache manager holding the recovering volatile state;
// the engine resumes normal operation on it (gated by Require*).
func (od *OnDemand) Manager() *cache.Manager { return od.mgr }

// Chains returns the number of dependency chains in the redo suffix.
func (od *OnDemand) Chains() int { return len(od.chains) }

// ChainCounts returns the chain-state table's current tallies — the
// observable drain progress.
func (od *OnDemand) ChainCounts() (pending, inFlight, done int) {
	od.mu.Lock()
	defer od.mu.Unlock()
	for _, st := range od.state {
		switch st {
		case ChainPending:
			pending++
		case ChainInFlight:
			inFlight++
		default:
			done++
		}
	}
	return
}

// Done reports whether the drain completed cleanly: every chain replayed, no
// failure.  Once true, Require* calls are free and the caller may stop
// gating entirely.
func (od *OnDemand) Done() bool { return od.doneFlag.Load() }

// RequireRead blocks until every chain writing one of the given objects has
// been replayed, so reading them observes full-redo state.
func (od *OnDemand) RequireRead(ids ...op.ObjectID) error {
	if od.doneFlag.Load() {
		return nil
	}
	od.mRequires.Inc()
	for _, x := range ids {
		od.mu.Lock()
		ci, ok := od.writer[x]
		od.mu.Unlock()
		if !ok {
			continue
		}
		if err := od.requireChain(ci); err != nil {
			return err
		}
	}
	return nil
}

// RequireOp blocks until o can execute with full-redo-equivalent semantics:
// the chains writing o's read set are done (o observes recovered values) and
// every chain touching o's write set is done (no pending replay may still
// read the pre-crash value o is about to overwrite).
func (od *OnDemand) RequireOp(o *op.Operation) error {
	if od.doneFlag.Load() {
		return nil
	}
	od.mRequires.Inc()
	od.mu.Lock()
	var need []int
	for _, x := range o.ReadSet {
		if ci, ok := od.writer[x]; ok {
			need = append(need, ci)
		}
	}
	for _, x := range o.WriteSet {
		need = append(need, od.touch[x]...)
	}
	od.mu.Unlock()
	return od.requireChains(need)
}

// RequireRange blocks until every chain writing an object id in [lo, hi)
// has been replayed (hi == "" means unbounded), so an enumeration of the
// range sees every creation and deletion the redo suffix holds.
func (od *OnDemand) RequireRange(lo, hi op.ObjectID) error {
	if od.doneFlag.Load() {
		return nil
	}
	od.mRequires.Inc()
	od.mu.Lock()
	var need []int
	//lint:ignore replaydeterminism membership filter is order-independent; requireChains sorts and dedups
	for x, ci := range od.writer {
		if x >= lo && (hi == "" || x < hi) {
			need = append(need, ci)
		}
	}
	od.mu.Unlock()
	return od.requireChains(need)
}

// requireChains drains the given chains (duplicates fine), ascending so two
// concurrent requesters claim overlapping chain sets in the same order.
func (od *OnDemand) requireChains(need []int) error {
	if len(need) == 0 {
		return nil
	}
	sort.Ints(need)
	prev := -1
	for _, ci := range need {
		if ci == prev {
			continue
		}
		prev = ci
		if err := od.requireChain(ci); err != nil {
			return err
		}
	}
	return nil
}

// requireChain makes chain ci done: replaying it on the calling goroutine if
// pending (demand priority), waiting for the in-flight replayer otherwise.
func (od *OnDemand) requireChain(ci int) error {
	od.mu.Lock()
	switch od.state[ci] {
	case ChainDone:
		err := od.failure // a failed or aborted drain marks chains done unreplayed
		od.mu.Unlock()
		return err
	case ChainInFlight:
		ch := od.chainDone[ci]
		od.mu.Unlock()
		od.mWaits.Inc()
		var start time.Time
		if od.mWaitNs.Enabled() {
			//lint:ignore replaydeterminism metrics-only wall clock; the wait duration never feeds a replay decision
			start = time.Now()
		}
		<-ch
		od.mWaitNs.Since(start)
	default:
		od.state[ci] = ChainInFlight
		od.mu.Unlock()
		od.runChain(ci, od.demandLane, true)
	}
	od.mu.Lock()
	err := od.failure
	od.mu.Unlock()
	return err
}

// background is one low-priority drain worker: it claims pending chains in
// partition order until none remain.  Demand callers never wait for a
// worker to get around to their chain — they claim it directly; the only
// demand wait is for a chain already mid-replay.
func (od *OnDemand) background(w int) {
	defer od.bg.Done()
	var lane *obs.Lane
	if od.opts.Tracer != nil {
		lane = od.opts.Tracer.Lane(fmt.Sprintf("ondemand-worker-%02d", w))
	}
	for {
		ci := od.claimNext()
		if ci < 0 {
			return
		}
		od.runChain(ci, lane, false)
	}
}

// claimNext claims the next pending chain for a background worker, or -1
// when none remain (all claimed/done, a failure, or an abort).
func (od *OnDemand) claimNext() int {
	od.mu.Lock()
	defer od.mu.Unlock()
	if od.aborted || od.failure != nil {
		return -1
	}
	for od.cursor < len(od.state) && od.state[od.cursor] != ChainPending {
		od.cursor++
	}
	if od.cursor >= len(od.state) {
		return -1
	}
	ci := od.cursor
	od.state[ci] = ChainInFlight
	return ci
}

// runChain replays one claimed chain and retires it in the state table.
func (od *OnDemand) runChain(ci int, lane *obs.Lane, demand bool) {
	c, err := redoChain(od.mgr, od.dot, od.opts, &od.traceMu, &od.stop, od.chains[ci], lane)
	if demand {
		od.mDemandChains.Inc()
	} else {
		od.mBgChains.Inc()
	}
	od.mu.Lock()
	od.res.Redone += c.redone
	od.res.SkippedInstalled += c.skippedInstalled
	od.res.SkippedUnexposed += c.skippedUnexposed
	od.res.Voided += c.voided
	od.state[ci] = ChainDone
	close(od.chainDone[ci])
	od.remaining--
	if err != nil && od.failure == nil {
		od.failure = err
		od.stop.Store(true)
	}
	od.gPending.Set(int64(od.remaining))
	od.gDone.Set(int64(len(od.chains) - od.remaining))
	od.signalDrained()
	od.mu.Unlock()
}

// signalDrained (mu held) closes the drain barrier when the table empties or
// the drain dies, and flips the clean-completion fast path.
func (od *OnDemand) signalDrained() {
	if od.drainedClosed {
		return
	}
	if od.remaining == 0 || od.failure != nil {
		close(od.drained)
		od.drainedClosed = true
		if od.remaining == 0 && od.failure == nil {
			od.doneFlag.Store(true)
		}
	}
}

// Wait drains the table to completion — claiming pending chains on the
// calling goroutine alongside the background workers — and returns the final
// recovery Result.  Every counter matches what Recover would have reported:
// per-operation decisions depend only on intra-chain state, so the totals
// are independent of how demand, background, and Wait interleaved.
func (od *OnDemand) Wait() (*Result, error) {
	for {
		ci := od.claimNext()
		if ci < 0 {
			break
		}
		od.runChain(ci, od.demandLane, false)
	}
	<-od.drained
	od.bg.Wait()
	od.mu.Lock()
	defer od.mu.Unlock()
	return od.res, od.failure
}

// Abort stops the drain: in-flight replays bail at the next operation
// boundary, background workers exit, and every subsequent Require*/Wait
// returns ErrAborted.  Used when the recovering engine crashes (the volatile
// state is being discarded, so finishing the drain is wasted work) or when
// a full Recover supersedes the on-demand one.  Blocks until the workers
// have exited, so the caller may discard the cache manager immediately after.
func (od *OnDemand) Abort() {
	od.mu.Lock()
	od.aborted = true
	if od.failure == nil {
		od.failure = ErrAborted
	}
	od.doneFlag.Store(false)
	od.signalDrained()
	od.mu.Unlock()
	od.stop.Store(true)
	od.bg.Wait()
}
