package installgraph

import (
	"math/rand"
	"reflect"
	"testing"

	"logicallog/internal/op"
)

// history builds the paper's Figure 1 two-operation history:
//
//	A: Y <- f(X,Y)  (logical, A-form)   LSN 1
//	B: X <- g(Y)    (logical, B-form)   LSN 2
func figure1History() []*op.Operation {
	a := op.NewLogical(op.FuncXor, op.EncodeParams([]byte("Y"), []byte("X")), []op.ObjectID{"X", "Y"}, []op.ObjectID{"Y"})
	a.LSN = 1
	b := op.NewLogical(op.FuncCopy, []byte("X"), []op.ObjectID{"Y"}, []op.ObjectID{"X"})
	b.LSN = 2
	return []*op.Operation{a, b}
}

func TestBuildValidation(t *testing.T) {
	a := op.NewPhysicalWrite("X", []byte("1"))
	if _, err := Build([]*op.Operation{a}); err == nil {
		t.Error("Build must reject an operation without an LSN")
	}
	a.LSN = 5
	b := op.NewPhysicalWrite("X", []byte("2"))
	b.LSN = 5
	if _, err := Build([]*op.Operation{a, b}); err == nil {
		t.Error("Build must reject duplicate LSNs")
	}
	b.LSN = 4
	if _, err := Build([]*op.Operation{a, b}); err == nil {
		t.Error("Build must reject descending LSNs")
	}
}

func TestFigure1Edges(t *testing.T) {
	ig, err := Build(figure1History())
	if err != nil {
		t.Fatal(err)
	}
	// A reads X, B writes X: read-write edge A -> B.
	if !ig.HasEdge(1, 2) {
		t.Fatal("missing installation edge A -> B")
	}
	if k := ig.EdgeKindOf(1, 2); k&EdgeReadWrite == 0 {
		t.Errorf("edge A->B kind = %v, want read-write", k)
	}
	// No backward edge.
	if ig.HasEdge(2, 1) {
		t.Error("unexpected edge B -> A")
	}
	if got := ig.Predecessors(2); !reflect.DeepEqual(got, []op.SI{1}) {
		t.Errorf("Predecessors(B) = %v", got)
	}
	if ig.Len() != 2 || ig.Op(1) == nil || ig.Op(3) != nil {
		t.Error("accessors wrong")
	}
}

func TestEdgeKinds(t *testing.T) {
	// O writes X; P writes X and reads nothing -> pure write-write edge.
	o := op.NewPhysicalWrite("X", []byte("a"))
	o.LSN = 1
	p := op.NewPhysicalWrite("X", []byte("b"))
	p.LSN = 2
	ig, err := Build([]*op.Operation{o, p})
	if err != nil {
		t.Fatal(err)
	}
	if k := ig.EdgeKindOf(1, 2); k != EdgeWriteWrite {
		t.Errorf("kind = %v, want ww", k)
	}
	if EdgeReadWrite.String() != "rw" || EdgeWriteWrite.String() != "ww" ||
		(EdgeReadWrite|EdgeWriteWrite).String() != "rw|ww" || EdgeKind(0).String() != "none" {
		t.Error("EdgeKind.String wrong")
	}
}

func TestWriteReadEdgesDiscarded(t *testing.T) {
	// O writes X; P reads X (writes elsewhere).  Write-read edges are
	// discarded by the installation graph.
	o := op.NewPhysicalWrite("X", []byte("a"))
	o.LSN = 1
	p := op.NewLogical(op.FuncCopy, []byte("Z"), []op.ObjectID{"X"}, []op.ObjectID{"Z"})
	p.LSN = 2
	ig, err := Build([]*op.Operation{o, p})
	if err != nil {
		t.Fatal(err)
	}
	if ig.HasEdge(1, 2) || ig.HasEdge(2, 1) {
		t.Error("write-read dependency must not produce an installation edge")
	}
}

func TestIsPrefixSet(t *testing.T) {
	ig, _ := Build(figure1History())
	if !ig.IsPrefixSet(NewPrefixSet()) {
		t.Error("empty set is a prefix set")
	}
	if !ig.IsPrefixSet(NewPrefixSet(1)) {
		t.Error("{A} is a prefix set")
	}
	if ig.IsPrefixSet(NewPrefixSet(2)) {
		t.Error("{B} is not a prefix set (A -> B edge)")
	}
	if !ig.IsPrefixSet(NewPrefixSet(1, 2)) {
		t.Error("{A,B} is a prefix set")
	}
	if ig.IsPrefixSet(NewPrefixSet(9)) {
		t.Error("unknown LSN cannot form a prefix set")
	}
}

func TestExposed(t *testing.T) {
	ig, _ := Build(figure1History())
	// I = {}: minimal uninstalled toucher of Y is A, which reads Y -> exposed.
	if !ig.Exposed(NewPrefixSet(), "Y") {
		t.Error("Y must be exposed by {} (A reads Y)")
	}
	// X: minimal uninstalled toucher is A, which reads X -> exposed.
	if !ig.Exposed(NewPrefixSet(), "X") {
		t.Error("X must be exposed by {} (A reads X)")
	}
	// I = {A}: minimal uninstalled toucher of X is B, which does not read X
	// (B writes X blindly from Y) -> X unexposed.
	if ig.Exposed(NewPrefixSet(1), "X") {
		t.Error("X must be unexposed by {A} (B writes X blindly)")
	}
	// Y touched by B (reads Y) -> exposed.
	if !ig.Exposed(NewPrefixSet(1), "Y") {
		t.Error("Y must be exposed by {A} (B reads Y)")
	}
	// I = {A,B}: nothing uninstalled -> everything exposed.
	if !ig.Exposed(NewPrefixSet(1, 2), "X") || !ig.Exposed(NewPrefixSet(1, 2), "Y") {
		t.Error("all objects exposed once everything installed")
	}
	// An object never touched is exposed under any I.
	if !ig.Exposed(NewPrefixSet(), "Z") {
		t.Error("untouched object must be exposed")
	}
}

func TestLastWriter(t *testing.T) {
	ig, _ := Build(figure1History())
	if got := ig.LastWriter(NewPrefixSet(1, 2), "X"); got != 2 {
		t.Errorf("LastWriter(X) = %d", got)
	}
	if got := ig.LastWriter(NewPrefixSet(1), "X"); got != op.NilSI {
		t.Errorf("LastWriter(X) under {A} = %d, want none", got)
	}
	if got := ig.LastWriter(NewPrefixSet(1), "Y"); got != 1 {
		t.Errorf("LastWriter(Y) = %d", got)
	}
}

func TestValueAfterAndExplains(t *testing.T) {
	reg := op.NewRegistry()
	ig, _ := Build(figure1History())
	initial := map[op.ObjectID][]byte{"X": {1, 1}, "Y": {2, 2}}
	objects := ig.TouchedObjects()

	// After {A}: Y = Y xor X = {3,3}; X unchanged.
	s1, err := ig.ValueAfter(reg, NewPrefixSet(1), initial)
	if err != nil {
		t.Fatal(err)
	}
	if !op.Equal(s1["Y"], []byte{3, 3}) || !op.Equal(s1["X"], []byte{1, 1}) {
		t.Errorf("ValueAfter({A}) = %v", s1)
	}
	// After {A,B}: X = copy(Y) = {3,3}.
	s2, err := ig.ValueAfter(reg, NewPrefixSet(1, 2), initial)
	if err != nil {
		t.Fatal(err)
	}
	if !op.Equal(s2["X"], []byte{3, 3}) {
		t.Errorf("ValueAfter({A,B}) X = %v", s2["X"])
	}

	// The initial state is explained by {} (both X and Y exposed, values match).
	ok, err := ig.Explains(reg, NewPrefixSet(), initial, initial, objects)
	if err != nil || !ok {
		t.Errorf("initial state must be explained by {}: %v %v", ok, err)
	}
	// State after A is explained by {A}.
	ok, err = ig.Explains(reg, NewPrefixSet(1), s1, initial, objects)
	if err != nil || !ok {
		t.Errorf("state after A must be explained by {A}: %v %v", ok, err)
	}
	// Key subtlety (Figure 5 reasoning): the state where Y was flushed but X
	// was not — {X: old, Y: new} — is explained by {A}: Y exposed & correct,
	// X unexposed so its stale value does not matter.
	mixed := map[op.ObjectID][]byte{"X": {1, 1}, "Y": {3, 3}}
	ok, err = ig.Explains(reg, NewPrefixSet(1), mixed, initial, objects)
	if err != nil || !ok {
		t.Errorf("mixed state must be explained by {A}: %v %v", ok, err)
	}
	// The flush-order violation state — X updated (as if B installed) but Y
	// stale — is NOT explained by any prefix set: {} needs X={1,1}, {A}
	// needs Y={3,3}, {A,B} needs both new.
	bad := map[op.ObjectID][]byte{"X": {3, 3}, "Y": {2, 2}}
	_, found, err := ig.FindExplanation(reg, bad, initial, objects, 20)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("flush-order-violating state must be unexplainable")
	}
	// Non-prefix set is rejected by Explains.
	ok, err = ig.Explains(reg, NewPrefixSet(2), s2, initial, objects)
	if err != nil || ok {
		t.Error("Explains must reject non-prefix sets")
	}
}

func TestMinimalUninstalledAndExtend(t *testing.T) {
	ig, _ := Build(figure1History())
	if got := ig.MinimalUninstalled(NewPrefixSet()); !reflect.DeepEqual(got, []op.SI{1}) {
		t.Errorf("MinimalUninstalled({}) = %v", got)
	}
	if got := ig.MinimalUninstalled(NewPrefixSet(1)); !reflect.DeepEqual(got, []op.SI{2}) {
		t.Errorf("MinimalUninstalled({A}) = %v", got)
	}
	if got := ig.MinimalUninstalled(NewPrefixSet(1, 2)); len(got) != 0 {
		t.Errorf("MinimalUninstalled({A,B}) = %v", got)
	}
	I := ig.Extend(NewPrefixSet(), 1)
	if !I[1] || len(I) != 1 {
		t.Errorf("Extend = %v", I)
	}
	defer func() {
		if recover() == nil {
			t.Error("Extend to a non-prefix set must panic")
		}
	}()
	ig.Extend(NewPrefixSet(), 2)
}

// TestTheorem1Property checks Theorem 1 on random histories: if I explains
// the state reached by executing I, then installing any minimal uninstalled
// operation yields a state explained by extend(I,O).
func TestTheorem1Property(t *testing.T) {
	reg := op.NewRegistry()
	rng := rand.New(rand.NewSource(7))
	objects := []op.ObjectID{"O0", "O1", "O2", "O3"}

	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(8)
		history := make([]*op.Operation, 0, n)
		for i := 0; i < n; i++ {
			o := randomOp(rng, objects)
			o.LSN = op.SI(i + 1)
			history = append(history, o)
		}
		ig, err := Build(history)
		if err != nil {
			t.Fatal(err)
		}
		initial := map[op.ObjectID][]byte{}
		for _, x := range objects {
			initial[x] = []byte{byte(rng.Intn(256))}
		}
		univ := append(ig.TouchedObjects(), objects...)
		univ = op.Canonicalize(univ)

		// Start from I = {} and repeatedly install minimal uninstalled ops.
		I := NewPrefixSet()
		for len(I) < n {
			S, err := ig.ValueAfter(reg, I, initial)
			if err != nil {
				t.Fatal(err)
			}
			ok, err := ig.Explains(reg, I, S, initial, univ)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d: I=%v does not explain its own execution state", trial, I.Sorted())
			}
			mins := ig.MinimalUninstalled(I)
			if len(mins) == 0 {
				t.Fatalf("trial %d: no minimal uninstalled op with |I|=%d < %d", trial, len(I), n)
			}
			// Install a random minimal op.
			I = ig.Extend(I, mins[rng.Intn(len(mins))])
		}
	}
}

func randomOp(rng *rand.Rand, objects []op.ObjectID) *op.Operation {
	x := objects[rng.Intn(len(objects))]
	y := objects[rng.Intn(len(objects))]
	switch rng.Intn(4) {
	case 0: // physical blind write
		return op.NewPhysicalWrite(x, []byte{byte(rng.Intn(256))})
	case 1: // physiological append
		return op.NewPhysioWrite(x, op.FuncAppend, []byte{byte(rng.Intn(256))})
	case 2: // A-form: y <- y xor x
		if x == y {
			return op.NewPhysioWrite(x, op.FuncAppend, []byte{1})
		}
		return op.NewLogical(op.FuncXor, op.EncodeParams([]byte(y), []byte(x)), []op.ObjectID{x, y}, []op.ObjectID{y})
	default: // B-form: x <- copy(y)
		if x == y {
			return op.NewPhysioWrite(x, op.FuncAppend, []byte{2})
		}
		return op.NewLogical(op.FuncCopy, []byte(x), []op.ObjectID{y}, []op.ObjectID{x})
	}
}

func TestTouchedObjects(t *testing.T) {
	ig, _ := Build(figure1History())
	if got := ig.TouchedObjects(); !reflect.DeepEqual(got, []op.ObjectID{"X", "Y"}) {
		t.Errorf("TouchedObjects = %v", got)
	}
}

func TestFindExplanationLargeHistoryFallback(t *testing.T) {
	// 25 ops > exhaustive limit: fallback tries log prefixes.
	reg := op.NewRegistry()
	var history []*op.Operation
	for i := 0; i < 25; i++ {
		o := op.NewPhysioWrite("X", op.FuncAppend, []byte{byte(i)})
		o.LSN = op.SI(i + 1)
		history = append(history, o)
	}
	ig, err := Build(history)
	if err != nil {
		t.Fatal(err)
	}
	initial := map[op.ObjectID][]byte{"X": nil}
	// State after 10 ops.
	I10 := NewPrefixSet()
	for i := 0; i < 10; i++ {
		I10[op.SI(i+1)] = true
	}
	S, err := ig.ValueAfter(reg, I10, initial)
	if err != nil {
		t.Fatal(err)
	}
	I, found, err := ig.FindExplanation(reg, S, initial, ig.TouchedObjects(), 20)
	if err != nil || !found {
		t.Fatalf("explanation not found: %v", err)
	}
	if len(I) != 10 {
		t.Errorf("explanation size = %d, want 10", len(I))
	}
}
