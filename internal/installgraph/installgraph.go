// Package installgraph implements the installation graph of Section 2 of the
// paper and the associated theory: prefix sets, exposed objects, and
// explainable states.
//
// The installation graph for a history H is a directed graph whose nodes are
// operations and whose edges constrain the order in which operations may be
// installed into the stable database.  It keeps all read-write conflict
// edges, discards write-read edges, and keeps (a conservative superset of)
// the write-write edges:
//
//   - read-write: readset(O) ∩ writeset(P) ≠ ∅ for O < P.  If P's updates
//     reach the stable database but O's do not, O can no longer be replayed,
//     because its inputs have changed.
//   - write-write: P ∈ must(O) \ can(O) for O < P.  We pursue the paper's
//     second strategy — recovery repeats history and never resets state — so
//     write-write order cannot be violated during recovery; we nevertheless
//     retain writeset-overlap edges, a sound over-approximation that the
//     write-graph constructions rely on.
//
// Everything here treats "conflict order" as the LSN order of the logged
// history, which is a legal conflict order for a single append-only log.
package installgraph

import (
	"fmt"
	"sort"

	"logicallog/internal/graph"
	"logicallog/internal/obs/flight"
	"logicallog/internal/op"
)

// EdgeKind classifies an installation edge.
type EdgeKind uint8

const (
	// EdgeReadWrite is an edge O -> P where P writes an object O read.
	EdgeReadWrite EdgeKind = 1 << iota
	// EdgeWriteWrite is an edge O -> P where P writes an object O wrote.
	EdgeWriteWrite
)

func (k EdgeKind) String() string {
	switch {
	case k&EdgeReadWrite != 0 && k&EdgeWriteWrite != 0:
		return "rw|ww"
	case k&EdgeReadWrite != 0:
		return "rw"
	case k&EdgeWriteWrite != 0:
		return "ww"
	}
	return "none"
}

// Graph is an installation graph over a history of operations.  Node ids are
// the operations' LSNs.
type Graph struct {
	ops   map[op.SI]*op.Operation
	order []op.SI // history in conflict (LSN) order
	g     *graph.Digraph
	kinds map[[2]op.SI]EdgeKind

	// fl, when set via SetFlight, records every ValueAfter resolution —
	// which writer's value the oracle projected per object (nil-safe).
	fl *flight.Recorder
}

// SetFlight attaches a decision flight recorder; nil detaches it.
func (ig *Graph) SetFlight(r *flight.Recorder) { ig.fl = r }

// Build constructs the installation graph for the given history, which must
// be in conflict (ascending LSN) order with LSNs assigned and unique.
func Build(history []*op.Operation) (*Graph, error) {
	ig := &Graph{
		ops:   make(map[op.SI]*op.Operation, len(history)),
		g:     graph.New(),
		kinds: make(map[[2]op.SI]EdgeKind),
	}
	var prev op.SI
	for _, o := range history {
		if o.LSN == op.NilSI {
			return nil, fmt.Errorf("installgraph: operation %s has no LSN", o)
		}
		if o.LSN <= prev {
			return nil, fmt.Errorf("installgraph: history not in ascending LSN order at %s", o)
		}
		prev = o.LSN
		ig.ops[o.LSN] = o
		ig.order = append(ig.order, o.LSN)
		ig.g.AddNode(graph.NodeID(o.LSN))
	}
	// O(n^2) edge construction; histories in this simulator are modest and
	// the write-graph packages maintain their own incremental structures.
	for i, l1 := range ig.order {
		o := ig.ops[l1]
		for _, l2 := range ig.order[i+1:] {
			p := ig.ops[l2]
			var k EdgeKind
			for _, x := range p.WriteSet {
				if o.Reads(x) {
					k |= EdgeReadWrite
				}
				if o.Writes(x) {
					k |= EdgeWriteWrite
				}
			}
			if k != 0 {
				ig.g.AddEdge(graph.NodeID(l1), graph.NodeID(l2))
				ig.kinds[[2]op.SI{l1, l2}] = k
			}
		}
	}
	return ig, nil
}

// Ops returns the history in conflict order.
func (ig *Graph) Ops() []*op.Operation {
	out := make([]*op.Operation, len(ig.order))
	for i, l := range ig.order {
		out[i] = ig.ops[l]
	}
	return out
}

// Op returns the operation with the given LSN, or nil.
func (ig *Graph) Op(lsn op.SI) *op.Operation { return ig.ops[lsn] }

// Len returns the number of operations.
func (ig *Graph) Len() int { return len(ig.order) }

// HasEdge reports whether there is an installation edge from o to p (by LSN).
func (ig *Graph) HasEdge(o, p op.SI) bool {
	return ig.g.HasEdge(graph.NodeID(o), graph.NodeID(p))
}

// EdgeKindOf returns the kind of the edge o -> p (zero if absent).
func (ig *Graph) EdgeKindOf(o, p op.SI) EdgeKind { return ig.kinds[[2]op.SI{o, p}] }

// Digraph exposes a copy of the underlying digraph for analysis.
func (ig *Graph) Digraph() *graph.Digraph { return ig.g.Clone() }

// Predecessors returns the LSNs with installation edges into lsn, ascending.
func (ig *Graph) Predecessors(lsn op.SI) []op.SI {
	ps := ig.g.Pred(graph.NodeID(lsn))
	out := make([]op.SI, len(ps))
	for i, p := range ps {
		out[i] = op.SI(p)
	}
	return out
}

// ---------------------------------------------------------------------------
// Prefix sets, exposed objects, explainable states (the paper's definitions,
// executable).  These are the oracles the test suites check the engine
// against; the engine itself never materializes I.
// ---------------------------------------------------------------------------

// PrefixSet is a set of installed operations, identified by LSN.
type PrefixSet map[op.SI]bool

// NewPrefixSet builds a prefix set from LSNs.
func NewPrefixSet(lsns ...op.SI) PrefixSet {
	s := make(PrefixSet, len(lsns))
	for _, l := range lsns {
		s[l] = true
	}
	return s
}

// Sorted returns the member LSNs in ascending order.
func (s PrefixSet) Sorted() []op.SI {
	out := make([]op.SI, 0, len(s))
	//lint:ignore replaydeterminism key collection is order-independent; sorted below
	for l := range s {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsPrefixSet reports whether I is downward-closed under installation order:
// for every O in I, every installation-graph predecessor of O is also in I.
func (ig *Graph) IsPrefixSet(I PrefixSet) bool {
	//lint:ignore replaydeterminism conjunction over members; the answer is order-independent
	for l := range I {
		if _, ok := ig.ops[l]; !ok {
			return false
		}
		for _, p := range ig.Predecessors(l) {
			if !I[p] {
				return false
			}
		}
	}
	return true
}

// Exposed reports whether object x is exposed by prefix set I, per the
// paper's definition: x is exposed iff (1) no operation in H−I reads or
// writes x, or (2) some operation in H−I touches x and the minimal such
// operation (earliest in conflict order) reads x.
func (ig *Graph) Exposed(I PrefixSet, x op.ObjectID) bool {
	for _, l := range ig.order {
		if I[l] {
			continue
		}
		o := ig.ops[l]
		if o.Touches(x) {
			// Minimal uninstalled toucher: exposed iff it reads x.
			return o.Reads(x)
		}
	}
	// Nothing uninstalled touches x.
	return true
}

// LastWriter returns the LSN of the last operation of I (in conflict order)
// that writes x, or NilSI if no operation in I writes x.
func (ig *Graph) LastWriter(I PrefixSet, x op.ObjectID) op.SI {
	var last op.SI
	for _, l := range ig.order {
		if I[l] && ig.ops[l].Writes(x) {
			last = l
		}
	}
	return last
}

// ValueAfter computes, for every object, the paper's "value of x after the
// last operation of I that writes x": the value that operation produced in
// the history's execution, or the initial value if no operation of I writes
// x.
//
// The initial parameter supplies pre-history object values (objects loaded
// before logging began).
func (ig *Graph) ValueAfter(reg *op.Registry, I PrefixSet, initial map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	// An operation's effects are pinned to the values it produced in the
	// history's own execution: because write-read edges are discarded, a
	// prefix set may contain a reader without the writer it read, and the
	// reader's installed values embed the writer's effects regardless (see
	// the package comment).  So replay the FULL history from the initial
	// state, and project out, per object, the value written by the last
	// operation of I that writes it.
	state := make(map[op.ObjectID][]byte, len(initial))
	result := make(map[op.ObjectID][]byte, len(initial))
	//lint:ignore replaydeterminism map copy; resulting maps identical in any order
	for k, v := range initial {
		state[k] = append([]byte(nil), v...)
		result[k] = append([]byte(nil), v...)
	}
	for _, l := range ig.order {
		o := ig.ops[l]
		reads := make(map[op.ObjectID][]byte, len(o.ReadSet))
		for _, x := range o.ReadSet {
			reads[x] = state[x]
		}
		writes, err := reg.Apply(o, reads)
		if err != nil {
			return nil, fmt.Errorf("installgraph: replaying %s: %w", o, err)
		}
		//lint:ignore replaydeterminism one operation's writes have distinct keys; apply order cannot matter
		for x, v := range writes {
			state[x] = v
			if I[l] {
				result[x] = v
				ig.fl.ValueResolve(l, x)
			}
		}
	}
	return result, nil
}

// Explains reports whether prefix set I explains state S: for every object x
// exposed by I, S's value of x equals x's value after the last operation of
// I.  objects enumerates the universe of object ids to check (callers pass
// the union of all objects touched by the history plus any initial objects).
func (ig *Graph) Explains(reg *op.Registry, I PrefixSet, S map[op.ObjectID][]byte, initial map[op.ObjectID][]byte, objects []op.ObjectID) (bool, error) {
	if !ig.IsPrefixSet(I) {
		return false, nil
	}
	want, err := ig.ValueAfter(reg, I, initial)
	if err != nil {
		return false, err
	}
	for _, x := range objects {
		if !ig.Exposed(I, x) {
			continue
		}
		if !op.Equal(S[x], want[x]) {
			return false, nil
		}
	}
	return true, nil
}

// FindExplanation searches for some prefix set I that explains S, trying the
// "leading edge" candidates: for histories produced by our engine the
// natural candidates are the downward closures of each log prefix combined
// with installed-but-unflushed extensions.  This exhaustive oracle tries all
// antichains only for small histories (≤ maxOps) and otherwise falls back to
// prefix-closed candidates derived from log prefixes.  It exists purely for
// test-oracle use.
func (ig *Graph) FindExplanation(reg *op.Registry, S map[op.ObjectID][]byte, initial map[op.ObjectID][]byte, objects []op.ObjectID, maxOps int) (PrefixSet, bool, error) {
	n := len(ig.order)
	if n <= maxOps && n <= 20 {
		// Exhaustive over subsets (downward-closed only).
		for mask := 0; mask < 1<<uint(n); mask++ {
			I := make(PrefixSet)
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					I[ig.order[i]] = true
				}
			}
			if !ig.IsPrefixSet(I) {
				continue
			}
			ok, err := ig.Explains(reg, I, S, initial, objects)
			if err != nil {
				return nil, false, err
			}
			if ok {
				return I, true, nil
			}
		}
		return nil, false, nil
	}
	// Large histories: try each log prefix (always prefix sets, since
	// installation edges respect conflict order).
	for i := n; i >= 0; i-- {
		I := make(PrefixSet, i)
		for _, l := range ig.order[:i] {
			I[l] = true
		}
		ok, err := ig.Explains(reg, I, S, initial, objects)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return I, true, nil
		}
	}
	return nil, false, nil
}

// MinimalUninstalled returns the LSNs of the minimal uninstalled operations
// of H − I: uninstalled operations all of whose installation predecessors
// are installed.  Theorem 1: any such operation is applicable to a state
// explained by I and installing it preserves explainability.
func (ig *Graph) MinimalUninstalled(I PrefixSet) []op.SI {
	var out []op.SI
	for _, l := range ig.order {
		if I[l] {
			continue
		}
		minimal := true
		for _, p := range ig.Predecessors(l) {
			if !I[p] {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, l)
		}
	}
	return out
}

// Extend returns I ∪ {lsn} (the paper's extend(I,O)); it panics if the
// result would not be a prefix set, which signals a harness bug.
func (ig *Graph) Extend(I PrefixSet, lsn op.SI) PrefixSet {
	out := make(PrefixSet, len(I)+1)
	//lint:ignore replaydeterminism set copy; resulting map identical in any order
	for l := range I {
		out[l] = true
	}
	out[lsn] = true
	if !ig.IsPrefixSet(out) {
		panic(fmt.Sprintf("installgraph: extend(I, %d) is not a prefix set", lsn))
	}
	return out
}

// TouchedObjects returns the canonical union of all objects read or written
// by the history.
func (ig *Graph) TouchedObjects() []op.ObjectID {
	var ids []op.ObjectID
	for _, l := range ig.order {
		o := ig.ops[l]
		ids = append(ids, o.ReadSet...)
		ids = append(ids, o.WriteSet...)
	}
	return op.Canonicalize(ids)
}
