package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// stepTracer returns a tracer whose clock advances one microsecond per
// reading, so tests (and the golden trace file) are fully deterministic.
func stepTracer() *Tracer {
	var now time.Duration
	return &Tracer{clock: func() time.Duration {
		now += time.Microsecond
		return now
	}}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	lane := tr.Lane("x")
	if lane != nil {
		t.Fatal("nil tracer must return a nil lane")
	}
	sp := lane.Begin("a")
	if sp != nil {
		t.Fatal("nil lane must return a nil span")
	}
	sp.Arg("k", 1).End() // no-ops, no panics
	lane.Instant("i", nil)
	if lane.Name() != "" {
		t.Error("nil lane name")
	}
	if evs := tr.Events(); evs != nil {
		t.Errorf("nil tracer events = %v", evs)
	}
}

func TestSpanNestingDepths(t *testing.T) {
	tr := stepTracer()
	lane := tr.Lane("recovery")
	outer := lane.Begin("outer")
	inner := lane.Begin("inner").Arg("n", 3)
	lane.Instant("mark", map[string]any{"at": "inner"})
	inner.End()
	outer.End()

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	byName := map[string]Event{}
	for _, ev := range evs {
		byName[ev.Name] = ev
	}
	if byName["outer"].Depth != 0 || byName["inner"].Depth != 1 {
		t.Errorf("depths: outer=%d inner=%d", byName["outer"].Depth, byName["inner"].Depth)
	}
	if byName["mark"].Depth != 2 || byName["mark"].Phase != "i" || byName["mark"].Dur != 0 {
		t.Errorf("instant = %+v", byName["mark"])
	}
	if byName["inner"].Args["n"] != 3 {
		t.Errorf("inner args = %v", byName["inner"].Args)
	}
	in, out := byName["inner"], byName["outer"]
	if in.Start < out.Start || in.End() > out.End() {
		t.Errorf("inner [%v, %v] not contained in outer [%v, %v]",
			in.Start, in.End(), out.Start, out.End())
	}
	if out.Lane != "recovery" || out.Phase != "X" {
		t.Errorf("outer = %+v", out)
	}
}

func TestParallelLanes(t *testing.T) {
	tr := NewTracer()
	const lanes, spansPer = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lane := tr.Lane(fmt.Sprintf("worker-%d", i))
			for j := 0; j < spansPer; j++ {
				sp := lane.Begin("unit")
				lane.Instant("tick", nil)
				sp.Arg("j", j).End()
			}
		}(i)
	}
	wg.Wait()
	evs := tr.Events()
	if len(evs) != lanes*spansPer*2 {
		t.Fatalf("got %d events, want %d", len(evs), lanes*spansPer*2)
	}
	// Events are sorted by start offset; every span is closed at depth 0
	// within its own lane (one open span at a time per lane).
	for i := 1; i < len(evs); i++ {
		if evs[i].Start < evs[i-1].Start {
			t.Fatal("events not sorted by start")
		}
	}
	perLane := map[int64]int{}
	for _, ev := range evs {
		perLane[ev.TID]++
		if ev.Phase == "X" && ev.Depth != 0 {
			t.Fatalf("span at depth %d, want 0: %+v", ev.Depth, ev)
		}
	}
	if len(perLane) != lanes {
		t.Errorf("got %d lanes, want %d", len(perLane), lanes)
	}
}
