package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 buckets: bucket 0 holds values <= 0,
// bucket i (1 <= i <= 63) holds values v with bits.Len64(v) == i, i.e.
// 2^(i-1) <= v < 2^i.  The top bucket (63) runs to MaxInt64, so the whole
// positive int64 range is covered.
const histBuckets = 64

// Histogram is a lock-free log2-bucketed histogram for latencies (observed
// in nanoseconds) and sizes (bytes, records, objects).  Updates are a small,
// fixed number of atomic operations; Count/Sum/Min/Max are tracked exactly,
// the distribution at power-of-two resolution.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLow returns the smallest value landing in bucket i (0 for the
// non-positive bucket).
func BucketLow(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1) << (i - 1)
}

// BucketHigh returns the largest value landing in bucket i.
func BucketHigh(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	return int64(1)<<i - 1
}

// Observe records one value.  Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Since records the nanoseconds elapsed since start.  Safe on a nil
// receiver, where it also skips the clock read entirely.
func (h *Histogram) Since(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(start)))
}

// Enabled reports whether the histogram records anything; hot paths use it
// to skip timestamping when instrumentation is off.
func (h *Histogram) Enabled() bool { return h != nil }

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Bucket is one non-empty histogram bucket: Count values in [Low, High].
type Bucket struct {
	Low   int64 `json:"low"`
	High  int64 `json:"high"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time histogram copy.  Min/Max are zero
// when Count is zero.  Because updates are lock-free, a snapshot taken
// concurrently with Observe may be mid-update (e.g. count ahead of a
// bucket); totals are never lost.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the arithmetic mean of observed values (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot copies the histogram's current state, listing only non-empty
// buckets.  A nil histogram yields a zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Low: BucketLow(i), High: BucketHigh(i), Count: n})
		}
	}
	return s
}
