package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderTimeline(t *testing.T) {
	var buf bytes.Buffer
	RenderTimeline(&buf, goldenTrace().Events())
	out := buf.String()
	for _, want := range []string{
		"timeline: 4 events",
		"-- lane recovery",
		"-- lane redo-worker-00",
		"restart",
		"analysis",
		"chain",
		"{analyzed_records=18 dirty_objects=5}",
		"-- phase totals",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTimelineEmpty(t *testing.T) {
	var buf bytes.Buffer
	RenderTimeline(&buf, nil)
	if !strings.Contains(buf.String(), "no trace events") {
		t.Errorf("empty timeline = %q", buf.String())
	}
}
