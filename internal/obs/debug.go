package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sync"
)

// ServeDebug starts an HTTP debug endpoint on addr (e.g. "localhost:6060")
// exposing:
//
//	/debug/vars        expvar, including the live metrics snapshot under "llmetrics"
//	/debug/pprof/...   net/http/pprof profiles
//	/metrics           the snapshot() JSON alone
//
// snapshot is called per request, so the published metrics are always
// current.  The listener is returned so callers (and tests) can learn the
// bound address and close it; the server itself runs on a background
// goroutine for the life of the listener.
func ServeDebug(addr string, snapshot func() Snapshot) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(snapshot())
	})
	publishExpvar(snapshot)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}

var expvarOnce sync.Once

// publishExpvar registers the metrics snapshot under expvar once per
// process (expvar panics on duplicate names).  sync.Once, not a plain flag:
// two ServeDebug calls racing on different listeners must not double-publish
// or tear the guard.
func publishExpvar(snapshot func() Snapshot) {
	expvarOnce.Do(func() {
		expvar.Publish("llmetrics", expvar.Func(func() any { return snapshot() }))
	})
}

// Profiles runs CPU/heap profiling and the Go runtime execution tracer for
// the life of a command, driven by the standard -cpuprofile, -memprofile,
// and -runtime-trace flags of llrun/llbench.
type Profiles struct {
	cpuFile   *os.File
	traceFile *os.File
	memPath   string
}

// StartProfiles begins collection for each non-empty path.  Call Stop
// before exit to flush; an error starting any collector aborts the rest.
func StartProfiles(cpuPath, memPath, runtimeTracePath string) (*Profiles, error) {
	p := &Profiles{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		p.cpuFile = f
	}
	if runtimeTracePath != "" {
		f, err := os.Create(runtimeTracePath)
		if err != nil {
			p.Stop()
			return nil, fmt.Errorf("obs: runtime-trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			p.Stop()
			return nil, fmt.Errorf("obs: runtime-trace: %w", err)
		}
		p.traceFile = f
	}
	return p, nil
}

// Stop flushes and closes every active collector.  The heap profile is
// written at Stop time (after a GC, so it reflects live objects).
func (p *Profiles) Stop() error {
	if p == nil {
		return nil
	}
	var firstErr error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		p.cpuFile = nil
	}
	if p.traceFile != nil {
		trace.Stop()
		if err := p.traceFile.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		p.traceFile = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		p.memPath = ""
	}
	return firstErr
}
