package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome trace_event export/import.  The produced file loads directly in
// chrome://tracing and https://ui.perfetto.dev: one process, one Chrome
// "thread" per lane, "X" complete events for spans and "i" instants for
// markers, timestamps in microseconds from tracer start.

// tracePID is the constant pid stamped on every event (one process).
const tracePID = 1

// chromeEvent is the trace_event wire form.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level object form of a trace file.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace writes the tracer's finished events; see
// WriteChromeTraceEvents.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTraceEvents(w, t.Events())
}

// WriteChromeTraceEvents encodes events as a Chrome trace_event JSON file.
// Output is deterministic for a fixed event set: lane metadata first (by
// tid), then events in (start, tid, name) order.
func WriteChromeTraceEvents(w io.Writer, events []Event) error {
	evs := make([]Event, len(events))
	copy(evs, events)
	sortEvents(evs)

	laneNames := make(map[int64]string)
	var tids []int64
	for _, ev := range evs {
		if _, ok := laneNames[ev.TID]; !ok {
			laneNames[ev.TID] = ev.Lane
			tids = append(tids, ev.TID)
		}
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })

	out := chromeTrace{DisplayTimeUnit: "ms"}
	for _, tid := range tids {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  tracePID,
			TID:  tid,
			Args: map[string]any{"name": laneNames[tid]},
		})
	}
	for _, ev := range evs {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: ev.Name,
			Ph:   ev.Phase,
			TS:   float64(ev.Start) / float64(time.Microsecond),
			Dur:  float64(ev.Dur) / float64(time.Microsecond),
			PID:  tracePID,
			TID:  ev.TID,
			Args: ev.Args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadChromeTrace parses a Chrome trace_event JSON file (either the
// top-level object form or a bare event array) back into events.  Span
// nesting depth, which the wire format leaves implicit, is recomputed per
// lane from interval containment.
func ReadChromeTrace(r io.Reader) ([]Event, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var obj chromeTrace
	if err := json.Unmarshal(data, &obj); err != nil {
		// Bare array form.
		if aerr := json.Unmarshal(data, &obj.TraceEvents); aerr != nil {
			return nil, fmt.Errorf("obs: not a chrome trace: %w", err)
		}
	}
	laneNames := make(map[int64]string)
	var evs []Event
	for _, ce := range obj.TraceEvents {
		switch ce.Ph {
		case "M":
			if ce.Name == "thread_name" {
				if n, ok := ce.Args["name"].(string); ok {
					laneNames[ce.TID] = n
				}
			}
		case "X", "i":
			evs = append(evs, Event{
				Name:  ce.Name,
				TID:   ce.TID,
				Phase: ce.Ph,
				Start: time.Duration(ce.TS * float64(time.Microsecond)),
				Dur:   time.Duration(ce.Dur * float64(time.Microsecond)),
				Args:  ce.Args,
			})
		}
	}
	for i := range evs {
		if n, ok := laneNames[evs[i].TID]; ok {
			evs[i].Lane = n
		}
	}
	sortEvents(evs)
	assignDepths(evs)
	return evs, nil
}

// assignDepths recomputes nesting depth per lane by sweeping the sorted
// events with a stack of open interval end times.  Events must be sorted by
// start (sortEvents).  At equal starts a longer span is the parent; the
// stable sort plus the dur tiebreak below keeps parents first.
func assignDepths(evs []Event) {
	byLane := make(map[int64][]int)
	for i := range evs {
		byLane[evs[i].TID] = append(byLane[evs[i].TID], i)
	}
	for _, idxs := range byLane {
		sort.SliceStable(idxs, func(a, b int) bool {
			ea, eb := evs[idxs[a]], evs[idxs[b]]
			if ea.Start != eb.Start {
				return ea.Start < eb.Start
			}
			return ea.Dur > eb.Dur
		})
		var open []time.Duration // end offsets of enclosing spans
		for _, i := range idxs {
			ev := &evs[i]
			for len(open) > 0 && open[len(open)-1] <= ev.Start {
				open = open[:len(open)-1]
			}
			ev.Depth = len(open)
			if ev.Phase == "X" {
				open = append(open, ev.End())
			}
		}
	}
}
