package obs

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	// Get-or-create returns the same handle.
	if r.Counter("c") != c || r.Gauge("g") != g {
		t.Error("registry did not return the existing handles")
	}
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// Every method on nil handles is a no-op, not a panic.
	c.Inc()
	c.Add(5)
	g.Set(5)
	g.Add(5)
	h.Observe(5)
	h.Since(time.Time{})
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil handles must read as zero")
	}
	if h.Enabled() {
		t.Error("nil histogram must report disabled")
	}
	r.SetCounter("x", 1)
	r.Reset()
	if names := r.Names(); names != nil {
		t.Errorf("nil registry Names = %v", names)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot = %+v", s)
	}
}

func TestConcurrentCountersExact(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	// Half the goroutines hammer one shared counter; the rest take snapshots
	// concurrently (shaken out under -race).
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			h := r.Histogram("sizes")
			for j := 0; j < perG; j++ {
				c.Inc()
				h.Observe(int64(j))
				if j%1000 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != goroutines*perG {
		t.Errorf("shared counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("sizes").Snapshot().Count; got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Add(3)
	g.Set(9)
	h.Observe(100)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("reset must zero counters and gauges")
	}
	hs := h.Snapshot()
	if hs.Count != 0 || hs.Sum != 0 || hs.Min != 0 || hs.Max != 0 || len(hs.Buckets) != 0 {
		t.Errorf("reset histogram snapshot = %+v", hs)
	}
	// Handles stay live after reset.
	c.Inc()
	if c.Value() != 1 {
		t.Error("counter handle dead after reset")
	}
}

func TestSetCounterAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.SetCounter("absorbed", 123)
	r.Gauge("gg").Set(-5)
	r.Histogram("hh").Observe(3)
	s := r.Snapshot()
	if s.Counters["absorbed"] != 123 || s.Gauges["gg"] != -5 || s.Histograms["hh"].Count != 1 {
		t.Errorf("snapshot = %+v", s)
	}
	want := []string{"counter:absorbed", "gauge:gg", "histogram:hh"}
	if got := r.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names = %v, want %v", got, want)
	}
}
