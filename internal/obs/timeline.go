package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// RenderTimeline writes a text phase timeline of the given events: one
// section per lane with a proportional bar per span (indented by nesting
// depth), followed by a per-phase aggregate summary.  It is the terminal
// sibling of the Chrome trace export — llinspect's timeline subcommand and
// llrun's -metrics output both use it.
func RenderTimeline(w io.Writer, events []Event) {
	if len(events) == 0 {
		fmt.Fprintln(w, "(no trace events)")
		return
	}
	evs := make([]Event, len(events))
	copy(evs, events)
	sortEvents(evs)

	start := evs[0].Start
	end := start
	for _, ev := range evs {
		if ev.Start < start {
			start = ev.Start
		}
		if e := ev.End(); e > end {
			end = e
		}
	}
	total := end - start
	if total <= 0 {
		total = 1
	}
	fmt.Fprintf(w, "timeline: %d events over %s\n", len(evs), fmtDur(total))

	// Lanes in order of first event.
	var tids []int64
	seen := make(map[int64]bool)
	for _, ev := range evs {
		if !seen[ev.TID] {
			seen[ev.TID] = true
			tids = append(tids, ev.TID)
		}
	}

	const gutter = 32
	for _, tid := range tids {
		var lane []Event
		for _, ev := range evs {
			if ev.TID == tid {
				lane = append(lane, ev)
			}
		}
		fmt.Fprintf(w, "-- lane %s\n", lane[0].Lane)
		for _, ev := range lane {
			bar := renderBar(ev, start, total, gutter)
			label := strings.Repeat("  ", ev.Depth) + ev.Name
			dur := "·"
			if ev.Phase == "X" {
				dur = fmtDur(ev.Dur)
			}
			fmt.Fprintf(w, "  %-30s %10s %10s  |%s|%s\n",
				label, fmtDur(ev.Start-start), dur, bar, fmtArgs(ev.Args))
		}
	}

	// Aggregate by span name.
	type agg struct {
		name  string
		count int
		dur   time.Duration
	}
	byName := make(map[string]*agg)
	for _, ev := range evs {
		if ev.Phase != "X" {
			continue
		}
		a, ok := byName[ev.Name]
		if !ok {
			a = &agg{name: ev.Name}
			byName[ev.Name] = a
		}
		a.count++
		a.dur += ev.Dur
	}
	aggs := make([]*agg, 0, len(byName))
	for _, a := range byName {
		aggs = append(aggs, a)
	}
	sort.Slice(aggs, func(i, j int) bool {
		if aggs[i].dur != aggs[j].dur {
			return aggs[i].dur > aggs[j].dur
		}
		return aggs[i].name < aggs[j].name
	})
	fmt.Fprintf(w, "-- phase totals (sum of span durations; parallel spans overlap)\n")
	for _, a := range aggs {
		fmt.Fprintf(w, "  %-30s %10s  x%d\n", a.name, fmtDur(a.dur), a.count)
	}
}

// renderBar places the event on a fixed-width gutter scaled to the whole
// trace: '=' runs for spans, '|' for instants.
func renderBar(ev Event, start, total time.Duration, width int) string {
	col := int(int64(ev.Start-start) * int64(width) / int64(total))
	if col >= width {
		col = width - 1
	}
	if ev.Phase != "X" {
		return strings.Repeat(" ", col) + "!" + strings.Repeat(" ", width-col-1)
	}
	span := int(int64(ev.Dur) * int64(width) / int64(total))
	if span < 1 {
		span = 1
	}
	if col+span > width {
		span = width - col
	}
	return strings.Repeat(" ", col) + strings.Repeat("=", span) + strings.Repeat(" ", width-col-span)
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}

func fmtArgs(args map[string]any) string {
	if len(args) == 0 {
		return ""
	}
	keys := make([]string, 0, len(args))
	for k := range args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%v", k, args[k])
	}
	return "  {" + strings.Join(parts, " ") + "}"
}
