package obs

import (
	"sort"
	"sync"
	"time"
)

// Tracer collects timing spans from the recovery pipeline (and any other
// instrumented path) and exports them as a Chrome/Perfetto trace_event file
// or a text timeline.
//
// Spans are organized into lanes: a Lane is a per-goroutine span stack, so
// each concurrent actor (the analysis pass, each parallel-redo worker)
// traces into its own lane and nested Begin/End pairs within a lane record
// their nesting depth.  Lane allocation and finished-span collection are
// mutex-protected; Begin/End on a lane are otherwise lock-free and owned by
// the lane's goroutine.
//
// A nil *Tracer disables tracing: Lane returns a nil *Lane, whose Begin
// returns a nil *Span, and every method on those is a no-op — call sites
// need no conditionals.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	nextTID int64
	clock   func() time.Duration // monotonic time since tracer start
}

// NewTracer returns a tracer whose clock starts now.
func NewTracer() *Tracer {
	start := time.Now()
	return &Tracer{clock: func() time.Duration { return time.Since(start) }}
}

// Event is one finished trace event.  Start/Dur are offsets from the
// tracer's start instant.
type Event struct {
	// Name is the span or instant name.
	Name string
	// Lane is the owning lane's name.
	Lane string
	// TID is the lane id (maps to the Chrome trace tid).
	TID int64
	// Phase is "X" for a complete span, "i" for an instant event.
	Phase string
	// Depth is the span's nesting depth within its lane (0 = top level).
	Depth int
	// Start is the offset from tracer start.
	Start time.Duration
	// Dur is the span duration (0 for instants).
	Dur time.Duration
	// Args carries event annotations (counts, decisions).
	Args map[string]any
}

// End returns the event's end offset.
func (e Event) End() time.Duration { return e.Start + e.Dur }

// Lane allocates a new lane with the given display name.  Each lane must be
// used by a single goroutine at a time.  Nil-safe: a nil tracer returns a
// nil lane.
func (t *Tracer) Lane(name string) *Lane {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextTID++
	return &Lane{t: t, tid: t.nextTID, name: name}
}

// Events returns the finished events sorted by start offset (ties broken by
// lane id, then name, so concurrent lanes export deterministically).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sortEvents(out)
	return out
}

func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		if evs[i].TID != evs[j].TID {
			return evs[i].TID < evs[j].TID
		}
		return evs[i].Name < evs[j].Name
	})
}

func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Lane is one actor's span stack; see Tracer.
type Lane struct {
	t     *Tracer
	tid   int64
	name  string
	depth int
}

// Name returns the lane's display name ("" on a nil lane).
func (l *Lane) Name() string {
	if l == nil {
		return ""
	}
	return l.name
}

// Begin opens a span.  The returned span must be closed with End by the
// same goroutine.  Nil-safe.
func (l *Lane) Begin(name string) *Span {
	if l == nil {
		return nil
	}
	s := &Span{lane: l, name: name, start: l.t.clock(), depth: l.depth}
	l.depth++
	return s
}

// Instant records a zero-duration marker event.  Nil-safe.
func (l *Lane) Instant(name string, args map[string]any) {
	if l == nil {
		return
	}
	l.t.record(Event{
		Name:  name,
		Lane:  l.name,
		TID:   l.tid,
		Phase: "i",
		Depth: l.depth,
		Start: l.t.clock(),
		Args:  args,
	})
}

// Span is an open interval on a lane.
type Span struct {
	lane  *Lane
	name  string
	start time.Duration
	depth int
	args  map[string]any
}

// Arg annotates the span; chainable.  Nil-safe.
func (s *Span) Arg(key string, v any) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = make(map[string]any, 4)
	}
	s.args[key] = v
	return s
}

// End closes the span and records it.  Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	l := s.lane
	l.depth--
	end := l.t.clock()
	l.t.record(Event{
		Name:  s.name,
		Lane:  l.name,
		TID:   l.tid,
		Phase: "X",
		Depth: s.depth,
		Start: s.start,
		Dur:   end - s.start,
		Args:  s.args,
	})
}
