// Package obs is the system's zero-dependency observability layer: a
// concurrency-safe metrics registry (counters, gauges, log-bucketed
// histograms) and a lightweight span tracer with Chrome/Perfetto
// trace_event export.
//
// Everything is built for hot-path use.  Metric handles are resolved once at
// setup time and then updated with single atomic operations; a nil *Registry
// (and hence nil metric handles and a nil *Tracer) disables instrumentation
// entirely — every method is nil-safe and compiles down to a pointer test,
// so the disabled cost is ~0 and there is no build-tag or global flag to
// thread through the system.
//
// The packages beneath the engine (wal, cache, recovery, stable) accept obs
// handles through their existing option structs; internal/core unifies the
// registry view with the legacy per-package Stats counters behind
// Engine.Metrics().
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.  Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a last-value-wins int64 metric.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value.  Safe on a nil receiver (no-op).
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) reset() { g.v.Store(0) }

// Registry is a named collection of metrics.  Lookup (Counter, Gauge,
// Histogram) is get-or-create and intended for setup paths; the returned
// handles are then updated lock-free.  A nil *Registry returns nil handles,
// whose methods are all no-ops — instrumentation disabled.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// SetCounter force-sets a named counter to v (used when absorbing external
// counter sources into a snapshot registry).
func (r *Registry) SetCounter(name string, v int64) {
	if r == nil {
		return
	}
	c := r.Counter(name)
	c.v.Store(v)
}

// Snapshot is a point-in-time copy of a registry's metrics, suitable for
// JSON encoding.  Maps are keyed by metric name.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric's current value.  Each individual metric is
// read atomically; the snapshot as a whole is not a cross-metric atomic cut
// (callers needing one, like Engine.Stats, serialize mutators externally).
// A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Reset zeroes every registered metric (the handles stay valid).  Safe on a
// nil receiver.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.histograms {
		h.reset()
	}
}

// Names returns the sorted names of all registered metrics, prefixed by
// their kind — handy for debugging and tests.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.counters {
		names = append(names, "counter:"+n)
	}
	for n := range r.gauges {
		names = append(names, "gauge:"+n)
	}
	for n := range r.histograms {
		names = append(names, "histogram:"+n)
	}
	sort.Strings(names)
	return names
}
