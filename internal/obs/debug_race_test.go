package obs_test

// External-package test: the expvar/debug endpoint snapshots a live engine
// while another goroutine resets its statistics.  The snapshot path reads
// every counter source the engine merges (registry, log, store, cache,
// flight recorder), so this is the test that catches an unguarded stats
// field the moment someone adds one.  Run with -race.

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"logicallog/internal/core"
	"logicallog/internal/obs"
	"logicallog/internal/obs/flight"
	"logicallog/internal/op"
)

func TestServeDebugSnapshotRacesResetStats(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Obs = obs.NewRegistry()
	opts.Flight = flight.NewRecorder(256)
	eng, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := obs.ServeDebug("127.0.0.1:0", eng.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// A concurrent second ServeDebug must not double-publish the expvar.
	ln2, err := obs.ServeDebug("127.0.0.1:0", eng.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()

	const rounds = 50
	var wg sync.WaitGroup
	get := func(url string) {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			resp, err := http.Get(url)
			if err != nil {
				t.Errorf("get %s: %v", url, err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	wg.Add(4)
	go get(fmt.Sprintf("http://%s/metrics", ln.Addr()))
	go get(fmt.Sprintf("http://%s/debug/vars", ln.Addr()))
	go get(fmt.Sprintf("http://%s/metrics", ln2.Addr()))
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			eng.ResetStats()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			o := op.NewPhysioWrite("x", op.FuncAppend, []byte{byte(i)})
			if i == 0 {
				o = op.NewCreate("x", []byte{0})
			}
			if err := eng.Execute(o); err != nil {
				t.Errorf("execute: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}
