package flight

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"logicallog/internal/op"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.RedoDecision("recovery", 1, DecRedo, "x", 2)
	r.ValueResolve(3, "y")
	r.AbsorbRecord("x", 4, 5)
	r.AbsorbCancel("x", 4, 5)
	r.AbsorbCommit("x", 4, 5, 6)
	r.Merge(7, 2)
	r.ShipBatch(DecSent, 1, 3, 3)
	r.ShipApply(DecAccept, 1, 1)
	r.Checkpoint(9, 1)
	r.Truncate(2)
	if evs := r.Events(); evs != nil {
		t.Fatalf("nil recorder returned events: %v", evs)
	}
	if e, d, s := r.Counters(); e != 0 || d != 0 || s != 0 {
		t.Fatalf("nil recorder counters = %d/%d/%d", e, d, s)
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRingOrderAndEviction(t *testing.T) {
	r := NewRecorder(8)
	for i := 1; i <= 20; i++ {
		r.RedoDecision("recovery", op.SI(i), DecRedo, "x", 0)
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("ring of 8 holds %d events", len(evs))
	}
	for i, ev := range evs {
		if want := op.SI(13 + i); ev.LSN != want {
			t.Errorf("event %d: lsn = %d, want %d (newest 8 survive in order)", i, ev.LSN, want)
		}
	}
	events, drops, _ := r.Counters()
	if events != 20 || drops != 12 {
		t.Errorf("counters = %d events / %d drops, want 20 / 12", events, drops)
	}
}

func TestConcurrentEmitters(t *testing.T) {
	r := NewRecorder(1 << 14)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.RedoDecision("recovery", op.SI(w*per+i+1), DecSkipUnexposed, "", 0)
			}
		}(w)
	}
	wg.Wait()
	evs := r.Events()
	if len(evs) != workers*per {
		t.Fatalf("got %d events, want %d", len(evs), workers*per)
	}
	seen := make(map[uint64]bool, len(evs))
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	if events, drops, _ := r.Counters(); events != workers*per || drops != 0 {
		t.Errorf("counters = %d events / %d drops", events, drops)
	}
}

func TestSpillRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.spill")
	r, prior, err := OpenSpill(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 0 {
		t.Fatalf("fresh spill recovered %d events", len(prior))
	}
	r.RedoDecision("recovery", 12, DecSkipInstalled, "page3", 17)
	r.AbsorbCommit("hot", 4, 9, 128)
	r.Truncate(40)
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := ReadSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("spill holds %d events, want 3", len(back))
	}
	want := Event{Seq: 0, At: back[0].At, Kind: KindRedoDecision, Dec: DecSkipInstalled,
		LSN: 12, Ref: 17, Object: "page3", Actor: "recovery"}
	if back[0] != want {
		t.Errorf("round-trip event = %+v, want %+v", back[0], want)
	}
	if back[1].N != 128 || back[1].Object != "hot" || back[1].Ref != 9 {
		t.Errorf("absorb-commit round-trip = %+v", back[1])
	}
}

// TestSpillTornTailTrimmedOnReopen is the WAL rule applied to the spill:
// a crash mid-append leaves a torn final frame, and reopening trims it
// while keeping every complete frame before it — then appends cleanly.
func TestSpillTornTailTrimmedOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.spill")
	r, _, err := OpenSpill(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		r.RedoDecision("recovery", op.SI(i), DecRedo, "x", 0)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop the last 3 bytes of the final frame.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	r2, prior, err := OpenSpill(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 4 {
		t.Fatalf("recovered %d events after torn tail, want 4", len(prior))
	}
	for i, ev := range prior {
		if ev.LSN != op.SI(i+1) {
			t.Errorf("recovered event %d: lsn = %d", i, ev.LSN)
		}
	}
	// Sequence numbers continue after the survivors.
	r2.Merge(99, 1)
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	all, err := ReadSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("after reopen+append spill holds %d events, want 5", len(all))
	}
	if last := all[4]; last.Kind != KindMerge || last.Seq != prior[3].Seq+1 {
		t.Errorf("appended event = %+v, want merge with seq %d", last, prior[3].Seq+1)
	}
	// The file itself was physically trimmed back to the good prefix.
	trimmed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(trimmed) >= len(data) {
		t.Errorf("torn tail not trimmed: %d bytes vs %d before the tear", len(trimmed), len(data))
	}
}

// TestSpillCorruptMiddleStopsScan: a checksum-corrupt frame in the middle
// bounds the trusted prefix — nothing after it is believed.
func TestSpillCorruptMiddleStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.spill")
	r, _, err := OpenSpill(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		r.Checkpoint(op.SI(i*10), int64(i))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the second frame.
	frame := len(data) / 3
	data[frame+spillFrameOverhead] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].LSN != 10 {
		t.Fatalf("corrupt middle frame: recovered %+v, want only the first checkpoint", evs)
	}
}

func TestCountersAndSpillBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.spill")
	r, _, err := OpenSpill(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	r.ShipBatch(DecLost, 5, 9, 5)
	r.ShipApply(DecGap, 12, 8)
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	events, drops, spilled := r.Counters()
	if events != 2 || drops != 0 {
		t.Errorf("counters = %d events / %d drops", events, drops)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if spilled != st.Size() || spilled == 0 {
		t.Errorf("spill_bytes = %d, file size = %d", spilled, st.Size())
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Seq: 7, Kind: KindRedoDecision, Dec: DecSkipInstalled, LSN: 12, Ref: 17, Object: "p3", Actor: "recovery"}
	want := "#7 redo-decision skip-installed lsn=12 ref=17 obj=p3 actor=recovery"
	if got := ev.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
