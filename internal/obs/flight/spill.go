package flight

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"logicallog/internal/op"
)

// Spill-file format: a sequence of independent frames, each
//
//	u32le payload length | u32le CRC32-C of payload | payload
//
// with the payload a varint encoding of one Event (seq, at-ns, kind,
// dec, lsn, ref, object, n, actor).  Frames are self-delimiting and
// checksummed so a reopen can apply the WAL's torn-tail rule: scan
// frames from the start, stop at the first incomplete frame, checksum
// mismatch, or undecodable payload, and truncate the file back to the
// last good frame.  Everything before the torn tail survives the crash.

const spillFrameOverhead = 8

// spillFlushThreshold bounds the pending-encode buffer; emission under
// foreign mutexes only pays a file write when a batch has accumulated.
const spillFlushThreshold = 32 << 10

var spillCRC = crc32.MakeTable(crc32.Castagnoli)

type spillFile struct {
	f   *os.File
	buf []byte
}

func appendSpillFrame(dst []byte, ev *Event) []byte {
	var p []byte
	p = binary.AppendUvarint(p, ev.Seq)
	p = binary.AppendUvarint(p, uint64(ev.At))
	p = append(p, byte(ev.Kind), byte(ev.Dec))
	p = binary.AppendUvarint(p, uint64(ev.LSN))
	p = binary.AppendUvarint(p, uint64(ev.Ref))
	p = binary.AppendUvarint(p, uint64(len(ev.Object)))
	p = append(p, ev.Object...)
	p = binary.AppendVarint(p, ev.N)
	p = binary.AppendUvarint(p, uint64(len(ev.Actor)))
	p = append(p, ev.Actor...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(p, spillCRC))
	return append(dst, p...)
}

// decodeSpillEvent decodes one frame payload; any leftover or truncated
// field is an error (the caller treats it as a torn tail).
func decodeSpillEvent(p []byte) (Event, error) {
	var ev Event
	u := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, fmt.Errorf("flight: spill varint truncated")
		}
		p = p[n:]
		return v, nil
	}
	seq, err := u()
	if err != nil {
		return ev, err
	}
	at, err := u()
	if err != nil {
		return ev, err
	}
	if len(p) < 2 {
		return ev, fmt.Errorf("flight: spill kind/dec truncated")
	}
	ev.Seq, ev.At = seq, time.Duration(at)
	ev.Kind, ev.Dec = Kind(p[0]), Decision(p[1])
	p = p[2:]
	lsn, err := u()
	if err != nil {
		return ev, err
	}
	ref, err := u()
	if err != nil {
		return ev, err
	}
	ev.LSN, ev.Ref = op.SI(lsn), op.SI(ref)
	olen, err := u()
	if err != nil {
		return ev, err
	}
	if uint64(len(p)) < olen {
		return ev, fmt.Errorf("flight: spill object truncated")
	}
	ev.Object = op.ObjectID(p[:olen])
	p = p[olen:]
	n, w := binary.Varint(p)
	if w <= 0 {
		return ev, fmt.Errorf("flight: spill n truncated")
	}
	ev.N = n
	p = p[w:]
	alen, err := u()
	if err != nil {
		return ev, err
	}
	if uint64(len(p)) != alen {
		return ev, fmt.Errorf("flight: spill actor length mismatch")
	}
	ev.Actor = string(p)
	return ev, nil
}

// scanSpill walks the frame sequence in data and returns the decoded
// events plus the byte length of the good prefix; decoding stops (without
// error) at the first torn frame.
func scanSpill(data []byte) ([]Event, int) {
	var out []Event
	off := 0
	for {
		rest := data[off:]
		if len(rest) < spillFrameOverhead {
			return out, off
		}
		plen := int(binary.LittleEndian.Uint32(rest))
		sum := binary.LittleEndian.Uint32(rest[4:])
		if len(rest) < spillFrameOverhead+plen {
			return out, off
		}
		payload := rest[spillFrameOverhead : spillFrameOverhead+plen]
		if crc32.Checksum(payload, spillCRC) != sum {
			return out, off
		}
		ev, err := decodeSpillEvent(payload)
		if err != nil {
			return out, off
		}
		out = append(out, ev)
		off += spillFrameOverhead + plen
	}
}

// OpenSpill opens (creating if absent) a crash-tolerant spill file,
// trims any torn tail, and returns a recorder that appends subsequent
// events to it, plus the events that survived from earlier runs.  The
// new recorder's sequence numbers continue after the recovered ones.
func OpenSpill(path string, ringSize int) (*Recorder, []Event, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("flight: open spill: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("flight: read spill: %w", err)
	}
	prior, good := scanSpill(data)
	if good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("flight: trim spill torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("flight: seek spill: %w", err)
	}
	r := NewRecorder(ringSize)
	r.spill = &spillFile{f: f}
	r.spillOn.Store(true)
	r.spillBytes.Store(int64(good))
	if n := len(prior); n > 0 {
		r.seq.Store(prior[n-1].Seq + 1)
	}
	return r, prior, nil
}

// ReadSpill loads the surviving events from a spill file without
// attaching to it (the llinspect path); a torn tail is silently ignored.
func ReadSpill(path string) ([]Event, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("flight: read spill: %w", err)
	}
	evs, _ := scanSpill(data)
	return evs, nil
}

// spillAppend buffers one encoded frame, flushing to the file once a
// batch has accumulated.
func (r *Recorder) spillAppend(ev *Event) {
	r.spillMu.Lock()
	defer r.spillMu.Unlock()
	if r.spill == nil {
		return
	}
	r.spill.buf = appendSpillFrame(r.spill.buf, ev)
	if len(r.spill.buf) >= spillFlushThreshold {
		r.flushLocked()
	}
}

// flushLocked writes the pending buffer; spillMu held.  Write errors
// drop the batch rather than wedging emitters — the recorder observes,
// it must never fail the flight it is recording.
func (r *Recorder) flushLocked() {
	if len(r.spill.buf) == 0 {
		return
	}
	n, err := r.spill.f.Write(r.spill.buf)
	if err != nil {
		// A partial frame at the tail is exactly what the torn-tail
		// trim handles on reopen.
		r.spillBytes.Add(int64(n))
		r.spill.buf = r.spill.buf[:0]
		return
	}
	r.spillBytes.Add(int64(n))
	r.spill.buf = r.spill.buf[:0]
}

// Sync flushes buffered frames and forces them to stable storage.
func (r *Recorder) Sync() error {
	if r == nil {
		return nil
	}
	r.spillMu.Lock()
	defer r.spillMu.Unlock()
	if r.spill == nil {
		return nil
	}
	r.flushLocked()
	return r.spill.f.Sync()
}

// Close flushes and closes the spill file; the ring stays readable.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.spillOn.Store(false)
	r.spillMu.Lock()
	defer r.spillMu.Unlock()
	if r.spill == nil {
		return nil
	}
	r.flushLocked()
	err := r.spill.f.Close()
	r.spill = nil
	return err
}
