// Package flight is the recovery flight recorder: a lock-free, bounded
// ring of structured decision events recording *why* the engine did what
// it did — redo apply/skip with the dirty-table reason, install-graph
// ValueAfter resolutions, absorption record/cancel/commit with observer
// horizons, ship batch send/Lost/rewind and standby accept/dup/gap, and
// checkpoint / truncation horizon moves.
//
// Like the rest of internal/obs, every handle is nil-safe: methods on a
// nil *Recorder are no-ops, so instrumented code pays one pointer test
// when recording is disabled.  When enabled, each event costs one
// allocation and one atomic pointer swap; writers never block each other
// (the ring is a []atomic.Pointer[Event] indexed by an atomic sequence
// counter), so emission is safe from any goroutine including code running
// under WAL stream and shard mutexes.
//
// A recorder can spill events to a crash-tolerant file (see spill.go):
// length-prefixed, checksummed frames whose torn tail is trimmed on
// reopen exactly like the WAL's, so the recorder survives the very crash
// it must explain.
package flight

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"logicallog/internal/op"
)

// Kind classifies a decision event.
type Kind uint8

const (
	// KindRedoDecision is one DecideRedo evaluation during recovery or
	// standby apply: Dec says redo/skip-installed/skip-unexposed/voided,
	// LSN is the operation, Object/Ref carry the reason (the installed
	// witness and its vSI, or the dirty object and its rSI).
	KindRedoDecision Kind = iota + 1
	// KindValueResolve is an install-graph ValueAfter resolution: the
	// replay chose the value written at LSN as object Object's installed
	// value.
	KindValueResolve
	// KindAbsorbRecord is the absorption index superseding the write at
	// LSN by the later write Ref to the same object.
	KindAbsorbRecord
	// KindAbsorbCancel is an observer horizon (a read at LSN Ref) landing
	// inside the elision interval of the absorption recorded at LSN,
	// cancelling it.
	KindAbsorbCancel
	// KindAbsorbCommit is the merge substituting the tombstone for the
	// absorbed write at LSN (absorber Ref, N elided payload bytes).
	KindAbsorbCommit
	// KindMerge is a per-core stream merge: N records merged through
	// force target LSN.
	KindMerge
	// KindShipBatch is a sender-side batch outcome (Dec sent/lost/rewind)
	// for the batch [LSN, Ref]; on rewind Ref is the ack's Want cursor.
	KindShipBatch
	// KindShipApply is a standby-side delivery outcome (Dec
	// accept/dup/gap) for the record at LSN.
	KindShipApply
	// KindCheckpoint is a checkpoint record landing at LSN with N dirty
	// entries.
	KindCheckpoint
	// KindTruncate is the truncation horizon moving: records below LSN
	// are dropped.
	KindTruncate
)

func (k Kind) String() string {
	switch k {
	case KindRedoDecision:
		return "redo-decision"
	case KindValueResolve:
		return "value-resolve"
	case KindAbsorbRecord:
		return "absorb-record"
	case KindAbsorbCancel:
		return "absorb-cancel"
	case KindAbsorbCommit:
		return "absorb-commit"
	case KindMerge:
		return "merge"
	case KindShipBatch:
		return "ship-batch"
	case KindShipApply:
		return "ship-apply"
	case KindCheckpoint:
		return "checkpoint"
	case KindTruncate:
		return "truncate"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Decision is the outcome recorded by an event, qualified by its Kind.
type Decision uint8

const (
	DecNone Decision = iota
	// Redo decisions (KindRedoDecision), matching recovery's trace names.
	DecRedo
	DecSkipInstalled
	DecSkipUnexposed
	DecVoided
	// Sender batch outcomes (KindShipBatch).
	DecSent
	DecLost
	DecRewind
	// Standby delivery outcomes (KindShipApply).
	DecAccept
	DecDup
	DecGap
)

func (d Decision) String() string {
	switch d {
	case DecNone:
		return ""
	case DecRedo:
		return "redo"
	case DecSkipInstalled:
		return "skip-installed"
	case DecSkipUnexposed:
		return "skip-unexposed"
	case DecVoided:
		return "voided"
	case DecSent:
		return "sent"
	case DecLost:
		return "lost"
	case DecRewind:
		return "rewind"
	case DecAccept:
		return "accept"
	case DecDup:
		return "dup"
	case DecGap:
		return "gap"
	}
	return fmt.Sprintf("dec(%d)", uint8(d))
}

// Event is one recorded decision.  Field meaning depends on Kind (see the
// Kind constants); Seq is the global emission order and At the offset
// from the recorder's start, comparable with obs.Tracer timestamps taken
// in the same process.
type Event struct {
	Seq    uint64
	At     time.Duration
	Kind   Kind
	Dec    Decision
	LSN    op.SI
	Ref    op.SI
	Object op.ObjectID
	N      int64
	Actor  string
}

// String renders the event as one forensic log line.
func (ev Event) String() string {
	s := fmt.Sprintf("#%d %s", ev.Seq, ev.Kind)
	if ev.Dec != DecNone {
		s += " " + ev.Dec.String()
	}
	if ev.LSN != op.NilSI || ev.Kind == KindTruncate {
		s += fmt.Sprintf(" lsn=%d", ev.LSN)
	}
	if ev.Ref != op.NilSI {
		s += fmt.Sprintf(" ref=%d", ev.Ref)
	}
	if ev.Object != "" {
		s += fmt.Sprintf(" obj=%s", ev.Object)
	}
	if ev.N != 0 {
		s += fmt.Sprintf(" n=%d", ev.N)
	}
	if ev.Actor != "" {
		s += " actor=" + ev.Actor
	}
	return s
}

// Recorder is the flight recorder.  The zero value is not usable; build
// one with NewRecorder or OpenSpill.  All methods are safe on a nil
// receiver and from concurrent goroutines.
type Recorder struct {
	slots []atomic.Pointer[Event]
	mask  uint64
	seq   atomic.Uint64

	clock func() time.Duration

	events     atomic.Int64
	drops      atomic.Int64
	spillBytes atomic.Int64

	spillMu sync.Mutex
	spillOn atomic.Bool
	spill   *spillFile
}

// DefaultRingSize bounds the in-memory event ring when callers pass 0.
const DefaultRingSize = 1 << 12

// NewRecorder returns a ring-only recorder holding the last `size`
// events (rounded up to a power of two; 0 means DefaultRingSize).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRingSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	start := time.Now()
	return &Recorder{
		slots: make([]atomic.Pointer[Event], n),
		mask:  uint64(n - 1),
		clock: func() time.Duration { return time.Since(start) },
	}
}

// emit stamps and publishes one event.  Lock-free on the ring; when a
// spill file is attached the encoded frame is buffered under spillMu
// (still safe under foreign mutexes — spillMu is a leaf lock).
func (r *Recorder) emit(ev Event) {
	if r == nil {
		return
	}
	ev.Seq = r.seq.Add(1) - 1
	ev.At = r.clock()
	p := &ev
	if old := r.slots[ev.Seq&r.mask].Swap(p); old != nil {
		r.drops.Add(1)
	}
	r.events.Add(1)
	if r.spillOn.Load() {
		r.spillAppend(p)
	}
}

// Events returns the ring's surviving events in emission order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Counters reports lifetime totals: events emitted, ring slots
// overwritten before being read, and bytes durably spilled.
func (r *Recorder) Counters() (events, ringDrops, spillBytes int64) {
	if r == nil {
		return 0, 0, 0
	}
	return r.events.Load(), r.drops.Load(), r.spillBytes.Load()
}

// RedoDecision records one DecideRedo outcome.  For skip-installed,
// obj/ref are the witness object and its current vSI; for redo, the
// dirty-table entry and its rSI that exposed the record.
func (r *Recorder) RedoDecision(actor string, lsn op.SI, dec Decision, obj op.ObjectID, ref op.SI) {
	r.emit(Event{Kind: KindRedoDecision, Dec: dec, LSN: lsn, Ref: ref, Object: obj, Actor: actor})
}

// ValueResolve records ValueAfter choosing the write at lsn as obj's
// installed value.
func (r *Recorder) ValueResolve(lsn op.SI, obj op.ObjectID) {
	r.emit(Event{Kind: KindValueResolve, LSN: lsn, Object: obj, Actor: "installgraph"})
}

// AbsorbRecord records the write at lsn being superseded by the write at
// `by` to the same object.
func (r *Recorder) AbsorbRecord(obj op.ObjectID, lsn, by op.SI) {
	r.emit(Event{Kind: KindAbsorbRecord, LSN: lsn, Ref: by, Object: obj, Actor: "wal"})
}

// AbsorbCancel records an observer at `observer` landing inside the
// elision interval of the absorption at lsn, cancelling it.
func (r *Recorder) AbsorbCancel(obj op.ObjectID, lsn, observer op.SI) {
	r.emit(Event{Kind: KindAbsorbCancel, LSN: lsn, Ref: observer, Object: obj, Actor: "wal"})
}

// AbsorbCommit records the merge substituting a tombstone for the
// absorbed write at lsn (absorber `by`, `elided` payload bytes saved).
func (r *Recorder) AbsorbCommit(obj op.ObjectID, lsn, by op.SI, elided int64) {
	r.emit(Event{Kind: KindAbsorbCommit, LSN: lsn, Ref: by, Object: obj, N: elided, Actor: "wal"})
}

// Merge records a per-core stream merge of n records through the force
// target LSN.
func (r *Recorder) Merge(target op.SI, n int64) {
	r.emit(Event{Kind: KindMerge, LSN: target, N: n, Actor: "wal"})
}

// ShipBatch records a sender-side batch outcome for [first, last]; on
// DecRewind, last is the ack's Want cursor the sender rewound to.
func (r *Recorder) ShipBatch(dec Decision, first, last op.SI, n int64) {
	r.emit(Event{Kind: KindShipBatch, Dec: dec, LSN: first, Ref: last, N: n, Actor: "sender"})
}

// ShipApply records a standby-side delivery outcome for the record at
// lsn; ref is the standby's want cursor at the time.
func (r *Recorder) ShipApply(dec Decision, lsn, want op.SI) {
	r.emit(Event{Kind: KindShipApply, Dec: dec, LSN: lsn, Ref: want, Actor: "standby"})
}

// Checkpoint records a checkpoint landing at lsn covering n dirty
// entries.
func (r *Recorder) Checkpoint(lsn op.SI, n int64) {
	r.emit(Event{Kind: KindCheckpoint, LSN: lsn, N: n, Actor: "ckpt"})
}

// Truncate records the truncation horizon moving to lsn.
func (r *Recorder) Truncate(lsn op.SI) {
	r.emit(Event{Kind: KindTruncate, LSN: lsn, Actor: "ckpt"})
}
