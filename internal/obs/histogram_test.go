package obs

import (
	"math"
	"sync"
	"testing"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0},
		{-1, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{(1 << 10) - 1, 10},
		{1 << 10, 11},
		{1 << 62, 63},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBucketBoundsRoundTrip(t *testing.T) {
	if BucketLow(0) != 0 || BucketHigh(0) != 0 {
		t.Errorf("bucket 0 bounds = [%d, %d]", BucketLow(0), BucketHigh(0))
	}
	for i := 1; i < histBuckets; i++ {
		low, high := BucketLow(i), BucketHigh(i)
		if low != int64(1)<<(i-1) {
			t.Errorf("BucketLow(%d) = %d", i, low)
		}
		if bucketIndex(low) != i || bucketIndex(high) != i {
			t.Errorf("bucket %d bounds [%d, %d] do not map back to bucket %d", i, low, high, i)
		}
		// The value below the bucket's low bound lands in the bucket below.
		if bucketIndex(low-1) != i-1 {
			t.Errorf("bucketIndex(%d) = %d, want %d", low-1, bucketIndex(low-1), i-1)
		}
	}
	if BucketHigh(histBuckets-1) != math.MaxInt64 {
		t.Errorf("top BucketHigh = %d", BucketHigh(histBuckets-1))
	}
}

func TestHistogramObserve(t *testing.T) {
	h := newHistogram()
	for _, v := range []int64{-3, 0, 1, 3, 3, 1024} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 || s.Sum != 1028 || s.Min != -3 || s.Max != 1024 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Mean() != 1028.0/6.0 {
		t.Errorf("mean = %v", s.Mean())
	}
	// Buckets: [-3, 0] -> bucket 0 (x2), 1 -> bucket 1, 3 -> bucket 2 (x2),
	// 1024 -> bucket 11.
	want := []Bucket{
		{Low: 0, High: 0, Count: 2},
		{Low: 1, High: 1, Count: 1},
		{Low: 2, High: 3, Count: 2},
		{Low: 1024, High: 2047, Count: 1},
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Errorf("bucket[%d] = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	h := newHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 || s.Mean() != 0 || len(s.Buckets) != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
}

func TestHistogramConcurrentExact(t *testing.T) {
	h := newHistogram()
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for j := int64(0); j < perG; j++ {
				h.Observe(base + j)
			}
		}(int64(i))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Errorf("count = %d, want %d", s.Count, goroutines*perG)
	}
	if s.Min != 0 || s.Max != goroutines-1+perG-1 {
		t.Errorf("min/max = %d/%d", s.Min, s.Max)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != s.Count {
		t.Errorf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}
