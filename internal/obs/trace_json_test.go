package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenTrace builds a small deterministic recovery-shaped trace: a
// coordinator lane with nested phases and one worker lane, driven by the
// step clock so offsets are stable across runs.
func goldenTrace() *Tracer {
	tr := stepTracer()
	rec := tr.Lane("recovery")
	restart := rec.Begin("restart")
	restart.End()
	analysis := rec.Begin("analysis").Arg("analyzed_records", 18).Arg("dirty_objects", 5)
	analysis.End()
	w := tr.Lane("redo-worker-00")
	chain := w.Begin("chain").Arg("ops", 4)
	w.Instant("redo-decision", map[string]any{"lsn": 7})
	chain.End()
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_trace.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := goldenTrace()
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("round-trip: %d events, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Name != w.Name || g.Lane != w.Lane || g.Phase != w.Phase || g.Depth != w.Depth {
			t.Errorf("event %d: got %+v, want %+v", i, g, w)
		}
		// Timestamps survive the microsecond wire format to within rounding.
		if d := g.Start - w.Start; d < -time.Microsecond || d > time.Microsecond {
			t.Errorf("event %d start drift %v", i, d)
		}
		if d := g.Dur - w.Dur; d < -time.Microsecond || d > time.Microsecond {
			t.Errorf("event %d dur drift %v", i, d)
		}
	}
}

func TestReadChromeTraceBareArray(t *testing.T) {
	bare := `[
	 {"name": "thread_name", "ph": "M", "pid": 1, "tid": 4, "args": {"name": "redo"}},
	 {"name": "outer", "ph": "X", "ts": 0, "dur": 100, "pid": 1, "tid": 4},
	 {"name": "inner", "ph": "X", "ts": 10, "dur": 20, "pid": 1, "tid": 4},
	 {"name": "later", "ph": "X", "ts": 50, "dur": 10, "pid": 1, "tid": 4}
	]`
	evs, err := ReadChromeTrace(bytes.NewReader([]byte(bare)))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	depths := map[string]int{}
	for _, ev := range evs {
		if ev.Lane != "redo" {
			t.Errorf("lane = %q", ev.Lane)
		}
		depths[ev.Name] = ev.Depth
	}
	// Depth is recomputed from interval containment: inner and later both
	// nest inside outer.
	if depths["outer"] != 0 || depths["inner"] != 1 || depths["later"] != 1 {
		t.Errorf("depths = %v", depths)
	}
}

func TestReadChromeTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadChromeTrace(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("expected an error for non-JSON input")
	}
}
