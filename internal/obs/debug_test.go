package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
)

func TestServeDebugMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("wal.forces").Add(9)
	ln, err := ServeDebug("127.0.0.1:0", r.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["wal.forces"] != 9 {
		t.Errorf("served snapshot = %+v", s)
	}

	vars, err := http.Get(fmt.Sprintf("http://%s/debug/vars", ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer vars.Body.Close()
	body, err := io.ReadAll(vars.Body)
	if err != nil {
		t.Fatal(err)
	}
	var published map[string]json.RawMessage
	if err := json.Unmarshal(body, &published); err != nil {
		t.Fatalf("expvar output not JSON: %v", err)
	}
	if _, ok := published["llmetrics"]; !ok {
		t.Error("expvar output missing llmetrics")
	}
}
