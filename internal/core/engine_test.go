package core_test

import (
	"testing"

	"logicallog/internal/cache"
	. "logicallog/internal/core"
	"logicallog/internal/op"
	"logicallog/internal/recovery"
	"logicallog/internal/writegraph"
)

func newEng(t *testing.T, opts Options) *Engine {
	t.Helper()
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.Policy != writegraph.PolicyRW || o.Strategy != cache.StrategyIdentityWrite ||
		o.RedoTest != recovery.TestRSI || !o.LogInstalls {
		t.Errorf("DefaultOptions = %+v", o)
	}
}

func TestExecuteGetFlushRoundTrip(t *testing.T) {
	eng := newEng(t, DefaultOptions())
	if err := eng.Execute(op.NewCreate("x", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	v, err := eng.Get("x")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if len(eng.History()) != 1 {
		t.Errorf("History = %d ops", len(eng.History()))
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	sv, err := eng.Store().Read("x")
	if err != nil || string(sv.Val) != "v" {
		t.Errorf("stable x = %+v, %v", sv, err)
	}
	// InstallOne on an empty graph is a no-op.
	if err := eng.InstallOne(); err != nil {
		t.Fatal(err)
	}
}

func TestPhysiologicalLowering(t *testing.T) {
	opts := DefaultOptions()
	opts.Physiological = true
	eng := newEng(t, opts)
	if err := eng.Execute(op.NewCreate("src", []byte("data"))); err != nil {
		t.Fatal(err)
	}
	// A logical B-form op is lowered to a physical write.
	b := op.NewLogical(op.FuncCopy, []byte("dst"), []op.ObjectID{"src"}, []op.ObjectID{"dst"})
	if err := eng.Execute(b); err != nil {
		t.Fatal(err)
	}
	hist := eng.History()
	last := hist[len(hist)-1]
	if last.Kind != op.KindPhysicalWrite {
		t.Errorf("lowered kind = %v", last.Kind)
	}
	if string(last.Values["dst"]) != "data" {
		t.Errorf("lowered value = %q", last.Values["dst"])
	}
	// Physiological self-transforms pass through unchanged.
	if err := eng.Execute(op.NewPhysioWrite("dst", op.FuncAppend, []byte("!"))); err != nil {
		t.Fatal(err)
	}
	hist = eng.History()
	if hist[len(hist)-1].Kind != op.KindPhysioWrite {
		t.Error("physiological op was lowered")
	}
	v, _ := eng.Get("dst")
	if string(v) != "data!" {
		t.Errorf("dst = %q", v)
	}
	// Lowering an op whose input is missing fails cleanly.
	bad := op.NewLogical(op.FuncCopy, []byte("y"), []op.ObjectID{"ghost"}, []op.ObjectID{"y"})
	if err := eng.Execute(bad); err == nil {
		t.Error("lowering with missing input succeeded")
	}
}

func TestStatsAndReset(t *testing.T) {
	eng := newEng(t, DefaultOptions())
	if err := eng.Execute(op.NewCreate("x", make([]byte, 100))); err != nil {
		t.Fatal(err)
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Log.BytesAppended == 0 || st.Store.ObjectWrites == 0 || st.Cache.Installs == 0 {
		t.Errorf("Stats = %+v", st)
	}
	eng.ResetStats()
	st = eng.Stats()
	if st.Log.BytesAppended != 0 || st.Store.ObjectWrites != 0 {
		t.Error("ResetStats incomplete")
	}
}

func TestCrashRecoverSwapsManager(t *testing.T) {
	eng := newEng(t, DefaultOptions())
	if err := eng.Execute(op.NewCreate("x", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	before := eng.Cache()
	eng.Crash()
	if _, err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	if eng.Cache() == before {
		t.Error("Recover did not install the recovered cache manager")
	}
	v, err := eng.Get("x")
	if err != nil || string(v) != "v" {
		t.Errorf("recovered x = %q, %v", v, err)
	}
	// History survives crash (test-oracle contract).
	if len(eng.History()) != 1 {
		t.Errorf("History = %d", len(eng.History()))
	}
}

func TestCheckpointTruncatesLog(t *testing.T) {
	eng := newEng(t, DefaultOptions())
	for i := 0; i < 10; i++ {
		if err := eng.Execute(op.NewPhysicalWrite("x", []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if eng.Log().FirstLSN() <= 1 {
		t.Errorf("FirstLSN = %d: checkpoint did not truncate", eng.Log().FirstLSN())
	}
}
