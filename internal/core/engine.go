// Package core wires the recovery system together: the write-ahead log, the
// stable store, the cache manager with its write graph, and crash recovery.
// It is the engine beneath the public logicallog API and the harness the
// experiments and simulations drive.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"logicallog/internal/cache"
	"logicallog/internal/obs"
	"logicallog/internal/obs/flight"
	"logicallog/internal/op"
	"logicallog/internal/recovery"
	"logicallog/internal/stable"
	"logicallog/internal/wal"
	"logicallog/internal/writegraph"
)

// Options configures an Engine.
type Options struct {
	// Policy selects the write graph: writegraph.PolicyRW (the paper) or
	// writegraph.PolicyW (the [8] baseline).
	Policy writegraph.Policy
	// Strategy selects the multi-object flush mechanism.
	Strategy cache.FlushStrategy
	// RedoTest selects the REDO predicate used by Recover.
	RedoTest recovery.RedoTest
	// LogInstalls enables installation/flush records (Section 5); on by
	// default in DefaultOptions.
	LogInstalls bool
	// Physiological, when set, converts every executed operation into
	// physical/physiological form before logging: data values read from
	// other objects are materialized into the log record, exactly the
	// transformation of Figure 1(b).  This is the paper's comparison
	// baseline.
	Physiological bool
	// Registry resolves transformation functions; defaults to a fresh
	// registry with builtins.
	Registry *op.Registry
	// LogDevice backs the write-ahead log; defaults to an in-memory device.
	LogDevice wal.Device
	// InstallTrace, when non-nil, observes every write-graph node install
	// (debug and inspection use only).
	InstallTrace func(view *writegraph.NodeView)
	// RedoWorkers bounds the parallel redo pass's worker pool during
	// Recover.  0 defaults to runtime.GOMAXPROCS(0); 1 forces serial redo.
	RedoWorkers int
	// TransientRetries bounds retries of log forces and stable flushes
	// that fail with a transient (retryable) I/O error, with capped
	// exponential backoff.  0 defaults to 3; negative disables retry.
	TransientRetries int
	// LogStreams sets the WAL's per-lane append stream count (the commit
	// fast lane): appenders contend per stream and the group-commit leader
	// merges streams into LSN order at force time.  0 or 1 selects the
	// single-stream path; the durable byte stream is identical at every
	// stream count.
	LogStreams int
	// AbsorbWrites enables WAL log absorption: a blind full-object write
	// superseded by a later blind write to the same object before either is
	// forced is replaced by a tombstone in the durable log.  Off by default.
	AbsorbWrites bool
	// Obs, when non-nil, receives hot-path metrics from every layer (WAL
	// append/force latency, group-commit batch sizes, flush-set sizes,
	// write-graph gauges, redo-chain distributions).  Engine.Metrics()
	// merges its snapshot with the legacy Stats counters.  Nil disables
	// instrumentation at ~0 cost.
	Obs *obs.Registry
	// Tracer, when non-nil, records phase spans of the recovery pipeline
	// for Chrome/Perfetto trace export and timeline rendering.
	Tracer *obs.Tracer
	// Flight, when non-nil, is the decision flight recorder: every redo
	// decision, absorption supersession/cancel, stream merge, ship batch
	// outcome, and checkpoint/truncation horizon move is recorded (and
	// optionally spilled to a crash-tolerant file) for post-hoc forensics
	// with llinspect -explain / -forensics.  Nil disables it at ~0 cost.
	Flight *flight.Recorder
}

// defaultTransientRetries is the retry budget when Options leaves
// TransientRetries zero.
const defaultTransientRetries = 3

// DefaultOptions returns the paper's recommended configuration: refined
// write graph, identity-write flush breakup, generalized rSI REDO test, and
// installation logging.
func DefaultOptions() Options {
	return Options{
		Policy:      writegraph.PolicyRW,
		Strategy:    cache.StrategyIdentityWrite,
		RedoTest:    recovery.TestRSI,
		LogInstalls: true,
	}
}

// Engine is a recoverable object store with logical logging.  Its exported
// methods are safe for concurrent use: a single mutex serializes them, which
// matches the paper's model (recovery ordering, not latching, is the
// subject).  Concurrency inside Recover is managed by the redo scheduler.
type Engine struct {
	mu    sync.Mutex
	opts  Options
	reg   *op.Registry
	log   *wal.Log
	store *stable.Store
	mgr   *cache.Manager

	// gate, when non-nil, is an on-demand redo drain still in progress
	// (RecoverOnDemand).  Every access path drains the chains it needs
	// before touching the cache; global operations (installs, checkpoints)
	// wait for the full drain.  Cleared once the drain completes cleanly.
	gate *recovery.OnDemand

	// history keeps every executed operation for test oracles; it is
	// volatile and carries no recovery responsibility.
	history []*op.Operation
}

// New builds an engine from options.
func New(opts Options) (*Engine, error) {
	if opts.Registry == nil {
		opts.Registry = op.NewRegistry()
	}
	if opts.LogDevice == nil {
		opts.LogDevice = wal.NewMemDevice()
	}
	switch {
	case opts.TransientRetries == 0:
		opts.TransientRetries = defaultTransientRetries
	case opts.TransientRetries < 0:
		opts.TransientRetries = 0
	}
	log, err := wal.New(opts.LogDevice)
	if err != nil {
		return nil, err
	}
	log.SetRetryPolicy(opts.TransientRetries, 20*time.Microsecond, 500*time.Microsecond)
	log.SetObs(opts.Obs)
	log.SetFlight(opts.Flight)
	log.SetStreams(opts.LogStreams, opts.AbsorbWrites)
	e := &Engine{opts: opts, reg: opts.Registry, log: log, store: stable.NewStore()}
	e.mgr, err = cache.NewManager(e.cacheConfig(), log, e.store)
	if err != nil {
		return nil, err
	}
	return e, nil
}

// Adopt builds an engine over an existing log and stable store by running
// full crash recovery on them — the failover path of a warm standby (see
// internal/ship): the standby's mirrored log and store are exactly a crashed
// primary's, so promotion is ordinary recovery followed by normal operation.
// The options' Registry must resolve every operation kind in the log.  The
// recovery result is returned alongside the engine; the engine's history
// starts empty (it never saw the operations execute).
func Adopt(opts Options, log *wal.Log, store *stable.Store) (*Engine, *recovery.Result, error) {
	if opts.Registry == nil {
		opts.Registry = op.NewRegistry()
	}
	switch {
	case opts.TransientRetries == 0:
		opts.TransientRetries = defaultTransientRetries
	case opts.TransientRetries < 0:
		opts.TransientRetries = 0
	}
	log.SetRetryPolicy(opts.TransientRetries, 20*time.Microsecond, 500*time.Microsecond)
	log.SetObs(opts.Obs)
	log.SetFlight(opts.Flight)
	log.SetStreams(opts.LogStreams, opts.AbsorbWrites)
	e := &Engine{opts: opts, reg: opts.Registry, log: log, store: store}
	res, err := recovery.Recover(log, store, recovery.Options{
		Test:        opts.RedoTest,
		Cache:       e.cacheConfig(),
		RedoWorkers: opts.RedoWorkers,
		Tracer:      opts.Tracer,
		Obs:         opts.Obs,
		Flight:      opts.Flight,
	})
	if err != nil {
		return nil, nil, err
	}
	e.mgr = res.Manager
	return e, res, nil
}

func (e *Engine) cacheConfig() cache.Config {
	return cache.Config{
		Policy:           e.opts.Policy,
		Strategy:         e.opts.Strategy,
		LogInstalls:      e.opts.LogInstalls,
		Registry:         e.reg,
		InstallTrace:     e.opts.InstallTrace,
		TransientRetries: e.opts.TransientRetries,
		Obs:              e.opts.Obs,
	}
}

// Registry returns the engine's function registry (substrates register
// their transformations on it).
func (e *Engine) Registry() *op.Registry { return e.reg }

// Log exposes the write-ahead log (statistics, inspection).
func (e *Engine) Log() *wal.Log { return e.log }

// Store exposes the stable store (statistics, snapshots).
func (e *Engine) Store() *stable.Store { return e.store }

// Cache exposes the cache manager.
func (e *Engine) Cache() *cache.Manager { return e.mgr }

// History returns the operations executed since engine creation (volatile;
// survives nothing — test oracle only).
func (e *Engine) History() []*op.Operation {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.history
}

// gateFor returns the active on-demand drain, or nil when none is running.
// Callers hold e.mu.  A cleanly completed drain is retired here so the
// fast path (Done) is consulted at most once after completion.
func (e *Engine) gateFor() *recovery.OnDemand {
	if e.gate == nil {
		return nil
	}
	if e.gate.Done() {
		e.gate = nil
		return nil
	}
	return e.gate
}

// gateRead drains the chains a read of ids needs (no-op when no on-demand
// drain is running).  Callers hold e.mu; the drain's background workers
// never take it, so blocking here cannot deadlock.
func (e *Engine) gateRead(ids ...op.ObjectID) error {
	if g := e.gateFor(); g != nil {
		return g.RequireRead(ids...)
	}
	return nil
}

// gateOp drains the chains executing o needs.
func (e *Engine) gateOp(o *op.Operation) error {
	if g := e.gateFor(); g != nil {
		return g.RequireOp(o)
	}
	return nil
}

// gateRange drains every chain writing an object id in [lo, hi).
func (e *Engine) gateRange(lo, hi op.ObjectID) error {
	if g := e.gateFor(); g != nil {
		return g.RequireRange(lo, hi)
	}
	return nil
}

// drainGate completes the on-demand drain, if one is running.  Operations
// with whole-cache footprints (installs, checkpoints, horizon computations)
// call this: they are only correct against fully recovered state.
func (e *Engine) drainGate() error {
	g := e.gateFor()
	if g == nil {
		return nil
	}
	_, err := g.Wait()
	if err == nil {
		e.gate = nil
	}
	return err
}

// Execute runs one operation through the engine.  Under the Physiological
// option the operation is first lowered to the Figure 1(b) form.
func (e *Engine) Execute(o *op.Operation) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Gate before lowering: lowering reads the operation's read set from
	// the cache, which must already hold recovered values.
	if err := e.gateOp(o); err != nil {
		return err
	}
	if e.opts.Physiological {
		lowered, err := e.lowerPhysiological(o)
		if err != nil {
			return err
		}
		o = lowered
	}
	if err := e.mgr.Execute(o); err != nil {
		return err
	}
	e.history = append(e.history, o)
	return nil
}

// lowerPhysiological converts a logical operation into physical form by
// materializing its outputs: the engine computes the operation's writes now
// and logs them as values.  Physiological single-object self-transforms
// (Ex, W_PL) pass through unchanged — they are already Figure 1(b) legal.
func (e *Engine) lowerPhysiological(o *op.Operation) (*op.Operation, error) {
	switch o.Kind {
	case op.KindExecute, op.KindPhysioWrite, op.KindPhysicalWrite,
		op.KindIdentityWrite, op.KindCreate, op.KindDelete:
		return o, nil
	}
	// Compute the writes against current state and log them physically.
	reads := make(map[op.ObjectID][]byte, len(o.ReadSet))
	for _, x := range o.ReadSet {
		v, err := e.mgr.Get(x)
		if err != nil {
			return nil, fmt.Errorf("core: lowering %s: %w", o, err)
		}
		reads[x] = v
	}
	writes, err := e.reg.Apply(o, reads)
	if err != nil {
		return nil, err
	}
	lowered := &op.Operation{
		Kind:     op.KindPhysicalWrite,
		WriteSet: append([]op.ObjectID(nil), o.WriteSet...),
		Values:   writes,
	}
	return lowered, nil
}

// Get returns the current value of x.
func (e *Engine) Get(x op.ObjectID) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.gateRead(x); err != nil {
		return nil, err
	}
	return e.mgr.Get(x)
}

// Objects returns, sorted, the ids of every live object with id in [lo, hi)
// (hi == "" means unbounded): the stable store's population overlaid with
// the cache — a cached creation appears, a cached deletion disappears.
// During an on-demand drain the range's writer chains are drained first, so
// the enumeration matches what a full-redo restart would list.
func (e *Engine) Objects(lo, hi op.ObjectID) ([]op.ObjectID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.gateRange(lo, hi); err != nil {
		return nil, err
	}
	live := make(map[op.ObjectID]bool)
	for _, x := range e.store.IDs() {
		if x < lo || (hi != "" && x >= hi) {
			continue
		}
		live[x] = true
	}
	e.mgr.RangeLive(lo, hi, func(x op.ObjectID, exists bool) bool {
		live[x] = exists
		return true
	})
	ids := make([]op.ObjectID, 0, len(live))
	for x, ok := range live {
		if ok {
			ids = append(ids, x)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// InstallOne installs one minimal write-graph node (cache pressure).
func (e *Engine) InstallOne() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.drainGate(); err != nil {
		return err
	}
	_, err := e.mgr.InstallMinimal()
	if err == cache.ErrNothingToInstall {
		return nil
	}
	return err
}

// FlushAll installs every uninstalled operation (full purge).
func (e *Engine) FlushAll() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.drainGate(); err != nil {
		return err
	}
	return e.mgr.PurgeAll()
}

// Checkpoint writes a checkpoint record and truncates the log.  The same
// steps as cache.CheckpointAndTruncate, inlined so the flight recorder
// sees both horizon moves: the checkpoint landing and the truncation
// point the dirty table then justifies.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.drainGate(); err != nil {
		return err
	}
	lsn, err := e.mgr.Checkpoint()
	if err != nil {
		return err
	}
	if e.opts.Flight != nil {
		e.opts.Flight.Checkpoint(lsn, int64(len(e.mgr.DirtyTable())))
	}
	tp := e.mgr.TruncationPoint(lsn)
	if err := e.log.Truncate(tp); err != nil {
		return err
	}
	e.opts.Flight.Truncate(tp)
	return nil
}

// CheckpointOnly writes (and forces) a checkpoint record without truncating
// the log.  The crash-schedule explorer uses it so its oracle can still
// replay the full durable history from the run's initial snapshot.
func (e *Engine) CheckpointOnly() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.drainGate(); err != nil {
		return err
	}
	lsn, err := e.mgr.Checkpoint()
	if err != nil {
		return err
	}
	if e.opts.Flight != nil {
		e.opts.Flight.Checkpoint(lsn, int64(len(e.mgr.DirtyTable())))
	}
	return nil
}

// Crash simulates a crash: the unforced log tail, the cache, and the write
// graph are lost; the stable log and stable store survive.
func (e *Engine) Crash() {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Stop any on-demand drain first: its background workers mutate the
	// cache manager being discarded, and the volatile state is lost anyway.
	if e.gate != nil {
		e.gate.Abort()
		e.gate = nil
	}
	e.log.Crash()
	e.mgr.Crash()
}

// Recover runs crash recovery and resumes normal operation on the recovered
// volatile state.  It returns the recovery statistics.
func (e *Engine) Recover() (*recovery.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.gate != nil {
		e.gate.Abort()
		e.gate = nil
	}
	res, err := recovery.Recover(e.log, e.store, recovery.Options{
		Test:        e.opts.RedoTest,
		Cache:       e.cacheConfig(),
		RedoWorkers: e.opts.RedoWorkers,
		Tracer:      e.opts.Tracer,
		Obs:         e.opts.Obs,
		Flight:      e.opts.Flight,
	})
	if err != nil {
		return nil, err
	}
	e.mgr = res.Manager
	return res, nil
}

// RecoverOnDemand starts instant recovery: analysis runs now, the redo
// suffix is partitioned into dependency chains, background workers begin
// draining them, and the engine resumes serving immediately — every access
// path first drains exactly the chains its objects need (Require* gating),
// so each request observes the same state a completed full redo would have
// produced.  The returned scheduler exposes drain progress (ChainCounts,
// Done) and completion (Wait); the engine clears the gate itself once the
// drain finishes cleanly.
func (e *Engine) RecoverOnDemand() (*recovery.OnDemand, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.gate != nil {
		e.gate.Abort()
		e.gate = nil
	}
	od, err := recovery.StartOnDemand(e.log, e.store, recovery.Options{
		Test:        e.opts.RedoTest,
		Cache:       e.cacheConfig(),
		RedoWorkers: e.opts.RedoWorkers,
		Tracer:      e.opts.Tracer,
		Obs:         e.opts.Obs,
		Flight:      e.opts.Flight,
	})
	if err != nil {
		return nil, err
	}
	e.mgr = od.Manager()
	e.gate = od
	return od, nil
}

// RecoveryHorizon returns the earliest log LSN a recovery of the engine's
// current stable state could need: the minimum rSI over dirty objects,
// bounded by the first unforced LSN.  A backup image or freshly bootstrapped
// standby that starts replay here misses nothing (internal/backup,
// internal/ship use this as their replay origin).
func (e *Engine) RecoveryHorizon() (op.SI, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.drainGate(); err != nil {
		return 0, err
	}
	return e.mgr.TruncationPoint(e.log.StableLSN() + 1), nil
}

// Stats bundles the engine's counters for reporting.
type Stats struct {
	Log   wal.Stats
	Store stable.IOStats
	Cache cache.Stats
}

// Stats returns a snapshot of all counters.  It is coherent: every engine
// mutator holds e.mu, so the log, store, and cache counters are read at a
// single quiescent point with no torn cross-source reads.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{Log: e.log.Stats(), Store: e.store.Stats(), Cache: e.mgr.Stats()}
}

// Metrics returns the unified observability view: the obs registry's
// counters, gauges, and histograms (empty when Options.Obs is nil) merged
// with the legacy per-package Stats counters under stable dotted names
// ("wal.forces", "cache.installs", "stable.object_writes", ...).  Like
// Stats, the snapshot is taken under e.mu and therefore coherent.
func (e *Engine) Metrics() obs.Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.opts.Obs.Snapshot()
	st := Stats{Log: e.log.Stats(), Store: e.store.Stats(), Cache: e.mgr.Stats()}
	mergeStats(&s, st)
	if e.opts.Flight != nil {
		events, drops, spilled := e.opts.Flight.Counters()
		s.Counters["flight.events"] = events
		s.Counters["flight.ring_drops"] = drops
		s.Counters["flight.spill_bytes"] = spilled
	}
	return s
}

// mergeStats folds the legacy Stats counters into a metrics snapshot under
// dotted names, so one view covers both metric sources.
func mergeStats(s *obs.Snapshot, st Stats) {
	c := s.Counters
	c["wal.bytes_appended"] = st.Log.BytesAppended
	c["wal.value_bytes"] = st.Log.ValueBytes
	c["wal.forces"] = st.Log.Forces
	c["wal.forces_coalesced"] = st.Log.ForcesCoalesced
	c["wal.transient_retries"] = st.Log.TransientRetries
	c["wal.truncations_clamped"] = st.Log.TruncationsClamped
	c["wal.merges"] = st.Log.Merges
	c["wal.absorbed"] = st.Log.Absorbed
	c["wal.bytes_elided"] = st.Log.BytesElided
	for t, n := range st.Log.Records {
		c["wal.records."+t.String()] = n
	}
	for t, n := range st.Log.PayloadBytes {
		c["wal.payload_bytes."+t.String()] = n
	}
	for k, n := range st.Log.OpPayloadBytes {
		c["wal.op_payload_bytes."+k.String()] = n
	}
	c["stable.object_reads"] = st.Store.ObjectReads
	c["stable.object_writes"] = st.Store.ObjectWrites
	c["stable.object_write_bytes"] = st.Store.ObjectWriteBytes
	c["stable.pointer_swings"] = st.Store.PointerSwings
	c["stable.flushtxn_log_writes"] = st.Store.FlushTxnLogWrites
	c["stable.flushtxn_log_bytes"] = st.Store.FlushTxnLogBytes
	for m, n := range st.Store.Batches {
		c["stable.batches."+m.String()] = n
	}
	c["cache.ops_executed"] = st.Cache.OpsExecuted
	c["cache.installs"] = st.Cache.Installs
	c["cache.identity_writes"] = st.Cache.IdentityWrites
	c["cache.multi_object_flushes"] = st.Cache.MultiObjectFlushes
	c["cache.objects_flushed"] = st.Cache.ObjectsFlushed
	c["cache.installed_not_flushed"] = st.Cache.InstalledNotFlushed
	c["cache.evictions"] = st.Cache.Evictions
	c["cache.checkpoints"] = st.Cache.Checkpoints
}

// ResetStats zeroes every counter source — log, store, cache, and the obs
// registry — atomically under the engine mutex, so benchmark phases start
// from a consistent all-zero cut with no mutator racing the reset.
func (e *Engine) ResetStats() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.log.ResetStats()
	e.store.ResetStats()
	e.mgr.ResetStats()
	e.opts.Obs.Reset()
}
