package core_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	. "logicallog/internal/core"
	"logicallog/internal/obs"
	"logicallog/internal/op"
)

// obsEng builds an engine with a metrics registry (and optionally a tracer)
// attached.
func obsEng(t *testing.T, tracer *obs.Tracer) (*Engine, *obs.Registry) {
	t.Helper()
	opts := DefaultOptions()
	opts.Obs = obs.NewRegistry()
	opts.Tracer = tracer
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng, opts.Obs
}

func TestMetricsUnifiesStatsAndRegistry(t *testing.T) {
	eng, _ := obsEng(t, nil)
	if err := eng.Execute(op.NewCreate("x", []byte("hello"))); err != nil {
		t.Fatal(err)
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	m := eng.Metrics()
	if m.Counters["cache.ops_executed"] != 1 {
		t.Errorf("cache.ops_executed = %d", m.Counters["cache.ops_executed"])
	}
	if m.Counters["wal.bytes_appended"] == 0 || m.Counters["stable.object_writes"] == 0 {
		t.Errorf("legacy counters missing from metrics view: %+v", m.Counters)
	}
	// The registry's hot-path histograms are in the same view.
	if m.Histograms["wal.append.ns"].Count == 0 {
		t.Errorf("wal.append.ns histogram empty; histograms = %v", m.Histograms)
	}
	if m.Histograms["cache.install.flush_set_size"].Count == 0 {
		t.Errorf("flush-set-size histogram empty; histograms = %v", m.Histograms)
	}
}

func TestResetStatsResetsEverySource(t *testing.T) {
	eng, reg := obsEng(t, nil)
	if err := eng.Execute(op.NewCreate("x", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	before := eng.Stats()
	if before.Log.BytesAppended == 0 || before.Store.ObjectWrites == 0 || before.Cache.OpsExecuted == 0 {
		t.Fatalf("expected non-zero counters before reset: %+v", before)
	}
	if reg.Histogram("wal.append.ns").Snapshot().Count == 0 {
		t.Fatal("expected obs observations before reset")
	}

	eng.ResetStats()

	after := eng.Stats()
	if after.Log.BytesAppended != 0 || after.Log.Forces != 0 {
		t.Errorf("log stats survived reset: %+v", after.Log)
	}
	if after.Store.ObjectWrites != 0 || after.Store.ObjectReads != 0 {
		t.Errorf("store stats survived reset: %+v", after.Store)
	}
	if after.Cache.OpsExecuted != 0 || after.Cache.Installs != 0 || after.Cache.ObjectsFlushed != 0 {
		t.Errorf("cache stats survived reset: %+v", after.Cache)
	}
	if n := reg.Histogram("wal.append.ns").Snapshot().Count; n != 0 {
		t.Errorf("obs histogram survived reset: count=%d", n)
	}
}

// TestMetricsCoherentUnderConcurrentExecute hammers the engine from
// executor, snapshot, and reset goroutines at once: under -race this shakes
// out torn cross-source reads, and the final quiescent snapshot must balance
// exactly.
func TestMetricsCoherentUnderConcurrentExecute(t *testing.T) {
	eng, _ := obsEng(t, nil)
	const writers, opsPer = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				id := op.ObjectID(fmt.Sprintf("o%d-%d", w, i))
				if err := eng.Execute(op.NewCreate(id, []byte("v"))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Each Metrics() view is one coherent cut: ops land on the WAL
			// and the cache inside the same engine critical section, so the
			// two sources can never disagree within a snapshot.
			m := eng.Metrics()
			if ops, recs := m.Counters["cache.ops_executed"], m.Counters["wal.records.op"]; ops != recs {
				t.Errorf("torn snapshot: cache.ops_executed=%d wal.records.op=%d", ops, recs)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	snaps.Wait()
	m := eng.Metrics()
	if m.Counters["cache.ops_executed"] != writers*opsPer {
		t.Errorf("cache.ops_executed = %d, want %d", m.Counters["cache.ops_executed"], writers*opsPer)
	}
	if got := m.Counters["wal.records.op"]; got != writers*opsPer {
		t.Errorf("wal.records.op = %d, want %d", got, writers*opsPer)
	}
}

// TestRecoveryTraceSpans drives a workload, crashes, recovers with parallel
// redo, and checks the tracer captured the pipeline: restart and analysis on
// the recovery lane, the partition phase, and per-worker chain spans.
func TestRecoveryTraceSpans(t *testing.T) {
	tracer := obs.NewTracer()
	opts := DefaultOptions()
	opts.Obs = obs.NewRegistry()
	opts.Tracer = tracer
	opts.RedoWorkers = 4
	eng, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		id := op.ObjectID(fmt.Sprintf("x%d", i%8))
		if err := eng.Execute(op.NewCreate(id, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	if _, err := eng.Recover(); err != nil {
		t.Fatal(err)
	}

	evs := tracer.Events()
	spans := map[string]int{}
	lanes := map[string]bool{}
	for _, ev := range evs {
		spans[ev.Name]++
		lanes[ev.Lane] = true
	}
	for _, want := range []string{"restart", "analysis", "redo-scan", "redo-partition", "chain"} {
		if spans[want] == 0 {
			t.Errorf("missing %q span; got %v", want, spans)
		}
	}
	if !lanes["recovery"] {
		t.Errorf("missing recovery lane; lanes = %v", lanes)
	}
	workerLanes := 0
	for name := range lanes {
		if strings.HasPrefix(name, "redo-worker-") {
			workerLanes++
		}
	}
	if workerLanes == 0 {
		t.Errorf("no per-worker lanes; lanes = %v", lanes)
	}
	// The partitioner's metrics landed in the registry.
	m := eng.Metrics()
	if m.Gauges["recovery.redo.chains"] == 0 {
		t.Errorf("recovery.redo.chains gauge = %d", m.Gauges["recovery.redo.chains"])
	}
	if m.Histograms["recovery.redo.chain_ops"].Count == 0 {
		t.Error("recovery.redo.chain_ops histogram empty")
	}
}
