package core_test

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"testing"

	. "logicallog/internal/core"
	"logicallog/internal/op"
	"logicallog/internal/recovery"
	"logicallog/internal/workload"
)

var ondemandSeed = flag.Int64("ondemand-seed", 7, "base seed for on-demand recovery tests")

// crashWorkload drives a deterministic mixed stream (with mid-stream
// installs and a checkpoint) into eng and crashes it with a durable redo
// suffix.  Two engines fed the same seed end up with byte-identical durable
// state, so full and on-demand recovery can be compared across them.
func crashWorkload(t *testing.T, eng *Engine, seed int64) {
	t.Helper()
	spec := workload.DefaultSpec(seed)
	spec.Objects = 24
	spec.Steps = 300
	gen, err := workload.NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range gen.Stream() {
		if err := eng.Execute(o); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if i%17 == 9 {
			if err := eng.InstallOne(); err != nil {
				t.Fatalf("install at %d: %v", i, err)
			}
		}
		if i == 150 {
			if err := eng.CheckpointOnly(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
}

func compareEngines(t *testing.T, full, demand *Engine) {
	t.Helper()
	fullIDs, err := full.Objects("", "")
	if err != nil {
		t.Fatal(err)
	}
	demandIDs, err := demand.Objects("", "")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(fullIDs) != fmt.Sprint(demandIDs) {
		t.Fatalf("live objects diverge:\n full:   %v\n demand: %v", fullIDs, demandIDs)
	}
	for _, x := range fullIDs {
		fv, err := full.Get(x)
		if err != nil {
			t.Fatalf("full Get(%s): %v", x, err)
		}
		dv, err := demand.Get(x)
		if err != nil {
			t.Fatalf("demand Get(%s): %v", x, err)
		}
		if !bytes.Equal(fv, dv) {
			t.Errorf("object %s diverges after on-demand redo", x)
		}
	}
}

func compareResults(t *testing.T, fullRes, odRes *recovery.Result) {
	t.Helper()
	type cut struct {
		ckpt                            op.SI
		start                           op.SI
		analyzed, scanned               int
		redone, skipInst, skipUnexp, vd int
	}
	f := cut{fullRes.CheckpointLSN, fullRes.RedoStart, fullRes.AnalyzedRecords, fullRes.ScannedOps,
		fullRes.Redone, fullRes.SkippedInstalled, fullRes.SkippedUnexposed, fullRes.Voided}
	d := cut{odRes.CheckpointLSN, odRes.RedoStart, odRes.AnalyzedRecords, odRes.ScannedOps,
		odRes.Redone, odRes.SkippedInstalled, odRes.SkippedUnexposed, odRes.Voided}
	if f != d {
		t.Errorf("recovery results diverge:\n full:   %+v\n demand: %+v", f, d)
	}
}

// TestOnDemandByteIdentity is the tentpole acceptance check: an on-demand
// drain — with demand reads racing the background workers — ends in exactly
// the state (and with exactly the per-decision counters) of a full-redo
// restart of the same crashed image.
func TestOnDemandByteIdentity(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			seed := *ondemandSeed
			opts := DefaultOptions()
			opts.RedoWorkers = workers

			full := newEng(t, opts)
			crashWorkload(t, full, seed)
			fullRes, err := full.Recover()
			if err != nil {
				t.Fatal(err)
			}

			demand := newEng(t, opts)
			crashWorkload(t, demand, seed)
			if full.Log().StableLSN() != demand.Log().StableLSN() {
				t.Fatalf("crashed images diverge: stable LSN %d vs %d",
					full.Log().StableLSN(), demand.Log().StableLSN())
			}
			od, err := demand.RecoverOnDemand()
			if err != nil {
				t.Fatal(err)
			}
			// Demand reads while background workers are still draining:
			// served values must already match full-redo state.
			for i := 0; i < 24; i += 3 {
				x := op.ObjectID(fmt.Sprintf("w%03d", i))
				dv, err := demand.Get(x)
				if err != nil {
					fv, ferr := full.Get(x)
					if ferr == nil {
						t.Fatalf("demand Get(%s) failed (%v) but full redo has %d bytes", x, err, len(fv))
					}
					continue // deleted in both; fine
				}
				fv, err := full.Get(x)
				if err != nil {
					t.Fatalf("demand served %s but full redo says %v", x, err)
				}
				if !bytes.Equal(fv, dv) {
					t.Errorf("object %s served mid-drain diverges from full redo", x)
				}
			}
			odRes, err := od.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if !od.Done() {
				t.Error("Done() false after clean Wait")
			}
			compareResults(t, fullRes, odRes)
			compareEngines(t, full, demand)
		})
	}
}

// TestOnDemandServesBeforeDrain checks the instant-recovery property: with a
// single background worker and many chains, a demand read returns before the
// drain completes (the requester replays just its own chain).
func TestOnDemandServesBeforeDrain(t *testing.T) {
	opts := DefaultOptions()
	opts.RedoWorkers = 1
	eng := newEng(t, opts)
	// Many independent single-object chains.
	for i := 0; i < 200; i++ {
		x := op.ObjectID(fmt.Sprintf("c%03d", i))
		if err := eng.Execute(op.NewCreate(x, bytes.Repeat([]byte{byte(i)}, 64))); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	od, err := eng.RecoverOnDemand()
	if err != nil {
		t.Fatal(err)
	}
	if od.Chains() < 100 {
		t.Fatalf("expected many chains, got %d", od.Chains())
	}
	v, err := eng.Get("c199")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, bytes.Repeat([]byte{199}, 64)) {
		t.Errorf("demand-served value wrong: %d bytes", len(v))
	}
	_, inFlight, done := od.ChainCounts()
	if done+inFlight >= od.Chains() {
		// The lone worker outran us — legal, just not informative.
		t.Logf("drain finished before the demand read returned (done=%d)", done)
	} else {
		t.Logf("served with %d/%d chains drained", done, od.Chains())
	}
	if _, err := od.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Get("c000"); err != nil {
		t.Fatal(err)
	}
}

// TestOnDemandAbort: crashing mid-drain aborts the scheduler; direct
// Require*/Wait on it report ErrAborted, and a fresh full recovery of the
// same engine succeeds.
func TestOnDemandAbort(t *testing.T) {
	eng := newEng(t, DefaultOptions())
	crashWorkload(t, eng, *ondemandSeed+1)
	od, err := eng.RecoverOnDemand()
	if err != nil {
		t.Fatal(err)
	}
	eng.Crash() // aborts the gate
	if err := od.RequireRead("w000"); !errors.Is(err, recovery.ErrAborted) {
		t.Errorf("RequireRead after abort = %v, want ErrAborted", err)
	}
	if _, err := od.Wait(); !errors.Is(err, recovery.ErrAborted) {
		t.Errorf("Wait after abort = %v, want ErrAborted", err)
	}
	if _, err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Get("w000"); err != nil {
		t.Fatal(err)
	}
}

// TestOnDemandWriteGating: a write during the drain lands on recovered
// state — the post-drain value reflects redo-then-write order, identical to
// recovering fully first and then writing.
func TestOnDemandWriteGating(t *testing.T) {
	build := func() *Engine {
		eng := newEng(t, DefaultOptions())
		if err := eng.Execute(op.NewCreate("a", []byte("base"))); err != nil {
			t.Fatal(err)
		}
		if err := eng.Execute(op.NewPhysioWrite("a", op.FuncAppend, []byte("+redo"))); err != nil {
			t.Fatal(err)
		}
		if err := eng.Log().Force(); err != nil {
			t.Fatal(err)
		}
		eng.Crash()
		return eng
	}

	full := build()
	if _, err := full.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := full.Execute(op.NewPhysioWrite("a", op.FuncAppend, []byte("+new"))); err != nil {
		t.Fatal(err)
	}

	demand := build()
	od, err := demand.RecoverOnDemand()
	if err != nil {
		t.Fatal(err)
	}
	if err := demand.Execute(op.NewPhysioWrite("a", op.FuncAppend, []byte("+new"))); err != nil {
		t.Fatal(err)
	}
	if _, err := od.Wait(); err != nil {
		t.Fatal(err)
	}
	fv, err := full.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	dv, err := demand.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fv, dv) || !bytes.Equal(fv, []byte("base+redo+new")) {
		t.Errorf("write gating: full=%q demand=%q", fv, dv)
	}
}

// TestOnDemandObjectsEnumeration: enumeration during the drain sees redo
// creations and deletions (RequireRange gating), and global operations
// (FlushAll) drain fully first.
func TestOnDemandObjectsEnumeration(t *testing.T) {
	eng := newEng(t, DefaultOptions())
	for i := 0; i < 6; i++ {
		x := op.ObjectID(fmt.Sprintf("e%d", i))
		if err := eng.Execute(op.NewCreate(x, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Execute(op.NewDelete("e2")); err != nil {
		t.Fatal(err)
	}
	if err := eng.Execute(op.NewCreate("e9", []byte("new"))); err != nil {
		t.Fatal(err)
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	if _, err := eng.RecoverOnDemand(); err != nil {
		t.Fatal(err)
	}
	ids, err := eng.Objects("e", "f")
	if err != nil {
		t.Fatal(err)
	}
	want := "[e0 e1 e3 e4 e5 e9]"
	if got := fmt.Sprint(ids); got != want {
		t.Errorf("Objects = %v, want %v", got, want)
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Store().Read("e2"); err == nil {
		t.Error("deleted object e2 still in stable store after drain+flush")
	}
}
