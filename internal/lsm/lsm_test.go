package lsm

import (
	"fmt"
	"math/rand"
	"testing"

	"logicallog/internal/core"
	"logicallog/internal/op"
)

func newLSM(t *testing.T, opt Options) (*LSM, *core.Engine) {
	t.Helper()
	eng, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	Register(eng.Registry())
	l, err := New(eng, "t", opt)
	if err != nil {
		t.Fatal(err)
	}
	return l, eng
}

func key(i int) []byte { return []byte(fmt.Sprintf("key%06d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("val%06d", i)) }

func TestTableEncodeDecodeRoundTrip(t *testing.T) {
	es := []entry{
		{key: []byte("a"), tag: tagValue, val: []byte("1")},
		{key: []byte("b"), tag: tagTombstone, val: nil},
	}
	got, err := decodeTable(encodeTable(es))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0].val) != "1" || got[1].tag != tagTombstone {
		t.Errorf("round trip: %+v", got)
	}
	if _, err := decodeTable([]byte("junk")); err == nil {
		t.Error("junk table decoded")
	}
	man := &manifest{next: 7, tables: []op.ObjectID{"lsm/t/s00000003", "lsm/t/s00000001"}}
	gotMan, err := decodeManifest(encodeManifest(man))
	if err != nil {
		t.Fatal(err)
	}
	if gotMan.next != 7 || len(gotMan.tables) != 2 || gotMan.tables[1] != "lsm/t/s00000001" {
		t.Errorf("manifest round trip: %+v", gotMan)
	}
	if _, err := decodeManifest([]byte{1, 2}); err == nil {
		t.Error("junk manifest decoded")
	}
}

func TestPutGetDelete(t *testing.T) {
	l, _ := newLSM(t, Options{}) // manual maintenance
	if err := l.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Put([]byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	v, found, err := l.Get([]byte("a"))
	if err != nil || !found || string(v) != "1" {
		t.Errorf("Get(a) = %q, %v, %v", v, found, err)
	}
	if _, found, _ := l.Get([]byte("zz")); found {
		t.Error("found a missing key")
	}
	// Replacement.
	if err := l.Put([]byte("a"), []byte("1'")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = l.Get([]byte("a"))
	if string(v) != "1'" {
		t.Errorf("replaced value = %q", v)
	}
	// Delete masks, double delete reports absent.
	found, err = l.Delete([]byte("a"))
	if err != nil || !found {
		t.Fatalf("Delete = %v, %v", found, err)
	}
	if _, found, _ := l.Get([]byte("a")); found {
		t.Error("deleted key still visible")
	}
	if found, _ := l.Delete([]byte("a")); found {
		t.Error("double delete reported found")
	}
	if err := l.Put(nil, []byte("v")); err == nil {
		t.Error("empty key accepted")
	}
}

func TestFlushMovesMemtableToSSTable(t *testing.T) {
	l, _ := newLSM(t, Options{})
	for i := 0; i < 10; i++ {
		if err := l.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := l.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MemEntries != 0 || st.Tables != 1 || st.TableEntries != 10 {
		t.Errorf("post-flush stats: %+v", st)
	}
	// Values remain visible from the table.
	for i := 0; i < 10; i++ {
		v, found, err := l.Get(key(i))
		if err != nil || !found || string(v) != string(val(i)) {
			t.Fatalf("Get(%d) after flush = %q, %v, %v", i, v, found, err)
		}
	}
	// Idempotent on empty memtable.
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if st, _ := l.Stats(); st.Tables != 1 {
		t.Errorf("empty flush grew the table set: %+v", st)
	}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactMergesAndDropsTombstones(t *testing.T) {
	l, eng := newLSM(t, Options{})
	// Three generations: insert, overwrite some, delete some — flush each.
	for i := 0; i < 12; i++ {
		if err := l.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := l.Put(key(i), val(i+100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 6; i < 9; i++ {
		if _, err := l.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	st, _ := l.Stats()
	if st.Tables != 3 || st.Tombstones != 3 {
		t.Fatalf("pre-compact stats: %+v", st)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	st, _ = l.Stats()
	if st.Tables != 1 {
		t.Errorf("post-compact tables = %d", st.Tables)
	}
	if st.Tombstones != 0 {
		t.Errorf("full compaction kept %d tombstones", st.Tombstones)
	}
	if st.TableEntries != 9 {
		t.Errorf("post-compact entries = %d, want 9", st.TableEntries)
	}
	// Newest values won; deleted keys stay gone; old tables are deleted.
	for i := 0; i < 6; i++ {
		v, found, _ := l.Get(key(i))
		if !found || string(v) != string(val(i+100)) {
			t.Errorf("Get(%d) = %q, %v", i, v, found)
		}
	}
	for i := 6; i < 9; i++ {
		if _, found, _ := l.Get(key(i)); found {
			t.Errorf("compaction resurrected key %d", i)
		}
	}
	if _, err := eng.Get(op.ObjectID("lsm/t/s00000000")); err == nil {
		t.Error("compacted input table still exists")
	}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestLogicalFlushLogsNoTableContents(t *testing.T) {
	l, eng := newLSM(t, Options{})
	bigVal := make([]byte, 2048)
	for i := 0; i < 8; i++ {
		if err := l.Put(key(i), bigVal); err != nil {
			t.Fatal(err)
		}
	}
	eng.ResetStats()
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil { // 1 table: no-op, still cheap
		t.Fatal(err)
	}
	st := eng.Log().Stats()
	// The flush moved ~16 KiB of entries into the new table but logged only
	// three object ids.
	if st.ValueBytes > 512 {
		t.Errorf("flush logged %d value bytes; logical flush must not log table contents", st.ValueBytes)
	}
	if st.OpPayloadBytes[op.KindLogical] > 256 {
		t.Errorf("flush payload = %d bytes", st.OpPayloadBytes[op.KindLogical])
	}
}

func TestPhysiologicalBaselineLogsTableContents(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Physiological = true
	eng, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	Register(eng.Registry())
	l, err := New(eng, "t", Options{})
	if err != nil {
		t.Fatal(err)
	}
	bigVal := make([]byte, 2048)
	for i := 0; i < 8; i++ {
		if err := l.Put(key(i), bigVal); err != nil {
			t.Fatal(err)
		}
	}
	eng.ResetStats()
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Log().Stats().ValueBytes; got < 16*1024 {
		t.Errorf("physiological flush logged only %d value bytes", got)
	}
}

func TestAutoMaintenance(t *testing.T) {
	l, _ := newLSM(t, Options{FlushThreshold: 4, Fanout: 2})
	for i := 0; i < 40; i++ {
		if err := l.Put(key(i%13), val(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		if err := l.Check(); err != nil {
			t.Fatalf("after put %d: %v", i, err)
		}
	}
	st, err := l.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MemEntries >= 4 {
		t.Errorf("memtable never flushed: %+v", st)
	}
	if st.Tables > 3 {
		t.Errorf("table set never compacted: %+v", st)
	}
	// Every key's newest value survives the churn.
	for k := 0; k < 13; k++ {
		want := -1
		for i := 0; i < 40; i++ {
			if i%13 == k {
				want = i
			}
		}
		v, found, err := l.Get(key(k))
		if err != nil || !found || string(v) != string(val(want)) {
			t.Errorf("Get(%d) = %q, %v, %v; want %q", k, v, found, err, val(want))
		}
	}
}

func TestRangeMergesSources(t *testing.T) {
	l, _ := newLSM(t, Options{})
	// Keys spread across two tables and the memtable, with overwrites and a
	// tombstone in newer layers.
	for i := 0; i < 10; i += 2 {
		l.Put(key(i), val(i))
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i += 2 {
		l.Put(key(i), val(i))
	}
	l.Put(key(2), val(102)) // overwrite in second table
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	l.Delete(key(4)) // tombstone in memtable
	l.Put(key(0), val(100))

	var got []string
	if err := l.Scan(func(k, v []byte) bool {
		got = append(got, string(k)+"="+string(v))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{
		string(key(0)) + "=" + string(val(100)),
		string(key(1)) + "=" + string(val(1)),
		string(key(2)) + "=" + string(val(102)),
		string(key(3)) + "=" + string(val(3)),
		// key 4 deleted
		string(key(5)) + "=" + string(val(5)),
		string(key(6)) + "=" + string(val(6)),
		string(key(7)) + "=" + string(val(7)),
		string(key(8)) + "=" + string(val(8)),
		string(key(9)) + "=" + string(val(9)),
	}
	if len(got) != len(want) {
		t.Fatalf("scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scan[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Bounded range with early stop.
	var bounded []string
	if err := l.Range(key(3), key(8), func(k, v []byte) bool {
		bounded = append(bounded, string(k))
		return len(bounded) < 3
	}); err != nil {
		t.Fatal(err)
	}
	if len(bounded) != 3 || bounded[0] != string(key(3)) || bounded[2] != string(key(6)) {
		t.Errorf("bounded range = %v", bounded)
	}
}

func TestLSMSurvivesCrash(t *testing.T) {
	l, eng := newLSM(t, Options{FlushThreshold: 6, Fanout: 3})
	const n = 150
	live := make(map[string]string)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		k := rng.Intn(40)
		if rng.Intn(5) == 0 {
			if _, err := l.Delete(key(k)); err != nil {
				t.Fatal(err)
			}
			delete(live, string(key(k)))
		} else {
			if err := l.Put(key(k), val(i)); err != nil {
				t.Fatal(err)
			}
			live[string(key(k))] = string(val(i))
		}
		if i%23 == 0 {
			if err := eng.InstallOne(); err != nil {
				t.Fatal(err)
			}
		}
		if i%31 == 0 {
			if err := eng.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	if _, err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(eng, "t", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Check(); err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]string)
	if err := l2.Scan(func(k, v []byte) bool {
		seen[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(live) {
		t.Errorf("recovered %d keys, want %d", len(seen), len(live))
	}
	for k, v := range live {
		if seen[k] != v {
			t.Errorf("recovered %q = %q, want %q", k, seen[k], v)
		}
	}
}

func TestLSMCrashAtEveryBatch(t *testing.T) {
	// Crash after each batch; recovery must always yield a structurally
	// valid tree containing exactly the durable writes — flushes and
	// compactions included.
	for batches := 1; batches <= 8; batches++ {
		l, eng := newLSM(t, Options{FlushThreshold: 5, Fanout: 2})
		written := 0
		for b := 0; b < batches; b++ {
			for i := 0; i < 7; i++ {
				if err := l.Put(key(written), val(written)); err != nil {
					t.Fatal(err)
				}
				written++
			}
			if b%2 == 0 {
				if err := eng.InstallOne(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := eng.Log().Force(); err != nil {
			t.Fatal(err)
		}
		eng.Crash()
		if _, err := eng.Recover(); err != nil {
			t.Fatalf("batches=%d: %v", batches, err)
		}
		l2, err := Open(eng, "t", Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := l2.Check(); err != nil {
			t.Fatalf("batches=%d: %v", batches, err)
		}
		for i := 0; i < written; i++ {
			v, found, err := l2.Get(key(i))
			if err != nil || !found || string(v) != string(val(i)) {
				t.Fatalf("batches=%d: Get(%d) = %q, %v, %v", batches, i, v, found, err)
			}
		}
	}
}

func TestOpenMissingTree(t *testing.T) {
	eng, _ := core.New(core.DefaultOptions())
	Register(eng.Registry())
	if _, err := Open(eng, "ghost", Options{}); err == nil {
		t.Error("Open of missing tree succeeded")
	}
}

func TestCompactRejectsNonSuffixInputs(t *testing.T) {
	// Directly exercise the transform's guardrails: inputs that are not the
	// manifest's oldest suffix, or a wrong output id, must fail loudly.
	man := &manifest{next: 3, tables: []op.ObjectID{"lsm/t/s00000002", "lsm/t/s00000001", "lsm/t/s00000000"}}
	reads := map[op.ObjectID][]byte{
		"lsm/t/manifest":  encodeManifest(man),
		"lsm/t/s00000002": encodeTable(nil),
		"lsm/t/s00000001": encodeTable(nil),
		"lsm/t/s00000000": encodeTable(nil),
	}
	// Newest two tables are not an oldest suffix.
	params := op.EncodeParams([]byte("lsm/t/manifest"), []byte("lsm/t/s00000003"),
		[]byte("lsm/t/s00000002"), []byte("lsm/t/s00000001"))
	if _, err := fnCompact(params, reads); err == nil {
		t.Error("non-suffix compaction accepted")
	}
	// Wrong output id.
	params = op.EncodeParams([]byte("lsm/t/manifest"), []byte("lsm/t/s00000009"),
		[]byte("lsm/t/s00000001"), []byte("lsm/t/s00000000"))
	if _, err := fnCompact(params, reads); err == nil {
		t.Error("wrong output id accepted")
	}
	// Correct oldest suffix works and drops nothing (keep > 0 keeps tombstones).
	params = op.EncodeParams([]byte("lsm/t/manifest"), []byte("lsm/t/s00000003"),
		[]byte("lsm/t/s00000001"), []byte("lsm/t/s00000000"))
	writes, err := fnCompact(params, reads)
	if err != nil {
		t.Fatal(err)
	}
	gotMan, err := decodeManifest(writes["lsm/t/manifest"])
	if err != nil {
		t.Fatal(err)
	}
	if len(gotMan.tables) != 2 || gotMan.tables[0] != "lsm/t/s00000002" || gotMan.tables[1] != "lsm/t/s00000003" {
		t.Errorf("post-compact manifest: %+v", gotMan)
	}
	if gotMan.next != 4 {
		t.Errorf("post-compact next = %d", gotMan.next)
	}
}
