package lsm

import (
	"bytes"
	"fmt"
	"strings"

	"logicallog/internal/core"
	"logicallog/internal/op"
)

// Options tunes the driver's automatic maintenance.
type Options struct {
	// FlushThreshold flushes the memtable once it holds this many entries
	// (0 disables automatic flushes; call Flush explicitly).
	FlushThreshold int
	// Fanout compacts the whole table set down to one SSTable once more
	// than this many tables exist (0 disables automatic compaction).
	Fanout int
}

// DefaultOptions returns maintenance settings suited to tests and demos.
func DefaultOptions() Options {
	return Options{FlushThreshold: 8, Fanout: 4}
}

// LSM is a recoverable log-structured merge tree over an engine.
type LSM struct {
	eng  *core.Engine
	name string
	opt  Options
}

// New creates an LSM tree with the given name.
func New(eng *core.Engine, name string, opt Options) (*LSM, error) {
	l := &LSM{eng: eng, name: name, opt: opt}
	man := &manifest{next: 0}
	if err := eng.Execute(op.NewCreate(l.manifestID(), encodeManifest(man))); err != nil {
		return nil, err
	}
	if err := eng.Execute(op.NewCreate(l.memID(), encodeTable(nil))); err != nil {
		return nil, err
	}
	return l, nil
}

// Open attaches to an existing tree (e.g. after recovery).
func Open(eng *core.Engine, name string, opt Options) (*LSM, error) {
	l := &LSM{eng: eng, name: name, opt: opt}
	if _, err := l.manifest(); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *LSM) manifestID() op.ObjectID { return op.ObjectID("lsm/" + l.name + "/manifest") }
func (l *LSM) memID() op.ObjectID      { return op.ObjectID("lsm/" + l.name + "/mem") }

func (l *LSM) manifest() (*manifest, error) {
	raw, err := l.eng.Get(l.manifestID())
	if err != nil {
		return nil, fmt.Errorf("lsm: tree %q: %w", l.name, err)
	}
	return decodeManifest(raw)
}

func (l *LSM) readTable(id op.ObjectID) ([]entry, error) {
	raw, err := l.eng.Get(id)
	if err != nil {
		return nil, err
	}
	return decodeTable(raw)
}

// memPut records one upsert (value or tombstone) and runs maintenance.
func (l *LSM) memPut(key []byte, tag byte, val []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("lsm: empty key")
	}
	params := op.EncodeParams(key, []byte{tag}, val)
	if err := l.eng.Execute(op.NewPhysioWrite(l.memID(), FuncMemPut, params)); err != nil {
		return err
	}
	return l.maintain()
}

// Put adds or replaces key -> val.
func (l *LSM) Put(key, val []byte) error { return l.memPut(key, tagValue, val) }

// Delete removes key; it reports whether the key was visible beforehand.
// The delete itself is a tombstone upsert — the key stays masked until a
// full compaction drops the tombstone.
func (l *LSM) Delete(key []byte) (bool, error) {
	_, found, err := l.Get(key)
	if err != nil {
		return false, err
	}
	if !found {
		return false, nil
	}
	return true, l.memPut(key, tagTombstone, nil)
}

// Get returns the newest value for key, consulting the memtable and then
// each SSTable newest-first.
func (l *LSM) Get(key []byte) ([]byte, bool, error) {
	mem, err := l.readTable(l.memID())
	if err != nil {
		return nil, false, err
	}
	if i, found := findEntry(mem, key); found {
		if mem[i].tag == tagTombstone {
			return nil, false, nil
		}
		return mem[i].val, true, nil
	}
	man, err := l.manifest()
	if err != nil {
		return nil, false, err
	}
	for _, id := range man.tables {
		es, err := l.readTable(id)
		if err != nil {
			return nil, false, err
		}
		if i, found := findEntry(es, key); found {
			if es[i].tag == tagTombstone {
				return nil, false, nil
			}
			return es[i].val, true, nil
		}
	}
	return nil, false, nil
}

// Range visits live key/value pairs with lo <= key < hi in order, merging
// the memtable and all SSTables with newest-entry precedence and skipping
// tombstones.  A nil lo starts at the first key; a nil hi runs to the end.
// fn returns false to stop early.
func (l *LSM) Range(lo, hi []byte, fn func(key, val []byte) bool) error {
	man, err := l.manifest()
	if err != nil {
		return err
	}
	sources := make([][]entry, 0, 1+len(man.tables))
	mem, err := l.readTable(l.memID())
	if err != nil {
		return err
	}
	sources = append(sources, mem) // newest
	for _, id := range man.tables {
		es, err := l.readTable(id)
		if err != nil {
			return err
		}
		sources = append(sources, es)
	}
	// k-way merge over sorted runs; the lowest-indexed (newest) source wins
	// ties, and losers for the same key advance without emitting.
	idx := make([]int, len(sources))
	for s, es := range sources {
		if lo != nil {
			idx[s], _ = findEntry(es, lo)
		}
	}
	for {
		best := -1
		for s, es := range sources {
			if idx[s] >= len(es) {
				continue
			}
			if best == -1 || bytes.Compare(es[idx[s]].key, sources[best][idx[best]].key) < 0 {
				best = s
			}
		}
		if best == -1 {
			return nil
		}
		e := sources[best][idx[best]]
		if hi != nil && bytes.Compare(e.key, hi) >= 0 {
			return nil
		}
		for s, es := range sources {
			if idx[s] < len(es) && bytes.Equal(es[idx[s]].key, e.key) {
				idx[s]++
			}
		}
		if e.tag == tagTombstone {
			continue
		}
		if !fn(e.key, e.val) {
			return nil
		}
	}
}

// Scan visits all live key/value pairs in order; fn returns false to stop.
func (l *LSM) Scan(fn func(key, val []byte) bool) error {
	return l.Range(nil, nil, fn)
}

// Flush turns the memtable into a new SSTable via the logical flush
// operation; a no-op when the memtable is empty.
func (l *LSM) Flush() error {
	mem, err := l.readTable(l.memID())
	if err != nil {
		return err
	}
	if len(mem) == 0 {
		return nil
	}
	man, err := l.manifest()
	if err != nil {
		return err
	}
	sstID := tableID(l.manifestID(), man.next)
	params := op.EncodeParams([]byte(l.manifestID()), []byte(l.memID()), []byte(sstID))
	flush := op.NewLogical(FuncFlush, params,
		[]op.ObjectID{l.manifestID(), l.memID()},
		[]op.ObjectID{l.manifestID(), l.memID(), sstID})
	return l.eng.Execute(flush)
}

// Compact merges every SSTable into one via the logical compact operation
// (whose read set spans the manifest and all input tables), then deletes
// the superseded inputs; a no-op with fewer than two tables.
func (l *LSM) Compact() error {
	man, err := l.manifest()
	if err != nil {
		return err
	}
	if len(man.tables) < 2 {
		return nil
	}
	inputs := append([]op.ObjectID(nil), man.tables...)
	outID := tableID(l.manifestID(), man.next)
	fields := make([][]byte, 0, 2+len(inputs))
	fields = append(fields, []byte(l.manifestID()), []byte(outID))
	for _, id := range inputs {
		fields = append(fields, []byte(id))
	}
	readSet := append([]op.ObjectID{l.manifestID()}, inputs...)
	compact := op.NewLogical(FuncCompact, op.EncodeParams(fields...),
		readSet,
		[]op.ObjectID{l.manifestID(), outID})
	if err := l.eng.Execute(compact); err != nil {
		return err
	}
	return l.eng.Execute(op.NewDelete(inputs...))
}

// maintain applies the automatic flush and compaction thresholds.
func (l *LSM) maintain() error {
	if l.opt.FlushThreshold > 0 {
		mem, err := l.readTable(l.memID())
		if err != nil {
			return err
		}
		if len(mem) >= l.opt.FlushThreshold {
			if err := l.Flush(); err != nil {
				return err
			}
		}
	}
	if l.opt.Fanout > 0 {
		man, err := l.manifest()
		if err != nil {
			return err
		}
		if len(man.tables) > l.opt.Fanout {
			return l.Compact()
		}
	}
	return nil
}

// Stats reports the tree shape.
type Stats struct {
	MemEntries   int
	Tables       int
	TableEntries int
	Tombstones   int
}

// Stats walks the manifest and returns shape statistics.
func (l *LSM) Stats() (Stats, error) {
	var st Stats
	mem, err := l.readTable(l.memID())
	if err != nil {
		return st, err
	}
	st.MemEntries = len(mem)
	for _, e := range mem {
		if e.tag == tagTombstone {
			st.Tombstones++
		}
	}
	man, err := l.manifest()
	if err != nil {
		return st, err
	}
	st.Tables = len(man.tables)
	for _, id := range man.tables {
		es, err := l.readTable(id)
		if err != nil {
			return st, err
		}
		st.TableEntries += len(es)
		for _, e := range es {
			if e.tag == tagTombstone {
				st.Tombstones++
			}
		}
	}
	return st, nil
}

// Check verifies the structural invariants: every manifest table decodes
// with strictly increasing keys, table ids carry the tree's prefix with
// numbers below the allocation counter, and the memtable is sorted.
func (l *LSM) Check() error {
	man, err := l.manifest()
	if err != nil {
		return err
	}
	prefix := "lsm/" + l.name + "/s"
	seen := make(map[op.ObjectID]bool, len(man.tables))
	for _, id := range man.tables {
		if !strings.HasPrefix(string(id), prefix) {
			return fmt.Errorf("lsm: manifest lists foreign table %q", id)
		}
		if id >= tableID(l.manifestID(), man.next) {
			return fmt.Errorf("lsm: table %q at or above allocation counter %d", id, man.next)
		}
		if seen[id] {
			return fmt.Errorf("lsm: table %q listed twice", id)
		}
		seen[id] = true
		es, err := l.readTable(id)
		if err != nil {
			return fmt.Errorf("lsm: table %q: %w", id, err)
		}
		if err := checkSorted(es); err != nil {
			return fmt.Errorf("lsm: table %q: %w", id, err)
		}
	}
	mem, err := l.readTable(l.memID())
	if err != nil {
		return err
	}
	if err := checkSorted(mem); err != nil {
		return fmt.Errorf("lsm: memtable: %w", err)
	}
	return nil
}

func checkSorted(es []entry) error {
	for i := 1; i < len(es); i++ {
		if bytes.Compare(es[i-1].key, es[i].key) >= 0 {
			return fmt.Errorf("keys out of order at %d", i)
		}
	}
	return nil
}
