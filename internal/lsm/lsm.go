// Package lsm implements a recoverable log-structured merge tree, the
// second database-domain of the paper's "new domains" program: the memtable,
// the manifest, and every SSTable are recoverable engine objects, point
// writes are physiological single-object operations, and the two structural
// operations — memtable Flush and SSTable Compact — are registered *logical*
// operations whose read sets span the objects they derive from.
//
// A flush reads {manifest, memtable} and writes {manifest, memtable, new
// SSTable}: the new table's contents come entirely from the memtable, so the
// log record carries only object ids.  A compaction reads {manifest, input
// SSTables...} and writes {manifest, output SSTable}: the merged table is a
// pure function of its inputs, exactly the multi-object logical-operation
// shape (an operation that *reads* other recoverable objects) the paper's
// redo machinery is built to replay.  The driver deletes the superseded
// input tables immediately after the compaction commits, mirroring how a
// real LSM returns files to the allocator; recovery handles replaying a
// compaction whose inputs are deleted later in the log via the same
// void/skip analysis that covers every other read-then-delete pattern.
//
// The same code runs unchanged on an engine configured with
// core.Options.Physiological, which lowers flush and compaction to physical
// writes of the produced tables — the comparison baseline in which the log
// carries the full merged contents.
package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"logicallog/internal/op"
)

// Function ids registered by Register.
const (
	// FuncMemPut is the physiological memtable upsert: params (key, tag,
	// val), reads and writes the memtable only.
	FuncMemPut op.FuncID = "lsm.memput"
	// FuncFlush is the logical memtable flush: params (manifest, mem,
	// newSST); reads {manifest, mem}, writes {manifest, mem, newSST}.
	FuncFlush op.FuncID = "lsm.flush"
	// FuncCompact is the logical compaction: params (manifest, out,
	// inputs...); reads {manifest, inputs...}, writes {manifest, out}.
	FuncCompact op.FuncID = "lsm.compact"
)

// Entry tags.
const (
	tagValue     byte = 0
	tagTombstone byte = 1
)

// Register installs the LSM transformations on a registry.
func Register(reg *op.Registry) {
	reg.Register(FuncMemPut, fnMemPut)
	reg.Register(FuncFlush, fnFlush)
	reg.Register(FuncCompact, fnCompact)
}

// entry is one key in a memtable or SSTable.
type entry struct {
	key []byte
	tag byte // tagValue or tagTombstone
	val []byte
}

// encodeTable serializes a sorted entry list (memtable or SSTable value).
func encodeTable(es []entry) []byte {
	fields := make([][]byte, 0, 3*len(es))
	for _, e := range es {
		fields = append(fields, e.key, []byte{e.tag}, e.val)
	}
	return op.EncodeParams(fields...)
}

// decodeTable parses a memtable or SSTable value.
func decodeTable(v []byte) ([]entry, error) {
	fields, err := op.DecodeParams(v)
	if err != nil {
		return nil, fmt.Errorf("lsm: corrupt table: %w", err)
	}
	if len(fields)%3 != 0 {
		return nil, fmt.Errorf("lsm: table with %d fields", len(fields))
	}
	es := make([]entry, 0, len(fields)/3)
	for i := 0; i < len(fields); i += 3 {
		if len(fields[i+1]) != 1 {
			return nil, fmt.Errorf("lsm: bad entry tag")
		}
		es = append(es, entry{key: fields[i], tag: fields[i+1][0], val: fields[i+2]})
	}
	return es, nil
}

// manifest tracks the table set: ids newest-first, plus the allocation
// counter for the next table number.
type manifest struct {
	next   uint64
	tables []op.ObjectID // newest first
}

func encodeManifest(m *manifest) []byte {
	var next [8]byte
	binary.BigEndian.PutUint64(next[:], m.next)
	fields := make([][]byte, 0, 1+len(m.tables))
	fields = append(fields, next[:])
	for _, id := range m.tables {
		fields = append(fields, []byte(id))
	}
	return op.EncodeParams(fields...)
}

func decodeManifest(v []byte) (*manifest, error) {
	fields, err := op.DecodeParams(v)
	if err != nil || len(fields) == 0 || len(fields[0]) != 8 {
		return nil, fmt.Errorf("lsm: corrupt manifest: %v", err)
	}
	m := &manifest{next: binary.BigEndian.Uint64(fields[0])}
	for _, f := range fields[1:] {
		m.tables = append(m.tables, op.ObjectID(f))
	}
	return m, nil
}

// findEntry returns the index of key in the sorted entries and whether it is
// present; if absent, the index is the insertion point.
func findEntry(es []entry, key []byte) (int, bool) {
	lo, hi := 0, len(es)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(es[mid].key, key) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true
		default:
			hi = mid
		}
	}
	return lo, false
}

// --- registered transformations --------------------------------------------

// fnMemPut params: EncodeParams(key, tag, val).  Upserts into the sorted
// memtable; a tombstone tag records a delete that masks older tables.
func fnMemPut(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	fields, err := op.DecodeParams(params)
	if err != nil || len(fields) != 3 || len(fields[1]) != 1 {
		return nil, fmt.Errorf("lsm: memput wants (key, tag, val)")
	}
	if len(reads) != 1 {
		return nil, fmt.Errorf("lsm: memput expected 1 read, got %d", len(reads))
	}
	var id op.ObjectID
	var raw []byte
	for i, v := range reads {
		id, raw = i, v
	}
	es, err := decodeTable(raw)
	if err != nil {
		return nil, err
	}
	e := entry{key: fields[0], tag: fields[1][0], val: fields[2]}
	i, found := findEntry(es, e.key)
	if found {
		es[i] = e
	} else {
		es = append(es, entry{})
		copy(es[i+1:], es[i:])
		es[i] = e
	}
	return map[op.ObjectID][]byte{id: encodeTable(es)}, nil
}

// fnFlush params: EncodeParams(manifestID, memID, newSSTID).  The new
// table's id must match the manifest's allocation counter, so replaying the
// flush against the same pre-state re-derives the same object — nothing but
// ids on the log.
func fnFlush(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	fields, err := op.DecodeParams(params)
	if err != nil || len(fields) != 3 {
		return nil, fmt.Errorf("lsm: flush wants (manifest, mem, newSST)")
	}
	manID, memID, sstID := op.ObjectID(fields[0]), op.ObjectID(fields[1]), op.ObjectID(fields[2])
	manRaw, ok := reads[manID]
	if !ok {
		return nil, fmt.Errorf("lsm: flush missing manifest %q", manID)
	}
	memRaw, ok := reads[memID]
	if !ok {
		return nil, fmt.Errorf("lsm: flush missing memtable %q", memID)
	}
	man, err := decodeManifest(manRaw)
	if err != nil {
		return nil, err
	}
	es, err := decodeTable(memRaw)
	if err != nil {
		return nil, err
	}
	if len(es) == 0 {
		return nil, fmt.Errorf("lsm: flush of empty memtable")
	}
	if want := tableID(manID, man.next); want != sstID {
		return nil, fmt.Errorf("lsm: flush table id %q, manifest allocates %q", sstID, want)
	}
	man.next++
	man.tables = append([]op.ObjectID{sstID}, man.tables...)
	return map[op.ObjectID][]byte{
		manID: encodeManifest(man),
		memID: encodeTable(nil),
		sstID: memRaw,
	}, nil
}

// fnCompact params: EncodeParams(manifestID, outID, inputIDs...) with the
// inputs listed newest-first.  The inputs must be a contiguous oldest suffix
// of the manifest's table list; the merged output keeps the newest entry per
// key and, because the suffix reaches the oldest table, drops tombstones for
// good.  The output id must match the manifest's allocation counter.
func fnCompact(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	fields, err := op.DecodeParams(params)
	if err != nil || len(fields) < 4 {
		return nil, fmt.Errorf("lsm: compact wants (manifest, out, inputs...)")
	}
	manID, outID := op.ObjectID(fields[0]), op.ObjectID(fields[1])
	manRaw, ok := reads[manID]
	if !ok {
		return nil, fmt.Errorf("lsm: compact missing manifest %q", manID)
	}
	man, err := decodeManifest(manRaw)
	if err != nil {
		return nil, err
	}
	inputs := make([]op.ObjectID, 0, len(fields)-2)
	for _, f := range fields[2:] {
		inputs = append(inputs, op.ObjectID(f))
	}
	if len(inputs) > len(man.tables) {
		return nil, fmt.Errorf("lsm: compacting %d of %d tables", len(inputs), len(man.tables))
	}
	keep := len(man.tables) - len(inputs)
	for i, id := range inputs {
		if man.tables[keep+i] != id {
			return nil, fmt.Errorf("lsm: compact inputs are not the manifest's oldest tables")
		}
	}
	if want := tableID(manID, man.next); want != outID {
		return nil, fmt.Errorf("lsm: compact output id %q, manifest allocates %q", outID, want)
	}
	// Merge newest-precedence: walk inputs newest-first, first sighting of a
	// key wins.  The map is membership-only; ordering comes from sorting the
	// collected keys, keeping the transformation replay-deterministic.
	merged := make(map[string]entry, 64)
	var keys []string
	for _, id := range inputs {
		raw, ok := reads[id]
		if !ok {
			return nil, fmt.Errorf("lsm: compact missing input %q", id)
		}
		es, err := decodeTable(raw)
		if err != nil {
			return nil, err
		}
		for _, e := range es {
			if _, seen := merged[string(e.key)]; !seen {
				merged[string(e.key)] = e
				keys = append(keys, string(e.key))
			}
		}
	}
	sort.Strings(keys)
	out := make([]entry, 0, len(keys))
	dropTombstones := keep == 0 // suffix reaches the oldest table
	for _, k := range keys {
		e := merged[k]
		if e.tag == tagTombstone && dropTombstones {
			continue
		}
		out = append(out, e)
	}
	man.next++
	man.tables = append(man.tables[:keep:keep], outID)
	return map[op.ObjectID][]byte{
		manID: encodeManifest(man),
		outID: encodeTable(out),
	}, nil
}

// tableID derives the SSTable object id for table number n of the tree whose
// manifest lives at manID ("lsm/<name>/manifest" -> "lsm/<name>/s%08d").
func tableID(manID op.ObjectID, n uint64) op.ObjectID {
	base := string(manID)
	const suffix = "/manifest"
	if len(base) > len(suffix) && base[len(base)-len(suffix):] == suffix {
		base = base[:len(base)-len(suffix)]
	}
	return op.ObjectID(fmt.Sprintf("%s/s%08d", base, n))
}
