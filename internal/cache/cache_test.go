package cache

import (
	"errors"
	"math/rand"
	"testing"

	"logicallog/internal/op"
	"logicallog/internal/stable"
	"logicallog/internal/wal"
	"logicallog/internal/writegraph"
)

func newTestManager(t *testing.T, cfg Config) (*Manager, *wal.Log, *stable.Store) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = op.NewRegistry()
	}
	log, err := wal.New(wal.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	store := stable.NewStore()
	m, err := NewManager(cfg, log, store)
	if err != nil {
		t.Fatal(err)
	}
	return m, log, store
}

func rwIdentityCfg() Config {
	return Config{Policy: writegraph.PolicyRW, Strategy: StrategyIdentityWrite, LogInstalls: true}
}

func mustExec(t *testing.T, m *Manager, o *op.Operation) {
	t.Helper()
	if err := m.Execute(o); err != nil {
		t.Fatalf("Execute(%s): %v", o, err)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyIdentityWrite.String() != "identity-write" || StrategyShadow.String() != "shadow" ||
		StrategyFlushTxn.String() != "flush-txn" || FlushStrategy(9).String() == "" {
		t.Error("FlushStrategy.String wrong")
	}
}

func TestNewManagerRequiresRegistry(t *testing.T) {
	log, _ := wal.New(wal.NewMemDevice())
	if _, err := NewManager(Config{}, log, stable.NewStore()); err == nil {
		t.Error("NewManager must require a registry")
	}
}

func TestExecuteGetInstallEvictRoundTrip(t *testing.T) {
	m, log, store := newTestManager(t, rwIdentityCfg())
	mustExec(t, m, op.NewCreate("X", []byte("v0")))
	mustExec(t, m, op.NewPhysioWrite("X", op.FuncAppend, []byte("+1")))

	v, err := m.Get("X")
	if err != nil || string(v) != "v0+1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if m.DirtyCount() != 1 {
		t.Errorf("DirtyCount = %d", m.DirtyCount())
	}
	if rsi, _ := m.RSI("X"); rsi != 1 {
		t.Errorf("rSI = %d, want 1 (first uninstalled op)", rsi)
	}

	// Install everything.
	if err := m.PurgeAll(); err != nil {
		t.Fatal(err)
	}
	if m.DirtyCount() != 0 {
		t.Error("dirty after PurgeAll")
	}
	sv, err := store.Read("X")
	if err != nil || string(sv.Val) != "v0+1" || sv.VSI != 2 {
		t.Errorf("stable X = %+v, %v", sv, err)
	}
	// WAL protocol: both op records durable.
	if log.StableLSN() < 2 {
		t.Errorf("StableLSN = %d, WAL violated", log.StableLSN())
	}

	// Evict and fault back in.
	if err := m.EvictClean("X"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.VSI("X"); ok {
		t.Error("entry survived eviction")
	}
	v, err = m.Get("X")
	if err != nil || string(v) != "v0+1" {
		t.Errorf("post-evict Get = %q, %v", v, err)
	}
	if vsi, _ := m.VSI("X"); vsi != 2 {
		t.Errorf("faulted vSI = %d", vsi)
	}
}

func TestEvictDirtyRejected(t *testing.T) {
	m, _, _ := newTestManager(t, rwIdentityCfg())
	mustExec(t, m, op.NewCreate("X", []byte("v")))
	if err := m.EvictClean("X"); err == nil {
		t.Error("evicting a dirty object must fail")
	}
	if err := m.EvictClean("missing"); err != nil {
		t.Errorf("evicting an uncached object = %v", err)
	}
}

func TestGetMissingAndDeleted(t *testing.T) {
	m, _, _ := newTestManager(t, rwIdentityCfg())
	if _, err := m.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing) = %v", err)
	}
	mustExec(t, m, op.NewCreate("X", []byte("v")))
	mustExec(t, m, op.NewDelete("X"))
	if _, err := m.Get("X"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(deleted) = %v", err)
	}
}

func TestExecuteRejectsBadOps(t *testing.T) {
	m, _, _ := newTestManager(t, rwIdentityCfg())
	if err := m.Execute(&op.Operation{}); err == nil {
		t.Error("invalid op accepted")
	}
	logged := op.NewCreate("X", []byte("v"))
	logged.LSN = 9
	if err := m.Execute(logged); err == nil {
		t.Error("already-logged op accepted")
	}
	// Reading a missing object fails before logging.
	bad := op.NewLogical(op.FuncCopy, []byte("Y"), []op.ObjectID{"missing"}, []op.ObjectID{"Y"})
	if err := m.Execute(bad); err == nil {
		t.Error("op reading missing object accepted")
	}
}

// figure7 drives the Figure 7 scenario: A blind-writes {X,Y}; B reads X into
// Z; C blind-rewrites X.
func figure7(t *testing.T, m *Manager) {
	t.Helper()
	a := &op.Operation{
		Kind:     op.KindPhysicalWrite,
		WriteSet: []op.ObjectID{"X", "Y"},
		Values:   map[op.ObjectID][]byte{"X": []byte("xA"), "Y": []byte("yA")},
	}
	mustExec(t, m, a)
	mustExec(t, m, op.NewLogical(op.FuncCopy, []byte("Z"), []op.ObjectID{"X"}, []op.ObjectID{"Z"}))
	mustExec(t, m, op.NewPhysicalWrite("X", []byte("xC")))
}

func TestFigure7InstallSequence(t *testing.T) {
	m, log, store := newTestManager(t, rwIdentityCfg())
	figure7(t, m)

	// rW: three nodes; every install flushes exactly one object, in order
	// Z (B), Y (A, with X unexposed), X (C).
	var flushedOrder []op.ObjectID
	for {
		vars, err := m.InstallMinimal()
		if errors.Is(err, ErrNothingToInstall) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(vars) != 1 {
			t.Fatalf("multi-object flush %v under rW+Figure7", vars)
		}
		flushedOrder = append(flushedOrder, vars[0])
	}
	want := []op.ObjectID{"Z", "Y", "X"}
	for i := range want {
		if flushedOrder[i] != want[i] {
			t.Fatalf("flush order = %v, want %v", flushedOrder, want)
		}
	}
	// Stable state: everything current.
	for x, wantV := range map[op.ObjectID]string{"X": "xC", "Y": "yA", "Z": "xA"} {
		v, err := store.Read(x)
		if err != nil || string(v.Val) != string(wantV) {
			t.Errorf("stable %s = %q, %v", x, v.Val, err)
		}
	}
	if st := m.Stats(); st.InstalledNotFlushed != 1 {
		t.Errorf("InstalledNotFlushed = %d, want 1 (X in Notx of A's node)", st.InstalledNotFlushed)
	}
	// The install log contains an install record naming X unflushed with
	// rSI = C's LSN (3).  Install records are lazily logged; force first.
	if err := log.Force(); err != nil {
		t.Fatal(err)
	}
	sc, _ := log.Scan(0)
	recs, _ := sc.All()
	foundUnflushed := false
	for _, r := range recs {
		if r.Type == wal.RecInstall {
			for _, u := range r.Install.Unflushed {
				if u.ID == "X" && u.RSI == 3 {
					foundUnflushed = true
				}
			}
		}
	}
	if !foundUnflushed {
		t.Error("no install record advancing X's rSI to C's lSI")
	}
}

func TestFigure7RSIAdvancement(t *testing.T) {
	m, _, _ := newTestManager(t, rwIdentityCfg())
	figure7(t, m)

	// Before any install: X's rSI is A's lSI (1) — "the rSI for X is not
	// advanced when operation C is encountered and logged".
	if rsi, _ := m.RSI("X"); rsi != 1 {
		t.Errorf("pre-install rSI(X) = %d, want 1", rsi)
	}
	// Install B's node (Z) then A's node (Y; X unexposed).
	if _, err := m.InstallMinimal(); err != nil { // Z
		t.Fatal(err)
	}
	if _, err := m.InstallMinimal(); err != nil { // Y
		t.Fatal(err)
	}
	// "The rSI for X is advanced when node (1) is installed ... X's rSI is
	// then set to the lSI for operation C."
	if rsi, _ := m.RSI("X"); rsi != 3 {
		t.Errorf("post-install rSI(X) = %d, want 3", rsi)
	}
	// X is installed-but-not-flushed: still dirty.
	if m.DirtyCount() != 1 {
		t.Errorf("DirtyCount = %d, want 1 (X)", m.DirtyCount())
	}
	if err := m.EvictClean("X"); err == nil {
		t.Error("X must not be evictable while dirty")
	}
}

// cycleOps drives the Section 4 example that collapses to one rW node with
// vars {X,Y}: (a) Y=f(X,Y); (b) X=g(Y); (c) Y=h(Y).
func cycleOps(t *testing.T, m *Manager) {
	t.Helper()
	mustExec(t, m, op.NewCreate("X", []byte{1, 2}))
	mustExec(t, m, op.NewCreate("Y", []byte{3, 4}))
	if err := m.PurgeAll(); err != nil { // creates install standalone
		t.Fatal(err)
	}
	mustExec(t, m, op.NewLogical(op.FuncXor, op.EncodeParams([]byte("Y"), []byte("X")),
		[]op.ObjectID{"X", "Y"}, []op.ObjectID{"Y"})) // (a)
	mustExec(t, m, op.NewLogical(op.FuncCopy, []byte("X"),
		[]op.ObjectID{"Y"}, []op.ObjectID{"X"})) // (b)
	mustExec(t, m, op.NewPhysioWrite("Y", op.FuncAppend, []byte{9})) // (c)
}

func TestCycleIdentityWriteBreakup(t *testing.T) {
	m, _, store := newTestManager(t, rwIdentityCfg())
	cycleOps(t, m)
	if m.WriteGraph().Len() != 1 {
		t.Fatalf("write graph nodes = %d, want 1 (collapsed cycle)", m.WriteGraph().Len())
	}
	store.ResetStats()
	if err := m.PurgeAll(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.IdentityWrites != 1 {
		t.Errorf("IdentityWrites = %d, want 1", st.IdentityWrites)
	}
	if st.MultiObjectFlushes != 0 {
		t.Errorf("MultiObjectFlushes = %d, want 0 (identity writes avoid them)", st.MultiObjectFlushes)
	}
	io := store.Stats()
	if io.PointerSwings != 0 || io.FlushTxnLogWrites != 0 {
		t.Error("identity-write strategy must not use shadow/flush-txn mechanisms")
	}
	// Final stable values match an in-order replay.
	x, _ := store.Read("X")
	y, _ := store.Read("Y")
	wantY := []byte{1 ^ 3, 2 ^ 4}          // (a)
	wantX := append([]byte(nil), wantY...) // (b)
	wantY = append(wantY, 9)               // (c)
	if !op.Equal(x.Val, wantX) || !op.Equal(y.Val, wantY) {
		t.Errorf("stable X=%v Y=%v, want X=%v Y=%v", x.Val, y.Val, wantX, wantY)
	}
}

func TestCycleShadowStrategy(t *testing.T) {
	m, _, store := newTestManager(t, Config{
		Policy: writegraph.PolicyRW, Strategy: StrategyShadow, LogInstalls: true,
	})
	cycleOps(t, m)
	store.ResetStats()
	if err := m.PurgeAll(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.MultiObjectFlushes != 1 || st.IdentityWrites != 0 {
		t.Errorf("MultiObjectFlushes = %d, IdentityWrites = %d", st.MultiObjectFlushes, st.IdentityWrites)
	}
	if store.Stats().PointerSwings != 1 {
		t.Errorf("PointerSwings = %d, want 1", store.Stats().PointerSwings)
	}
}

func TestCycleFlushTxnStrategy(t *testing.T) {
	m, _, store := newTestManager(t, Config{
		Policy: writegraph.PolicyRW, Strategy: StrategyFlushTxn, LogInstalls: true,
	})
	cycleOps(t, m)
	store.ResetStats()
	if err := m.PurgeAll(); err != nil {
		t.Fatal(err)
	}
	io := store.Stats()
	// 2 values + 1 commit on the flush-txn log, then 2 in-place writes.
	if io.FlushTxnLogWrites != 3 {
		t.Errorf("FlushTxnLogWrites = %d, want 3", io.FlushTxnLogWrites)
	}
	if io.ObjectWrites != 2 {
		t.Errorf("ObjectWrites = %d, want 2", io.ObjectWrites)
	}
}

func TestIdentityBreakupRequiresRW(t *testing.T) {
	m, _, _ := newTestManager(t, Config{
		Policy: writegraph.PolicyW, Strategy: StrategyIdentityWrite, LogInstalls: true,
	})
	// Two ops sharing a writeset object force a multi-object W node.
	a := &op.Operation{
		Kind:     op.KindPhysicalWrite,
		WriteSet: []op.ObjectID{"X", "Y"},
		Values:   map[op.ObjectID][]byte{"X": []byte("x"), "Y": []byte("y")},
	}
	mustExec(t, m, a)
	if _, err := m.InstallMinimal(); err == nil {
		t.Error("identity breakup under W must be rejected")
	}
}

func TestCheckpointAndTruncate(t *testing.T) {
	m, log, _ := newTestManager(t, rwIdentityCfg())
	mustExec(t, m, op.NewCreate("A", []byte("a")))
	mustExec(t, m, op.NewCreate("B", []byte("b")))
	if err := m.PurgeAll(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, m, op.NewPhysioWrite("B", op.FuncAppend, []byte("+")))

	dt := m.DirtyTable()
	if len(dt) != 1 || dt[0].ID != "B" {
		t.Fatalf("DirtyTable = %v", dt)
	}
	cpLSN, err := m.CheckpointAndTruncate()
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().Checkpoints != 1 {
		t.Error("checkpoint not counted")
	}
	// Truncation point is B's rSI (the append's LSN), so records before it
	// are gone but the append survives.
	if log.FirstLSN() != dt[0].RSI {
		t.Errorf("FirstLSN = %d, want %d", log.FirstLSN(), dt[0].RSI)
	}
	cp, err := log.LastCheckpoint()
	if err != nil || cp == nil || cp.LSN != cpLSN {
		t.Errorf("LastCheckpoint = %+v, %v", cp, err)
	}
	// With nothing dirty, truncation reaches the checkpoint itself.
	if err := m.PurgeAll(); err != nil {
		t.Fatal(err)
	}
	cpLSN2, err := m.CheckpointAndTruncate()
	if err != nil {
		t.Fatal(err)
	}
	if log.FirstLSN() != cpLSN2 {
		t.Errorf("FirstLSN = %d, want %d", log.FirstLSN(), cpLSN2)
	}
}

func TestDeleteReachesStableStore(t *testing.T) {
	m, _, store := newTestManager(t, rwIdentityCfg())
	mustExec(t, m, op.NewCreate("X", []byte("v")))
	if err := m.PurgeAll(); err != nil {
		t.Fatal(err)
	}
	if !store.Contains("X") {
		t.Fatal("create not installed")
	}
	mustExec(t, m, op.NewDelete("X"))
	if err := m.PurgeAll(); err != nil {
		t.Fatal(err)
	}
	if store.Contains("X") {
		t.Error("delete not installed")
	}
	if _, ok := m.VSI("X"); ok {
		t.Error("terminated object still in object table")
	}
}

func TestCrashWipesVolatileState(t *testing.T) {
	m, _, _ := newTestManager(t, rwIdentityCfg())
	mustExec(t, m, op.NewCreate("X", []byte("v")))
	m.Crash()
	if m.DirtyCount() != 0 || m.WriteGraph().Len() != 0 {
		t.Error("Crash left volatile state")
	}
}

func TestTryApplyLoggedVoidsBadRedo(t *testing.T) {
	m, _, _ := newTestManager(t, rwIdentityCfg())
	// An op reading a missing object: trial execution voids.
	o := op.NewLogical(op.FuncCopy, []byte("Y"), []op.ObjectID{"gone"}, []op.ObjectID{"Y"})
	o.LSN = 5
	voided, err := m.TryApplyLogged(o)
	if err != nil || !voided {
		t.Errorf("TryApplyLogged = voided %v, %v", voided, err)
	}
	// A healthy op applies.
	c := op.NewCreate("X", []byte("v"))
	c.LSN = 6
	voided, err = m.TryApplyLogged(c)
	if err != nil || voided {
		t.Errorf("TryApplyLogged(healthy) = voided %v, %v", voided, err)
	}
	if _, err := m.Get("X"); err != nil {
		t.Error("healthy trial apply did not take effect")
	}
	if _, err := m.TryApplyLogged(op.NewCreate("Y", nil)); err == nil {
		t.Error("un-logged op accepted")
	}
	if err := m.ApplyLogged(op.NewCreate("Y", nil)); err == nil {
		t.Error("ApplyLogged of un-logged op accepted")
	}
}

// TestRandomWorkloadMatchesOracle drives random logical/physiological
// operation mixes with interleaved installs and verifies that after
// PurgeAll the stable store equals a straight in-memory replay of the
// logged history.
func TestRandomWorkloadMatchesOracle(t *testing.T) {
	objects := []op.ObjectID{"o0", "o1", "o2", "o3"}
	for _, cfg := range []Config{
		rwIdentityCfg(),
		{Policy: writegraph.PolicyRW, Strategy: StrategyShadow, LogInstalls: true},
		{Policy: writegraph.PolicyW, Strategy: StrategyShadow, LogInstalls: true},
		{Policy: writegraph.PolicyW, Strategy: StrategyFlushTxn, LogInstalls: false},
	} {
		rng := rand.New(rand.NewSource(17))
		for trial := 0; trial < 10; trial++ {
			m, log, store := newTestManager(t, cfg)
			oracle := map[op.ObjectID][]byte{}
			reg := op.NewRegistry()
			// Create all objects first.
			for _, x := range objects {
				o := op.NewCreate(x, []byte{byte(trial)})
				mustExec(t, m, o)
				oracle[x] = []byte{byte(trial)}
			}
			for step := 0; step < 40; step++ {
				if rng.Intn(5) == 0 {
					if _, err := m.InstallMinimal(); err != nil && !errors.Is(err, ErrNothingToInstall) {
						t.Fatal(err)
					}
					continue
				}
				o := randomWorkloadOp(rng, objects)
				// Oracle replay first (Execute mutates op LSN only).
				reads := map[op.ObjectID][]byte{}
				for _, x := range o.ReadSet {
					reads[x] = oracle[x]
				}
				writes, err := reg.Apply(o, reads)
				if err != nil {
					t.Fatal(err)
				}
				for x, v := range writes {
					oracle[x] = v
				}
				mustExec(t, m, o)
			}
			if err := m.PurgeAll(); err != nil {
				t.Fatalf("cfg %v/%v: %v", cfg.Policy, cfg.Strategy, err)
			}
			for _, x := range objects {
				sv, err := store.Read(x)
				if err != nil || !op.Equal(sv.Val, oracle[x]) {
					t.Fatalf("cfg %v/%v trial %d: stable %s = %v (%v), want %v",
						cfg.Policy, cfg.Strategy, trial, x, sv.Val, err, oracle[x])
				}
			}
			// WAL invariant held throughout: every op durable.
			if log.StableLSN() == 0 {
				t.Error("log never forced")
			}
		}
	}
}

func randomWorkloadOp(rng *rand.Rand, objects []op.ObjectID) *op.Operation {
	x := objects[rng.Intn(len(objects))]
	y := objects[rng.Intn(len(objects))]
	switch rng.Intn(5) {
	case 0:
		return op.NewPhysicalWrite(x, []byte{byte(rng.Intn(256))})
	case 1:
		return op.NewPhysioWrite(x, op.FuncAppend, []byte{byte(rng.Intn(256))})
	case 2:
		if x == y {
			return op.NewPhysioWrite(x, op.FuncAppend, []byte{7})
		}
		return op.NewLogical(op.FuncXor, op.EncodeParams([]byte(y), []byte(x)),
			[]op.ObjectID{x, y}, []op.ObjectID{y})
	case 3:
		if x == y {
			return op.NewPhysioWrite(x, op.FuncAppend, []byte{8})
		}
		return op.NewLogical(op.FuncCopy, []byte(x), []op.ObjectID{y}, []op.ObjectID{x})
	default:
		if x == y {
			return op.NewPhysioWrite(x, op.FuncAppend, []byte{9})
		}
		return op.NewLogical(op.FuncConcat, op.EncodeParams([]byte(y), []byte(x)),
			[]op.ObjectID{x, y}, []op.ObjectID{y})
	}
}
