package cache

import (
	"fmt"
	"time"

	"logicallog/internal/graph"
	"logicallog/internal/op"
	"logicallog/internal/stable"
	"logicallog/internal/wal"
)

// This file is the standby side of log shipping (internal/ship): mirroring
// the primary's installation schedule from its install/flush records.
//
// A warm standby applies the primary's operation records through the normal
// redo machinery, so its cache, write graph, and pending (rSI) bookkeeping
// track the primary's exactly — records arrive strictly in LSN order, and an
// install record was appended on the primary in the same engine critical
// section as the flush it describes, so at the moment the record is applied
// here the standby's cached value of every flushed object equals the value
// the primary flushed (the InstallNode invariant: the last writer of each
// var is in the installed node).  Mirroring therefore flushes *cached*
// standby state, never shipped values; logical operations were replayed
// against the standby's own recoverable state to produce it.
//
// Objects whose updates were skipped at bootstrap (the backup image already
// carried them, vSI witness) are simply absent from the cache and the write
// graph; mirroring skips them — the stable store is already current.

// MirrorInstall applies a primary install record to the standby: it flushes
// the record's flushed objects from cached state with the configured
// atomicity mechanism, removes the installed operations' write-graph nodes,
// and advances rSIs for flushed and unflushed objects alike.  It returns the
// LSNs of the operations installed (for tracing).  The caller must already
// have forced the standby's log through the record's LSN (WAL protocol).
func (m *Manager) MirrorInstall(rec *wal.InstallRecord) ([]op.SI, error) {
	installed := make(map[op.SI]bool, len(rec.Ops))
	for _, lsn := range rec.Ops {
		installed[lsn] = true
	}

	// Flush batch from cached standby state.
	entries := make([]stable.Entry, 0, len(rec.Flushed))
	for _, f := range rec.Flushed {
		e, ok := m.lookup(f.ID)
		if !ok {
			continue // bootstrap-skipped: stable store already current
		}
		entries = append(entries, stable.Entry{
			ID:     f.ID,
			Val:    e.val,
			VSI:    e.vsi,
			Delete: !e.exists,
		})
	}
	if err := m.writeBatchRetry(entries); err != nil {
		return nil, err
	}

	// The installed operations leave the write graph.  Their nodes are
	// minimal here whenever they were minimal on the primary: the standby
	// applied the same operation prefix, so every edge it derives also
	// exists on the primary (bootstrap skips can only remove edges).
	if err := m.removeInstalledNodes(rec.Ops); err != nil {
		return nil, err
	}

	m.statsMu.Lock()
	m.stats.Installs++
	m.stats.ObjectsFlushed += int64(len(entries))
	m.stats.InstalledNotFlushed += int64(len(rec.Unflushed))
	if len(entries) > 1 {
		m.stats.MultiObjectFlushes++
	}
	m.statsMu.Unlock()

	// Advance rSIs exactly as the primary did (Section 5): flushed objects
	// come clean, unflushed (Notx) objects stay dirty at the lSI of the
	// blind write that made them unexposed.
	for _, f := range rec.Flushed {
		e, ok := m.lookup(f.ID)
		if !ok {
			continue
		}
		e.pending = prunePending(e.pending, installed)
		if len(e.pending) != 0 {
			return nil, fmt.Errorf("cache: mirror: flushed object %q still has uninstalled writes %v", f.ID, e.pending)
		}
		e.dirty = false
		if !e.exists {
			m.remove(f.ID)
		}
	}
	for _, u := range rec.Unflushed {
		e, ok := m.lookup(u.ID)
		if !ok {
			continue
		}
		e.pending = prunePending(e.pending, installed)
		e.dirty = len(e.pending) > 0
	}
	return append([]op.SI(nil), rec.Ops...), nil
}

// MirrorFlush applies a primary flush record — the single-object,
// no-Notx special case of an install — to the standby.  It returns the LSNs
// of the operations installed.
func (m *Manager) MirrorFlush(rec *wal.FlushRecord) ([]op.SI, error) {
	e, ok := m.lookup(rec.Object)
	if !ok {
		return nil, nil // bootstrap-skipped: stable store already current
	}
	id, ok := m.wg.NodeOfOp(e.vsi)
	if !ok {
		// All writers of the object were skipped at bootstrap.
		return nil, nil
	}
	view, err := m.wg.Remove(id)
	if err != nil {
		return nil, fmt.Errorf("cache: mirror: flush of %q: %w", rec.Object, err)
	}
	if m.obs.wgNodes != nil {
		m.obs.wgNodes.Set(int64(m.wg.Len()))
		m.obs.wgOps.Set(int64(m.wg.OpCount()))
	}
	entries := []stable.Entry{{
		ID:     rec.Object,
		Val:    e.val,
		VSI:    e.vsi,
		Delete: !e.exists,
	}}
	if err := m.writeBatchRetry(entries); err != nil {
		return nil, err
	}
	installed := make(map[op.SI]bool, len(view.Ops))
	var opLSNs []op.SI
	for _, o := range view.Ops {
		installed[o.LSN] = true
		opLSNs = append(opLSNs, o.LSN)
	}
	e.pending = prunePending(e.pending, installed)
	if len(e.pending) != 0 {
		return nil, fmt.Errorf("cache: mirror: flushed object %q still has uninstalled writes %v", rec.Object, e.pending)
	}
	e.dirty = false
	if !e.exists {
		m.remove(rec.Object)
	}
	m.statsMu.Lock()
	m.stats.Installs++
	m.stats.ObjectsFlushed++
	m.statsMu.Unlock()
	return opLSNs, nil
}

// writeBatchRetry writes a flush batch with the strategy's atomicity mode
// and the manager's transient-retry policy (see InstallNode).
func (m *Manager) writeBatchRetry(entries []stable.Entry) error {
	if len(entries) == 0 {
		return nil
	}
	mode := stable.ModeSingle
	if len(entries) > 1 {
		switch m.cfg.Strategy {
		case StrategyFlushTxn:
			mode = stable.ModeFlushTxn
		default:
			mode = stable.ModeShadow
		}
	}
	err := m.store.WriteBatch(entries, mode)
	for attempt := 1; err != nil && attempt <= m.cfg.TransientRetries && wal.IsTransient(err); attempt++ {
		backoff := wal.TransientBackoff(attempt, transientRetryBase, transientRetryCap)
		m.obs.retries.Inc()
		m.obs.retryBackoffNs.ObserveDuration(backoff)
		time.Sleep(backoff)
		err = m.store.WriteBatch(entries, mode)
	}
	return err
}

// removeInstalledNodes removes the write-graph nodes holding the given
// operations, most-minimal first.  Operations absent from the graph
// (bootstrap-skipped) are ignored.
func (m *Manager) removeInstalledNodes(lsns []op.SI) error {
	ids := make(map[graph.NodeID]bool)
	for _, lsn := range lsns {
		if id, ok := m.wg.NodeOfOp(lsn); ok {
			ids[id] = true
		}
	}
	for len(ids) > 0 {
		removed := false
		for _, min := range m.wg.Minimal() {
			if !ids[min] {
				continue
			}
			if _, err := m.wg.Remove(min); err != nil {
				return fmt.Errorf("cache: mirror: %w", err)
			}
			delete(ids, min)
			removed = true
		}
		if !removed {
			return fmt.Errorf("cache: mirror: %d installed nodes are not minimal", len(ids))
		}
	}
	if m.obs.wgNodes != nil {
		m.obs.wgNodes.Set(int64(m.wg.Len()))
		m.obs.wgOps.Set(int64(m.wg.OpCount()))
	}
	return nil
}
