// Package cache implements the cache manager (CM) of the recovery system:
// the dirty object table, operation execution against cached state, the
// PurgeCache installation algorithm of Figure 4 driven by a write graph, the
// cache-manager-initiated identity writes of Section 4 that break up
// multi-object atomic flush sets, recovery-SI maintenance, checkpoints, and
// log truncation.
//
// The CM's duty (Section 3) is to ensure there is always a prefix set I of
// installed operations that explains the stable database.  It discharges
// that duty by flushing write-graph nodes only when they are minimal and by
// flushing each node's vars atomically.
package cache

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"time"

	"logicallog/internal/graph"
	"logicallog/internal/obs"
	"logicallog/internal/op"
	"logicallog/internal/stable"
	"logicallog/internal/wal"
	"logicallog/internal/writegraph"
)

// FlushStrategy selects how a multi-object atomic flush set is handled.
type FlushStrategy uint8

const (
	// StrategyIdentityWrite is the paper's contribution: the CM logs
	// identity writes W_IP(X) to peel objects out of the flush set until a
	// single object remains, which is then flushed alone (Section 4).
	StrategyIdentityWrite FlushStrategy = iota
	// StrategyShadow flushes multi-object sets atomically with the shadow
	// mechanism (System R).
	StrategyShadow
	// StrategyFlushTxn flushes multi-object sets atomically with a flush
	// transaction (log values, commit, update in place).
	StrategyFlushTxn
)

func (s FlushStrategy) String() string {
	switch s {
	case StrategyIdentityWrite:
		return "identity-write"
	case StrategyShadow:
		return "shadow"
	case StrategyFlushTxn:
		return "flush-txn"
	}
	return fmt.Sprintf("FlushStrategy(%d)", uint8(s))
}

// Config parameterizes a Manager.
type Config struct {
	// Policy selects the write graph (W or rW).
	Policy writegraph.Policy
	// Strategy selects the multi-object flush mechanism.
	Strategy FlushStrategy
	// LogInstalls controls whether RecInstall records are written when
	// nodes are installed.  They enable the analysis pass to advance rSIs
	// (Section 5); turning them off is the E10/ablation baseline.
	LogInstalls bool
	// Registry resolves operation transformations.
	Registry *op.Registry
	// InstallTrace, when non-nil, receives a snapshot of every installed
	// write-graph node (debug and inspection use only).
	InstallTrace func(view *writegraph.NodeView)
	// TransientRetries bounds how many times an install retries a stable
	// batch that failed with a transient (retryable) I/O error — see
	// wal.IsTransient.  Zero disables retry.
	TransientRetries int
	// Obs, when non-nil, receives the manager's hot-path metrics:
	// atomic-flush-set and Notx size distributions, install latency,
	// write-graph node/operation gauges, and transient-retry backoff.
	Obs *obs.Registry
}

// cacheObs holds the manager's optional metric handles; all nil (and hence
// no-ops) when Config.Obs is unset.
type cacheObs struct {
	// flushSetSize is |vars(n)| per installed node — the atomic-flush-set
	// size distribution E3 reasons about.
	flushSetSize *obs.Histogram
	// notxSize is |Notx(n)| per installed node (installed without flushing).
	notxSize *obs.Histogram
	// installNs is the end-to-end InstallNode latency (force + flush + log).
	installNs *obs.Histogram
	// wgNodes/wgOps track the live write graph after every AddOp.
	wgNodes *obs.Gauge
	wgOps   *obs.Gauge
	// retryBackoffNs is the transient-retry backoff slept per stable-batch
	// retry attempt.
	retryBackoffNs *obs.Histogram
	retries        *obs.Counter
}

func newCacheObs(r *obs.Registry) cacheObs {
	if r == nil {
		return cacheObs{}
	}
	return cacheObs{
		flushSetSize:   r.Histogram("cache.install.flush_set_size"),
		notxSize:       r.Histogram("cache.install.notx_size"),
		installNs:      r.Histogram("cache.install.ns"),
		wgNodes:        r.Gauge("writegraph.nodes"),
		wgOps:          r.Gauge("writegraph.ops"),
		retryBackoffNs: r.Histogram("cache.retry.backoff_ns"),
		retries:        r.Counter("cache.retry.attempts"),
	}
}

// Transient-retry backoff bounds for stable-store batches.  The simulated
// store has no real latency, so these only pace the retry loop.
const (
	transientRetryBase = 20 * time.Microsecond
	transientRetryCap  = 500 * time.Microsecond
)

// Stats counts cache-manager activity.
type Stats struct {
	// OpsExecuted counts operations applied (normal execution + redo).
	OpsExecuted int64
	// Installs counts write-graph nodes installed.
	Installs int64
	// IdentityWrites counts CM-initiated W_IP operations.
	IdentityWrites int64
	// MultiObjectFlushes counts installs whose final flush wrote >1 object.
	MultiObjectFlushes int64
	// ObjectsFlushed counts objects written to the stable store by installs.
	ObjectsFlushed int64
	// InstalledNotFlushed counts objects installed via Notx (no flush).
	InstalledNotFlushed int64
	// Evictions counts clean-entry evictions.
	Evictions int64
	// Checkpoints counts checkpoint records written.
	Checkpoints int64
}

// ErrNotFound is returned when an object is in neither cache nor stable
// store (or has been deleted).
var ErrNotFound = errors.New("cache: object not found")

// entry is a dirty-object-table row.
type entry struct {
	val    []byte
	exists bool // false after delete
	dirty  bool
	// vsi is the SI of the last operation applied to the cached value.
	vsi op.SI
	// pending lists the LSNs of uninstalled operations that wrote this
	// object, ascending.  rSI = pending[0]; dirty ⇔ len(pending) > 0.
	pending []op.SI
}

func (e *entry) rsi() op.SI {
	if len(e.pending) == 0 {
		return op.NilSI
	}
	return e.pending[0]
}

// tableShards stripes the dirty object table: parallel redo workers fault
// and apply against disjoint objects, so per-object (striped) locking lets
// them proceed without contending on one map mutex.  Power of two.
const tableShards = 32

var tableSeed = maphash.MakeSeed()

type tableShard struct {
	mu sync.RWMutex
	m  map[op.ObjectID]*entry
}

// Manager is the cache manager.
//
// Normal operation is engine-serialized (the paper's concerns are recovery
// ordering, not latching).  The replay path — Get, CurrentVSI, ApplyLogged,
// TryApplyLogged — is additionally safe for concurrent use by recovery's
// parallel redo workers under one invariant the redo scheduler guarantees:
// two operations that conflict (one writes an object the other reads or
// writes) are never replayed concurrently.  The striped table locks below
// protect the map structure; entry *contents* need no locks because every
// entry is only ever mutated by the single chain that owns its object.
type Manager struct {
	cfg    Config
	log    *wal.Log
	store  *stable.Store
	wg     *writegraph.Graph
	wgMu   sync.Mutex // guards wg.AddOp from concurrent redo workers
	shards [tableShards]tableShard

	statsMu sync.Mutex
	stats   Stats

	obs cacheObs
}

// NewManager builds a cache manager over the given log and stable store.
func NewManager(cfg Config, log *wal.Log, store *stable.Store) (*Manager, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("cache: Config.Registry is required")
	}
	m := &Manager{
		cfg:   cfg,
		log:   log,
		store: store,
		wg:    writegraph.New(cfg.Policy),
		obs:   newCacheObs(cfg.Obs),
	}
	for i := range m.shards {
		m.shards[i].m = make(map[op.ObjectID]*entry)
	}
	return m, nil
}

func (m *Manager) shard(x op.ObjectID) *tableShard {
	return &m.shards[maphash.String(tableSeed, string(x))&(tableShards-1)]
}

// lookup returns the cached entry for x, if any.
func (m *Manager) lookup(x op.ObjectID) (*entry, bool) {
	sh := m.shard(x)
	sh.mu.RLock()
	e, ok := sh.m[x]
	sh.mu.RUnlock()
	return e, ok
}

// insert publishes e as x's entry unless one appeared meanwhile (two chains
// read-faulting the same never-written object), in which case the existing
// entry wins.
func (m *Manager) insert(x op.ObjectID, e *entry) *entry {
	sh := m.shard(x)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur, ok := sh.m[x]; ok {
		return cur
	}
	sh.m[x] = e
	return e
}

func (m *Manager) remove(x op.ObjectID) {
	sh := m.shard(x)
	sh.mu.Lock()
	delete(sh.m, x)
	sh.mu.Unlock()
}

// forEach visits every cached entry (engine-serialized callers only).
func (m *Manager) forEach(fn func(x op.ObjectID, e *entry)) {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for x, e := range sh.m {
			fn(x, e)
		}
		sh.mu.RUnlock()
	}
}

// RangeLive visits every cached object whose id falls in [lo, hi) (hi == ""
// means unbounded) and reports whether it currently exists (false for cached
// deletions).  Iteration stops early when fn returns false.  Safe while
// replay of chains OUTSIDE the range is still running concurrently: the id
// filter is applied before any entry field is read, and an in-range entry's
// contents are only mutated by the chains that touch it — which the caller
// must have drained (Engine gates enumeration on RequireRange).  Visit order
// is shard order, not key order; callers wanting sorted output must sort.
func (m *Manager) RangeLive(lo, hi op.ObjectID, fn func(x op.ObjectID, exists bool) bool) {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for x, e := range sh.m {
			if x < lo || (hi != "" && x >= hi) {
				continue
			}
			if !fn(x, e.exists) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	return m.stats
}

// ResetStats zeroes the manager's counters (benchmark phases; Engine's
// coherent ResetStats resets the WAL, store, cache, and obs registry
// together under the engine mutex).
func (m *Manager) ResetStats() {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	m.stats = Stats{}
}

// WriteGraph exposes the manager's write graph for inspection.
func (m *Manager) WriteGraph() *writegraph.Graph { return m.wg }

// DirtyCount returns the number of dirty objects.
func (m *Manager) DirtyCount() int {
	n := 0
	m.forEach(func(_ op.ObjectID, e *entry) {
		if e.dirty {
			n++
		}
	})
	return n
}

// Get returns the current value of x, faulting it in from the stable store
// on a miss.  Deleted objects and objects absent everywhere return
// ErrNotFound.
func (m *Manager) Get(x op.ObjectID) ([]byte, error) {
	e, err := m.fault(x)
	if err != nil {
		return nil, err
	}
	if !e.exists {
		return nil, fmt.Errorf("%w: %q (deleted)", ErrNotFound, x)
	}
	return append([]byte(nil), e.val...), nil
}

// VSI returns the cached object's state identifier (for tests/inspection).
func (m *Manager) VSI(x op.ObjectID) (op.SI, bool) {
	e, ok := m.lookup(x)
	if !ok {
		return 0, false
	}
	return e.vsi, true
}

// CurrentVSI returns the state identifier of x in the recovering state: the
// cached vSI if x is cached (updated by prior redos), else the stable
// store's vSI, else NilSI for an object that does not exist.  This is the
// vSI the REDO tests of Section 5 compare against lSIs.
func (m *Manager) CurrentVSI(x op.ObjectID) op.SI {
	if e, ok := m.lookup(x); ok {
		return e.vsi
	}
	if v, err := m.store.Read(x); err == nil {
		return v.VSI
	}
	return op.NilSI
}

// RSI returns the cached object's recovery state identifier, NilSI if clean.
func (m *Manager) RSI(x op.ObjectID) (op.SI, bool) {
	e, ok := m.lookup(x)
	if !ok {
		return 0, false
	}
	return e.rsi(), true
}

func (m *Manager) fault(x op.ObjectID) (*entry, error) {
	if e, ok := m.lookup(x); ok {
		return e, nil
	}
	v, err := m.store.Read(x)
	if errors.Is(err, stable.ErrNotFound) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, x)
	}
	if err != nil {
		return nil, err
	}
	return m.insert(x, &entry{val: v.Val, exists: true, vsi: v.VSI}), nil
}

// Execute runs operation o during normal execution: it reads o's inputs,
// applies the transformation, logs o (assigning its LSN), applies the writes
// to the cache, and threads o into the write graph.  The WAL protocol defers
// forcing until installation.
func (m *Manager) Execute(o *op.Operation) error {
	if err := o.Validate(); err != nil {
		return err
	}
	if o.LSN != op.NilSI {
		return fmt.Errorf("cache: operation %s already logged", o)
	}
	writes, err := m.computeWrites(o)
	if err != nil {
		return err
	}
	if _, err := m.log.AppendOp(o); err != nil {
		return err
	}
	return m.applyLogged(o, writes)
}

// ApplyLogged re-applies an already-logged operation during recovery's redo
// pass.  The operation keeps its original LSN; no log record is written.
func (m *Manager) ApplyLogged(o *op.Operation) error {
	if o.LSN == op.NilSI {
		return fmt.Errorf("cache: ApplyLogged requires a logged operation")
	}
	writes, err := m.computeWrites(o)
	if err != nil {
		return err
	}
	return m.applyLogged(o, writes)
}

// TryApplyLogged performs the trial execution of Section 5: it computes the
// operation's writes and voids the redo (returning voided=true, no state
// change) if the transformation fails against inapplicable state or
// attempts to write outside its logged writeset.
func (m *Manager) TryApplyLogged(o *op.Operation) (voided bool, err error) {
	if o.LSN == op.NilSI {
		return false, fmt.Errorf("cache: TryApplyLogged requires a logged operation")
	}
	writes, cerr := m.computeWrites(o)
	if cerr != nil {
		// Case (b)/(c) of Section 5: writeset violation or execution
		// exception against inapplicable state voids the redo.
		return true, nil
	}
	return false, m.applyLogged(o, writes)
}

func (m *Manager) computeWrites(o *op.Operation) (map[op.ObjectID][]byte, error) {
	reads := make(map[op.ObjectID][]byte, len(o.ReadSet))
	for _, x := range o.ReadSet {
		v, err := m.Get(x)
		if err != nil {
			return nil, fmt.Errorf("cache: %s reads %q: %w", o, x, err)
		}
		reads[x] = v
	}
	return m.cfg.Registry.Apply(o, reads)
}

func (m *Manager) applyLogged(o *op.Operation, writes map[op.ObjectID][]byte) error {
	for _, x := range o.WriteSet {
		e, ok := m.lookup(x)
		if !ok {
			// A blind write may create the object; fault in the stable
			// version if present so the vSI baseline is right, otherwise
			// start fresh.
			if v, err := m.store.Read(x); err == nil {
				e = &entry{val: v.Val, exists: true, vsi: v.VSI}
			} else {
				e = &entry{}
			}
			e = m.insert(x, e)
		}
		v := writes[x]
		if o.Kind == op.KindDelete || (v == nil && containsObj(o.Deletes, x)) {
			e.exists = false
			e.val = nil
		} else {
			e.exists = true
			e.val = v
		}
		e.vsi = o.LSN
		e.dirty = true
		e.pending = append(e.pending, o.LSN)
	}
	m.wgMu.Lock()
	_, err := m.wg.AddOp(o)
	if err == nil && m.obs.wgNodes != nil {
		m.obs.wgNodes.Set(int64(m.wg.Len()))
	}
	m.wgMu.Unlock()
	if err != nil {
		return err
	}
	m.statsMu.Lock()
	m.stats.OpsExecuted++
	m.statsMu.Unlock()
	return nil
}

// ---------------------------------------------------------------------------
// Installation (PurgeCache).
// ---------------------------------------------------------------------------

// InstallMinimal installs one minimal write-graph node (Figure 4's
// PurgeCache step) and returns the ids of objects flushed.  It returns
// ErrNothingToInstall when the write graph is empty.
//
// Identity-write breakup of a node can make that node temporarily
// non-minimal: peeling object X out of vars(n) adds inverse write-read edges
// q -> n from nodes that read the value n last wrote to X, which now must
// install first.  InstallMinimal then simply picks a new minimal node; the
// loop terminates because each identity write permanently shrinks some
// flush set.
func (m *Manager) InstallMinimal() ([]op.ObjectID, error) {
	maxAttempts := 2*m.wg.OpCount() + m.wg.Len() + 16
	for attempt := 0; attempt < maxAttempts; attempt++ {
		mins := m.wg.Minimal()
		if len(mins) == 0 {
			if m.wg.Len() != 0 {
				return nil, fmt.Errorf("cache: write graph has %d nodes but no minimal node", m.wg.Len())
			}
			return nil, ErrNothingToInstall
		}
		vars, err := m.InstallNode(mins[0])
		if errors.Is(err, errDeferred) {
			continue
		}
		return vars, err
	}
	return nil, fmt.Errorf("cache: InstallMinimal made no progress after %d attempts", maxAttempts)
}

// ErrNothingToInstall is returned by InstallMinimal on an empty write graph.
var ErrNothingToInstall = errors.New("cache: nothing to install")

// errDeferred signals that identity-write breakup re-ordered the graph and
// the caller should pick a new minimal node.
var errDeferred = errors.New("cache: node deferred by identity-write breakup")

// InstallNode installs the write-graph node id: under the identity-write
// strategy it first breaks multi-object flush sets apart with W_IP
// operations; it forces the log (WAL), flushes vars(n) with the configured
// atomicity mechanism, logs the installation record, and updates rSIs for
// both flushed and unflushed (Notx) objects.
func (m *Manager) InstallNode(id graph.NodeID) ([]op.ObjectID, error) {
	var installStart time.Time
	if m.obs.installNs.Enabled() {
		installStart = time.Now()
	}
	nv := m.wg.Node(id)
	if nv == nil {
		return nil, fmt.Errorf("cache: no write-graph node %d", id)
	}

	// Identity-write breakup (Section 4): peel objects out of the atomic
	// flush set one W_IP at a time.  Each W_IP is a normal logged physical
	// operation; under rW it lands in its own node and removes its object
	// from vars(n).
	if m.cfg.Strategy == StrategyIdentityWrite && len(nv.Vars) > 1 {
		if m.cfg.Policy != writegraph.PolicyRW {
			return nil, fmt.Errorf("cache: identity-write breakup requires the refined write graph (W flush sets never shrink)")
		}
		// Peel one object per identity write, re-planning each time: the
		// inverse write-read edges a peel adds can close a cycle whose
		// collapse merges another node (and its vars) into this one, so a
		// plan computed up front can go stale.
		maxPeels := 2*m.wg.OpCount() + len(nv.Writes) + 16
		for peel := 0; ; peel++ {
			nv = m.wg.Node(id)
			if nv == nil {
				// A cycle collapse absorbed the node elsewhere.
				return nil, errDeferred
			}
			if len(nv.Vars) <= 1 {
				break
			}
			if peel >= maxPeels {
				return nil, fmt.Errorf("cache: identity-write breakup of node %d made no progress (vars %v)", id, nv.Vars)
			}
			plan, err := m.wg.IdentityBreakupPlan(id)
			if err != nil {
				return nil, err
			}
			if err := m.identityWrite(plan[0]); err != nil {
				return nil, err
			}
		}
	}
	// Breakup may have added inverse write-read predecessors; those nodes
	// must install first.
	minimal := false
	for _, min := range m.wg.Minimal() {
		if min == id {
			minimal = true
			break
		}
	}
	if !minimal {
		return nil, errDeferred
	}

	// WAL protocol: every operation being installed must be on the stable
	// log before its effects reach the stable database.  Additionally, the
	// very legitimacy of installing a Notx object *without flushing it*
	// rests on the later blind-write records that made it unexposed —
	// after this flush, those records are the object's only recovery
	// source, so they must be durable too.  (This is the paper's
	// "subsequent values for the objects in Notx(n) ... can be recovered
	// from the log": they can only be recovered from the *stable* log.)
	var maxLSN op.SI
	for _, o := range nv.Ops {
		if o.LSN > maxLSN {
			maxLSN = o.LSN
		}
	}
	for _, x := range nv.Notx {
		if e, ok := m.lookup(x); ok && len(e.pending) > 0 {
			if last := e.pending[len(e.pending)-1]; last > maxLSN {
				maxLSN = last
			}
		}
	}
	if err := m.log.ForceThrough(maxLSN); err != nil {
		return nil, err
	}

	// Build the flush batch from cached state.  Invariant: for x in
	// vars(n), the last writer of x is in ops(n) (later writers either
	// merged in or removed x from vars), so the cached value is Lastw(n,x).
	entries := make([]stable.Entry, 0, len(nv.Vars))
	for _, x := range nv.Vars {
		e, ok := m.lookup(x)
		if !ok {
			return nil, fmt.Errorf("cache: flush set object %q not in cache", x)
		}
		entries = append(entries, stable.Entry{
			ID:     x,
			Val:    e.val,
			VSI:    nv.Lastw[x],
			Delete: !e.exists,
		})
	}
	mode := stable.ModeSingle
	if len(entries) > 1 {
		switch m.cfg.Strategy {
		case StrategyShadow:
			mode = stable.ModeShadow
		case StrategyFlushTxn:
			mode = stable.ModeFlushTxn
		default:
			mode = stable.ModeShadow // identity strategy shouldn't get here
		}
		m.statsMu.Lock()
		m.stats.MultiObjectFlushes++
		m.statsMu.Unlock()
	}
	if len(entries) > 0 {
		err := m.store.WriteBatch(entries, mode)
		// Transient device errors retry the whole batch with capped
		// backoff.  Re-running is safe in every mode: a failed attempt
		// left either the old state (single/shadow, pre-commit flush-txn)
		// or a committed pending repair that the retry's phase 1 simply
		// re-logs; unsafe torn prefixes are overwritten by the identical
		// values.
		bo := wal.NewBackoff(transientRetryBase, transientRetryCap)
		for attempt := 1; err != nil && attempt <= m.cfg.TransientRetries && wal.IsTransient(err); attempt++ {
			backoff := bo.Next()
			m.obs.retries.Inc()
			m.obs.retryBackoffNs.ObserveDuration(backoff)
			time.Sleep(backoff)
			err = m.store.WriteBatch(entries, mode)
		}
		if err != nil {
			return nil, err
		}
	}

	// Remove the node: its operations are installed.
	view, err := m.wg.Remove(id)
	if err != nil {
		return nil, err
	}
	m.statsMu.Lock()
	m.stats.Installs++
	m.stats.ObjectsFlushed += int64(len(view.Vars))
	m.stats.InstalledNotFlushed += int64(len(view.Notx))
	m.statsMu.Unlock()
	m.obs.flushSetSize.Observe(int64(len(view.Vars)))
	m.obs.notxSize.Observe(int64(len(view.Notx)))
	if m.obs.wgNodes != nil {
		m.obs.wgNodes.Set(int64(m.wg.Len()))
		m.obs.wgOps.Set(int64(m.wg.OpCount()))
	}
	if m.cfg.InstallTrace != nil {
		m.cfg.InstallTrace(view)
	}

	// Advance rSIs: "we advance the rSI of an object exactly when we
	// install operations that write it, whether or not the object is
	// flushed" (Section 5).
	installed := make(map[op.SI]bool, len(view.Ops))
	var opLSNs []op.SI
	for _, o := range view.Ops {
		installed[o.LSN] = true
		opLSNs = append(opLSNs, o.LSN)
	}
	var flushed, unflushed []wal.ObjectRSI
	for _, x := range view.Vars {
		e, _ := m.lookup(x)
		e.pending = prunePending(e.pending, installed)
		if len(e.pending) != 0 {
			return nil, fmt.Errorf("cache: flushed object %q still has uninstalled writes %v", x, e.pending)
		}
		e.dirty = false
		flushed = append(flushed, wal.ObjectRSI{ID: x, RSI: e.rsi()})
		if !e.exists {
			// Terminated objects leave the object table entirely.
			m.remove(x)
		}
	}
	for _, x := range view.Notx {
		e, ok := m.lookup(x)
		if !ok {
			continue
		}
		e.pending = prunePending(e.pending, installed)
		// The object stays dirty: its cached value comes from the later
		// blind write that made it unexposed, and that write is still
		// uninstalled.  Its rSI is that write's lSI.
		e.dirty = len(e.pending) > 0
		unflushed = append(unflushed, wal.ObjectRSI{ID: x, RSI: e.rsi()})
	}

	// Log the installation (lazily; no force needed — Section 5 notes the
	// vSI check covers a lost install record).
	if m.cfg.LogInstalls {
		rec := wal.NewInstallRecord(flushed, unflushed, opLSNs)
		if len(view.Vars) == 1 && len(view.Notx) == 0 {
			// Physiological special case: a plain flush record suffices.
			rec = wal.NewFlushRecord(view.Vars[0], view.Lastw[view.Vars[0]])
		}
		if _, err := m.log.Append(rec); err != nil {
			return nil, err
		}
	}
	if m.obs.installNs.Enabled() {
		m.obs.installNs.Since(installStart)
	}
	return view.Vars, nil
}

// identityWrite logs and applies W_IP(x, val(x)) — Section 4's CM-initiated
// write.  The value does not change; the write is logged physically.  For an
// object whose lifetime has already been terminated (it sits in the flush
// set only to propagate its deletion), the CM issues a re-delete instead:
// a delete is equally a blind write, peels the object out of the flush set
// the same way, and costs a few bytes rather than a value.
func (m *Manager) identityWrite(x op.ObjectID) error {
	e, ok := m.lookup(x)
	if !ok {
		return fmt.Errorf("cache: identity write of missing object %q", x)
	}
	var o *op.Operation
	if e.exists {
		o = op.NewIdentityWrite(x, e.val)
	} else {
		o = op.NewDelete(x)
	}
	if err := m.Execute(o); err != nil {
		return err
	}
	m.statsMu.Lock()
	m.stats.IdentityWrites++
	m.statsMu.Unlock()
	return nil
}

// PurgeAll installs nodes until the write graph is empty (a full cache
// purge: every logged operation becomes installed).
func (m *Manager) PurgeAll() error {
	for {
		_, err := m.InstallMinimal()
		if errors.Is(err, ErrNothingToInstall) {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// EvictClean drops the clean object x from the cache; dirty objects cannot
// be evicted ("we continue to require that an object be clean before it can
// be dropped from the cache", Section 4).
func (m *Manager) EvictClean(x op.ObjectID) error {
	e, ok := m.lookup(x)
	if !ok {
		return nil
	}
	if e.dirty {
		return fmt.Errorf("cache: cannot evict dirty object %q (rSI %d)", x, e.rsi())
	}
	m.remove(x)
	m.statsMu.Lock()
	m.stats.Evictions++
	m.statsMu.Unlock()
	return nil
}

// ---------------------------------------------------------------------------
// Checkpoints and truncation.
// ---------------------------------------------------------------------------

// DirtyTable returns the current dirty object table as checkpoint entries,
// sorted by id.
func (m *Manager) DirtyTable() []wal.DirtyEntry {
	var out []wal.DirtyEntry
	m.forEach(func(x op.ObjectID, e *entry) {
		if e.dirty {
			out = append(out, wal.DirtyEntry{ID: x, RSI: e.rsi()})
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Checkpoint writes a checkpoint record carrying the dirty object table and
// forces the log.  It returns the checkpoint's LSN.
func (m *Manager) Checkpoint() (op.SI, error) {
	rec := wal.NewCheckpointRecord(m.DirtyTable())
	lsn, err := m.log.Append(rec)
	if err != nil {
		return 0, err
	}
	if err := m.log.Force(); err != nil {
		return 0, err
	}
	m.statsMu.Lock()
	m.stats.Checkpoints++
	m.statsMu.Unlock()
	return lsn, nil
}

// TruncationPoint returns the LSN before which the log may be truncated:
// the minimum rSI over dirty objects, bounded by the given checkpoint LSN.
// Every uninstalled operation has an LSN >= this point.
func (m *Manager) TruncationPoint(checkpointLSN op.SI) op.SI {
	min := checkpointLSN
	m.forEach(func(_ op.ObjectID, e *entry) {
		if e.dirty && e.rsi() < min {
			min = e.rsi()
		}
	})
	return min
}

// CheckpointAndTruncate checkpoints and then truncates the durable log
// before the truncation point.
func (m *Manager) CheckpointAndTruncate() (op.SI, error) {
	lsn, err := m.Checkpoint()
	if err != nil {
		return 0, err
	}
	if err := m.log.Truncate(m.TruncationPoint(lsn)); err != nil {
		return 0, err
	}
	return lsn, nil
}

// Crash discards all volatile cache-manager state, simulating a crash.
func (m *Manager) Crash() {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		sh.m = make(map[op.ObjectID]*entry)
		sh.mu.Unlock()
	}
	m.wg = writegraph.New(m.cfg.Policy)
	m.obs.wgNodes.Set(0)
	m.obs.wgOps.Set(0)
}

func prunePending(pending []op.SI, installed map[op.SI]bool) []op.SI {
	out := pending[:0]
	for _, l := range pending {
		if !installed[l] {
			out = append(out, l)
		}
	}
	return out
}

func containsObj(ids []op.ObjectID, x op.ObjectID) bool {
	for _, id := range ids {
		if id == x {
			return true
		}
	}
	return false
}
