// Package op defines the operation model of Lomet & Tuttle's logical-logging
// recovery framework (SIGMOD 1999).
//
// An operation O is characterized by the objects it reads (readset(O)), the
// objects it writes (writeset(O)), and a deterministic transformation that
// maps the read values to the written values.  The taxonomy of Table 1 of the
// paper is reproduced here as operation kinds:
//
//	Ex(A)          application execute: reads and writes A          (physiological)
//	R(A,X)         application read:    reads A,X, writes A         (logical, A-form)
//	W_P(X,v)       physical write:      writes X with logged v      (physical)
//	W_PL(X)        physiological write: reads and writes X          (physiological)
//	W_L(A,X)       logical write:       reads A, writes X           (logical, B-form)
//	W_IP(X,val(X)) CM identity write:   writes X with its own value (physical)
//
// The "A-form" and "B-form" names refer to operations A (Y <- f(X,Y)) and
// B (X <- g(Y)) of Figure 1 of the paper.
//
// Values are opaque byte slices.  Transformations are registered,
// deterministic Go functions identified by a FuncID; a logical log record
// carries only the function id, its parameters, and the read/write set object
// ids, never the data values — that is the paper's entire point.
package op

import (
	"fmt"
	"sort"
	"strings"
)

// ObjectID names a recoverable object: a database page, a file, an
// application's volatile state, etc.  The paper's key economy is that logging
// an identifier (≤ a few dozen bytes) replaces logging the object value
// (page-sized or much larger).
type ObjectID string

// SI is a state identifier.  SIs increase monotonically across all objects;
// we use log sequence numbers as SIs throughout, as the paper suggests
// ("Frequently log sequence numbers (LSNs) are used as SIs").  The zero SI is
// reserved and never assigned to a logged operation.
type SI uint64

// NilSI is the reserved zero state identifier, used for "no SI yet".
const NilSI SI = 0

// Kind classifies an operation per Table 1 of the paper.
type Kind uint8

const (
	// KindInvalid is the zero Kind and is never valid on a real operation.
	KindInvalid Kind = iota
	// KindExecute is Ex(A): an application execution step between
	// recoverable calls; reads and writes the application state object.
	KindExecute
	// KindRead is R(A,X): an application read; reads A and X, writes A.
	KindRead
	// KindPhysicalWrite is W_P(X,v): a blind physical write of a logged
	// value; reads nothing, writes X.
	KindPhysicalWrite
	// KindPhysioWrite is W_PL(X): a physiological write; reads and writes
	// the single object X, transforming it with a logged function.
	KindPhysioWrite
	// KindLogicalWrite is W_L(A,X): a logical write; reads A, writes X,
	// logging neither value.
	KindLogicalWrite
	// KindIdentityWrite is W_IP(X,val(X)): a cache-manager-initiated
	// identity write; writes X with its current value, which is logged
	// physically.  Reads(op) is empty by construction (Section 4).
	KindIdentityWrite
	// KindLogical is a general logical operation with arbitrary read and
	// write sets, e.g. the paper's operation A: Y <- f(X,Y).
	KindLogical
	// KindDelete terminates an object's lifetime.  The paper notes that a
	// delete advances the object's rSI to the delete's lSI and removes it
	// from the object table (Section 5).
	KindDelete
	// KindCreate brings an object into existence with a logged initial
	// value; like a physical write but flagged so substrates can
	// distinguish allocation.
	KindCreate
)

var kindNames = [...]string{
	KindInvalid:       "invalid",
	KindExecute:       "Ex",
	KindRead:          "R",
	KindPhysicalWrite: "W_P",
	KindPhysioWrite:   "W_PL",
	KindLogicalWrite:  "W_L",
	KindIdentityWrite: "W_IP",
	KindLogical:       "L",
	KindDelete:        "Del",
	KindCreate:        "Cr",
}

// String returns the paper's notation for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is one of the defined operation kinds.
func (k Kind) Valid() bool {
	return k > KindInvalid && int(k) < len(kindNames)
}

// Physical reports whether operations of this kind carry their written
// values on the log (and therefore never need other objects at replay time).
func (k Kind) Physical() bool {
	switch k {
	case KindPhysicalWrite, KindIdentityWrite, KindCreate:
		return true
	}
	return false
}

// Logical reports whether operations of this kind may read recoverable
// objects other than the ones they write — the class of operations whose
// flush dependencies this paper is about.
func (k Kind) Logical() bool {
	switch k {
	case KindRead, KindLogicalWrite, KindLogical:
		return true
	}
	return false
}

// Operation is a single logged, replayable state transformation.  Operations
// are immutable once logged; the LSN is assigned by the log when the
// operation is appended (the WAL protocol) and doubles as the operation's
// state identifier (lSI).
type Operation struct {
	// LSN is the log sequence number / lSI of the operation.  NilSI until
	// the operation has been appended to the log.
	LSN SI
	// Kind classifies the operation per Table 1.
	Kind Kind
	// Func identifies the registered transformation replayed at redo time.
	// Empty for pure physical writes (value is taken from Values).
	Func FuncID
	// Params are the logged parameters of Func (e.g. the bytes an
	// application execution step consumed, a sort's comparator name, a
	// split key).  Opaque to the recovery system.
	Params []byte
	// ReadSet lists objects whose current values are inputs to Func, in a
	// canonical (sorted, de-duplicated) order.
	ReadSet []ObjectID
	// WriteSet lists the objects the operation writes, canonical order.
	WriteSet []ObjectID
	// Values carries logged data values for physical kinds (W_P, W_IP,
	// Create): the value written per object.  Nil for logical and
	// physiological kinds — again, that is the point of the paper.
	Values map[ObjectID][]byte
	// Deletes lists objects whose lifetime this operation terminates.
	// For KindDelete it equals WriteSet.
	Deletes []ObjectID
}

// Validate checks the structural invariants of an operation.  It does not
// require an LSN (operations are validated before logging).
func (o *Operation) Validate() error {
	if o == nil {
		return fmt.Errorf("op: nil operation")
	}
	if !o.Kind.Valid() {
		return fmt.Errorf("op: invalid kind %d", o.Kind)
	}
	if len(o.WriteSet) == 0 {
		return fmt.Errorf("op %s: empty writeset", o.Kind)
	}
	if !isCanonical(o.ReadSet) {
		return fmt.Errorf("op %s: readset not canonical: %v", o.Kind, o.ReadSet)
	}
	if !isCanonical(o.WriteSet) {
		return fmt.Errorf("op %s: writeset not canonical: %v", o.Kind, o.WriteSet)
	}
	switch o.Kind {
	case KindPhysicalWrite, KindIdentityWrite, KindCreate:
		if len(o.ReadSet) != 0 {
			return fmt.Errorf("op %s: physical kinds must have empty readset", o.Kind)
		}
		for _, x := range o.WriteSet {
			if _, ok := o.Values[x]; !ok {
				return fmt.Errorf("op %s: missing logged value for %q", o.Kind, x)
			}
		}
	case KindPhysioWrite, KindExecute:
		if len(o.WriteSet) != 1 {
			return fmt.Errorf("op %s: physiological kinds write exactly one object", o.Kind)
		}
		if len(o.ReadSet) != 1 || o.ReadSet[0] != o.WriteSet[0] {
			return fmt.Errorf("op %s: physiological kinds read exactly the written object", o.Kind)
		}
		if o.Func == "" {
			return fmt.Errorf("op %s: missing transformation function", o.Kind)
		}
	case KindDelete:
		// Deletes carry no function and no values.
	default:
		if o.Func == "" {
			return fmt.Errorf("op %s: missing transformation function", o.Kind)
		}
	}
	if o.Kind != KindPhysicalWrite && o.Kind != KindIdentityWrite && o.Kind != KindCreate && len(o.Values) != 0 {
		return fmt.Errorf("op %s: logical/physiological operations must not log values", o.Kind)
	}
	return nil
}

// Reads reports whether the operation reads x.
func (o *Operation) Reads(x ObjectID) bool { return containsID(o.ReadSet, x) }

// Writes reports whether the operation writes x.
func (o *Operation) Writes(x ObjectID) bool { return containsID(o.WriteSet, x) }

// Touches reports whether the operation reads or writes x.
func (o *Operation) Touches(x ObjectID) bool { return o.Reads(x) || o.Writes(x) }

// Exp returns exp(Op) = writeset(Op) ∩ readset(Op): the objects whose updates
// depend on their own previous values and hence are unavoidably exposed
// (Table 1 of the paper).  Result is in canonical order.
func (o *Operation) Exp() []ObjectID {
	var out []ObjectID
	for _, x := range o.WriteSet {
		if containsID(o.ReadSet, x) {
			out = append(out, x)
		}
	}
	return out
}

// NotExp returns notexp(Op) = writeset(Op) − readset(Op): the objects the
// operation updates "blindly", whose previous values become unexposed once
// the operation is logged (Table 1).  Result is in canonical order.
func (o *Operation) NotExp() []ObjectID {
	var out []ObjectID
	for _, x := range o.WriteSet {
		if !containsID(o.ReadSet, x) {
			out = append(out, x)
		}
	}
	return out
}

// ConflictsWith reports whether o and p conflict: one touches an object the
// other writes.  The stable log is kept in conflict order; with a single
// append-only log, LSN order is a legal conflict order.
func (o *Operation) ConflictsWith(p *Operation) bool {
	for _, x := range o.WriteSet {
		if p.Touches(x) {
			return true
		}
	}
	for _, x := range p.WriteSet {
		if o.Touches(x) {
			return true
		}
	}
	return false
}

// String renders the operation in the paper's notation, e.g.
// "A@17 L f(Y; X,Y)" for Y <- f(X,Y) logged at LSN 17.
func (o *Operation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%d %s(", o.Kind, o.LSN, funcOrKind(o))
	b.WriteString(joinIDs(o.WriteSet))
	if len(o.ReadSet) > 0 {
		b.WriteString("; ")
		b.WriteString(joinIDs(o.ReadSet))
	}
	b.WriteString(")")
	return b.String()
}

func funcOrKind(o *Operation) string {
	if o.Func != "" {
		return string(o.Func)
	}
	return o.Kind.String()
}

func joinIDs(ids []ObjectID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return strings.Join(parts, ",")
}

// Clone returns a deep copy of the operation.  Recovery replays operate on
// clones so the in-memory history is never aliased with engine state.
func (o *Operation) Clone() *Operation {
	c := &Operation{
		LSN:    o.LSN,
		Kind:   o.Kind,
		Func:   o.Func,
		Params: append([]byte(nil), o.Params...),
	}
	c.ReadSet = append([]ObjectID(nil), o.ReadSet...)
	c.WriteSet = append([]ObjectID(nil), o.WriteSet...)
	c.Deletes = append([]ObjectID(nil), o.Deletes...)
	if o.Values != nil {
		c.Values = make(map[ObjectID][]byte, len(o.Values))
		for k, v := range o.Values {
			c.Values[k] = append([]byte(nil), v...)
		}
	}
	return c
}

// Canonicalize sorts and de-duplicates ids in place and returns the result.
func Canonicalize(ids []ObjectID) []ObjectID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	var prev ObjectID
	for i, id := range ids {
		if i == 0 || id != prev {
			out = append(out, id)
		}
		prev = id
	}
	return out
}

func isCanonical(ids []ObjectID) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			return false
		}
	}
	return true
}

func containsID(ids []ObjectID, x ObjectID) bool {
	// Sets are canonical (sorted); binary search.
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ids) && ids[lo] == x
}
