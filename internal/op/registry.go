package op

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// FuncID identifies a registered, deterministic transformation function.
// FuncIDs are stable names recorded on the log; at replay time the recovery
// process looks the function up and re-executes it against the recovering
// state, which is how a logical operation regenerates values that were never
// logged.
type FuncID string

// TransformFunc is a deterministic transformation.  It receives the logged
// parameters and the current values of the operation's readset and must
// return the new values for the operation's writeset.  It must not mutate
// the input slices and must be a pure function of (params, reads) — replay
// correctness depends on it.
type TransformFunc func(params []byte, reads map[ObjectID][]byte) (map[ObjectID][]byte, error)

// Registry maps FuncIDs to transformation functions.  A Registry is safe for
// concurrent use.  Engines share one Registry between normal execution and
// recovery so that logged FuncIDs resolve identically in both.
type Registry struct {
	mu    sync.RWMutex
	funcs map[FuncID]TransformFunc
}

// NewRegistry returns a registry pre-populated with the builtin functions
// (see builtins.go): identity, const, copy, concat, sort, xor, append,
// counter, and the record-level helpers used by the substrates.
func NewRegistry() *Registry {
	r := &Registry{funcs: make(map[FuncID]TransformFunc)}
	registerBuiltins(r)
	return r
}

// Register installs fn under id.  It is an error to register the same id
// twice with a different function; re-registration panics to surface wiring
// bugs early (registration happens at init time, not on data paths).
func (r *Registry) Register(id FuncID, fn TransformFunc) {
	if id == "" {
		panic("op: empty FuncID")
	}
	if fn == nil {
		panic(fmt.Sprintf("op: nil TransformFunc for %q", id))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.funcs[id]; dup {
		panic(fmt.Sprintf("op: duplicate registration of FuncID %q", id))
	}
	r.funcs[id] = fn
}

// Lookup returns the function registered under id.
func (r *Registry) Lookup(id FuncID) (TransformFunc, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.funcs[id]
	return fn, ok
}

// IDs returns the sorted list of registered FuncIDs.
func (r *Registry) IDs() []FuncID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]FuncID, 0, len(r.funcs))
	for id := range r.funcs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Apply executes operation o against the supplied read values and returns
// the values o writes.  For physical kinds the logged values are returned
// directly.  For deletes, every written object maps to nil (terminated).
//
// Apply enforces the operation contract: the function may only read objects
// in readset(o) (others are simply absent from reads) and the returned map
// must write exactly writeset(o).  A violation is reported as an error; the
// recovery process uses this to "void" trial executions (Section 5 of the
// paper: a re-execution that attempts to update more than the original
// writeset is detected and terminated).
func (r *Registry) Apply(o *Operation, reads map[ObjectID][]byte) (map[ObjectID][]byte, error) {
	switch o.Kind {
	case KindPhysicalWrite, KindIdentityWrite, KindCreate:
		out := make(map[ObjectID][]byte, len(o.WriteSet))
		for _, x := range o.WriteSet {
			v, ok := o.Values[x]
			if !ok {
				return nil, fmt.Errorf("op: %s lacks logged value for %q", o, x)
			}
			out[x] = append([]byte(nil), v...)
		}
		return out, nil
	case KindDelete:
		out := make(map[ObjectID][]byte, len(o.WriteSet))
		for _, x := range o.WriteSet {
			out[x] = nil
		}
		return out, nil
	}
	fn, ok := r.Lookup(o.Func)
	if !ok {
		return nil, fmt.Errorf("op: unknown FuncID %q in %s", o.Func, o)
	}
	in := make(map[ObjectID][]byte, len(o.ReadSet))
	for _, x := range o.ReadSet {
		v, ok := reads[x]
		if !ok {
			return nil, fmt.Errorf("op: missing read value for %q in %s", x, o)
		}
		in[x] = v
	}
	out, err := fn(o.Params, in)
	if err != nil {
		return nil, fmt.Errorf("op: %s: %w", o, err)
	}
	if len(out) != len(o.WriteSet) {
		return nil, &WritesetViolationError{Op: o, Got: keysOf(out)}
	}
	for x := range out {
		if !o.Writes(x) {
			return nil, &WritesetViolationError{Op: o, Got: keysOf(out)}
		}
	}
	return out, nil
}

// WritesetViolationError reports a transformation that attempted to update
// objects outside the operation's logged writeset.  During recovery's trial
// execution this voids the redo (Section 5, case 2b).
type WritesetViolationError struct {
	Op  *Operation
	Got []ObjectID
}

func (e *WritesetViolationError) Error() string {
	return fmt.Sprintf("op: %s wrote %v, outside writeset %v", e.Op, e.Got, e.Op.WriteSet)
}

func keysOf(m map[ObjectID][]byte) []ObjectID {
	ids := make([]ObjectID, 0, len(m))
	for k := range m {
		ids = append(ids, k)
	}
	return Canonicalize(ids)
}

// ---------------------------------------------------------------------------
// Constructors for the Table 1 taxonomy.
// ---------------------------------------------------------------------------

// NewLogical builds a general logical operation: writeSet <- fn(readSet),
// e.g. the paper's operation A (Y <- f(X,Y)) or B (X <- g(Y)).
func NewLogical(fn FuncID, params []byte, readSet, writeSet []ObjectID) *Operation {
	return &Operation{
		Kind:     KindLogical,
		Func:     fn,
		Params:   params,
		ReadSet:  Canonicalize(append([]ObjectID(nil), readSet...)),
		WriteSet: Canonicalize(append([]ObjectID(nil), writeSet...)),
	}
}

// NewExecute builds Ex(A): one application execution step, a physiological
// operation on the application-state object A.
func NewExecute(app ObjectID, fn FuncID, params []byte) *Operation {
	return &Operation{
		Kind:     KindExecute,
		Func:     fn,
		Params:   params,
		ReadSet:  []ObjectID{app},
		WriteSet: []ObjectID{app},
	}
}

// NewAppRead builds R(A,X): application A reads object X into its input
// buffer, transforming A.  Logical: neither X's value nor A's new state is
// logged.
func NewAppRead(app, x ObjectID, fn FuncID, params []byte) *Operation {
	return &Operation{
		Kind:     KindRead,
		Func:     fn,
		Params:   params,
		ReadSet:  Canonicalize([]ObjectID{app, x}),
		WriteSet: []ObjectID{app},
	}
}

// NewLogicalWrite builds W_L(A,X): application A writes object X from its
// output buffer.  Logical: X's new value is read from A at replay time, so it
// is not logged.  This is the operation class [7] had to forbid and that this
// paper's rW/identity-write machinery makes affordable.
func NewLogicalWrite(app, x ObjectID, fn FuncID, params []byte) *Operation {
	return &Operation{
		Kind:     KindLogicalWrite,
		Func:     fn,
		Params:   params,
		ReadSet:  []ObjectID{app},
		WriteSet: []ObjectID{x},
	}
}

// NewPhysicalWrite builds W_P(X,v): a blind physical write; v is logged.
func NewPhysicalWrite(x ObjectID, v []byte) *Operation {
	return &Operation{
		Kind:     KindPhysicalWrite,
		WriteSet: []ObjectID{x},
		Values:   map[ObjectID][]byte{x: append([]byte(nil), v...)},
	}
}

// NewPhysioWrite builds W_PL(X): a physiological update of the single object
// X, X <- fn(X).
func NewPhysioWrite(x ObjectID, fn FuncID, params []byte) *Operation {
	return &Operation{
		Kind:     KindPhysioWrite,
		Func:     fn,
		Params:   params,
		ReadSet:  []ObjectID{x},
		WriteSet: []ObjectID{x},
	}
}

// NewIdentityWrite builds W_IP(X,val): the cache manager's identity write of
// X with its current cached value val, logged physically (Section 4).
func NewIdentityWrite(x ObjectID, val []byte) *Operation {
	return &Operation{
		Kind:     KindIdentityWrite,
		WriteSet: []ObjectID{x},
		Values:   map[ObjectID][]byte{x: append([]byte(nil), val...)},
	}
}

// NewCreate builds an object-creation operation with initial value v.
func NewCreate(x ObjectID, v []byte) *Operation {
	return &Operation{
		Kind:     KindCreate,
		WriteSet: []ObjectID{x},
		Values:   map[ObjectID][]byte{x: append([]byte(nil), v...)},
	}
}

// NewDelete builds a lifetime-terminating delete of the given objects.
func NewDelete(objs ...ObjectID) *Operation {
	ws := Canonicalize(append([]ObjectID(nil), objs...))
	return &Operation{
		Kind:     KindDelete,
		WriteSet: ws,
		Deletes:  append([]ObjectID(nil), ws...),
	}
}

// ---------------------------------------------------------------------------
// Parameter encoding helpers shared by substrates.
// ---------------------------------------------------------------------------

// EncodeParams packs byte-slice fields into a single params blob
// (uvarint-length-prefixed).  The inverse is DecodeParams.
func EncodeParams(fields ...[]byte) []byte {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	for _, f := range fields {
		n := binary.PutUvarint(tmp[:], uint64(len(f)))
		buf.Write(tmp[:n])
		buf.Write(f)
	}
	return buf.Bytes()
}

// DecodeParams unpacks a blob produced by EncodeParams.
func DecodeParams(p []byte) ([][]byte, error) {
	var out [][]byte
	for len(p) > 0 {
		l, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, fmt.Errorf("op: corrupt params")
		}
		p = p[n:]
		if uint64(len(p)) < l {
			return nil, fmt.Errorf("op: truncated params")
		}
		out = append(out, p[:l:l])
		p = p[l:]
	}
	return out, nil
}
