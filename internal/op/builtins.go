package op

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// Builtin FuncIDs.  These cover the transformation shapes used by the paper's
// examples and by the substrate packages.  Substrates may register additional
// functions on the same registry.
const (
	// FuncIdentity: single read object, single write object, output equals
	// input.  Y <- X when read≠write, or a no-op self-write.
	FuncIdentity FuncID = "builtin.identity"
	// FuncConst: writes params as the new value of the single write object.
	// Equivalent to a physical write expressed as a function.
	FuncConst FuncID = "builtin.const"
	// FuncCopy: B-form copy, X <- copy(Y): the single write object receives
	// the value of the single read object (the paper's file-copy and B-tree
	// split building block).
	FuncCopy FuncID = "builtin.copy"
	// FuncConcat: A-form combine, Y <- Y || X: appends the other read
	// object's value to the written object's own prior value.  Params name
	// the "other" object id.
	FuncConcat FuncID = "builtin.concat"
	// FuncSort: B-form sort, Y <- sort(X): write object receives the
	// byte-sorted value of the read object (the paper's file-sort example).
	FuncSort FuncID = "builtin.sort"
	// FuncXor: A-form mix, Y <- Y XOR X (repeating X cyclically).  Used by
	// tests because it is self-inverse and order-sensitive.
	FuncXor FuncID = "builtin.xor"
	// FuncAppend: physiological append, X <- X || params.
	FuncAppend FuncID = "builtin.append"
	// FuncCounterAdd: physiological counter, X <- uint64(X) + uvarint(params).
	FuncCounterAdd FuncID = "builtin.counter.add"
	// FuncUpperHalf / FuncLowerHalf: B-tree-split style halves.
	// Y <- upper half of X (logical, B-form); X <- lower half of X
	// (physiological truncate).
	FuncUpperHalf FuncID = "builtin.upperhalf"
	FuncLowerHalf FuncID = "builtin.lowerhalf"
)

func registerBuiltins(r *Registry) {
	r.Register(FuncIdentity, builtinIdentity)
	r.Register(FuncConst, builtinConst)
	r.Register(FuncCopy, builtinCopy)
	r.Register(FuncConcat, builtinConcat)
	r.Register(FuncSort, builtinSort)
	r.Register(FuncXor, builtinXor)
	r.Register(FuncAppend, builtinAppend)
	r.Register(FuncCounterAdd, builtinCounterAdd)
	r.Register(FuncUpperHalf, builtinUpperHalf)
	r.Register(FuncLowerHalf, builtinLowerHalf)
}

func soleRead(reads map[ObjectID][]byte) (ObjectID, []byte, error) {
	if len(reads) != 1 {
		return "", nil, fmt.Errorf("expected exactly 1 read object, got %d", len(reads))
	}
	for id, v := range reads {
		return id, v, nil
	}
	panic("unreachable")
}

func builtinIdentity(params []byte, reads map[ObjectID][]byte) (map[ObjectID][]byte, error) {
	id, v, err := soleRead(reads)
	if err != nil {
		return nil, err
	}
	target := ObjectID(params)
	if target == "" {
		target = id
	}
	return map[ObjectID][]byte{target: append([]byte(nil), v...)}, nil
}

// builtinConst params encoding: EncodeParams(target, value).
func builtinConst(params []byte, _ map[ObjectID][]byte) (map[ObjectID][]byte, error) {
	fields, err := DecodeParams(params)
	if err != nil || len(fields) != 2 {
		return nil, fmt.Errorf("const: want (target, value) params: %v", err)
	}
	return map[ObjectID][]byte{ObjectID(fields[0]): append([]byte(nil), fields[1]...)}, nil
}

// builtinCopy params: the target object id.  X <- copy(Y).
func builtinCopy(params []byte, reads map[ObjectID][]byte) (map[ObjectID][]byte, error) {
	_, v, err := soleRead(reads)
	if err != nil {
		return nil, err
	}
	if len(params) == 0 {
		return nil, fmt.Errorf("copy: params must name the target object")
	}
	return map[ObjectID][]byte{ObjectID(params): append([]byte(nil), v...)}, nil
}

// builtinConcat params: EncodeParams(selfID, otherID).  self <- self || other.
func builtinConcat(params []byte, reads map[ObjectID][]byte) (map[ObjectID][]byte, error) {
	fields, err := DecodeParams(params)
	if err != nil || len(fields) != 2 {
		return nil, fmt.Errorf("concat: want (self, other) params: %v", err)
	}
	self, other := ObjectID(fields[0]), ObjectID(fields[1])
	sv, ok := reads[self]
	if !ok {
		return nil, fmt.Errorf("concat: missing self %q", self)
	}
	ov, ok := reads[other]
	if !ok {
		return nil, fmt.Errorf("concat: missing other %q", other)
	}
	out := make([]byte, 0, len(sv)+len(ov))
	out = append(out, sv...)
	out = append(out, ov...)
	return map[ObjectID][]byte{self: out}, nil
}

// builtinSort params: the target object id.  Y <- sort(X), byte-wise.
func builtinSort(params []byte, reads map[ObjectID][]byte) (map[ObjectID][]byte, error) {
	_, v, err := soleRead(reads)
	if err != nil {
		return nil, err
	}
	if len(params) == 0 {
		return nil, fmt.Errorf("sort: params must name the target object")
	}
	out := append([]byte(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return map[ObjectID][]byte{ObjectID(params): out}, nil
}

// builtinXor params: EncodeParams(selfID, otherID).  self <- self XOR other
// (other repeated cyclically over self's length; empty other is a no-op).
func builtinXor(params []byte, reads map[ObjectID][]byte) (map[ObjectID][]byte, error) {
	fields, err := DecodeParams(params)
	if err != nil || len(fields) != 2 {
		return nil, fmt.Errorf("xor: want (self, other) params: %v", err)
	}
	self, other := ObjectID(fields[0]), ObjectID(fields[1])
	sv, ok := reads[self]
	if !ok {
		return nil, fmt.Errorf("xor: missing self %q", self)
	}
	ov, ok := reads[other]
	if !ok {
		return nil, fmt.Errorf("xor: missing other %q", other)
	}
	out := append([]byte(nil), sv...)
	if len(ov) > 0 {
		for i := range out {
			out[i] ^= ov[i%len(ov)]
		}
	}
	return map[ObjectID][]byte{self: out}, nil
}

func builtinAppend(params []byte, reads map[ObjectID][]byte) (map[ObjectID][]byte, error) {
	id, v, err := soleRead(reads)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(v)+len(params))
	out = append(out, v...)
	out = append(out, params...)
	return map[ObjectID][]byte{id: out}, nil
}

func builtinCounterAdd(params []byte, reads map[ObjectID][]byte) (map[ObjectID][]byte, error) {
	id, v, err := soleRead(reads)
	if err != nil {
		return nil, err
	}
	delta, n := binary.Uvarint(params)
	if n <= 0 {
		return nil, fmt.Errorf("counter.add: bad delta")
	}
	var cur uint64
	if len(v) == 8 {
		cur = binary.BigEndian.Uint64(v)
	} else if len(v) != 0 {
		return nil, fmt.Errorf("counter.add: value is not a counter (len %d)", len(v))
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, cur+delta)
	return map[ObjectID][]byte{id: out}, nil
}

// builtinUpperHalf params: the target (new) object id.  Y <- X[len/2:].
func builtinUpperHalf(params []byte, reads map[ObjectID][]byte) (map[ObjectID][]byte, error) {
	_, v, err := soleRead(reads)
	if err != nil {
		return nil, err
	}
	if len(params) == 0 {
		return nil, fmt.Errorf("upperhalf: params must name the target object")
	}
	half := v[len(v)/2:]
	return map[ObjectID][]byte{ObjectID(params): append([]byte(nil), half...)}, nil
}

func builtinLowerHalf(_ []byte, reads map[ObjectID][]byte) (map[ObjectID][]byte, error) {
	id, v, err := soleRead(reads)
	if err != nil {
		return nil, err
	}
	half := v[:len(v)/2]
	return map[ObjectID][]byte{id: append([]byte(nil), half...)}, nil
}

// Equal reports whether two values are byte-equal (nil == empty).
func Equal(a, b []byte) bool { return bytes.Equal(a, b) }
