package op

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindExecute:       "Ex",
		KindRead:          "R",
		KindPhysicalWrite: "W_P",
		KindPhysioWrite:   "W_PL",
		KindLogicalWrite:  "W_L",
		KindIdentityWrite: "W_IP",
		KindLogical:       "L",
		KindDelete:        "Del",
		KindCreate:        "Cr",
		KindInvalid:       "invalid",
		Kind(200):         "Kind(200)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindClassification(t *testing.T) {
	if !KindPhysicalWrite.Physical() || !KindIdentityWrite.Physical() || !KindCreate.Physical() {
		t.Error("physical kinds must report Physical")
	}
	if KindLogical.Physical() || KindRead.Physical() {
		t.Error("logical kinds must not report Physical")
	}
	if !KindRead.Logical() || !KindLogicalWrite.Logical() || !KindLogical.Logical() {
		t.Error("logical kinds must report Logical")
	}
	if KindExecute.Logical() || KindPhysioWrite.Logical() {
		t.Error("physiological kinds read only the object they write; not Logical")
	}
	if KindInvalid.Valid() || Kind(99).Valid() {
		t.Error("invalid kinds must not be Valid")
	}
	if !KindExecute.Valid() {
		t.Error("Ex must be Valid")
	}
}

func TestCanonicalize(t *testing.T) {
	got := Canonicalize([]ObjectID{"c", "a", "b", "a", "c"})
	want := []ObjectID{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Canonicalize = %v, want %v", got, want)
	}
	if got := Canonicalize(nil); len(got) != 0 {
		t.Errorf("Canonicalize(nil) = %v", got)
	}
}

func TestExpNotExp(t *testing.T) {
	// Operation A of Figure 1: Y <- f(X,Y).  exp = {Y}, notexp = {}.
	a := NewLogical(FuncXor, EncodeParams([]byte("Y"), []byte("X")), []ObjectID{"X", "Y"}, []ObjectID{"Y"})
	if !reflect.DeepEqual(a.Exp(), []ObjectID{"Y"}) {
		t.Errorf("exp(A) = %v, want [Y]", a.Exp())
	}
	if len(a.NotExp()) != 0 {
		t.Errorf("notexp(A) = %v, want empty", a.NotExp())
	}
	// Operation B of Figure 1: X <- g(Y).  exp = {}, notexp = {X}.
	b := NewLogical(FuncCopy, []byte("X"), []ObjectID{"Y"}, []ObjectID{"X"})
	if len(b.Exp()) != 0 {
		t.Errorf("exp(B) = %v, want empty", b.Exp())
	}
	if !reflect.DeepEqual(b.NotExp(), []ObjectID{"X"}) {
		t.Errorf("notexp(B) = %v, want [X]", b.NotExp())
	}
}

func TestConflictsWith(t *testing.T) {
	a := NewLogical(FuncXor, nil, []ObjectID{"X", "Y"}, []ObjectID{"Y"})
	b := NewLogical(FuncCopy, []byte("X"), []ObjectID{"Y"}, []ObjectID{"X"})
	c := NewPhysicalWrite("Z", []byte("z"))
	if !a.ConflictsWith(b) {
		t.Error("A and B conflict (B writes X which A reads; A writes Y which B reads)")
	}
	if !b.ConflictsWith(a) {
		t.Error("conflict must be symmetric")
	}
	if a.ConflictsWith(c) || c.ConflictsWith(a) {
		t.Error("A and W_P(Z) do not conflict")
	}
}

func TestValidate(t *testing.T) {
	valid := []*Operation{
		NewLogical(FuncCopy, []byte("X"), []ObjectID{"Y"}, []ObjectID{"X"}),
		NewExecute("A", FuncAppend, []byte("step")),
		NewAppRead("A", "X", FuncConcat, EncodeParams([]byte("A"), []byte("X"))),
		NewLogicalWrite("A", "X", FuncCopy, []byte("X")),
		NewPhysicalWrite("X", []byte("v")),
		NewPhysioWrite("X", FuncAppend, []byte("v")),
		NewIdentityWrite("X", []byte("v")),
		NewCreate("X", []byte("v")),
		NewDelete("X", "Y"),
	}
	for i, o := range valid {
		if err := o.Validate(); err != nil {
			t.Errorf("valid op %d (%s): %v", i, o, err)
		}
	}

	invalid := []*Operation{
		nil,
		{Kind: KindInvalid, WriteSet: []ObjectID{"X"}},
		{Kind: KindLogical, Func: FuncCopy},                                                                   // empty writeset
		{Kind: KindLogical, Func: FuncCopy, WriteSet: []ObjectID{"b", "a"}},                                   // non-canonical
		{Kind: KindLogical, WriteSet: []ObjectID{"X"}},                                                        // missing func
		{Kind: KindPhysicalWrite, WriteSet: []ObjectID{"X"}},                                                  // missing value
		{Kind: KindPhysicalWrite, ReadSet: []ObjectID{"Y"}, WriteSet: []ObjectID{"X"}},                        // physical with readset
		{Kind: KindPhysioWrite, Func: FuncAppend, ReadSet: []ObjectID{"Y"}, WriteSet: []ObjectID{"X"}},        // physio read≠write
		{Kind: KindExecute, Func: FuncAppend, ReadSet: []ObjectID{"A"}, WriteSet: []ObjectID{"A", "B"}},       // physio multi-write
		{Kind: KindLogical, Func: FuncCopy, WriteSet: []ObjectID{"X"}, Values: map[ObjectID][]byte{"X": nil}}, // logical with values
	}
	for i, o := range invalid {
		if err := o.Validate(); err == nil {
			t.Errorf("invalid op %d unexpectedly validated: %+v", i, o)
		}
	}
}

func TestReadsWritesTouches(t *testing.T) {
	o := NewLogical(FuncXor, nil, []ObjectID{"A", "C"}, []ObjectID{"B", "C"})
	if !o.Reads("A") || !o.Reads("C") || o.Reads("B") {
		t.Error("Reads wrong")
	}
	if !o.Writes("B") || !o.Writes("C") || o.Writes("A") {
		t.Error("Writes wrong")
	}
	if !o.Touches("A") || !o.Touches("B") || o.Touches("Z") {
		t.Error("Touches wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	o := NewPhysicalWrite("X", []byte("abc"))
	o.LSN = 7
	o.Params = []byte("p")
	c := o.Clone()
	c.Values["X"][0] = 'z'
	c.Params[0] = 'q'
	c.WriteSet[0] = "Y"
	if string(o.Values["X"]) != "abc" || string(o.Params) != "p" || o.WriteSet[0] != "X" {
		t.Error("Clone aliased underlying storage")
	}
	if c.LSN != 7 || c.Kind != KindPhysicalWrite {
		t.Error("Clone lost fields")
	}
}

func TestString(t *testing.T) {
	a := NewLogical("f", nil, []ObjectID{"X", "Y"}, []ObjectID{"Y"})
	a.LSN = 3
	if got := a.String(); got != "L@3 f(Y; X,Y)" {
		t.Errorf("String() = %q", got)
	}
	d := NewDelete("X")
	if got := d.String(); got != "Del@0 Del(X)" {
		t.Errorf("String() = %q", got)
	}
}

func TestRegistryApplyPhysicalAndDelete(t *testing.T) {
	r := NewRegistry()
	w := NewPhysicalWrite("X", []byte("v1"))
	out, err := r.Apply(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out["X"]) != "v1" {
		t.Errorf("physical apply = %q", out["X"])
	}
	// Returned value must be a copy.
	out["X"][0] = 'z'
	if string(w.Values["X"]) != "v1" {
		t.Error("Apply aliased logged value")
	}

	d := NewDelete("X", "Y")
	out, err = r.Apply(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := out["X"]; !ok || v != nil {
		t.Errorf("delete apply X = %v, %v", v, ok)
	}
	if v, ok := out["Y"]; !ok || v != nil {
		t.Errorf("delete apply Y = %v, %v", v, ok)
	}
}

func TestRegistryApplyLogical(t *testing.T) {
	r := NewRegistry()
	b := NewLogical(FuncCopy, []byte("X"), []ObjectID{"Y"}, []ObjectID{"X"})
	out, err := r.Apply(b, map[ObjectID][]byte{"Y": []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if string(out["X"]) != "hello" {
		t.Errorf("copy = %q", out["X"])
	}
	// Missing read value.
	if _, err := r.Apply(b, map[ObjectID][]byte{}); err == nil {
		t.Error("expected error for missing read value")
	}
	// Unknown func.
	u := NewLogical("no.such.func", nil, []ObjectID{"Y"}, []ObjectID{"X"})
	if _, err := r.Apply(u, map[ObjectID][]byte{"Y": nil}); err == nil {
		t.Error("expected error for unknown FuncID")
	}
}

func TestRegistryWritesetViolation(t *testing.T) {
	r := NewRegistry()
	r.Register("test.rogue", func(_ []byte, _ map[ObjectID][]byte) (map[ObjectID][]byte, error) {
		return map[ObjectID][]byte{"OTHER": []byte("x")}, nil
	})
	o := NewLogical("test.rogue", nil, nil, []ObjectID{"X"})
	_, err := r.Apply(o, nil)
	var wv *WritesetViolationError
	if err == nil {
		t.Fatal("expected writeset violation")
	}
	if !asWritesetViolation(err, &wv) {
		t.Fatalf("expected WritesetViolationError, got %T: %v", err, err)
	}
	if wv.Error() == "" {
		t.Error("empty error message")
	}
}

func asWritesetViolation(err error, target **WritesetViolationError) bool {
	for err != nil {
		if v, ok := err.(*WritesetViolationError); ok {
			*target = v
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	r.Register(FuncCopy, builtinCopy)
}

func TestRegistryIDsSorted(t *testing.T) {
	r := NewRegistry()
	ids := r.IDs()
	if len(ids) == 0 {
		t.Fatal("no builtins registered")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Errorf("IDs not sorted: %v", ids)
		}
	}
}

func TestBuiltinConcatXorSortHalves(t *testing.T) {
	r := NewRegistry()

	concat := NewLogical(FuncConcat, EncodeParams([]byte("A"), []byte("X")), []ObjectID{"A", "X"}, []ObjectID{"A"})
	out, err := r.Apply(concat, map[ObjectID][]byte{"A": []byte("ab"), "X": []byte("cd")})
	if err != nil || string(out["A"]) != "abcd" {
		t.Errorf("concat = %q, %v", out["A"], err)
	}

	xor := NewLogical(FuncXor, EncodeParams([]byte("Y"), []byte("X")), []ObjectID{"X", "Y"}, []ObjectID{"Y"})
	out, err = r.Apply(xor, map[ObjectID][]byte{"Y": []byte{1, 2, 3}, "X": []byte{1}})
	if err != nil || !Equal(out["Y"], []byte{0, 3, 2}) {
		t.Errorf("xor = %v, %v", out["Y"], err)
	}
	// XOR twice restores the original.
	out2, err := r.Apply(xor, map[ObjectID][]byte{"Y": out["Y"], "X": []byte{1}})
	if err != nil || !Equal(out2["Y"], []byte{1, 2, 3}) {
		t.Errorf("xor∘xor = %v, %v", out2["Y"], err)
	}

	srt := NewLogical(FuncSort, []byte("Y"), []ObjectID{"X"}, []ObjectID{"Y"})
	out, err = r.Apply(srt, map[ObjectID][]byte{"X": []byte("dcba")})
	if err != nil || string(out["Y"]) != "abcd" {
		t.Errorf("sort = %q, %v", out["Y"], err)
	}

	up := NewLogical(FuncUpperHalf, []byte("Y"), []ObjectID{"X"}, []ObjectID{"Y"})
	out, err = r.Apply(up, map[ObjectID][]byte{"X": []byte("abcd")})
	if err != nil || string(out["Y"]) != "cd" {
		t.Errorf("upperhalf = %q, %v", out["Y"], err)
	}
	lo := NewPhysioWrite("X", FuncLowerHalf, nil)
	out, err = r.Apply(lo, map[ObjectID][]byte{"X": []byte("abcd")})
	if err != nil || string(out["X"]) != "ab" {
		t.Errorf("lowerhalf = %q, %v", out["X"], err)
	}
}

func TestBuiltinCounter(t *testing.T) {
	r := NewRegistry()
	params := make([]byte, 10)
	n := putUvarint(params, 5)
	add := NewPhysioWrite("C", FuncCounterAdd, params[:n])
	out, err := r.Apply(add, map[ObjectID][]byte{"C": nil})
	if err != nil {
		t.Fatal(err)
	}
	out, err = r.Apply(add, map[ObjectID][]byte{"C": out["C"]})
	if err != nil {
		t.Fatal(err)
	}
	if got := beUint64(out["C"]); got != 10 {
		t.Errorf("counter = %d, want 10", got)
	}
	if _, err := r.Apply(add, map[ObjectID][]byte{"C": []byte("bad")}); err == nil {
		t.Error("expected error for malformed counter")
	}
}

func TestBuiltinIdentityAndConst(t *testing.T) {
	r := NewRegistry()
	id := NewLogical(FuncIdentity, []byte("Y"), []ObjectID{"X"}, []ObjectID{"Y"})
	out, err := r.Apply(id, map[ObjectID][]byte{"X": []byte("v")})
	if err != nil || string(out["Y"]) != "v" {
		t.Errorf("identity = %q, %v", out["Y"], err)
	}
	cst := NewLogical(FuncConst, EncodeParams([]byte("X"), []byte("42")), nil, []ObjectID{"X"})
	out, err = r.Apply(cst, nil)
	if err != nil || string(out["X"]) != "42" {
		t.Errorf("const = %q, %v", out["X"], err)
	}
}

func TestEncodeDecodeParamsRoundTrip(t *testing.T) {
	f := func(a, b, c []byte) bool {
		enc := EncodeParams(a, b, c)
		dec, err := DecodeParams(enc)
		if err != nil || len(dec) != 3 {
			return false
		}
		return Equal(dec[0], a) && Equal(dec[1], b) && Equal(dec[2], c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := DecodeParams([]byte{0xff}); err == nil {
		t.Error("expected error for truncated params")
	}
	if _, err := DecodeParams([]byte{10, 'a'}); err == nil {
		t.Error("expected error for short payload")
	}
}

func TestApplyDeterminism(t *testing.T) {
	// Property: Apply is a pure function — same inputs, same outputs.
	r := NewRegistry()
	f := func(self, other []byte) bool {
		o := NewLogical(FuncXor, EncodeParams([]byte("Y"), []byte("X")), []ObjectID{"X", "Y"}, []ObjectID{"Y"})
		in := map[ObjectID][]byte{"Y": self, "X": other}
		o1, err1 := r.Apply(o, in)
		o2, err2 := r.Apply(o, in)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return Equal(o1["Y"], o2["Y"])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyDoesNotMutateInputs(t *testing.T) {
	r := NewRegistry()
	in := map[ObjectID][]byte{"X": []byte{9}, "Y": []byte{1, 2, 3}}
	o := NewLogical(FuncXor, EncodeParams([]byte("Y"), []byte("X")), []ObjectID{"X", "Y"}, []ObjectID{"Y"})
	if _, err := r.Apply(o, in); err != nil {
		t.Fatal(err)
	}
	if !Equal(in["Y"], []byte{1, 2, 3}) || !Equal(in["X"], []byte{9}) {
		t.Error("Apply mutated its inputs")
	}
}

func TestContainsIDBinarySearch(t *testing.T) {
	ids := []ObjectID{"a", "c", "e", "g"}
	for _, x := range ids {
		if !containsID(ids, x) {
			t.Errorf("containsID(%q) = false", x)
		}
	}
	for _, x := range []ObjectID{"", "b", "d", "f", "h"} {
		if containsID(ids, x) {
			t.Errorf("containsID(%q) = true", x)
		}
	}
	if containsID(nil, "a") {
		t.Error("containsID(nil) = true")
	}
}

// --- small local helpers ---------------------------------------------------

func putUvarint(buf []byte, x uint64) int {
	i := 0
	for x >= 0x80 {
		buf[i] = byte(x) | 0x80
		x >>= 7
		i++
	}
	buf[i] = byte(x)
	return i + 1
}

func beUint64(b []byte) uint64 {
	if len(b) != 8 {
		panic(fmt.Sprintf("bad counter %v", b))
	}
	var x uint64
	for _, c := range b {
		x = x<<8 | uint64(c)
	}
	return x
}
