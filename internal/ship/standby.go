package ship

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"logicallog/internal/backup"
	"logicallog/internal/cache"
	"logicallog/internal/core"
	"logicallog/internal/obs"
	"logicallog/internal/obs/flight"
	"logicallog/internal/op"
	"logicallog/internal/recovery"
	"logicallog/internal/stable"
	"logicallog/internal/wal"
)

// StandbyConfig parameterizes a Standby.
type StandbyConfig struct {
	// Opts is the engine configuration the standby mirrors and, at
	// promotion, comes up as.  It must match the primary's policy, strategy,
	// and REDO test; Registry must resolve every shipped operation kind.
	// Obs/Tracer instrument the apply pipeline and the promoted engine.
	Opts core.Options
	// TruncateOnCheckpoint makes the standby truncate its own log at each
	// shipped checkpoint's redo horizon, as the primary did.  Off, the
	// standby keeps its full log prefix (the crash explorer needs that for
	// its explainability oracle).
	TruncateOnCheckpoint bool
	// InstallTrace, when non-nil, receives the operation LSNs installed by
	// every mirrored install/flush record (the ship explorer's Theorem 3
	// recorder).
	InstallTrace func(lsns []op.SI)
}

// StandbyStats counts what the standby did with the stream.
type StandbyStats struct {
	// Batches counts delivered batches (probes included).
	Batches int64
	// Applied counts operation records replayed.
	Applied int64
	// SkippedInstalled counts operations bypassed by a vSI witness
	// (bootstrap image already reflected them).
	SkippedInstalled int64
	// SkippedUnexposed counts operations bypassed by rSI reasoning.
	SkippedUnexposed int64
	// Voided counts trial executions voided.
	Voided int64
	// Dups counts records discarded as already applied.
	Dups int64
	// Gaps counts deliveries that stopped short at a missing LSN.
	Gaps int64
	// Installs counts mirrored install/flush records.
	Installs int64
}

// Standby is the receiving side of log shipping: a warm replica that applies
// the primary's records as they arrive — continuous redo — so that at any
// moment its log and stable store are exactly those of a crashed primary,
// and promotion is ordinary recovery.
type Standby struct {
	cfg StandbyConfig

	mu       sync.Mutex
	log      *wal.Log
	store    *stable.Store
	mgr      *cache.Manager
	dot      map[op.ObjectID]op.SI
	origin   op.SI // first LSN ever shipped here (backup StartLSN, or 1)
	want     op.SI // next LSN to apply
	applied  op.SI // highest LSN applied
	down     bool  // crashed, awaiting Restart
	promoted bool
	stats    StandbyStats

	lane        *obs.Lane
	applyNs     *obs.Histogram
	promotionNs *obs.Histogram
	appliedC    *obs.Counter
	dupsC       *obs.Counter
	gapsC       *obs.Counter
	installsC   *obs.Counter
	promotionsC *obs.Counter
}

// NewStandby builds an empty standby that expects the stream from LSN 1.
func NewStandby(cfg StandbyConfig) (*Standby, error) {
	return newStandby(cfg, 1, nil)
}

// Bootstrap builds a standby from a fuzzy backup image: the image becomes
// its stable store and the stream is expected from the backup's StartLSN.
// Each imaged object's vSI makes the replay skip exactly the operations the
// image already reflects (the vSI witness in recovery.DecideRedo) — the same
// mechanism backup.MediaRecover uses.
func Bootstrap(cfg StandbyConfig, b *backup.Backup) (*Standby, error) {
	if b.StartLSN < 1 {
		return nil, fmt.Errorf("ship: backup has no StartLSN")
	}
	return newStandby(cfg, b.StartLSN, b.Objects)
}

func newStandby(cfg StandbyConfig, origin op.SI, image map[op.ObjectID]stable.Versioned) (*Standby, error) {
	if cfg.TruncateOnCheckpoint && !cfg.Opts.LogInstalls {
		// Without install records the standby never mirrors the primary's
		// installs, so its stable store lags arbitrarily behind the shipped
		// checkpoints' redo horizons — truncating to them would discard
		// records the standby still needs.
		return nil, fmt.Errorf("ship: TruncateOnCheckpoint requires LogInstalls")
	}
	if cfg.Opts.Registry == nil {
		cfg.Opts.Registry = op.NewRegistry()
	}
	if cfg.Opts.LogDevice == nil {
		cfg.Opts.LogDevice = wal.NewMemDevice()
	}
	switch {
	case cfg.Opts.TransientRetries == 0:
		cfg.Opts.TransientRetries = 3
	case cfg.Opts.TransientRetries < 0:
		cfg.Opts.TransientRetries = 0
	}
	log, err := wal.New(cfg.Opts.LogDevice)
	if err != nil {
		return nil, err
	}
	s := &Standby{
		cfg:     cfg,
		log:     log,
		store:   stable.NewStore(),
		dot:     make(map[op.ObjectID]op.SI),
		origin:  origin,
		want:    origin,
		applied: origin - 1,
	}
	s.tuneLog()
	if image != nil {
		s.store.Restore(image)
	}
	s.mgr, err = cache.NewManager(s.cacheConfig(), s.log, s.store)
	if err != nil {
		return nil, err
	}
	r := cfg.Opts.Obs
	s.applyNs = r.Histogram("ship.apply.ns")
	s.promotionNs = r.Histogram("ship.promotion.ns")
	s.appliedC = r.Counter("ship.applied_ops")
	s.dupsC = r.Counter("ship.dups")
	s.gapsC = r.Counter("ship.gaps")
	s.installsC = r.Counter("ship.installs_mirrored")
	s.promotionsC = r.Counter("ship.promotions")
	s.lane = cfg.Opts.Tracer.Lane("ship-standby")
	return s, nil
}

func (s *Standby) tuneLog() {
	s.log.SetRetryPolicy(s.cfg.Opts.TransientRetries, 20*time.Microsecond, 500*time.Microsecond)
	s.log.SetObs(s.cfg.Opts.Obs)
	s.log.SetFlight(s.cfg.Opts.Flight)
}

// flight is the standby's decision flight recorder handle (nil-safe).
func (s *Standby) flight() *flight.Recorder { return s.cfg.Opts.Flight }

func (s *Standby) cacheConfig() cache.Config {
	return cache.Config{
		Policy:           s.cfg.Opts.Policy,
		Strategy:         s.cfg.Opts.Strategy,
		LogInstalls:      s.cfg.Opts.LogInstalls,
		Registry:         s.cfg.Opts.Registry,
		TransientRetries: s.cfg.Opts.TransientRetries,
		Obs:              s.cfg.Opts.Obs,
	}
}

// Log exposes the standby's write-ahead log (a prefix copy of the primary's).
func (s *Standby) Log() *wal.Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log
}

// Store exposes the standby's stable store.
func (s *Standby) Store() *stable.Store { return s.store }

// Want returns the next LSN the standby needs.
func (s *Standby) Want() op.SI {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.want
}

// Applied returns the highest LSN the standby has applied.
func (s *Standby) Applied() op.SI {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Stats returns a snapshot of the standby's counters.
func (s *Standby) Stats() StandbyStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Deliver applies one batch: records below the apply horizon are discarded
// as duplicates, a record above it stops the delivery (a gap the ack's Want
// reports), and in-order records run the continuous-redo pipeline.  The
// returned ack always carries the standby's current horizons, so even an
// empty probe batch elicits a useful ack.
func (s *Standby) Deliver(b *Batch) (Ack, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return Ack{Lost: true}, fmt.Errorf("ship: standby is down (crashed; Restart first)")
	}
	if s.promoted {
		return Ack{Lost: true}, fmt.Errorf("ship: standby was promoted; it is a primary now")
	}
	sp := s.lane.Begin("apply-batch").
		Arg("seq", int64(b.Seq)).Arg("count", b.Count).Arg("first", int64(b.FirstLSN))
	defer sp.End()
	s.stats.Batches++
	data := b.Frames
	for len(data) > 0 {
		payload, n, err := wal.Unframe(data)
		if err != nil {
			return s.ackLocked(), fmt.Errorf("ship: corrupt frame in batch %d: %w", b.Seq, err)
		}
		rec, err := wal.DecodeRecord(payload)
		if err != nil {
			return s.ackLocked(), fmt.Errorf("ship: corrupt record in batch %d: %w", b.Seq, err)
		}
		data = data[n:]
		if rec.LSN < s.want {
			s.stats.Dups++
			s.dupsC.Inc()
			s.flight().ShipApply(flight.DecDup, rec.LSN, s.want)
			continue
		}
		if rec.LSN > s.want {
			s.stats.Gaps++
			s.gapsC.Inc()
			s.flight().ShipApply(flight.DecGap, rec.LSN, s.want)
			break
		}
		if err := s.applyLocked(rec); err != nil {
			return s.ackLocked(), err
		}
		s.flight().ShipApply(flight.DecAccept, rec.LSN, s.want)
		s.applied = rec.LSN
		s.want = rec.LSN + 1
	}
	return s.ackLocked(), nil
}

func (s *Standby) ackLocked() Ack {
	return Ack{Applied: s.applied, Durable: s.log.StableLSN(), Want: s.want}
}

// applyLocked runs one record through the continuous-redo pipeline: append
// it to the standby's own log (keeping the log a byte-equivalent prefix copy
// of the primary's), fold it into the incremental dirty object table, then
// act by type — operations run the REDO test and trial execution exactly as
// crash recovery would; install/flush records mirror the primary's
// installation schedule against cached standby state; checkpoints force (and
// optionally truncate) the standby log.
func (s *Standby) applyLocked(rec *wal.Record) error {
	var start time.Time
	if s.applyNs.Enabled() {
		start = time.Now()
	}
	if err := s.log.AppendShipped(rec); err != nil {
		return err
	}
	test := s.cfg.Opts.RedoTest
	recovery.UpdateDirtyTable(s.dot, rec, test)
	switch rec.Type {
	case wal.RecOperation:
		ex := recovery.DecideRedoExplain(test, s.mgr, s.dot, rec.Op)
		if !ex.Redo {
			if ex.InstalledWitness {
				s.stats.SkippedInstalled++
				s.flight().RedoDecision("standby", rec.LSN, flight.DecSkipInstalled, ex.WitnessObject, ex.WitnessVSI)
			} else {
				s.stats.SkippedUnexposed++
				s.flight().RedoDecision("standby", rec.LSN, flight.DecSkipUnexposed, "", op.NilSI)
			}
			break
		}
		voided, err := s.mgr.TryApplyLogged(rec.Op.Clone())
		if err != nil {
			return fmt.Errorf("ship: apply of %s: %w", rec.Op, err)
		}
		if voided {
			s.stats.Voided++
			s.flight().RedoDecision("standby", rec.LSN, flight.DecVoided, ex.DirtyObject, ex.DirtyRSI)
		} else {
			s.stats.Applied++
			s.appliedC.Inc()
			s.flight().RedoDecision("standby", rec.LSN, flight.DecRedo, ex.DirtyObject, ex.DirtyRSI)
		}
	case wal.RecInstall:
		// WAL protocol: the flush must not outrun the standby's own
		// durable log (the primary forced through these ops' LSNs too).
		if err := s.log.ForceThrough(rec.LSN); err != nil {
			return err
		}
		lsns, err := s.mgr.MirrorInstall(rec.Install)
		if err != nil {
			return err
		}
		s.noteInstall(lsns)
	case wal.RecFlush:
		if err := s.log.ForceThrough(rec.LSN); err != nil {
			return err
		}
		lsns, err := s.mgr.MirrorFlush(rec.Flush)
		if err != nil {
			return err
		}
		s.noteInstall(lsns)
	case wal.RecCheckpoint:
		if err := s.log.ForceThrough(rec.LSN); err != nil {
			return err
		}
		if s.cfg.TruncateOnCheckpoint {
			if err := s.log.Truncate(rec.Checkpoint.RedoStart(rec.LSN)); err != nil {
				return err
			}
		}
	}
	if s.applyNs.Enabled() {
		s.applyNs.Since(start)
	}
	return nil
}

func (s *Standby) noteInstall(lsns []op.SI) {
	s.stats.Installs++
	s.installsC.Inc()
	if s.cfg.InstallTrace != nil {
		s.cfg.InstallTrace(lsns)
	}
}

// Crash simulates a standby crash: the unforced log tail and all volatile
// apply state are lost; the standby rejects deliveries until Restart.
func (s *Standby) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log.Crash()
	s.mgr.Crash()
	s.down = true
}

// Restart recovers a crashed standby over its own log and store — with the
// normal crash-recovery machinery when install records are shipped, or by
// replaying the continuous-apply loop when they are not (see
// replayLogLocked) — rebuilds the incremental dirty table, and re-arms the
// apply horizon at the durable log's end; the sender's next ack-driven
// rewind resends whatever the crash lost.
func (s *Standby) Restart() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.down {
		return fmt.Errorf("ship: Restart of a standby that is not down")
	}
	// Re-derive the log horizon purely from the device, as a process
	// restart would.  In particular a bootstrapped standby that crashed
	// before forcing anything comes back with an empty, fresh log whose
	// first shipped record re-adopts the stream origin.
	log, err := wal.New(s.cfg.Opts.LogDevice)
	if err != nil {
		return err
	}
	s.log = log
	s.tuneLog()
	if err := s.replayLogLocked(); err != nil {
		return err
	}
	s.want = s.log.StableLSN() + 1
	if s.want < s.origin {
		s.want = s.origin
	}
	s.applied = s.want - 1
	s.down = false
	return nil
}

// replayLogLocked recovers the standby by deterministically re-running the
// continuous-apply loop over the durable log — not by recovery.Recover.  The
// distinction matters for two reasons.  First, a restarted standby must keep
// mirroring the primary's install records, which requires its write graph to
// regrow with exactly the node groupings continuous apply had; an
// analysis/redo pass rebuilds a fresh graph whose groupings can differ.
// Replaying the same record sequence through the same per-record logic is
// deterministic, so the rebuilt state is precisely what the apply loop had
// produced for the durable prefix.  Second, when no install records are
// shipped the standby's store lags the shipped checkpoints' dirty tables
// (they describe the *primary's* stable state), so those checkpoints cannot
// seed an analysis pass — the same reason backup.MediaRecover distrusts
// them.  The vSI witness in DecideRedo makes the replay skip exactly the
// operations the store already reflects, and MirrorInstall/MirrorFlush treat
// the witnessed-away operations as bootstrap skips.
func (s *Standby) replayLogLocked() error {
	mgr, err := cache.NewManager(s.cacheConfig(), s.log, s.store)
	if err != nil {
		return err
	}
	s.mgr = mgr
	s.dot = make(map[op.ObjectID]op.SI)
	sc, err := s.log.Scan(s.log.FirstLSN())
	if err != nil {
		return err
	}
	test := s.cfg.Opts.RedoTest
	for {
		rec, err := sc.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		recovery.UpdateDirtyTable(s.dot, rec, test)
		switch rec.Type {
		case wal.RecOperation:
			if redo, _ := recovery.DecideRedo(test, s.mgr, s.dot, rec.Op); !redo {
				continue
			}
			if _, err := s.mgr.TryApplyLogged(rec.Op.Clone()); err != nil {
				return fmt.Errorf("ship: restart replay of %s: %w", rec.Op, err)
			}
		case wal.RecInstall:
			// Re-flushing is idempotent: a mirrored install flushes the
			// replayed cached value, which replay determinism makes equal to
			// what was flushed before the crash.
			//lint:ignore walorder replaying the standby's own durable log: every record here was forced before it became scannable, so the write-ahead obligation is already discharged
			if _, err := s.mgr.MirrorInstall(rec.Install); err != nil {
				return fmt.Errorf("ship: restart replay of install %d: %w", rec.LSN, err)
			}
		case wal.RecFlush:
			//lint:ignore walorder replaying the standby's own durable log: the flush record is durable, hence so is everything at or below its LSN
			if _, err := s.mgr.MirrorFlush(rec.Flush); err != nil {
				return fmt.Errorf("ship: restart replay of flush %d: %w", rec.LSN, err)
			}
		}
	}
}

// Promote fails the standby over to primary: it forces the applied tail
// durable (the queue has been drained — deliveries are synchronous), runs
// the normal analysis/redo recovery over its own log and store, and returns
// the engine that comes up, ready for normal operation.  The standby stops
// accepting deliveries.
func (s *Standby) Promote() (*core.Engine, *recovery.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return nil, nil, fmt.Errorf("ship: cannot promote a crashed standby; Restart first")
	}
	if s.promoted {
		return nil, nil, fmt.Errorf("ship: standby already promoted")
	}
	lane := s.cfg.Opts.Tracer.Lane("promotion")
	var start time.Time
	if s.promotionNs.Enabled() {
		start = time.Now()
	}
	sp := lane.Begin("force-tail")
	if err := s.log.Force(); err != nil {
		sp.End()
		return nil, nil, err
	}
	sp.End()
	if !s.cfg.Opts.LogInstalls {
		// No install records were shipped, so the shipped checkpoints' redo
		// horizons describe the primary's stable state, not this store.
		// Flushing all cached state first stamps every object's vSI at its
		// last writer, and the recovery redo pass's vSI witness then skips
		// exactly what is flushed — the checkpoint horizon becomes harmless.
		sp = lane.Begin("purge-cache")
		err := s.mgr.PurgeAll()
		sp.End()
		if err != nil {
			return nil, nil, err
		}
	}
	sp = lane.Begin("recover")
	eng, res, err := core.Adopt(s.cfg.Opts, s.log, s.store)
	if err != nil {
		sp.End()
		return nil, nil, err
	}
	sp.Arg("redo_start", int64(res.RedoStart)).
		Arg("scanned", res.ScannedOps).Arg("redone", res.Redone).
		Arg("skipped_installed", res.SkippedInstalled).End()
	if s.promotionNs.Enabled() {
		s.promotionNs.Since(start)
	}
	s.promotionsC.Inc()
	s.promoted = true
	return eng, res, nil
}
