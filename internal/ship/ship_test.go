package ship_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"logicallog/internal/backup"
	"logicallog/internal/core"
	"logicallog/internal/fault"
	"logicallog/internal/obs"
	"logicallog/internal/op"
	"logicallog/internal/ship"
	"logicallog/internal/sim"
)

// workload is a deterministic random op stream, tracking liveness so every
// generated operation is valid against the primary's current state.
type workload struct {
	rng     *rand.Rand
	objects []op.ObjectID
	live    map[op.ObjectID]bool
}

func newWorkload(seed int64, n int) *workload {
	w := &workload{rng: rand.New(rand.NewSource(seed)), live: make(map[op.ObjectID]bool)}
	for i := 0; i < n; i++ {
		w.objects = append(w.objects, op.ObjectID(fmt.Sprintf("obj%02d", i)))
	}
	return w
}

func (w *workload) step() *op.Operation {
	var liveNow, dead []op.ObjectID
	for _, x := range w.objects {
		if w.live[x] {
			liveNow = append(liveNow, x)
		} else {
			dead = append(dead, x)
		}
	}
	val := func() []byte {
		v := make([]byte, 16)
		w.rng.Read(v)
		return v
	}
	if len(liveNow) < 2 && len(dead) > 0 {
		return op.NewCreate(dead[w.rng.Intn(len(dead))], val())
	}
	if w.rng.Intn(100) < 5 && len(liveNow) > 2 {
		return op.NewDelete(liveNow[w.rng.Intn(len(liveNow))])
	}
	x := liveNow[w.rng.Intn(len(liveNow))]
	y := liveNow[w.rng.Intn(len(liveNow))]
	switch w.rng.Intn(6) {
	case 0:
		return op.NewPhysicalWrite(x, val())
	case 1:
		return op.NewPhysioWrite(x, op.FuncAppend, []byte{byte(w.rng.Intn(256))})
	case 2, 3:
		if x == y {
			return op.NewPhysioWrite(x, op.FuncAppend, []byte{1})
		}
		return op.NewLogical(op.FuncXor, op.EncodeParams([]byte(y), []byte(x)),
			[]op.ObjectID{x, y}, []op.ObjectID{y})
	default:
		if x == y {
			return op.NewPhysioWrite(x, op.FuncAppend, []byte{2})
		}
		return op.NewLogical(op.FuncCopy, []byte(x), []op.ObjectID{y}, []op.ObjectID{x})
	}
}

func (w *workload) execute(t *testing.T, eng *core.Engine) {
	t.Helper()
	o := w.step()
	if err := eng.Execute(o); err != nil {
		t.Fatalf("execute %s: %v", o, err)
	}
	for _, x := range o.WriteSet {
		w.live[x] = o.Kind != op.KindDelete
	}
}

// drive runs steps workload steps against eng with periodic installs,
// checkpoints, and forces, calling after (if non-nil) after every step.
func drive(t *testing.T, eng *core.Engine, w *workload, steps int, after func(step int)) {
	t.Helper()
	for i := 0; i < steps; i++ {
		if w.rng.Intn(5) == 0 {
			if err := eng.InstallOne(); err != nil {
				t.Fatalf("install: %v", err)
			}
		}
		if w.rng.Intn(19) == 0 {
			if err := eng.Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}
		if w.rng.Intn(9) == 0 {
			if err := eng.Log().Force(); err != nil {
				t.Fatalf("force: %v", err)
			}
		}
		w.execute(t, eng)
		if after != nil {
			after(i)
		}
	}
}

// finishAndPromote forces the primary's tail, syncs the stream, crashes the
// primary, promotes the standby, and verifies the promoted engine against the
// primary's history at the durable horizon — the replication correctness
// claim.
func finishAndPromote(t *testing.T, eng *core.Engine, s *ship.Sender, sb *ship.Standby) *core.Engine {
	t.Helper()
	if err := eng.Log().Force(); err != nil {
		t.Fatalf("final force: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	horizon := eng.Log().StableLSN()
	if got := sb.Applied(); got != horizon {
		t.Fatalf("standby applied %d, primary stable %d", got, horizon)
	}
	hist := eng.History()
	eng.Crash()
	promoted, res, err := sb.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if res == nil {
		t.Fatal("promote returned nil recovery result")
	}
	if err := sim.VerifyHistory(promoted.Registry(), hist, promoted, horizon); err != nil {
		t.Fatalf("promoted standby diverged from primary history: %v", err)
	}
	return promoted
}

func newPair(t *testing.T, opts core.Options, plan *fault.Plan, batch int) (*core.Engine, *ship.Standby, *ship.Sender) {
	t.Helper()
	eng, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ship.NewStandby(ship.StandbyConfig{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	link := ship.NewLink(sb, plan)
	s := ship.NewSender(eng.Log(), link, 1, ship.SenderConfig{BatchRecords: batch})
	return eng, sb, s
}

// TestShipAllConfigs mirrors a full workload into a standby under every
// explorer configuration and checks the promoted standby equals the primary.
func TestShipAllConfigs(t *testing.T) {
	for _, cfg := range sim.ExplorerConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			eng, sb, s := newPair(t, cfg.Opts, nil, 4)
			defer s.Close()
			w := newWorkload(41, 6)
			drive(t, eng, w, 80, func(step int) {
				if step%3 == 0 {
					if err := s.PumpAll(); err != nil {
						t.Fatalf("pump at step %d: %v", step, err)
					}
				}
			})
			promoted := finishAndPromote(t, eng, s, sb)

			// The promoted engine is a working primary: it can keep going.
			if err := promoted.Execute(op.NewPhysioWrite(firstLive(t, promoted), op.FuncAppend, []byte{9})); err != nil {
				t.Fatalf("promoted engine cannot execute: %v", err)
			}
			if err := promoted.FlushAll(); err != nil {
				t.Fatalf("promoted engine cannot flush: %v", err)
			}
		})
	}
}

func firstLive(t *testing.T, eng *core.Engine) op.ObjectID {
	t.Helper()
	for i := 0; i < 8; i++ {
		x := op.ObjectID(fmt.Sprintf("obj%02d", i))
		if _, err := eng.Get(x); err == nil {
			return x
		}
	}
	t.Fatal("no live object on promoted engine")
	return ""
}

// TestShipBootstrapFromBackup starts the stream mid-run from a fuzzy backup:
// the standby's store is the image, replay starts at the backup horizon, and
// the vSI witness skips what the image already reflects.
func TestShipBootstrapFromBackup(t *testing.T) {
	for _, cfg := range sim.ExplorerConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			eng, err := core.New(cfg.Opts)
			if err != nil {
				t.Fatal(err)
			}
			w := newWorkload(97, 6)
			drive(t, eng, w, 40, nil)

			// Fuzzy backup: keep executing between object copies.
			b, err := backup.Take(eng, func(int) error {
				w.execute(t, eng)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			release := b.RegisterRetention(eng.Log())
			defer release()

			sb, err := ship.Bootstrap(ship.StandbyConfig{Opts: cfg.Opts}, b)
			if err != nil {
				t.Fatal(err)
			}
			s := ship.NewSender(eng.Log(), ship.NewLink(sb, nil), b.StartLSN, ship.SenderConfig{BatchRecords: 8})
			defer s.Close()

			drive(t, eng, w, 40, func(step int) {
				if step%4 == 0 {
					if err := s.PumpAll(); err != nil {
						t.Fatalf("pump: %v", err)
					}
				}
			})
			st := sb.Stats()
			promoted := finishAndPromote(t, eng, s, sb)
			_ = promoted
			if cfg.Opts.LogInstalls && st.SkippedInstalled == 0 && st.SkippedUnexposed == 0 && st.Dups == 0 {
				// Not fatal — just record that the witness path went unused.
				t.Logf("bootstrap applied everything (no witness skips): %+v", st)
			}
		})
	}
}

// TestShipFaultConvergence injects drop, dup, reorder, and transient faults
// into the ship channel and checks the cursor/ack protocol converges to an
// identical standby anyway.
func TestShipFaultConvergence(t *testing.T) {
	tokens := []string{
		"ship@1:drop",
		"ship@2:dup",
		"ship@3:reorder=0",
		"ship@1:eio",
		"ship@0:drop+ship@2:drop+ship@3:dup+ship@5:reorder=0+ship@7:eio+ship@11:drop",
	}
	for _, token := range tokens {
		token := token
		t.Run(strings.ReplaceAll(token, "+", " "), func(t *testing.T) {
			t.Parallel()
			pts, err := fault.ParseToken(token)
			if err != nil {
				t.Fatal(err)
			}
			plan := fault.NewPlan(pts...)
			eng, sb, s := newPair(t, core.DefaultOptions(), plan, 3)
			defer s.Close()
			w := newWorkload(7, 5)
			drive(t, eng, w, 60, func(step int) {
				if err := s.PumpAll(); err != nil {
					t.Fatalf("pump: %v", err)
				}
			})
			finishAndPromote(t, eng, s, sb)
			if plan.Dead() {
				t.Fatal("ship faults must not kill the plan")
			}
			if strings.Contains(token, "drop") && s.Resyncs() == 0 {
				t.Error("dropped batches should have forced at least one resync")
			}
		})
	}
}

// TestShipLinkSeverAndCatchUp severs the link with a ship crash fault,
// verifies Sync reports the stall, then reconnects and catches up.
func TestShipLinkSeverAndCatchUp(t *testing.T) {
	pts, err := fault.ParseToken("ship@2:crash")
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(pts...)
	eng, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ship.NewStandby(ship.StandbyConfig{Opts: core.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	link := ship.NewLink(sb, plan)
	s := ship.NewSender(eng.Log(), link, 1, ship.SenderConfig{BatchRecords: 2})
	defer s.Close()

	w := newWorkload(13, 5)
	drive(t, eng, w, 40, func(step int) {
		if err := s.PumpAll(); err != nil {
			t.Fatalf("pump: %v", err)
		}
	})
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	if !link.Down() {
		t.Fatal("ship@2:crash should have severed the link")
	}
	if err := s.Sync(); err == nil {
		t.Fatal("sync over a severed link should stall out")
	}
	link.Reconnect()
	finishAndPromote(t, eng, s, sb)
}

// TestShipStandbyCrashRestart crashes the standby mid-stream (losing its
// unforced tail and volatile apply state), restarts it, and checks the
// ack-driven rewind resends what was lost.
func TestShipStandbyCrashRestart(t *testing.T) {
	for _, cfg := range sim.ExplorerConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			eng, sb, s := newPair(t, cfg.Opts, nil, 4)
			defer s.Close()
			w := newWorkload(29, 6)
			crashed := false
			drive(t, eng, w, 70, func(step int) {
				if err := s.PumpAll(); err != nil {
					t.Fatalf("pump: %v", err)
				}
				if step == 35 {
					sb.Crash()
					if _, err := sb.Deliver(&ship.Batch{}); err == nil {
						t.Fatal("a crashed standby must reject deliveries")
					}
					if err := sb.Restart(); err != nil {
						t.Fatalf("restart: %v", err)
					}
					crashed = true
				}
			})
			if !crashed {
				t.Fatal("crash step never ran")
			}
			finishAndPromote(t, eng, s, sb)
		})
	}
}

// TestShipBootstrappedStandbyCrashBeforeForce is the fresh-log edge case: a
// bootstrapped standby (origin far above 1) crashes before anything was
// forced, so its restarted log is empty and the first resent record must
// re-adopt the stream origin.
func TestShipBootstrappedStandbyCrashBeforeForce(t *testing.T) {
	opts := core.DefaultOptions()
	eng, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	w := newWorkload(53, 5)
	drive(t, eng, w, 30, nil)
	b, err := backup.Take(eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	release := b.RegisterRetention(eng.Log())
	defer release()
	if b.StartLSN <= 1 {
		t.Fatalf("backup StartLSN %d: workload produced no horizon", b.StartLSN)
	}

	sb, err := ship.Bootstrap(ship.StandbyConfig{Opts: opts}, b)
	if err != nil {
		t.Fatal(err)
	}
	s := ship.NewSender(eng.Log(), ship.NewLink(sb, nil), b.StartLSN, ship.SenderConfig{BatchRecords: 64})
	defer s.Close()

	// Ship a little (no install/flush/checkpoint records in flight means
	// nothing forced the standby's log), then crash it.
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	if err := s.PumpAll(); err != nil {
		t.Fatal(err)
	}
	sb.Crash()
	if err := sb.Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if got := sb.Want(); got != b.StartLSN && got != sb.Log().StableLSN()+1 {
		t.Fatalf("restarted standby wants %d; origin %d", got, b.StartLSN)
	}
	drive(t, eng, w, 30, func(step int) {
		if err := s.PumpAll(); err != nil {
			t.Fatalf("pump: %v", err)
		}
	})
	finishAndPromote(t, eng, s, sb)
}

// TestShipRetentionProtectsLaggingStandby checks the sender's registered
// retention hook: checkpoint truncation on the primary is clamped so a
// lagging standby can always be caught up — it is never stranded.
func TestShipRetentionProtectsLaggingStandby(t *testing.T) {
	opts := core.DefaultOptions()
	eng, sb, s := newPair(t, opts, nil, 8)
	defer s.Close()

	// Run a workload with checkpoints while shipping nothing at all.
	w := newWorkload(71, 6)
	for i := 0; i < 60; i++ {
		if w.rng.Intn(4) == 0 {
			if err := eng.InstallOne(); err != nil {
				t.Fatal(err)
			}
		}
		if i%10 == 9 {
			if err := eng.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		w.execute(t, eng)
	}
	if first := eng.Log().FirstLSN(); first > 1 {
		t.Fatalf("truncation advanced to %d past the standby's horizon 1", first)
	}
	if clamped := eng.Stats().Log.TruncationsClamped; clamped == 0 {
		t.Fatal("checkpoints never clamped truncation; retention hook unused")
	}

	// The lagging standby catches up from LSN 1 and promotes correctly.
	finishAndPromote(t, eng, s, sb)

	// Negative control: with the hook released, the same pattern truncates
	// the log past LSN 1 and a fresh unshipped standby is stranded.
	eng2, sb2, s2 := newPair(t, opts, nil, 8)
	s2.Close() // releases the retention hook immediately
	_ = sb2
	w2 := newWorkload(71, 6)
	for i := 0; i < 60; i++ {
		if w2.rng.Intn(4) == 0 {
			if err := eng2.InstallOne(); err != nil {
				t.Fatal(err)
			}
		}
		if i%10 == 9 {
			if err := eng2.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		w2.execute(t, eng2)
	}
	if eng2.Log().FirstLSN() <= 1 {
		t.Skip("workload never truncated; cannot exercise the stranded path")
	}
	if _, err := s2.Pump(); err == nil {
		t.Fatal("pump after unprotected truncation should report a stranded standby")
	}
}

// TestShipMetrics checks the replication pipeline is visible end to end:
// sender lag gauges and batch counters, standby apply/promotion metrics, and
// their presence in the promoted engine's merged Metrics() snapshot.
func TestShipMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	opts := core.DefaultOptions()
	opts.Obs = reg
	opts.Tracer = tr
	eng, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ship.NewStandby(ship.StandbyConfig{Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	s := ship.NewSender(eng.Log(), ship.NewLink(sb, nil), 1,
		ship.SenderConfig{BatchRecords: 4, Obs: reg, Tracer: tr})
	defer s.Close()

	w := newWorkload(3, 5)
	drive(t, eng, w, 50, func(step int) {
		if step%2 == 0 {
			if err := s.PumpAll(); err != nil {
				t.Fatal(err)
			}
		}
	})
	lagLSN, lagRecs := s.Lag()
	if lagLSN < 0 || lagRecs < 0 {
		t.Fatalf("negative lag: %d/%d", lagLSN, lagRecs)
	}
	promoted := finishAndPromote(t, eng, s, sb)

	snap := promoted.Metrics()
	for _, name := range []string{"ship.batches_sent", "ship.records_shipped", "ship.applied_ops", "ship.installs_mirrored", "ship.promotions"} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s missing or zero in promoted Metrics(): %v", name, snap.Counters[name])
		}
	}
	for _, name := range []string{"ship.lag_lsn", "ship.lag_records"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s missing from promoted Metrics()", name)
		}
	}
	if snap.Gauges["ship.lag_lsn"] != 0 {
		t.Errorf("after sync, ship.lag_lsn = %d, want 0", snap.Gauges["ship.lag_lsn"])
	}
	for _, name := range []string{"ship.apply.ns", "ship.promotion.ns", "ship.batch.records", "ship.batch.bytes"} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			t.Errorf("histogram %s missing or empty in promoted Metrics()", name)
		}
	}
	if len(tr.Events()) == 0 {
		t.Error("tracer recorded no ship spans")
	}
}
