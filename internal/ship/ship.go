// Package ship implements log shipping and a warm standby: replication as
// continuous recovery.
//
// The paper's REDO machinery generalizes beyond crash recovery the moment
// the REDO test is driven by installation and exposure rather than logged
// values: a warm standby is recovery that never stops.  A Sender streams the
// primary's durable log records — operations, installs, flushes, and
// checkpoints — in acked batches over a Transport; a Standby applies them
// incrementally with exactly the machinery crash recovery uses (the dirty
// object table via recovery.UpdateDirtyTable, the REDO test via
// recovery.DecideRedo, trial execution via cache.TryApplyLogged) and mirrors
// the primary's installation schedule from its install/flush records
// (cache.MirrorInstall/MirrorFlush), so the standby's stable state is kept
// hot and its own log is a byte-equivalent prefix copy of the primary's.
// Failover promotion is therefore ordinary crash recovery over the
// standby's log and store (core.Adopt).
//
// The protocol is a cursor/ack loop resilient to a lossy transport: the
// sender ships only records at or below the primary's durable horizon
// (records that can never be retracted by a torn-tail trim), advances its
// cursor optimistically, and rewinds it whenever an ack's Want shows the
// standby stopped short — so dropped, duplicated, reordered, and transiently
// failing batches (injected through internal/fault's ship channel) all
// converge by resend, and a disconnected standby catches up the same way.
package ship

import (
	"fmt"
	"sync"
	"time"

	"logicallog/internal/fault"
	"logicallog/internal/obs"
	"logicallog/internal/obs/flight"
	"logicallog/internal/op"
	"logicallog/internal/wal"
)

// Batch is one shipped unit: a run of consecutive log records, framed
// exactly as the WAL frames them.  Count == 0 is a probe: it carries no
// records and only elicits an ack (used by Sync to learn the standby's
// horizons after lost batches).
type Batch struct {
	// Seq numbers batches in send order (diagnostics; the protocol keys on
	// LSNs, not sequence numbers).
	Seq uint64
	// FirstLSN/LastLSN bound the records carried; Count is how many.
	FirstLSN op.SI
	LastLSN  op.SI
	Count    int
	// Frames is the records' WAL framing, concatenated.
	Frames []byte
}

// Ack is the standby's receipt for one delivered batch.
type Ack struct {
	// Applied is the highest LSN the standby has applied.
	Applied op.SI
	// Durable is the standby's own durable log horizon (its forced prefix).
	// The sender's retention hook pins the primary's truncation floor at
	// Durable+1, so a lagging standby can always re-fetch what it lost.
	Durable op.SI
	// Want is the next LSN the standby needs.  Want below the sender's
	// cursor means delivery stopped short (a gap from a lost batch, or a
	// standby restart): the sender rewinds and resends.
	Want op.SI
	// Lost marks an ack synthesized by the transport for a batch that never
	// reached the standby (drop, reorder hold, severed link).  Its other
	// fields are meaningless and must not update sender state.
	Lost bool
}

// Transport delivers batches to a standby and returns its ack.  Errors are
// transport failures; a retryable one (wal.IsTransient) is retried by the
// sender, anything else aborts the pump.
type Transport interface {
	Send(b *Batch) (Ack, error)
}

// SenderConfig parameterizes a Sender.
type SenderConfig struct {
	// BatchRecords bounds records per batch (default 16).
	BatchRecords int
	// TransientRetries bounds resends of a batch whose Send failed with a
	// transient error.  0 defaults to 3; negative disables retry.
	TransientRetries int
	// Obs, when non-nil, receives the shipping metrics: replication lag in
	// LSNs and unshipped records (gauges), batch counts and sizes, resyncs.
	Obs *obs.Registry
	// Tracer, when non-nil, records a span per pumped batch.
	Tracer *obs.Tracer
	// Flight, when non-nil, records batch outcomes (sent/lost/rewind) in
	// the decision flight recorder for post-hoc forensics.
	Flight *flight.Recorder
}

// Sender streams a primary log to a standby.  It is safe for concurrent use,
// though pumping is typically driven from one goroutine.
type Sender struct {
	log *wal.Log
	tr  Transport
	cfg SenderConfig

	mu      sync.Mutex
	seq     uint64
	cursor  op.SI // next LSN to ship
	acked   op.SI // highest LSN the standby acked as applied
	durable op.SI // highest standby durable horizon seen
	resyncs int64

	unregister func()
	lane       *obs.Lane

	lagLSN      *obs.Gauge
	lagRecords  *obs.Gauge
	batchesSent *obs.Counter
	batchesLost *obs.Counter
	recordsSent *obs.Counter
	resyncCount *obs.Counter
	batchRecs   *obs.Histogram
	batchBytes  *obs.Histogram
}

// NewSender builds a sender that ships log records from startLSN on — the
// standby's replay origin: 1 for an empty standby, backup.StartLSN for a
// bootstrapped one.  The sender registers a retention hook on the log so
// checkpoint truncation can never strand the standby; Close releases it.
func NewSender(log *wal.Log, tr Transport, startLSN op.SI, cfg SenderConfig) *Sender {
	if cfg.BatchRecords <= 0 {
		cfg.BatchRecords = 16
	}
	switch {
	case cfg.TransientRetries == 0:
		cfg.TransientRetries = 3
	case cfg.TransientRetries < 0:
		cfg.TransientRetries = 0
	}
	if startLSN < 1 {
		startLSN = 1
	}
	s := &Sender{
		log:    log,
		tr:     tr,
		cfg:    cfg,
		cursor: startLSN,
		acked:  startLSN - 1,
	}
	s.durable = startLSN - 1
	s.lagLSN = cfg.Obs.Gauge("ship.lag_lsn")
	s.lagRecords = cfg.Obs.Gauge("ship.lag_records")
	s.batchesSent = cfg.Obs.Counter("ship.batches_sent")
	s.batchesLost = cfg.Obs.Counter("ship.batches_lost")
	s.recordsSent = cfg.Obs.Counter("ship.records_shipped")
	s.resyncCount = cfg.Obs.Counter("ship.resyncs")
	s.batchRecs = cfg.Obs.Histogram("ship.batch.records")
	s.batchBytes = cfg.Obs.Histogram("ship.batch.bytes")
	s.lane = cfg.Tracer.Lane("ship-sender")
	s.unregister = log.RegisterRetention("standby", s.retainHorizon)
	return s
}

// retainHorizon is the sender's registered truncation floor: everything the
// standby has not yet made durable must stay on the primary's log.
func (s *Sender) retainHorizon() op.SI {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durable + 1
}

// Close releases the sender's retention hook on the primary log.
func (s *Sender) Close() {
	if s.unregister != nil {
		s.unregister()
		s.unregister = nil
	}
}

// Cursor returns the next LSN the sender will ship.
func (s *Sender) Cursor() op.SI {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cursor
}

// Acked returns the highest LSN the standby has acked as applied.
func (s *Sender) Acked() op.SI {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked
}

// Resyncs returns how many times an ack rewound the cursor.
func (s *Sender) Resyncs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resyncs
}

// Lag returns the replication lag as LSN distance (durable horizon minus
// standby-applied horizon) and as unshipped record count.
func (s *Sender) Lag() (lsns, records int64) {
	stable := s.log.StableLSN()
	s.mu.Lock()
	defer s.mu.Unlock()
	lsns = int64(stable) - int64(s.acked)
	records = int64(stable) - int64(s.cursor) + 1
	if lsns < 0 {
		lsns = 0
	}
	if records < 0 {
		records = 0
	}
	return lsns, records
}

// Pump ships one batch of durable records at the cursor.  It returns whether
// anything was shipped; (false, nil) means the standby has been sent
// everything durable (though not necessarily acked — see Sync).  Lost
// batches still advance the cursor; the standby's next gap ack rewinds it.
func (s *Sender) Pump() (bool, error) {
	stable := s.log.StableLSN()
	s.mu.Lock()
	cursor := s.cursor
	s.mu.Unlock()
	if cursor > stable {
		s.observeLag(stable)
		return false, nil
	}
	if first := s.log.FirstLSN(); first > cursor {
		return false, fmt.Errorf("ship: standby stranded: needs LSN %d but log starts at %d", cursor, first)
	}
	b, err := s.buildBatch(cursor, stable)
	if err != nil {
		return false, err
	}
	if err := s.send(b); err != nil {
		return false, err
	}
	s.observeLag(s.log.StableLSN())
	return true, nil
}

// buildBatch re-frames up to BatchRecords durable records starting at cursor.
func (s *Sender) buildBatch(cursor, stable op.SI) (*Batch, error) {
	sc, err := s.log.Scan(cursor)
	if err != nil {
		return nil, err
	}
	b := &Batch{FirstLSN: cursor}
	for b.Count < s.cfg.BatchRecords {
		rec, err := scanNext(sc)
		if err != nil {
			return nil, err
		}
		if rec == nil || rec.LSN > stable {
			break
		}
		want := cursor + op.SI(b.Count)
		if rec.LSN != want {
			return nil, fmt.Errorf("ship: log gap at LSN %d (scan yielded %d)", want, rec.LSN)
		}
		payload, err := wal.EncodeRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("ship: re-encoding LSN %d: %w", rec.LSN, err)
		}
		b.Frames = append(b.Frames, wal.Frame(payload)...)
		b.LastLSN = rec.LSN
		b.Count++
	}
	if b.Count == 0 {
		return nil, fmt.Errorf("ship: no durable record at LSN %d (stable %d)", cursor, stable)
	}
	return b, nil
}

// send delivers one batch (or probe) with transient retry and folds the ack
// into the sender's horizons.
func (s *Sender) send(b *Batch) error {
	s.mu.Lock()
	s.seq++
	b.Seq = s.seq
	s.mu.Unlock()
	sp := s.lane.Begin("batch").
		Arg("seq", int64(b.Seq)).Arg("first", int64(b.FirstLSN)).
		Arg("count", b.Count)
	defer sp.End()

	ack, err := s.tr.Send(b)
	for attempt := 1; err != nil && attempt <= s.cfg.TransientRetries && wal.IsTransient(err); attempt++ {
		time.Sleep(wal.TransientBackoff(attempt, 20*time.Microsecond, 500*time.Microsecond))
		ack, err = s.tr.Send(b)
	}
	if err != nil {
		if wal.IsTransient(err) {
			// Out of retries: treat like a dropped batch; a later pump or
			// sync converges by resend.
			ack = Ack{Lost: true}
		} else {
			return err
		}
	}
	s.batchesSent.Inc()
	if b.Count > 0 {
		s.recordsSent.Add(int64(b.Count))
		s.batchRecs.Observe(int64(b.Count))
		s.batchBytes.Observe(int64(len(b.Frames)))
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if b.Count > 0 && b.LastLSN+1 > s.cursor {
		// Optimistic advance, even for lost batches: a resulting gap shows
		// up in the next real ack's Want and rewinds us.
		s.cursor = b.LastLSN + 1
	}
	if ack.Lost {
		s.batchesLost.Inc()
		sp.Arg("lost", true)
		s.cfg.Flight.ShipBatch(flight.DecLost, b.FirstLSN, b.LastLSN, int64(b.Count))
		return nil
	}
	if ack.Applied > s.acked {
		s.acked = ack.Applied
	}
	if ack.Durable > s.durable {
		s.durable = ack.Durable
	}
	if b.Count > 0 {
		s.cfg.Flight.ShipBatch(flight.DecSent, b.FirstLSN, b.LastLSN, int64(b.Count))
	}
	if ack.Want != 0 && ack.Want < s.cursor {
		s.cursor = ack.Want
		s.resyncs++
		s.resyncCount.Inc()
		sp.Arg("resync_to", int64(ack.Want))
		// A rewind's Ref is the standby's Want cursor the sender backed
		// up to.
		s.cfg.Flight.ShipBatch(flight.DecRewind, b.FirstLSN, ack.Want, int64(b.Count))
	}
	return nil
}

// observeLag refreshes the replication-lag gauges.
func (s *Sender) observeLag(stable op.SI) {
	if s.lagLSN == nil {
		return
	}
	s.mu.Lock()
	acked, cursor := s.acked, s.cursor
	s.mu.Unlock()
	lag := int64(stable) - int64(acked)
	if lag < 0 {
		lag = 0
	}
	unshipped := int64(stable) - int64(cursor) + 1
	if unshipped < 0 {
		unshipped = 0
	}
	s.lagLSN.Set(lag)
	s.lagRecords.Set(unshipped)
}

// PumpAll pumps until every durable record has been shipped once.  It does
// not wait for acks; lost tails are recovered by Sync.
func (s *Sender) PumpAll() error {
	for {
		shipped, err := s.Pump()
		if err != nil {
			return err
		}
		if !shipped {
			return nil
		}
	}
}

// Sync drives the ship loop until the standby has applied every record up to
// the primary's durable horizon, resending what was lost along the way.  It
// sends probe batches when everything has been shipped but the ack horizon
// lags (the "lost final batch" case).  A transport that stops making
// progress — a severed link — fails after a bounded number of attempts.
func (s *Sender) Sync() error {
	const maxStalls = 8
	stalls := 0
	for {
		stable := s.log.StableLSN()
		s.mu.Lock()
		acked, cursor := s.acked, s.cursor
		s.mu.Unlock()
		if acked >= stable && cursor > stable {
			s.observeLag(stable)
			return nil
		}
		if cursor <= stable {
			if _, err := s.Pump(); err != nil {
				return err
			}
		} else {
			// Everything shipped, not everything acked: probe for the
			// standby's horizons (its Want rewinds the cursor if a batch
			// was lost in flight).
			if err := s.send(&Batch{FirstLSN: cursor, LastLSN: cursor - 1}); err != nil {
				return err
			}
		}
		s.mu.Lock()
		progressed := s.acked > acked || s.cursor != cursor
		s.mu.Unlock()
		if progressed {
			stalls = 0
			continue
		}
		stalls++
		if stalls >= maxStalls {
			return fmt.Errorf("ship: sync stalled at acked %d / stable %d (link down?)", acked, stable)
		}
	}
}

func scanNext(sc *wal.Scanner) (*wal.Record, error) {
	rec, err := sc.Next()
	if err != nil {
		return nil, nil // io.EOF: end of durable log
	}
	return rec, nil
}

// ---------------------------------------------------------------------------
// In-memory transport.
// ---------------------------------------------------------------------------

// Link is the in-memory Transport: it delivers batches directly to a Standby,
// consulting a fault plan's ship channel on every send.  Drop loses the
// batch; dup delivers it twice; reorder holds it and delivers it after the
// next clean send (a late arrival); eio fails the send retryably; crash
// severs the link — every further send is lost until Reconnect.  All ship
// faults leave both machines running.
type Link struct {
	mu      sync.Mutex
	standby *Standby
	plan    *fault.Plan
	delayed []*Batch
	down    bool
}

// NewLink connects a standby.  plan may be nil (a perfect network).
func NewLink(standby *Standby, plan *fault.Plan) *Link {
	return &Link{standby: standby, plan: plan}
}

// Reconnect restores a link severed by a ship crash fault.
func (l *Link) Reconnect() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.down = false
}

// Down reports whether the link is severed.
func (l *Link) Down() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down
}

// Send implements Transport.
func (l *Link) Send(b *Batch) (Ack, error) {
	pt := fault.Point{}
	if l.plan != nil {
		var dead bool
		pt, dead = l.plan.ShipPoint()
		if dead {
			return Ack{Lost: true}, fmt.Errorf("ship: send from stopped machine: %w", fault.ErrInjected)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.down {
		return Ack{Lost: true}, nil
	}
	switch pt.Kind {
	case fault.KindNone:
		return l.deliverLocked(b, 1)
	case fault.KindDup:
		return l.deliverLocked(b, 2)
	case fault.KindReorder:
		// Hold the batch; it arrives late, after the next clean delivery.
		l.delayed = append(l.delayed, b)
		return Ack{Lost: true}, nil
	case fault.KindTransient:
		return Ack{Lost: true}, &fault.TransientError{Chan: fault.ChanShip, Index: pt.Index}
	case fault.KindCrash:
		l.down = true
		return Ack{Lost: true}, nil
	default:
		// Drop, and any kind with no ship meaning (torn, flip): the batch
		// vanishes on the wire.
		return Ack{Lost: true}, nil
	}
}

// deliverLocked hands the batch to the standby n times, then flushes any
// held (reordered) batches as late arrivals.  The last delivery's ack wins:
// it reflects the standby's newest horizons.
func (l *Link) deliverLocked(b *Batch, n int) (Ack, error) {
	var ack Ack
	var err error
	for i := 0; i < n; i++ {
		ack, err = l.standby.Deliver(b)
		if err != nil {
			return ack, err
		}
	}
	for len(l.delayed) > 0 {
		late := l.delayed[0]
		l.delayed = l.delayed[1:]
		ack, err = l.standby.Deliver(late)
		if err != nil {
			return ack, err
		}
	}
	return ack, nil
}
