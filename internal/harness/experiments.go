package harness

import (
	"fmt"

	"logicallog/internal/apprec"
	"logicallog/internal/btree"
	"logicallog/internal/cache"
	"logicallog/internal/core"
	"logicallog/internal/fsim"
	"logicallog/internal/op"
	"logicallog/internal/recovery"
	"logicallog/internal/sim"
	"logicallog/internal/workload"
	"logicallog/internal/writegraph"
)

// DefaultRedoWorkers, when non-zero, overrides Options.RedoWorkers for every
// engine the harness builds (cmd/llbench's -redo-workers flag).
var DefaultRedoWorkers int

// DefaultLogStreams and DefaultAbsorbWrites, when set, give every engine the
// harness builds the commit fast lane (cmd/llbench's -log-streams and
// -absorb flags).  Stream count alone never changes a result table — the
// merged durable byte stream is identical at every lane count.  Absorption
// is recovery-equivalent but can elide records, so it may shift log-byte and
// redo counters; it is off unless explicitly requested.
var (
	DefaultLogStreams   int
	DefaultAbsorbWrites bool
)

func newEngine(opts core.Options) (*core.Engine, error) {
	if opts.RedoWorkers == 0 {
		opts.RedoWorkers = DefaultRedoWorkers
	}
	if opts.LogStreams == 0 && DefaultLogStreams > 0 {
		opts.LogStreams = DefaultLogStreams
	}
	if DefaultAbsorbWrites {
		opts.AbsorbWrites = true
	}
	if opts.Obs == nil {
		opts.Obs = DefaultObs
	}
	return core.New(opts)
}

func logicalOpts() core.Options { return core.DefaultOptions() }

func physioOpts() core.Options {
	o := core.DefaultOptions()
	o.Physiological = true
	o.RedoTest = recovery.TestVSI
	return o
}

// E1LogBytes reproduces Figure 1: the per-operation logging cost of the
// A-form (Y <- f(X,Y)) and B-form (X <- g(Y)) operations under logical vs
// physiological logging, across object sizes.  Logical cost is O(ids);
// physiological cost is O(object size).
func E1LogBytes() (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "log bytes per A-form + B-form operation pair",
		Paper:   "Figure 1 (a) vs (b)",
		Columns: []string{"object size", "logical bytes", "physiological bytes", "ratio"},
	}
	for _, size := range []int{64, 1 << 10, 16 << 10, 256 << 10, 1 << 20} {
		logical, err := e1Pair(logicalOpts(), size)
		if err != nil {
			return nil, err
		}
		physio, err := e1Pair(physioOpts(), size)
		if err != nil {
			return nil, err
		}
		t.AddRow(byteSize(size), logical, physio, float64(physio)/float64(logical))
	}
	t.Notes = append(t.Notes,
		"logical cost is flat (ids + function names only); physiological cost grows linearly with the object size",
	)
	return t, nil
}

func e1Pair(opts core.Options, size int) (int64, error) {
	eng, err := newEngine(opts)
	if err != nil {
		return 0, err
	}
	v := make([]byte, size)
	if err := eng.Execute(op.NewCreate("X", v)); err != nil {
		return 0, err
	}
	if err := eng.Execute(op.NewCreate("Y", v)); err != nil {
		return 0, err
	}
	eng.ResetStats()
	// A: Y <- f(X,Y); B: X <- g(Y).
	a := op.NewLogical(op.FuncXor, op.EncodeParams([]byte("Y"), []byte("X")),
		[]op.ObjectID{"X", "Y"}, []op.ObjectID{"Y"})
	b := op.NewLogical(op.FuncCopy, []byte("X"), []op.ObjectID{"Y"}, []op.ObjectID{"X"})
	if err := eng.Execute(a); err != nil {
		return 0, err
	}
	if err := eng.Execute(b); err != nil {
		return 0, err
	}
	return eng.Log().Stats().TotalOpPayloadBytes(), nil
}

// E2Recovery reproduces Figure 2 / Theorem 2: recovery recovers explainable
// states and is idempotent, across the configuration matrix.
func E2Recovery() (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "crash-recovery correctness across configurations (40 random crashes each)",
		Paper:   "Figure 2 (Recover), Theorems 1-2",
		Columns: []string{"configuration", "crashes", "verified", "idempotent"},
	}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"rW + identity writes + rSI", logicalOpts()},
		{"rW + shadow + rSI", func() core.Options {
			o := logicalOpts()
			o.Strategy = cache.StrategyShadow
			return o
		}()},
		{"rW + flush-txn + vSI", func() core.Options {
			o := logicalOpts()
			o.Strategy = cache.StrategyFlushTxn
			o.RedoTest = recovery.TestVSI
			return o
		}()},
		{"W + shadow + vSI", func() core.Options {
			o := logicalOpts()
			o.Policy = writegraph.PolicyW
			o.Strategy = cache.StrategyShadow
			o.RedoTest = recovery.TestVSI
			return o
		}()},
		{"physiological + vSI", physioOpts()},
	}
	for _, cfg := range configs {
		const crashes = 40
		ok := 0
		if cfg.opts.RedoWorkers == 0 {
			cfg.opts.RedoWorkers = DefaultRedoWorkers
		}
		for seed := int64(1); seed <= crashes; seed++ {
			if err := sim.CrashTest(cfg.opts, sim.DefaultScenario(seed)); err != nil {
				return nil, fmt.Errorf("E2 %s seed %d: %w", cfg.name, seed, err)
			}
			ok++
		}
		t.AddRow(cfg.name, crashes, ok, "yes")
	}
	t.Notes = append(t.Notes, "every crash is recovered twice (idempotence check) and compared against a pure re-execution oracle")
	return t, nil
}

// E3FlushSets reproduces the Figures 3/4/7 claim: W coalesces objects into
// growing atomic flush sets while rW keeps them small, increasingly so as
// blind (B-form) writes make objects unexposed.
func E3FlushSets() (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "atomic flush-set sizes under W vs rW (8 objects, 200 logical ops)",
		Paper:   "Figures 3, 4, 7",
		Columns: []string{"B-form pct", "W max |vars|", "W mean |vars|", "rW max |vars|", "rW mean |vars|"},
	}
	for _, blindPct := range []int{0, 20, 40, 60} {
		spec := workload.DefaultSpec(33)
		spec.LogicalAPct = 40
		spec.LogicalBPct = blindPct
		spec.PhysioPct = 0
		spec.DeletePct = 0
		gen, err := workload.NewGenerator(spec)
		if err != nil {
			return nil, err
		}
		stream := workload.WithLSNs(gen.Stream())
		wMax, wMean, err := flushSetStats(writegraph.PolicyW, stream)
		if err != nil {
			return nil, err
		}
		rMax, rMean, err := flushSetStats(writegraph.PolicyRW, stream)
		if err != nil {
			return nil, err
		}
		t.AddRow(blindPct, wMax, wMean, rMax, rMean)
	}
	t.Notes = append(t.Notes,
		"rW flush sets never exceed W's; blind writes shrink rW sets (unexposed objects leave vars) while W sets only grow",
	)
	return t, nil
}

func flushSetStats(policy writegraph.Policy, stream []*op.Operation) (int, float64, error) {
	wg := writegraph.New(policy)
	for _, o := range stream {
		if _, err := wg.AddOp(o.Clone()); err != nil {
			return 0, 0, err
		}
	}
	sizes := wg.FlushSetSizes()
	max, sum := 0, 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
		sum += s
	}
	mean := 0.0
	if len(sizes) > 0 {
		mean = float64(sum) / float64(len(sizes))
	}
	return max, mean, nil
}

// E4Refinement replays the paper's literal examples (Figure 5's A;B;C and
// Figure 7's blind rewrite) and reports the flush behaviour of W vs rW.
func E4Refinement() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "the paper's own examples: nodes and flush sets",
		Paper:   "Figure 5, Figure 7, Section 4 example",
		Columns: []string{"example", "graph", "nodes", "largest flush set", "atomic multi-flush needed"},
	}
	examples := []struct {
		name string
		ops  []*op.Operation
	}{
		{"Fig5/Sec4: a)Y=f(X,Y) b)X=g(Y) c)Y=h(Y)", []*op.Operation{
			op.NewLogical(op.FuncXor, op.EncodeParams([]byte("Y"), []byte("X")), []op.ObjectID{"X", "Y"}, []op.ObjectID{"Y"}),
			op.NewLogical(op.FuncCopy, []byte("X"), []op.ObjectID{"Y"}, []op.ObjectID{"X"}),
			op.NewPhysioWrite("Y", op.FuncAppend, []byte{1}),
		}},
		{"Fig7: A writes {X,Y}; B reads X; C blind-writes X", []*op.Operation{
			{Kind: op.KindPhysicalWrite, WriteSet: []op.ObjectID{"X", "Y"},
				Values: map[op.ObjectID][]byte{"X": {1}, "Y": {2}}},
			op.NewLogical(op.FuncCopy, []byte("Z"), []op.ObjectID{"X"}, []op.ObjectID{"Z"}),
			op.NewPhysicalWrite("X", []byte{3}),
		}},
	}
	for _, ex := range examples {
		for _, policy := range []writegraph.Policy{writegraph.PolicyW, writegraph.PolicyRW} {
			wg := writegraph.New(policy)
			for i, o := range ex.ops {
				c := o.Clone()
				c.LSN = op.SI(i + 1)
				if _, err := wg.AddOp(c); err != nil {
					return nil, err
				}
			}
			sizes := wg.FlushSetSizes()
			max := 0
			for _, s := range sizes {
				if s > max {
					max = s
				}
			}
			multi := "no"
			if max > 1 {
				multi = "yes"
			}
			t.AddRow(ex.name, policy.String(), wg.Len(), max, multi)
		}
	}
	t.Notes = append(t.Notes,
		"Figure 7 under rW: the blind rewrite removes X from A's flush set; every node flushes one object",
		"the Section 4 cycle still collapses under rW — which is exactly what identity writes (E5) then break apart",
	)
	return t, nil
}

// E5FlushMechanisms reproduces the Section 4 cost comparison: breaking up a
// size-k atomic flush set with CM identity writes vs flushing it atomically
// with a flush transaction or shadows.
func E5FlushMechanisms() (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "multi-object flush-set handling: I/O and log cost (value size 4 KiB)",
		Paper: "Section 4 (Cache Manager Initiated Writes, Atomic Flush, Comparing Costs)",
		Columns: []string{"set size k", "mechanism", "object writes", "extra log bytes",
			"flush-txn log writes", "pointer swings"},
	}
	const valueSize = 4096
	for _, k := range []int{2, 4, 8, 16} {
		for _, strat := range []cache.FlushStrategy{cache.StrategyIdentityWrite, cache.StrategyFlushTxn, cache.StrategyShadow} {
			opts := logicalOpts()
			opts.Strategy = strat
			eng, err := newEngine(opts)
			if err != nil {
				return nil, err
			}
			if err := buildAtomicSet(eng, k, valueSize); err != nil {
				return nil, err
			}
			eng.ResetStats()
			if err := eng.FlushAll(); err != nil {
				return nil, err
			}
			io := eng.Store().Stats()
			lg := eng.Log().Stats()
			t.AddRow(k, strat.String(), io.ObjectWrites, lg.ValueBytes,
				io.FlushTxnLogWrites, io.PointerSwings)
		}
	}
	t.Notes = append(t.Notes,
		"identity writes log k-1 object values and write each object once; no quiesce, no pointer swing",
		"a flush transaction logs all k values plus a commit and writes every object twice (log + in place)",
		"shadows avoid the value logging but need shadow writes plus an atomic pointer swing (and, in real systems, relocate data)",
	)
	return t, nil
}

// buildAtomicSet drives operations that collapse into one rW node with a
// k-object flush set: a chain of A-form reads followed by B-form writes that
// closes a cycle across k objects.
func buildAtomicSet(eng *core.Engine, k, valueSize int) error {
	ids := make([]op.ObjectID, k)
	v := make([]byte, valueSize)
	for i := range ids {
		ids[i] = op.ObjectID(fmt.Sprintf("s%02d", i))
		if err := eng.Execute(op.NewCreate(ids[i], v)); err != nil {
			return err
		}
	}
	if err := eng.FlushAll(); err != nil {
		return err
	}
	// Ring of A-form ops: ids[i+1] <- f(ids[i], ids[i+1]) ... then close the
	// ring so the whole set collapses into one node.
	for round := 0; round < 2; round++ {
		for i := 0; i < k; i++ {
			x, y := ids[i], ids[(i+1)%k]
			o := op.NewLogical(op.FuncXor, op.EncodeParams([]byte(y), []byte(x)),
				[]op.ObjectID{x, y}, []op.ObjectID{y})
			if err := eng.Execute(o); err != nil {
				return err
			}
		}
	}
	return nil
}

// E6RedoTests reproduces the Section 5 claim: the generalized rSI REDO test
// re-executes fewer operations than the traditional vSI test, especially
// with transient (deleted) objects, without hurting correctness.
func E6RedoTests() (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "redo-pass work by REDO test (200-op workloads, crash, recover)",
		Paper:   "Section 5 (Recovery REDO Tests, Generalized Recovery SIs)",
		Columns: []string{"delete pct", "test", "ops scanned", "redone", "skipped installed", "skipped unexposed"},
	}
	for _, delPct := range []int{0, 20, 40} {
		for _, test := range []recovery.RedoTest{recovery.TestVSI, recovery.TestRSI} {
			opts := logicalOpts()
			opts.RedoTest = test
			eng, err := newEngine(opts)
			if err != nil {
				return nil, err
			}
			spec := workload.DefaultSpec(77)
			spec.LogicalAPct, spec.LogicalBPct, spec.PhysioPct = 25, 25, 10
			spec.DeletePct = delPct
			gen, err := workload.NewGenerator(spec)
			if err != nil {
				return nil, err
			}
			for i, o := range gen.Stream() {
				if err := eng.Execute(o); err != nil {
					return nil, err
				}
				if i%9 == 0 {
					if err := eng.InstallOne(); err != nil {
						return nil, err
					}
				}
			}
			if err := eng.Log().Force(); err != nil {
				return nil, err
			}
			eng.Crash()
			res, err := eng.Recover()
			if err != nil {
				return nil, err
			}
			t.AddRow(delPct, test.String(), res.ScannedOps, res.Redone,
				res.SkippedInstalled, res.SkippedUnexposed)
		}
	}
	t.Notes = append(t.Notes,
		"rSI redoes no more than vSI and shortens the scan: unexposed/terminated objects' operations are treated as installed",
	)
	return t, nil
}

// E7AppRecovery reproduces the application-recovery logging comparison: this
// paper (logical R + logical W_L) vs [7] (logical R + physical W_P) vs fully
// physiological, across I/O buffer sizes.
func E7AppRecovery() (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "application run logging cost (10 read/exec/write rounds)",
		Paper:   "Table 1 operations; Section 1 Application Recovery; [7] comparison",
		Columns: []string{"buffer size", "this paper (W_L)", "[7] (W_P)", "physiological", "W_L saving vs W_P"},
	}
	for _, size := range []int{1 << 10, 16 << 10, 128 << 10} {
		logical, err := e7Run(logicalOpts(), size, false)
		if err != nil {
			return nil, err
		}
		lomet98, err := e7Run(logicalOpts(), size, true)
		if err != nil {
			return nil, err
		}
		physio, err := e7Run(physioOpts(), size, false)
		if err != nil {
			return nil, err
		}
		t.AddRow(byteSize(size), logical, lomet98, physio,
			fmt.Sprintf("%.1fx", float64(lomet98)/float64(logical)))
	}
	t.Notes = append(t.Notes,
		"W_L logs ids only; W_P logs every output buffer; physiological logging also materializes reads",
	)
	return t, nil
}

func e7Run(opts core.Options, bufSize int, physicalWrites bool) (int64, error) {
	eng, err := newEngine(opts)
	if err != nil {
		return 0, err
	}
	apprec.Register(eng.Registry())
	data := make([]byte, bufSize)
	if err := eng.Execute(op.NewCreate("input", data)); err != nil {
		return 0, err
	}
	app, err := apprec.Launch(eng, "app")
	if err != nil {
		return 0, err
	}
	eng.ResetStats()
	for round := 0; round < 10; round++ {
		if err := app.Read("input"); err != nil {
			return 0, err
		}
		if err := app.Step([]byte{byte(round)}); err != nil {
			return 0, err
		}
		target := op.ObjectID(fmt.Sprintf("out%d", round))
		if physicalWrites {
			err = app.WritePhysical(target)
		} else {
			err = app.Write(target)
		}
		if err != nil {
			return 0, err
		}
	}
	return eng.Log().Stats().TotalOpPayloadBytes(), nil
}

// E8FileOps reproduces the file-system example: copy and sort logged
// logically (ids only) vs physiologically (whole file).
func E8FileOps() (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "file copy + sort logging cost",
		Paper:   "Section 1 File System Recovery",
		Columns: []string{"file size", "logical bytes", "physiological bytes", "ratio"},
	}
	for _, size := range []int{4 << 10, 64 << 10, 1 << 20} {
		logical, err := e8Run(size, false)
		if err != nil {
			return nil, err
		}
		physio, err := e8Run(size, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(byteSize(size), logical, physio, float64(physio)/float64(logical))
	}
	t.Notes = append(t.Notes, "the logical log records name only source and target file ids")
	return t, nil
}

func e8Run(size int, physical bool) (int64, error) {
	eng, err := newEngine(logicalOpts())
	if err != nil {
		return 0, err
	}
	fsim.Register(eng.Registry())
	fs := fsim.New(eng, "fs")
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(255 - i%256)
	}
	if err := fs.Create("src", data); err != nil {
		return 0, err
	}
	eng.ResetStats()
	if physical {
		if err := fs.CopyPhysical("copy", "src"); err != nil {
			return 0, err
		}
		if err := fs.SortPhysical("sorted", "src"); err != nil {
			return 0, err
		}
	} else {
		if err := fs.Copy("copy", "src"); err != nil {
			return 0, err
		}
		if err := fs.Sort("sorted", "src"); err != nil {
			return 0, err
		}
	}
	return eng.Log().Stats().TotalOpPayloadBytes(), nil
}

// E9BtreeSplit reproduces the database example: logical page splits avoid
// logging the new node's contents.  After every bulk insert the engine
// crashes and recovers, and the row's scan column counts the keys a
// leaf-chain range scan finds in the recovered tree — the splits under test
// must leave behind a walkable, fully-linked leaf chain.
func E9BtreeSplit() (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "B-tree bulk insert logging cost (order 16, 256 inserts)",
		Paper:   "Section 1 Database Recovery (logical B-tree split)",
		Columns: []string{"value size", "logical split bytes", "physiological bytes", "splits", "ratio", "leaf scan after crash"},
	}
	for _, valSize := range []int{256, 1024, 4096} {
		logical, splits, scanned, err := e9Run(logicalOpts(), valSize)
		if err != nil {
			return nil, err
		}
		physio, _, physioScanned, err := e9Run(physioOpts(), valSize)
		if err != nil {
			return nil, err
		}
		if scanned != physioScanned {
			return nil, fmt.Errorf("E9: recovered leaf chains disagree: logical scanned %d, physiological %d", scanned, physioScanned)
		}
		t.AddRow(valSize, logical, physio, splits, float64(physio)/float64(logical), scanned)
	}
	t.Notes = append(t.Notes,
		"both engines log the inserted records; the physiological engine additionally logs every page written by each split",
		"the scan column walks the recovered tree's leaf chain end to end: logical split replay rebuilds the same next-leaf links the physiological engine logged outright",
	)
	return t, nil
}

const e9Inserts = 256

func e9Key(i int) []byte { return []byte(fmt.Sprintf("key%06d", i)) }

func e9Run(opts core.Options, valSize int) (int64, int, int, error) {
	eng, err := newEngine(opts)
	if err != nil {
		return 0, 0, 0, err
	}
	btree.Register(eng.Registry())
	tree, err := btree.New(eng, "t", 16)
	if err != nil {
		return 0, 0, 0, err
	}
	eng.ResetStats()
	val := make([]byte, valSize)
	for i := 0; i < e9Inserts; i++ {
		if err := tree.Insert(e9Key(i), val); err != nil {
			return 0, 0, 0, err
		}
	}
	st, err := tree.Stats()
	if err != nil {
		return 0, 0, 0, err
	}
	logged := eng.Log().Stats().TotalOpPayloadBytes()
	// Crash and recover, then read the tree back through the leaf chain:
	// a full Scan must visit every key in order, and a bounded Range must
	// stop at its half-open upper bound.
	if err := eng.Log().Force(); err != nil {
		return 0, 0, 0, err
	}
	eng.Crash()
	if _, err := eng.Recover(); err != nil {
		return 0, 0, 0, err
	}
	scanned := 0
	var scanErr error
	if err := tree.Scan(func(k, v []byte) bool {
		if string(k) != string(e9Key(scanned)) || len(v) != valSize {
			scanErr = fmt.Errorf("leaf chain out of order at %q (position %d)", k, scanned)
			return false
		}
		scanned++
		return true
	}); err != nil {
		return 0, 0, 0, err
	}
	if scanErr != nil {
		return 0, 0, 0, scanErr
	}
	if scanned != e9Inserts {
		return 0, 0, 0, fmt.Errorf("leaf-chain scan found %d keys after recovery, want %d", scanned, e9Inserts)
	}
	ranged := 0
	lo, hi := e9Key(e9Inserts/4), e9Key(3*e9Inserts/4)
	if err := tree.Range(lo, hi, func(k, v []byte) bool { ranged++; return true }); err != nil {
		return 0, 0, 0, err
	}
	if want := e9Inserts / 2; ranged != want {
		return 0, 0, 0, fmt.Errorf("leaf-chain range [%s,%s) found %d keys, want %d", lo, hi, ranged, want)
	}
	return logged, st.Pages - 1, scanned, nil
}

// E10ScanLength reproduces the Section 5 analysis-pass claim: checkpoints
// and installation logging shorten the redo scan.
func E10ScanLength() (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "redo scan length vs checkpoint interval (400-op workload)",
		Paper:   "Section 5 (Logging and Recovery using rSIs)",
		Columns: []string{"checkpoint regime", "analyzed records", "ops scanned", "redone"},
	}
	type regime struct {
		interval int
		sharp    bool // flush the cache before checkpointing
	}
	for _, rg := range []regime{{0, false}, {100, false}, {25, false}, {25, true}} {
		interval := rg.interval
		eng, err := newEngine(logicalOpts())
		if err != nil {
			return nil, err
		}
		spec := workload.DefaultSpec(55)
		spec.Steps = 400
		gen, err := workload.NewGenerator(spec)
		if err != nil {
			return nil, err
		}
		for i, o := range gen.Stream() {
			if err := eng.Execute(o); err != nil {
				return nil, err
			}
			if i%7 == 0 {
				if err := eng.InstallOne(); err != nil {
					return nil, err
				}
			}
			if interval > 0 && i%interval == interval-1 {
				if rg.sharp {
					if err := eng.FlushAll(); err != nil {
						return nil, err
					}
				}
				if err := eng.Checkpoint(); err != nil {
					return nil, err
				}
			}
		}
		if err := eng.Log().Force(); err != nil {
			return nil, err
		}
		eng.Crash()
		res, err := eng.Recover()
		if err != nil {
			return nil, err
		}
		label := "never"
		if interval > 0 {
			label = fmt.Sprintf("fuzzy/%d ops", interval)
			if rg.sharp {
				label = fmt.Sprintf("sharp/%d ops", interval)
			}
		}
		t.AddRow(label, res.AnalyzedRecords, res.ScannedOps, res.Redone)
	}
	t.Notes = append(t.Notes,
		"fuzzy checkpoints shorten the analysis pass (and truncate the log); the redo scan start is governed by dirty-object rSIs",
		"sharp checkpoints (flush before checkpointing) also collapse the redo scan, at the cost of flushing everything",
	)
	return t, nil
}

// A1InstallLogging ablates installation-record logging: without it, the
// analysis pass cannot advance rSIs past installed-but-unflushed operations
// and the redo pass does more work.
func A1InstallLogging() (*Table, error) {
	t := &Table{
		ID:      "A1",
		Title:   "ablation: install-record logging (rSI test, 200-op workload)",
		Paper:   "Section 5 design choice",
		Columns: []string{"install records", "ops scanned", "redone", "skipped unexposed"},
	}
	for _, logInstalls := range []bool{true, false} {
		opts := logicalOpts()
		opts.LogInstalls = logInstalls
		eng, err := newEngine(opts)
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(workload.DefaultSpec(99))
		if err != nil {
			return nil, err
		}
		for i, o := range gen.Stream() {
			if err := eng.Execute(o); err != nil {
				return nil, err
			}
			if i%9 == 0 {
				if err := eng.InstallOne(); err != nil {
					return nil, err
				}
			}
		}
		if err := eng.Log().Force(); err != nil {
			return nil, err
		}
		eng.Crash()
		res, err := eng.Recover()
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(logInstalls), res.ScannedOps, res.Redone, res.SkippedUnexposed)
	}
	return t, nil
}

// A2PolicyAblation compares the cache manager's flush behaviour under W vs
// rW on the same workload.
func A2PolicyAblation() (*Table, error) {
	t := &Table{
		ID:      "A2",
		Title:   "ablation: cache manager under W vs rW (200-op logical workload)",
		Paper:   "Section 3 design choice",
		Columns: []string{"policy", "installs", "objects flushed", "installed w/o flush", "multi-object flushes"},
	}
	for _, policy := range []writegraph.Policy{writegraph.PolicyW, writegraph.PolicyRW} {
		opts := logicalOpts()
		opts.Policy = policy
		if policy == writegraph.PolicyW {
			opts.Strategy = cache.StrategyShadow // W cannot use identity breakup
		}
		eng, err := newEngine(opts)
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(workload.DefaultSpec(111))
		if err != nil {
			return nil, err
		}
		for i, o := range gen.Stream() {
			if err := eng.Execute(o); err != nil {
				return nil, err
			}
			if i%9 == 0 {
				if err := eng.InstallOne(); err != nil {
					return nil, err
				}
			}
		}
		if err := eng.FlushAll(); err != nil {
			return nil, err
		}
		st := eng.Cache().Stats()
		t.AddRow(policy.String(), st.Installs, st.ObjectsFlushed, st.InstalledNotFlushed, st.MultiObjectFlushes)
	}
	t.Notes = append(t.Notes, "rW installs operations without flushing unexposed objects; W must flush every written object")
	return t, nil
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%d MiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%d KiB", n>>10)
	}
	return fmt.Sprintf("%d B", n)
}
