// Package harness runs the paper-reproduction experiments (E1–E14 of
// DESIGN.md) and renders their results as text tables.  Every experiment is
// deterministic given its built-in seeds, so EXPERIMENTS.md can record
// exact expected shapes.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result.
type Table struct {
	// ID is the experiment id (e.g. "E1").
	ID string
	// Title describes what the table shows.
	Title string
	// Paper names the paper artifact being reproduced.
	Paper string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, formatted.
	Rows [][]string
	// Notes are shape-level observations printed under the table.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(w, "(reproduces: %s)\n", t.Paper)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID   string
	Name string
	Run  func() (*Table, error)
}

// All returns every experiment in id order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Name: "logical vs physiological log bytes (Figure 1)", Run: E1LogBytes},
		{ID: "E2", Name: "recovery correctness and idempotence (Figure 2, Theorem 2)", Run: E2Recovery},
		{ID: "E3", Name: "atomic flush-set sizes: W vs rW (Figures 3/4/7)", Run: E3FlushSets},
		{ID: "E4", Name: "rW refinement on the paper's own examples (Figure 5, Section 4)", Run: E4Refinement},
		{ID: "E5", Name: "identity writes vs flush transactions vs shadows (Section 4)", Run: E5FlushMechanisms},
		{ID: "E6", Name: "REDO tests: redo counts and scan length (Section 5)", Run: E6RedoTests},
		{ID: "E7", Name: "application recovery logging cost (Table 1, [7])", Run: E7AppRecovery},
		{ID: "E8", Name: "file-system copy/sort logging cost (Section 1)", Run: E8FileOps},
		{ID: "E9", Name: "B-tree split logging cost (Section 1)", Run: E9BtreeSplit},
		{ID: "E10", Name: "checkpoints, install logging, and redo scan length (Section 5)", Run: E10ScanLength},
		{ID: "E11", Name: "log shipping: replication lag and failover vs batch size", Run: E11ShipLag},
		{ID: "E12", Name: "commit fast lane: per-core log streams and absorption", Run: E12CommitStreams},
		{ID: "E13", Name: "recoverable domains: B+tree and LSM under scenario mixes", Run: E13DomainMixes},
		{ID: "E14", Name: "instant recovery: serving during redo vs full-redo restart", Run: E14InstantRecovery},
		{ID: "A1", Name: "ablation: install-record logging on/off", Run: A1InstallLogging},
		{ID: "A2", Name: "ablation: write-graph policy W vs rW under the cache manager", Run: A2PolicyAblation},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}
