package harness

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"time"

	"logicallog/internal/core"
	"logicallog/internal/server"
)

// E14 instant-recovery parameters.  Keys scale with the step count so the
// chain population stays dense; the value size keeps redo work per chain
// non-trivial without bloating the log.
const (
	e14Seed     = 0x5e12
	e14ValSize  = 128
	e14Attempts = 3
)

// e14Config is one sweep point: a redo-suffix length and a background
// worker count.  Only large rows are held to the strict first-serve <
// full-redo bar: on a short log the fixed cost of opening the listener and
// the loopback round trip rivals the whole redo pass, and showing that
// crossover honestly is part of the experiment.
type e14Config struct {
	steps   int
	workers int
	large   bool
}

func e14Configs() []e14Config {
	return []e14Config{
		{steps: 1000, workers: 1, large: false},
		{steps: 1000, workers: 4, large: false},
		{steps: 4000, workers: 1, large: true},
		{steps: 4000, workers: 4, large: true},
		{steps: 8000, workers: 4, large: true},
	}
}

func e14Key(i int) []byte { return []byte(fmt.Sprintf("s%05d", i)) }

// e14Build drives the deterministic flat-KV history into a fresh engine and
// crashes it with a long durable redo suffix.  Same (steps, workers) always
// yields the same crashed image, so two builds are twins.
func e14Build(steps, workers int) (*core.Engine, *server.KV, error) {
	opts := core.DefaultOptions()
	opts.RedoWorkers = workers
	eng, err := newEngine(opts)
	if err != nil {
		return nil, nil, err
	}
	kv := server.NewKV(eng)
	keys := steps / 8
	rng := rand.New(rand.NewSource(e14Seed))
	for i := 0; i < keys; i++ {
		v := make([]byte, e14ValSize)
		rng.Read(v)
		if err := kv.Put(e14Key(i), v); err != nil {
			return nil, nil, err
		}
	}
	// Checkpoint early so nearly the whole overwrite phase is redo work.
	if err := eng.CheckpointOnly(); err != nil {
		return nil, nil, err
	}
	for step := 0; step < steps; step++ {
		i := rng.Intn(keys)
		if step%89 == 17 {
			if _, err := kv.Delete(e14Key(i)); err != nil {
				return nil, nil, err
			}
			continue
		}
		v := make([]byte, e14ValSize)
		rng.Read(v)
		if err := kv.Put(e14Key(i), v); err != nil {
			return nil, nil, err
		}
	}
	if err := eng.Log().Force(); err != nil {
		return nil, nil, err
	}
	eng.Crash()
	return eng, kv, nil
}

// e14State captures a domain's full contents for byte-level comparison.
func e14State(kv *server.KV) (map[string][]byte, error) {
	out := make(map[string][]byte)
	err := kv.Range(nil, nil, func(k, v []byte) bool {
		out[string(k)] = append([]byte(nil), v...)
		return true
	})
	return out, err
}

// e14Measure runs one sweep point once: full redo on twin 1 (the baseline
// and the oracle), then open-for-business-during-redo on twin 2 over a real
// loopback connection, timing the first served request.  After the
// background drain finishes, twin 2's state and recovery counters must be
// byte-identical to the full-redo restart.
func e14Measure(cfg e14Config) (fullRedo, firstServe time.Duration, chains, redone int, err error) {
	full, fullKV, err := e14Build(cfg.steps, cfg.workers)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	fullStart := time.Now()
	fres, err := full.Recover()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	fullRedo = time.Since(fullStart)
	oracle, err := e14State(fullKV)
	if err != nil {
		return 0, 0, 0, 0, err
	}

	eng, kv, err := e14Build(cfg.steps, cfg.workers)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	firstStart := time.Now()
	od, err := eng.RecoverOnDemand()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	srv, err := server.New(server.Config{Backend: kv, Obs: DefaultObs, Drain: od})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		srv.Shutdown(2 * time.Second)
		<-serveDone
	}()
	cl, err := server.Dial(ln.Addr().String())
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer cl.Close()

	probe := e14Key(cfg.steps / 16)
	v, found, err := cl.Get(probe)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("harness: E14: first request: %w", err)
	}
	firstServe = time.Since(firstStart)
	want, wantFound := oracle[string(probe)]
	if found != wantFound || (found && !bytes.Equal(v, want)) {
		return 0, 0, 0, 0, fmt.Errorf("harness: E14: first served read of %s diverges from the full-redo oracle", probe)
	}

	// Let the background drain finish, then hold on-demand recovery to the
	// acceptance bar: state and decision counters byte-identical to the
	// full-redo restart.
	ores, err := od.Wait()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	got, err := e14State(kv)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if len(got) != len(oracle) {
		return 0, 0, 0, 0, fmt.Errorf("harness: E14: on-demand restart has %d keys, full redo %d", len(got), len(oracle))
	}
	for k, w := range oracle {
		if !bytes.Equal(got[k], w) {
			return 0, 0, 0, 0, fmt.Errorf("harness: E14: key %s diverges between on-demand and full redo", k)
		}
	}
	if ores.Redone != fres.Redone || ores.SkippedInstalled != fres.SkippedInstalled ||
		ores.SkippedUnexposed != fres.SkippedUnexposed || ores.Voided != fres.Voided ||
		ores.ScannedOps != fres.ScannedOps {
		return 0, 0, 0, 0, fmt.Errorf("harness: E14: on-demand decision counters diverge from full redo: %+v vs %+v", ores, fres)
	}
	return fullRedo, firstServe, od.Chains(), fres.Redone, nil
}

// E14InstantRecovery measures open-for-business-during-redo: time to the
// first served client request (analysis + one demand chain + a network
// round trip) against the full-redo wall time on a twin crashed image,
// across redo-suffix lengths and background worker counts.  Every sweep
// point also re-verifies the headline invariant: after the drain, on-demand
// recovery's state and decision counters are byte-identical to a full-redo
// restart.
func E14InstantRecovery() (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "instant recovery: time to first served request vs full redo",
		Paper:   "Section 5 REDO; instant-recovery scheduling (Sauer & Härder) over dependency chains",
		Columns: []string{"redo ops", "workers", "chains", "full redo", "first request", "speedup"},
	}
	var rows, violations int64
	for _, cfg := range e14Configs() {
		var (
			fullRedo, firstServe time.Duration
			chains, redone       int
			err                  error
		)
		// Wall-clock comparisons on shared CI machines are noisy; a large
		// sweep point gets a few attempts before a violation is recorded.
		for attempt := 0; attempt < e14Attempts; attempt++ {
			fullRedo, firstServe, chains, redone, err = e14Measure(cfg)
			if err != nil {
				return nil, err
			}
			if !cfg.large || firstServe < fullRedo {
				break
			}
		}
		rows++
		if cfg.large && firstServe >= fullRedo {
			violations++
		}
		t.AddRow(redone, cfg.workers, chains,
			fullRedo.Round(time.Microsecond).String(),
			firstServe.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", float64(fullRedo)/float64(firstServe)))
	}
	if DefaultObs != nil {
		DefaultObs.Counter("e14.rows").Add(rows)
		DefaultObs.Counter("e14.first_serve_violations").Add(violations)
	}
	t.Notes = append(t.Notes,
		"first request = analysis + demand redo of one dependency chain + a loopback round trip; full redo replays every chain before serving",
		"each sweep point verifies on-demand recovery against its full-redo twin: byte-identical state and identical decision counters after the drain",
		"timings are wall clock; only large rows are held to the strict first-serve < full-redo bar (short logs honestly show the fixed-cost crossover), and a large row is retried before a violation is recorded",
	)
	return t, nil
}
