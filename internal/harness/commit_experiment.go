package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"logicallog/internal/op"
	"logicallog/internal/wal"
)

// E12 commit fast-lane parameters.  The burst mix models a commit-heavy
// multi-writer: most appends are blind physical writes, a slice of them
// hammer a few hot objects (the absorption window), and every committer
// group-commits its own batch tail.
const (
	e12Committers = 8
	e12OpsPerG    = 400
	e12HotKeys    = 4
	e12ColdKeys   = 256
	e12ValueBytes = 96
	e12ForceEvery = 16
)

// e12Burst drives the write-burst mix against l from e12Committers
// goroutines and returns the total records appended.
func e12Burst(l *wal.Log) (int64, error) {
	var wg sync.WaitGroup
	errs := make(chan error, e12Committers)
	for g := 0; g < e12Committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			val := make([]byte, e12ValueBytes)
			rng.Read(val)
			var last op.SI
			for i := 0; i < e12OpsPerG; i++ {
				var key op.ObjectID
				if i%4 != 3 {
					// Hot writes: repeated blind updates of a small set,
					// the absorbable half of the mix.
					key = op.ObjectID(fmt.Sprintf("hot%d", rng.Intn(e12HotKeys)))
				} else {
					key = op.ObjectID(fmt.Sprintf("g%d-c%d", g, rng.Intn(e12ColdKeys)))
				}
				val[0], val[1] = byte(i), byte(g)
				lsn, err := l.AppendOp(op.NewPhysicalWrite(key, val))
				if err != nil {
					errs <- err
					return
				}
				last = lsn
				if i%e12ForceEvery == e12ForceEvery-1 {
					if err := l.ForceThrough(last); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return 0, err
	}
	if err := l.Force(); err != nil {
		return 0, err
	}
	return int64(e12Committers) * e12OpsPerG, nil
}

// e12SerialHash runs a deterministic single-threaded slice of the mix on a
// fresh log with the given stream count and returns the sha256 of the
// durable bytes — the byte-identity anchor for the stream-merge invariant.
func e12SerialHash(streams int, absorb bool) (string, error) {
	dev := wal.NewMemDevice()
	l, err := wal.New(dev)
	if err != nil {
		return "", err
	}
	l.SetStreams(streams, absorb)
	rng := rand.New(rand.NewSource(42))
	val := make([]byte, e12ValueBytes)
	rng.Read(val)
	var last op.SI
	for i := 0; i < 600; i++ {
		key := op.ObjectID(fmt.Sprintf("hot%d", rng.Intn(e12HotKeys)))
		if i%4 == 3 {
			key = op.ObjectID(fmt.Sprintf("c%d", rng.Intn(e12ColdKeys)))
		}
		val[0] = byte(i)
		lsn, err := l.AppendOp(op.NewPhysicalWrite(key, val))
		if err != nil {
			return "", err
		}
		last = lsn
		if i%e12ForceEvery == e12ForceEvery-1 {
			if err := l.ForceThrough(last); err != nil {
				return "", err
			}
		}
	}
	if err := l.Force(); err != nil {
		return "", err
	}
	data, err := dev.ReadAll()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// E12CommitStreams measures the commit-path fast lane: the same write-burst
// mix appended through 1..8 per-core log streams, with and without log
// absorption, reporting append throughput, records absorbed, bytes elided,
// and device forces.  The experiment also verifies the fast lane's core
// invariant — the durable byte stream of a serial workload is identical at
// every stream count — and fails loudly if the hashes diverge.
func E12CommitStreams() (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "commit fast lane: per-core log streams and absorption (write-burst mix)",
		Paper:   "Section 6 outlook (logging as the whole commit path)",
		Columns: []string{"streams", "absorb", "appends", "appends/ms", "absorbed", "bytes elided", "device forces"},
	}
	configs := []struct {
		streams int
		absorb  bool
	}{
		{1, false}, {1, true}, {2, true}, {4, true}, {8, true},
	}
	var totalAppends, totalForces, totalAbsorbed, totalElided int64
	for _, cfg := range configs {
		l, err := wal.New(wal.NewMemDevice())
		if err != nil {
			return nil, err
		}
		if DefaultObs != nil {
			l.SetObs(DefaultObs)
		}
		l.SetStreams(cfg.streams, cfg.absorb)
		start := time.Now()
		n, err := e12Burst(l)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		st := l.Stats()
		perMS := float64(n) / (float64(wall.Microseconds()) / 1000)
		t.AddRow(cfg.streams, fmt.Sprint(cfg.absorb), n, perMS,
			st.Absorbed, st.BytesElided, st.Forces)
		totalAppends += n
		totalForces += st.Forces
		totalAbsorbed += st.Absorbed
		totalElided += st.BytesElided
	}
	if DefaultObs != nil {
		// The commit metric family, validated by the llbench/v1 schema.
		DefaultObs.Counter("commit.appends").Add(totalAppends)
		DefaultObs.Counter("commit.forces").Add(totalForces)
		DefaultObs.Counter("commit.absorbed").Add(totalAbsorbed)
		DefaultObs.Counter("commit.bytes_elided").Add(totalElided)
	}

	base, err := e12SerialHash(1, true)
	if err != nil {
		return nil, err
	}
	for _, streams := range []int{2, 4, 8} {
		h, err := e12SerialHash(streams, true)
		if err != nil {
			return nil, err
		}
		if h != base {
			return nil, fmt.Errorf("harness: E12: durable log diverges at %d streams: %s vs %s",
				streams, h, base)
		}
	}
	t.Notes = append(t.Notes,
		"absorption elides superseded hot-key writes; the cold slice and read-pinned records always merge in full",
		"serial-workload durable logs are byte-identical at 1/2/4/8 streams (sha256 "+base[:12]+"…): merged order equals single-stream order",
		"appends/ms is machine-dependent; the shape to expect is throughput rising with streams on multi-core hosts",
	)
	return t, nil
}
