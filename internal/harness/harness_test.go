package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func runExp(t *testing.T, id string) *Table {
	t.Helper()
	exp, ok := Find(id)
	if !ok {
		t.Fatalf("experiment %s not found", id)
	}
	tbl, err := exp.Run()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tbl.Rows) == 0 || len(tbl.Columns) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("%s: ragged row %v", id, row)
		}
	}
	return tbl
}

func cellInt(t *testing.T, tbl *Table, row, col int) int64 {
	t.Helper()
	v, err := strconv.ParseInt(tbl.Rows[row][col], 10, 64)
	if err != nil {
		t.Fatalf("%s cell (%d,%d) = %q not an int", tbl.ID, row, col, tbl.Rows[row][col])
	}
	return v
}

func cellFloat(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s cell (%d,%d) = %q not a float", tbl.ID, row, col, tbl.Rows[row][col])
	}
	return v
}

// TestE1Shape checks Figure 1's claim: logical cost flat, physiological
// growing, ratio increasing with object size.
func TestE1Shape(t *testing.T) {
	tbl := runExp(t, "E1")
	n := len(tbl.Rows)
	firstLogical := cellInt(t, tbl, 0, 1)
	lastLogical := cellInt(t, tbl, n-1, 1)
	if lastLogical > 4*firstLogical {
		t.Errorf("logical cost not flat: %d -> %d", firstLogical, lastLogical)
	}
	for i := 0; i < n; i++ {
		logical, physio := cellInt(t, tbl, i, 1), cellInt(t, tbl, i, 2)
		if physio <= logical {
			t.Errorf("row %d: physiological (%d) must exceed logical (%d)", i, physio, logical)
		}
	}
	// Ratio grows with object size, reaching >1000x at 1 MiB.
	if r := cellFloat(t, tbl, n-1, 3); r < 1000 {
		t.Errorf("1 MiB ratio = %.1f, want >= 1000", r)
	}
	if r0, rn := cellFloat(t, tbl, 0, 3), cellFloat(t, tbl, n-1, 3); rn <= r0 {
		t.Errorf("ratio must grow with size: %.1f -> %.1f", r0, rn)
	}
}

func TestE2AllVerified(t *testing.T) {
	if testing.Short() {
		t.Skip("E2 runs 200 crash tests")
	}
	tbl := runExp(t, "E2")
	for i := range tbl.Rows {
		if tbl.Rows[i][1] != tbl.Rows[i][2] {
			t.Errorf("config %s: %s/%s verified", tbl.Rows[i][0], tbl.Rows[i][2], tbl.Rows[i][1])
		}
	}
}

// TestE3Shape: rW flush sets bounded by W's; W grows with blind writes.
func TestE3Shape(t *testing.T) {
	tbl := runExp(t, "E3")
	for i := range tbl.Rows {
		wMax, rMax := cellInt(t, tbl, i, 1), cellInt(t, tbl, i, 3)
		wMean, rMean := cellFloat(t, tbl, i, 2), cellFloat(t, tbl, i, 4)
		if rMax > wMax {
			t.Errorf("row %d: rW max %d > W max %d", i, rMax, wMax)
		}
		if rMean > wMean+1e-9 {
			t.Errorf("row %d: rW mean %.2f > W mean %.2f", i, rMean, wMean)
		}
	}
}

// TestE4Shape: Figure 7 under rW needs no multi-object atomic flush; under
// W it does.
func TestE4Shape(t *testing.T) {
	tbl := runExp(t, "E4")
	var fig7W, fig7RW []string
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[0], "Fig7") {
			switch row[1] {
			case "W":
				fig7W = row
			case "rW":
				fig7RW = row
			}
		}
	}
	if fig7W == nil || fig7RW == nil {
		t.Fatal("Figure 7 rows missing")
	}
	if fig7W[4] != "yes" {
		t.Errorf("Figure 7 under W must need an atomic multi-flush: %v", fig7W)
	}
	if fig7RW[4] != "no" {
		t.Errorf("Figure 7 under rW must not need an atomic multi-flush: %v", fig7RW)
	}
}

// TestE5Shape: Section 4's cost claims.  With a size-k set: identity writes
// log k-1 values and write k objects once; flush txns write 2k objects and
// log k values + k+1 log writes; shadows swing a pointer.
func TestE5Shape(t *testing.T) {
	tbl := runExp(t, "E5")
	byKey := map[string][]string{}
	for _, row := range tbl.Rows {
		byKey[row[0]+"/"+row[1]] = row
	}
	for _, k := range []int{2, 4, 8, 16} {
		kk := strconv.Itoa(k)
		id := byKey[kk+"/identity-write"]
		ft := byKey[kk+"/flush-txn"]
		sh := byKey[kk+"/shadow"]
		if id == nil || ft == nil || sh == nil {
			t.Fatalf("missing rows for k=%d", k)
		}
		// Section 4: with a flush transaction "each object in the atomic
		// flush set needs to be written twice" — once to the flush-txn log
		// and once in place — so total device writes are ~2k vs identity's k.
		idWrites, _ := strconv.Atoi(id[2])
		ftWrites, _ := strconv.Atoi(ft[2])
		ftLogWrites, _ := strconv.Atoi(ft[4])
		if ftWrites+ftLogWrites < 2*idWrites {
			t.Errorf("k=%d: flush-txn device writes %d not ~2x identity's %d", k, ftWrites+ftLogWrites, idWrites)
		}
		idBytes, _ := strconv.Atoi(id[3])
		if idBytes != (k-1)*4096 {
			t.Errorf("k=%d: identity writes logged %d bytes, want %d", k, idBytes, (k-1)*4096)
		}
		if ftLogWrites != k+1 {
			t.Errorf("k=%d: flush-txn log writes = %d, want %d", k, ftLogWrites, k+1)
		}
		if swings, _ := strconv.Atoi(sh[5]); swings != 1 {
			t.Errorf("k=%d: shadow pointer swings = %d", k, swings)
		}
	}
}

// TestE6Shape: rSI never redoes more than vSI.
func TestE6Shape(t *testing.T) {
	tbl := runExp(t, "E6")
	for i := 0; i+1 < len(tbl.Rows); i += 2 {
		vsiRow, rsiRow := tbl.Rows[i], tbl.Rows[i+1]
		if vsiRow[1] != "vSI" || rsiRow[1] != "rSI" {
			t.Fatalf("unexpected row order: %v / %v", vsiRow, rsiRow)
		}
		vsiRedone := cellInt(t, tbl, i, 3)
		rsiRedone := cellInt(t, tbl, i+1, 3)
		if rsiRedone > vsiRedone {
			t.Errorf("delete pct %s: rSI redid %d > vSI's %d", vsiRow[0], rsiRedone, vsiRedone)
		}
		vsiScan := cellInt(t, tbl, i, 2)
		rsiScan := cellInt(t, tbl, i+1, 2)
		if rsiScan > vsiScan {
			t.Errorf("delete pct %s: rSI scanned %d > vSI's %d", vsiRow[0], rsiScan, vsiScan)
		}
	}
}

// TestE7Shape: W_L beats W_P which beats physiological, increasingly with
// buffer size.
func TestE7Shape(t *testing.T) {
	tbl := runExp(t, "E7")
	for i := range tbl.Rows {
		wl := cellInt(t, tbl, i, 1)
		wp := cellInt(t, tbl, i, 2)
		ph := cellInt(t, tbl, i, 3)
		if !(wl < wp && wp <= ph) {
			t.Errorf("row %d: want W_L (%d) < W_P (%d) <= physiological (%d)", i, wl, wp, ph)
		}
	}
	// At 128 KiB the W_L saving is enormous.
	last := len(tbl.Rows) - 1
	wl, wp := cellInt(t, tbl, last, 1), cellInt(t, tbl, last, 2)
	if wp/wl < 100 {
		t.Errorf("128 KiB W_P/W_L = %d, want >= 100x", wp/wl)
	}
}

func TestE8Shape(t *testing.T) {
	tbl := runExp(t, "E8")
	for i := range tbl.Rows {
		if r := cellFloat(t, tbl, i, 3); r < 10 {
			t.Errorf("row %d: physio/logical ratio %.1f too small", i, r)
		}
	}
	// Ratio grows with file size.
	if r0, rn := cellFloat(t, tbl, 0, 3), cellFloat(t, tbl, len(tbl.Rows)-1, 3); rn <= r0 {
		t.Errorf("ratio must grow with file size: %.1f -> %.1f", r0, rn)
	}
}

func TestE9Shape(t *testing.T) {
	tbl := runExp(t, "E9")
	for i := range tbl.Rows {
		logical := cellInt(t, tbl, i, 1)
		physio := cellInt(t, tbl, i, 2)
		splits := cellInt(t, tbl, i, 3)
		if splits == 0 {
			t.Errorf("row %d: no splits occurred; experiment is vacuous", i)
		}
		if physio <= logical {
			t.Errorf("row %d: physiological (%d) must exceed logical (%d)", i, physio, logical)
		}
		if scanned := cellInt(t, tbl, i, 5); scanned != 256 {
			t.Errorf("row %d: post-crash leaf-chain scan found %d keys, want 256", i, scanned)
		}
	}
}

func TestE10Shape(t *testing.T) {
	tbl := runExp(t, "E10")
	// Rows are ordered never / 100 / 25: scan work must not increase.
	prevScan := int64(1 << 62)
	for i := range tbl.Rows {
		scanned := cellInt(t, tbl, i, 2)
		if scanned > prevScan {
			t.Errorf("row %d: scan grew with checkpoint frequency (%d > %d)", i, scanned, prevScan)
		}
		prevScan = scanned
	}
}

func TestE11Shape(t *testing.T) {
	tbl := runExp(t, "E11")
	if len(tbl.Rows) != 4 {
		t.Fatalf("want 4 batch sizes, got %d rows", len(tbl.Rows))
	}
	applied0 := cellInt(t, tbl, 0, 2)
	redo0 := cellInt(t, tbl, 0, 4)
	if applied0 == 0 {
		t.Fatal("no records shipped; experiment is vacuous")
	}
	if redo0 <= 0 || redo0 >= applied0 {
		t.Errorf("failover redo %d should be a proper uninstalled tail of %d applied", redo0, applied0)
	}
	prevLag := int64(1 << 62)
	for i := range tbl.Rows {
		// The same durable log ships at every batch size, so the applied
		// count and the promotion redo are batch-size independent.
		if got := cellInt(t, tbl, i, 2); got != applied0 {
			t.Errorf("row %d: applied %d, want %d at every batch size", i, got, applied0)
		}
		if got := cellInt(t, tbl, i, 4); got != redo0 {
			t.Errorf("row %d: failover redo %d, want %d at every batch size", i, got, redo0)
		}
		if lag := cellInt(t, tbl, i, 3); lag > prevLag {
			t.Errorf("row %d: peak lag grew with batch size (%d > %d)", i, lag, prevLag)
		} else {
			prevLag = lag
		}
	}
	// One-record batches cannot keep up with the workload: their peak lag
	// must strictly exceed the big-batch steady state.
	if lag1, lagBig := cellInt(t, tbl, 0, 3), cellInt(t, tbl, 3, 3); lag1 <= lagBig {
		t.Errorf("peak lag at batch 1 (%d) should exceed batch 64 (%d)", lag1, lagBig)
	}
	if batches1, batchesBig := cellInt(t, tbl, 0, 1), cellInt(t, tbl, 3, 1); batches1 <= batchesBig {
		t.Errorf("batch count at size 1 (%d) should exceed size 64 (%d)", batches1, batchesBig)
	}
}

func TestE12Shape(t *testing.T) {
	tbl := runExp(t, "E12")
	if len(tbl.Rows) != 5 {
		t.Fatalf("want 5 configurations, got %d rows", len(tbl.Rows))
	}
	appends0 := cellInt(t, tbl, 0, 2)
	if appends0 == 0 {
		t.Fatal("no appends; experiment is vacuous")
	}
	for i := range tbl.Rows {
		// Every configuration appends the same burst mix.
		if got := cellInt(t, tbl, i, 2); got != appends0 {
			t.Errorf("row %d: appends %d, want %d in every configuration", i, got, appends0)
		}
	}
	// Row 0 is absorption-off: nothing may be elided.
	if a := cellInt(t, tbl, 0, 4); a != 0 {
		t.Errorf("absorb=false absorbed %d records", a)
	}
	if b := cellInt(t, tbl, 0, 5); b != 0 {
		t.Errorf("absorb=false elided %d bytes", b)
	}
	// Every absorb-on row must elide something: the hot-key slice guarantees
	// superseded writes inside each force window.
	for i := 1; i < len(tbl.Rows); i++ {
		if a := cellInt(t, tbl, i, 4); a <= 0 {
			t.Errorf("row %d: absorbed = %d, want > 0", i, a)
		}
		if b := cellInt(t, tbl, i, 5); b <= 0 {
			t.Errorf("row %d: bytes elided = %d, want > 0", i, b)
		}
	}
}

func TestA1Shape(t *testing.T) {
	tbl := runExp(t, "A1")
	if len(tbl.Rows) != 2 {
		t.Fatal("want 2 rows")
	}
	withRecs := cellInt(t, tbl, 0, 2)
	without := cellInt(t, tbl, 1, 2)
	if withRecs > without {
		t.Errorf("install records must not increase redo work: %d vs %d", withRecs, without)
	}
}

func TestA2Shape(t *testing.T) {
	tbl := runExp(t, "A2")
	var w, rw []string
	for _, row := range tbl.Rows {
		switch row[0] {
		case "W":
			w = row
		case "rW":
			rw = row
		}
	}
	if w == nil || rw == nil {
		t.Fatal("missing rows")
	}
	rwUnflushed, _ := strconv.Atoi(rw[3])
	wUnflushed, _ := strconv.Atoi(w[3])
	if wUnflushed != 0 {
		t.Errorf("W installed %d objects without flushing; W cannot do that", wUnflushed)
	}
	if rwUnflushed == 0 {
		t.Error("rW installed nothing without flushing on a logical workload; expected some")
	}
}

func TestRenderAndFind(t *testing.T) {
	tbl := &Table{ID: "T", Title: "title", Paper: "Fig X", Columns: []string{"a", "bb"}}
	tbl.AddRow("1", 22)
	tbl.AddRow(3.5, "x")
	tbl.Notes = append(tbl.Notes, "note")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"T — title", "Fig X", "a", "bb", "22", "3.50", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	if _, ok := Find("e1"); !ok {
		t.Error("Find must be case-insensitive")
	}
	if _, ok := Find("E99"); ok {
		t.Error("Find invented an experiment")
	}
	if len(All()) < 12 {
		t.Errorf("All() = %d experiments", len(All()))
	}
}
