package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"logicallog/internal/obs"
)

// ReportSchema identifies the llbench JSON report format.  Bump only on
// incompatible changes; additive fields keep the version.
const ReportSchema = "llbench/v1"

// DefaultObs, when non-nil, is attached (as Options.Obs) to every engine the
// harness builds, so experiments feed the shared metrics registry that
// RunReport snapshots per experiment (cmd/llbench's -json and -metrics
// modes).  Mirrors DefaultRedoWorkers.
var DefaultObs *obs.Registry

// Report is llbench's machine-readable output: every experiment's result
// table plus a per-experiment metrics snapshot and wall time.
type Report struct {
	// Schema is always ReportSchema ("llbench/v1").
	Schema string `json:"schema"`
	// GoVersion records the toolchain that produced the report.
	GoVersion string `json:"go_version"`
	// Experiments lists results in the order run.
	Experiments []ExperimentResult `json:"experiments"`
}

// ExperimentResult is one experiment's outcome.
type ExperimentResult struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	// WallMS is the experiment's wall-clock time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Table is the result table, cells pre-formatted exactly as the text
	// renderer prints them.
	Table TableResult `json:"table"`
	// Metrics is the obs registry snapshot taken after the experiment
	// (registry reset before each experiment; empty when no registry is
	// installed).
	Metrics obs.Snapshot `json:"metrics"`
}

// TableResult is the JSON shape of a result Table.
type TableResult struct {
	Title   string     `json:"title"`
	Paper   string     `json:"paper,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

func tableResult(t *Table) TableResult {
	return TableResult{
		Title:   t.Title,
		Paper:   t.Paper,
		Columns: t.Columns,
		Rows:    t.Rows,
		Notes:   t.Notes,
	}
}

// RunReport runs the given experiments and collects a Report.  Before each
// experiment the DefaultObs registry (if installed) is reset so its snapshot
// is attributable to that experiment alone.
func RunReport(exps []Experiment) (*Report, error) {
	rep := &Report{Schema: ReportSchema, GoVersion: runtime.Version()}
	for _, e := range exps {
		DefaultObs.Reset()
		start := time.Now()
		t, err := e.Run()
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", e.ID, err)
		}
		rep.Experiments = append(rep.Experiments, ExperimentResult{
			ID:      e.ID,
			Name:    e.Name,
			WallMS:  float64(time.Since(start).Microseconds()) / 1000,
			Table:   tableResult(t),
			Metrics: DefaultObs.Snapshot(),
		})
	}
	return rep, nil
}

// WriteJSON encodes the report, indented for diffable artifacts.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport decodes a report previously written by WriteJSON.  It rejects
// unknown fields so schema drift is caught rather than silently dropped;
// call ValidateReport for semantic checks.
func ReadReport(rd io.Reader) (*Report, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	rep := &Report{}
	if err := dec.Decode(rep); err != nil {
		return nil, fmt.Errorf("harness: report decode: %w", err)
	}
	return rep, nil
}

// ValidateReport checks the structural invariants consumers rely on: schema
// version, non-empty identifying fields, and rectangular tables (every row
// exactly as wide as its column header).
func ValidateReport(r *Report) error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("harness: report schema %q, want %q", r.Schema, ReportSchema)
	}
	if r.GoVersion == "" {
		return fmt.Errorf("harness: report missing go_version")
	}
	if len(r.Experiments) == 0 {
		return fmt.Errorf("harness: report has no experiments")
	}
	for i, e := range r.Experiments {
		if e.ID == "" || e.Name == "" {
			return fmt.Errorf("harness: experiment %d missing id or name", i)
		}
		if e.WallMS < 0 {
			return fmt.Errorf("harness: %s: negative wall_ms", e.ID)
		}
		if e.Table.Title == "" {
			return fmt.Errorf("harness: %s: table missing title", e.ID)
		}
		if len(e.Table.Columns) == 0 {
			return fmt.Errorf("harness: %s: table has no columns", e.ID)
		}
		for j, row := range e.Table.Rows {
			if len(row) != len(e.Table.Columns) {
				return fmt.Errorf("harness: %s: row %d has %d cells, want %d",
					e.ID, j, len(row), len(e.Table.Columns))
			}
		}
		if e.ID == "E11" {
			if err := validateShipMetrics(e); err != nil {
				return err
			}
		}
		if e.ID == "E12" {
			if err := validateCommitMetrics(e); err != nil {
				return err
			}
		}
		if e.ID == "E13" {
			if err := validateDomainMetrics(e); err != nil {
				return err
			}
		}
		if e.ID == "E14" {
			if err := validateServerMetrics(e); err != nil {
				return err
			}
		}
		if err := validateFlightMetrics(e); err != nil {
			return err
		}
	}
	return nil
}

// validateCommitMetrics checks the commit fast-lane metrics consumers read
// from an E12 snapshot.  A report produced without a metrics registry has an
// empty snapshot, which stays valid; once any counter is present the commit
// family must be complete and the absorption pass must have elided bytes.
func validateCommitMetrics(e ExperimentResult) error {
	if len(e.Metrics.Counters) == 0 {
		return nil
	}
	for _, c := range []string{"commit.appends", "commit.forces", "commit.absorbed", "commit.bytes_elided",
		"wal.absorb.hits", "wal.absorb.bytes_elided"} {
		if _, ok := e.Metrics.Counters[c]; !ok {
			return fmt.Errorf("harness: %s: metrics missing counter %q", e.ID, c)
		}
	}
	if e.Metrics.Counters["commit.appends"] <= 0 {
		return fmt.Errorf("harness: %s: commit.appends is zero", e.ID)
	}
	if e.Metrics.Counters["commit.bytes_elided"] <= 0 {
		return fmt.Errorf("harness: %s: commit.bytes_elided is zero; absorption never fired", e.ID)
	}
	for _, h := range []string{"wal.merge.ns", "wal.merge.records"} {
		hs, ok := e.Metrics.Histograms[h]
		if !ok {
			return fmt.Errorf("harness: %s: metrics missing histogram %q", e.ID, h)
		}
		if hs.Count == 0 {
			return fmt.Errorf("harness: %s: histogram %q is empty", e.ID, h)
		}
	}
	return nil
}

// validateDomainMetrics checks the domain-workload metrics consumers read
// from an E13 snapshot.  A report produced without a metrics registry has an
// empty snapshot, which stays valid; once any counter is present the domain
// family must be complete and the logical runs must have logged fewer bytes
// than the physiological baseline.
func validateDomainMetrics(e ExperimentResult) error {
	if len(e.Metrics.Counters) == 0 {
		return nil
	}
	for _, c := range []string{"domain.ops", "domain.logical_bytes", "domain.physio_bytes"} {
		if _, ok := e.Metrics.Counters[c]; !ok {
			return fmt.Errorf("harness: %s: metrics missing counter %q", e.ID, c)
		}
	}
	if e.Metrics.Counters["domain.ops"] <= 0 {
		return fmt.Errorf("harness: %s: domain.ops is zero", e.ID)
	}
	if e.Metrics.Counters["domain.logical_bytes"] >= e.Metrics.Counters["domain.physio_bytes"] {
		return fmt.Errorf("harness: %s: logical log bytes (%d) not below the physiological baseline (%d)",
			e.ID, e.Metrics.Counters["domain.logical_bytes"], e.Metrics.Counters["domain.physio_bytes"])
	}
	return nil
}

// validateServerMetrics checks the instant-recovery families consumers read
// from an E14 snapshot.  A report produced without a metrics registry has an
// empty snapshot, which stays valid; once any counter is present the e14.*,
// server.*, and recovery.ondemand.* families must be complete, traffic must
// have flowed, and — the headline claim — no sweep point may have served
// its first request slower than its full-redo twin.
func validateServerMetrics(e ExperimentResult) error {
	if len(e.Metrics.Counters) == 0 {
		return nil
	}
	for _, c := range []string{"e14.rows", "e14.first_serve_violations",
		"server.requests", "server.responses",
		"recovery.ondemand.demand_chains", "recovery.ondemand.background_chains",
		"recovery.ondemand.requires", "recovery.ondemand.demand_waits"} {
		if _, ok := e.Metrics.Counters[c]; !ok {
			return fmt.Errorf("harness: %s: metrics missing counter %q", e.ID, c)
		}
	}
	if e.Metrics.Counters["e14.rows"] <= 0 {
		return fmt.Errorf("harness: %s: e14.rows is zero", e.ID)
	}
	if v := e.Metrics.Counters["e14.first_serve_violations"]; v != 0 {
		return fmt.Errorf("harness: %s: %d sweep points served their first request no faster than full redo", e.ID, v)
	}
	if e.Metrics.Counters["server.requests"] <= 0 {
		return fmt.Errorf("harness: %s: server.requests is zero", e.ID)
	}
	if e.Metrics.Counters["server.responses"] <= 0 {
		return fmt.Errorf("harness: %s: server.responses is zero", e.ID)
	}
	if e.Metrics.Counters["recovery.ondemand.demand_chains"] <= 0 {
		return fmt.Errorf("harness: %s: no chain was ever redone on demand", e.ID)
	}
	return nil
}

// validateFlightMetrics checks the decision-provenance families in any
// experiment's snapshot.  Both are optional — a run without a flight
// recorder (or metrics registry) carries neither — but once any counter of
// a family is present the family must be complete: the flight.* trio must
// agree with itself (the ring cannot drop more events than were emitted),
// and the recovery.decide.* quartet must all be reported so consumers can
// sum decisions without guessing at absent kinds.
func validateFlightMetrics(e ExperimentResult) error {
	flightFamily := []string{"flight.events", "flight.ring_drops", "flight.spill_bytes"}
	if hasAnyCounter(e, flightFamily) {
		for _, c := range flightFamily {
			if _, ok := e.Metrics.Counters[c]; !ok {
				return fmt.Errorf("harness: %s: metrics missing counter %q", e.ID, c)
			}
			if e.Metrics.Counters[c] < 0 {
				return fmt.Errorf("harness: %s: counter %q is negative", e.ID, c)
			}
		}
		if e.Metrics.Counters["flight.ring_drops"] > e.Metrics.Counters["flight.events"] {
			return fmt.Errorf("harness: %s: flight.ring_drops (%d) exceeds flight.events (%d)",
				e.ID, e.Metrics.Counters["flight.ring_drops"], e.Metrics.Counters["flight.events"])
		}
	}
	decideFamily := []string{"recovery.decide.redo", "recovery.decide.skip_installed",
		"recovery.decide.skip_unexposed", "recovery.decide.voided"}
	if hasAnyCounter(e, decideFamily) {
		for _, c := range decideFamily {
			if _, ok := e.Metrics.Counters[c]; !ok {
				return fmt.Errorf("harness: %s: metrics missing counter %q", e.ID, c)
			}
			if e.Metrics.Counters[c] < 0 {
				return fmt.Errorf("harness: %s: counter %q is negative", e.ID, c)
			}
		}
	}
	return nil
}

func hasAnyCounter(e ExperimentResult, names []string) bool {
	for _, c := range names {
		if _, ok := e.Metrics.Counters[c]; ok {
			return true
		}
	}
	return false
}

// validateShipMetrics checks the replication metrics consumers read from an
// E11 snapshot.  A report produced without a metrics registry has an empty
// snapshot, which stays valid; once any counter is present the ship family
// must be complete.
func validateShipMetrics(e ExperimentResult) error {
	if len(e.Metrics.Counters) == 0 {
		return nil
	}
	for _, c := range []string{"ship.batches_sent", "ship.records_shipped", "ship.applied_ops", "ship.promotions"} {
		if _, ok := e.Metrics.Counters[c]; !ok {
			return fmt.Errorf("harness: %s: metrics missing counter %q", e.ID, c)
		}
	}
	for _, g := range []string{"ship.lag_lsn", "ship.lag_records"} {
		if _, ok := e.Metrics.Gauges[g]; !ok {
			return fmt.Errorf("harness: %s: metrics missing gauge %q", e.ID, g)
		}
	}
	for _, h := range []string{"ship.apply.ns", "ship.promotion.ns", "ship.batch.records"} {
		hs, ok := e.Metrics.Histograms[h]
		if !ok {
			return fmt.Errorf("harness: %s: metrics missing histogram %q", e.ID, h)
		}
		if hs.Count == 0 {
			return fmt.Errorf("harness: %s: histogram %q is empty", e.ID, h)
		}
	}
	return nil
}
