package harness

import (
	"time"

	"logicallog/internal/ship"
	"logicallog/internal/workload"
)

// E11ShipLag measures the replication subsystem: a primary runs a 400-op
// workload while a sender ships its log to a warm standby one batch per
// step, then the primary dies and the standby is promoted.  Smaller batches
// drain a durable backlog more slowly (higher peak lag, more batches on the
// wire); failover cost is independent of batch size because continuous redo
// already applied every shipped record.
func E11ShipLag() (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "replication lag and failover vs ship batch size (400-op workload)",
		Paper:   "Section 6 outlook (recovery as continuous redo)",
		Columns: []string{"batch records", "batches", "records applied", "peak lag (records)", "failover redo", "failover µs"},
	}
	for _, batch := range []int{1, 4, 16, 64} {
		opts := logicalOpts()
		if opts.RedoWorkers == 0 {
			opts.RedoWorkers = DefaultRedoWorkers
		}
		if opts.Obs == nil {
			opts.Obs = DefaultObs
		}
		eng, err := newEngine(opts)
		if err != nil {
			return nil, err
		}
		sb, err := ship.NewStandby(ship.StandbyConfig{Opts: opts, TruncateOnCheckpoint: opts.LogInstalls})
		if err != nil {
			return nil, err
		}
		s := ship.NewSender(eng.Log(), ship.NewLink(sb, nil), 1, ship.SenderConfig{
			BatchRecords: batch,
			Obs:          DefaultObs,
		})

		spec := workload.DefaultSpec(77)
		spec.Steps = 400
		gen, err := workload.NewGenerator(spec)
		if err != nil {
			s.Close()
			return nil, err
		}
		var peakLag int64
		for i, o := range gen.Stream() {
			if err := eng.Execute(o); err != nil {
				s.Close()
				return nil, err
			}
			if i%3 == 2 {
				if err := eng.Log().Force(); err != nil {
					s.Close()
					return nil, err
				}
			}
			if i%11 == 7 {
				if err := eng.InstallOne(); err != nil {
					s.Close()
					return nil, err
				}
			}
			if _, lagRecords := s.Lag(); lagRecords > peakLag {
				peakLag = lagRecords
			}
			// One batch per step: a small batch drains a durable backlog
			// slower than the workload grows it.
			if _, err := s.Pump(); err != nil {
				s.Close()
				return nil, err
			}
		}
		if err := eng.Log().Force(); err != nil {
			s.Close()
			return nil, err
		}
		if err := s.Sync(); err != nil {
			s.Close()
			return nil, err
		}
		st := sb.Stats()
		eng.Crash()
		start := time.Now()
		_, res, err := sb.Promote()
		failover := time.Since(start)
		s.Close()
		if err != nil {
			return nil, err
		}
		t.AddRow(batch, st.Batches, st.Applied, peakLag, res.Redone,
			failover.Microseconds())
	}
	t.Notes = append(t.Notes,
		"peak lag shrinks as batches grow: at one record per batch the backlog drains slower than the workload appends",
		"failover redo is the uninstalled tail, identical at every batch size: continuous redo already applied every shipped record, so promotion cost is set by the install policy, not by shipping; timing is machine-dependent",
	)
	return t, nil
}
