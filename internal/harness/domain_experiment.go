package harness

import (
	"fmt"

	"logicallog/internal/btree"
	"logicallog/internal/core"
	"logicallog/internal/lsm"
	"logicallog/internal/workload"
)

// E13 domain-workload parameters.  The step count is enough for every mix
// to split B+tree pages, flush LSM memtables, and trigger at least one
// multi-table compaction; the seed pins the operation stream so the table
// shape is reproducible.
const (
	e13Steps      = 240
	e13Seed       = 0xd0a1
	e13TreeOrder  = 4
	e13FlushAt    = 6
	e13Fanout     = 3
	e13DomainName = "e13"
)

// DefaultMixes, when non-empty, restricts the scenario mixes E13 sweeps
// (llbench -mix).  Names are resolved by workload.ParseMix.
var DefaultMixes []string

func e13Mixes() []string {
	if len(DefaultMixes) > 0 {
		return DefaultMixes
	}
	return workload.MixNames()
}

// e13Run drives one (mix, domain) pair on a fresh engine with the given
// options: scenario-mix steps interleaved with forces, minimal installs,
// and purges, then a forced crash, recovery, a structural check, and an
// exact model comparison.  It returns the log bytes appended before the
// crash, the redo count, and the surviving key count.
func e13Run(opts core.Options, mixName, domain string) (logBytes, valueBytes, redone int64, keys int, err error) {
	mix, err := workload.ParseMix(mixName)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	eng, err := newEngine(opts)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	var dom workload.Domain
	switch domain {
	case "btree":
		btree.Register(eng.Registry())
		dom, err = btree.New(eng, e13DomainName, e13TreeOrder)
	case "lsm":
		lsm.Register(eng.Registry())
		dom, err = lsm.New(eng, e13DomainName, lsm.Options{FlushThreshold: e13FlushAt, Fanout: e13Fanout})
	default:
		err = fmt.Errorf("harness: E13: unknown domain %q", domain)
	}
	if err != nil {
		return 0, 0, 0, 0, err
	}
	drv, err := workload.NewMixDriver(mix, e13Seed)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	for step := 0; step < e13Steps; step++ {
		switch {
		case step%3 == 1:
			err = eng.Log().Force()
		case step%4 == 2:
			err = eng.InstallOne()
		case step%23 == 19:
			err = eng.FlushAll()
		}
		if err == nil {
			err = drv.Step(dom)
		}
		if err != nil {
			return 0, 0, 0, 0, fmt.Errorf("harness: E13: %s/%s step %d: %w", mixName, domain, step, err)
		}
	}
	if err := eng.Log().Force(); err != nil {
		return 0, 0, 0, 0, err
	}
	st := eng.Stats()
	logBytes, valueBytes = st.Log.BytesAppended, st.Log.ValueBytes

	eng.Crash()
	res, err := eng.Recover()
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("harness: E13: %s/%s recovery: %w", mixName, domain, err)
	}
	switch domain {
	case "btree":
		dom, err = btree.Open(eng, e13DomainName)
	case "lsm":
		dom, err = lsm.Open(eng, e13DomainName, lsm.Options{FlushThreshold: e13FlushAt, Fanout: e13Fanout})
	}
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("harness: E13: %s/%s reopen: %w", mixName, domain, err)
	}
	// Everything was forced, so the recovered domain must equal the model
	// exactly — a structural or content divergence fails the experiment.
	if err := drv.Verify(dom); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("harness: E13: %s/%s recovered mismatch: %w", mixName, domain, err)
	}
	return logBytes, valueBytes, int64(res.Redone), drv.ModelSize(), nil
}

// E13DomainMixes measures logical logging on the recoverable storage
// domains: every scenario mix drives a leaf-linked B+tree and an LSM tree
// on the recommended logical configuration and on the physiological
// baseline, comparing log volume for identical operation streams.  Each
// run ends in a forced crash whose recovery must reproduce the driver's
// model exactly, so the table doubles as an end-to-end domain recovery
// check.
func E13DomainMixes() (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "recoverable domains under scenario mixes: logical vs physiological log bytes",
		Paper:   "Section 1 motivation, Section 6 new domains (B-tree splits, multi-page reorganizations)",
		Columns: []string{"mix", "domain", "logical bytes", "physio bytes", "ratio", "redone", "keys"},
	}
	physio := core.DefaultOptions()
	physio.Physiological = true
	var totalOps, totalLogical, totalPhysio int64
	for _, mixName := range e13Mixes() {
		for _, domain := range []string{"btree", "lsm"} {
			lb, _, redone, keys, err := e13Run(core.DefaultOptions(), mixName, domain)
			if err != nil {
				return nil, err
			}
			pb, _, _, _, err := e13Run(physio, mixName, domain)
			if err != nil {
				return nil, err
			}
			t.AddRow(mixName, domain, lb, pb, float64(pb)/float64(lb), redone, keys)
			totalOps += e13Steps
			totalLogical += lb
			totalPhysio += pb
		}
	}
	if DefaultObs != nil {
		DefaultObs.Counter("domain.ops").Add(totalOps)
		DefaultObs.Counter("domain.logical_bytes").Add(totalLogical)
		DefaultObs.Counter("domain.physio_bytes").Add(totalPhysio)
	}
	t.Notes = append(t.Notes,
		"identical operation streams: each row's logical and physiological runs replay the same seeded mix",
		"logical records name transforms and read sets, so splits, merges, flushes, and compactions log no page images",
		"every run crashes after a final force and recovery must reproduce the driver's model exactly",
	)
	return t, nil
}
