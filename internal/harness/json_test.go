package harness

import (
	"bytes"
	"strings"
	"testing"

	"logicallog/internal/obs"
)

// fakeExperiments returns two cheap experiments so report tests do not pay
// for the real suite.
func fakeExperiments() []Experiment {
	mk := func(id string) Experiment {
		return Experiment{
			ID:   id,
			Name: id + " fake",
			Run: func() (*Table, error) {
				// Touch the registry so per-experiment snapshots have content.
				DefaultObs.Counter("fake.runs").Inc()
				t := &Table{ID: id, Title: id + " title", Columns: []string{"a", "b"}}
				t.AddRow(1, 2)
				return t, nil
			},
		}
	}
	return []Experiment{mk("F1"), mk("F2")}
}

func TestRunReportRoundTrip(t *testing.T) {
	DefaultObs = obs.NewRegistry()
	defer func() { DefaultObs = nil }()

	rep, err := RunReport(fakeExperiments())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(rep); err != nil {
		t.Fatalf("fresh report invalid: %v", err)
	}
	if len(rep.Experiments) != 2 || rep.Experiments[0].ID != "F1" {
		t.Fatalf("experiments = %+v", rep.Experiments)
	}
	// The registry is reset per experiment: each snapshot sees exactly one
	// fake.runs increment, not an accumulation.
	for _, er := range rep.Experiments {
		if n := er.Metrics.Counters["fake.runs"]; n != 1 {
			t.Errorf("%s: fake.runs = %d, want 1 (per-experiment reset)", er.ID, n)
		}
		if er.WallMS < 0 {
			t.Errorf("%s: wall_ms = %v", er.ID, er.WallMS)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(back); err != nil {
		t.Errorf("round-tripped report invalid: %v", err)
	}
	if back.Schema != ReportSchema || len(back.Experiments) != 2 {
		t.Errorf("round-trip = %+v", back)
	}
	if back.Experiments[1].Table.Rows[0][1] != "2" {
		t.Errorf("table cells lost: %+v", back.Experiments[1].Table)
	}
}

func TestReadReportRejectsUnknownFields(t *testing.T) {
	j := `{"schema": "llbench/v1", "go_version": "go", "surprise": 1, "experiments": []}`
	if _, err := ReadReport(strings.NewReader(j)); err == nil {
		t.Error("unknown top-level field must be rejected")
	}
}

func TestValidateReportRejections(t *testing.T) {
	good := func() *Report {
		return &Report{
			Schema:    ReportSchema,
			GoVersion: "go1.x",
			Experiments: []ExperimentResult{{
				ID: "E1", Name: "n",
				Table: TableResult{Title: "t", Columns: []string{"a"}, Rows: [][]string{{"1"}}},
			}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"wrong schema", func(r *Report) { r.Schema = "llbench/v0" }, "schema"},
		{"missing go version", func(r *Report) { r.GoVersion = "" }, "go_version"},
		{"no experiments", func(r *Report) { r.Experiments = nil }, "no experiments"},
		{"missing id", func(r *Report) { r.Experiments[0].ID = "" }, "missing id"},
		{"negative wall", func(r *Report) { r.Experiments[0].WallMS = -1 }, "wall_ms"},
		{"untitled table", func(r *Report) { r.Experiments[0].Table.Title = "" }, "title"},
		{"no columns", func(r *Report) { r.Experiments[0].Table.Columns = nil }, "columns"},
		{"ragged row", func(r *Report) { r.Experiments[0].Table.Rows = [][]string{{"1", "2"}} }, "cells"},
	}
	if err := ValidateReport(good()); err != nil {
		t.Fatalf("baseline report invalid: %v", err)
	}
	for _, c := range cases {
		r := good()
		c.mutate(r)
		err := ValidateReport(r)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestValidateReportE11Metrics pins the replication-metric contract: an E11
// snapshot with any counters must carry the full ship family.
func TestValidateReportE11Metrics(t *testing.T) {
	shipMetrics := func() obs.Snapshot {
		return obs.Snapshot{
			Counters: map[string]int64{
				"ship.batches_sent":    10,
				"ship.records_shipped": 30,
				"ship.applied_ops":     30,
				"ship.promotions":      1,
			},
			Gauges: map[string]int64{"ship.lag_lsn": 0, "ship.lag_records": 0},
			Histograms: map[string]obs.HistogramSnapshot{
				"ship.apply.ns":      {Count: 10},
				"ship.promotion.ns":  {Count: 1},
				"ship.batch.records": {Count: 10},
			},
		}
	}
	good := func() *Report {
		tbl := &Table{ID: "E11", Title: "ship", Columns: []string{"a"}}
		tbl.AddRow(1)
		return &Report{
			Schema:    ReportSchema,
			GoVersion: "go0.0",
			Experiments: []ExperimentResult{{
				ID: "E11", Name: "ship", Table: tableResult(tbl), Metrics: shipMetrics(),
			}},
		}
	}
	if err := ValidateReport(good()); err != nil {
		t.Fatalf("complete ship metrics rejected: %v", err)
	}
	// An empty snapshot (no registry installed) stays valid.
	r := good()
	r.Experiments[0].Metrics = obs.Snapshot{}
	if err := ValidateReport(r); err != nil {
		t.Errorf("empty snapshot rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*obs.Snapshot)
		want   string
	}{
		{"missing counter", func(s *obs.Snapshot) { delete(s.Counters, "ship.batches_sent") }, "ship.batches_sent"},
		{"missing gauge", func(s *obs.Snapshot) { delete(s.Gauges, "ship.lag_records") }, "ship.lag_records"},
		{"missing histogram", func(s *obs.Snapshot) { delete(s.Histograms, "ship.apply.ns") }, "ship.apply.ns"},
		{"empty histogram", func(s *obs.Snapshot) { s.Histograms["ship.promotion.ns"] = obs.HistogramSnapshot{} }, "ship.promotion.ns"},
	}
	for _, c := range cases {
		r := good()
		c.mutate(&r.Experiments[0].Metrics)
		err := ValidateReport(r)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestValidateReportE12Metrics pins the commit-fast-lane metric contract: an
// E12 snapshot with any counters must carry the full commit family, with a
// non-zero absorption yield and populated merge histograms.
func TestValidateReportE12Metrics(t *testing.T) {
	commitMetrics := func() obs.Snapshot {
		return obs.Snapshot{
			Counters: map[string]int64{
				"commit.appends":          16000,
				"commit.forces":           800,
				"commit.absorbed":         900,
				"commit.bytes_elided":     90000,
				"wal.absorb.hits":         900,
				"wal.absorb.bytes_elided": 90000,
			},
			Histograms: map[string]obs.HistogramSnapshot{
				"wal.merge.ns":      {Count: 800},
				"wal.merge.records": {Count: 800},
			},
		}
	}
	good := func() *Report {
		tbl := &Table{ID: "E12", Title: "commit", Columns: []string{"a"}}
		tbl.AddRow(1)
		return &Report{
			Schema:    ReportSchema,
			GoVersion: "go0.0",
			Experiments: []ExperimentResult{{
				ID: "E12", Name: "commit", Table: tableResult(tbl), Metrics: commitMetrics(),
			}},
		}
	}
	if err := ValidateReport(good()); err != nil {
		t.Fatalf("complete commit metrics rejected: %v", err)
	}
	r := good()
	r.Experiments[0].Metrics = obs.Snapshot{}
	if err := ValidateReport(r); err != nil {
		t.Errorf("empty snapshot rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*obs.Snapshot)
		want   string
	}{
		{"missing counter", func(s *obs.Snapshot) { delete(s.Counters, "commit.forces") }, "commit.forces"},
		{"zero appends", func(s *obs.Snapshot) { s.Counters["commit.appends"] = 0 }, "commit.appends"},
		{"zero elision", func(s *obs.Snapshot) { s.Counters["commit.bytes_elided"] = 0 }, "commit.bytes_elided"},
		{"missing histogram", func(s *obs.Snapshot) { delete(s.Histograms, "wal.merge.ns") }, "wal.merge.ns"},
		{"empty histogram", func(s *obs.Snapshot) { s.Histograms["wal.merge.records"] = obs.HistogramSnapshot{} }, "wal.merge.records"},
	}
	for _, c := range cases {
		r := good()
		c.mutate(&r.Experiments[0].Metrics)
		err := ValidateReport(r)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestRunReportRealExperiment smoke-tests the collector against one real
// (cheap) experiment end to end.
func TestRunReportRealExperiment(t *testing.T) {
	DefaultObs = obs.NewRegistry()
	defer func() { DefaultObs = nil }()
	e, ok := Find("E1")
	if !ok {
		t.Fatal("E1 not found")
	}
	rep, err := RunReport([]Experiment{e})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(rep); err != nil {
		t.Fatal(err)
	}
	m := rep.Experiments[0].Metrics
	if m.Histograms["wal.append.ns"].Count == 0 {
		t.Errorf("E1 metrics missing wal.append.ns: %v", m.Histograms)
	}
}

// TestValidateReportFlightMetrics pins the decision-provenance metric
// contract: any experiment snapshot carrying a flight.* or recovery.decide.*
// counter must carry that family completely, with a self-consistent ring
// (drops never exceed emitted events).
func TestValidateReportFlightMetrics(t *testing.T) {
	flightMetrics := func() obs.Snapshot {
		return obs.Snapshot{
			Counters: map[string]int64{
				"flight.events":                  120,
				"flight.ring_drops":              8,
				"flight.spill_bytes":             4096,
				"recovery.decide.redo":           40,
				"recovery.decide.skip_installed": 12,
				"recovery.decide.skip_unexposed": 3,
				"recovery.decide.voided":         0,
			},
		}
	}
	good := func() *Report {
		tbl := &Table{ID: "E8", Title: "redo", Columns: []string{"a"}}
		tbl.AddRow(1)
		return &Report{
			Schema:    ReportSchema,
			GoVersion: "go0.0",
			Experiments: []ExperimentResult{{
				ID: "E8", Name: "redo", Table: tableResult(tbl), Metrics: flightMetrics(),
			}},
		}
	}
	if err := ValidateReport(good()); err != nil {
		t.Fatalf("complete flight metrics rejected: %v", err)
	}
	// An empty snapshot (no recorder attached) stays valid, and so does a
	// snapshot carrying only one of the two families.
	r := good()
	r.Experiments[0].Metrics = obs.Snapshot{}
	if err := ValidateReport(r); err != nil {
		t.Errorf("empty snapshot rejected: %v", err)
	}
	r = good()
	for _, c := range []string{"recovery.decide.redo", "recovery.decide.skip_installed",
		"recovery.decide.skip_unexposed", "recovery.decide.voided"} {
		delete(r.Experiments[0].Metrics.Counters, c)
	}
	if err := ValidateReport(r); err != nil {
		t.Errorf("flight-only snapshot rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*obs.Snapshot)
		want   string
	}{
		{"missing flight counter", func(s *obs.Snapshot) { delete(s.Counters, "flight.ring_drops") }, "flight.ring_drops"},
		{"missing spill counter", func(s *obs.Snapshot) { delete(s.Counters, "flight.spill_bytes") }, "flight.spill_bytes"},
		{"missing decide counter", func(s *obs.Snapshot) { delete(s.Counters, "recovery.decide.voided") }, "recovery.decide.voided"},
		{"negative counter", func(s *obs.Snapshot) { s.Counters["flight.events"] = -1 }, "negative"},
		{"drops exceed events", func(s *obs.Snapshot) { s.Counters["flight.ring_drops"] = 500 }, "exceeds"},
	}
	for _, c := range cases {
		r := good()
		c.mutate(&r.Experiments[0].Metrics)
		err := ValidateReport(r)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestValidateReportE14Metrics pins the instant-recovery metric contract: an
// E14 snapshot with any counters must carry the e14.*, server.*, and
// recovery.ondemand.* families, with traffic flowing, at least one demand
// chain, and zero first-serve violations.
func TestValidateReportE14Metrics(t *testing.T) {
	serverMetrics := func() obs.Snapshot {
		return obs.Snapshot{
			Counters: map[string]int64{
				"e14.rows":                            5,
				"e14.first_serve_violations":          0,
				"server.requests":                     25,
				"server.responses":                    25,
				"recovery.ondemand.demand_chains":     5,
				"recovery.ondemand.background_chains": 1620,
				"recovery.ondemand.requires":          5,
				"recovery.ondemand.demand_waits":      0,
			},
		}
	}
	good := func() *Report {
		tbl := &Table{ID: "E14", Title: "instant recovery", Columns: []string{"a"}}
		tbl.AddRow(1)
		return &Report{
			Schema:    ReportSchema,
			GoVersion: "go0.0",
			Experiments: []ExperimentResult{{
				ID: "E14", Name: "instant recovery", Table: tableResult(tbl), Metrics: serverMetrics(),
			}},
		}
	}
	if err := ValidateReport(good()); err != nil {
		t.Fatalf("complete server metrics rejected: %v", err)
	}
	r := good()
	r.Experiments[0].Metrics = obs.Snapshot{}
	if err := ValidateReport(r); err != nil {
		t.Errorf("empty snapshot rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*obs.Snapshot)
		want   string
	}{
		{"missing rows", func(s *obs.Snapshot) { delete(s.Counters, "e14.rows") }, "e14.rows"},
		{"zero rows", func(s *obs.Snapshot) { s.Counters["e14.rows"] = 0 }, "e14.rows"},
		{"violation recorded", func(s *obs.Snapshot) { s.Counters["e14.first_serve_violations"] = 2 }, "no faster than full redo"},
		{"missing server family", func(s *obs.Snapshot) { delete(s.Counters, "server.responses") }, "server.responses"},
		{"no traffic", func(s *obs.Snapshot) { s.Counters["server.requests"] = 0 }, "server.requests"},
		{"missing ondemand family", func(s *obs.Snapshot) { delete(s.Counters, "recovery.ondemand.requires") }, "recovery.ondemand.requires"},
		{"no demand chains", func(s *obs.Snapshot) { s.Counters["recovery.ondemand.demand_chains"] = 0 }, "demand"},
	}
	for _, c := range cases {
		r := good()
		c.mutate(&r.Experiments[0].Metrics)
		err := ValidateReport(r)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}
