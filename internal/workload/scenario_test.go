package workload

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// mapDomain is a trivial in-memory Domain for driver unit tests.
type mapDomain struct {
	m map[string][]byte
}

func newMapDomain() *mapDomain { return &mapDomain{m: make(map[string][]byte)} }

func (d *mapDomain) Put(k, v []byte) error {
	d.m[string(k)] = append([]byte(nil), v...)
	return nil
}

func (d *mapDomain) Get(k []byte) ([]byte, bool, error) {
	v, ok := d.m[string(k)]
	return v, ok, nil
}

func (d *mapDomain) Delete(k []byte) (bool, error) {
	_, ok := d.m[string(k)]
	delete(d.m, string(k))
	return ok, nil
}

func (d *mapDomain) Range(lo, hi []byte, fn func(k, v []byte) bool) error {
	var keys []string
	for k := range d.m {
		if lo != nil && k < string(lo) {
			continue
		}
		if hi != nil && k >= string(hi) {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn([]byte(k), d.m[k]) {
			return nil
		}
	}
	return nil
}

func (d *mapDomain) Check() error { return nil }

func TestSpecValidateBoundaries(t *testing.T) {
	// Exactly 100 percent is fine.
	ok := DefaultSpec(1)
	ok.LogicalAPct, ok.LogicalBPct, ok.PhysioPct, ok.DeletePct = 40, 30, 20, 10
	if err := ok.Validate(); err != nil {
		t.Errorf("sum==100 rejected: %v", err)
	}
	// 101 is not.
	over := ok
	over.DeletePct = 11
	if err := over.Validate(); err == nil {
		t.Error("sum==101 accepted")
	}
	// Negative percentages are rejected even when the sum sneaks under 100.
	neg := DefaultSpec(1)
	neg.LogicalAPct = -10
	neg.LogicalBPct = 50
	if err := neg.Validate(); err == nil {
		t.Error("negative percentage accepted")
	}
	// Two objects is the floor.
	two := DefaultSpec(1)
	two.Objects = 2
	if err := two.Validate(); err != nil {
		t.Errorf("2-object population rejected: %v", err)
	}
}

func TestMixValidate(t *testing.T) {
	for _, m := range Mixes() {
		if err := m.Validate(); err != nil {
			t.Errorf("built-in mix %s invalid: %v", m.Name, err)
		}
	}
	bad := Mix{Name: "x", LookupPct: 60, ScanPct: 60, Keys: 10, ValueSize: 8}
	if err := bad.Validate(); err == nil {
		t.Error("over-100 mix accepted")
	}
	bad = Mix{Name: "x", LookupPct: -1, Keys: 10, ValueSize: 8}
	if err := bad.Validate(); err == nil {
		t.Error("negative percentage accepted")
	}
	bad = Mix{Name: "x", LookupPct: 50, Keys: 0, ValueSize: 8}
	if err := bad.Validate(); err == nil {
		t.Error("empty key space accepted")
	}
	bad = Mix{Name: "x", LookupPct: 50, Keys: 10, ValueSize: 0}
	if err := bad.Validate(); err == nil {
		t.Error("empty values accepted")
	}
	// Boundary: exactly 100.
	exact := Mix{Name: "x", LookupPct: 20, ScanPct: 20, InsertPct: 20, UpdatePct: 20, DeletePct: 20, Keys: 10, ValueSize: 8}
	if err := exact.Validate(); err != nil {
		t.Errorf("sum==100 mix rejected: %v", err)
	}
}

func TestParseMix(t *testing.T) {
	for _, name := range MixNames() {
		m, err := ParseMix(name)
		if err != nil || m.Name != name {
			t.Errorf("ParseMix(%s) = %+v, %v", name, m, err)
		}
	}
	m, err := ParseMix("lookup=40,scan=10,insert=20,update=20,delete=10,keys=32,valsize=16")
	if err != nil {
		t.Fatal(err)
	}
	if m.ScanPct != 10 || m.Keys != 32 || m.ValueSize != 16 {
		t.Errorf("custom mix = %+v", m)
	}
	for _, bad := range []string{
		"no-such-mix",
		"lookup=40,scan=70", // sums over 100
		"lookup=-5",
		"bogus=1",
		"lookup=x",
		"lookup",
	} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
	// The error for an unknown name lists the valid ones.
	_, err = ParseMix("nope")
	if err == nil || !strings.Contains(err.Error(), "point-lookup-heavy") {
		t.Errorf("unknown-mix error unhelpful: %v", err)
	}
}

func TestMixDriverAgainstMapDomain(t *testing.T) {
	for _, mix := range Mixes() {
		t.Run(mix.Name, func(t *testing.T) {
			d, err := NewMixDriver(mix, 42)
			if err != nil {
				t.Fatal(err)
			}
			dom := newMapDomain()
			if err := d.Steps(dom, 500); err != nil {
				t.Fatal(err)
			}
			if err := d.Verify(dom); err != nil {
				t.Fatal(err)
			}
			c := d.Counts()
			if c.Total() != 500 {
				t.Errorf("counts %+v total %d", c, c.Total())
			}
			// The mix shape should show up in the tallies.
			if mix.ScanPct >= 50 && c.Scans < c.Inserts {
				t.Errorf("scan-heavy drove %d scans vs %d inserts", c.Scans, c.Inserts)
			}
			if mix.InsertPct >= 50 && c.Inserts < c.Scans {
				t.Errorf("write-burst drove %d inserts vs %d scans", c.Inserts, c.Scans)
			}
		})
	}
}

func TestMixDriverDeterministicStream(t *testing.T) {
	// Two drivers with the same seed against differently-behaving domains
	// must issue the same operation counts (choices never depend on the
	// domain).  The recording domain logs the op sequence for comparison.
	type rec struct {
		mapDomain
		ops []string
	}
	run := func(prefill int) []string {
		d, err := NewMixDriver(Mixes()[2], 7) // write-burst
		if err != nil {
			t.Fatal(err)
		}
		r := &rec{mapDomain: *newMapDomain()}
		dom := &recDomain{inner: &r.mapDomain, ops: &r.ops}
		if err := d.Steps(dom, 200); err != nil {
			t.Fatal(err)
		}
		return r.ops
	}
	a, b := run(0), run(0)
	if len(a) != len(b) {
		t.Fatalf("streams diverge: %d vs %d ops", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// recDomain wraps a domain and records the operation stream.
type recDomain struct {
	inner Domain
	ops   *[]string
}

func (r *recDomain) Put(k, v []byte) error {
	*r.ops = append(*r.ops, fmt.Sprintf("put %s %x", k, v))
	return r.inner.Put(k, v)
}

func (r *recDomain) Get(k []byte) ([]byte, bool, error) {
	*r.ops = append(*r.ops, "get "+string(k))
	return r.inner.Get(k)
}

func (r *recDomain) Delete(k []byte) (bool, error) {
	*r.ops = append(*r.ops, "del "+string(k))
	return r.inner.Delete(k)
}

func (r *recDomain) Range(lo, hi []byte, fn func(k, v []byte) bool) error {
	*r.ops = append(*r.ops, fmt.Sprintf("range %s %s", lo, hi))
	return r.inner.Range(lo, hi, fn)
}

func (r *recDomain) Check() error { return r.inner.Check() }

func TestMixDriverCatchesLyingDomain(t *testing.T) {
	// A domain that drops writes must be caught by the in-step checks.
	d, err := NewMixDriver(Mix{Name: "x", LookupPct: 50, InsertPct: 50, Keys: 4, ValueSize: 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	lossy := &lossyDomain{inner: newMapDomain()}
	err = d.Steps(lossy, 200)
	if err == nil {
		t.Fatal("driver verified a write-dropping domain")
	}
	if !strings.Contains(err.Error(), "model") {
		t.Errorf("unexpected error: %v", err)
	}
}

// lossyDomain drops every write but claims success.
type lossyDomain struct {
	inner *mapDomain
}

func (l *lossyDomain) Put(k, v []byte) error              { return nil }
func (l *lossyDomain) Get(k []byte) ([]byte, bool, error) { return l.inner.Get(k) }
func (l *lossyDomain) Delete(k []byte) (bool, error)      { return l.inner.Delete(k) }
func (l *lossyDomain) Check() error                       { return nil }
func (l *lossyDomain) Range(lo, hi []byte, fn func(k, v []byte) bool) error {
	return l.inner.Range(lo, hi, fn)
}

func TestMixDriverAdopt(t *testing.T) {
	mix := Mixes()[0]
	d, err := NewMixDriver(mix, 5)
	if err != nil {
		t.Fatal(err)
	}
	dom := newMapDomain()
	if err := d.Steps(dom, 100); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that lost recent writes: drop half the domain keys.
	i := 0
	for k := range dom.m {
		if i%2 == 0 {
			delete(dom.m, k)
		}
		i++
	}
	if err := d.Verify(dom); err == nil && len(dom.m) != d.ModelSize() {
		t.Fatal("verify missed the lost keys")
	}
	if err := d.Adopt(dom); err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(dom); err != nil {
		t.Errorf("post-adopt verify: %v", err)
	}
	// Driving on from the adopted state stays consistent.
	if err := d.Steps(dom, 100); err != nil {
		t.Fatal(err)
	}
	if err := d.Verify(dom); err != nil {
		t.Fatal(err)
	}
}

func TestModelKeysFrom(t *testing.T) {
	d, _ := NewMixDriver(Mixes()[0], 1)
	d.model = map[string][]byte{"a": nil, "c": nil, "b": nil, "e": nil}
	got := d.modelKeysFrom("b", 2)
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("modelKeysFrom = %v", got)
	}
	if got := d.modelKeysFrom("f", 5); len(got) != 0 {
		t.Errorf("past-end seek = %v", got)
	}
}
