package workload

import (
	"flag"
	"reflect"
	"testing"

	"logicallog/internal/core"
	"logicallog/internal/op"
)

// seedFlag pins the seed-ranging generator tests to one seed so a failure
// reported as "seed N" reproduces with `go test ./internal/workload -seed N`.
var seedFlag = flag.Int64("seed", 0, "pin randomized generator tests to this single seed (0 = full range)")

func TestValidate(t *testing.T) {
	bad := DefaultSpec(1)
	bad.LogicalAPct = 90
	bad.LogicalBPct = 90
	if err := bad.Validate(); err == nil {
		t.Error("over-100 mix accepted")
	}
	tiny := DefaultSpec(1)
	tiny.Objects = 1
	if err := tiny.Validate(); err == nil {
		t.Error("1-object population accepted")
	}
	if _, err := NewGenerator(bad); err == nil {
		t.Error("NewGenerator accepted bad spec")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		g, err := NewGenerator(DefaultSpec(42))
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, o := range g.Stream() {
			out = append(out, o.String())
		}
		return out
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Error("generator not deterministic")
	}
}

func TestStreamShape(t *testing.T) {
	spec := DefaultSpec(7)
	g, err := NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	stream := g.Stream()
	if len(stream) != spec.Objects+spec.Steps {
		t.Fatalf("stream length = %d", len(stream))
	}
	kinds := map[op.Kind]int{}
	for i, o := range stream {
		if err := o.Validate(); err != nil {
			t.Fatalf("op %d invalid: %v", i, err)
		}
		kinds[o.Kind]++
	}
	if kinds[op.KindCreate] != spec.Objects {
		t.Errorf("creates = %d", kinds[op.KindCreate])
	}
	for _, k := range []op.Kind{op.KindLogical, op.KindPhysioWrite, op.KindPhysicalWrite} {
		if kinds[k] == 0 {
			t.Errorf("no %v operations generated", k)
		}
	}
}

func TestStreamExecutable(t *testing.T) {
	// Every generated stream must execute cleanly against an engine (the
	// generator's liveness tracking must match engine semantics).
	trialSeeds := []int64{0, 1, 2, 3, 4}
	if *seedFlag != 0 {
		t.Logf("pinned to -seed=%d", *seedFlag)
		trialSeeds = []int64{*seedFlag}
	}
	for _, seed := range trialSeeds {
		eng, err := core.New(core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		spec := DefaultSpec(seed)
		spec.DeletePct = 20
		spec.LogicalBPct = 20
		g, err := NewGenerator(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i, o := range g.Stream() {
			if err := eng.Execute(o); err != nil {
				t.Fatalf("seed %d op %d (%s): %v", seed, i, o, err)
			}
		}
		if err := eng.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWithLSNs(t *testing.T) {
	ops := []*op.Operation{op.NewCreate("a", nil), op.NewCreate("b", nil)}
	WithLSNs(ops)
	if ops[0].LSN != 1 || ops[1].LSN != 2 {
		t.Errorf("LSNs = %d, %d", ops[0].LSN, ops[1].LSN)
	}
}
