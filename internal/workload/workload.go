// Package workload generates seeded, parameterized operation streams for
// the experiments: mixes of physical, physiological, and logical (A-form and
// B-form) operations over a configurable object population, with optional
// deletes modelling transient objects (the Section 5 optimization target).
package workload

import (
	"fmt"
	"math/rand"

	"logicallog/internal/op"
)

// Spec parameterizes a generated stream.
type Spec struct {
	// Seed drives the generator deterministically.
	Seed int64
	// Objects is the population size.
	Objects int
	// ObjectSize is the value size for creates and physical writes.
	ObjectSize int
	// Steps is the number of operations to generate (after the initial
	// creates).
	Steps int
	// Mix percentages (must sum to <= 100; the remainder is physical
	// blind writes).
	LogicalAPct int // A-form: y <- f(x,y)
	LogicalBPct int // B-form: x <- g(y)  (blind logical write)
	PhysioPct   int // single-object self-transform
	DeletePct   int // delete + recreate later
}

// DefaultSpec returns a balanced mix.
func DefaultSpec(seed int64) Spec {
	return Spec{
		Seed:        seed,
		Objects:     8,
		ObjectSize:  128,
		Steps:       200,
		LogicalAPct: 30,
		LogicalBPct: 30,
		PhysioPct:   20,
		DeletePct:   5,
	}
}

// Validate checks the mix.
func (s Spec) Validate() error {
	if s.Objects < 2 {
		return fmt.Errorf("workload: need >= 2 objects")
	}
	for _, pct := range []struct {
		name string
		v    int
	}{
		{"logical-a", s.LogicalAPct},
		{"logical-b", s.LogicalBPct},
		{"physio", s.PhysioPct},
		{"delete", s.DeletePct},
	} {
		if pct.v < 0 {
			return fmt.Errorf("workload: negative %s percentage %d", pct.name, pct.v)
		}
	}
	if s.LogicalAPct+s.LogicalBPct+s.PhysioPct+s.DeletePct > 100 {
		return fmt.Errorf("workload: mix percentages exceed 100")
	}
	return nil
}

// Generator produces an operation stream.  Operations arrive un-logged;
// callers execute them through an engine (which assigns LSNs) or feed them
// to graph constructions with synthetic LSNs.
type Generator struct {
	spec Spec
	rng  *rand.Rand
	ids  []op.ObjectID
	live map[op.ObjectID]bool
}

// NewGenerator builds a generator; call Bootstrap for the initial creates.
func NewGenerator(spec Spec) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		spec: spec,
		rng:  rand.New(rand.NewSource(spec.Seed)),
		live: make(map[op.ObjectID]bool),
	}
	for i := 0; i < spec.Objects; i++ {
		g.ids = append(g.ids, op.ObjectID(fmt.Sprintf("w%03d", i)))
	}
	return g, nil
}

// Bootstrap returns the creates that bring every object to life.
func (g *Generator) Bootstrap() []*op.Operation {
	out := make([]*op.Operation, 0, len(g.ids))
	for _, id := range g.ids {
		v := make([]byte, g.spec.ObjectSize)
		g.rng.Read(v)
		out = append(out, op.NewCreate(id, v))
		g.live[id] = true
	}
	return out
}

// Next returns the next operation in the stream.
func (g *Generator) Next() *op.Operation {
	x := g.pickLive()
	y := g.pickLive()
	roll := g.rng.Intn(100)
	switch {
	case roll < g.spec.LogicalAPct:
		if x == y {
			return g.physio(x)
		}
		// A-form: y <- y XOR x (reads both, writes y).
		return op.NewLogical(op.FuncXor, op.EncodeParams([]byte(y), []byte(x)),
			[]op.ObjectID{x, y}, []op.ObjectID{y})
	case roll < g.spec.LogicalAPct+g.spec.LogicalBPct:
		if x == y {
			return g.physio(x)
		}
		// B-form: x <- copy(y) (blind logical write).
		return op.NewLogical(op.FuncCopy, []byte(x), []op.ObjectID{y}, []op.ObjectID{x})
	case roll < g.spec.LogicalAPct+g.spec.LogicalBPct+g.spec.PhysioPct:
		return g.physio(x)
	case roll < g.spec.LogicalAPct+g.spec.LogicalBPct+g.spec.PhysioPct+g.spec.DeletePct:
		if g.liveCount() <= 2 {
			return g.physio(x)
		}
		g.live[x] = false
		return op.NewDelete(x)
	default:
		// Physical blind write; also resurrects dead objects.
		id := g.pickAny()
		v := make([]byte, g.spec.ObjectSize)
		g.rng.Read(v)
		g.live[id] = true
		return op.NewPhysicalWrite(id, v)
	}
}

// Stream generates bootstrap + Steps operations.
func (g *Generator) Stream() []*op.Operation {
	out := g.Bootstrap()
	for i := 0; i < g.spec.Steps; i++ {
		out = append(out, g.Next())
	}
	return out
}

func (g *Generator) physio(x op.ObjectID) *op.Operation {
	return op.NewPhysioWrite(x, op.FuncAppend, []byte{byte(g.rng.Intn(256))})
}

func (g *Generator) pickLive() op.ObjectID {
	for tries := 0; tries < 64; tries++ {
		id := g.ids[g.rng.Intn(len(g.ids))]
		if g.live[id] {
			return id
		}
	}
	// Degenerate population: resurrect deterministically.
	id := g.ids[0]
	g.live[id] = true
	return id
}

func (g *Generator) pickAny() op.ObjectID {
	return g.ids[g.rng.Intn(len(g.ids))]
}

func (g *Generator) liveCount() int {
	n := 0
	for _, l := range g.live {
		if l {
			n++
		}
	}
	return n
}

// WithLSNs assigns synthetic ascending LSNs starting at 1 (for feeding a
// stream straight into graph constructions without an engine).
func WithLSNs(ops []*op.Operation) []*op.Operation {
	for i, o := range ops {
		o.LSN = op.SI(i + 1)
	}
	return ops
}
