// Scenario mixes: named key/value workload shapes driven against a storage
// Domain (the leaf-linked B+tree, the LSM tree, or anything satisfying the
// same five calls).  A MixDriver makes every choice from its own seeded rng
// — never from a domain response — so the operation stream a given seed
// produces is identical across engine configurations, which is what lets
// the crash and ship explorers enumerate fault schedules over reproducible
// I/O boundary sequences.  The driver keeps an in-memory model of the
// expected contents and cross-checks every lookup, scan, and delete against
// it, turning each step into a differential test.
package workload

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Domain is the key/value surface a scenario mix drives.  Both btree.Tree
// and lsm.LSM satisfy it natively.
type Domain interface {
	Put(key, val []byte) error
	Get(key []byte) ([]byte, bool, error)
	Delete(key []byte) (bool, error)
	Range(lo, hi []byte, fn func(key, val []byte) bool) error
	Check() error
}

// Mix is a named scenario shape: operation percentages over a bounded key
// space.  Percentages must be non-negative and sum to at most 100; the
// remainder falls to point lookups.
type Mix struct {
	Name      string
	LookupPct int // point Get
	ScanPct   int // bounded range scan
	InsertPct int // Put of a uniformly drawn key
	UpdatePct int // Put of a hot (skewed) key
	DeletePct int // Delete of a hot (skewed) key
	Keys      int // key-space size
	ValueSize int // value bytes per Put
}

// Mixes returns the named scenario mixes, in a fixed order.
func Mixes() []Mix {
	return []Mix{
		{
			Name:      "point-lookup-heavy",
			LookupPct: 70, ScanPct: 5, InsertPct: 10, UpdatePct: 10, DeletePct: 5,
			Keys: 96, ValueSize: 32,
		},
		{
			Name:      "scan-heavy",
			LookupPct: 15, ScanPct: 50, InsertPct: 15, UpdatePct: 15, DeletePct: 5,
			Keys: 96, ValueSize: 32,
		},
		{
			Name:      "write-burst",
			LookupPct: 5, ScanPct: 5, InsertPct: 50, UpdatePct: 25, DeletePct: 15,
			Keys: 96, ValueSize: 32,
		},
	}
}

// LookupMix returns the named mix.
func LookupMix(name string) (Mix, bool) {
	for _, m := range Mixes() {
		if m.Name == name {
			return m, true
		}
	}
	return Mix{}, false
}

// MixNames returns the names of the built-in mixes.
func MixNames() []string {
	var names []string
	for _, m := range Mixes() {
		names = append(names, m.Name)
	}
	return names
}

// ParseMix resolves a -scenario/-mix flag value: either the name of a
// built-in mix or a custom "lookup=40,scan=10,insert=20,update=20,delete=10"
// spec (with optional keys= and valsize= fields).  The result is validated.
func ParseMix(s string) (Mix, error) {
	if m, ok := LookupMix(s); ok {
		return m, nil
	}
	if !strings.Contains(s, "=") {
		return Mix{}, fmt.Errorf("workload: unknown mix %q (have %s)", s, strings.Join(MixNames(), ", "))
	}
	m := Mix{Name: "custom", Keys: 96, ValueSize: 32}
	for _, field := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Mix{}, fmt.Errorf("workload: bad mix field %q", field)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return Mix{}, fmt.Errorf("workload: bad mix value %q: %v", field, err)
		}
		switch k {
		case "lookup":
			m.LookupPct = n
		case "scan":
			m.ScanPct = n
		case "insert":
			m.InsertPct = n
		case "update":
			m.UpdatePct = n
		case "delete":
			m.DeletePct = n
		case "keys":
			m.Keys = n
		case "valsize":
			m.ValueSize = n
		default:
			return Mix{}, fmt.Errorf("workload: unknown mix field %q", k)
		}
	}
	if err := m.Validate(); err != nil {
		return Mix{}, err
	}
	return m, nil
}

// Validate checks the mix shape.
func (m Mix) Validate() error {
	for _, pct := range []struct {
		name string
		v    int
	}{
		{"lookup", m.LookupPct},
		{"scan", m.ScanPct},
		{"insert", m.InsertPct},
		{"update", m.UpdatePct},
		{"delete", m.DeletePct},
	} {
		if pct.v < 0 {
			return fmt.Errorf("workload: negative %s percentage %d", pct.name, pct.v)
		}
	}
	if sum := m.LookupPct + m.ScanPct + m.InsertPct + m.UpdatePct + m.DeletePct; sum > 100 {
		return fmt.Errorf("workload: mix percentages sum to %d > 100", sum)
	}
	if m.Keys < 1 {
		return fmt.Errorf("workload: mix needs >= 1 key, got %d", m.Keys)
	}
	if m.ValueSize < 1 {
		return fmt.Errorf("workload: mix needs >= 1 value byte, got %d", m.ValueSize)
	}
	return nil
}

// OpCounts tallies the operations a MixDriver has issued.
type OpCounts struct {
	Lookups int
	Scans   int
	Inserts int
	Updates int
	Deletes int
}

// Total returns the number of steps driven.
func (c OpCounts) Total() int {
	return c.Lookups + c.Scans + c.Inserts + c.Updates + c.Deletes
}

// MixDriver drives one scenario mix against a Domain while maintaining the
// expected contents.  All randomness comes from the seeded rng, so the same
// (mix, seed) always issues the same operation sequence regardless of how
// the domain responds.
type MixDriver struct {
	mix    Mix
	rng    *rand.Rand
	model  map[string][]byte
	counts OpCounts
}

// NewMixDriver validates the mix and builds a driver.
func NewMixDriver(mix Mix, seed int64) (*MixDriver, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	return &MixDriver{
		mix:   mix,
		rng:   rand.New(rand.NewSource(seed)),
		model: make(map[string][]byte),
	}, nil
}

// Counts returns the operations issued so far.
func (d *MixDriver) Counts() OpCounts { return d.counts }

// ModelSize returns the number of keys the model expects to be present.
func (d *MixDriver) ModelSize() int { return len(d.model) }

// keyFor formats key number i.
func (d *MixDriver) keyFor(i int) []byte {
	return []byte(fmt.Sprintf("k%05d", i))
}

// hotKey draws a key with 80/20 skew: 80% of draws land in the first fifth
// of the key space.
func (d *MixDriver) hotKey() []byte {
	hot := d.mix.Keys / 5
	if hot < 1 {
		hot = 1
	}
	if d.rng.Intn(100) < 80 {
		return d.keyFor(d.rng.Intn(hot))
	}
	if d.mix.Keys == hot {
		return d.keyFor(d.rng.Intn(hot))
	}
	return d.keyFor(hot + d.rng.Intn(d.mix.Keys-hot))
}

// uniformKey draws a key uniformly.
func (d *MixDriver) uniformKey() []byte {
	return d.keyFor(d.rng.Intn(d.mix.Keys))
}

// value produces the next random value.
func (d *MixDriver) value() []byte {
	v := make([]byte, d.mix.ValueSize)
	d.rng.Read(v)
	return v
}

// Step drives one operation, cross-checking reads against the model.  The
// rng is always advanced identically regardless of the outcome.
func (d *MixDriver) Step(dom Domain) error {
	roll := d.rng.Intn(100)
	limit := d.mix.ScanPct
	switch {
	case roll < limit:
		return d.stepScan(dom)
	case roll < limit+d.mix.InsertPct:
		d.counts.Inserts++
		k, v := d.uniformKey(), d.value()
		if err := dom.Put(k, v); err != nil {
			return err
		}
		d.model[string(k)] = v
		return nil
	case roll < limit+d.mix.InsertPct+d.mix.UpdatePct:
		d.counts.Updates++
		k, v := d.hotKey(), d.value()
		if err := dom.Put(k, v); err != nil {
			return err
		}
		d.model[string(k)] = v
		return nil
	case roll < limit+d.mix.InsertPct+d.mix.UpdatePct+d.mix.DeletePct:
		d.counts.Deletes++
		k := d.hotKey()
		_, wantFound := d.model[string(k)]
		found, err := dom.Delete(k)
		if err != nil {
			return err
		}
		if found != wantFound {
			return fmt.Errorf("workload: delete(%s) found=%v, model says %v", k, found, wantFound)
		}
		delete(d.model, string(k))
		return nil
	default:
		// Lookups absorb LookupPct plus any unassigned remainder.
		d.counts.Lookups++
		k := d.hotKey()
		v, found, err := dom.Get(k)
		if err != nil {
			return err
		}
		want, wantFound := d.model[string(k)]
		if found != wantFound {
			return fmt.Errorf("workload: get(%s) found=%v, model says %v", k, found, wantFound)
		}
		if found && !bytes.Equal(v, want) {
			return fmt.Errorf("workload: get(%s) = %x, model says %x", k, v, want)
		}
		return nil
	}
}

// stepScan runs a bounded range scan from a random key and cross-checks the
// visited pairs against the model.
func (d *MixDriver) stepScan(dom Domain) error {
	d.counts.Scans++
	lo := d.uniformKey()
	const scanLimit = 12
	want := d.modelKeysFrom(string(lo), scanLimit)
	var got []string
	err := dom.Range(lo, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		if !bytes.Equal(v, d.model[string(k)]) {
			got[len(got)-1] = string(k) + "!" // poison for the mismatch report
			return false
		}
		return len(got) < scanLimit
	})
	if err != nil {
		return err
	}
	if len(got) != len(want) {
		return fmt.Errorf("workload: scan from %s saw %d keys %v, model says %d %v", lo, len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("workload: scan from %s diverges at %d: %q vs model %q", lo, i, got[i], want[i])
		}
	}
	return nil
}

// modelKeysFrom returns up to limit model keys >= lo, sorted.
func (d *MixDriver) modelKeysFrom(lo string, limit int) []string {
	var keys []string
	for k := range d.model {
		if k >= lo {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) > limit {
		keys = keys[:limit]
	}
	return keys
}

// Steps drives n operations.
func (d *MixDriver) Steps(dom Domain, n int) error {
	for i := 0; i < n; i++ {
		if err := d.Step(dom); err != nil {
			return fmt.Errorf("step %d: %w", i, err)
		}
	}
	return nil
}

// Verify checks that the domain's full contents exactly match the model and
// that the domain's structural invariants hold.
func (d *MixDriver) Verify(dom Domain) error {
	if err := dom.Check(); err != nil {
		return err
	}
	seen := 0
	var scanErr error
	err := dom.Range(nil, nil, func(k, v []byte) bool {
		want, ok := d.model[string(k)]
		if !ok {
			scanErr = fmt.Errorf("workload: domain has unexpected key %s", k)
			return false
		}
		if !bytes.Equal(v, want) {
			scanErr = fmt.Errorf("workload: domain %s = %x, model says %x", k, v, want)
			return false
		}
		seen++
		return true
	})
	if err != nil {
		return err
	}
	if scanErr != nil {
		return scanErr
	}
	if seen != len(d.model) {
		return fmt.Errorf("workload: domain has %d keys, model says %d", seen, len(d.model))
	}
	return nil
}

// Adopt replaces the model with the domain's current contents — the
// post-recovery resync point after a crash discarded unforced steps.
func (d *MixDriver) Adopt(dom Domain) error {
	fresh := make(map[string][]byte)
	err := dom.Range(nil, nil, func(k, v []byte) bool {
		fresh[string(k)] = append([]byte(nil), v...)
		return true
	})
	if err != nil {
		return err
	}
	d.model = fresh
	return nil
}
