package lint

import (
	"go/ast"
	"go/types"
)

// AtomicMix flags struct fields that are accessed through sync/atomic in one
// place and through plain loads or stores in another.  Mixed access is a
// data race the race detector only catches when both sides execute in the
// same run — the parallel-redo I/O counters are exactly the kind of field
// where a plain `s.count++` next to `atomic.AddInt64(&s.count, 1)` can sit
// latent for months.  Fields of the atomic.Int64-style wrapper types cannot
// be misused this way; this analyzer covers the pointer-based legacy API.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "flags fields accessed via sync/atomic in one place and by plain " +
		"load/store elsewhere in the same package",
	Run: runAtomicMix,
}

func runAtomicMix(p *Pass) error {
	// Pass 1: every field whose address is taken inside a sync/atomic call
	// argument, plus the exact selector nodes so pass 2 can skip them.
	atomicFields := make(map[*types.Var]ast.Node) // field -> one atomic-use site
	atomicUses := make(map[*ast.SelectorExpr]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(p.Info, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if field, _ := fieldSelection(p.Info, sel); field != nil {
					atomicFields[field] = call
					atomicUses[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: any other selector resolving to one of those fields is a
	// plain (racy) access.  Composite-literal keys are identifiers, not
	// selectors, so pre-publication initialization does not trip this.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUses[sel] {
				return true
			}
			field, _ := fieldSelection(p.Info, sel)
			if field == nil {
				return true
			}
			if _, mixed := atomicFields[field]; mixed {
				p.Reportf(sel.Pos(),
					"field %s is accessed with sync/atomic elsewhere in this package; "+
						"this plain access races with it", field.Name())
			}
			return true
		})
	}
	return nil
}
