// The bufescape analyzer: dataflow escape analysis for the two families of
// byte memory the engine recycles underneath its callers.
//
// Inside the wal package ("lane mode"), arena frames and the carrier values
// that hold them (streamRec, chunk) alias recyclable arena chunks: they are
// valid only inside the lane lock region and until the k-way merge copies
// them (mergeRecord).  Any function outside the small stream API that retains
// such memory — stores it into a field, global, map, or channel, directly or
// by passing it to a callee whose summary says it stores its parameter — is
// reported.
//
// Everywhere else ("record mode"), memory reached through a decoded
// wal.Record (rec.Op, rec.Payload, recs[i]...) aliases the scanner's
// immutable snapshot.  Retaining it is legal; *mutating* it is not.  The
// syntactic logrecpurity analyzer already catches direct writes
// (rec.Op[0] = x); bufescape catches what it cannot: mutation through helper
// calls and local aliases (tmp := rec.Op; scrub(tmp)), using callee
// MutatesParam summaries.
package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

var BufEscape = &Analyzer{
	Name: "bufescape",
	Doc: "proves arena/lane byte slices never escape the lane lock region or " +
		"merge boundary, and decoded wal.Record memory is never mutated through " +
		"helper calls or local aliases",
	Run: runBufEscape,
}

// laneAPI names the wal functions that legitimately hold or recycle
// arena-backed memory: the stream append path, the merge (which copies), the
// shipping copy, and the arena itself.
var laneAPI = map[string]bool{
	"append":            true, // logStream.append: the lane buffer itself
	"appendFrame":       true, // arena: produces frames
	"grab":              true, // arena chunk management
	"release":           true,
	"reset":             true,
	"drop":              true, // logStream teardown
	"mergeThrough":      true, // the merge: consumes lane runs under all locks
	"mergeRecord":       true, // the copy boundary
	"noteShippedLocked": true, // copies into the shipped ring
	"AppendShipped":     true, // standby log copy
	"Crash":             true,
	"SetStreams":        true,
}

func runBufEscape(p *Pass) error {
	prog := p.program()
	prog.Resolve()
	laneMode := p.Pkg.Name() == "wal"
	for _, f := range p.Files {
		file := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fi := prog.funcInfoForDecl(p.pkg(), fd)
			if fi == nil {
				continue
			}
			if laneMode {
				checkLaneEscape(p, prog, fi)
			} else {
				checkDecodedRecordMutation(p, prog, fi)
			}
		}
	}
	return nil
}

// checkLaneEscape reports arena-backed memory retained past the lane lock
// region in one wal function.
func checkLaneEscape(p *Pass, prog *Program, fi *FuncInfo) {
	if laneAPI[fi.Decl.Name.Name] {
		return
	}
	info := fi.Pkg.Info
	tw := newTaintWalker(prog, fi, nil)
	tw.sourceCall = func(call *ast.CallExpr) bool {
		fn, ok := calleeObject(info, call).(*types.Func)
		if !ok || fn.Name() != "appendFrame" {
			return false
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			return false
		}
		n := namedOf(sig.Recv().Type())
		return n != nil && n.Obj().Name() == "arena"
	}
	tw.sourceAny = func(e ast.Expr) bool {
		return isLaneCarrier(info.TypeOf(e))
	}
	// Seed lane-carrier parameters too: a helper handed a streamRec holds
	// arena memory just as surely as one that minted it.
	for _, pv := range paramVars(fi) {
		if pv != nil && isLaneCarrier(pv.Type()) {
			tw.tainted[pv] = true
		}
	}
	tw.walk()
	for _, at := range sortedSites(tw.storeSites) {
		p.Reportf(at.Pos(),
			"arena-backed lane memory (a frame, streamRec, or chunk) is retained here; "+
				"frames alias recyclable arena chunks and are invalid past the lane lock "+
				"region — copy the bytes (as mergeRecord does) before storing")
	}
	for _, at := range sortedSites(tw.mutateCallSites) {
		p.Reportf(at.Pos(),
			"this call writes through arena-backed lane memory outside the stream API; "+
				"encoded frames are immutable once appended")
	}
}

// isLaneCarrier matches the wal types whose values hold arena-aliased
// memory: streamRec, chunk, and slices/pointers thereof.
func isLaneCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if s, ok := t.Underlying().(*types.Slice); ok {
		t = s.Elem()
	}
	n := namedOf(t)
	if n == nil {
		return false
	}
	switch n.Obj().Name() {
	case "streamRec", "chunk":
		return true
	}
	return false
}

// checkDecodedRecordMutation reports helper-mediated mutation of decoded-record
// memory in one non-wal function.
func checkDecodedRecordMutation(p *Pass, prog *Program, fi *FuncInfo) {
	info := fi.Pkg.Info
	tw := newTaintWalker(prog, fi, nil)
	tw.sourceAny = func(e ast.Expr) bool {
		// Interior reads of a decoded record: rec.Op, recs[i], (&rec).LSN...
		// A Clone() result is fresh memory by contract, so its interior is
		// not a source even though its type is Record.
		switch x := e.(type) {
		case *ast.SelectorExpr:
			return isRecordType(info.TypeOf(x.X)) && !isCloneCall(info, x.X)
		case *ast.IndexExpr:
			return isRecordType(info.TypeOf(x.X)) && !isCloneCall(info, x.X)
		}
		return false
	}
	// Record-typed and record-slice parameters are decoded snapshots by
	// convention; seed them so aliases of their interiors are tracked.
	for _, pv := range paramVars(fi) {
		if pv != nil && isRecordType(pv.Type()) {
			tw.tainted[pv] = true
		}
	}
	tw.walk()
	for _, at := range sortedSites(tw.mutateCallSites) {
		p.Reportf(at.Pos(),
			"this call mutates memory reached through a decoded wal.Record; decoded "+
				"records alias the scanner's snapshot (and, with absorption, other "+
				"readers' views) — Clone the record or copy the bytes before writing")
	}
}

// isCloneCall reports whether e is a call to a method named Clone — the
// module's sanctioned copy boundary, whose result is fresh memory.
func isCloneCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := calleeObject(info, call).(*types.Func)
	return ok && fn.Name() == "Clone"
}

// isRecordType matches wal.Record (and the stand-in Record type fixture
// packages declare), behind pointers and slices.
func isRecordType(t types.Type) bool {
	if t == nil {
		return false
	}
	if s, ok := t.Underlying().(*types.Slice); ok {
		t = s.Elem()
	}
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Name() != "Record" {
		return false
	}
	path := n.Obj().Pkg().Path()
	return strings.HasSuffix(path, "internal/wal") || strings.HasPrefix(path, "fixture/")
}

// sortedSites orders report sites by position for deterministic output.
func sortedSites(m map[ast.Node]bool) []ast.Node {
	out := make([]ast.Node, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
