package lint

import (
	"go/ast"
)

// CritSection proves critical sections close: every mutex or lane-lock
// acquisition reaches a matching release on all paths out of the function —
// early returns, fallthrough, and explicit panics included — with defers
// recognized as covering every later exit.  The check is interprocedural
// through acquire/release helper pairs (the striped-lock helpers
// lockAllStreams/unlockAllStreams): a function whose every exit holds the
// same non-empty lock set is classified as an acquire helper and checked at
// its call sites instead, where the matching release helper must appear on
// all paths.
//
// The analyzer reports three shapes:
//
//   - a lock acquired on a path that reaches a return without releasing it
//     while other exits do release — the classic early-return leak;
//   - an explicit panic() while holding a lock with no defer covering it;
//   - an acquire-helper call whose acquired locks are not released before
//     some exit of the caller (the helper's summary injects the held keys
//     into the caller's walk, so the leak surfaces in the caller).
var CritSection = &Analyzer{
	Name: "critsection",
	Doc: "verifies every mutex/lane acquisition reaches a release on all paths " +
		"(early returns and panics included, defer-aware), interprocedurally " +
		"through acquire/release helper pairs",
	Run: runCritSection,
}

func runCritSection(p *Pass) error {
	prog := p.program()
	prog.Resolve()
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCritSection(p, prog, fd)
		}
	}
	return nil
}

func checkCritSection(p *Pass, prog *Program, fd *ast.FuncDecl) {
	fi := prog.funcInfoForDecl(p.pkg(), fd)
	if fi == nil {
		return
	}
	lw := analyzeLocks(prog, fi)

	// Explicit panics holding uncovered locks are always reported.
	for _, pe := range lw.panics {
		p.Reportf(pe.pos.Pos(),
			"panic while holding %s with no deferred release; the lock leaks and "+
				"every later acquirer deadlocks", exitDesc(pe.held))
	}

	if len(lw.exits) == 0 {
		return
	}
	// Uniform exits (all holding the same set) are either balanced — nothing
	// to report — or an acquire helper, whose obligation the summary moves to
	// every call site: the helper's NetAcquires keys are injected into each
	// caller's walk, so a caller that misses the release helper is reported
	// here when that caller is analyzed.
	_, _, consistent := lw.netEffect()
	if consistent {
		return
	}
	// Inconsistent exits: some path leaks what another path releases.
	// Report each exit holding locks that the leanest exit has released.
	min := lw.exits[0].held
	for _, e := range lw.exits[1:] {
		if len(e.held) < len(min) {
			min = e.held
		}
	}
	for _, e := range lw.exits {
		for k := range e.held {
			if _, ok := min[k]; ok {
				continue
			}
			p.Reportf(e.pos.Pos(),
				"%s acquired in %s is not released on this path; other paths release "+
					"it, so this return leaks the lock (prefer defer, or release before "+
					"every return)", k, fd.Name.Name)
		}
	}
}
