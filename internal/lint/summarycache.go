// The summary cache: resolved interprocedural summaries persisted between
// lllint runs, keyed on a hash of everything that can change them — the
// target packages' source files and the export data of every dependency the
// load consulted.  A hit installs the summaries wholesale and skips the
// fixed-point resolution; any source or dependency change flips the key and
// the cache is silently recomputed.  The cache is an optimization only:
// installing it never changes what the analyzers report.
package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// summaryCacheVersion invalidates old cache files when the Summary shape or
// the summarization rules change.
const summaryCacheVersion = 1

// summaryCacheFile is the on-disk format.
type summaryCacheFile struct {
	Version   int                 `json:"version"`
	Key       string              `json:"key"`
	Summaries map[FuncKey]Summary `json:"summaries"`
}

// CacheKey hashes the load: every target source file and every export-data
// file, by path and content.  Packages from one Load share DepExports, so
// the key covers the whole program the summaries were resolved against.
func CacheKey(pkgs []*Package) (string, error) {
	seen := map[string]bool{}
	var files []string
	for _, p := range pkgs {
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			if name != "" && !seen[name] {
				seen[name] = true
				files = append(files, name)
			}
		}
		for _, e := range p.DepExports {
			if !seen[e] {
				seen[e] = true
				files = append(files, e)
			}
		}
	}
	sort.Strings(files)

	h := sha256.New()
	fmt.Fprintf(h, "v%d\n", summaryCacheVersion)
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			return "", fmt.Errorf("lint: hashing %s: %w", name, err)
		}
		fmt.Fprintf(h, "%s\x00", name)
		if _, err := io.Copy(h, f); err != nil {
			f.Close()
			return "", fmt.Errorf("lint: hashing %s: %w", name, err)
		}
		f.Close()
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// LoadSummaryCache reads path and returns the cached summaries when the
// stored key matches.  Any read, decode, version, or key mismatch is a
// plain miss: the caller recomputes and overwrites.
func LoadSummaryCache(path, key string) (map[FuncKey]Summary, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var f summaryCacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, false
	}
	if f.Version != summaryCacheVersion || f.Key != key || f.Summaries == nil {
		return nil, false
	}
	return f.Summaries, true
}

// SaveSummaryCache writes the resolved summaries under key, atomically via
// a rename so a crashed run never leaves a torn cache.
func SaveSummaryCache(path, key string, sums map[FuncKey]Summary) error {
	data, err := json.Marshal(summaryCacheFile{
		Version:   summaryCacheVersion,
		Key:       key,
		Summaries: sums,
	})
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
