package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LogRecPurity protects the aliasing scan decoder: records returned by
// wal.Scanner alias the scanner's immutable snapshot of the log device, so
// any mutation of a decoded record (or of the operation and byte slices
// hanging off it) corrupts what the rest of recovery believes is the
// durable history.  Outside package wal itself, every assignment whose
// left-hand side reaches through a wal.Record is reported; consumers must
// Clone() before mutating (as the redo pass does).
var LogRecPurity = &Analyzer{
	Name: "logrecpurity",
	Doc: "flags mutation of decoded wal.Record values outside package wal; " +
		"scanner records alias the immutable device snapshot",
	Match: func(path string) bool {
		// The producer constructs records freely.
		return !strings.HasSuffix(path, "internal/wal")
	},
	Run: runLogRecPurity,
}

func runLogRecPurity(p *Pass) error {
	// The wal package's own test variant also constructs records; Match
	// filters the driver, but guard here too for direct runs.
	if strings.HasSuffix(p.Pkg.Path(), "internal/wal") {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkRecordMutation(p, lhs)
				}
			case *ast.IncDecStmt:
				checkRecordMutation(p, n.X)
			}
			return true
		})
	}
	return nil
}

// checkRecordMutation reports lhs when the expression chain it writes
// through contains a wal.Record (so rec.LSN = x, rec.Op.Params[i] = b, and
// *rec = wal.Record{} are all caught, while writes to unrelated operations
// are not).
func checkRecordMutation(p *Pass, lhs ast.Expr) {
	if chainContainsRecord(p.Info, lhs) {
		p.Reportf(lhs.Pos(),
			"mutation through a wal.Record; decoded records alias the scanner's "+
				"immutable device snapshot — Clone() the operation before changing it")
	}
}

// chainContainsRecord is true when e writes *through* a record: a plain
// identifier of record type is only a rebinding and stays legal.
func chainContainsRecord(info *types.Info, e ast.Expr) bool {
	base, ok := mutationBase(ast.Unparen(e))
	if !ok {
		return false
	}
	for {
		base = ast.Unparen(base)
		if isWALRecord(info.TypeOf(base)) {
			return true
		}
		next, ok := mutationBase(base)
		if !ok {
			return false
		}
		base = next
	}
}

// mutationBase steps one level down a selector/index/slice/deref chain.
func mutationBase(e ast.Expr) (ast.Expr, bool) {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		return x.X, true
	case *ast.IndexExpr:
		return x.X, true
	case *ast.SliceExpr:
		return x.X, true
	case *ast.StarExpr:
		return x.X, true
	}
	return nil, false
}

func isWALRecord(t types.Type) bool {
	return typeIs(t, "internal/wal", "Record")
}
