// Package lint hosts lllint, a suite of static analyzers that mechanically
// enforce the recovery-critical invariants this engine's correctness rests
// on: deterministic redo replay (bit-identical at any worker count),
// map-iteration order never leaking into installation-graph edge order or
// flush-set construction, WAL/stable force errors always observed, counters
// accessed atomically everywhere or nowhere, and decoded log records treated
// as immutable snapshots.
//
// The framework deliberately mirrors the shape of golang.org/x/tools'
// go/analysis (Analyzer, Pass, Reportf, analysistest-style fixtures) but is
// built purely on the standard library — go/ast, go/types, and export data
// produced by `go list -export` — so the module stays dependency-free.
//
// Suppression: a finding that is intentional can be silenced with a
// directive comment
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either at the end of the offending line or on the line directly
// above it.  The reason is mandatory; a directive without one is itself
// reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore
	// directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Match restricts the analyzer to packages whose import path it
	// accepts; nil means every package.
	Match func(pkgPath string) bool
	// Run reports findings on one package via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	pkgRef *Package
	prog   *Program
	diags  []Diagnostic
}

// pkg returns the loaded package under analysis.
func (p *Pass) pkg() *Package { return p.pkgRef }

// program returns the module-wide interprocedural view shared by every pass
// of one Lint run (built over just this package when run standalone).
func (p *Pass) program() *Program {
	if p.prog == nil {
		p.prog = BuildProgram([]*Package{p.pkgRef})
	}
	return p.prog
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Analyzers returns the full lllint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		ReplayDeterminism,
		LockOrder,
		ForceCheck,
		AtomicMix,
		LogRecPurity,
		SpanEnd,
		StreamPurity,
		WalOrder,
		BufEscape,
		CritSection,
	}
}

// AnalyzerByName resolves a suite member, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Lint runs every analyzer that matches each package, applies suppression
// directives, and returns the surviving findings sorted by position.
// Malformed directives — and stale ones, whose every named analyzer ran yet
// suppressed nothing — are reported as findings of the pseudo-analyzer
// "directive".
func Lint(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return LintWithProgram(pkgs, analyzers, BuildProgram(pkgs))
}

// LintWithProgram is Lint with a caller-supplied interprocedural Program
// (cmd/lllint passes one preloaded from the summary cache).
func LintWithProgram(pkgs []*Package, analyzers []*Analyzer, prog *Program) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		sup, bad := collectDirectives(pkg.Fset, pkg.Files)
		out = append(out, bad...)
		ran := map[string]bool{}
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.ImportPath) {
				continue
			}
			ran[a.Name] = true
			diags, err := runOne(a, pkg, prog)
			if err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
			out = append(out, sup.filter(diags)...)
		}
		out = append(out, sup.stale(ran)...)
	}
	sortDiagnostics(out)
	return out, nil
}

// RunUnfiltered runs one analyzer on one package regardless of its Match
// predicate (fixture tests exercise analyzers on testdata packages whose
// import paths would never match).  Suppression directives still apply.
func RunUnfiltered(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	return RunUnfilteredAll(a, []*Package{pkg})
}

// RunUnfilteredAll runs one analyzer across a set of packages sharing one
// interprocedural Program — multi-package fixture trees use this so
// cross-package facts resolve.
func RunUnfilteredAll(a *Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	prog := BuildProgram(pkgs)
	var out []Diagnostic
	for _, pkg := range pkgs {
		sup, bad := collectDirectives(pkg.Fset, pkg.Files)
		out = append(out, bad...)
		diags, err := runOne(a, pkg, prog)
		if err != nil {
			return nil, err
		}
		out = append(out, sup.filter(diags)...)
		out = append(out, sup.stale(map[string]bool{a.Name: true})...)
	}
	sortDiagnostics(out)
	return out, nil
}

func runOne(a *Analyzer, pkg *Package, prog *Program) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Pkg,
		Info:     pkg.Info,
		pkgRef:   pkg,
		prog:     prog,
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	return pass.diags, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ---------------------------------------------------------------------------
// Suppression directives.
// ---------------------------------------------------------------------------

const directivePrefix = "//lint:ignore"

// directive is one //lint:ignore comment, tracked so unused ("stale")
// directives can themselves be reported.
type directive struct {
	pos   token.Position
	names []string
	used  map[string]bool
}

// suppressions indexes directives by file, line, and suppressed analyzer.
type suppressions struct {
	byLine map[string]map[int]map[string]*directive
	all    []*directive
}

// collectDirectives scans the files' comments for //lint:ignore directives.
// A well-formed directive suppresses the named analyzers on its own line and
// on the line directly below (covering both trailing and leading placement).
// Malformed directives come back as diagnostics.
func collectDirectives(fset *token.FileSet, files []*ast.File) (*suppressions, []Diagnostic) {
	sup := &suppressions{byLine: make(map[string]map[int]map[string]*directive)}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Message:  "malformed //lint:ignore directive: need an analyzer name and a reason",
						Analyzer: "directive",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				for i, n := range names {
					names[i] = strings.TrimSpace(n)
				}
				d := &directive{pos: pos, names: names, used: make(map[string]bool)}
				sup.all = append(sup.all, d)
				byLine := sup.byLine[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]*directive)
					sup.byLine[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := byLine[line]
					if set == nil {
						set = make(map[string]*directive)
						byLine[line] = set
					}
					for _, n := range names {
						set[n] = d
					}
				}
			}
		}
	}
	return sup, bad
}

func (s *suppressions) filter(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if dir := s.byLine[d.Pos.Filename][d.Pos.Line][d.Analyzer]; dir != nil {
			dir.used[d.Analyzer] = true
			continue
		}
		out = append(out, d)
	}
	return out
}

// stale reports directives whose every named analyzer ran on the package yet
// none suppressed a finding — dead weight that hides future regressions.
// Directives naming an analyzer that did not run are not judged.
func (s *suppressions) stale(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range s.all {
		judgeable, usedAny := true, false
		for _, n := range d.names {
			if !ran[n] {
				judgeable = false
				break
			}
			if d.used[n] {
				usedAny = true
			}
		}
		if !judgeable || usedAny {
			continue
		}
		out = append(out, Diagnostic{
			Pos: d.pos,
			Message: fmt.Sprintf("stale //lint:ignore %s: it suppresses nothing here (delete the directive)",
				strings.Join(d.names, ",")),
			Analyzer: "directive",
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Shared type helpers.
// ---------------------------------------------------------------------------

// matchSuffix builds a Match predicate accepting import paths ending in any
// of the given suffixes.
func matchSuffix(suffixes ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range suffixes {
			if path == s || strings.HasSuffix(path, "/"+s) {
				return true
			}
		}
		return false
	}
}

// calleeObject resolves the function or method a call invokes, nil for
// indirect calls through function values.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// namedOf unwraps pointers and returns the named type beneath t, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// typeIs reports whether t (possibly behind a pointer) is the named type
// pkgPathSuffix.typeName.
func typeIs(t types.Type, pkgPathSuffix, typeName string) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Name() != typeName {
		return false
	}
	p := n.Obj().Pkg().Path()
	return p == pkgPathSuffix || strings.HasSuffix(p, "/"+pkgPathSuffix)
}

// fieldSelection resolves sel to a struct field and returns the field object
// plus the name of the named struct type that declares it ("" when the
// receiver type is unnamed).
func fieldSelection(info *types.Info, sel *ast.SelectorExpr) (*types.Var, string) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, ""
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil, ""
	}
	name := ""
	if n := namedOf(s.Recv()); n != nil {
		name = n.Obj().Name()
	}
	return v, name
}

// errorIsLastResult reports whether the callee's final result is error, and
// how many results it has.
func errorIsLastResult(sig *types.Signature) (int, bool) {
	res := sig.Results()
	if res.Len() == 0 {
		return 0, false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return res.Len(), ok && named.Obj() != nil && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
