package lint

import (
	"go/ast"
	"go/types"
)

// ReplayDeterminism guards PR 1's bit-identical parallel redo: recovery,
// write-graph, installation-graph, and digraph code must not let map
// iteration order, wall-clock time, or an unseeded global RNG feed replay
// ordering, chain partitioning, edge insertion, or flush-set construction.
// Every map range in those packages is reported; iteration whose result is
// provably order-independent (commutative folds, set construction later
// canonicalized) is documented in place with //lint:ignore.
var ReplayDeterminism = &Analyzer{
	Name: "replaydeterminism",
	Doc: "flags nondeterminism sources (map range, time.Now, global math/rand) " +
		"in replay-ordering code; redo replay must be bit-identical at any worker count",
	Match: matchSuffix(
		"internal/recovery",
		"internal/writegraph",
		"internal/installgraph",
		"internal/graph",
	),
	Run: runReplayDeterminism,
}

func runReplayDeterminism(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := p.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap {
					p.Reportf(n.Pos(),
						"range over map %s iterates in nondeterministic order; "+
							"sort a snapshot of the keys, or justify order-independence with //lint:ignore",
						types.ExprString(n.X))
				}
			case *ast.CallExpr:
				obj := calleeObject(p.Info, n)
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					if obj.Name() == "Now" && isPackageFunc(obj) {
						p.Reportf(n.Pos(),
							"time.Now in replay-ordering code makes recovery runs diverge; "+
								"thread timestamps in from the caller")
					}
				case "math/rand", "math/rand/v2":
					if isPackageFunc(obj) && !allowedRandFunc(obj.Name()) {
						p.Reportf(n.Pos(),
							"%s.%s draws from the global (unseeded) RNG; "+
								"use an explicitly seeded *rand.Rand",
							obj.Pkg().Name(), obj.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

// isPackageFunc reports whether obj is a package-level function (methods on
// *rand.Rand, for example, carry an explicit seed and are fine).
func isPackageFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// allowedRandFunc lists math/rand package functions that construct explicit
// sources rather than drawing from the global one.
func allowedRandFunc(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf", "NewChaCha8", "NewPCG":
		return true
	}
	return false
}
