package lint

import (
	"go/ast"
	"go/types"
)

// ForceCheck enforces the force discipline: the WAL protocol's correctness
// argument assumes every wal.Force/ForceThrough, stable write, and flush
// path error is observed — a dropped force error silently converts "durable"
// into "probably durable", which is exactly the failure mode logical
// recovery cannot repair.  The analyzer flags calls to durability-critical
// methods whose error result is discarded: used as an expression statement,
// assigned to the blank identifier, or launched via go/defer where the
// error can never be seen.
var ForceCheck = &Analyzer{
	Name: "forcecheck",
	Doc: "flags dropped errors from wal.Force/ForceThrough, stable writes, " +
		"and flush paths (expression statements, assignment to _, go/defer)",
	Run: runForceCheck,
}

// forceCriticalMethods are method names whose error return carries a
// durability obligation anywhere in this codebase.
var forceCriticalMethods = map[string]bool{
	"Force":                 true,
	"ForceThrough":          true,
	"WriteBatch":            true,
	"Flush":                 true,
	"FlushAll":              true,
	"FlushOne":              true,
	"PurgeAll":              true,
	"Sync":                  true,
	"Truncate":              true,
	"CheckpointAndTruncate": true,
}

func runForceCheck(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name := forceCriticalCall(p.Info, call); name != "" {
						p.Reportf(call.Pos(),
							"error from %s is dropped; a failed force/flush must abort the "+
								"protocol step that depends on it", name)
					}
				}
			case *ast.GoStmt:
				if name := forceCriticalCall(p.Info, n.Call); name != "" {
					p.Reportf(n.Call.Pos(),
						"error from %s started with go can never be observed", name)
				}
			case *ast.DeferStmt:
				if name := forceCriticalCall(p.Info, n.Call); name != "" {
					p.Reportf(n.Call.Pos(),
						"error from deferred %s can never be observed", name)
				}
			case *ast.AssignStmt:
				checkForceAssign(p, n)
			}
			return true
		})
	}
	return nil
}

// checkForceAssign flags `_ = x.Force()` and `v, _ := store.WriteBatch(...)`
// style assignments where the error result lands in the blank identifier.
func checkForceAssign(p *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name := forceCriticalCall(p.Info, call)
	if name == "" {
		return
	}
	// The error is the last result; with a single call RHS the last LHS
	// receives it.
	last := as.Lhs[len(as.Lhs)-1]
	if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
		p.Reportf(call.Pos(),
			"error from %s is assigned to _; a failed force/flush must abort the "+
				"protocol step that depends on it", name)
	}
}

// forceCriticalCall reports the qualified name of a durability-critical
// method call whose last result is error, or "".
func forceCriticalCall(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || !forceCriticalMethods[fn.Name()] {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "" // only methods carry the obligation; free funcs are out of scope
	}
	if _, errLast := errorIsLastResult(sig); !errLast {
		return ""
	}
	recv := sig.Recv().Type()
	if n := namedOf(recv); n != nil {
		return n.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}
