package lint

import (
	"path/filepath"
	"testing"
)

// TestInterprocSummaries builds the Program over the synthetic two-package
// fixture module and asserts the call graph and every summary fact the
// analyzers depend on: transitive Forces, StoresParam/MutatesParam/
// ReturnsParam taint bits, and the net lock effects of an acquire/release
// helper pair — all resolved across the package boundary by FuncKey.
func TestInterprocSummaries(t *testing.T) {
	pkgs, err := LoadFixtureTree(filepath.Join("testdata", "src", "interproc"), fixturePatterns...)
	if err != nil {
		t.Fatalf("loading interproc fixture: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2 (lib, app)", len(pkgs))
	}
	prog := BuildProgram(pkgs)
	prog.Resolve()

	const (
		forceIt = FuncKey("fixture/interproc/lib.ForceIt")
		keep    = FuncKey("fixture/interproc/lib.(Sink).Keep")
		scrub   = FuncKey("fixture/interproc/lib.Scrub")
		head    = FuncKey("fixture/interproc/lib.Head")
		acquire = FuncKey("fixture/interproc/lib.(Guard).Acquire")
		release = FuncKey("fixture/interproc/lib.(Guard).Release")
		chain   = FuncKey("fixture/interproc/app.Chain")
		keepVia = FuncKey("fixture/interproc/app.KeepVia")
		guarded = FuncKey("fixture/interproc/app.Guarded")
	)
	sum := func(k FuncKey) Summary {
		t.Helper()
		fi := prog.Funcs[k]
		if fi == nil {
			t.Fatalf("function %s not indexed; have %d functions", k, len(prog.Funcs))
		}
		return fi.Sum
	}

	// Forces: direct in ForceIt, transitive and cross-package in Chain.
	if !sum(forceIt).Forces {
		t.Error("lib.ForceIt should summarize as Forces (direct call)")
	}
	if !sum(chain).Forces {
		t.Error("app.Chain should summarize as Forces (transitively through lib.ForceIt)")
	}
	if sum(head).Forces {
		t.Error("lib.Head must not summarize as Forces")
	}

	// Taint bits.  Indexing: receiver is 0 when present, value params follow.
	if !summaryBit(sum(keep).StoresParam, 1) {
		t.Errorf("lib.Keep should store its p parameter; StoresParam=%v", sum(keep).StoresParam)
	}
	if !summaryBit(sum(scrub).MutatesParam, 0) {
		t.Errorf("lib.Scrub should mutate its p parameter; MutatesParam=%v", sum(scrub).MutatesParam)
	}
	if summaryBit(sum(scrub).StoresParam, 0) {
		t.Error("lib.Scrub must not summarize as storing its parameter")
	}
	if !summaryBit(sum(head).ReturnsParam, 0) {
		t.Errorf("lib.Head should return an alias of p; ReturnsParam=%v", sum(head).ReturnsParam)
	}
	// KeepVia needs both callee summaries composed: Head's ReturnsParam
	// carries the taint into Keep's StoresParam, across the package boundary.
	if !summaryBit(sum(keepVia).StoresParam, 1) {
		t.Errorf("app.KeepVia should store its p parameter via Head+Keep; StoresParam=%v",
			sum(keepVia).StoresParam)
	}

	// Lock helpers.
	if !sum(acquire).NetAcquires["Guard.mu"] {
		t.Errorf("lib.Acquire should net-acquire Guard.mu; got %v", sum(acquire).NetAcquires)
	}
	if !sum(release).NetReleases["Guard.mu"] {
		t.Errorf("lib.Release should net-release Guard.mu; got %v", sum(release).NetReleases)
	}
	if !prog.HasReleaseHelper("Guard.mu") {
		t.Error("HasReleaseHelper(Guard.mu) should see lib.Release")
	}
	if len(sum(guarded).NetAcquires) != 0 || len(sum(guarded).NetReleases) != 0 {
		t.Errorf("app.Guarded balances the pair; got acquires=%v releases=%v",
			sum(guarded).NetAcquires, sum(guarded).NetReleases)
	}

	// Call graph: the caller edge resolves across packages to the same key.
	foundChain := false
	for _, fi := range prog.CallersOf[forceIt] {
		if fi.Key == chain {
			foundChain = true
		}
	}
	if !foundChain {
		t.Errorf("CallersOf[lib.ForceIt] should include app.Chain; got %d callers",
			len(prog.CallersOf[forceIt]))
	}
}
