// Package loading without golang.org/x/tools: `go list -export -deps -test`
// enumerates every package (and test variant) with the path of its compiled
// export data in the build cache, and go/importer's gc importer accepts a
// lookup function that serves imports from exactly those files.  Each target
// package is then parsed from source and type-checked, which is everything
// the analyzers need.
package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// ImportPath is the package's plain import path (test variants keep the
	// path of the package under test).
	ImportPath string
	// Dir is the package directory.
	Dir string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the parsed sources, test files included for test variants.
	Files []*ast.File
	// Pkg and Info are the type-checker's output.
	Pkg  *types.Package
	Info *types.Info
	// DepExports are the export-data files the load consulted (shared by
	// every package of one Load); the summary cache hashes them.
	DepExports []string
}

// listPkg mirrors the `go list -json` fields the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Incomplete bool
}

// Load enumerates, parses, and type-checks the packages matched by patterns
// (relative to dir; empty dir means the current directory).  In-package test
// files are analyzed as part of their package's test variant; external
// _test packages load as their own targets.  Only packages outside GOROOT
// are returned, so stdlib patterns may be supplied purely to make their
// export data importable (fixture loading does this).
func Load(dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, true, patterns)
	if err != nil {
		return nil, err
	}

	// Export data indexed by the import path as it appears in source, with
	// test variants ("p [q.test]") keyed separately for context-sensitive
	// resolution.
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}

	// Pick analysis targets: for each plain import path, the in-package
	// test variant (a superset of the plain sources) wins when present;
	// external test packages are their own targets.
	targets := make(map[string]listPkg)
	for _, e := range entries {
		if e.Standard || e.DepOnly || len(e.GoFiles) == 0 {
			continue
		}
		base := plainPath(e.ImportPath)
		if strings.HasSuffix(base, ".test") {
			continue // generated test-main package
		}
		switch {
		case e.ForTest != "" && base == e.ForTest:
			targets[base] = e // in-package test variant supersedes
		case e.ForTest != "":
			targets[base] = e // external _test package
		default:
			if _, ok := targets[base]; !ok {
				targets[base] = e
			}
		}
	}

	depExports := make([]string, 0, len(exports))
	for _, e := range exports {
		depExports = append(depExports, e)
	}
	sort.Strings(depExports)

	fset := token.NewFileSet()
	var out []*Package
	for _, base := range sortedKeys(targets) {
		p, err := check(fset, targets[base], base, exports, nil)
		if err != nil {
			return nil, err
		}
		p.DepExports = depExports
		out = append(out, p)
	}
	return out, nil
}

// LoadFixture parses and type-checks a single fixture directory as package
// path "fixture/<basename>", resolving its imports (standard library and
// this module alike) through the export data of the packages matched by
// patterns.  Fixture directories live under testdata/, invisible to normal
// builds.
func LoadFixture(dir string, patterns ...string) (*Package, error) {
	// Fixtures import only plain packages, so skip test variants and avoid
	// compiling export data for stdlib test binaries.
	entries, err := goList(".", false, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no fixture files in %s", dir)
	}
	fset := token.NewFileSet()
	lp := listPkg{Dir: "", GoFiles: names}
	return check(fset, lp, "fixture/"+filepath.Base(dir), exports, nil)
}

// LoadFixtureTree loads a fixture directory together with its
// subdirectories, each a package importable by the others as
// "fixture/<root-basename>/<subpath>".  Cross-package analyzer fixtures use
// this; packages type-check in dependency order and resolve their fixture
// imports in memory.
func LoadFixtureTree(root string, patterns ...string) ([]*Package, error) {
	entries, err := goList(".", false, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}

	base := filepath.Dir(root) // testdata/src
	type fixDir struct {
		path  string // fixture import path
		files []string
		deps  []string // fixture imports
	}
	var dirs []fixDir
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		names, err := filepath.Glob(filepath.Join(p, "*.go"))
		if err != nil || len(names) == 0 {
			return err
		}
		rel, err := filepath.Rel(base, p)
		if err != nil {
			return err
		}
		fd := fixDir{path: "fixture/" + filepath.ToSlash(rel), files: names}
		importFset := token.NewFileSet()
		for _, name := range names {
			f, err := parser.ParseFile(importFset, name, nil, parser.ImportsOnly)
			if err != nil {
				return fmt.Errorf("lint: parse %s: %w", name, err)
			}
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if strings.HasPrefix(ip, "fixture/") {
					fd.deps = append(fd.deps, ip)
				}
			}
		}
		dirs = append(dirs, fd)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("lint: no fixture files under %s", root)
	}

	fset := token.NewFileSet()
	mem := make(map[string]*types.Package)
	var out []*Package
	for len(dirs) > 0 {
		progress := false
		var deferred []fixDir
		for _, fd := range dirs {
			ready := true
			for _, dep := range fd.deps {
				if _, ok := mem[dep]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				deferred = append(deferred, fd)
				continue
			}
			pkg, err := check(fset, listPkg{GoFiles: fd.files}, fd.path, exports, mem)
			if err != nil {
				return nil, err
			}
			mem[fd.path] = pkg.Pkg
			out = append(out, pkg)
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("lint: import cycle among fixture packages under %s", root)
		}
		dirs = deferred
	}
	return out, nil
}

func goList(dir string, test bool, patterns []string) ([]listPkg, error) {
	args := []string{"list", "-e", "-export", "-deps"}
	if test {
		args = append(args, "-test")
	}
	args = append(args,
		"-json=ImportPath,Dir,Name,Export,GoFiles,Standard,DepOnly,ForTest,Incomplete",
		"--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	if dir != "" {
		cmd.Dir = dir
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	var entries []listPkg
	dec := json.NewDecoder(bytes.NewReader(outBytes))
	for {
		var e listPkg
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if e.Incomplete {
			return nil, fmt.Errorf("lint: package %s did not compile; fix the build before linting", e.ImportPath)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// memImporter serves already-checked fixture packages ahead of the
// export-data importer.
type memImporter struct {
	mem      map[string]*types.Package
	fallback types.Importer
}

func (m memImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.mem[path]; ok {
		return p, nil
	}
	return m.fallback.Import(path)
}

// check parses and type-checks one target.  forTest resolution: an external
// test package imports the test variant of its package under test, so the
// importer first tries the variant key.  mem, when non-nil, resolves
// fixture-tree imports checked earlier in the same load.
func check(fset *token.FileSet, lp listPkg, path string, exports map[string]string, mem map[string]*types.Package) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		full := name
		if lp.Dir != "" {
			full = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", full, err)
		}
		files = append(files, f)
	}
	variantSuffix := ""
	if lp.ForTest != "" {
		variantSuffix = " [" + lp.ForTest + ".test]"
	}
	lookup := func(importPath string) (io.ReadCloser, error) {
		if variantSuffix != "" {
			if e, ok := exports[importPath+variantSuffix]; ok {
				return os.Open(e)
			}
		}
		e, ok := exports[importPath]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q (add it to the load patterns)", importPath)
		}
		return os.Open(e)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var imp types.Importer = importer.ForCompiler(fset, "gc", lookup)
	if mem != nil {
		imp = memImporter{mem: mem, fallback: imp}
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	return &Package{
		ImportPath: path,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

// plainPath strips a test-variant suffix: "p [q.test]" -> "p", and maps an
// external test package "p_test" to its directory package path "p_test"
// (kept distinct from p on purpose).
func plainPath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

func sortedKeys(m map[string]listPkg) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Deterministic load order so diagnostics sort stably across runs.
	sort.Strings(out)
	return out
}
