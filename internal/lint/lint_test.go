package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixturePatterns supply export data for everything the fixtures import.
var fixturePatterns = []string{
	"sync", "sync/atomic", "math/rand", "time", "sort",
	"logicallog/internal/wal",
}

// wantRe extracts the expectation regexes from a `// want "re"` comment.
var wantRe = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` comment: a diagnostic whose message matches
// re must be reported at file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// runFixture loads testdata/src/<dir>, runs the analyzer on it (bypassing
// Match, which would reject the fixture import path), and checks the
// diagnostics against the fixture's want comments exactly: every want must
// be matched by a diagnostic and every diagnostic must be claimed by a want.
func runFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkgs, err := LoadFixtureTree(filepath.Join("testdata", "src", dir), fixturePatterns...)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := RunUnfilteredAll(a, pkgs)
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, dir, err)
	}

	var wants []expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.HasPrefix(c.Text, directivePrefix) && !strings.Contains(c.Text, "// want") {
						continue // a directive's reason text is not an expectation,
						// unless the stale-directive fixture embeds one explicitly
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						wants = append(wants, expectation{pos.Filename, pos.Line, re})
					}
				}
			}
		}
	}

	claimed := make([]bool, len(wants))
	for _, d := range diags {
		matched := false
		for i, w := range wants {
			if claimed[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				claimed[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !claimed[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func TestReplayDeterminismFixture(t *testing.T) {
	runFixture(t, ReplayDeterminism, "replaydeterminism")
}
func TestLockOrderFixture(t *testing.T)    { runFixture(t, LockOrder, "lockorder") }
func TestForceCheckFixture(t *testing.T)   { runFixture(t, ForceCheck, "forcecheck") }
func TestAtomicMixFixture(t *testing.T)    { runFixture(t, AtomicMix, "atomicmix") }
func TestLogRecPurityFixture(t *testing.T) { runFixture(t, LogRecPurity, "logrecpurity") }
func TestSpanEndFixture(t *testing.T)      { runFixture(t, SpanEnd, "spanend") }
func TestStreamPurityFixture(t *testing.T) { runFixture(t, StreamPurity, "streampurity") }
func TestWalOrderFixture(t *testing.T)     { runFixture(t, WalOrder, "walorder") }
func TestBufEscapeFixture(t *testing.T)    { runFixture(t, BufEscape, "bufescape") }
func TestCritSectionFixture(t *testing.T)  { runFixture(t, CritSection, "critsection") }

// TestBufEscapeLaneFixture exercises bufescape's lane mode: the fixture
// declares `package wal`, which is what switches the analyzer to arena/lane
// escape checking.
func TestBufEscapeLaneFixture(t *testing.T) { runFixture(t, BufEscape, "bufescapelane") }

// TestStaleDirective checks that an ignore suppressing nothing is itself
// reported once its analyzer has run.
func TestStaleDirective(t *testing.T) { runFixture(t, ForceCheck, "staledirective") }

// TestSuppression exercises //lint:ignore in both placements (leading line
// and trailing comment), plus the negative case: a directive naming a
// different analyzer must not suppress.
func TestSuppression(t *testing.T) { runFixture(t, ForceCheck, "suppress") }

// TestMalformedDirective checks that a //lint:ignore with no reason is
// itself reported and does not suppress the finding beneath it.
func TestMalformedDirective(t *testing.T) {
	pkg, err := LoadFixture(filepath.Join("testdata", "src", "directive"), fixturePatterns...)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := RunUnfiltered(ForceCheck, pkg)
	if err != nil {
		t.Fatalf("running forcecheck: %v", err)
	}
	var gotDirective, gotFinding bool
	for _, d := range diags {
		switch d.Analyzer {
		case "directive":
			if !strings.Contains(d.Message, "malformed") {
				t.Errorf("directive diagnostic has unexpected message: %s", d)
			}
			gotDirective = true
		case "forcecheck":
			gotFinding = true
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !gotDirective {
		t.Error("missing diagnostic for the reason-less //lint:ignore directive")
	}
	if !gotFinding {
		t.Error("a malformed directive must not suppress the finding beneath it")
	}
}

// TestAnalyzerRegistry pins the suite membership and name lookup.
func TestAnalyzerRegistry(t *testing.T) {
	names := []string{
		"replaydeterminism", "lockorder", "forcecheck", "atomicmix",
		"logrecpurity", "spanend", "streampurity",
		"walorder", "bufescape", "critsection",
	}
	as := Analyzers()
	if len(as) != len(names) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(as), len(names))
	}
	for i, want := range names {
		if as[i].Name != want {
			t.Errorf("Analyzers()[%d].Name = %q, want %q", i, as[i].Name, want)
		}
		if AnalyzerByName(want) != as[i] {
			t.Errorf("AnalyzerByName(%q) did not return the suite member", want)
		}
	}
	if AnalyzerByName("nosuch") != nil {
		t.Error("AnalyzerByName should return nil for unknown names")
	}
}

// TestRepoIsClean runs the full suite over the whole module, enforcing the
// zero-findings invariant that CI also checks via cmd/lllint.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint is not short")
	}
	pkgs, err := Load("", "logicallog/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := Lint(pkgs, Analyzers())
	if err != nil {
		t.Fatalf("linting module: %v", err)
	}
	for _, d := range diags {
		t.Errorf("finding on clean tree: %s", d)
	}
}
