package lint

import (
	"go/ast"
	"go/types"
)

// SpanEnd enforces the tracing discipline that came with internal/obs: a
// *Span returned by Lane.Begin must be retained so End can be called — a
// span whose handle is discarded (expression statement, or assigned to the
// blank identifier) stays open forever, which makes every exported
// Chrome-trace timeline show a phase that never finished and corrupts the
// phase-total summary.  The nil-safe API makes the discard easy to write
// and impossible to notice at runtime, hence the static check.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc: "flags Lane.Begin calls whose *Span result is discarded " +
		"(expression statement or assignment to _): the span can never be ended",
	Run: runSpanEnd,
}

func runSpanEnd(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && spanBeginCall(p.Info, call) {
					p.Reportf(call.Pos(),
						"span from Lane.Begin is discarded and can never be ended")
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 || len(n.Lhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok || !spanBeginCall(p.Info, call) {
					return true
				}
				if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					p.Reportf(call.Pos(),
						"span from Lane.Begin is assigned to _ and can never be ended")
				}
			}
			return true
		})
	}
	return nil
}

// spanBeginCall reports whether call is Lane.Begin returning a *Span.
func spanBeginCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeObject(info, call).(*types.Func)
	if !ok || fn.Name() != "Begin" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := namedOf(sig.Recv().Type())
	if recv == nil || recv.Obj().Name() != "Lane" {
		return false
	}
	if sig.Results().Len() != 1 {
		return false
	}
	res := namedOf(sig.Results().At(0).Type())
	return res != nil && res.Obj().Name() == "Span"
}
