// The interprocedural layer: a module-wide call graph over every loaded
// package, per-function summaries (does this function force the log?  does it
// retain or mutate its parameters?  what locks does it net-acquire or
// net-release?), and a fixed-point propagation pass so analyzers can reason
// across function and package boundaries instead of single files.
//
// Packages are type-checked separately (each with its own go/types universe),
// so functions are keyed by a canonical string — import path, receiver type,
// name — rather than by object identity; a call site in package core resolves
// to the same FuncKey the wal package's own declaration produced.  The layer
// is deliberately flow-light: summaries are computed by a structured walk of
// each body plus a simple intra-function taint/alias pass, then propagated
// around call-graph cycles until they stop changing.  Precision errs toward
// under-reporting (an unknown callee is assumed benign) — the analyzers built
// on top enforce protocol rules where a false positive would train people to
// sprinkle ignores.
package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// FuncKey canonically names one function or method across packages:
// "path.(Recv).Name" for methods, "path.Name" for functions.
type FuncKey string

// funcKeyFor builds the key for a declared or referenced function object.
func funcKeyFor(fn *types.Func) FuncKey {
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			return FuncKey(path + ".(" + n.Obj().Name() + ")." + fn.Name())
		}
	}
	return FuncKey(path + "." + fn.Name())
}

// CallSite is one resolved static call inside a function body.
type CallSite struct {
	Call   *ast.CallExpr
	Callee FuncKey
}

// FuncInfo is one declared function with its body, package, and summary.
type FuncInfo struct {
	Key  FuncKey
	Decl *ast.FuncDecl
	Pkg  *Package
	Sig  *types.Signature
	// Calls are the statically-resolved call sites in body order.
	Calls []CallSite
	// Sum is the function's interprocedural summary after Resolve.
	Sum Summary
}

// Summary is the set of facts propagated across the call graph.
type Summary struct {
	// Forces: the function calls Log.Force/ForceThrough on some path,
	// directly or transitively.
	Forces bool
	// StoresParam[i]: parameter i (a slice, pointer, or reference type) may
	// be retained beyond the call — stored into a field, global, map,
	// channel, or passed to a callee that stores it.  The receiver, when
	// present, is index 0 and value parameters follow.
	StoresParam []bool
	// MutatesParam[i]: the function may write through parameter i (same
	// indexing as StoresParam).
	MutatesParam []bool
	// ReturnsParam[i]: some return value aliases parameter i, so taint
	// flows through the call.
	ReturnsParam []bool
	// NetAcquires are ranked-or-field lock keys held at every exit (an
	// acquire helper: lockAllStreams).  Empty for balanced functions.
	NetAcquires map[string]bool
	// NetReleases are lock keys released without a matching acquire in the
	// function (a release helper: unlockAllStreams).
	NetReleases map[string]bool
}

func (s *Summary) paramBit(which *[]bool, i int) {
	for len(*which) <= i {
		*which = append(*which, false)
	}
	(*which)[i] = true
}

// Program is the module-wide interprocedural view the analyzers consult.
type Program struct {
	Pkgs  []*Package
	Funcs map[FuncKey]*FuncInfo
	// CallersOf maps a callee to every function containing a call to it.
	CallersOf map[FuncKey][]*FuncInfo

	resolved bool

	// walorder's program-wide findings, computed once and emitted by each
	// package's own pass (see walorderFindings).
	walDone     bool
	walFindings []walFinding
}

// BuildProgram indexes every function declaration in pkgs and resolves the
// static call graph.  Summaries are computed lazily by Resolve.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:      pkgs,
		Funcs:     make(map[FuncKey]*FuncInfo),
		CallersOf: make(map[FuncKey][]*FuncInfo),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{
					Key:  funcKeyFor(obj),
					Decl: fd,
					Pkg:  pkg,
					Sig:  obj.Type().(*types.Signature),
				}
				// A test variant re-checks the plain sources, so a key can
				// appear twice; the first (plain or variant, load order is
				// deterministic) wins and the duplicate is dropped.
				if _, dup := p.Funcs[fi.Key]; !dup {
					p.Funcs[fi.Key] = fi
				}
			}
		}
	}
	for _, fi := range p.sortedFuncs() {
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := calleeObject(fi.Pkg.Info, call).(*types.Func)
			if !ok {
				return true
			}
			key := funcKeyFor(fn)
			fi.Calls = append(fi.Calls, CallSite{Call: call, Callee: key})
			if _, known := p.Funcs[key]; known {
				p.CallersOf[key] = append(p.CallersOf[key], fi)
			}
			return true
		})
	}
	return p
}

// sortedFuncs returns the functions in deterministic key order.
func (p *Program) sortedFuncs() []*FuncInfo {
	keys := make([]string, 0, len(p.Funcs))
	for k := range p.Funcs {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	out := make([]*FuncInfo, len(keys))
	for i, k := range keys {
		out[i] = p.Funcs[FuncKey(k)]
	}
	return out
}

// Lookup returns the FuncInfo for a call expression resolved in pkg, or nil
// for indirect calls and functions outside the loaded module.
func (p *Program) Lookup(pkg *Package, call *ast.CallExpr) *FuncInfo {
	fn, ok := calleeObject(pkg.Info, call).(*types.Func)
	if !ok {
		return nil
	}
	return p.Funcs[funcKeyFor(fn)]
}

// maxSummaryRounds bounds fixed-point iteration; summaries are monotone
// (facts only flip false->true, lock sets only grow), so convergence is
// guaranteed well before this.
const maxSummaryRounds = 32

// Resolve computes every function's summary to a fixed point.  Idempotent.
func (p *Program) Resolve() {
	if p.resolved {
		return
	}
	p.resolved = true
	funcs := p.sortedFuncs()
	for round := 0; round < maxSummaryRounds; round++ {
		changed := false
		for _, fi := range funcs {
			if p.summarize(fi) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// InstallSummaries replaces every function's summary from a cache (see
// SummaryCache) and marks the program resolved, skipping the fixed point.
func (p *Program) InstallSummaries(sums map[FuncKey]Summary) bool {
	// Refuse a cache that does not cover this program exactly.
	if len(sums) != len(p.Funcs) {
		return false
	}
	for k := range p.Funcs {
		if _, ok := sums[k]; !ok {
			return false
		}
	}
	for k, fi := range p.Funcs {
		fi.Sum = sums[k]
	}
	p.resolved = true
	return true
}

// HasReleaseHelper reports whether some function in the program net-releases
// key — the matching half that makes an acquire helper a deliberate pattern
// rather than a leak on every path.
func (p *Program) HasReleaseHelper(key string) bool {
	for _, fi := range p.Funcs {
		if fi.Sum.NetReleases[key] {
			return true
		}
	}
	return false
}

// Summaries snapshots every function's resolved summary.
func (p *Program) Summaries() map[FuncKey]Summary {
	p.Resolve()
	out := make(map[FuncKey]Summary, len(p.Funcs))
	for k, fi := range p.Funcs {
		out[k] = fi.Sum
	}
	return out
}

// summarize recomputes one function's summary against the current state of
// its callees' summaries, reporting whether anything changed.
func (p *Program) summarize(fi *FuncInfo) bool {
	old := fi.Sum
	next := Summary{
		NetAcquires: map[string]bool{},
		NetReleases: map[string]bool{},
	}

	// Forces: direct force calls, or any callee that forces.
	for _, cs := range fi.Calls {
		if isForceCall(fi.Pkg.Info, cs.Call) {
			next.Forces = true
			break
		}
		if callee, ok := p.Funcs[cs.Callee]; ok && callee.Sum.Forces {
			next.Forces = true
			break
		}
	}

	// Parameter facts via the taint walker: seed each reference-typed
	// parameter and see where it flows.
	params := paramVars(fi)
	for i, pv := range params {
		if pv == nil || !taintableType(pv.Type()) {
			continue
		}
		tw := newTaintWalker(p, fi, pv)
		tw.walk()
		if tw.stored {
			next.paramBit(&next.StoresParam, i)
		}
		if tw.mutated {
			next.paramBit(&next.MutatesParam, i)
		}
		if tw.returned {
			next.paramBit(&next.ReturnsParam, i)
		}
	}

	// Net lock effects: a structured walk computing the held-set at every
	// exit.  A function whose exits all hold the same non-empty set is an
	// acquire helper; negative counts are net releases.
	lw := analyzeLocks(p, fi)
	if acq, rel, consistent := lw.netEffect(); consistent {
		next.NetAcquires = acq
		next.NetReleases = rel
	}

	fi.Sum = next
	return !summaryEqual(old, next)
}

func summaryEqual(a, b Summary) bool {
	return a.Forces == b.Forces &&
		boolsEqual(a.StoresParam, b.StoresParam) &&
		boolsEqual(a.MutatesParam, b.MutatesParam) &&
		boolsEqual(a.ReturnsParam, b.ReturnsParam) &&
		setsEqual(a.NetAcquires, b.NetAcquires) &&
		setsEqual(a.NetReleases, b.NetReleases)
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func setsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// paramVars lists the function's parameter objects: receiver first (when
// present), then value parameters, matching Summary's indexing.
func paramVars(fi *FuncInfo) []*types.Var {
	var out []*types.Var
	if r := fi.Sig.Recv(); r != nil {
		out = append(out, r)
	}
	ps := fi.Sig.Params()
	for i := 0; i < ps.Len(); i++ {
		out = append(out, ps.At(i))
	}
	return out
}

// taintableType reports whether a parameter of type t can meaningfully be
// retained or mutated: slices, pointers, maps, and interfaces qualify.
func taintableType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// summaryBit reports whether a summary fact slice has bit i set.
func summaryBit(bits []bool, i int) bool { return i >= 0 && i < len(bits) && bits[i] }

// isForceCall matches a call to Force/ForceThrough on a type named Log (the
// WAL in this module, a stand-in type in fixtures).
func isForceCall(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeObject(info, call).(*types.Func)
	if !ok {
		return false
	}
	if fn.Name() != "Force" && fn.Name() != "ForceThrough" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := namedOf(sig.Recv().Type())
	return n != nil && n.Obj().Name() == "Log"
}

// isInstallCall matches a call to WriteBatch on a type named Store (the
// stable store in this module, a stand-in in fixtures).
func isInstallCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn, ok := calleeObject(info, call).(*types.Func)
	if !ok {
		return "", false
	}
	if fn.Name() != "WriteBatch" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	n := namedOf(sig.Recv().Type())
	if n == nil || n.Obj().Name() != "Store" {
		return "", false
	}
	return "Store.WriteBatch", true
}

// ---------------------------------------------------------------------------
// Intra-function taint/alias walker.
// ---------------------------------------------------------------------------

// taintWalker tracks where a seed value (a parameter, or an analyzer-chosen
// source expression) flows inside one function: into locals (aliasing), into
// persistent storage (stored), through writes (mutated), or out via return.
type taintWalker struct {
	prog *Program
	fi   *FuncInfo
	info *types.Info

	tainted map[*types.Var]bool

	// sources marks call expressions whose results are fresh taint (used by
	// bufescape to seed from arena frames rather than parameters).
	sourceCall func(*ast.CallExpr) bool
	// sourceExpr marks selector reads that are fresh taint.
	sourceExpr func(ast.Expr) bool
	// sourceAny, checked for every expression kind, marks arbitrary
	// expressions as fresh taint (bufescape taints by carrier type).
	sourceAny func(ast.Expr) bool

	stored   bool
	mutated  bool
	returned bool

	// Site maps record where stores and mutations happened, for
	// analyzer-side reporting (deduped across fixed-point passes).
	storeSites      map[ast.Node]bool
	mutateSites     map[ast.Node]bool // direct writes through tainted chains
	mutateCallSites map[ast.Node]bool // mutations via a callee's summary
}

func newTaintWalker(p *Program, fi *FuncInfo, seed *types.Var) *taintWalker {
	tw := &taintWalker{
		prog:            p,
		fi:              fi,
		info:            fi.Pkg.Info,
		tainted:         map[*types.Var]bool{},
		storeSites:      map[ast.Node]bool{},
		mutateSites:     map[ast.Node]bool{},
		mutateCallSites: map[ast.Node]bool{},
	}
	if seed != nil {
		tw.tainted[seed] = true
	}
	return tw
}

// walk runs the taint pass to an intra-function fixed point (alias sets only
// grow, so a few passes suffice).
func (tw *taintWalker) walk() {
	for i := 0; i < 8; i++ {
		before := len(tw.tainted)
		storedBefore, mutatedBefore, returnedBefore := tw.stored, tw.mutated, tw.returned
		ast.Inspect(tw.fi.Decl.Body, tw.visit)
		if len(tw.tainted) == before &&
			tw.stored == storedBefore && tw.mutated == mutatedBefore && tw.returned == returnedBefore {
			return
		}
	}
}

func (tw *taintWalker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		return false // separate control flow; a capture-and-store is out of scope
	case *ast.AssignStmt:
		tw.assign(n)
	case *ast.IncDecStmt:
		tw.checkMutation(n.X, n)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if tw.exprTainted(r) {
				tw.returned = true
			}
		}
	case *ast.CallExpr:
		tw.call(n)
	case *ast.SendStmt:
		if tw.exprTainted(n.Value) {
			tw.markStored(n)
		}
	}
	return true
}

// assign propagates taint through :=/= and detects persistent stores and
// mutations through tainted chains.
func (tw *taintWalker) assign(as *ast.AssignStmt) {
	// Pair LHS/RHS when shapes line up; a call RHS fans out via
	// ReturnsParam below (handled in call()).
	rhsTaint := func(i int) bool {
		if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
			// Tuple assignment from one call: taint flows only through
			// ReturnsParam summaries; be conservative and use the call's
			// overall taint.
			return tw.exprTainted(as.Rhs[0])
		}
		if i < len(as.Rhs) {
			return tw.exprTainted(as.Rhs[i])
		}
		return false
	}
	for i, lhs := range as.Lhs {
		lhs = ast.Unparen(lhs)
		if id, ok := lhs.(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			// Rebinding a local: taint the variable if the RHS is tainted.
			// Taint is never cleared (monotone), which over-approximates
			// re-use of a variable for untainted data later.
			if v := tw.localVar(id); v != nil && rhsTaint(i) {
				tw.tainted[v] = true
			}
			continue
		}
		// Writing through a chain: x.f = v, x[i] = v, *p = v.
		if rhsTaint(i) && tw.persistentBase(lhs) {
			tw.markStored(as)
		}
		tw.checkMutation(lhs, as)
	}
}

// call applies callee summaries to tainted arguments and recognizes the
// builtin copy/append idioms that break aliasing.
func (tw *taintWalker) call(call *ast.CallExpr) {
	// Builtins: copy(dst, src) copies bytes; append(dst, src...) copies
	// bytes; append(dst, elem) stores the element value.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "copy", "len", "cap", "delete", "clear", "min", "max", "print", "println":
			return
		case "append":
			// Ellipsis append of a byte slice copies the bytes — aliasing is
			// broken.  Element append retains the element; the result's
			// taint is handled by exprTainted (append call with tainted
			// element arg is tainted).
			return
		case "panic":
			return
		}
	}
	callee := tw.prog.Lookup(tw.fi.Pkg, call)
	if callee == nil {
		return // unknown or stdlib callee: assumed benign
	}
	args := alignCallArgs(call, callee)
	for pi, arg := range args {
		if arg == nil || !tw.exprTainted(arg) {
			continue
		}
		if summaryBit(callee.Sum.StoresParam, pi) {
			tw.stored = true
			tw.storeSites[call] = true
		}
		if summaryBit(callee.Sum.MutatesParam, pi) {
			tw.mutated = true
			tw.mutateCallSites[call] = true
		}
	}
}

// alignCallArgs aligns a call's receiver and arguments with the callee's
// summary parameter indexing; missing positions (variadic overflow) map to
// the last parameter.
func alignCallArgs(call *ast.CallExpr, callee *FuncInfo) []ast.Expr {
	n := 0
	if callee.Sig.Recv() != nil {
		n++
	}
	n += callee.Sig.Params().Len()
	out := make([]ast.Expr, n)
	idx := 0
	if callee.Sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			out[0] = sel.X
		}
		idx = 1
	}
	for i, a := range call.Args {
		pi := idx + i
		if pi >= n {
			pi = n - 1 // variadic overflow shares the last parameter
		}
		out[pi] = a
	}
	return out
}

// exprTainted reports whether e's value aliases tainted data: its base chain
// reaches a tainted variable or an analyzer source, or it is a call whose
// result aliases a tainted argument (ReturnsParam), or an element-append of
// a tainted value.
func (tw *taintWalker) exprTainted(e ast.Expr) bool {
	e = ast.Unparen(e)
	// Scalar values cannot carry aliases: copying sr.lsn out of a tainted
	// carrier retains nothing.
	if t := tw.info.TypeOf(e); t != nil {
		if _, basic := t.Underlying().(*types.Basic); basic {
			return false
		}
	}
	if tw.sourceAny != nil && tw.sourceAny(e) {
		return true
	}
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := tw.info.Uses[x].(*types.Var); ok && tw.tainted[v] {
			return true
		}
		return false
	case *ast.SelectorExpr:
		if tw.sourceExpr != nil && tw.sourceExpr(x) {
			return true
		}
		return tw.exprTainted(x.X)
	case *ast.IndexExpr:
		return tw.exprTainted(x.X)
	case *ast.SliceExpr:
		return tw.exprTainted(x.X)
	case *ast.StarExpr:
		return tw.exprTainted(x.X)
	case *ast.UnaryExpr:
		return tw.exprTainted(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if tw.exprTainted(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if tw.sourceCall != nil && tw.sourceCall(x) {
			return true
		}
		// append(dst, elem): tainted element taints the result slice;
		// append(dst, bytes...) copies and does not.
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" {
			if x.Ellipsis.IsValid() {
				return tw.exprTainted(x.Args[0])
			}
			for _, a := range x.Args {
				if tw.exprTainted(a) {
					return true
				}
			}
			return false
		}
		// A method named Clone is the module's sanctioned copy boundary: its
		// result is fresh memory by contract, so taint does not flow through
		// (the ReturnsParam summary over-approximates `c := *o` struct
		// copies whose reference fields are then replaced).
		if fn, ok := calleeObject(tw.info, x).(*types.Func); ok && fn.Name() == "Clone" {
			return false
		}
		// A module callee whose result aliases a tainted argument.
		if callee := tw.prog.Lookup(tw.fi.Pkg, x); callee != nil {
			args := alignCallArgs(x, callee)
			for pi, arg := range args {
				if arg != nil && summaryBit(callee.Sum.ReturnsParam, pi) && tw.exprTainted(arg) {
					return true
				}
			}
		}
		return false
	}
	return false
}

// checkMutation reports a write whose LHS chain passes through tainted data
// (x.f = v where x is tainted mutates the seed).
func (tw *taintWalker) checkMutation(lhs ast.Expr, at ast.Node) {
	base, ok := mutationBase(ast.Unparen(lhs))
	if !ok {
		return
	}
	for {
		base = ast.Unparen(base)
		if tw.exprTainted(base) {
			tw.mutated = true
			tw.mutateSites[at] = true
			return
		}
		next, ok := mutationBase(base)
		if !ok {
			return
		}
		base = next
	}
}

// persistentBase reports whether writing through lhs stores into memory that
// outlives the function: the chain's root is a field selection, a global, a
// dereferenced pointer, or anything other than a plain local variable.
func (tw *taintWalker) persistentBase(lhs ast.Expr) bool {
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.Ident:
			v, ok := tw.info.Uses[x].(*types.Var)
			if !ok {
				if v, ok = tw.info.Defs[x].(*types.Var); !ok {
					return true // unresolved: assume persistent
				}
			}
			if v.IsField() || tw.isGlobal(v) {
				return true
			}
			// A local slice/map/pointer still references non-local memory
			// when it is itself a parameter alias; storing into it escapes.
			if tw.tainted[v] {
				return false // storing into tainted memory is mutation, not fresh retention
			}
			return tw.localEscapes(v)
		case *ast.SelectorExpr:
			if f, _ := fieldSelection(tw.info, x); f != nil {
				return true // writing through a field: persistent
			}
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.SliceExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			return true // writing through a pointer: persistent
		default:
			return true
		}
	}
}

// localEscapes reports whether a local variable's contents outlive the call:
// parameters and receivers do (the caller sees them), plain locals do not.
func (tw *taintWalker) localEscapes(v *types.Var) bool {
	for _, pv := range paramVars(tw.fi) {
		if pv == v {
			return true
		}
	}
	return false
}

// localVar resolves id to a function-local (or parameter) variable.
func (tw *taintWalker) localVar(id *ast.Ident) *types.Var {
	if v, ok := tw.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := tw.info.Uses[id].(*types.Var); ok && !v.IsField() && !tw.isGlobal(v) {
		return v
	}
	return nil
}

func (tw *taintWalker) isGlobal(v *types.Var) bool {
	return v.Parent() == tw.fi.Pkg.Pkg.Scope()
}

func (tw *taintWalker) markStored(at ast.Node) {
	tw.stored = true
	tw.storeSites[at] = true
}

// ---------------------------------------------------------------------------
// Lock-effect walker (shared by summaries and the critsection analyzer).
// ---------------------------------------------------------------------------

// lockKey canonically names a mutex: "Type.field" for struct-field mutexes,
// "pkg:var" for package-level mutexes, "local:name" for everything else
// (local keys never appear in cross-function summaries).
func lockKeyFor(info *types.Info, pkg *types.Package, recv ast.Expr) (key string, local bool) {
	recv = ast.Unparen(recv)
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		if f, owner := fieldSelection(info, sel); f != nil && owner != "" {
			return owner + "." + f.Name(), false
		}
		// Package-qualified global (pkg.mu).
		if id, ok := sel.X.(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := info.Uses[sel.Sel].(*types.Var); ok {
					return v.Pkg().Path() + ":" + v.Name(), false
				}
			}
		}
	}
	if id, ok := recv.(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok {
			if v.Parent() == pkg.Scope() {
				return pkg.Path() + ":" + v.Name(), false
			}
			return "local:" + v.Name(), true
		}
	}
	return "local:" + types.ExprString(recv), true
}

// lockOp is one acquisition or release in the structured walk.
type lockOp struct {
	key     string
	local   bool
	rlock   bool // RLock/RUnlock family
	acquire bool
	pos     ast.Node
}

// exitState is the held-lock picture at one function exit.
type exitState struct {
	pos  ast.Node
	held map[string]heldLock // key -> acquisition info (counts collapsed)
}

type heldLock struct {
	count int
	pos   ast.Node // first acquisition
	rlock bool
}

// lockWalker runs a structured, defer-aware walk of one function body and
// records the held-lock multiset at every exit (returns, panics, fallthrough
// end) plus net releases.
type lockWalker struct {
	prog *Program
	fi   *FuncInfo
	info *types.Info

	exits []exitState
	// releasesUnheld counts keys this function releases without acquiring
	// (negative net: a release helper).
	releasesUnheld map[string]bool
	// panics records panic sites with their held sets (excluding
	// defer-covered keys).
	panics []exitState

	// entryHeld primes the walk with locks assumed held by the caller (the
	// *Locked-function convention); netEffect is computed relative to it.
	entryHeld map[string]bool

	// onCall, when set, observes every call site with the state in force at
	// that point (walorder reads its must-forced pseudo-key here).
	onCall func(call *ast.CallExpr, st *lwState, deferred bool)
	// pseudoAcquire, when set, names pseudo keys (containing '#') a call
	// acquires.  Pseudo keys are never released and are filtered out of
	// exits, panics, and net-effect summaries; they exist so analyzers can
	// ride the walker's must-analysis for non-lock facts.
	pseudoAcquire func(call *ast.CallExpr) []string
}

const pseudoKeyMark = "#"

func newLockWalker(p *Program, fi *FuncInfo) *lockWalker {
	return &lockWalker{
		prog:           p,
		fi:             fi,
		info:           fi.Pkg.Info,
		releasesUnheld: map[string]bool{},
	}
}

// lwState is the walk state: held locks plus the set of keys covered by a
// defer (released at any later exit).
type lwState struct {
	held     map[string]heldLock
	deferred map[string]bool
}

func (s lwState) clone() lwState {
	h := make(map[string]heldLock, len(s.held))
	for k, v := range s.held {
		h[k] = v
	}
	d := make(map[string]bool, len(s.deferred))
	for k := range s.deferred {
		d[k] = true
	}
	return lwState{held: h, deferred: d}
}

// intersect merges two branch-exit states: a lock is held after the branch
// only if both sides hold it (under-approximation that avoids false leaks),
// and defers accumulate from either side.
func intersectState(a, b lwState) lwState {
	h := make(map[string]heldLock)
	for k, v := range a.held {
		if bv, ok := b.held[k]; ok {
			if bv.count < v.count {
				v = bv
			}
			h[k] = v
		}
	}
	d := make(map[string]bool, len(a.deferred)+len(b.deferred))
	for k := range a.deferred {
		d[k] = true
	}
	for k := range b.deferred {
		d[k] = true
	}
	return lwState{held: h, deferred: d}
}

// loopAfter merges loop in-state and body out-state.  Zero iterations are
// possible, so normally only locks held on both the skip path and the
// full-body path survive (under-approximation).  The one exception is the
// lock-sweep idiom — a body whose only lock effect is acquisitions, as in
// lockAllStreams ranging over the lane set — which is treated as executing:
// the sweep is all-or-nothing and collapsing it to "maybe nothing" would
// hide the acquire-helper classification the critsection analyzer depends
// on at the helper's call sites.
func loopAfter(st, bodySt lwState) lwState {
	onlyAdds := true
	for k, v := range st.held {
		if bv, ok := bodySt.held[k]; !ok || bv.count < v.count {
			onlyAdds = false
			break
		}
	}
	grew := false
	if onlyAdds {
		for k, bv := range bodySt.held {
			if v, ok := st.held[k]; !ok || bv.count > v.count {
				grew = true
				break
			}
		}
	}
	if onlyAdds && grew {
		return bodySt
	}
	return intersectState(st, bodySt)
}

func (lw *lockWalker) walk() {
	st := lwState{held: map[string]heldLock{}, deferred: map[string]bool{}}
	for k := range lw.entryHeld {
		st.held[k] = heldLock{count: 1, pos: lw.fi.Decl}
	}
	st, terminated := lw.walkBlock(lw.fi.Decl.Body, st)
	if !terminated {
		lw.noteExit(lw.fi.Decl.Body, st)
	}
}

// analyzeLocks runs the lock walk for fi, handling the unlock/relock-window
// idiom: when the plain walk sees releases of locks it never acquired (a
// *Locked function releasing the caller's lock around device I/O, or a pure
// release helper), the walk is re-run primed with those locks assumed held
// at entry, so balance is judged from the caller's point of view.
func analyzeLocks(p *Program, fi *FuncInfo) *lockWalker {
	lw := newLockWalker(p, fi)
	lw.walk()
	if len(lw.releasesUnheld) == 0 {
		return lw
	}
	primed := newLockWalker(p, fi)
	primed.entryHeld = lw.releasesUnheld
	primed.walk()
	return primed
}

// walkBlock walks stmts sequentially, returning the out-state and whether
// every path through the block terminated (return/panic).
func (lw *lockWalker) walkBlock(b *ast.BlockStmt, st lwState) (lwState, bool) {
	if b == nil {
		return st, false
	}
	return lw.walkStmts(b.List, st)
}

func (lw *lockWalker) walkStmts(stmts []ast.Stmt, st lwState) (lwState, bool) {
	for _, s := range stmts {
		var terminated bool
		st, terminated = lw.walkStmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (lw *lockWalker) walkStmt(s ast.Stmt, st lwState) (lwState, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		lw.applyExpr(s.X, &st, false)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			lw.applyExpr(r, &st, false)
		}
	case *ast.DeferStmt:
		lw.applyExpr(s.Call, &st, true)
	case *ast.GoStmt:
		// A goroutine's locks are its own.
	case *ast.ReturnStmt:
		lw.noteExit(s, st)
		return st, true
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = lw.walkStmt(s.Init, st)
		}
		lw.applyExpr(s.Cond, &st, false)
		thenSt, thenTerm := lw.walkBlock(s.Body, st.clone())
		elseSt, elseTerm := st.clone(), false
		if s.Else != nil {
			elseSt, elseTerm = lw.walkStmt(s.Else, st.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return intersectState(thenSt, elseSt), false
		}
	case *ast.BlockStmt:
		return lw.walkBlock(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = lw.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			lw.applyExpr(s.Cond, &st, false)
		}
		bodySt, _ := lw.walkBlock(s.Body, st.clone())
		return loopAfter(st, bodySt), false
	case *ast.RangeStmt:
		bodySt, _ := lw.walkBlock(s.Body, st.clone())
		return loopAfter(st, bodySt), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = lw.walkStmt(s.Init, st)
		}
		return lw.walkCases(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = lw.walkStmt(s.Init, st)
		}
		return lw.walkCases(s.Body, st)
	case *ast.SelectStmt:
		return lw.walkCases(s.Body, st)
	case *ast.LabeledStmt:
		return lw.walkStmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto: end this path without an exit check; the
		// surrounding loop's intersection keeps things conservative.
		return st, true
	case *ast.DeclStmt:
		// Declarations with initializers may contain calls.
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lw.applyExpr(v, &st, false)
					}
				}
			}
		}
	}
	return st, false
}

// walkCases handles switch/select bodies: each clause walks a clone, the
// after-state is the intersection of the non-terminating clauses (plus the
// in-state when no default clause guarantees entry).
func (lw *lockWalker) walkCases(body *ast.BlockStmt, st lwState) (lwState, bool) {
	if body == nil || len(body.List) == 0 {
		return st, false
	}
	var outs []lwState
	hasDefault := false
	allTerminated := true
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = c.Body
			if c.Comm == nil {
				hasDefault = true
			} else {
				cloned := st.clone()
				lw.walkStmt(c.Comm, cloned)
			}
		}
		out, term := lw.walkStmts(stmts, st.clone())
		if !term {
			outs = append(outs, out)
			allTerminated = false
		}
	}
	if !hasDefault {
		outs = append(outs, st)
		allTerminated = false
	}
	if allTerminated {
		return st, true
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = intersectState(merged, o)
	}
	return merged, false
}

// applyExpr scans an expression for lock operations, helper calls with lock
// summaries, and panic sites.
func (lw *lockWalker) applyExpr(e ast.Expr, st *lwState, deferred bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A deferred closure's releases still cover later exits.
			if deferred {
				return true
			}
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		lw.applyCall(call, st, deferred)
		return true
	})
}

func (lw *lockWalker) applyCall(call *ast.CallExpr, st *lwState, deferred bool) {
	if lw.onCall != nil {
		lw.onCall(call, st, deferred)
	}
	if lw.pseudoAcquire != nil && !deferred {
		for _, k := range lw.pseudoAcquire(call) {
			h := st.held[k]
			if h.count == 0 {
				h.pos = call
			}
			h.count++
			st.held[k] = h
		}
	}
	// panic(...) with locks held and no defer covering them.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := lw.info.Uses[id].(*types.Builtin); isBuiltin || lw.info.Uses[id] == nil {
			lw.notePanic(call, *st)
			return
		}
	}
	if op, ok := lw.lockOpOf(call, deferred); ok {
		lw.applyLockOp(op, st, deferred)
		return
	}
	// Helper calls with net lock effects.
	callee := lw.prog.Lookup(lw.fi.Pkg, call)
	if callee == nil {
		return
	}
	for _, k := range sortedSet(callee.Sum.NetAcquires) {
		lw.applyLockOp(lockOp{key: k, acquire: true, pos: call}, st, deferred)
	}
	for _, k := range sortedSet(callee.Sum.NetReleases) {
		lw.applyLockOp(lockOp{key: k, acquire: false, pos: call}, st, deferred)
	}
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// lockOpOf recognizes direct (R)Lock/(R)Unlock calls on sync mutexes.
func (lw *lockWalker) lockOpOf(call *ast.CallExpr, deferred bool) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	m := sel.Sel.Name
	var acquire, rlock bool
	switch m {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, rlock = true, true
	case "Unlock":
	case "RUnlock":
		rlock = true
	default:
		return lockOp{}, false
	}
	if !isSyncMutex(lw.info.TypeOf(sel.X)) {
		return lockOp{}, false
	}
	key, local := lockKeyFor(lw.info, lw.fi.Pkg.Pkg, sel.X)
	return lockOp{key: key, local: local, rlock: rlock, acquire: acquire, pos: call}, true
}

func (lw *lockWalker) applyLockOp(op lockOp, st *lwState, deferred bool) {
	if op.acquire {
		if deferred {
			return // defer x.Lock() is pathological; out of scope
		}
		h := st.held[op.key]
		if h.count == 0 {
			h.pos = op.pos
			h.rlock = op.rlock
		}
		h.count++
		st.held[op.key] = h
		return
	}
	// Release.
	if deferred {
		st.deferred[op.key] = true
		return
	}
	h, ok := st.held[op.key]
	if !ok || h.count == 0 {
		lw.releasesUnheld[op.key] = true
		return
	}
	h.count--
	if h.count == 0 {
		delete(st.held, op.key)
	} else {
		st.held[op.key] = h
	}
}

// noteExit records the locks held at an exit that no defer covers.
func (lw *lockWalker) noteExit(pos ast.Node, st lwState) {
	held := make(map[string]heldLock)
	for k, v := range st.held {
		if st.deferred[k] || strings.Contains(k, pseudoKeyMark) {
			continue
		}
		held[k] = v
	}
	lw.exits = append(lw.exits, exitState{pos: pos, held: held})
}

func (lw *lockWalker) notePanic(pos ast.Node, st lwState) {
	held := make(map[string]heldLock)
	for k, v := range st.held {
		if st.deferred[k] || strings.Contains(k, pseudoKeyMark) {
			continue
		}
		held[k] = v
	}
	if len(held) > 0 {
		lw.panics = append(lw.panics, exitState{pos: pos, held: held})
	}
}

// netEffect classifies the function for cross-function summaries: when every
// exit holds the same set of locks, that set is the net acquisition (an
// acquire helper when non-empty); keys released while unheld are net
// releases.  Inconsistent exits report no summary (consistent=false) — the
// critsection analyzer flags those paths directly.
func (lw *lockWalker) netEffect() (acquires, releases map[string]bool, consistent bool) {
	acquires = map[string]bool{}
	releases = map[string]bool{}
	for k := range lw.releasesUnheld {
		if !strings.HasPrefix(k, "local:") {
			releases[k] = true
		}
	}
	if len(lw.exits) == 0 {
		return acquires, releases, true
	}
	first := lw.exits[0].held
	for _, e := range lw.exits[1:] {
		if !heldEqual(first, e.held) {
			return map[string]bool{}, releases, false
		}
	}
	for k := range first {
		if !lw.entryHeld[k] && !strings.HasPrefix(k, "local:") {
			acquires[k] = true
		}
	}
	for k := range lw.entryHeld {
		if _, ok := first[k]; !ok && !strings.HasPrefix(k, "local:") {
			releases[k] = true
		}
	}
	return acquires, releases, true
}

func heldEqual(a, b map[string]heldLock) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// exitDesc renders a held set for diagnostics.
func exitDesc(held map[string]heldLock) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// Short renders a FuncKey's human name ("(T).m" or "f").
func (k FuncKey) Short() string {
	s := string(k)
	if i := strings.LastIndex(s, ")."); i >= 0 {
		if j := strings.LastIndex(s[:i], ".("); j >= 0 {
			return s[j+1:]
		}
	}
	if i := strings.LastIndex(s, "."); i >= 0 {
		return s[i+1:]
	}
	return s
}

// funcInfoForDecl resolves a declaration being analyzed to its program node,
// wrapping it on the fly when the program indexed a different load of the
// same function (test variants re-check plain sources).
func (p *Program) funcInfoForDecl(pkg *Package, fd *ast.FuncDecl) *FuncInfo {
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	key := funcKeyFor(obj)
	if fi := p.Funcs[key]; fi != nil && fi.Decl == fd {
		return fi
	}
	fi := &FuncInfo{Key: key, Decl: fd, Pkg: pkg, Sig: obj.Type().(*types.Signature)}
	if known := p.Funcs[key]; known != nil {
		fi.Sum = known.Sum
	}
	return fi
}
