// The walorder analyzer: the write-ahead rule itself, checked statically and
// interprocedurally.  Every path that installs to the stable store
// (Store.WriteBatch) must be dominated by a Log.Force/ForceThrough covering
// the installed records' LSNs — directly, through a forcing callee, or by the
// caller having forced before the call.
//
// The check rides the lock walker's must-analysis: a pseudo-key ("forced#")
// is acquired at every force call (direct, or a callee whose summary says it
// forces on some path) and never released, so branch intersection yields
// "forced on every path reaching this point".  An install without the
// pseudo-key held raises an *obligation* on its enclosing function:
//
//   - obligations propagate silently through unexported functions — a private
//     helper like writeBatchRetry is an implementation detail whose contract
//     is whatever its callers make of it;
//   - at an exported obligation-carrying function (MirrorInstall: "the caller
//     must already have forced"), every call site that has not forced is
//     reported — the site, not the helper, is where the protocol breaks;
//   - a function with no callers at all is reported at the install itself:
//     no call path can discharge the obligation.
//
// Call sites and function bodies in _test.go files are exempt (tests
// deliberately exercise arbitrary force states), as is the stable package
// itself (the layer below the protocol).
package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

var WalOrder = &Analyzer{
	Name: "walorder",
	Doc: "verifies every path installing to the stable store is dominated by a " +
		"Force/ForceThrough covering it (write-ahead rule), interprocedurally " +
		"across core, cache, recovery, ship, and wal",
	Match: matchSuffix(
		"internal/core", "internal/cache", "internal/recovery",
		"internal/ship", "internal/wal", "internal/baseline",
	),
	Run: runWalOrder,
}

const forcedKey = "forced" + pseudoKeyMark

// walFinding is one report, attributed to the package that must emit it so
// per-package suppression directives apply.
type walFinding struct {
	pos token.Pos
	pkg *Package
	msg string
}

func runWalOrder(p *Pass) error {
	prog := p.program()
	for _, f := range prog.walorderFindings() {
		if f.pkg == p.pkg() {
			p.Reportf(f.pos, "%s", f.msg)
		}
	}
	return nil
}

// walFuncFacts is the per-function result of the forced-state walk.
type walFuncFacts struct {
	// unforcedInstalls are Store.WriteBatch calls not dominated by a force.
	unforcedInstalls []*ast.CallExpr
	// siteForced records, for every resolved call site, whether a force
	// dominates it.
	siteForced map[*ast.CallExpr]bool
}

// walorderFindings computes the analyzer's findings for the whole program
// once; each package's pass then emits its own slice.
func (p *Program) walorderFindings() []walFinding {
	if p.walDone {
		return p.walFindings
	}
	p.walDone = true
	p.Resolve()

	facts := make(map[FuncKey]*walFuncFacts)
	for _, fi := range p.sortedFuncs() {
		if walExempt(fi) {
			continue
		}
		facts[fi.Key] = walWalk(p, fi)
	}

	// Seed obligations from unforced installs, then propagate toward callers
	// until an exported boundary (report unforced sites) or a forced site
	// (discharged).
	type obligation struct {
		fn     *FuncInfo
		origin *ast.CallExpr // the install that started the chain
		via    string        // helper chain description, innermost first
	}
	var work []obligation
	for _, fi := range p.sortedFuncs() {
		ff := facts[fi.Key]
		if ff == nil {
			continue
		}
		for _, call := range ff.unforcedInstalls {
			work = append(work, obligation{fn: fi, origin: call, via: fi.Key.Short()})
		}
	}

	carried := make(map[FuncKey]bool) // propagation visit guard (per function)
	for len(work) > 0 {
		ob := work[0]
		work = work[1:]

		callers := p.CallersOf[ob.fn.Key]
		if len(callers) == 0 {
			p.walFindings = append(p.walFindings, walFinding{
				pos: ob.origin.Pos(),
				pkg: ob.fn.Pkg,
				msg: ob.via + " reaches Store.WriteBatch with no covering Force/ForceThrough " +
					"on any call path (write-ahead rule: the log must be durable before the install)",
			})
			continue
		}
		for _, caller := range callers {
			cf := facts[caller.Key]
			if cf == nil {
				continue // test or exempt caller: not judged
			}
			for _, cs := range caller.Calls {
				if cs.Callee != ob.fn.Key {
					continue
				}
				if cf.siteForced[cs.Call] {
					continue // discharged: the caller forced first
				}
				if exportedKey(ob.fn.Key) {
					p.walFindings = append(p.walFindings, walFinding{
						pos: cs.Call.Pos(),
						pkg: caller.Pkg,
						msg: "call to " + ob.fn.Key.Short() + " installs to the stable store (via " +
							ob.via + ") without a Force/ForceThrough covering it on this path " +
							"(write-ahead rule); force the log first or document why the records " +
							"are already durable",
					})
					continue
				}
				// Unexported: the caller inherits the obligation.
				if !carried[caller.Key] {
					carried[caller.Key] = true
					work = append(work, obligation{
						fn:     caller,
						origin: ob.origin,
						via:    caller.Key.Short() + " -> " + ob.via,
					})
				}
			}
		}
	}
	return p.walFindings
}

// walWalk runs the forced-state walk over one function body.
func walWalk(p *Program, fi *FuncInfo) *walFuncFacts {
	ff := &walFuncFacts{siteForced: make(map[*ast.CallExpr]bool)}
	info := fi.Pkg.Info
	lw := newLockWalker(p, fi)
	lw.pseudoAcquire = func(call *ast.CallExpr) []string {
		if isForceCall(info, call) {
			return []string{forcedKey}
		}
		if callee := p.Lookup(fi.Pkg, call); callee != nil && callee.Sum.Forces {
			return []string{forcedKey}
		}
		return nil
	}
	lw.onCall = func(call *ast.CallExpr, st *lwState, deferred bool) {
		forced := st.held[forcedKey].count > 0
		ff.siteForced[call] = forced
		if _, ok := isInstallCall(info, call); ok && !forced {
			ff.unforcedInstalls = append(ff.unforcedInstalls, call)
		}
	}
	lw.walk()
	return ff
}

// walExempt excludes test files and the stable package (the storage layer
// below the protocol) from the walorder analysis.
func walExempt(fi *FuncInfo) bool {
	if strings.HasSuffix(fi.Pkg.Pkg.Path(), "internal/stable") {
		return true
	}
	file := fi.Pkg.Fset.Position(fi.Decl.Pos()).Filename
	return strings.HasSuffix(file, "_test.go")
}

// exportedKey reports whether the function a key names is exported.
func exportedKey(k FuncKey) bool {
	short := k.Short()
	if i := strings.LastIndex(short, ")."); i >= 0 {
		short = short[i+2:]
	}
	if short == "" {
		return false
	}
	c := short[0]
	return c >= 'A' && c <= 'Z'
}
