package directive

type Log struct{}

func (l *Log) Force() error { return nil }

// MissingReason's directive has no reason, so it is reported and does not
// suppress the dropped-error finding beneath it.
func MissingReason(l *Log) {
	//lint:ignore forcecheck
	l.Force()
}
