// Package wal is the lane half of the bufescape fixture: the analyzer
// switches to lane mode on the package name and matches the arena/stream
// types (arena, chunk, streamRec) by name, so the fixture needs no imports
// from the real module.
package wal

// chunk and streamRec stand in for the arena chunk and per-stream record.
type chunk struct {
	buf []byte
}

type arena struct {
	cur *chunk
}

// appendFrame hands out arena-backed memory; its results are the lane
// taint source.  The name is on the lane API allowlist, so the stores it
// performs internally are not reported.
func (a *arena) appendFrame(n int) []byte {
	off := len(a.cur.buf)
	a.cur.buf = append(a.cur.buf, make([]byte, n)...)
	return a.cur.buf[off:]
}

type streamRec struct {
	lsn   uint64
	frame []byte
}

// Log models the structure a leak would retain into.
type Log struct {
	stash  [][]byte
	recent []streamRec
}

// keepFrame is a private helper whose summary says it stores its
// parameter; callers handing it lane memory are the real leak sites.
func (l *Log) keepFrame(fr []byte) {
	l.stash = append(l.stash, fr)
}

// retainFrame stores an arena frame directly: invalid once the arena
// recycles the chunk.
func (l *Log) retainFrame(a *arena) {
	fr := a.appendFrame(8)
	l.stash = append(l.stash, fr) // want "arena-backed lane memory .* is retained here"
}

// retainViaHelper launders the frame through keepFrame — no store appears
// in this function, only the callee summary sees it.
func (l *Log) retainViaHelper(a *arena) {
	fr := a.appendFrame(8)
	l.keepFrame(fr) // want "arena-backed lane memory .* is retained here"
}

// retainRec stores a streamRec carrier whole; the frame inside aliases the
// arena just the same.
func (l *Log) retainRec(sr streamRec) {
	l.recent = append(l.recent, sr) // want "arena-backed lane memory .* is retained here"
}

// retainChunk stores chunk-backed memory reached through a pointer.
func (l *Log) retainChunk(c *chunk) {
	l.stash = append(l.stash, c.buf) // want "arena-backed lane memory .* is retained here"
}

// copyRec is the sanctioned pattern: an ellipsis append copies the bytes,
// breaking the alias (this is what mergeRecord does).
func (l *Log) copyRec(sr streamRec) []byte {
	return append([]byte(nil), sr.frame...)
}

// statRec reads only scalars out of the carrier; copying sr.lsn retains
// nothing.
func statRec(sr streamRec) uint64 {
	return sr.lsn
}

// scrubFrame writes through its argument (MutatesParam).
func scrubFrame(p []byte) {
	for i := range p {
		p[i] = 0
	}
}

// redactRec mutates an appended frame through a helper: encoded frames are
// immutable once appended.
func redactRec(sr streamRec) {
	scrubFrame(sr.frame) // want "writes through arena-backed lane memory"
}

// retainJustified shows the documented escape hatch.
func (l *Log) retainJustified(a *arena) {
	fr := a.appendFrame(8)
	//lint:ignore bufescape fixture: modelling a deliberately pinned frame whose chunk is never recycled
	l.stash = append(l.stash, fr)
}
