package atomicmix

// report reads hits with a plain load while recordHit updates it atomically.
func (c *counters) report() int64 {
	return c.hits // want "races"
}

// reset stores plainly over the same atomically-updated field.
func (c *counters) reset() {
	c.hits = 0 // want "races"
}
