package atomicmix

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
}

// recordHit establishes hits as an atomically-accessed field.
func (c *counters) recordHit() {
	atomic.AddInt64(&c.hits, 1)
}

// hitCount reads it atomically too: consistent, no finding.
func (c *counters) hitCount() int64 {
	return atomic.LoadInt64(&c.hits)
}

// recordMiss uses plain access on a field that is plain everywhere: fine.
func (c *counters) recordMiss() {
	c.misses++
}
