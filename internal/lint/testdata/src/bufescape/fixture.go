// Package bufescape models decoded-record immutability: Record stands in
// for wal.Record (matched by name under the fixture/ path), and helpers
// with mutating summaries model the aliasing paths the syntactic
// logrecpurity analyzer cannot see.
package bufescape

import "fixture/bufescape/helper"

// Record stands in for wal.Record: a decoded snapshot whose interior
// memory aliases the scanner's buffers.
type Record struct {
	LSN uint64
	Op  []byte
}

// Clone is the sanctioned copy boundary: its result is fresh memory.
func (r Record) Clone() Record {
	c := r
	c.Op = append([]byte(nil), r.Op...)
	return c
}

// scrub zeroes its argument in place, so its summary says MutatesParam.
func scrub(p []byte) {
	for i := range p {
		p[i] = 0
	}
}

// checksum only reads; no summary bits.
func checksum(p []byte) int {
	n := 0
	for _, b := range p {
		n += int(b)
	}
	return n
}

// mutateDirect hands record memory straight to a mutating helper — no
// direct write appears here, so only the callee summary sees it.
func mutateDirect(r Record) {
	scrub(r.Op) // want "mutates memory reached through a decoded wal.Record"
}

// mutateViaAlias launders the interior through a local first; a syntactic
// rec.X-write check has nothing to anchor on.
func mutateViaAlias(r Record) {
	tmp := r.Op
	scrub(tmp) // want "mutates memory reached through a decoded wal.Record"
}

// mutateCrossPackage reaches the mutation through another package's
// helper, exercising cross-package summary propagation.
func mutateCrossPackage(r Record) {
	helper.Scrub(r.Op) // want "mutates memory reached through a decoded wal.Record"
}

// readOnly is fine: checksum never writes.
func readOnly(r Record) int {
	return checksum(r.Op)
}

// mutateClone is fine: Clone copies, so the write hits fresh memory.
func mutateClone(r Record) {
	scrub(r.Clone().Op)
}

// mutateSuppressed shows the documented escape hatch.
func mutateSuppressed(r Record) {
	//lint:ignore bufescape fixture: this record is a locally built scratch value, not a decoded snapshot
	scrub(r.Op)
}
