// Package helper provides byte-slice utilities whose summaries
// (MutatesParam) the main bufescape fixture consumes across the package
// boundary.
package helper

// Scrub zeroes p in place.
func Scrub(p []byte) {
	for i := range p {
		p[i] = 0
	}
}
