package lockorder

// BackwardOrder takes the log mutex before the engine facade: rank 8 is
// held while rank 1 is acquired.
func BackwardOrder(l *Log, e *Engine) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.mu.Lock() // want "violates the documented lock order"
	defer e.mu.Unlock()
}

// ShardBeforeGuard grabs a cache stripe lock and then the write-graph
// guard that is documented to come first.
func ShardBeforeGuard(sh *tableShard, m *Manager) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m.wgMu.Lock() // want "violates the documented lock order"
	defer m.wgMu.Unlock()
}

// Leak never releases the lock it takes.
func Leak(e *Engine) { // leaks on any early return
	e.mu.Lock() // want "no matching Unlock"
}

// ReadLeak never releases a read lock.
func ReadLeak(sh *tableShard) {
	sh.mu.RLock() // want "no matching RUnlock"
}
