// Package lockorder mirrors the engine's ranked lock-bearing structs by
// type and field name, which is how the analyzer identifies lock classes.
package lockorder

import "sync"

type Engine struct{ mu sync.Mutex }

type Manager struct {
	wgMu    sync.Mutex
	statsMu sync.Mutex
}

type tableShard struct{ mu sync.RWMutex }

type Log struct{ mu sync.Mutex }
