package lockorder

// ForwardOrder acquires strictly down the documented hierarchy.
func ForwardOrder(e *Engine, m *Manager, l *Log) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m.wgMu.Lock()
	defer m.wgMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
}

// SequentialHold releases one lock before taking the next, so no pair is
// ever held together.
func SequentialHold(m *Manager, sh *tableShard) {
	sh.mu.Lock()
	sh.mu.Unlock()
	m.wgMu.Lock()
	m.wgMu.Unlock()
}

// ReadPath pairs RLock with a deferred RUnlock.
func ReadPath(sh *tableShard) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
}
