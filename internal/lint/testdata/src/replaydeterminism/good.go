package replaydeterminism

import (
	"math/rand"
	"sort"
)

// SeededJitter carries an explicit seed: methods on *rand.Rand are fine.
func SeededJitter(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

// SliceOrder ranges over a slice, which is deterministic.
func SliceOrder(ids []int) []int {
	out := make([]int, 0, len(ids))
	for _, id := range ids {
		out = append(out, id)
	}
	return out
}

// SortedChainOrder shows the sanctioned pattern: snapshot the keys, sort,
// then iterate.  The collection range itself is order-independent and says so.
func SortedChainOrder(chains map[int][]int) []int {
	order := make([]int, 0, len(chains))
	//lint:ignore replaydeterminism key collection is order-independent; sorted below
	for id := range chains {
		order = append(order, id)
	}
	sort.Ints(order)
	return order
}
