package replaydeterminism

import (
	"math/rand"
	"time"
)

// ChainOrder feeds map iteration order straight into a replay ordering.
func ChainOrder(chains map[int][]int) []int {
	var order []int
	for id := range chains { // want "range over map"
		order = append(order, id)
	}
	return order
}

// Stamp lets wall-clock time into replay-ordering code.
func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

// Jitter draws from the unseeded global RNG.
func Jitter() int {
	return rand.Intn(8) // want "unseeded"
}

// Shuffle uses the global RNG through a different entry point.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "unseeded"
}
