package logrecpurity

import (
	"logicallog/internal/op"
	"logicallog/internal/wal"
)

// Read only inspects the record.
func Read(r *wal.Record) op.SI {
	return r.LSN
}

// Rebind reassigns the variable, which is not a mutation of the record.
func Rebind(r *wal.Record, other *wal.Record) *wal.Record {
	r = other
	return r
}

// CloneThenMutate is the sanctioned pattern: copy first, change the copy.
func CloneThenMutate(r *wal.Record) *op.Operation {
	o := r.Op.Clone()
	o.LSN = 42
	return o
}
