package logrecpurity

import "logicallog/internal/wal"

// Rewrite mutates a decoded record's header in place.
func Rewrite(r *wal.Record) {
	r.LSN = 0 // want "mutation through a wal.Record"
}

// Patch mutates the logged parameter bytes the record aliases.
func Patch(r *wal.Record, b byte) {
	r.Op.Params[0] = b // want "mutation through a wal.Record"
}

// Zero overwrites the record through its pointer.
func Zero(r *wal.Record) {
	*r = wal.Record{} // want "mutation through a wal.Record"
}
