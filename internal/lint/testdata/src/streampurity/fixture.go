// Package streampurity models the WAL's volatile log buffers: the guarded
// fields mirror internal/wal's logStream.recs, Log.shipped, and
// Log.mergedBuf (the analyzer keys on type and field names; Match scopes it
// to the real package).
package streampurity

type streamRec struct {
	lsn   uint64
	frame []byte
}

type logStream struct {
	recs []streamRec
}

type Log struct {
	shipped   []streamRec
	mergedBuf []byte
}

// append is the blessed encode-into-lane step.
func (s *logStream) append(r streamRec) {
	s.recs = append(s.recs, r)
}

// drop is the blessed crash discard.
func (s *logStream) drop() {
	s.recs = nil
}

// AppendShipped is the blessed shipped-tail append.
func (l *Log) AppendShipped(r streamRec) {
	l.shipped = append(l.shipped, r)
}

// mergeThrough is the blessed stream merge.
func (l *Log) mergeThrough(s *logStream) {
	for _, r := range s.recs {
		l.mergedBuf = append(l.mergedBuf, r.frame...)
	}
	s.recs = s.recs[:0]
}

// Crash is the blessed wholesale discard.
func (l *Log) Crash() {
	l.shipped = nil
	l.mergedBuf = nil
}
