package streampurity

// Sneak appends into a lane without going through the stream API.
func Sneak(s *logStream, r streamRec) {
	s.recs = append(s.recs, r) // want "direct write to logStream.recs"
}

// Reorder rewrites a buffered record in place.
func Reorder(s *logStream, r streamRec) {
	s.recs[0] = r // want "direct write to logStream.recs"
}

// Inject writes the staging buffer directly, bypassing the merge.
func Inject(l *Log, frame []byte) {
	l.mergedBuf = append(l.mergedBuf, frame...) // want "direct write to Log.mergedBuf"
}

// Smuggle grows the shipped tail outside AppendShipped.
func Smuggle(l *Log, r streamRec) {
	l.shipped = append(l.shipped, r) // want "direct write to Log.shipped"
}

// Truncate drops buffered lane records from an unrelated helper.
func Truncate(s *logStream) {
	s.recs = s.recs[:0] // want "direct write to logStream.recs"
}
