package streampurity

// Observe only reads the buffers, which is always fine.
func Observe(l *Log, s *logStream) int {
	return len(l.mergedBuf) + len(l.shipped) + len(s.recs)
}

// CopyOut rebinds locals; no buffer field is written through.
func CopyOut(s *logStream) []streamRec {
	recs := s.recs
	recs = append(recs[:0:0], recs...)
	return recs
}

// Suppressed is intentional and says why.
func Suppressed(l *Log) {
	//lint:ignore streampurity exercising the suppression path
	l.mergedBuf = nil
}

// OtherFields of the same structs stay writable.
func OtherFields(r *streamRec, lsn uint64, frame []byte) {
	r.lsn = lsn
	r.frame = frame
}
