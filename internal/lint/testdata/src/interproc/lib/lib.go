// Package lib declares one function per summary fact the interproc test
// asserts: forcing, storing, mutating, returning an alias, and the lock
// acquire/release helper pair.
package lib

import "sync"

type Log struct{}

func (l *Log) Force() error { return nil }

// ForceIt forces transitively: its summary must say Forces without a
// direct Force call in its callers.
func ForceIt(l *Log) error { return l.Force() }

type Sink struct {
	kept [][]byte
}

// Keep retains p beyond the call: StoresParam for p.
func (s *Sink) Keep(p []byte) {
	s.kept = append(s.kept, p)
}

// Scrub writes through p: MutatesParam.
func Scrub(p []byte) {
	for i := range p {
		p[i] = 0
	}
}

// Head returns an alias of p: ReturnsParam.
func Head(p []byte) []byte {
	return p[:1]
}

type Guard struct {
	mu sync.Mutex
}

// Acquire and Release are the helper pair: net lock effects with no
// balanced region inside either function.
func (g *Guard) Acquire() { g.mu.Lock() }
func (g *Guard) Release() { g.mu.Unlock() }
