// Package app consumes lib across the package boundary so the test can
// assert cross-package call-graph edges and transitive summaries.
package app

import "fixture/interproc/lib"

// Chain forces only through lib.ForceIt.
func Chain(l *lib.Log) error { return lib.ForceIt(l) }

// KeepVia stores an alias of p through two lib calls: Head's ReturnsParam
// carries the taint into Keep's StoresParam.
func KeepVia(s *lib.Sink, p []byte) {
	s.Keep(lib.Head(p))
}

// Guarded balances the helper pair.
func Guarded(g *lib.Guard) {
	g.Acquire()
	g.Release()
}
