// Package walorder models the write-ahead protocol by name and signature:
// the analyzer keys on Force/ForceThrough methods of a type named Log and
// WriteBatch on a type named Store, so the fixture needs no imports from
// the real module.
package walorder

import "fixture/walorder/sub"

type Log struct{}

func (l *Log) Force() error                  { return nil }
func (l *Log) ForceThrough(lsn uint64) error { return nil }

type Store struct{}

func (s *Store) WriteBatch(recs []int) error { return nil }

// installForced is the canonical clean shape: force, then install.
func installForced(l *Log, s *Store) {
	_ = l.Force()
	_ = s.WriteBatch(nil)
}

// installNaked installs with no force anywhere and no caller that could
// supply one, so the report lands on the install itself.
func installNaked(s *Store) {
	_ = s.WriteBatch(nil) // want "installNaked reaches Store.WriteBatch with no covering"
}

// installMaybeForced forces on only one branch: the must-analysis
// intersection means the install is not dominated by the force.
func installMaybeForced(l *Log, s *Store, sure bool) {
	if sure {
		_ = l.Force()
	}
	_ = s.WriteBatch(nil) // want "installMaybeForced reaches Store.WriteBatch with no covering"
}

// forceAll forces through a helper; callers inherit the fact from its
// summary rather than seeing a direct Force call.
func forceAll(l *Log) error { return l.Force() }

func installViaHelperForce(l *Log, s *Store) {
	_ = forceAll(l)
	_ = s.WriteBatch(nil)
}

// installBatch is the private half of the interprocedural chain: it
// installs without forcing, and the obligation propagates silently to its
// callers because an unexported helper's contract is its callers' problem.
func installBatch(s *Store, recs []int) {
	_ = s.WriteBatch(recs)
}

// Install is the exported boundary carrying the caller-must-have-forced
// contract; unforced call sites are reported here, not inside the helper.
func Install(l *Log, s *Store, recs []int) {
	installBatch(s, recs)
}

func goodCaller(l *Log, s *Store) {
	_ = l.ForceThrough(7)
	Install(l, s, nil)
}

func badCaller(l *Log, s *Store) {
	Install(l, s, nil) // want "call to Install installs to the stable store"
}

// goodMirror and badMirror exercise the same contract across a package
// boundary: sub.MirrorInstall installs without forcing.
func goodMirror(l *sub.Log, s *sub.Store) {
	_ = l.Force()
	sub.MirrorInstall(s, nil)
}

func badMirror(s *sub.Store) {
	sub.MirrorInstall(s, nil) // want "call to MirrorInstall installs to the stable store"
}

// installSuppressed shows the documented escape hatch.
func installSuppressed(s *Store) {
	//lint:ignore walorder fixture: the records are made durable by an out-of-band sync in this scenario
	_ = s.WriteBatch(nil)
}
