// Package sub is the cross-package half of the walorder fixture: its
// exported MirrorInstall installs without forcing, so the write-ahead
// obligation crosses the package boundary to every caller.
package sub

type Log struct{}

func (l *Log) Force() error { return nil }

type Store struct{}

func (s *Store) WriteBatch(recs []int) error { return nil }

// MirrorInstall models the standby pattern: the records must already be
// durable when the caller hands them over.
func MirrorInstall(s *Store, recs []int) {
	_ = s.WriteBatch(recs)
}
