package forcecheck

// DropAll discards durability errors four different ways.
func DropAll(l *Log, s *Store) {
	l.Force()         // want "error from Log.Force is dropped"
	l.ForceThrough(7) // want "error from Log.ForceThrough is dropped"
	_ = s.FlushAll()  // want "assigned to _"
	go l.Force()      // want "started with go"
	defer l.Force()   // want "deferred Log.Force"
}
