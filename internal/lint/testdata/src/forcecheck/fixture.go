// Package forcecheck models durability-critical methods by name and
// signature; the analyzer keys on method name plus a trailing error result.
package forcecheck

type Log struct{}

func (l *Log) Force() error                  { return nil }
func (l *Log) ForceThrough(lsn uint64) error { return nil }

type Store struct{}

func (s *Store) FlushAll() error { return nil }

// Truncate returns nothing, so dropping it cannot drop an error.
func (s *Store) Truncate() {}

// Force as a free function carries no durability obligation.
func Force() error { return nil }
