package forcecheck

// Checked observes every durability error.
func Checked(l *Log, s *Store) error {
	if err := l.Force(); err != nil {
		return err
	}
	if err := s.FlushAll(); err != nil {
		return err
	}
	return l.ForceThrough(3)
}

// NoError drops a critical-named method with no error result: nothing to drop.
func NoError(s *Store) {
	s.Truncate()
}

// FreeFunc drops a free function's error; only methods carry the obligation.
func FreeFunc() {
	Force()
}
