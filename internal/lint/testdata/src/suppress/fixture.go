package suppress

type Log struct{}

func (l *Log) Force() error { return nil }

// LeadingDirective suppresses the finding from the line above it.
func LeadingDirective(l *Log) {
	//lint:ignore forcecheck fixture teardown does not care about durability
	l.Force()
}

// TrailingDirective suppresses from the same line.
func TrailingDirective(l *Log) {
	l.Force() //lint:ignore forcecheck fixture teardown does not care about durability
}

// WrongName names a different analyzer, so the finding survives.
func WrongName(l *Log) {
	//lint:ignore lockorder wrong analyzer name must not suppress forcecheck
	l.Force() // want "dropped"
}

// Unsuppressed has no directive at all.
func Unsuppressed(l *Log) {
	l.Force() // want "dropped"
}
