// Package staledirective carries one live, one dead, and one unjudged
// //lint:ignore so the stale-directive report can be exercised: the dead
// one names an analyzer that runs here yet suppresses nothing.
package staledirective

type Log struct{}

func (l *Log) Force() error { return nil }

// forceLoose: the directive below suppresses a real forcecheck finding, so
// it is used, not stale.
func forceLoose(l *Log) {
	//lint:ignore forcecheck fixture: the force error is observed out of band
	l.Force()
}

// forceTight: nothing beneath this directive trips forcecheck, so the
// directive itself is reported.
func forceTight(l *Log) error {
	//lint:ignore forcecheck fixture: nothing here needs ignoring // want "stale //lint:ignore forcecheck"
	return l.Force()
}

// idle: lockorder does not run in this fixture, so its directive is not
// judged and must not be reported stale.
func idle(l *Log) error {
	//lint:ignore lockorder fixture: this analyzer does not run here
	return l.Force()
}
