// Package critsection models lock-region closure: early-return leaks,
// panics without a deferred release, and the acquire/release helper pair
// that only the interprocedural summaries can see.
package critsection

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

// balanced closes its region with defer: every exit is covered.
func (b *box) balanced() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// earlyReturnLeak releases on the fallthrough path but not the early one.
func (b *box) earlyReturnLeak(skip bool) int {
	b.mu.Lock()
	if skip {
		return 0 // want "box.mu acquired in earlyReturnLeak is not released on this path"
	}
	n := b.n
	b.mu.Unlock()
	return n
}

// panicNoDefer panics with the lock held and nothing deferred.
func (b *box) panicNoDefer() {
	b.mu.Lock()
	if b.n < 0 {
		panic("negative") // want "panic while holding box.mu with no deferred release"
	}
	b.mu.Unlock()
}

// panicDeferred is covered: the deferred unlock runs during the panic.
func (b *box) panicDeferred() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n < 0 {
		panic("negative")
	}
}

// relockWindow is the *Locked convention: the caller holds b.mu; releasing
// and re-acquiring around slow work is balanced from the caller's view.
func (b *box) relockWindow() {
	b.mu.Unlock()
	b.n++
	b.mu.Lock()
}

type lane struct {
	mu sync.Mutex
}

type set struct {
	lanes []lane
}

// lockAll is the acquire helper: every exit holds every lane lock, so its
// summary moves the release obligation to its call sites.
func (s *set) lockAll() {
	for i := range s.lanes {
		s.lanes[i].mu.Lock()
	}
}

// unlockAll is the matching release helper.
func (s *set) unlockAll() {
	for i := range s.lanes {
		s.lanes[i].mu.Unlock()
	}
}

// sweepBalanced closes the helper-acquired region on every path.
func (s *set) sweepBalanced() {
	s.lockAll()
	s.unlockAll()
}

// sweepLeak misses the release helper on the early path.  No Lock call
// appears in this function at all — only the helper summaries make the
// leak visible.
func (s *set) sweepLeak(skip bool) {
	s.lockAll()
	if skip {
		return // want "lane.mu acquired in sweepLeak is not released on this path"
	}
	s.unlockAll()
}

// leakJustified shows the documented escape hatch.
func (b *box) leakJustified(skip bool) {
	b.mu.Lock()
	if skip {
		//lint:ignore critsection fixture: lock ownership passes to a background releaser on this path
		return
	}
	b.mu.Unlock()
}
