// Package spanend mirrors the shape of internal/obs's Lane/Span tracing API
// so the fixture exercises the analyzer without importing the real package.
package spanend

type Lane struct{}

type Span struct{}

func (l *Lane) Begin(name string) *Span { return &Span{} }

func (l *Lane) Instant(name string) {}

func (s *Span) End() {}

func beginEnded(l *Lane) {
	sp := l.Begin("analysis")
	defer sp.End()
}

func beginReturned(l *Lane) *Span {
	return l.Begin("redo") // retained by the caller: fine
}

func instantIsFine(l *Lane) {
	l.Instant("decision") // instants are point events, nothing to end
}
