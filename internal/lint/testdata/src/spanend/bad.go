package spanend

func beginDiscarded(l *Lane) {
	l.Begin("analysis") // want "discarded and can never be ended"
}

func beginToBlank(l *Lane) {
	_ = l.Begin("redo") // want "assigned to _ and can never be ended"
}
