package lint

import (
	"go/ast"
)

// StreamPurity protects the commit fast lane's merge invariant: volatile log
// records live in per-stream buffers (logStream.recs), the shipped tail
// (Log.shipped), and the merged staging buffer (Log.mergedBuf), and the
// durable byte stream is only correct because exactly one code path moves
// records between them — Append encodes into a stream, AppendShipped into
// the shipped tail, and the group-commit leader's merge rebuilds global LSN
// order.  A direct write to any of these buffers from elsewhere can reorder,
// duplicate, or drop records without tripping a test until a crash replays
// the damage.  Within package wal, every assignment through one of the
// buffer fields outside the blessed functions is reported.
var StreamPurity = &Analyzer{
	Name: "streampurity",
	Doc: "flags direct writes to the WAL's volatile log buffers (logStream.recs, " +
		"Log.shipped, Log.mergedBuf) outside the stream API",
	Match: matchSuffix("internal/wal"),
	Run:   runStreamPurity,
}

// streamPurityAllowed are the functions that legitimately move records
// between the volatile buffers: the append paths, the merge, and the
// lifecycle operations that rebuild or discard the buffers wholesale.
var streamPurityAllowed = map[string]bool{
	"append":        true, // logStream.append: the encode-into-lane step
	"drop":          true, // logStream.drop: crash discards a lane
	"mergeThrough":  true, // the group-commit leader's stream merge
	"mergeRecord":   true, // one record (or tombstone) into the staging buffer
	"AppendShipped": true, // standby append into the shipped tail
	"forceLocked":   true, // releases the staged batch after a device ack
	"Crash":         true, // drops every volatile buffer
	"SetStreams":    true, // reconfiguration carries records across lanes
}

// streamBufferFields maps the guarded struct type to its buffer fields.
var streamBufferFields = map[string]map[string]bool{
	"logStream": {"recs": true},
	"Log":       {"shipped": true, "mergedBuf": true},
}

func runStreamPurity(p *Pass) error {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || streamPurityAllowed[fn.Name.Name] {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						checkStreamBufferWrite(p, lhs)
					}
				case *ast.IncDecStmt:
					checkStreamBufferWrite(p, n.X)
				}
				return true
			})
		}
	}
	return nil
}

// checkStreamBufferWrite reports lhs when the expression it writes through
// selects one of the guarded buffer fields (covering both rebinding the
// field and writing through an index or slice of it).
func checkStreamBufferWrite(p *Pass, lhs ast.Expr) {
	for e := ast.Unparen(lhs); ; {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			next, ok := mutationBase(e)
			if !ok {
				return
			}
			e = ast.Unparen(next)
			continue
		}
		if field, typ := streamBufferSelection(p, sel); field != "" {
			p.Reportf(lhs.Pos(),
				"direct write to %s.%s outside the stream API; volatile records must "+
					"flow through Append/AppendShipped and the group-commit merge so "+
					"the durable byte stream stays in dense LSN order", typ, field)
			return
		}
		e = ast.Unparen(sel.X)
	}
}

// streamBufferSelection resolves sel and, when it names a guarded buffer
// field, returns the field and declaring type name.
func streamBufferSelection(p *Pass, sel *ast.SelectorExpr) (field, typ string) {
	v, recv := fieldSelection(p.Info, sel)
	if v == nil {
		return "", ""
	}
	if streamBufferFields[recv][v.Name()] {
		return v.Name(), recv
	}
	return "", ""
}
