package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LockOrder enforces the documented lock acquisition order between the
// engine mutex facade, the cache manager's locks, the cache/stable stripe
// locks, and the WAL mutex, and requires every Lock/RLock in a function to
// have a matching (usually deferred) Unlock/RUnlock somewhere in the same
// function.
//
// The documented order (outermost first; a function must never acquire a
// lock of equal or lower rank while holding one of higher or equal rank):
//
//  1. core.Engine.mu          — engine mutex facade
//  2. cache.Manager.wgMu      — write-graph guard
//  3. cache.tableShard.mu     — cache stripe locks
//  4. cache.Manager.statsMu   — cache counters
//  5. stable.Store.batchMu    — stable batch serialization
//  6. stable.storeShard.mu    — stable stripe locks
//  7. stable.Store.statsMu    — stable counters
//  8. wal.Log.mu              — log mutex
//
// The check is intraprocedural and statement-ordered: it sees acquisitions
// nested within one function body, which is where ordering bugs between the
// striped locks and the facades can actually be written.  Cross-function
// holding is covered by the ranks' package layering (core calls cache calls
// stable/wal, never backwards).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "verifies the engine/cache/stable/wal lock acquisition order and " +
		"that every Lock has a paired Unlock in the same function",
	Run: runLockOrder,
}

// lockClass identifies one ranked lock by declaring struct type and field.
type lockClass struct {
	typeName  string
	fieldName string
	rank      int
	desc      string
}

// lockRanks is the documented order, outermost (lowest rank) first.  The
// classes are matched by struct-type and field name so the analysistest
// fixtures can replicate them without importing the real packages.
var lockRanks = []lockClass{
	{"Engine", "mu", 1, "core.Engine.mu (engine mutex facade)"},
	{"Manager", "wgMu", 2, "cache.Manager.wgMu"},
	{"tableShard", "mu", 3, "cache.tableShard.mu (cache stripe)"},
	{"Manager", "statsMu", 4, "cache.Manager.statsMu"},
	{"Store", "batchMu", 5, "stable.Store.batchMu"},
	{"storeShard", "mu", 6, "stable.storeShard.mu (stable stripe)"},
	{"Store", "statsMu", 7, "stable.Store.statsMu"},
	{"Log", "mu", 8, "wal.Log.mu"},
}

func classOf(typeName, fieldName string) *lockClass {
	for i := range lockRanks {
		c := &lockRanks[i]
		if c.typeName == typeName && c.fieldName == fieldName {
			return c
		}
	}
	return nil
}

// lockEvent is one mutex operation in source order within a function.
type lockEvent struct {
	recv     string // receiver expression, e.g. "e.mu" or "sh.mu"
	key      string // canonical lock key ("Type.field"), for summary lookups
	method   string // Lock, RLock, Unlock, RUnlock
	pos      ast.Node
	class    *lockClass // nil when the mutex is not a ranked class
	deferred bool
}

func runLockOrder(p *Pass) error {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunction(p, fd)
		}
	}
	return nil
}

func checkFunction(p *Pass, fd *ast.FuncDecl) {
	events := collectLockEvents(p, fd.Body)
	if len(events) == 0 {
		return
	}
	checkPairing(p, fd, events)
	checkOrdering(p, events)
}

// collectLockEvents walks body in lexical order, recording every
// (R)Lock/(R)Unlock call on a sync.Mutex or sync.RWMutex.
func collectLockEvents(p *Pass, body *ast.BlockStmt) []lockEvent {
	var events []lockEvent
	record := func(call *ast.CallExpr, deferred bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		method := sel.Sel.Name
		switch method {
		case "Lock", "RLock", "Unlock", "RUnlock":
		default:
			return
		}
		if !isSyncMutex(p.Info.TypeOf(sel.X)) {
			return
		}
		key, _ := lockKeyFor(p.Info, p.Pkg, sel.X)
		ev := lockEvent{
			recv:     types.ExprString(sel.X),
			key:      key,
			method:   method,
			pos:      call,
			deferred: deferred,
		}
		if recvSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if field, owner := fieldSelection(p.Info, recvSel); field != nil {
				ev.class = classOf(owner, field.Name())
			}
		}
		events = append(events, ev)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			record(n, false)
		case *ast.DeferStmt:
			record(n.Call, true)
			return false // the record above already covers the deferred call
		case *ast.FuncLit:
			return false // closures are separate control flow; skip
		}
		return true
	})
	return events
}

// checkPairing reports Lock/RLock calls with no matching Unlock/RUnlock on
// the same receiver expression anywhere in the function.  A function the
// interprocedural layer classifies as an acquire helper for that lock
// (lockAllStreams: every exit deliberately holds the lane locks) is exempt —
// the critsection analyzer enforces the matching release at its call sites.
func checkPairing(p *Pass, fd *ast.FuncDecl, events []lockEvent) {
	var sum Summary
	p.program().Resolve()
	if fi := p.program().funcInfoForDecl(p.pkg(), fd); fi != nil {
		sum = fi.Sum
	}
	releasedBy := map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}
	for _, acq := range events {
		rel, isAcquire := releasedBy[acq.method]
		if !isAcquire {
			continue
		}
		paired := false
		for _, e := range events {
			if e.method == rel && e.recv == acq.recv {
				paired = true
				break
			}
		}
		if !paired && sum.NetAcquires[acq.key] && p.program().HasReleaseHelper(acq.key) {
			continue // acquire helper with a matching release helper: the
			// critsection analyzer enforces the release at call sites
		}
		if !paired {
			p.Reportf(acq.pos.Pos(),
				"%s.%s() has no matching %s in %s; a panic or early return leaks the lock "+
					"(prefer defer %s.%s())",
				acq.recv, acq.method, rel, fd.Name.Name, acq.recv, rel)
		}
	}
}

// checkOrdering walks the events in source order tracking which ranked
// locks are held and reports acquisitions that violate the documented rank
// order.  Deferred releases run at function exit, so they never release
// during the walk.
func checkOrdering(p *Pass, events []lockEvent) {
	type held struct {
		recv  string
		class *lockClass
	}
	var holding []held
	release := func(recv string) {
		for i := len(holding) - 1; i >= 0; i-- {
			if holding[i].recv == recv {
				holding = append(holding[:i], holding[i+1:]...)
				return
			}
		}
	}
	for _, e := range events {
		switch e.method {
		case "Unlock", "RUnlock":
			if !e.deferred {
				release(e.recv)
			}
		case "Lock", "RLock":
			if e.class == nil {
				continue
			}
			for _, h := range holding {
				if h.recv == e.recv {
					continue
				}
				if h.class.rank >= e.class.rank {
					p.Reportf(e.pos.Pos(),
						"acquiring %s (rank %d) while holding %s (rank %d) violates the "+
							"documented lock order %s",
						e.class.desc, e.class.rank, h.class.desc, h.class.rank, orderSummary())
				}
			}
			holding = append(holding, held{recv: e.recv, class: e.class})
		}
	}
}

func isSyncMutex(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

func orderSummary() string {
	s := ""
	for i, c := range lockRanks {
		if i > 0 {
			s += " < "
		}
		s += fmt.Sprintf("%s.%s", c.typeName, c.fieldName)
	}
	return s
}
