package apprec

import (
	"errors"
	"fmt"
	"sort"

	"logicallog/internal/cache"
	"logicallog/internal/core"
	"logicallog/internal/op"
	"logicallog/internal/workload"
)

// Domain adapts application recovery to workload.Domain so the scenario-mix
// machinery can drive it.  Each key owns one application: a Put stages the
// value as a transient file, launches the application, absorbs the staging
// object through R(A,X) — so the value reaches the recoverable application
// state via a logical read whose replay re-derives it, never re-logs it —
// and deletes the staging object (the Section 5 transient-object case).  A
// Get decodes the application's input buffer; a Delete is Exit.  Ex(A) is
// deliberately not part of Put: an execution step consumes the input
// buffer, which is exactly the byte-for-byte state the mix model checks.
type Domain struct {
	eng    *core.Engine
	prefix string
}

// NewDomain returns a scenario-mix domain over eng.  The engine's registry
// must have Register applied.  The prefix namespaces the per-key
// application and staging objects (e.g. "ap").
func NewDomain(eng *core.Engine, prefix string) *Domain {
	return &Domain{eng: eng, prefix: prefix}
}

func (d *Domain) appID(key []byte) op.ObjectID {
	return op.ObjectID(d.prefix + "/a/" + string(key))
}

func (d *Domain) stagingID(key []byte) op.ObjectID {
	return op.ObjectID(d.prefix + "/s/" + string(key))
}

// Put implements workload.Domain via the application lifecycle: exit any
// prior incarnation, stage the value, launch, absorb, unstage.
func (d *Domain) Put(key, val []byte) error {
	app := Attach(d.eng, d.appID(key))
	if _, err := d.eng.Get(app.ID()); err == nil {
		// Overwrite = the old application exits, a fresh one launches.
		if err := app.Exit(); err != nil {
			return err
		}
	} else if !errors.Is(err, cache.ErrNotFound) {
		return err
	}
	staging := d.stagingID(key)
	if err := d.eng.Execute(op.NewCreate(staging, val)); err != nil {
		return err
	}
	app, err := Launch(d.eng, d.appID(key))
	if err != nil {
		return err
	}
	if err := app.Read(staging); err != nil {
		return err
	}
	// The staging object's lifetime ends inside the same history window —
	// recovery may skip every operation on it (Section 5).
	return d.eng.Execute(op.NewDelete(staging))
}

// Get implements workload.Domain: the value lives in the application's
// input buffer, where R(A,X) absorbed it.
func (d *Domain) Get(key []byte) ([]byte, bool, error) {
	raw, err := d.eng.Get(d.appID(key))
	if errors.Is(err, cache.ErrNotFound) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	st, err := DecodeState(raw)
	if err != nil {
		return nil, false, err
	}
	return st.Input, true, nil
}

// Delete implements workload.Domain: the application exits.
func (d *Domain) Delete(key []byte) (bool, error) {
	app := Attach(d.eng, d.appID(key))
	if _, err := d.eng.Get(app.ID()); errors.Is(err, cache.ErrNotFound) {
		return false, nil
	} else if err != nil {
		return false, err
	}
	return true, app.Exit()
}

// Range implements workload.Domain: enumerate live applications in key
// order over [lo, hi) (hi nil/empty = unbounded).
func (d *Domain) Range(lo, hi []byte, fn func(key, val []byte) bool) error {
	p := d.prefix + "/a/"
	lower := op.ObjectID(p + string(lo))
	var upper op.ObjectID
	if len(hi) > 0 {
		upper = op.ObjectID(p + string(hi))
	} else {
		upper = op.ObjectID(d.prefix + "/a0") // one past every "<prefix>/a/..." id
	}
	ids, err := d.eng.Objects(lower, upper)
	if err != nil {
		return err
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, x := range ids {
		raw, err := d.eng.Get(x)
		if errors.Is(err, cache.ErrNotFound) {
			continue
		}
		if err != nil {
			return err
		}
		st, err := DecodeState(raw)
		if err != nil {
			return err
		}
		if !fn([]byte(x[len(p):]), st.Input) {
			return nil
		}
	}
	return nil
}

// Check implements workload.Domain: every live application must decode, no
// staging object may outlive its Put, and a freshly launched application
// has taken no execution steps.
func (d *Domain) Check() error {
	if err := d.Range(nil, nil, func(key, val []byte) bool { return true }); err != nil {
		return err
	}
	lower := op.ObjectID(d.prefix + "/s/")
	upper := op.ObjectID(d.prefix + "/s0")
	ids, err := d.eng.Objects(lower, upper)
	if err != nil {
		return err
	}
	if len(ids) > 0 {
		return fmt.Errorf("apprec: %d staging objects leaked: %v", len(ids), ids)
	}
	return nil
}

// Compile-time interface check.
var _ workload.Domain = (*Domain)(nil)
