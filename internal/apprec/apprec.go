// Package apprec implements the application-recovery domain of the paper
// (Section 1 and [7]): deterministic applications whose state is a
// recoverable object and whose interactions with the recoverable store are
// logged as the Table 1 operations
//
//	Ex(A)     application execution between store calls (physiological)
//	R(A,X)    application read of object X into A's input buffer (logical)
//	W_L(A,X)  logical application write of X from A's output buffer
//	W_P(X,v)  physical application write (the [7] fallback this paper makes
//	          unnecessary)
//
// An application is a tiny deterministic machine: its persistent state is an
// encoded (input buffer, accumulator, output buffer, step counter) tuple.
// Execution steps transform the accumulator from the input buffer;
// writes move the output buffer to a target object.  The point is not the
// machine's sophistication but that its operations have exactly the read/
// write-set shapes whose recovery cost the paper analyzes.
package apprec

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"logicallog/internal/core"
	"logicallog/internal/op"
)

// Function ids registered by Register.
const (
	// FuncAppExec is Ex(A): one execution step over the application state.
	FuncAppExec op.FuncID = "apprec.exec"
	// FuncAppRead is R(A,X): absorb object X into A's input buffer.
	FuncAppRead op.FuncID = "apprec.read"
	// FuncAppWrite is W_L(A,X): emit A's output buffer as X's new value.
	FuncAppWrite op.FuncID = "apprec.write"
)

// State is the decoded application state.
type State struct {
	// Input is the input buffer appended to by R(A,X).
	Input []byte
	// Acc is the accumulator transformed by Ex(A).
	Acc []byte
	// Output is the output buffer emitted by W_L(A,X).
	Output []byte
	// Steps counts executed Ex operations.
	Steps uint64
}

// Encode serializes the state into a recoverable object value.
func (s *State) Encode() []byte {
	var steps [8]byte
	binary.BigEndian.PutUint64(steps[:], s.Steps)
	return op.EncodeParams(s.Input, s.Acc, s.Output, steps[:])
}

// DecodeState parses an application state value.
func DecodeState(v []byte) (*State, error) {
	fields, err := op.DecodeParams(v)
	if err != nil || len(fields) != 4 || len(fields[3]) != 8 {
		return nil, fmt.Errorf("apprec: corrupt application state: %v", err)
	}
	return &State{
		Input:  fields[0],
		Acc:    fields[1],
		Output: fields[2],
		Steps:  binary.BigEndian.Uint64(fields[3]),
	}, nil
}

// Register installs the application transformations on a registry.  Safe to
// call once per registry.
func Register(reg *op.Registry) {
	reg.Register(FuncAppExec, execStep)
	reg.Register(FuncAppRead, readStep)
	reg.Register(FuncAppWrite, writeStep)
}

// execStep: A <- Ex(A).  Params carry the step's salt.  The accumulator
// absorbs the input buffer (xor-folded with the salt), the output buffer
// becomes a transform of the accumulator, and the input buffer is consumed.
func execStep(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	id, raw, err := soleEntry(reads)
	if err != nil {
		return nil, err
	}
	st, err := DecodeState(raw)
	if err != nil {
		return nil, err
	}
	acc := append([]byte(nil), st.Acc...)
	for i, b := range st.Input {
		if i < len(acc) {
			acc[i] ^= b
		} else {
			acc = append(acc, b)
		}
	}
	for i := range acc {
		salt := byte(0)
		if len(params) > 0 {
			salt = params[i%len(params)]
		}
		acc[i] = acc[i]*31 + salt
	}
	out := &State{
		Input:  nil,
		Acc:    acc,
		Output: append([]byte(nil), acc...),
		Steps:  st.Steps + 1,
	}
	return map[op.ObjectID][]byte{id: out.Encode()}, nil
}

// readStep: A <- R(A,X).  Params name the application object so the
// transformation can tell its two inputs apart.
func readStep(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	appID := op.ObjectID(params)
	raw, ok := reads[appID]
	if !ok {
		return nil, fmt.Errorf("apprec: read step missing application state %q", appID)
	}
	var data []byte
	found := false
	for id, v := range reads {
		if id != appID {
			data = v
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("apprec: read step missing source object")
	}
	st, err := DecodeState(raw)
	if err != nil {
		return nil, err
	}
	out := &State{
		Input:  append(append([]byte(nil), st.Input...), data...),
		Acc:    st.Acc,
		Output: st.Output,
		Steps:  st.Steps,
	}
	return map[op.ObjectID][]byte{appID: out.Encode()}, nil
}

// writeStep: X <- W_L(A,X).  Params name the target object.  The new value
// of X is the application's output buffer — read from A at replay time,
// never logged.
func writeStep(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	_, raw, err := soleEntry(reads)
	if err != nil {
		return nil, err
	}
	st, err := DecodeState(raw)
	if err != nil {
		return nil, err
	}
	if len(params) == 0 {
		return nil, fmt.Errorf("apprec: write step missing target")
	}
	return map[op.ObjectID][]byte{op.ObjectID(params): append([]byte(nil), st.Output...)}, nil
}

func soleEntry(reads map[op.ObjectID][]byte) (op.ObjectID, []byte, error) {
	if len(reads) != 1 {
		return "", nil, fmt.Errorf("apprec: expected 1 read, got %d", len(reads))
	}
	for id, v := range reads {
		return id, v, nil
	}
	panic("unreachable")
}

// App drives one recoverable application over an engine.
type App struct {
	eng *core.Engine
	id  op.ObjectID
}

// Launch creates the application-state object and returns the driver.  The
// registry must already have Register applied (core engines created by this
// package's NewEngine helper do).
func Launch(eng *core.Engine, id op.ObjectID) (*App, error) {
	st := (&State{}).Encode()
	if err := eng.Execute(op.NewCreate(id, st)); err != nil {
		return nil, err
	}
	return &App{eng: eng, id: id}, nil
}

// Attach wraps an existing application-state object (e.g. after recovery).
func Attach(eng *core.Engine, id op.ObjectID) *App {
	return &App{eng: eng, id: id}
}

// ID returns the application-state object id.
func (a *App) ID() op.ObjectID { return a.id }

// Read performs R(A,X): a logical application read of object x.
func (a *App) Read(x op.ObjectID) error {
	return a.eng.Execute(op.NewAppRead(a.id, x, FuncAppRead, []byte(a.id)))
}

// Step performs Ex(A): one execution step with the given salt.
func (a *App) Step(salt []byte) error {
	return a.eng.Execute(op.NewExecute(a.id, FuncAppExec, salt))
}

// Write performs W_L(A,X): a logical application write of object x from the
// output buffer.  Nothing is logged but ids — the paper's headline saving.
func (a *App) Write(x op.ObjectID) error {
	return a.eng.Execute(op.NewLogicalWrite(a.id, x, FuncAppWrite, []byte(x)))
}

// WritePhysical performs W_P(X, output): the [7] fallback that logs the
// output buffer's value physically.  Used as the comparison baseline in E7.
func (a *App) WritePhysical(x op.ObjectID) error {
	st, err := a.State()
	if err != nil {
		return err
	}
	return a.eng.Execute(op.NewPhysicalWrite(x, st.Output))
}

// Exit deletes the application state (a terminated application, the
// Section 5 recovery optimization target).
func (a *App) Exit() error {
	return a.eng.Execute(op.NewDelete(a.id))
}

// State decodes and returns the current application state.
func (a *App) State() (*State, error) {
	raw, err := a.eng.Get(a.id)
	if err != nil {
		return nil, err
	}
	return DecodeState(raw)
}

// Equal reports whether two states are identical.
func (s *State) Equal(o *State) bool {
	return s.Steps == o.Steps &&
		bytes.Equal(s.Input, o.Input) &&
		bytes.Equal(s.Acc, o.Acc) &&
		bytes.Equal(s.Output, o.Output)
}
