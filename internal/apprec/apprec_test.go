package apprec

import (
	"strings"
	"testing"

	"logicallog/internal/core"
	"logicallog/internal/op"
	"logicallog/internal/wal"
)

func newAppEngine(t *testing.T) *core.Engine {
	t.Helper()
	opts := core.DefaultOptions()
	eng, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	Register(eng.Registry())
	return eng
}

func TestStateEncodeDecodeRoundTrip(t *testing.T) {
	s := &State{Input: []byte("in"), Acc: []byte{1, 2}, Output: []byte("out"), Steps: 42}
	got, err := DecodeState(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Errorf("round trip: %+v != %+v", got, s)
	}
	if _, err := DecodeState([]byte("garbage")); err == nil {
		t.Error("corrupt state decoded")
	}
	empty, err := DecodeState((&State{}).Encode())
	if err != nil || !empty.Equal(&State{}) {
		t.Errorf("empty state: %+v, %v", empty, err)
	}
}

func TestAppLifecycle(t *testing.T) {
	eng := newAppEngine(t)
	if err := eng.Execute(op.NewCreate("file1", []byte("hello world"))); err != nil {
		t.Fatal(err)
	}
	app, err := Launch(eng, "app/a")
	if err != nil {
		t.Fatal(err)
	}
	if app.ID() != "app/a" {
		t.Error("ID wrong")
	}
	if err := app.Read("file1"); err != nil {
		t.Fatal(err)
	}
	st, err := app.State()
	if err != nil {
		t.Fatal(err)
	}
	if string(st.Input) != "hello world" {
		t.Errorf("input buffer = %q", st.Input)
	}
	if err := app.Step([]byte("salt")); err != nil {
		t.Fatal(err)
	}
	st, _ = app.State()
	if st.Steps != 1 || len(st.Output) == 0 || len(st.Input) != 0 {
		t.Errorf("post-step state = %+v", st)
	}
	if err := app.Write("file2"); err != nil {
		t.Fatal(err)
	}
	v, err := eng.Get("file2")
	if err != nil || !op.Equal(v, st.Output) {
		t.Errorf("file2 = %v, %v (want output %v)", v, err, st.Output)
	}
	if err := app.Exit(); err != nil {
		t.Fatal(err)
	}
	if _, err := app.State(); err == nil {
		t.Error("state readable after exit")
	}
}

func TestLogicalWriteLogsNoValues(t *testing.T) {
	eng := newAppEngine(t)
	big := strings.Repeat("x", 64*1024)
	if err := eng.Execute(op.NewCreate("src", []byte(big))); err != nil {
		t.Fatal(err)
	}
	app, err := Launch(eng, "app")
	if err != nil {
		t.Fatal(err)
	}
	eng.ResetStats()
	if err := app.Read("src"); err != nil {
		t.Fatal(err)
	}
	if err := app.Step(nil); err != nil {
		t.Fatal(err)
	}
	if err := app.Write("dst"); err != nil {
		t.Fatal(err)
	}
	st := eng.Log().Stats()
	if st.ValueBytes != 0 {
		t.Errorf("logical application run logged %d value bytes", st.ValueBytes)
	}
	logical := st.OpPayloadBytes[op.KindRead] + st.OpPayloadBytes[op.KindLogicalWrite] + st.OpPayloadBytes[op.KindExecute]
	if logical > 512 {
		t.Errorf("logical payload = %d bytes; must be id-sized, not data-sized", logical)
	}
	// The physical fallback logs the 64 KiB output.
	if err := app.WritePhysical("dst2"); err != nil {
		t.Fatal(err)
	}
	if eng.Log().Stats().ValueBytes < 64*1024 {
		t.Error("physical write fallback failed to log the value")
	}
}

func TestAppSurvivesCrash(t *testing.T) {
	eng := newAppEngine(t)
	if err := eng.Execute(op.NewCreate("in", []byte("payload"))); err != nil {
		t.Fatal(err)
	}
	app, err := Launch(eng, "app")
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Read("in"); err != nil {
		t.Fatal(err)
	}
	if err := app.Step([]byte{7}); err != nil {
		t.Fatal(err)
	}
	if err := app.Write("out"); err != nil {
		t.Fatal(err)
	}
	want, err := app.State()
	if err != nil {
		t.Fatal(err)
	}
	wantOut, err := eng.Get("out")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	if _, err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	app2 := Attach(eng, "app")
	got, err := app2.State()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("recovered state %+v != %+v", got, want)
	}
	gotOut, err := eng.Get("out")
	if err != nil || !op.Equal(gotOut, wantOut) {
		t.Errorf("recovered out = %v, %v", gotOut, err)
	}
}

func TestTerminatedAppNotRedone(t *testing.T) {
	// Section 5: a terminated application should not be re-executed by the
	// rSI REDO test, even if its state was never flushed.
	eng := newAppEngine(t)
	if err := eng.Execute(op.NewCreate("in", []byte("data"))); err != nil {
		t.Fatal(err)
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	app, err := Launch(eng, "app")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := app.Read("in"); err != nil {
			t.Fatal(err)
		}
		if err := app.Step([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Exit(); err != nil {
		t.Fatal(err)
	}
	// Install everything: the app object is dead, its ops installed.
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	res, err := eng.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Redone != 0 {
		t.Errorf("Redone = %d: terminated application re-executed", res.Redone)
	}
}

func TestStepsDeterministic(t *testing.T) {
	// The application machine must be deterministic: two engines driven
	// identically produce identical states.
	run := func() *State {
		eng := newAppEngine(t)
		if err := eng.Execute(op.NewCreate("in", []byte("same input"))); err != nil {
			t.Fatal(err)
		}
		app, err := Launch(eng, "app")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := app.Read("in"); err != nil {
				t.Fatal(err)
			}
			if err := app.Step([]byte{byte(i), 0xAB}); err != nil {
				t.Fatal(err)
			}
		}
		st, err := app.State()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if a, b := run(), run(); !a.Equal(b) {
		t.Errorf("nondeterministic application: %+v vs %+v", a, b)
	}
}

func TestRegisterOnFreshRegistryOnly(t *testing.T) {
	reg := op.NewRegistry()
	Register(reg)
	defer func() {
		if recover() == nil {
			t.Error("double Register must panic")
		}
	}()
	Register(reg)
}

func TestAppWorksWithFileDevice(t *testing.T) {
	dev, err := wal.OpenFileDevice(t.TempDir() + "/app.wal")
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	opts := core.DefaultOptions()
	opts.LogDevice = dev
	eng, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	Register(eng.Registry())
	if err := eng.Execute(op.NewCreate("in", []byte("d"))); err != nil {
		t.Fatal(err)
	}
	app, err := Launch(eng, "app")
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Read("in"); err != nil {
		t.Fatal(err)
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
}
