package apprec

import (
	"testing"

	"logicallog/internal/core"
	"logicallog/internal/workload"
)

// TestDomainMixSweep drives the application-recovery domain through every
// built-in scenario mix with interleaved forces, minimal installs, and
// purges, then a forced crash: recovery must reproduce the driver's model
// byte-for-byte and no staging object may survive.
func TestDomainMixSweep(t *testing.T) {
	for _, mixName := range workload.MixNames() {
		t.Run(mixName, func(t *testing.T) {
			mix, err := workload.ParseMix(mixName)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := core.New(core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			Register(eng.Registry())
			dom := NewDomain(eng, "ap")
			drv, err := workload.NewMixDriver(mix, 0xa7c)
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 160; step++ {
				switch {
				case step%3 == 1:
					err = eng.Log().Force()
				case step%4 == 2:
					err = eng.InstallOne()
				case step%23 == 19:
					err = eng.FlushAll()
				}
				if err == nil {
					err = drv.Step(dom)
				}
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
			if err := eng.Log().Force(); err != nil {
				t.Fatal(err)
			}
			eng.Crash()
			if _, err := eng.Recover(); err != nil {
				t.Fatal(err)
			}
			if err := drv.Verify(dom); err != nil {
				t.Fatalf("recovered state diverges from the mix model: %v", err)
			}
			if err := dom.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDomainServesDuringRedo crashes an application-recovery mix run and
// reopens it with on-demand recovery: application state reads must be
// byte-correct while chains are still draining, and the transient staging
// objects must not resurface.
func TestDomainServesDuringRedo(t *testing.T) {
	mix, err := workload.ParseMix("scan-heavy")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.RedoWorkers = 1
	eng, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	Register(eng.Registry())
	dom := NewDomain(eng, "ap")
	drv, err := workload.NewMixDriver(mix, 0xa7d)
	if err != nil {
		t.Fatal(err)
	}
	if err := drv.Steps(dom, 120); err != nil {
		t.Fatal(err)
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	if _, err := eng.RecoverOnDemand(); err != nil {
		t.Fatal(err)
	}
	if err := drv.Verify(dom); err != nil {
		t.Fatalf("mid-drain state diverges from the mix model: %v", err)
	}
	if err := dom.Check(); err != nil {
		t.Fatal(err)
	}
}
