// Package fault is the deterministic fault-injection layer shared by the
// WAL device and the stable store.
//
// A Plan is a replayable schedule of fault Points, each naming an I/O
// channel (wal or stable), the zero-based index of the I/O on that channel,
// and the fault kind to inject there: hard crash, torn (partial) append,
// bit-flipped sector, reordered/dropped batch frame, or transient EIO.
// The same workload driven twice against equal plans sees byte-identical
// faults, so every failure the crash-schedule explorer finds is replayable
// from a one-line token (see Token/ParseToken).
//
// Non-transient faults are terminal: once one fires the plan is dead and
// every further injected write fails, modeling a machine that stops at the
// fault.  Heal revives a dead plan for the recovery phase of a trial.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"logicallog/internal/obs"
)

// Channel names one injected I/O stream.
type Channel uint8

const (
	// ChanWAL counts wal.Device.Append calls.
	ChanWAL Channel = iota
	// ChanStable counts stable-store batch write probes.
	ChanStable
	// ChanShip counts log-shipping batch sends (see internal/ship).
	ChanShip
	// ChanWALStream counts stream-merge boundaries: the instants at which
	// the group-commit leader has merged the per-core log streams into
	// global LSN order but not yet handed the bytes to the device (see
	// wal.Log.SetMergeProbe).  Faulting here proves merged-order recovery
	// is schedule-equivalent to single-stream operation.
	ChanWALStream

	numChannels
)

func (c Channel) String() string {
	switch c {
	case ChanWAL:
		return "wal"
	case ChanStable:
		return "stable"
	case ChanShip:
		return "ship"
	case ChanWALStream:
		return "stream"
	}
	return fmt.Sprintf("chan%d", uint8(c))
}

func parseChannel(s string) (Channel, error) {
	switch s {
	case "wal":
		return ChanWAL, nil
	case "stable":
		return ChanStable, nil
	case "ship":
		return ChanShip, nil
	case "stream", "walstream":
		return ChanWALStream, nil
	}
	return 0, fmt.Errorf("fault: unknown channel %q", s)
}

// Kind is the fault injected at a Point.
type Kind uint8

const (
	// KindNone marks an I/O with no fault armed; it passes through.
	KindNone Kind = iota
	// KindCrash fails the I/O after writing nothing (power cut before
	// the write reached the device).
	KindCrash
	// KindTorn writes only the first Arg bytes of the append, then
	// crashes.  Arg >= len(append) writes everything and loses only the
	// acknowledgement (the "committed but unacked" case).
	KindTorn
	// KindBitFlip writes the whole append with bit Arg (mod the append's
	// bit length) inverted, then crashes — a misdirected or rotted
	// sector.
	KindBitFlip
	// KindReorder splits the append into its WAL frames, drops frame
	// Arg (mod the frame count), writes the rest, then crashes — an
	// unsynced batch whose sectors were reordered so a middle write
	// never landed.  A single-frame append degenerates to KindCrash.
	KindReorder
	// KindTransient fails the I/O with a retryable EIO and writes
	// nothing; the device is fine afterwards.  Arg > 1 re-arms the fault
	// on the next Arg-1 I/Os too, so Arg consecutive attempts fail.
	KindTransient
	// KindDrop silently loses a ship batch: the send appears to succeed
	// on the wire but the receiver never sees it and no ack comes back.
	// Ship-channel only.
	KindDrop
	// KindDup delivers a ship batch twice, modeling a retransmit racing
	// its original.  Ship-channel only.
	KindDup
)

// ErrInjected is wrapped by every terminal injected failure, so callers can
// distinguish scheduled faults from real bugs with errors.Is.
var ErrInjected = errors.New("injected fault")

// TransientError is the retryable EIO produced by KindTransient points.
type TransientError struct {
	Chan  Channel
	Index int
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("fault: transient EIO at %s@%d", e.Chan, e.Index)
}

// Transient marks the error retryable (see wal.IsTransient).
func (e *TransientError) Transient() bool { return true }

// Point is one armed fault: inject Kind at the Index-th I/O on Chan.
type Point struct {
	Chan  Channel
	Index int
	Kind  Kind
	Arg   int
}

// String renders the point in token syntax, e.g. "wal@17:torn=3".
func (pt Point) String() string {
	var kind string
	switch pt.Kind {
	case KindNone:
		kind = "none"
	case KindCrash:
		kind = "crash"
	case KindTorn:
		kind = "torn=" + strconv.Itoa(pt.Arg)
	case KindBitFlip:
		kind = "flip=" + strconv.Itoa(pt.Arg)
	case KindReorder:
		kind = "reorder=" + strconv.Itoa(pt.Arg)
	case KindTransient:
		if pt.Arg <= 1 {
			kind = "eio"
		} else {
			kind = "eio=" + strconv.Itoa(pt.Arg)
		}
	case KindDrop:
		kind = "drop"
	case KindDup:
		kind = "dup"
	default:
		kind = fmt.Sprintf("kind%d", uint8(pt.Kind))
	}
	return fmt.Sprintf("%s@%d:%s", pt.Chan, pt.Index, kind)
}

// failure builds the terminal error for a fired point.
func (pt Point) failure() error {
	return fmt.Errorf("fault: %s: %w", pt, ErrInjected)
}

type planKey struct {
	ch  Channel
	idx int
}

// Plan is a replayable fault schedule.  It is safe for concurrent use; the
// wrapped device and the stable probe consult it on every I/O.
type Plan struct {
	mu     sync.Mutex
	spec   []Point // the schedule as armed, for Token()
	armed  map[planKey]Point
	counts [numChannels]int
	fired  []Point
	dead   bool
	healed bool
	obs    planObs
}

// planObs holds the plan's per-channel metric handles (nil when no registry
// is attached: every method is then a no-op).
type planObs struct {
	ios      [numChannels]*obs.Counter
	injected [numChannels]*obs.Counter
}

// SetObs attaches a metrics registry: the plan counts every I/O it observes
// ("fault.ios.<chan>") and every fault it injects ("fault.injected.<chan>").
// A nil registry detaches.
func (p *Plan) SetObs(r *obs.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r == nil {
		p.obs = planObs{}
		return
	}
	for ch := Channel(0); ch < numChannels; ch++ {
		p.obs.ios[ch] = r.Counter("fault.ios." + ch.String())
		p.obs.injected[ch] = r.Counter("fault.injected." + ch.String())
	}
}

// NewPlan arms the given points.  Arming two points at the same
// channel+index keeps the last one.
func NewPlan(points ...Point) *Plan {
	p := &Plan{armed: make(map[planKey]Point, len(points))}
	p.spec = append(p.spec, points...)
	for _, pt := range points {
		p.armed[planKey{pt.Chan, pt.Index}] = pt
	}
	return p
}

// advance counts one I/O on ch and returns the point armed there (KindNone
// when the I/O is clean).  The second result reports a dead plan: the I/O
// must fail without being counted, because the machine already stopped.
func (p *Plan) advance(ch Channel) (Point, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return Point{}, true
	}
	if p.healed {
		// The faulty epoch is over: recovery-phase I/O passes through
		// without consuming schedule indices, so Count() keeps reporting
		// the workload's boundary space.
		return Point{Chan: ch, Index: p.counts[ch], Kind: KindNone}, false
	}
	idx := p.counts[ch]
	p.counts[ch]++
	p.obs.ios[ch].Inc()
	key := planKey{ch, idx}
	pt, ok := p.armed[key]
	if !ok {
		return Point{Chan: ch, Index: idx, Kind: KindNone}, false
	}
	delete(p.armed, key)
	p.fired = append(p.fired, pt)
	if pt.Kind != KindNone {
		p.obs.injected[ch].Inc()
	}
	if pt.Kind == KindTransient {
		if pt.Arg > 1 {
			// Fail the next retry too: Arg consecutive attempts.
			p.armed[planKey{ch, idx + 1}] = Point{
				Chan: ch, Index: idx + 1, Kind: KindTransient, Arg: pt.Arg - 1,
			}
		}
	} else if pt.Kind != KindNone && ch != ChanShip {
		// Ship faults are network events, not machine stops: a dropped,
		// duplicated, or reordered batch leaves both nodes running, and
		// even a ship "crash" only severs the link (see ship.Link).
		p.dead = true
	}
	return pt, false
}

// ShipPoint counts one batch send on the ship channel and returns the point
// armed there (KindNone when the send is clean).  Unlike WAL and stable
// faults, ship faults never kill the plan — the network misbehaving does not
// stop either machine.  The boolean reports a plan already dead from a
// terminal WAL or stable fault: the machine hosting the sender stopped, so
// the send must fail without being counted.
func (p *Plan) ShipPoint() (Point, bool) {
	return p.advance(ChanShip)
}

// Heal revives a dead plan so the recovery phase of a trial can run, and
// disarms any points that have not fired (recovery I/O must be clean).
// Counts and fired history are preserved, and counting stops: post-heal I/O
// is outside the schedule's boundary space.
func (p *Plan) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dead = false
	p.healed = true
	for k := range p.armed {
		delete(p.armed, k)
	}
}

// Dead reports whether a terminal fault has fired and the plan has not been
// healed.
func (p *Plan) Dead() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead
}

// Count returns how many I/Os have been counted on ch.
func (p *Plan) Count(ch Channel) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(ch) >= int(numChannels) {
		return 0
	}
	return p.counts[ch]
}

// Fired returns the points that have fired, in firing order.
func (p *Plan) Fired() []Point {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Point(nil), p.fired...)
}

// Unfired returns armed points that have not fired yet.  A schedule whose
// workload completes with unfired points never reached its fault — usually
// a harness bug.
func (p *Plan) Unfired() []Point {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Point, 0, len(p.armed))
	for _, pt := range p.armed {
		out = append(out, pt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Chan != out[j].Chan {
			return out[i].Chan < out[j].Chan
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// Token renders the plan's schedule as a canonical one-line repro token,
// e.g. "wal@17:torn=3+stable@4:eio".  An empty schedule is "none".
// ParseToken(Token()) reconstructs the schedule exactly.
func (p *Plan) Token() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.spec) == 0 {
		return "none"
	}
	pts := append([]Point(nil), p.spec...)
	sort.SliceStable(pts, func(i, j int) bool {
		if pts[i].Chan != pts[j].Chan {
			return pts[i].Chan < pts[j].Chan
		}
		return pts[i].Index < pts[j].Index
	})
	parts := make([]string, len(pts))
	for i, pt := range pts {
		parts[i] = pt.String()
	}
	return strings.Join(parts, "+")
}

// ParseToken parses a repro token produced by Token back into fault points.
func ParseToken(token string) ([]Point, error) {
	token = strings.TrimSpace(token)
	if token == "" || token == "none" {
		return nil, nil
	}
	var pts []Point
	for _, part := range strings.Split(token, "+") {
		pt, err := parsePoint(part)
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

func parsePoint(s string) (Point, error) {
	at := strings.IndexByte(s, '@')
	colon := strings.IndexByte(s, ':')
	if at < 0 || colon < at {
		return Point{}, fmt.Errorf("fault: malformed point %q (want chan@index:kind)", s)
	}
	ch, err := parseChannel(s[:at])
	if err != nil {
		return Point{}, err
	}
	idx, err := strconv.Atoi(s[at+1 : colon])
	if err != nil || idx < 0 {
		return Point{}, fmt.Errorf("fault: malformed index in %q", s)
	}
	kindStr, argStr := s[colon+1:], ""
	if eq := strings.IndexByte(kindStr, '='); eq >= 0 {
		kindStr, argStr = kindStr[:eq], kindStr[eq+1:]
	}
	pt := Point{Chan: ch, Index: idx}
	needArg := false
	switch kindStr {
	case "crash":
		pt.Kind = KindCrash
	case "torn":
		pt.Kind, needArg = KindTorn, true
	case "flip":
		pt.Kind, needArg = KindBitFlip, true
	case "reorder":
		pt.Kind, needArg = KindReorder, true
	case "eio":
		pt.Kind, pt.Arg = KindTransient, 1
	case "drop":
		pt.Kind = KindDrop
	case "dup":
		pt.Kind = KindDup
	default:
		return Point{}, fmt.Errorf("fault: unknown kind %q in %q", kindStr, s)
	}
	if argStr != "" {
		arg, err := strconv.Atoi(argStr)
		if err != nil {
			return Point{}, fmt.Errorf("fault: malformed argument in %q", s)
		}
		pt.Arg = arg
	} else if needArg {
		return Point{}, fmt.Errorf("fault: kind %q in %q requires an argument", kindStr, s)
	}
	return pt, nil
}
