package fault

import (
	"errors"
	"reflect"
	"testing"

	"logicallog/internal/wal"
)

func TestTokenRoundTrip(t *testing.T) {
	cases := [][]Point{
		nil,
		{{Chan: ChanWAL, Index: 17, Kind: KindTorn, Arg: 3}},
		{{Chan: ChanWAL, Index: 0, Kind: KindCrash}},
		{{Chan: ChanStable, Index: 4, Kind: KindTransient, Arg: 1}},
		{{Chan: ChanStable, Index: 4, Kind: KindTransient, Arg: 2}},
		{{Chan: ChanWAL, Index: 9, Kind: KindBitFlip, Arg: 1234}},
		{{Chan: ChanWAL, Index: 2, Kind: KindReorder, Arg: 1}},
		{{Chan: ChanWALStream, Index: 3, Kind: KindCrash}},
		{{Chan: ChanWALStream, Index: 0, Kind: KindTransient, Arg: 1}},
		{
			{Chan: ChanWAL, Index: 5, Kind: KindTransient, Arg: 3},
			{Chan: ChanStable, Index: 0, Kind: KindCrash},
			{Chan: ChanWAL, Index: 12, Kind: KindTorn, Arg: 64},
		},
	}
	for _, pts := range cases {
		tok := NewPlan(pts...).Token()
		back, err := ParseToken(tok)
		if err != nil {
			t.Fatalf("ParseToken(%q): %v", tok, err)
		}
		tok2 := NewPlan(back...).Token()
		if tok != tok2 {
			t.Errorf("round trip: %q -> %q", tok, tok2)
		}
		if len(back) != len(pts) {
			t.Errorf("token %q: %d points back, want %d", tok, len(back), len(pts))
		}
	}
	if tok := NewPlan().Token(); tok != "none" {
		t.Errorf("empty plan token = %q", tok)
	}
	if pts, err := ParseToken("none"); err != nil || len(pts) != 0 {
		t.Errorf("ParseToken(none) = %v, %v", pts, err)
	}
	for _, bad := range []string{"wal", "wal@x:crash", "disk@1:crash", "wal@1:melt", "wal@1:torn", "wal@-1:crash"} {
		if _, err := ParseToken(bad); err == nil {
			t.Errorf("ParseToken(%q) accepted", bad)
		}
	}
}

func TestStreamTokenSyntax(t *testing.T) {
	pt := Point{Chan: ChanWALStream, Index: 2, Kind: KindCrash}
	if got := pt.String(); got != "stream@2:crash" {
		t.Errorf("stream point token = %q, want stream@2:crash", got)
	}
	for _, tok := range []string{"stream@2:crash", "walstream@2:crash"} {
		pts, err := ParseToken(tok)
		if err != nil || len(pts) != 1 || pts[0] != pt {
			t.Errorf("ParseToken(%q) = %v, %v", tok, pts, err)
		}
	}
}

func TestMergeProbeCrashesAtStreamBoundary(t *testing.T) {
	// The walstream channel counts stream-merge boundaries: clean consults
	// pass, the armed one kills the machine with a staged batch unwritten.
	p := NewPlan(Point{Chan: ChanWALStream, Index: 1, Kind: KindCrash})
	probe := p.MergeProbe()
	if err := probe(); err != nil {
		t.Fatalf("merge 0: %v", err)
	}
	if err := probe(); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed merge: %v", err)
	}
	if !p.Dead() {
		t.Fatal("plan must be dead after a stream crash")
	}
	if err := probe(); err == nil {
		t.Fatal("dead plan merge passed")
	}
	if got := p.Count(ChanWALStream); got != 2 {
		t.Errorf("stream Count = %d, want 2", got)
	}
	p.Heal()
	if err := probe(); err != nil {
		t.Errorf("healed merge: %v", err)
	}
}

func TestTransientReArmsForConsecutiveFailures(t *testing.T) {
	p := NewPlan(Point{Chan: ChanStable, Index: 1, Kind: KindTransient, Arg: 3})
	probe := p.StableProbe()
	if err := probe(); err != nil {
		t.Fatalf("I/O 0: %v", err)
	}
	for i := 1; i <= 3; i++ {
		err := probe()
		var te *TransientError
		if !errors.As(err, &te) {
			t.Fatalf("I/O %d: %v, want transient", i, err)
		}
	}
	if err := probe(); err != nil {
		t.Fatalf("I/O 4 after transients drained: %v", err)
	}
	if p.Dead() {
		t.Error("transient faults must not kill the plan")
	}
	if got := p.Count(ChanStable); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
}

func TestTerminalFaultKillsPlanUntilHealed(t *testing.T) {
	p := NewPlan(Point{Chan: ChanStable, Index: 0, Kind: KindCrash})
	probe := p.StableProbe()
	if err := probe(); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed I/O: %v", err)
	}
	if !p.Dead() {
		t.Fatal("plan must be dead after a terminal fault")
	}
	countAtDeath := p.Count(ChanStable)
	if err := probe(); !errors.Is(err, ErrInjected) {
		t.Fatalf("dead plan I/O: %v", err)
	}
	if p.Count(ChanStable) != countAtDeath {
		t.Error("dead-plan I/Os must not advance counts")
	}
	p.Heal()
	if err := probe(); err != nil {
		t.Fatalf("post-heal I/O: %v", err)
	}
	if fired := p.Fired(); len(fired) != 1 || fired[0].Kind != KindCrash {
		t.Errorf("Fired = %v", fired)
	}
}

func TestHealDisarmsUnfiredPoints(t *testing.T) {
	p := NewPlan(
		Point{Chan: ChanStable, Index: 0, Kind: KindCrash},
		Point{Chan: ChanStable, Index: 5, Kind: KindCrash},
	)
	probe := p.StableProbe()
	if err := probe(); !errors.Is(err, ErrInjected) {
		t.Fatal("first point did not fire")
	}
	if un := p.Unfired(); len(un) != 1 || un[0].Index != 5 {
		t.Fatalf("Unfired = %v", un)
	}
	p.Heal()
	if un := p.Unfired(); len(un) != 0 {
		t.Fatalf("Unfired after heal = %v", un)
	}
	for i := 0; i < 10; i++ {
		if err := probe(); err != nil {
			t.Fatalf("healed I/O %d: %v", i, err)
		}
	}
}

func TestDeviceReadsPassThroughWhenDead(t *testing.T) {
	p := NewPlan(Point{Chan: ChanWAL, Index: 1, Kind: KindCrash})
	dev := p.WrapDevice(wal.NewMemDevice())
	if err := dev.Append([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := dev.Append([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("append = %v", err)
	}
	data, err := dev.ReadAll()
	if err != nil || string(data) != "hello" {
		t.Errorf("ReadAll on dead device = %q, %v", data, err)
	}
	if _, err := dev.Size(); err != nil {
		t.Errorf("Size on dead device: %v", err)
	}
	if err := dev.Append([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("append on dead device = %v", err)
	}
	if err := dev.Rewrite(nil); !errors.Is(err, ErrInjected) {
		t.Errorf("rewrite on dead device = %v", err)
	}
}

func TestFromSeedDeterministicAndReplayable(t *testing.T) {
	a := FromSeed(42, 100, 50)
	b := FromSeed(42, 100, 50)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("FromSeed not deterministic: %v vs %v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("FromSeed produced no points")
	}
	tok := NewPlan(a...).Token()
	back, err := ParseToken(tok)
	if err != nil {
		t.Fatalf("seed schedule token %q: %v", tok, err)
	}
	if NewPlan(back...).Token() != tok {
		t.Errorf("seed schedule not token-replayable: %q", tok)
	}
	if FromSeed(7, 0, 0) != nil {
		t.Error("no boundaries must yield no points")
	}
}
