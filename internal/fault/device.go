package fault

import (
	"fmt"
	"math/rand"

	"logicallog/internal/wal"
)

// Device wraps a wal.Device, injecting the plan's ChanWAL points on Append.
// Reads (ReadAll, Size) and Close always pass through so recovery can
// inspect whatever the faulted device holds; Append and Rewrite fail while
// the plan is dead.
type Device struct {
	plan  *Plan
	inner wal.Device
}

// WrapDevice wraps d so its appends consult the plan.
func (p *Plan) WrapDevice(d wal.Device) *Device {
	return &Device{plan: p, inner: d}
}

// Inner returns the wrapped device.
func (d *Device) Inner() wal.Device { return d.inner }

func deadErr() error {
	return fmt.Errorf("fault: device stopped by earlier %w", ErrInjected)
}

// Append injects the fault armed at this WAL I/O index, if any.
func (d *Device) Append(p []byte) error {
	pt, dead := d.plan.advance(ChanWAL)
	if dead {
		return deadErr()
	}
	switch pt.Kind {
	case KindNone:
		return d.inner.Append(p)
	case KindTransient:
		return &TransientError{Chan: ChanWAL, Index: pt.Index}
	case KindCrash:
		return pt.failure()
	case KindTorn:
		n := pt.Arg
		if n < 0 {
			n = 0
		}
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			if err := d.inner.Append(p[:n]); err != nil {
				return err
			}
		}
		return pt.failure()
	case KindBitFlip:
		c := append([]byte(nil), p...)
		if len(c) > 0 {
			bit := pt.Arg % (len(c) * 8)
			if bit < 0 {
				bit += len(c) * 8
			}
			c[bit/8] ^= 1 << (bit % 8)
		}
		if err := d.inner.Append(c); err != nil {
			return err
		}
		return pt.failure()
	case KindReorder:
		frames := splitFrames(p)
		if len(frames) <= 1 {
			// Nothing to reorder inside a single frame; plain crash.
			return pt.failure()
		}
		drop := pt.Arg % len(frames)
		if drop < 0 {
			drop += len(frames)
		}
		for i, f := range frames {
			if i == drop {
				continue
			}
			if err := d.inner.Append(f); err != nil {
				return err
			}
		}
		return pt.failure()
	}
	return fmt.Errorf("fault: point %s has unknown kind", pt)
}

// splitFrames cuts an append into its WAL frames; an undecodable remainder
// becomes the final chunk.
func splitFrames(p []byte) [][]byte {
	var out [][]byte
	rest := p
	for len(rest) > 0 {
		if _, n, err := wal.Unframe(rest); err == nil {
			out = append(out, rest[:n])
			rest = rest[n:]
			continue
		}
		out = append(out, rest)
		break
	}
	return out
}

// ReadAll passes through: crashed devices can still be read at recovery.
func (d *Device) ReadAll() ([]byte, error) { return d.inner.ReadAll() }

// Size passes through.
func (d *Device) Size() (int64, error) { return d.inner.Size() }

// Rewrite passes through unless the plan is dead.  Rewrites happen at
// checkpoint truncation and recovery trim, which the explorer never faults
// directly — crash coverage there comes from the append boundaries around
// them.
func (d *Device) Rewrite(p []byte) error {
	if d.plan.Dead() {
		return deadErr()
	}
	return d.inner.Rewrite(p)
}

// Close passes through.
func (d *Device) Close() error { return d.inner.Close() }

// StableProbe returns the stable-store write probe for this plan (see
// stable.Store.SetWriteProbe).  Each consult counts one ChanStable I/O.
func (p *Plan) StableProbe() func() error {
	return func() error {
		pt, dead := p.advance(ChanStable)
		if dead {
			return deadErr()
		}
		switch pt.Kind {
		case KindNone:
			return nil
		case KindTransient:
			return &TransientError{Chan: ChanStable, Index: pt.Index}
		default:
			// Torn/flip/reorder make no sense for a yes/no probe; any
			// non-transient kind is a hard stop at this write.
			return pt.failure()
		}
	}
}

// MergeProbe returns the stream-merge probe for this plan (see
// wal.Log.SetMergeProbe).  The log consults it after the group-commit leader
// merges the per-core streams into LSN order and before the merged bytes
// reach the device; each consult counts one ChanWALStream I/O.  A fault here
// models a machine dying with a fully staged but unwritten commit batch.
func (p *Plan) MergeProbe() func() error {
	return func() error {
		pt, dead := p.advance(ChanWALStream)
		if dead {
			return deadErr()
		}
		switch pt.Kind {
		case KindNone:
			return nil
		case KindTransient:
			return &TransientError{Chan: ChanWALStream, Index: pt.Index}
		default:
			// The merge boundary is pre-device: there are no bytes to tear
			// or flip yet, so any non-transient kind is a hard stop.
			return pt.failure()
		}
	}
}

// FromSeed derives a small random schedule over a workload known to perform
// walIOs WAL appends and stableIOs stable writes: up to two transient
// points plus one terminal point, all replayable via Token.
func FromSeed(seed int64, walIOs, stableIOs int) []Point {
	rng := rand.New(rand.NewSource(seed))
	used := map[planKey]bool{}
	pick := func() (Channel, int) {
		var ch Channel
		var idx int
		// Prefer an unused index; a collision after bounded tries just
		// overwrites an earlier point (NewPlan keeps the last).
		for try := 0; try < 16; try++ {
			ch = ChanWAL
			n := walIOs
			if stableIOs > 0 && (walIOs <= 0 || rng.Intn(2) == 1) {
				ch, n = ChanStable, stableIOs
			}
			idx = rng.Intn(n)
			if !used[planKey{ch, idx}] {
				break
			}
		}
		used[planKey{ch, idx}] = true
		return ch, idx
	}
	if walIOs <= 0 && stableIOs <= 0 {
		return nil
	}
	var pts []Point
	for i := rng.Intn(3); i > 0; i-- {
		ch, idx := pick()
		pts = append(pts, Point{Chan: ch, Index: idx, Kind: KindTransient, Arg: 1 + rng.Intn(2)})
	}
	ch, idx := pick()
	term := Point{Chan: ch, Index: idx}
	if ch == ChanWAL {
		switch rng.Intn(4) {
		case 0:
			term.Kind = KindCrash
		case 1:
			term.Kind, term.Arg = KindTorn, 1+rng.Intn(64)
		case 2:
			term.Kind, term.Arg = KindBitFlip, rng.Intn(1<<12)
		default:
			term.Kind, term.Arg = KindReorder, rng.Intn(4)
		}
	} else {
		term.Kind = KindCrash
	}
	return append(pts, term)
}
