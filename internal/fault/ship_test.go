package fault

import (
	"testing"

	"logicallog/internal/wal"
)

func TestShipTokenRoundTrip(t *testing.T) {
	cases := [][]Point{
		{{Chan: ChanShip, Index: 0, Kind: KindDrop}},
		{{Chan: ChanShip, Index: 3, Kind: KindDup}},
		{{Chan: ChanShip, Index: 2, Kind: KindReorder, Arg: 0}},
		{{Chan: ChanShip, Index: 1, Kind: KindTransient, Arg: 1}},
		{{Chan: ChanShip, Index: 5, Kind: KindCrash}},
		{
			{Chan: ChanShip, Index: 0, Kind: KindDrop},
			{Chan: ChanWAL, Index: 4, Kind: KindTorn, Arg: 2},
			{Chan: ChanShip, Index: 7, Kind: KindDup},
		},
	}
	for _, pts := range cases {
		tok := NewPlan(pts...).Token()
		back, err := ParseToken(tok)
		if err != nil {
			t.Fatalf("ParseToken(%q): %v", tok, err)
		}
		if tok2 := NewPlan(back...).Token(); tok != tok2 {
			t.Errorf("round trip: %q -> %q", tok, tok2)
		}
	}
	for _, tok := range []string{"ship@0:drop", "ship@1:dup", "ship@2:crash", "ship@3:reorder=0", "ship@4:eio"} {
		if _, err := ParseToken(tok); err != nil {
			t.Errorf("ParseToken(%q): %v", tok, err)
		}
	}
	if _, err := ParseToken("ship@0:melt"); err == nil {
		t.Error("unknown ship kind accepted")
	}
}

// TestShipFaultsAreNotTerminal: ship faults are network events, not machine
// crashes — they must fire without killing the plan, so the WAL and stable
// channels keep operating normally afterward.
func TestShipFaultsAreNotTerminal(t *testing.T) {
	for _, kind := range []Kind{KindDrop, KindDup, KindReorder, KindTransient, KindCrash} {
		p := NewPlan(Point{Chan: ChanShip, Index: 0, Kind: kind, Arg: 1})
		pt, dead := p.ShipPoint()
		if dead {
			t.Fatalf("kind %v: plan dead before any terminal fault", kind)
		}
		if pt.Kind != kind {
			t.Fatalf("kind %v: ShipPoint returned %v", kind, pt.Kind)
		}
		if p.Dead() {
			t.Errorf("kind %v: ship fault killed the plan", kind)
		}
		if got := len(p.Fired()); got != 1 {
			t.Errorf("kind %v: %d fired points, want 1", kind, got)
		}
	}
}

// TestShipPointReportsDeadPlan: once a terminal WAL fault stops the machine,
// sends from it must be refused — ShipPoint reports the plan dead.
func TestShipPointReportsDeadPlan(t *testing.T) {
	p := NewPlan(Point{Chan: ChanWAL, Index: 0, Kind: KindCrash})
	d := p.WrapDevice(wal.NewMemDevice())
	if err := d.Append([]byte("frame")); err == nil {
		t.Fatal("crash point should fail the append")
	}
	if !p.Dead() {
		t.Fatal("plan should be dead after a terminal WAL fault")
	}
	if _, dead := p.ShipPoint(); !dead {
		t.Error("ShipPoint should report the dead plan")
	}
	p.Heal()
	if _, dead := p.ShipPoint(); dead {
		t.Error("ShipPoint should be clean after Heal")
	}
}

// TestShipChannelCounts: indices on the ship channel are independent of the
// other channels' I/O counters.
func TestShipChannelCounts(t *testing.T) {
	p := NewPlan(Point{Chan: ChanShip, Index: 1, Kind: KindDrop})
	if pt, _ := p.ShipPoint(); pt.Kind != KindNone {
		t.Fatal("send 0 should be clean")
	}
	if pt, _ := p.ShipPoint(); pt.Kind != KindDrop {
		t.Fatal("send 1 should drop")
	}
	if got := p.Count(ChanShip); got != 2 {
		t.Errorf("ship channel count = %d, want 2", got)
	}
	if got := p.Count(ChanWAL); got != 0 {
		t.Errorf("wal channel count = %d, want 0", got)
	}
	if ChanShip.String() != "ship" {
		t.Errorf("ChanShip.String() = %q", ChanShip.String())
	}
}
