package btree

import (
	"fmt"
	"math/rand"
	"testing"

	"logicallog/internal/core"
	"logicallog/internal/op"
)

func newTree(t *testing.T, order int) (*Tree, *core.Engine) {
	t.Helper()
	eng, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	Register(eng.Registry())
	tree, err := New(eng, "t", order)
	if err != nil {
		t.Fatal(err)
	}
	return tree, eng
}

func key(i int) []byte { return []byte(fmt.Sprintf("key%06d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("val%06d", i)) }

func TestPageEncodeDecodeRoundTrip(t *testing.T) {
	leaf := &page{kind: leafPage, keys: [][]byte{[]byte("a"), []byte("b")}, vals: [][]byte{[]byte("1"), []byte("2")}}
	got, err := decodePage(encodePage(leaf))
	if err != nil {
		t.Fatal(err)
	}
	if got.kind != leafPage || len(got.keys) != 2 || string(got.vals[1]) != "2" {
		t.Errorf("leaf round trip: %+v", got)
	}
	internal := &page{kind: internalPage, keys: [][]byte{[]byte("m")}, children: []op.ObjectID{"p1", "p2"}}
	got, err = decodePage(encodePage(internal))
	if err != nil {
		t.Fatal(err)
	}
	if got.kind != internalPage || len(got.children) != 2 || got.children[1] != "p2" {
		t.Errorf("internal round trip: %+v", got)
	}
	if _, err := decodePage([]byte("junk")); err == nil {
		t.Error("junk page decoded")
	}
	if _, err := decodePage(op.EncodeParams([]byte{9})); err == nil {
		t.Error("unknown page kind decoded")
	}
}

func TestNewRejectsTinyOrder(t *testing.T) {
	eng, _ := core.New(core.DefaultOptions())
	Register(eng.Registry())
	if _, err := New(eng, "x", 1); err == nil {
		t.Error("order 1 accepted")
	}
}

func TestInsertGetSmall(t *testing.T) {
	tree, _ := newTree(t, 4)
	if err := tree.Insert([]byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, found, err := tree.Get([]byte("a"))
	if err != nil || !found || string(v) != "1" {
		t.Errorf("Get(a) = %q, %v, %v", v, found, err)
	}
	if _, found, _ := tree.Get([]byte("zz")); found {
		t.Error("found a missing key")
	}
	// Replacement.
	if err := tree.Insert([]byte("a"), []byte("1'")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = tree.Get([]byte("a"))
	if string(v) != "1'" {
		t.Errorf("replaced value = %q", v)
	}
	if err := tree.Insert(nil, []byte("v")); err == nil {
		t.Error("empty key accepted")
	}
}

func TestInsertManySplitsAndCheck(t *testing.T) {
	tree, _ := newTree(t, 4)
	const n = 500
	perm := rand.New(rand.NewSource(5)).Perm(n)
	for _, i := range perm {
		if err := tree.Insert(key(i), val(i)); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	if err := tree.Check(); err != nil {
		t.Fatal(err)
	}
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys != n {
		t.Errorf("Keys = %d, want %d", st.Keys, n)
	}
	if st.Height < 3 {
		t.Errorf("Height = %d; 500 keys at order 4 must be deep", st.Height)
	}
	for i := 0; i < n; i++ {
		v, found, err := tree.Get(key(i))
		if err != nil || !found || string(v) != string(val(i)) {
			t.Fatalf("Get(%d) = %q, %v, %v", i, v, found, err)
		}
	}
	// Scan yields all keys in order.
	var seen int
	var prev []byte
	err = tree.Scan(func(k, v []byte) bool {
		if prev != nil && string(k) <= string(prev) {
			t.Errorf("scan out of order: %q after %q", k, prev)
		}
		prev = append(prev[:0], k...)
		seen++
		return true
	})
	if err != nil || seen != n {
		t.Errorf("Scan visited %d, %v", seen, err)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tree, _ := newTree(t, 4)
	for i := 0; i < 50; i++ {
		tree.Insert(key(i), val(i))
	}
	count := 0
	tree.Scan(func(k, v []byte) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestDelete(t *testing.T) {
	tree, _ := newTree(t, 4)
	for i := 0; i < 100; i++ {
		tree.Insert(key(i), val(i))
	}
	found, err := tree.Delete(key(42))
	if err != nil || !found {
		t.Fatalf("Delete = %v, %v", found, err)
	}
	if _, found, _ := tree.Get(key(42)); found {
		t.Error("deleted key still present")
	}
	if found, _ := tree.Delete(key(42)); found {
		t.Error("double delete reported found")
	}
	if err := tree.Check(); err != nil {
		t.Fatal(err)
	}
	st, _ := tree.Stats()
	if st.Keys != 99 {
		t.Errorf("Keys = %d", st.Keys)
	}
}

func TestLogicalSplitLogsNoPageContents(t *testing.T) {
	tree, eng := newTree(t, 8)
	// Fill with large values so page contents dwarf ids.
	bigVal := make([]byte, 2048)
	for i := 0; i < 8; i++ {
		if err := tree.Insert(key(i), bigVal); err != nil {
			t.Fatal(err)
		}
	}
	eng.ResetStats()
	// This insert forces a root split (order 8 reached).
	if err := tree.Insert(key(8), bigVal); err != nil {
		t.Fatal(err)
	}
	st := eng.Log().Stats()
	// The split logged ids only; values logged are the meta rewrites (tiny)
	// plus the inserted record itself (2 KiB), never the ~16 KiB of moved
	// page contents.
	if st.ValueBytes > 4096 {
		t.Errorf("split+insert logged %d value bytes; logical split must not log page contents", st.ValueBytes)
	}
	if st.OpPayloadBytes[op.KindLogical] > 512 {
		t.Errorf("logical split payload = %d bytes", st.OpPayloadBytes[op.KindLogical])
	}
	if err := tree.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPhysiologicalBaselineLogsPageContents(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Physiological = true
	eng, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	Register(eng.Registry())
	tree, err := New(eng, "t", 8)
	if err != nil {
		t.Fatal(err)
	}
	bigVal := make([]byte, 2048)
	for i := 0; i < 8; i++ {
		if err := tree.Insert(key(i), bigVal); err != nil {
			t.Fatal(err)
		}
	}
	eng.ResetStats()
	if err := tree.Insert(key(8), bigVal); err != nil {
		t.Fatal(err)
	}
	// The lowered split logs all written pages' contents.
	if got := eng.Log().Stats().ValueBytes; got < 8*1024 {
		t.Errorf("physiological split logged only %d value bytes", got)
	}
	if err := tree.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeSurvivesCrash(t *testing.T) {
	tree, eng := newTree(t, 4)
	const n = 200
	for i := 0; i < n; i++ {
		if err := tree.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
		if i%17 == 0 {
			if err := eng.InstallOne(); err != nil {
				t.Fatal(err)
			}
		}
		if i%29 == 0 {
			if err := eng.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	if _, err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	tree2, err := Open(eng, "t")
	if err != nil {
		t.Fatal(err)
	}
	if err := tree2.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, found, err := tree2.Get(key(i))
		if err != nil || !found || string(v) != string(val(i)) {
			t.Fatalf("recovered Get(%d) = %q, %v, %v", i, v, found, err)
		}
	}
}

func TestTreeCrashAtEveryBatch(t *testing.T) {
	// Crash after each batch of inserts; recovery must always yield a
	// structurally valid tree containing exactly the durable inserts.
	for batches := 1; batches <= 8; batches++ {
		tree, eng := newTree(t, 3)
		inserted := 0
		for b := 0; b < batches; b++ {
			for i := 0; i < 10; i++ {
				if err := tree.Insert(key(inserted), val(inserted)); err != nil {
					t.Fatal(err)
				}
				inserted++
			}
			if b%2 == 0 {
				if err := eng.InstallOne(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := eng.Log().Force(); err != nil {
			t.Fatal(err)
		}
		eng.Crash()
		if _, err := eng.Recover(); err != nil {
			t.Fatalf("batches=%d: %v", batches, err)
		}
		tree2, err := Open(eng, "t")
		if err != nil {
			t.Fatal(err)
		}
		if err := tree2.Check(); err != nil {
			t.Fatalf("batches=%d: %v", batches, err)
		}
		for i := 0; i < inserted; i++ {
			if _, found, _ := tree2.Get(key(i)); !found {
				t.Fatalf("batches=%d: key %d lost", batches, i)
			}
		}
	}
}

func TestOpenMissingTree(t *testing.T) {
	eng, _ := core.New(core.DefaultOptions())
	Register(eng.Registry())
	if _, err := Open(eng, "ghost"); err == nil {
		t.Error("Open of missing tree succeeded")
	}
}
