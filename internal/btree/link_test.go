package btree

import (
	"math/rand"
	"testing"

	"logicallog/internal/op"
)

func TestLeafPageNextRoundTrip(t *testing.T) {
	leaf := &page{
		kind: leafPage,
		next: "bt/t/p00000007",
		keys: [][]byte{[]byte("a")},
		vals: [][]byte{[]byte("1")},
	}
	got, err := decodePage(encodePage(leaf))
	if err != nil {
		t.Fatal(err)
	}
	if got.next != leaf.next {
		t.Errorf("next = %q, want %q", got.next, leaf.next)
	}
	// Empty next (chain end) survives too.
	leaf.next = ""
	got, err = decodePage(encodePage(leaf))
	if err != nil {
		t.Fatal(err)
	}
	if got.next != "" {
		t.Errorf("chain-end next = %q", got.next)
	}
}

// TestRangeAcrossLeafSplit is the leaf-link regression test: a range scan
// spanning a freshly split leaf must see every key exactly once, in order —
// the split transformation has to thread the new right leaf into the chain.
func TestRangeAcrossLeafSplit(t *testing.T) {
	tree, _ := newTree(t, 4)
	// Fill one leaf to capacity, then overflow it: the next insert splits
	// the root leaf, and later inserts split children.
	for i := 0; i < 32; i++ {
		if err := tree.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
		// After every insert the chain must cover all keys so far.
		var got []string
		if err := tree.Range(nil, nil, func(k, v []byte) bool {
			got = append(got, string(k))
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != i+1 {
			t.Fatalf("after insert %d: range saw %d keys, want %d (%v)", i, len(got), i+1, got)
		}
		for j := 1; j < len(got); j++ {
			if got[j-1] >= got[j] {
				t.Fatalf("after insert %d: range out of order: %q >= %q", i, got[j-1], got[j])
			}
		}
	}
	if err := tree.Check(); err != nil {
		t.Fatal(err)
	}
	// A bounded range crossing several leaf boundaries.
	var got []string
	if err := tree.Range(key(5), key(20), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 15 || got[0] != string(key(5)) || got[len(got)-1] != string(key(19)) {
		t.Errorf("Range(5,20) = %v", got)
	}
}

func TestRangeBounds(t *testing.T) {
	tree, _ := newTree(t, 4)
	for i := 0; i < 40; i++ {
		if err := tree.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	// hi is exclusive.
	if err := tree.Range(key(10), key(10), func(k, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("empty range visited %d", count)
	}
	// lo between keys seeks forward; early stop works mid-chain.
	var got []string
	if err := tree.Range([]byte("key000010x"), nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return len(got) < 3
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != string(key(11)) {
		t.Errorf("seek range = %v", got)
	}
}

// TestDeleteMergesAndRebalances drains a populated tree and checks the
// structural invariants (including the leaf chain) after every delete; the
// tree must shrink back down via merges and root collapses.
func TestDeleteMergesAndRebalances(t *testing.T) {
	tree, _ := newTree(t, 4)
	const n = 200
	for i := 0; i < n; i++ {
		if err := tree.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	grown, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if grown.Height < 3 {
		t.Fatalf("tree too shallow to exercise merges: height %d", grown.Height)
	}
	perm := rand.New(rand.NewSource(7)).Perm(n)
	alive := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		alive[i] = true
	}
	for step, i := range perm {
		found, err := tree.Delete(key(i))
		if err != nil || !found {
			t.Fatalf("Delete(%d) = %v, %v", i, found, err)
		}
		delete(alive, i)
		if err := tree.Check(); err != nil {
			t.Fatalf("after delete %d (#%d): %v", i, step, err)
		}
	}
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys != 0 {
		t.Errorf("drained tree has %d keys", st.Keys)
	}
	if st.Height != 1 {
		t.Errorf("drained tree height = %d, want 1 (root collapses)", st.Height)
	}
	if st.Pages != 1 {
		t.Errorf("drained tree has %d pages, want 1 (merges free pages)", st.Pages)
	}
}

// TestDeleteKeepsSurvivors interleaves deletes with membership checks so
// merges and borrows are verified not to drop or duplicate surviving keys.
func TestDeleteKeepsSurvivors(t *testing.T) {
	tree, _ := newTree(t, 3)
	const n = 120
	for i := 0; i < n; i++ {
		if err := tree.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(11))
	alive := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		alive[string(key(i))] = true
	}
	for _, i := range rng.Perm(n)[:n*3/4] {
		if _, err := tree.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
		delete(alive, string(key(i)))
	}
	if err := tree.Check(); err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	if err := tree.Scan(func(k, v []byte) bool {
		if seen[string(k)] {
			t.Errorf("duplicate key %q in scan", k)
		}
		seen[string(k)] = true
		if !alive[string(k)] {
			t.Errorf("deleted key %q still visible", k)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(alive) {
		t.Errorf("scan saw %d keys, want %d", len(seen), len(alive))
	}
}

// TestLogicalMergeLogsNoPageContents mirrors the split test: merging two
// big leaves must log only page ids, never the moved contents.
func TestLogicalMergeLogsNoPageContents(t *testing.T) {
	tree, eng := newTree(t, 4)
	bigVal := make([]byte, 2048)
	const n = 12
	for i := 0; i < n; i++ {
		if err := tree.Insert(key(i), bigVal); err != nil {
			t.Fatal(err)
		}
	}
	eng.ResetStats()
	for i := 0; i < n; i++ {
		if _, err := tree.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Log().Stats()
	// Deletes log only keys; merges/rebalances/collapses log only ids.  The
	// ~24 KiB of leaf contents shuffled between pages must stay off the log.
	if st.ValueBytes > 2048 {
		t.Errorf("drain logged %d value bytes; logical merges must not log page contents", st.ValueBytes)
	}
	if st.OpPayloadBytes[op.KindLogical] > 2048 {
		t.Errorf("merge/rebalance payload = %d bytes", st.OpPayloadBytes[op.KindLogical])
	}
	if err := tree.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestTreeDeleteCrashRecovery drives inserts and merging deletes with
// periodic installs, crashes, and verifies the recovered tree — structure,
// leaf chain, and exact membership.
func TestTreeDeleteCrashRecovery(t *testing.T) {
	tree, eng := newTree(t, 3)
	const n = 90
	for i := 0; i < n; i++ {
		if err := tree.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	alive := make(map[string]string, n)
	for i := 0; i < n; i++ {
		alive[string(key(i))] = string(val(i))
	}
	rng := rand.New(rand.NewSource(3))
	for step, i := range rng.Perm(n)[:n/2] {
		if _, err := tree.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
		delete(alive, string(key(i)))
		if step%7 == 0 {
			if err := eng.InstallOne(); err != nil {
				t.Fatal(err)
			}
		}
		if step%13 == 0 {
			if err := eng.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
	if _, err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	tree2, err := Open(eng, "t")
	if err != nil {
		t.Fatal(err)
	}
	if err := tree2.Check(); err != nil {
		t.Fatal(err)
	}
	seen := 0
	if err := tree2.Scan(func(k, v []byte) bool {
		want, ok := alive[string(k)]
		if !ok {
			t.Errorf("recovered tree resurrected %q", k)
		} else if want != string(v) {
			t.Errorf("recovered %q = %q, want %q", k, v, want)
		}
		seen++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen != len(alive) {
		t.Errorf("recovered scan saw %d keys, want %d", seen, len(alive))
	}
}

// TestPutAlias keeps the Domain-interface spelling wired to Insert.
func TestPutAlias(t *testing.T) {
	tree, _ := newTree(t, 4)
	if err := tree.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, found, err := tree.Get([]byte("k"))
	if err != nil || !found || string(v) != "v" {
		t.Errorf("Put/Get = %q, %v, %v", v, found, err)
	}
}
