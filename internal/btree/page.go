// Package btree implements the database-recovery domain of the paper
// (Section 1): a B+tree whose pages are recoverable objects and whose page
// splits, merges, and rebalances are logged as *logical* operations — the
// structure-modification log record names the pages involved and the
// transformation, never the contents of the new or merged page.
// "A logical split operation avoids the need to log the contents of the new
// B-tree node, which is required when using the simpler physiological
// operation."
//
// Structure modifications are single multi-object logical operations (a
// split reads {parent, child} and writes {parent, child, new child}; a merge
// reads {parent, left, right} and writes {parent, left}), so a crash can
// never leave a half-split or half-merged tree: the recovery framework
// replays or skips the whole modification as one unit.  Inserts and deletes
// within a leaf are physiological single-page operations, exactly as in
// production systems.
//
// Leaves carry a next-leaf pointer, making the tree a leaf-linked B+tree:
// Scan and Range walk the leaf chain instead of recursing through internal
// pages.  The split transformations thread the chain (new right leaf inherits
// the old next pointer) and the merge transformation unlinks the absorbed
// leaf, so the chain invariant — leaves linked left to right, last leaf with
// an empty next — holds across any prefix of replayed operations.
//
// The same tree code runs unchanged on an engine configured with
// core.Options.Physiological, which lowers the logical operations to
// physical page writes — the E9 comparison baseline.
package btree

import (
	"bytes"
	"fmt"

	"logicallog/internal/op"
)

// pageKind discriminates page encodings.
type pageKind byte

const (
	leafPage     pageKind = 1
	internalPage pageKind = 2
)

// page is the decoded form of a B+tree page.
//
// Leaf:     keys[i] -> vals[i], next = right sibling leaf ("" at the end).
// Internal: children[0] <= keys[0] < children[1] <= keys[1] < ... — child i
// holds keys < keys[i] (and child n holds keys >= keys[n-1]).
type page struct {
	kind     pageKind
	next     op.ObjectID // leaf only: right sibling in the leaf chain
	keys     [][]byte
	vals     [][]byte      // leaf only, len == len(keys)
	children []op.ObjectID // internal only, len == len(keys)+1
}

// encodePage serializes a page into an object value.
func encodePage(p *page) []byte {
	fields := make([][]byte, 0, 2+2*len(p.keys))
	fields = append(fields, []byte{byte(p.kind)})
	switch p.kind {
	case leafPage:
		fields = append(fields, []byte(p.next))
		for i, k := range p.keys {
			fields = append(fields, k, p.vals[i])
		}
	case internalPage:
		fields = append(fields, []byte(p.children[0]))
		for i, k := range p.keys {
			fields = append(fields, k, []byte(p.children[i+1]))
		}
	}
	return op.EncodeParams(fields...)
}

// decodePage parses an object value into a page.
func decodePage(v []byte) (*page, error) {
	fields, err := op.DecodeParams(v)
	if err != nil {
		return nil, fmt.Errorf("btree: corrupt page: %w", err)
	}
	if len(fields) == 0 || len(fields[0]) != 1 {
		return nil, fmt.Errorf("btree: missing page kind")
	}
	p := &page{kind: pageKind(fields[0][0])}
	rest := fields[1:]
	switch p.kind {
	case leafPage:
		if len(rest)%2 != 1 {
			return nil, fmt.Errorf("btree: leaf with bad field count %d", len(rest))
		}
		p.next = op.ObjectID(rest[0])
		for i := 1; i < len(rest); i += 2 {
			p.keys = append(p.keys, rest[i])
			p.vals = append(p.vals, rest[i+1])
		}
	case internalPage:
		if len(rest) == 0 || len(rest)%2 != 1 {
			return nil, fmt.Errorf("btree: internal with bad field count %d", len(rest))
		}
		p.children = append(p.children, op.ObjectID(rest[0]))
		for i := 1; i < len(rest); i += 2 {
			p.keys = append(p.keys, rest[i])
			p.children = append(p.children, op.ObjectID(rest[i+1]))
		}
	default:
		return nil, fmt.Errorf("btree: unknown page kind %d", p.kind)
	}
	return p, nil
}

// findKey returns the index of key in keys and whether it is present; if
// absent, the index is the insertion point.
func findKey(keys [][]byte, key []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(keys[mid], key) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true
		default:
			hi = mid
		}
	}
	return lo, false
}

// childIndex returns the child slot to descend into for key.
func (p *page) childIndex(key []byte) int {
	i, found := findKey(p.keys, key)
	if found {
		return i + 1 // keys[i] <= key goes right
	}
	return i
}

// insertLeaf inserts (or replaces) key -> val in a leaf, in place.
func (p *page) insertLeaf(key, val []byte) {
	i, found := findKey(p.keys, key)
	if found {
		p.vals[i] = val
		return
	}
	p.keys = append(p.keys, nil)
	copy(p.keys[i+1:], p.keys[i:])
	p.keys[i] = key
	p.vals = append(p.vals, nil)
	copy(p.vals[i+1:], p.vals[i:])
	p.vals[i] = val
}

// deleteLeaf removes key from a leaf; reports whether it was present.
func (p *page) deleteLeaf(key []byte) bool {
	i, found := findKey(p.keys, key)
	if !found {
		return false
	}
	p.keys = append(p.keys[:i], p.keys[i+1:]...)
	p.vals = append(p.vals[:i], p.vals[i+1:]...)
	return true
}

// splitRight removes the upper half of the page into a new page and returns
// (new page, separator key).  For leaves the separator is the first key of
// the right page (and stays in it); for internal pages the separator moves
// up and out of both halves.  The caller threads the leaf chain (the new
// page's identity is not known here).
func (p *page) splitRight() (*page, []byte) {
	mid := len(p.keys) / 2
	right := &page{kind: p.kind}
	var sep []byte
	switch p.kind {
	case leafPage:
		sep = p.keys[mid]
		right.keys = append(right.keys, p.keys[mid:]...)
		right.vals = append(right.vals, p.vals[mid:]...)
		p.keys = p.keys[:mid]
		p.vals = p.vals[:mid]
	case internalPage:
		sep = p.keys[mid]
		right.keys = append(right.keys, p.keys[mid+1:]...)
		right.children = append(right.children, p.children[mid+1:]...)
		p.keys = p.keys[:mid]
		p.children = p.children[:mid+1]
	}
	return right, sep
}

// insertChild inserts (sep, child) into an internal page after the slot
// currently holding oldChild.
func (p *page) insertChild(sep []byte, oldChild, newChild op.ObjectID) error {
	slot := -1
	for i, c := range p.children {
		if c == oldChild {
			slot = i
			break
		}
	}
	if slot < 0 {
		return fmt.Errorf("btree: child %q not found in parent", oldChild)
	}
	p.keys = append(p.keys, nil)
	copy(p.keys[slot+1:], p.keys[slot:])
	p.keys[slot] = sep
	p.children = append(p.children, "")
	copy(p.children[slot+2:], p.children[slot+1:])
	p.children[slot+1] = newChild
	return nil
}

// childSlot returns the index of child in p.children, or -1.
func (p *page) childSlot(child op.ObjectID) int {
	for i, c := range p.children {
		if c == child {
			return i
		}
	}
	return -1
}

// mergeRight absorbs right (the sibling at slot+1) into left (at slot),
// pulling the separator down for internal pages and threading the leaf
// chain for leaves, then drops the separator and the right child from p.
func (p *page) mergeRight(slot int, left, right *page) {
	sep := p.keys[slot]
	switch left.kind {
	case leafPage:
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	case internalPage:
		left.keys = append(left.keys, sep)
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	p.keys = append(p.keys[:slot], p.keys[slot+1:]...)
	p.children = append(p.children[:slot+1], p.children[slot+2:]...)
}

// borrowFromLeft moves the rightmost entry of left into right (siblings at
// slot and slot+1 of p), updating the separator p.keys[slot].
func (p *page) borrowFromLeft(slot int, left, right *page) {
	last := len(left.keys) - 1
	switch left.kind {
	case leafPage:
		k, v := left.keys[last], left.vals[last]
		right.keys = append([][]byte{k}, right.keys...)
		right.vals = append([][]byte{v}, right.vals...)
		left.keys = left.keys[:last]
		left.vals = left.vals[:last]
		p.keys[slot] = k
	case internalPage:
		right.keys = append([][]byte{p.keys[slot]}, right.keys...)
		right.children = append([]op.ObjectID{left.children[last+1]}, right.children...)
		p.keys[slot] = left.keys[last]
		left.keys = left.keys[:last]
		left.children = left.children[:last+1]
	}
}

// borrowFromRight moves the leftmost entry of right into left (siblings at
// slot and slot+1 of p), updating the separator p.keys[slot].
func (p *page) borrowFromRight(slot int, left, right *page) {
	switch left.kind {
	case leafPage:
		left.keys = append(left.keys, right.keys[0])
		left.vals = append(left.vals, right.vals[0])
		right.keys = right.keys[1:]
		right.vals = right.vals[1:]
		p.keys[slot] = right.keys[0]
	case internalPage:
		left.keys = append(left.keys, p.keys[slot])
		left.children = append(left.children, right.children[0])
		p.keys[slot] = right.keys[0]
		right.keys = right.keys[1:]
		right.children = right.children[1:]
	}
}
