package btree

import (
	"encoding/binary"
	"fmt"

	"logicallog/internal/core"
	"logicallog/internal/op"
)

// Function ids registered by Register.
const (
	// FuncInsertLeaf is the physiological leaf insert: page <- page+{k,v}.
	FuncInsertLeaf op.FuncID = "btree.insertleaf"
	// FuncDeleteLeaf is the physiological leaf delete.
	FuncDeleteLeaf op.FuncID = "btree.deleteleaf"
	// FuncSplitChild is the logical split: reads {parent, child}, writes
	// {parent, child, newChild}.  Only page ids are logged.
	FuncSplitChild op.FuncID = "btree.splitchild"
	// FuncSplitRoot is the logical root split: reads {meta, root}, writes
	// {meta, root, newChild, newRoot}.
	FuncSplitRoot op.FuncID = "btree.splitroot"
)

// Register installs the B-tree transformations on a registry.
func Register(reg *op.Registry) {
	reg.Register(FuncInsertLeaf, fnInsertLeaf)
	reg.Register(FuncDeleteLeaf, fnDeleteLeaf)
	reg.Register(FuncSplitChild, fnSplitChild)
	reg.Register(FuncSplitRoot, fnSplitRoot)
}

// meta is the tree's metadata object.
type meta struct {
	root   op.ObjectID
	next   uint64 // next page number to allocate
	height uint64
	order  uint64 // max keys per page before split
}

func encodeMeta(m *meta) []byte {
	var next, height, order [8]byte
	binary.BigEndian.PutUint64(next[:], m.next)
	binary.BigEndian.PutUint64(height[:], m.height)
	binary.BigEndian.PutUint64(order[:], m.order)
	return op.EncodeParams([]byte(m.root), next[:], height[:], order[:])
}

func decodeMeta(v []byte) (*meta, error) {
	fields, err := op.DecodeParams(v)
	if err != nil || len(fields) != 4 || len(fields[1]) != 8 || len(fields[2]) != 8 || len(fields[3]) != 8 {
		return nil, fmt.Errorf("btree: corrupt meta: %v", err)
	}
	return &meta{
		root:   op.ObjectID(fields[0]),
		next:   binary.BigEndian.Uint64(fields[1]),
		height: binary.BigEndian.Uint64(fields[2]),
		order:  binary.BigEndian.Uint64(fields[3]),
	}, nil
}

// --- registered transformations --------------------------------------------

// fnInsertLeaf params: EncodeParams(key, val).
func fnInsertLeaf(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	fields, err := op.DecodeParams(params)
	if err != nil || len(fields) != 2 {
		return nil, fmt.Errorf("btree: insertleaf wants (key, val)")
	}
	id, raw, err := soleRead(reads)
	if err != nil {
		return nil, err
	}
	p, err := decodePage(raw)
	if err != nil {
		return nil, err
	}
	if p.kind != leafPage {
		return nil, fmt.Errorf("btree: insertleaf on non-leaf %q", id)
	}
	p.insertLeaf(fields[0], fields[1])
	return map[op.ObjectID][]byte{id: encodePage(p)}, nil
}

// fnDeleteLeaf params: EncodeParams(key).
func fnDeleteLeaf(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	fields, err := op.DecodeParams(params)
	if err != nil || len(fields) != 1 {
		return nil, fmt.Errorf("btree: deleteleaf wants (key)")
	}
	id, raw, err := soleRead(reads)
	if err != nil {
		return nil, err
	}
	p, err := decodePage(raw)
	if err != nil {
		return nil, err
	}
	if p.kind != leafPage {
		return nil, fmt.Errorf("btree: deleteleaf on non-leaf %q", id)
	}
	p.deleteLeaf(fields[0])
	return map[op.ObjectID][]byte{id: encodePage(p)}, nil
}

// fnSplitChild params: EncodeParams(parentID, childID, newChildID).
// Reads parent and child; writes parent, child, newChild.  The new child's
// contents come entirely from the old child — nothing but ids on the log.
func fnSplitChild(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	fields, err := op.DecodeParams(params)
	if err != nil || len(fields) != 3 {
		return nil, fmt.Errorf("btree: splitchild wants (parent, child, newChild)")
	}
	parentID, childID, newID := op.ObjectID(fields[0]), op.ObjectID(fields[1]), op.ObjectID(fields[2])
	parentRaw, ok := reads[parentID]
	if !ok {
		return nil, fmt.Errorf("btree: splitchild missing parent %q", parentID)
	}
	childRaw, ok := reads[childID]
	if !ok {
		return nil, fmt.Errorf("btree: splitchild missing child %q", childID)
	}
	parent, err := decodePage(parentRaw)
	if err != nil {
		return nil, err
	}
	child, err := decodePage(childRaw)
	if err != nil {
		return nil, err
	}
	if parent.kind != internalPage {
		return nil, fmt.Errorf("btree: splitchild parent %q is not internal", parentID)
	}
	right, sep := child.splitRight()
	if err := parent.insertChild(sep, childID, newID); err != nil {
		return nil, err
	}
	return map[op.ObjectID][]byte{
		parentID: encodePage(parent),
		childID:  encodePage(child),
		newID:    encodePage(right),
	}, nil
}

// fnSplitRoot params: EncodeParams(metaID, rootID, newChildID, newRootID).
// Reads meta and the old root; writes meta, old root, new child, new root.
func fnSplitRoot(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	fields, err := op.DecodeParams(params)
	if err != nil || len(fields) != 4 {
		return nil, fmt.Errorf("btree: splitroot wants (meta, root, newChild, newRoot)")
	}
	metaID, rootID := op.ObjectID(fields[0]), op.ObjectID(fields[1])
	newChildID, newRootID := op.ObjectID(fields[2]), op.ObjectID(fields[3])
	metaRaw, ok := reads[metaID]
	if !ok {
		return nil, fmt.Errorf("btree: splitroot missing meta")
	}
	rootRaw, ok := reads[rootID]
	if !ok {
		return nil, fmt.Errorf("btree: splitroot missing root")
	}
	m, err := decodeMeta(metaRaw)
	if err != nil {
		return nil, err
	}
	root, err := decodePage(rootRaw)
	if err != nil {
		return nil, err
	}
	right, sep := root.splitRight()
	newRoot := &page{
		kind:     internalPage,
		keys:     [][]byte{sep},
		children: []op.ObjectID{rootID, newChildID},
	}
	m.root = newRootID
	m.height++
	return map[op.ObjectID][]byte{
		metaID:     encodeMeta(m),
		rootID:     encodePage(root),
		newChildID: encodePage(right),
		newRootID:  encodePage(newRoot),
	}, nil
}

func soleRead(reads map[op.ObjectID][]byte) (op.ObjectID, []byte, error) {
	if len(reads) != 1 {
		return "", nil, fmt.Errorf("btree: expected 1 read, got %d", len(reads))
	}
	for id, v := range reads {
		return id, v, nil
	}
	panic("unreachable")
}

// --- tree driver ------------------------------------------------------------

// Tree is a recoverable B-tree over an engine.
type Tree struct {
	eng  *core.Engine
	name string
}

// New creates a tree with the given name and order (max keys per page; must
// be >= 2).  Page allocation is recorded in the tree's meta object, so page
// ids replay deterministically.
func New(eng *core.Engine, name string, order int) (*Tree, error) {
	if order < 2 {
		return nil, fmt.Errorf("btree: order %d < 2", order)
	}
	t := &Tree{eng: eng, name: name}
	rootID := t.pageID(0)
	m := &meta{root: rootID, next: 1, height: 1, order: uint64(order)}
	if err := eng.Execute(op.NewCreate(t.metaID(), encodeMeta(m))); err != nil {
		return nil, err
	}
	if err := eng.Execute(op.NewCreate(rootID, encodePage(&page{kind: leafPage}))); err != nil {
		return nil, err
	}
	return t, nil
}

// Open attaches to an existing tree (e.g. after recovery).
func Open(eng *core.Engine, name string) (*Tree, error) {
	t := &Tree{eng: eng, name: name}
	if _, err := t.meta(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Tree) metaID() op.ObjectID { return op.ObjectID("bt/" + t.name + "/meta") }
func (t *Tree) pageID(n uint64) op.ObjectID {
	return op.ObjectID(fmt.Sprintf("bt/%s/p%08d", t.name, n))
}

func (t *Tree) meta() (*meta, error) {
	raw, err := t.eng.Get(t.metaID())
	if err != nil {
		return nil, fmt.Errorf("btree: tree %q: %w", t.name, err)
	}
	return decodeMeta(raw)
}

func (t *Tree) readPage(id op.ObjectID) (*page, error) {
	raw, err := t.eng.Get(id)
	if err != nil {
		return nil, err
	}
	return decodePage(raw)
}

// allocPage reserves the next page number via a physiological meta update.
// The allocation itself is logged as a physical write of the (small) meta
// object, keeping replay deterministic.
func (t *Tree) allocPage(m *meta) (op.ObjectID, error) {
	id := t.pageID(m.next)
	m.next++
	if err := t.eng.Execute(op.NewPhysicalWrite(t.metaID(), encodeMeta(m))); err != nil {
		return "", err
	}
	return id, nil
}

// Insert adds or replaces key -> val.
func (t *Tree) Insert(key, val []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("btree: empty key")
	}
	m, err := t.meta()
	if err != nil {
		return err
	}
	// Preemptive split of a full root.
	root, err := t.readPage(m.root)
	if err != nil {
		return err
	}
	if len(root.keys) >= int(m.order) {
		newChild, err := t.allocPage(m)
		if err != nil {
			return err
		}
		newRoot, err := t.allocPage(m)
		if err != nil {
			return err
		}
		oldRoot := m.root
		params := op.EncodeParams([]byte(t.metaID()), []byte(oldRoot), []byte(newChild), []byte(newRoot))
		split := op.NewLogical(FuncSplitRoot, params,
			[]op.ObjectID{t.metaID(), oldRoot},
			[]op.ObjectID{t.metaID(), oldRoot, newChild, newRoot})
		if err := t.eng.Execute(split); err != nil {
			return err
		}
		m, err = t.meta()
		if err != nil {
			return err
		}
	}

	// Descend, splitting any full child before entering it.
	cur := m.root
	for {
		p, err := t.readPage(cur)
		if err != nil {
			return err
		}
		if p.kind == leafPage {
			params := op.EncodeParams(key, val)
			return t.eng.Execute(op.NewPhysioWrite(cur, FuncInsertLeaf, params))
		}
		childID := p.children[p.childIndex(key)]
		child, err := t.readPage(childID)
		if err != nil {
			return err
		}
		if len(child.keys) >= int(m.order) {
			newID, err := t.allocPage(m)
			if err != nil {
				return err
			}
			params := op.EncodeParams([]byte(cur), []byte(childID), []byte(newID))
			split := op.NewLogical(FuncSplitChild, params,
				[]op.ObjectID{cur, childID},
				[]op.ObjectID{cur, childID, newID})
			if err := t.eng.Execute(split); err != nil {
				return err
			}
			// Re-read the parent to pick the correct half.
			p, err = t.readPage(cur)
			if err != nil {
				return err
			}
			childID = p.children[p.childIndex(key)]
		}
		cur = childID
	}
}

// Get returns the value for key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	m, err := t.meta()
	if err != nil {
		return nil, false, err
	}
	cur := m.root
	for {
		p, err := t.readPage(cur)
		if err != nil {
			return nil, false, err
		}
		if p.kind == leafPage {
			i, found := findKey(p.keys, key)
			if !found {
				return nil, false, nil
			}
			return p.vals[i], true, nil
		}
		cur = p.children[p.childIndex(key)]
	}
}

// Delete removes key; it reports whether the key was present.  Pages are not
// merged (a common production simplification); the tree stays correct, just
// possibly sparse.
func (t *Tree) Delete(key []byte) (bool, error) {
	_, found, err := t.Get(key)
	if err != nil || !found {
		return false, err
	}
	m, err := t.meta()
	if err != nil {
		return false, err
	}
	cur := m.root
	for {
		p, err := t.readPage(cur)
		if err != nil {
			return false, err
		}
		if p.kind == leafPage {
			return true, t.eng.Execute(op.NewPhysioWrite(cur, FuncDeleteLeaf, op.EncodeParams(key)))
		}
		cur = p.children[p.childIndex(key)]
	}
}

// Scan visits all key/value pairs in order; fn returns false to stop.
func (t *Tree) Scan(fn func(key, val []byte) bool) error {
	m, err := t.meta()
	if err != nil {
		return err
	}
	_, err = t.scanPage(m.root, fn)
	return err
}

func (t *Tree) scanPage(id op.ObjectID, fn func(k, v []byte) bool) (bool, error) {
	p, err := t.readPage(id)
	if err != nil {
		return false, err
	}
	if p.kind == leafPage {
		for i, k := range p.keys {
			if !fn(k, p.vals[i]) {
				return false, nil
			}
		}
		return true, nil
	}
	for _, c := range p.children {
		cont, err := t.scanPage(c, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// Stats reports the tree shape.
type Stats struct {
	Height    int
	Pages     int
	Keys      int
	LeafPages int
}

// Stats walks the tree and returns shape statistics.
func (t *Tree) Stats() (Stats, error) {
	m, err := t.meta()
	if err != nil {
		return Stats{}, err
	}
	st := Stats{Height: int(m.height)}
	err = t.walk(m.root, func(p *page) {
		st.Pages++
		if p.kind == leafPage {
			st.LeafPages++
			st.Keys += len(p.keys)
		}
	})
	return st, err
}

func (t *Tree) walk(id op.ObjectID, fn func(*page)) error {
	p, err := t.readPage(id)
	if err != nil {
		return err
	}
	fn(p)
	if p.kind == internalPage {
		for _, c := range p.children {
			if err := t.walk(c, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// Check verifies the structural invariants: key order within pages, key
// ranges bounded by parent separators, uniform leaf depth, and child counts.
func (t *Tree) Check() error {
	m, err := t.meta()
	if err != nil {
		return err
	}
	leafDepth := -1
	var check func(id op.ObjectID, lo, hi []byte, depth int) error
	check = func(id op.ObjectID, lo, hi []byte, depth int) error {
		p, err := t.readPage(id)
		if err != nil {
			return err
		}
		for i := 1; i < len(p.keys); i++ {
			if cmp(p.keys[i-1], p.keys[i]) >= 0 {
				return fmt.Errorf("btree: %q keys out of order", id)
			}
		}
		for _, k := range p.keys {
			if lo != nil && cmp(k, lo) < 0 {
				return fmt.Errorf("btree: %q key below lower bound", id)
			}
			if hi != nil && cmp(k, hi) >= 0 {
				return fmt.Errorf("btree: %q key above upper bound", id)
			}
		}
		if p.kind == leafPage {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("btree: leaves at depths %d and %d", leafDepth, depth)
			}
			return nil
		}
		if len(p.children) != len(p.keys)+1 {
			return fmt.Errorf("btree: %q has %d children for %d keys", id, len(p.children), len(p.keys))
		}
		for i, c := range p.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = p.keys[i-1]
			}
			if i < len(p.keys) {
				chi = p.keys[i]
			}
			if err := check(c, clo, chi, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := check(m.root, nil, nil, 1); err != nil {
		return err
	}
	if leafDepth != -1 && leafDepth != int(m.height) {
		return fmt.Errorf("btree: meta height %d but leaves at depth %d", m.height, leafDepth)
	}
	return nil
}

func cmp(a, b []byte) int {
	switch {
	case string(a) < string(b):
		return -1
	case string(a) > string(b):
		return 1
	}
	return 0
}
