package btree

import (
	"encoding/binary"
	"fmt"

	"logicallog/internal/core"
	"logicallog/internal/op"
)

// Function ids registered by Register.
const (
	// FuncInsertLeaf is the physiological leaf insert: page <- page+{k,v}.
	FuncInsertLeaf op.FuncID = "btree.insertleaf"
	// FuncDeleteLeaf is the physiological leaf delete.
	FuncDeleteLeaf op.FuncID = "btree.deleteleaf"
	// FuncSplitChild is the logical split: reads {parent, child}, writes
	// {parent, child, newChild}.  Only page ids are logged.
	FuncSplitChild op.FuncID = "btree.splitchild"
	// FuncSplitRoot is the logical root split: reads {meta, root}, writes
	// {meta, root, newChild, newRoot}.
	FuncSplitRoot op.FuncID = "btree.splitroot"
	// FuncMergeChild is the logical merge: reads {parent, left, right},
	// writes {parent, left}.  The right page is absorbed into the left and
	// the separator dropped from the parent; the driver deletes the orphaned
	// right page afterwards.
	FuncMergeChild op.FuncID = "btree.mergechild"
	// FuncRebalance is the logical borrow: reads and writes
	// {parent, left, right}, moving one entry between adjacent siblings and
	// updating the parent separator.
	FuncRebalance op.FuncID = "btree.rebalance"
	// FuncCollapseRoot is the logical height decrease: reads {meta, root},
	// writes {meta}, pointing the tree at the root's sole child.  The driver
	// deletes the orphaned old root afterwards.
	FuncCollapseRoot op.FuncID = "btree.collapseroot"
)

// Rebalance directions carried in FuncRebalance params.
const (
	borrowLeft  byte = 'L' // left sibling donates its last entry to right
	borrowRight byte = 'R' // right sibling donates its first entry to left
)

// Register installs the B+tree transformations on a registry.
func Register(reg *op.Registry) {
	reg.Register(FuncInsertLeaf, fnInsertLeaf)
	reg.Register(FuncDeleteLeaf, fnDeleteLeaf)
	reg.Register(FuncSplitChild, fnSplitChild)
	reg.Register(FuncSplitRoot, fnSplitRoot)
	reg.Register(FuncMergeChild, fnMergeChild)
	reg.Register(FuncRebalance, fnRebalance)
	reg.Register(FuncCollapseRoot, fnCollapseRoot)
}

// meta is the tree's metadata object.
type meta struct {
	root   op.ObjectID
	next   uint64 // next page number to allocate
	height uint64
	order  uint64 // max keys per page before split
}

func encodeMeta(m *meta) []byte {
	var next, height, order [8]byte
	binary.BigEndian.PutUint64(next[:], m.next)
	binary.BigEndian.PutUint64(height[:], m.height)
	binary.BigEndian.PutUint64(order[:], m.order)
	return op.EncodeParams([]byte(m.root), next[:], height[:], order[:])
}

func decodeMeta(v []byte) (*meta, error) {
	fields, err := op.DecodeParams(v)
	if err != nil || len(fields) != 4 || len(fields[1]) != 8 || len(fields[2]) != 8 || len(fields[3]) != 8 {
		return nil, fmt.Errorf("btree: corrupt meta: %v", err)
	}
	return &meta{
		root:   op.ObjectID(fields[0]),
		next:   binary.BigEndian.Uint64(fields[1]),
		height: binary.BigEndian.Uint64(fields[2]),
		order:  binary.BigEndian.Uint64(fields[3]),
	}, nil
}

// --- registered transformations --------------------------------------------

// fnInsertLeaf params: EncodeParams(key, val).
func fnInsertLeaf(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	fields, err := op.DecodeParams(params)
	if err != nil || len(fields) != 2 {
		return nil, fmt.Errorf("btree: insertleaf wants (key, val)")
	}
	id, raw, err := soleRead(reads)
	if err != nil {
		return nil, err
	}
	p, err := decodePage(raw)
	if err != nil {
		return nil, err
	}
	if p.kind != leafPage {
		return nil, fmt.Errorf("btree: insertleaf on non-leaf %q", id)
	}
	p.insertLeaf(fields[0], fields[1])
	return map[op.ObjectID][]byte{id: encodePage(p)}, nil
}

// fnDeleteLeaf params: EncodeParams(key).
func fnDeleteLeaf(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	fields, err := op.DecodeParams(params)
	if err != nil || len(fields) != 1 {
		return nil, fmt.Errorf("btree: deleteleaf wants (key)")
	}
	id, raw, err := soleRead(reads)
	if err != nil {
		return nil, err
	}
	p, err := decodePage(raw)
	if err != nil {
		return nil, err
	}
	if p.kind != leafPage {
		return nil, fmt.Errorf("btree: deleteleaf on non-leaf %q", id)
	}
	p.deleteLeaf(fields[0])
	return map[op.ObjectID][]byte{id: encodePage(p)}, nil
}

// fnSplitChild params: EncodeParams(parentID, childID, newChildID).
// Reads parent and child; writes parent, child, newChild.  The new child's
// contents come entirely from the old child — nothing but ids on the log.
// Splitting a leaf threads the chain: the new right leaf inherits the old
// next pointer and the split leaf points at the new one.
func fnSplitChild(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	fields, err := op.DecodeParams(params)
	if err != nil || len(fields) != 3 {
		return nil, fmt.Errorf("btree: splitchild wants (parent, child, newChild)")
	}
	parentID, childID, newID := op.ObjectID(fields[0]), op.ObjectID(fields[1]), op.ObjectID(fields[2])
	parentRaw, ok := reads[parentID]
	if !ok {
		return nil, fmt.Errorf("btree: splitchild missing parent %q", parentID)
	}
	childRaw, ok := reads[childID]
	if !ok {
		return nil, fmt.Errorf("btree: splitchild missing child %q", childID)
	}
	parent, err := decodePage(parentRaw)
	if err != nil {
		return nil, err
	}
	child, err := decodePage(childRaw)
	if err != nil {
		return nil, err
	}
	if parent.kind != internalPage {
		return nil, fmt.Errorf("btree: splitchild parent %q is not internal", parentID)
	}
	right, sep := child.splitRight()
	if child.kind == leafPage {
		right.next = child.next
		child.next = newID
	}
	if err := parent.insertChild(sep, childID, newID); err != nil {
		return nil, err
	}
	return map[op.ObjectID][]byte{
		parentID: encodePage(parent),
		childID:  encodePage(child),
		newID:    encodePage(right),
	}, nil
}

// fnSplitRoot params: EncodeParams(metaID, rootID, newChildID, newRootID).
// Reads meta and the old root; writes meta, old root, new child, new root.
func fnSplitRoot(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	fields, err := op.DecodeParams(params)
	if err != nil || len(fields) != 4 {
		return nil, fmt.Errorf("btree: splitroot wants (meta, root, newChild, newRoot)")
	}
	metaID, rootID := op.ObjectID(fields[0]), op.ObjectID(fields[1])
	newChildID, newRootID := op.ObjectID(fields[2]), op.ObjectID(fields[3])
	metaRaw, ok := reads[metaID]
	if !ok {
		return nil, fmt.Errorf("btree: splitroot missing meta")
	}
	rootRaw, ok := reads[rootID]
	if !ok {
		return nil, fmt.Errorf("btree: splitroot missing root")
	}
	m, err := decodeMeta(metaRaw)
	if err != nil {
		return nil, err
	}
	root, err := decodePage(rootRaw)
	if err != nil {
		return nil, err
	}
	right, sep := root.splitRight()
	if root.kind == leafPage {
		right.next = root.next
		root.next = newChildID
	}
	newRoot := &page{
		kind:     internalPage,
		keys:     [][]byte{sep},
		children: []op.ObjectID{rootID, newChildID},
	}
	m.root = newRootID
	m.height++
	return map[op.ObjectID][]byte{
		metaID:     encodeMeta(m),
		rootID:     encodePage(root),
		newChildID: encodePage(right),
		newRootID:  encodePage(newRoot),
	}, nil
}

// fnMergeChild params: EncodeParams(parentID, leftID, rightID).
// Reads all three pages; writes parent and left.  The right sibling is
// absorbed into the left (separator pulled down for internal pages, leaf
// chain re-threaded for leaves) and becomes an orphan the driver deletes.
func fnMergeChild(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	fields, err := op.DecodeParams(params)
	if err != nil || len(fields) != 3 {
		return nil, fmt.Errorf("btree: mergechild wants (parent, left, right)")
	}
	parentID, leftID, rightID := op.ObjectID(fields[0]), op.ObjectID(fields[1]), op.ObjectID(fields[2])
	parent, left, right, slot, err := siblingPages(reads, parentID, leftID, rightID)
	if err != nil {
		return nil, err
	}
	parent.mergeRight(slot, left, right)
	return map[op.ObjectID][]byte{
		parentID: encodePage(parent),
		leftID:   encodePage(left),
	}, nil
}

// fnRebalance params: EncodeParams(parentID, leftID, rightID, [dir]).
// Reads and writes all three pages.  dir selects the donor: borrowLeft
// moves the left sibling's last entry right, borrowRight moves the right
// sibling's first entry left; the parent separator follows.
func fnRebalance(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	fields, err := op.DecodeParams(params)
	if err != nil || len(fields) != 4 || len(fields[3]) != 1 {
		return nil, fmt.Errorf("btree: rebalance wants (parent, left, right, dir)")
	}
	parentID, leftID, rightID := op.ObjectID(fields[0]), op.ObjectID(fields[1]), op.ObjectID(fields[2])
	parent, left, right, slot, err := siblingPages(reads, parentID, leftID, rightID)
	if err != nil {
		return nil, err
	}
	switch fields[3][0] {
	case borrowLeft:
		if len(left.keys) == 0 {
			return nil, fmt.Errorf("btree: rebalance from empty left %q", leftID)
		}
		parent.borrowFromLeft(slot, left, right)
	case borrowRight:
		if len(right.keys) < 2 {
			return nil, fmt.Errorf("btree: rebalance would empty right %q", rightID)
		}
		parent.borrowFromRight(slot, left, right)
	default:
		return nil, fmt.Errorf("btree: rebalance direction %q", fields[3])
	}
	return map[op.ObjectID][]byte{
		parentID: encodePage(parent),
		leftID:   encodePage(left),
		rightID:  encodePage(right),
	}, nil
}

// fnCollapseRoot params: EncodeParams(metaID, rootID).
// Reads the meta and the keyless internal root; writes only the meta, which
// now points at the root's sole child.  The driver deletes the old root.
func fnCollapseRoot(params []byte, reads map[op.ObjectID][]byte) (map[op.ObjectID][]byte, error) {
	fields, err := op.DecodeParams(params)
	if err != nil || len(fields) != 2 {
		return nil, fmt.Errorf("btree: collapseroot wants (meta, root)")
	}
	metaID, rootID := op.ObjectID(fields[0]), op.ObjectID(fields[1])
	metaRaw, ok := reads[metaID]
	if !ok {
		return nil, fmt.Errorf("btree: collapseroot missing meta")
	}
	rootRaw, ok := reads[rootID]
	if !ok {
		return nil, fmt.Errorf("btree: collapseroot missing root")
	}
	m, err := decodeMeta(metaRaw)
	if err != nil {
		return nil, err
	}
	root, err := decodePage(rootRaw)
	if err != nil {
		return nil, err
	}
	if root.kind != internalPage || len(root.keys) != 0 || len(root.children) != 1 {
		return nil, fmt.Errorf("btree: collapseroot on non-collapsible root %q", rootID)
	}
	m.root = root.children[0]
	m.height--
	return map[op.ObjectID][]byte{metaID: encodeMeta(m)}, nil
}

// siblingPages decodes a parent and two adjacent siblings out of a read set
// and locates the left sibling's slot.
func siblingPages(reads map[op.ObjectID][]byte, parentID, leftID, rightID op.ObjectID) (parent, left, right *page, slot int, err error) {
	parentRaw, ok := reads[parentID]
	if !ok {
		return nil, nil, nil, 0, fmt.Errorf("btree: missing parent %q", parentID)
	}
	leftRaw, ok := reads[leftID]
	if !ok {
		return nil, nil, nil, 0, fmt.Errorf("btree: missing left sibling %q", leftID)
	}
	rightRaw, ok := reads[rightID]
	if !ok {
		return nil, nil, nil, 0, fmt.Errorf("btree: missing right sibling %q", rightID)
	}
	if parent, err = decodePage(parentRaw); err != nil {
		return nil, nil, nil, 0, err
	}
	if left, err = decodePage(leftRaw); err != nil {
		return nil, nil, nil, 0, err
	}
	if right, err = decodePage(rightRaw); err != nil {
		return nil, nil, nil, 0, err
	}
	if parent.kind != internalPage {
		return nil, nil, nil, 0, fmt.Errorf("btree: parent %q is not internal", parentID)
	}
	if left.kind != right.kind {
		return nil, nil, nil, 0, fmt.Errorf("btree: sibling kinds differ (%q, %q)", leftID, rightID)
	}
	slot = parent.childSlot(leftID)
	if slot < 0 || slot+1 >= len(parent.children) || parent.children[slot+1] != rightID {
		return nil, nil, nil, 0, fmt.Errorf("btree: %q and %q are not adjacent under %q", leftID, rightID, parentID)
	}
	return parent, left, right, slot, nil
}

func soleRead(reads map[op.ObjectID][]byte) (op.ObjectID, []byte, error) {
	if len(reads) != 1 {
		return "", nil, fmt.Errorf("btree: expected 1 read, got %d", len(reads))
	}
	for id, v := range reads {
		return id, v, nil
	}
	panic("unreachable")
}

// --- tree driver ------------------------------------------------------------

// Tree is a recoverable leaf-linked B+tree over an engine.
type Tree struct {
	eng  *core.Engine
	name string
}

// New creates a tree with the given name and order (max keys per page; must
// be >= 2).  Page allocation is recorded in the tree's meta object, so page
// ids replay deterministically.
func New(eng *core.Engine, name string, order int) (*Tree, error) {
	if order < 2 {
		return nil, fmt.Errorf("btree: order %d < 2", order)
	}
	t := &Tree{eng: eng, name: name}
	rootID := t.pageID(0)
	m := &meta{root: rootID, next: 1, height: 1, order: uint64(order)}
	if err := eng.Execute(op.NewCreate(t.metaID(), encodeMeta(m))); err != nil {
		return nil, err
	}
	if err := eng.Execute(op.NewCreate(rootID, encodePage(&page{kind: leafPage}))); err != nil {
		return nil, err
	}
	return t, nil
}

// Open attaches to an existing tree (e.g. after recovery).
func Open(eng *core.Engine, name string) (*Tree, error) {
	t := &Tree{eng: eng, name: name}
	if _, err := t.meta(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Tree) metaID() op.ObjectID { return op.ObjectID("bt/" + t.name + "/meta") }
func (t *Tree) pageID(n uint64) op.ObjectID {
	return op.ObjectID(fmt.Sprintf("bt/%s/p%08d", t.name, n))
}

func (t *Tree) meta() (*meta, error) {
	raw, err := t.eng.Get(t.metaID())
	if err != nil {
		return nil, fmt.Errorf("btree: tree %q: %w", t.name, err)
	}
	return decodeMeta(raw)
}

func (t *Tree) readPage(id op.ObjectID) (*page, error) {
	raw, err := t.eng.Get(id)
	if err != nil {
		return nil, err
	}
	return decodePage(raw)
}

// allocPage reserves the next page number via a physiological meta update.
// The allocation itself is logged as a physical write of the (small) meta
// object, keeping replay deterministic.
func (t *Tree) allocPage(m *meta) (op.ObjectID, error) {
	id := t.pageID(m.next)
	m.next++
	if err := t.eng.Execute(op.NewPhysicalWrite(t.metaID(), encodeMeta(m))); err != nil {
		return "", err
	}
	return id, nil
}

// Insert adds or replaces key -> val.
func (t *Tree) Insert(key, val []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("btree: empty key")
	}
	m, err := t.meta()
	if err != nil {
		return err
	}
	// Preemptive split of a full root.
	root, err := t.readPage(m.root)
	if err != nil {
		return err
	}
	if len(root.keys) >= int(m.order) {
		newChild, err := t.allocPage(m)
		if err != nil {
			return err
		}
		newRoot, err := t.allocPage(m)
		if err != nil {
			return err
		}
		oldRoot := m.root
		params := op.EncodeParams([]byte(t.metaID()), []byte(oldRoot), []byte(newChild), []byte(newRoot))
		split := op.NewLogical(FuncSplitRoot, params,
			[]op.ObjectID{t.metaID(), oldRoot},
			[]op.ObjectID{t.metaID(), oldRoot, newChild, newRoot})
		if err := t.eng.Execute(split); err != nil {
			return err
		}
		m, err = t.meta()
		if err != nil {
			return err
		}
	}

	// Descend, splitting any full child before entering it.
	cur := m.root
	for {
		p, err := t.readPage(cur)
		if err != nil {
			return err
		}
		if p.kind == leafPage {
			params := op.EncodeParams(key, val)
			return t.eng.Execute(op.NewPhysioWrite(cur, FuncInsertLeaf, params))
		}
		childID := p.children[p.childIndex(key)]
		child, err := t.readPage(childID)
		if err != nil {
			return err
		}
		if len(child.keys) >= int(m.order) {
			newID, err := t.allocPage(m)
			if err != nil {
				return err
			}
			params := op.EncodeParams([]byte(cur), []byte(childID), []byte(newID))
			split := op.NewLogical(FuncSplitChild, params,
				[]op.ObjectID{cur, childID},
				[]op.ObjectID{cur, childID, newID})
			if err := t.eng.Execute(split); err != nil {
				return err
			}
			// Re-read the parent to pick the correct half.
			p, err = t.readPage(cur)
			if err != nil {
				return err
			}
			childID = p.children[p.childIndex(key)]
		}
		cur = childID
	}
}

// Put is Insert under the name the workload Domain interface expects.
func (t *Tree) Put(key, val []byte) error { return t.Insert(key, val) }

// Get returns the value for key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	m, err := t.meta()
	if err != nil {
		return nil, false, err
	}
	cur := m.root
	for {
		p, err := t.readPage(cur)
		if err != nil {
			return nil, false, err
		}
		if p.kind == leafPage {
			i, found := findKey(p.keys, key)
			if !found {
				return nil, false, nil
			}
			return p.vals[i], true, nil
		}
		cur = p.children[p.childIndex(key)]
	}
}

// minKeys is the underflow threshold: a non-root page visited by Delete is
// topped up (borrow or merge) when it would drop to this many keys.
func minKeys(order uint64) int {
	mk := int(order-1) / 2
	if mk < 1 {
		mk = 1
	}
	return mk
}

// Delete removes key; it reports whether the key was present.  The descent
// is preemptive: any child about to be entered with minKeys keys or fewer
// is first topped up by a logical rebalance (borrow from a richer sibling)
// or merge (absorb a sibling at minimum), so the leaf delete itself can
// never underflow a page below the merge threshold.
func (t *Tree) Delete(key []byte) (bool, error) {
	_, found, err := t.Get(key)
	if err != nil || !found {
		return false, err
	}
	m, err := t.meta()
	if err != nil {
		return false, err
	}
	mk := minKeys(m.order)
	cur := m.root
	for {
		p, err := t.readPage(cur)
		if err != nil {
			return false, err
		}
		if p.kind == leafPage {
			return true, t.eng.Execute(op.NewPhysioWrite(cur, FuncDeleteLeaf, op.EncodeParams(key)))
		}
		slot := p.childIndex(key)
		childID := p.children[slot]
		child, err := t.readPage(childID)
		if err != nil {
			return false, err
		}
		if len(child.keys) <= mk {
			if err := t.fixChild(p, cur, slot, mk); err != nil {
				return false, err
			}
			// The fix rewrote the parent (and may have emptied a root);
			// re-resolve the descent from the tree meta.
			m, err = t.meta()
			if err != nil {
				return false, err
			}
			if cur == m.root {
				if err := t.maybeCollapseRoot(m); err != nil {
					return false, err
				}
				m, err = t.meta()
				if err != nil {
					return false, err
				}
				cur = m.root
				continue
			}
			p, err = t.readPage(cur)
			if err != nil {
				return false, err
			}
			slot = p.childIndex(key)
			childID = p.children[slot]
		}
		cur = childID
	}
}

// fixChild tops up parent.children[slot] (which holds <= mk keys) by
// borrowing from a sibling with spare keys, or merging with a sibling at
// the minimum.  Merges orphan the absorbed page; the driver deletes it in
// the same mutation stream, mirroring how a real system returns the page to
// a free list.
func (t *Tree) fixChild(parent *page, parentID op.ObjectID, slot int, mk int) error {
	childID := parent.children[slot]
	var leftID, rightID op.ObjectID
	var left, right *page
	var err error
	if slot > 0 {
		leftID = parent.children[slot-1]
		if left, err = t.readPage(leftID); err != nil {
			return err
		}
	}
	if slot+1 < len(parent.children) {
		rightID = parent.children[slot+1]
		if right, err = t.readPage(rightID); err != nil {
			return err
		}
	}
	switch {
	case left != nil && len(left.keys) > mk:
		// Borrow the left sibling's last entry: (left, child) pair, dir L.
		params := op.EncodeParams([]byte(parentID), []byte(leftID), []byte(childID), []byte{borrowLeft})
		reb := op.NewLogical(FuncRebalance, params,
			[]op.ObjectID{parentID, leftID, childID},
			[]op.ObjectID{parentID, leftID, childID})
		return t.eng.Execute(reb)
	case right != nil && len(right.keys) > mk:
		// Borrow the right sibling's first entry: (child, right) pair, dir R.
		params := op.EncodeParams([]byte(parentID), []byte(childID), []byte(rightID), []byte{borrowRight})
		reb := op.NewLogical(FuncRebalance, params,
			[]op.ObjectID{parentID, childID, rightID},
			[]op.ObjectID{parentID, childID, rightID})
		return t.eng.Execute(reb)
	case left != nil:
		return t.mergePair(parentID, leftID, childID)
	case right != nil:
		return t.mergePair(parentID, childID, rightID)
	default:
		return fmt.Errorf("btree: %q slot %d has no siblings", parentID, slot)
	}
}

// mergePair merges right into left under parent and deletes the orphan.
func (t *Tree) mergePair(parentID, leftID, rightID op.ObjectID) error {
	params := op.EncodeParams([]byte(parentID), []byte(leftID), []byte(rightID))
	merge := op.NewLogical(FuncMergeChild, params,
		[]op.ObjectID{parentID, leftID, rightID},
		[]op.ObjectID{parentID, leftID})
	if err := t.eng.Execute(merge); err != nil {
		return err
	}
	return t.eng.Execute(op.NewDelete(rightID))
}

// maybeCollapseRoot drops an empty internal root (post-merge) and deletes
// the orphaned page.
func (t *Tree) maybeCollapseRoot(m *meta) error {
	root, err := t.readPage(m.root)
	if err != nil {
		return err
	}
	if root.kind != internalPage || len(root.keys) != 0 {
		return nil
	}
	oldRoot := m.root
	params := op.EncodeParams([]byte(t.metaID()), []byte(oldRoot))
	collapse := op.NewLogical(FuncCollapseRoot, params,
		[]op.ObjectID{t.metaID(), oldRoot},
		[]op.ObjectID{t.metaID()})
	if err := t.eng.Execute(collapse); err != nil {
		return err
	}
	return t.eng.Execute(op.NewDelete(oldRoot))
}

// leftmostLeaf descends the first-child spine to the head of the leaf chain.
func (t *Tree) leftmostLeaf() (op.ObjectID, error) {
	m, err := t.meta()
	if err != nil {
		return "", err
	}
	cur := m.root
	for {
		p, err := t.readPage(cur)
		if err != nil {
			return "", err
		}
		if p.kind == leafPage {
			return cur, nil
		}
		cur = p.children[0]
	}
}

// leafFor descends to the leaf whose key range covers key.
func (t *Tree) leafFor(key []byte) (op.ObjectID, error) {
	m, err := t.meta()
	if err != nil {
		return "", err
	}
	cur := m.root
	for {
		p, err := t.readPage(cur)
		if err != nil {
			return "", err
		}
		if p.kind == leafPage {
			return cur, nil
		}
		cur = p.children[p.childIndex(key)]
	}
}

// Scan visits all key/value pairs in order by walking the leaf chain; fn
// returns false to stop.
func (t *Tree) Scan(fn func(key, val []byte) bool) error {
	return t.Range(nil, nil, fn)
}

// Range visits key/value pairs with lo <= key < hi in order, walking the
// leaf chain from the leaf covering lo.  A nil lo starts at the first key; a
// nil hi runs to the end.  fn returns false to stop early.
func (t *Tree) Range(lo, hi []byte, fn func(key, val []byte) bool) error {
	var cur op.ObjectID
	var err error
	if lo == nil {
		cur, err = t.leftmostLeaf()
	} else {
		cur, err = t.leafFor(lo)
	}
	if err != nil {
		return err
	}
	for cur != "" {
		p, err := t.readPage(cur)
		if err != nil {
			return err
		}
		if p.kind != leafPage {
			return fmt.Errorf("btree: leaf chain reached non-leaf %q", cur)
		}
		start := 0
		if lo != nil {
			start, _ = findKey(p.keys, lo)
		}
		for i := start; i < len(p.keys); i++ {
			if hi != nil && cmp(p.keys[i], hi) >= 0 {
				return nil
			}
			if !fn(p.keys[i], p.vals[i]) {
				return nil
			}
		}
		lo = nil // only the first leaf needs the lower-bound seek
		cur = p.next
	}
	return nil
}

// Stats reports the tree shape.
type Stats struct {
	Height    int
	Pages     int
	Keys      int
	LeafPages int
}

// Stats walks the tree and returns shape statistics.
func (t *Tree) Stats() (Stats, error) {
	m, err := t.meta()
	if err != nil {
		return Stats{}, err
	}
	st := Stats{Height: int(m.height)}
	err = t.walk(m.root, func(p *page) {
		st.Pages++
		if p.kind == leafPage {
			st.LeafPages++
			st.Keys += len(p.keys)
		}
	})
	return st, err
}

func (t *Tree) walk(id op.ObjectID, fn func(*page)) error {
	p, err := t.readPage(id)
	if err != nil {
		return err
	}
	fn(p)
	if p.kind == internalPage {
		for _, c := range p.children {
			if err := t.walk(c, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// Check verifies the structural invariants: key order within pages, key
// ranges bounded by parent separators, uniform leaf depth, child counts,
// and the leaf chain (next pointers link the leaves exactly in left-to-right
// order, terminating with an empty pointer at the rightmost leaf).
func (t *Tree) Check() error {
	m, err := t.meta()
	if err != nil {
		return err
	}
	leafDepth := -1
	var leaves []op.ObjectID // left-to-right structural order
	var chain []op.ObjectID  // as linked via next pointers
	var check func(id op.ObjectID, lo, hi []byte, depth int) error
	check = func(id op.ObjectID, lo, hi []byte, depth int) error {
		p, err := t.readPage(id)
		if err != nil {
			return err
		}
		for i := 1; i < len(p.keys); i++ {
			if cmp(p.keys[i-1], p.keys[i]) >= 0 {
				return fmt.Errorf("btree: %q keys out of order", id)
			}
		}
		for _, k := range p.keys {
			if lo != nil && cmp(k, lo) < 0 {
				return fmt.Errorf("btree: %q key below lower bound", id)
			}
			if hi != nil && cmp(k, hi) >= 0 {
				return fmt.Errorf("btree: %q key above upper bound", id)
			}
		}
		if p.kind == leafPage {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("btree: leaves at depths %d and %d", leafDepth, depth)
			}
			leaves = append(leaves, id)
			chain = append(chain, p.next)
			return nil
		}
		if len(p.children) != len(p.keys)+1 {
			return fmt.Errorf("btree: %q has %d children for %d keys", id, len(p.children), len(p.keys))
		}
		for i, c := range p.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = p.keys[i-1]
			}
			if i < len(p.keys) {
				chi = p.keys[i]
			}
			if err := check(c, clo, chi, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := check(m.root, nil, nil, 1); err != nil {
		return err
	}
	if leafDepth != -1 && leafDepth != int(m.height) {
		return fmt.Errorf("btree: meta height %d but leaves at depth %d", m.height, leafDepth)
	}
	for i, next := range chain {
		want := op.ObjectID("")
		if i+1 < len(leaves) {
			want = leaves[i+1]
		}
		if next != want {
			return fmt.Errorf("btree: leaf %q next pointer %q, want %q", leaves[i], next, want)
		}
	}
	return nil
}

func cmp(a, b []byte) int {
	switch {
	case string(a) < string(b):
		return -1
	case string(a) > string(b):
		return 1
	}
	return 0
}
