// Package baseline implements a compact, self-contained ARIES-style
// physiological redo manager [11] — the state of the art the paper argues
// against for large-object domains.  It exists so experiments can compare
// the logical-logging engine against an *independent* implementation of the
// traditional design, not merely against a configuration switch.
//
// The manager is redo-only (matching the paper's redo-recovery scope):
//
//   - every update is physiological — a single page, transformed by a
//     logged function whose parameters (often the whole new value) ride on
//     the log;
//   - each page carries a pageLSN; the dirty page table carries recLSNs;
//   - checkpoints log the dirty page table; recovery = analysis (rebuild
//     DPT from the checkpoint forward) + redo (replay where
//     pageLSN < LSN), exactly the classic recipe.
//
// Because operations are physiological, the write graph degenerates: any
// page can be flushed at any time in any order (~ATOMIC, STEAL), which is
// precisely the flexibility the paper's rW machinery buys back for logical
// operations.
package baseline

import (
	"errors"
	"fmt"
	"io"

	"logicallog/internal/op"
	"logicallog/internal/stable"
	"logicallog/internal/wal"
)

// PageID names a page.
type PageID = op.ObjectID

// Manager is the ARIES-lite engine.
type Manager struct {
	reg   *op.Registry
	log   *wal.Log
	store *stable.Store

	// cache is the buffer pool: page -> (value, pageLSN, dirty, recLSN).
	cache map[PageID]*pageEntry
}

type pageEntry struct {
	val     []byte
	exists  bool
	pageLSN op.SI
	dirty   bool
	recLSN  op.SI
}

// New builds an ARIES-lite manager with a fresh in-memory log and store.
func New() (*Manager, error) {
	log, err := wal.New(wal.NewMemDevice())
	if err != nil {
		return nil, err
	}
	return &Manager{
		reg:   op.NewRegistry(),
		log:   log,
		store: stable.NewStore(),
		cache: make(map[PageID]*pageEntry),
	}, nil
}

// Registry returns the function registry.
func (m *Manager) Registry() *op.Registry { return m.reg }

// Log returns the write-ahead log (for statistics).
func (m *Manager) Log() *wal.Log { return m.log }

// Store returns the stable store (for statistics).
func (m *Manager) Store() *stable.Store { return m.store }

// Set writes a page value (a full physical write: the value is logged).
func (m *Manager) Set(p PageID, v []byte) error {
	return m.apply(op.NewPhysicalWrite(p, v))
}

// Update applies a physiological transformation to a page: the function id
// and params are logged, the page is read and rewritten.
func (m *Manager) Update(p PageID, fn op.FuncID, params []byte) error {
	return m.apply(op.NewPhysioWrite(p, fn, params))
}

// Delete removes a page.
func (m *Manager) Delete(p PageID) error {
	return m.apply(op.NewDelete(p))
}

// Get returns a page's current value.
func (m *Manager) Get(p PageID) ([]byte, error) {
	e, err := m.fault(p)
	if err != nil {
		return nil, err
	}
	if !e.exists {
		return nil, fmt.Errorf("baseline: page %q deleted", p)
	}
	return append([]byte(nil), e.val...), nil
}

func (m *Manager) fault(p PageID) (*pageEntry, error) {
	if e, ok := m.cache[p]; ok {
		return e, nil
	}
	v, err := m.store.Read(p)
	if errors.Is(err, stable.ErrNotFound) {
		return nil, fmt.Errorf("baseline: page %q not found", p)
	}
	if err != nil {
		return nil, err
	}
	e := &pageEntry{val: v.Val, exists: true, pageLSN: v.VSI}
	m.cache[p] = e
	return e, nil
}

func (m *Manager) apply(o *op.Operation) error {
	var reads map[op.ObjectID][]byte
	if len(o.ReadSet) == 1 {
		e, err := m.fault(o.ReadSet[0])
		if err != nil {
			return err
		}
		if !e.exists {
			return fmt.Errorf("baseline: update of deleted page %q", o.ReadSet[0])
		}
		reads = map[op.ObjectID][]byte{o.ReadSet[0]: e.val}
	}
	writes, err := m.reg.Apply(o, reads)
	if err != nil {
		return err
	}
	lsn, err := m.log.AppendOp(o)
	if err != nil {
		return err
	}
	return m.applyWrites(o, writes, lsn)
}

func (m *Manager) applyWrites(o *op.Operation, writes map[op.ObjectID][]byte, lsn op.SI) error {
	for _, p := range o.WriteSet {
		e, ok := m.cache[p]
		if !ok {
			if v, err := m.store.Read(p); err == nil {
				e = &pageEntry{val: v.Val, exists: true, pageLSN: v.VSI}
			} else {
				e = &pageEntry{}
			}
			m.cache[p] = e
		}
		if o.Kind == op.KindDelete {
			e.exists = false
			e.val = nil
		} else {
			e.exists = true
			e.val = writes[p]
		}
		if !e.dirty {
			e.dirty = true
			e.recLSN = lsn
		}
		e.pageLSN = lsn
	}
	return nil
}

// FlushPage forces the log through the page's LSN (WAL) and writes the page
// in place — physiological pages have no inter-object flush constraints, so
// any page flushes at any time.
func (m *Manager) FlushPage(p PageID) error {
	e, ok := m.cache[p]
	if !ok || !e.dirty {
		return nil
	}
	if err := m.log.ForceThrough(e.pageLSN); err != nil {
		return err
	}
	if err := m.store.WriteBatch([]stable.Entry{{
		ID: p, Val: e.val, VSI: e.pageLSN, Delete: !e.exists,
	}}, stable.ModeSingle); err != nil {
		return err
	}
	e.dirty = false
	e.recLSN = 0
	// Lazily log the flush so analysis can prune the DPT.
	if _, err := m.log.Append(wal.NewFlushRecord(p, e.pageLSN)); err != nil {
		return err
	}
	if !e.exists {
		delete(m.cache, p)
	}
	return nil
}

// FlushAll flushes every dirty page.
func (m *Manager) FlushAll() error {
	for p, e := range m.cache {
		if e.dirty {
			if err := m.FlushPage(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// Checkpoint logs the dirty page table and forces the log.
func (m *Manager) Checkpoint() error {
	var dirty []wal.DirtyEntry
	for p, e := range m.cache {
		if e.dirty {
			dirty = append(dirty, wal.DirtyEntry{ID: p, RSI: e.recLSN})
		}
	}
	if _, err := m.log.Append(wal.NewCheckpointRecord(dirty)); err != nil {
		return err
	}
	return m.log.Force()
}

// Crash drops the buffer pool and the unforced log tail.
func (m *Manager) Crash() {
	m.log.Crash()
	m.cache = make(map[PageID]*pageEntry)
}

// RecoveryStats reports what Recover did.
type RecoveryStats struct {
	RedoStart op.SI
	Scanned   int
	Redone    int
	Skipped   int
}

// Recover runs ARIES analysis + redo.
func (m *Manager) Recover() (RecoveryStats, error) {
	var st RecoveryStats
	// Analysis: rebuild the DPT from the last checkpoint forward.
	dpt := map[PageID]op.SI{}
	scanFrom := m.log.FirstLSN()
	cp, err := m.log.LastCheckpoint()
	if err != nil {
		return st, err
	}
	if cp != nil {
		scanFrom = cp.LSN
		for _, d := range cp.Checkpoint.Dirty {
			dpt[d.ID] = d.RSI
		}
	}
	sc, err := m.log.Scan(scanFrom)
	if err != nil {
		return st, err
	}
	for {
		rec, err := sc.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return st, err
		}
		switch rec.Type {
		case wal.RecOperation:
			for _, p := range rec.Op.WriteSet {
				if _, ok := dpt[p]; !ok {
					dpt[p] = rec.LSN
				}
			}
		case wal.RecFlush:
			delete(dpt, rec.Flush.Object)
		case wal.RecCheckpoint:
			dpt = map[PageID]op.SI{}
			for _, d := range rec.Checkpoint.Dirty {
				dpt[d.ID] = d.RSI
			}
		}
	}
	// Redo from the minimum recLSN.
	st.RedoStart = m.log.NextLSN()
	for _, rec := range dpt {
		if rec < st.RedoStart {
			st.RedoStart = rec
		}
	}
	sc, err = m.log.Scan(st.RedoStart)
	if err != nil {
		return st, err
	}
	for {
		rec, err := sc.Next()
		if errors.Is(err, io.EOF) {
			return st, nil
		}
		if err != nil {
			return st, err
		}
		if rec.Type != wal.RecOperation {
			continue
		}
		o := rec.Op
		st.Scanned++
		p := o.WriteSet[0] // physiological: exactly one page
		if m.currentPageLSN(p) >= o.LSN {
			st.Skipped++
			continue
		}
		var reads map[op.ObjectID][]byte
		if len(o.ReadSet) == 1 {
			e, err := m.fault(o.ReadSet[0])
			if err != nil {
				return st, fmt.Errorf("baseline: redo %s: %w", o, err)
			}
			reads = map[op.ObjectID][]byte{o.ReadSet[0]: e.val}
		}
		writes, err := m.reg.Apply(o, reads)
		if err != nil {
			return st, fmt.Errorf("baseline: redo %s: %w", o, err)
		}
		if err := m.applyWrites(o, writes, o.LSN); err != nil {
			return st, err
		}
		st.Redone++
	}
}

func (m *Manager) currentPageLSN(p PageID) op.SI {
	if e, ok := m.cache[p]; ok {
		return e.pageLSN
	}
	if v, err := m.store.Read(p); err == nil {
		return v.VSI
	}
	return op.NilSI
}
