package baseline

import (
	"fmt"
	"math/rand"
	"testing"

	"logicallog/internal/op"
)

func newManager(t *testing.T) *Manager {
	t.Helper()
	m, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSetGetUpdateDelete(t *testing.T) {
	m := newManager(t)
	if err := m.Set("p1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := m.Get("p1")
	if err != nil || string(v) != "v1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := m.Update("p1", op.FuncAppend, []byte("+2")); err != nil {
		t.Fatal(err)
	}
	v, _ = m.Get("p1")
	if string(v) != "v1+2" {
		t.Errorf("after update: %q", v)
	}
	if err := m.Delete("p1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("p1"); err == nil {
		t.Error("deleted page readable")
	}
	if err := m.Update("p1", op.FuncAppend, nil); err == nil {
		t.Error("update of deleted page succeeded")
	}
	if _, err := m.Get("ghost"); err == nil {
		t.Error("missing page readable")
	}
}

func TestFlushAnyOrderAnyTime(t *testing.T) {
	// Physiological freedom: pages flush individually in arbitrary order.
	m := newManager(t)
	m.Set("a", []byte("1"))
	m.Set("b", []byte("2"))
	m.Update("a", op.FuncAppend, []byte("x"))
	if err := m.FlushPage("b"); err != nil {
		t.Fatal(err)
	}
	if err := m.FlushPage("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.FlushPage("a"); err != nil { // clean page: no-op
		t.Fatal(err)
	}
	sv, err := m.Store().Read("a")
	if err != nil || string(sv.Val) != "1x" {
		t.Errorf("stable a = %+v, %v", sv, err)
	}
	// WAL: the log is forced at least through a's pageLSN.
	if m.Log().StableLSN() < sv.VSI {
		t.Error("WAL violated")
	}
}

func TestCrashRecovery(t *testing.T) {
	m := newManager(t)
	m.Set("a", []byte("base"))
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	m.Update("a", op.FuncAppend, []byte("+1"))
	m.Set("b", []byte("new"))
	if err := m.Log().Force(); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	st, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Redone != 2 {
		t.Errorf("Redone = %d, want 2", st.Redone)
	}
	a, _ := m.Get("a")
	b, _ := m.Get("b")
	if string(a) != "base+1" || string(b) != "new" {
		t.Errorf("recovered a=%q b=%q", a, b)
	}
}

func TestRecoverySkipsFlushedPages(t *testing.T) {
	m := newManager(t)
	m.Set("a", []byte("1"))
	m.Set("b", []byte("2"))
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	m.Checkpoint()
	m.Update("b", op.FuncAppend, []byte("!"))
	if err := m.Log().Force(); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	st, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if st.Redone != 1 {
		t.Errorf("Redone = %d, want 1 (only b's update)", st.Redone)
	}
	if st.Scanned > 1 {
		t.Errorf("Scanned = %d; checkpoint + flush records must shorten the scan", st.Scanned)
	}
}

func TestUnforcedTailLost(t *testing.T) {
	m := newManager(t)
	m.Set("a", []byte("durable"))
	if err := m.Log().Force(); err != nil {
		t.Fatal(err)
	}
	m.Set("b", []byte("volatile"))
	m.Crash()
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("b"); err == nil {
		t.Error("unforced page survived crash")
	}
	a, err := m.Get("a")
	if err != nil || string(a) != "durable" {
		t.Errorf("a = %q, %v", a, err)
	}
}

func TestRandomWorkloadCrashRecovery(t *testing.T) {
	// Flushes and checkpoints also force the log, so "durable" means
	// "value after the last operation at or below StableLSN at crash";
	// track per-operation (LSN, page, value) to compute it exactly.
	type event struct {
		lsn  op.SI
		page string
		val  []byte
	}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := newManager(t)
		oracle := map[string][]byte{}
		var events []event
		pages := []string{"p0", "p1", "p2", "p3"}
		record := func(p string) {
			events = append(events, event{
				lsn:  m.Log().NextLSN() - 1,
				page: p,
				val:  append([]byte(nil), oracle[p]...),
			})
		}
		for _, p := range pages {
			m.Set(PageID(p), []byte(p))
			oracle[p] = []byte(p)
			record(p)
		}
		if err := m.Log().Force(); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 60; step++ {
			p := pages[rng.Intn(len(pages))]
			switch rng.Intn(4) {
			case 0:
				v := []byte(fmt.Sprintf("set%d", step))
				m.Set(PageID(p), v)
				oracle[p] = v
			default:
				d := []byte{byte(step)}
				m.Update(PageID(p), op.FuncAppend, d)
				oracle[p] = append(append([]byte(nil), oracle[p]...), d...)
			}
			record(p)
			if rng.Intn(6) == 0 {
				m.FlushPage(PageID(p))
			}
			if rng.Intn(10) == 0 {
				m.Checkpoint()
			}
			if rng.Intn(5) == 0 {
				if err := m.Log().Force(); err != nil {
					t.Fatal(err)
				}
			}
		}
		horizon := m.Log().StableLSN()
		durable := map[string][]byte{}
		for _, e := range events {
			if e.lsn <= horizon {
				durable[e.page] = e.val
			}
		}
		m.Crash()
		if _, err := m.Recover(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, p := range pages {
			got, err := m.Get(PageID(p))
			if err != nil || !op.Equal(got, durable[p]) {
				t.Fatalf("seed %d: page %s = %q (%v), want %q", seed, p, got, err, durable[p])
			}
		}
	}
}
