package sim

import (
	"flag"
	"testing"
)

var (
	shipConfigFlag   = flag.String("ship.config", "", "explorer config name for TestShipScheduleReplay")
	shipScheduleFlag = flag.String("ship.schedule", "", "ship schedule for TestShipScheduleReplay")
)

// TestShipCrashExplorer sweeps the ship-schedule space for every engine
// configuration: primary crash + failover, standby crash + restart, and the
// four wire faults at shipped-batch boundaries.  Any failure prints a
// one-line repro command.
func TestShipCrashExplorer(t *testing.T) {
	stride := 3
	if testing.Short() {
		stride = 29
	}
	for _, cfg := range ExplorerConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := ExploreShip(cfg, stride)
			if err != nil {
				t.Fatalf("harness: %v", err)
			}
			t.Logf("%s: %d batch boundaries, %d schedules", rep.Config, rep.Boundaries, rep.Schedules)
			if rep.Boundaries < 20 {
				t.Errorf("only %d batch boundaries — the workload should ship far more", rep.Boundaries)
			}
			for _, f := range rep.Failures {
				t.Errorf("%s", f)
			}
		})
	}
}

// TestShipScheduleReplay re-runs a single ship schedule named on the command
// line; it is the target of ShipScheduleFailure.Repro.
func TestShipScheduleReplay(t *testing.T) {
	if *shipConfigFlag == "" && *shipScheduleFlag == "" {
		t.Skip("no -ship.config/-ship.schedule; this test replays explorer repros")
	}
	if *shipMixFlag != "" {
		if err := ReplayShipMixSchedule(*shipConfigFlag, *shipMixFlag, *shipScheduleFlag); err != nil {
			t.Fatalf("schedule %q (mix %q) on %q: %v\n", *shipScheduleFlag, *shipMixFlag, *shipConfigFlag, err)
		}
		return
	}
	if err := ReplayShipSchedule(*shipConfigFlag, *shipScheduleFlag); err != nil {
		t.Fatalf("schedule %q on %q: %v\n", *shipScheduleFlag, *shipConfigFlag, err)
	}
}

// TestShipScheduleParsing pins the schedule grammar the repro commands rely
// on.
func TestShipScheduleParsing(t *testing.T) {
	good := []string{"none", "", "primary-crash@0", "standby-crash@17", "ship@3:drop", "ship@0:reorder=0"}
	for _, text := range good {
		if _, err := parseShipSchedule(text); err != nil {
			t.Errorf("parseShipSchedule(%q): %v", text, err)
		}
	}
	bad := []string{"primary-crash@", "primary-crash@-1", "standby-crash@x", "ship@0:melt", "bogus"}
	for _, text := range bad {
		if _, err := parseShipSchedule(text); err == nil {
			t.Errorf("parseShipSchedule(%q) accepted", text)
		}
	}
	for _, sched := range []shipSchedule{
		{kind: "count"},
		{kind: "primary-crash", boundary: 4},
		{kind: "standby-crash", boundary: 0},
		{kind: "fault", token: "ship@2:dup"},
	} {
		back, err := parseShipSchedule(sched.String())
		if err != nil {
			t.Fatalf("round trip %q: %v", sched.String(), err)
		}
		if back.String() != sched.String() {
			t.Errorf("round trip %q -> %q", sched.String(), back.String())
		}
	}
}
