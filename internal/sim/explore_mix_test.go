package sim

import (
	"flag"
	"strings"
	"testing"

	"logicallog/internal/workload"
)

var (
	faultMixFlag = flag.String("fault.mix", "", "scenario mix for TestCrashScheduleReplay (empty = default script)")
	shipMixFlag  = flag.String("ship.mix", "", "scenario mix for TestShipScheduleReplay (empty = default script)")
)

// sweepMixes returns the scenario mixes the explorer sweeps in CI: the
// acceptance floor is two, and the three built-ins stress different domain
// paths (splits and merges vs flushes and compactions vs leaf-chain scans).
func sweepMixes(t *testing.T) []string {
	t.Helper()
	if testing.Short() {
		return []string{"point-lookup-heavy", "write-burst"}
	}
	return workload.MixNames()
}

// TestMixScheduleExplorer sweeps the crash-schedule space with the scenario
// mixes driving the B+tree and LSM domains, for every engine configuration.
// Beyond the oracle and explainability checks, every recovered state must
// reopen both domains, pass their structural invariant checks, and scan
// cleanly end to end.
func TestMixScheduleExplorer(t *testing.T) {
	stride := 5
	if testing.Short() {
		stride = 19
	}
	for _, cfg := range ExplorerConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			for _, mixName := range sweepMixes(t) {
				rep, err := ExploreMix(cfg, mixName, stride)
				if err != nil {
					t.Fatalf("%s: harness: %v", mixName, err)
				}
				total := rep.WALBoundaries + rep.StableBoundaries
				if total <= 100 {
					t.Errorf("%s: only %d I/O boundaries (%d WAL + %d stable); the mix no longer exercises the fault space",
						mixName, total, rep.WALBoundaries, rep.StableBoundaries)
				}
				t.Logf("%s/%s: %d schedules over %d WAL + %d stable + %d stream boundaries",
					cfg.Name, mixName, rep.Schedules, rep.WALBoundaries, rep.StableBoundaries, rep.StreamBoundaries)
				for _, f := range rep.Failures {
					t.Errorf("schedule failed: %v", f)
				}
			}
		})
	}
}

// TestShipMixScheduleExplorer sweeps the ship-schedule space with the
// scenario mixes on the primary: machine crashes and wire faults at
// shipped-batch boundaries, then domain-level checks on the promoted
// standby.
func TestShipMixScheduleExplorer(t *testing.T) {
	stride := 11
	if testing.Short() {
		stride = 43
	}
	for _, cfg := range ExplorerConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			for _, mixName := range sweepMixes(t) {
				rep, err := ExploreShipMix(cfg, mixName, stride)
				if err != nil {
					t.Fatalf("%s: harness: %v", mixName, err)
				}
				t.Logf("%s/%s: %d batch boundaries, %d schedules", cfg.Name, mixName, rep.Boundaries, rep.Schedules)
				if rep.Boundaries < 20 {
					t.Errorf("%s: only %d batch boundaries — the mix should ship far more", mixName, rep.Boundaries)
				}
				for _, f := range rep.Failures {
					t.Errorf("%s", f)
				}
			}
		})
	}
}

// TestMixFailureRepro pins the repro-line format: a mix failure's command
// must name the mix so the replay test reconstructs the same schedule.
func TestMixFailureRepro(t *testing.T) {
	f := ScheduleFailure{Config: "rW-identity-rSI", Mix: "write-burst", Token: "wal@3:torn=3"}
	for _, want := range []string{"-fault.config", "-fault.mix", "-fault.token", "write-burst", "wal@3:torn=3"} {
		if !strings.Contains(f.Repro(), want) {
			t.Errorf("crash repro %q lacks %q", f.Repro(), want)
		}
	}
	sf := ShipScheduleFailure{Config: "physio-vSI", Mix: "scan-heavy", Schedule: "primary-crash@4"}
	for _, want := range []string{"-ship.config", "-ship.mix", "-ship.schedule", "scan-heavy", "primary-crash@4"} {
		if !strings.Contains(sf.Repro(), want) {
			t.Errorf("ship repro %q lacks %q", sf.Repro(), want)
		}
	}
	// Default-script failures keep the old two-flag form.
	plain := ScheduleFailure{Config: "rW-identity-rSI", Token: "wal@3:crash"}
	if strings.Contains(plain.Repro(), "-fault.mix") {
		t.Errorf("default-script repro %q names a mix", plain.Repro())
	}
}

// TestMixReplayRoundTrip replays single mix schedules through the public
// replay entry points (the targets of the repro lines), including a
// fault-free counting run and one injected fault per channel.
func TestMixReplayRoundTrip(t *testing.T) {
	for _, token := range []string{"", "wal@40:crash", "wal@25:torn=3", "stable@2:crash"} {
		if err := ReplayMixSchedule("rW-identity-rSI", "write-burst", token); err != nil {
			t.Errorf("ReplayMixSchedule(%q): %v", token, err)
		}
	}
	for _, sched := range []string{"none", "primary-crash@2", "standby-crash@1", "ship@1:drop"} {
		if err := ReplayShipMixSchedule("rW-identity-rSI", "point-lookup-heavy", sched); err != nil {
			t.Errorf("ReplayShipMixSchedule(%q): %v", sched, err)
		}
	}
}
