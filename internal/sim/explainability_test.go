package sim

import (
	"errors"
	"io"
	"math/rand"
	"testing"

	"logicallog/internal/cache"
	"logicallog/internal/core"
	"logicallog/internal/installgraph"
	"logicallog/internal/op"
	"logicallog/internal/recovery"
	"logicallog/internal/stable"
	"logicallog/internal/wal"
	"logicallog/internal/writegraph"
)

// TestStableStateAlwaysExplainable checks the paper's Theorem 3 directly:
// after any interleaving of operations and PurgeCache installs, the stable
// database is *explainable* — some prefix set I of the durable history's
// installation graph explains it (every object exposed by I holds exactly
// the value it has after the last operation of I).
//
// The check uses the exhaustive installation-graph oracle over all
// downward-closed subsets, so histories are kept small (≤ 14 operations) and
// many random interleavings are tried instead.
func TestStableStateAlwaysExplainable(t *testing.T) {
	objects := []op.ObjectID{"x", "y", "z"}
	for _, policy := range []writegraph.Policy{writegraph.PolicyRW, writegraph.PolicyW} {
		for _, seed := range seeds(t, 1, 41) {
			strat := cache.StrategyIdentityWrite
			if policy == writegraph.PolicyW {
				strat = cache.StrategyShadow
			}
			eng, err := core.New(core.Options{
				Policy: policy, Strategy: strat,
				RedoTest: recovery.TestRSI, LogInstalls: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			// Pre-history: create the objects, install them, and truncate
			// the creations off the log.  The objects' base values then
			// exist only in the stable database, which keeps the
			// explainability check non-vacuous (with blind creations still
			// on the log, I = {} would explain any state whatsoever).
			for i, x := range objects {
				if err := eng.Execute(op.NewPhysicalWrite(x, []byte{byte(i + 1)})); err != nil {
					t.Fatal(err)
				}
			}
			if err := eng.FlushAll(); err != nil {
				t.Fatal(err)
			}
			if err := eng.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			initial := map[op.ObjectID][]byte{}
			for id, v := range eng.Store().Snapshot() {
				initial[id] = v.Val
			}
			nops := 4 + rng.Intn(8)
			for i := 0; i < nops; i++ {
				if err := eng.Execute(smallOp(rng, objects, len(objects)+i)); err != nil {
					t.Fatal(err)
				}
				if rng.Intn(3) == 0 {
					if err := eng.InstallOne(); err != nil {
						t.Fatalf("policy %v seed %d: %v", policy, seed, err)
					}
				}
			}
			// A final force so the durable history includes every logged
			// operation (identity writes included).
			if err := eng.Log().Force(); err != nil {
				t.Fatal(err)
			}
			checkExplainable(t, eng, policy, seed, initial)
		}
	}
}

func smallOp(rng *rand.Rand, objects []op.ObjectID, i int) *op.Operation {
	x := objects[rng.Intn(len(objects))]
	y := objects[rng.Intn(len(objects))]
	// The first few ops create the objects (blind physical writes work on
	// absent objects, so creation order is unconstrained).
	if i < len(objects) {
		return op.NewPhysicalWrite(objects[i], []byte{byte(i + 1)})
	}
	switch rng.Intn(4) {
	case 0:
		return op.NewPhysicalWrite(x, []byte{byte(rng.Intn(200) + 1)})
	case 1:
		return op.NewPhysioWrite(x, op.FuncAppend, []byte{byte(rng.Intn(256))})
	case 2:
		if x == y {
			return op.NewPhysioWrite(x, op.FuncAppend, []byte{3})
		}
		return op.NewLogical(op.FuncXor, op.EncodeParams([]byte(y), []byte(x)),
			[]op.ObjectID{x, y}, []op.ObjectID{y})
	default:
		if x == y {
			return op.NewPhysioWrite(x, op.FuncAppend, []byte{4})
		}
		return op.NewLogical(op.FuncCopy, []byte(x), []op.ObjectID{y}, []op.ObjectID{x})
	}
}

// TestFlushOrderViolationUnexplainable is the negative control for the
// oracle and the paper's core motivation: if a (buggy) cache manager flushed
// operation B's output X without first flushing A's output Y — the order the
// write graph forbids in Figure 1 — the stable state is unexplainable, and
// the oracle says so.
func TestFlushOrderViolationUnexplainable(t *testing.T) {
	eng, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Execute(op.NewPhysicalWrite("X", []byte{1})); err != nil {
		t.Fatal(err)
	}
	if err := eng.Execute(op.NewPhysicalWrite("Y", []byte{2})); err != nil {
		t.Fatal(err)
	}
	if err := eng.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Truncate the creations off the log: the pre-history values of X and Y
	// now exist only in the stable database.  (With the blind creations
	// still on the log, every state would be trivially explainable by
	// I = {} — everything could be re-created from scratch.)
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	initial := map[op.ObjectID][]byte{}
	for id, v := range eng.Store().Snapshot() {
		initial[id] = v.Val
	}
	// A: Y <- Y xor X; B: X <- copy(Y).
	if err := eng.Execute(op.NewLogical(op.FuncXor, op.EncodeParams([]byte("Y"), []byte("X")),
		[]op.ObjectID{"X", "Y"}, []op.ObjectID{"Y"})); err != nil {
		t.Fatal(err)
	}
	if err := eng.Execute(op.NewLogical(op.FuncCopy, []byte("X"),
		[]op.ObjectID{"Y"}, []op.ObjectID{"X"})); err != nil {
		t.Fatal(err)
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}

	// Violate the flush order behind the cache manager's back: write B's
	// cached X result to the stable store while A's Y result stays unflushed.
	xVal, err := eng.Get("X")
	if err != nil {
		t.Fatal(err)
	}
	snap := eng.Store().Snapshot()
	snap["X"] = stable.Versioned{Val: xVal, VSI: 4}
	eng.Store().Restore(snap)

	// The oracle must reject this state.
	sc, _ := eng.Log().Scan(0)
	var history []*op.Operation
	for {
		rec, err := sc.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Type == wal.RecOperation {
			history = append(history, rec.Op)
		}
	}
	ig, err := installgraph.Build(history)
	if err != nil {
		t.Fatal(err)
	}
	S := map[op.ObjectID][]byte{}
	for id, v := range eng.Store().Snapshot() {
		S[id] = v.Val
	}
	_, found, err := ig.FindExplanation(eng.Registry(), S, initial, ig.TouchedObjects(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("flush-order-violating stable state was explainable; the oracle has no teeth")
	}

	// Control: the state the cache manager would actually produce — Y
	// flushed first (A installed), X stale — IS explainable.
	good := map[op.ObjectID]stable.Versioned{
		"X": {Val: initial["X"], VSI: 1},
		"Y": {Val: []byte{initial["X"][0] ^ initial["Y"][0]}, VSI: 3},
	}
	eng.Store().Restore(good)
	S = map[op.ObjectID][]byte{}
	for id, v := range eng.Store().Snapshot() {
		S[id] = v.Val
	}
	if _, found, err = ig.FindExplanation(eng.Registry(), S, initial, ig.TouchedObjects(), 16); err != nil || !found {
		t.Fatalf("the legal flush order's state must be explainable (found=%v, err=%v)", found, err)
	}
}

func checkExplainable(t *testing.T, eng *core.Engine, policy writegraph.Policy, seed int64, initial map[op.ObjectID][]byte) {
	t.Helper()
	// Durable history from the log itself (includes CM identity writes).
	sc, err := eng.Log().Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	var history []*op.Operation
	for {
		rec, err := sc.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Type == wal.RecOperation {
			history = append(history, rec.Op)
		}
	}
	if len(history) > 16 {
		t.Fatalf("history too large for the exhaustive oracle: %d", len(history))
	}
	ig, err := installgraph.Build(history)
	if err != nil {
		t.Fatal(err)
	}
	// Stable state snapshot.
	S := map[op.ObjectID][]byte{}
	for id, v := range eng.Store().Snapshot() {
		S[id] = v.Val
	}
	I, found, err := ig.FindExplanation(eng.Registry(), S, initial, ig.TouchedObjects(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatalf("policy %v seed %d: stable state is UNEXPLAINABLE\nhistory: %v\nstate: %v",
			policy, seed, history, S)
	}
	// Sanity: the explanation is a genuine prefix set.
	if !ig.IsPrefixSet(I) {
		t.Fatalf("policy %v seed %d: oracle returned a non-prefix set", policy, seed)
	}
}
