package sim

import (
	"math/rand"
	"testing"

	"logicallog/internal/cache"
	"logicallog/internal/core"
	"logicallog/internal/op"
	"logicallog/internal/recovery"
	"logicallog/internal/writegraph"
)

// TestRegressionNotxForceSeed19 pins the WAL-discipline bug found by the
// crash matrix at seed 19: installing a node with unexposed (Notx) objects
// must force the blind-write log records that made those objects unexposed.
// After the flush, those records are the objects' only recovery source; if
// they remain in the volatile log tail, a crash leaves the stable database
// claiming operations installed whose written objects are exposed in the
// *durable* history yet stale on disk — an unexplainable state.
func TestRegressionNotxForceSeed19(t *testing.T) {
	opts := core.Options{
		Policy: writegraph.PolicyRW, Strategy: cache.StrategyIdentityWrite,
		RedoTest: recovery.TestRSI, LogInstalls: true,
	}
	sc := DefaultScenario(19)
	eng, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	if err := driveWorkload(eng, rng, sc); err != nil {
		t.Fatal(err)
	}
	horizon := eng.Log().StableLSN()
	eng.Crash()
	if _, err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := VerifyAgainstOracle(eng, horizon); err != nil {
		t.Fatal(err)
	}
}

// TestRegressionInstallForcesNotxWriters is the minimal deterministic form:
// node A installs with X unexposed thanks to blind writer C; C's record must
// be durable after the install even though nothing forced the log
// explicitly.
func TestRegressionInstallForcesNotxWriters(t *testing.T) {
	eng, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	exec := func(o *op.Operation) {
		t.Helper()
		if err := eng.Execute(o); err != nil {
			t.Fatal(err)
		}
	}
	exec(op.NewPhysicalWrite("X", []byte("xA")))                                          // A
	exec(op.NewLogical(op.FuncCopy, []byte("Z"), []op.ObjectID{"X"}, []op.ObjectID{"Z"})) // B
	exec(op.NewPhysicalWrite("X", []byte("xC")))                                          // C

	// Install B's node then A's node (vars empty, X in Notx).
	wg := eng.Cache().WriteGraph()
	nb, _ := wg.NodeOfOp(2)
	if _, err := eng.Cache().InstallNode(nb); err != nil {
		t.Fatal(err)
	}
	na, _ := wg.NodeOfOp(1)
	if _, err := eng.Cache().InstallNode(na); err != nil {
		t.Fatal(err)
	}
	// C's record (LSN 3) justifies X's unexposedness; it must be durable.
	if eng.Log().StableLSN() < 3 {
		t.Fatalf("StableLSN = %d: blind-writer record not forced by install", eng.Log().StableLSN())
	}
	// And a crash right now must recover X to C's value.
	eng.Crash()
	if _, err := eng.Recover(); err != nil {
		t.Fatal(err)
	}
	v, err := eng.Get("X")
	if err != nil || string(v) != "xC" {
		t.Errorf("recovered X = %q, %v", v, err)
	}
}
