// Package sim provides the crash-testing machinery used to validate the
// recovery system end to end: a pure re-execution oracle, randomized
// workload drivers with crash points at arbitrary steps, and the comparison
// logic that checks a recovered database against the oracle.
//
// The correctness property checked is the paper's: after a crash, the
// durable log's operations (a prefix in conflict order, because the WAL
// protocol forces the log before any installation) replayed from the initial
// state must agree with the recovered database on every live object.
package sim

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"logicallog/internal/core"
	"logicallog/internal/op"
	"logicallog/internal/wal"
)

// Oracle replays operations against a pure in-memory state.
type Oracle struct {
	reg   *op.Registry
	state map[op.ObjectID][]byte
	live  map[op.ObjectID]bool
}

// NewOracle returns an empty oracle over the given registry.
func NewOracle(reg *op.Registry) *Oracle {
	return &Oracle{
		reg:   reg,
		state: make(map[op.ObjectID][]byte),
		live:  make(map[op.ObjectID]bool),
	}
}

// Apply replays one operation.
func (o *Oracle) Apply(x *op.Operation) error {
	reads := make(map[op.ObjectID][]byte, len(x.ReadSet))
	for _, r := range x.ReadSet {
		if !o.live[r] {
			return fmt.Errorf("sim: oracle: %s reads dead object %q", x, r)
		}
		reads[r] = o.state[r]
	}
	writes, err := o.reg.Apply(x, reads)
	if err != nil {
		return err
	}
	for w, v := range writes {
		if x.Kind == op.KindDelete {
			delete(o.state, w)
			o.live[w] = false
			continue
		}
		o.state[w] = v
		o.live[w] = true
	}
	return nil
}

// Value returns the oracle's value for x and whether x is live.
func (o *Oracle) Value(x op.ObjectID) ([]byte, bool) {
	if !o.live[x] {
		return nil, false
	}
	return o.state[x], true
}

// Live returns the live object ids (unordered).
func (o *Oracle) Live() []op.ObjectID {
	var out []op.ObjectID
	for x, l := range o.live {
		if l {
			out = append(out, x)
		}
	}
	return op.Canonicalize(out)
}

// Scenario parameterizes a randomized crash test.
type Scenario struct {
	// Seed drives all randomness; equal seeds replay identical scenarios.
	Seed int64
	// Objects is the number of objects in play.
	Objects int
	// Steps is the number of workload steps before the crash.
	Steps int
	// InstallEvery gives the mean steps between cache installs (0 = never).
	InstallEvery int
	// CheckpointEvery gives the mean steps between checkpoints (0 = never).
	CheckpointEvery int
	// ForceEvery gives the mean steps between explicit log forces
	// (0 = only the forces installation triggers).
	ForceEvery int
	// DeletePercent is the percentage of steps that delete an object.
	DeletePercent int
	// ValueSize is the object value size in bytes.
	ValueSize int
	// StepHook, when set, runs at the start of every step (before the
	// step's install/checkpoint/force/op) — cmd/llship pumps its log
	// shipper here.  StepHook does not consume scenario randomness, so a
	// seed replays the same workload with or without it.
	StepHook func(step int) error
}

// DefaultScenario returns a scenario exercising all machinery.
func DefaultScenario(seed int64) Scenario {
	return Scenario{
		Seed:            seed,
		Objects:         6,
		Steps:           80,
		InstallEvery:    7,
		CheckpointEvery: 23,
		ForceEvery:      11,
		DeletePercent:   5,
		ValueSize:       16,
	}
}

// CrashTest drives a random workload against an engine built from opts,
// crashes it, recovers, and verifies the recovered state against the oracle
// replay of the durable history.  It returns a descriptive error on any
// divergence.
func CrashTest(opts core.Options, sc Scenario) error {
	if opts.RedoWorkers == 0 {
		// Exercise serial and parallel redo alike.  A separate rng keeps the
		// workload stream (and thus every pinned-seed regression scenario)
		// byte-identical to what it was before worker randomization existed.
		workerRNG := rand.New(rand.NewSource(sc.Seed ^ 0x5ed0c0de))
		opts.RedoWorkers = []int{1, 2, 4, 8}[workerRNG.Intn(4)]
	}
	eng, err := core.New(opts)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	if err := driveWorkload(eng, rng, sc); err != nil {
		return err
	}

	stableHorizon := eng.Log().StableLSN()
	eng.Crash()
	if _, err := eng.Recover(); err != nil {
		return fmt.Errorf("sim: recover: %w", err)
	}
	if err := VerifyAgainstOracle(eng, stableHorizon); err != nil {
		return err
	}

	// Idempotence (Theorem 2): crash immediately after recovery (nothing
	// new forced or flushed beyond what recovery did) and recover again.
	eng.Crash()
	if _, err := eng.Recover(); err != nil {
		return fmt.Errorf("sim: second recover: %w", err)
	}
	if err := VerifyAgainstOracle(eng, stableHorizon); err != nil {
		return fmt.Errorf("sim: after second recovery: %w", err)
	}

	// Finally the recovered engine must be able to flush everything and
	// keep the same values.
	if err := eng.FlushAll(); err != nil {
		return fmt.Errorf("sim: post-recovery flush: %w", err)
	}
	return VerifyAgainstOracle(eng, stableHorizon)
}

// VerifyAgainstOracle replays the engine's durable history (ops with
// LSN <= horizon) on an oracle and compares every live object's value with
// the engine's current (volatile) view.
func VerifyAgainstOracle(eng *core.Engine, horizon op.SI) error {
	return VerifyHistory(eng.Registry(), eng.History(), eng, horizon)
}

// VerifyHistory replays hist (ops with LSN <= horizon) on an oracle and
// compares every live object's value with eng's current view.  Splitting the
// history source from the engine under test lets a promoted standby be
// checked against the *primary's* execution history — the replication
// correctness claim is exactly that the standby recovers the same state a
// single node would from the same log prefix.
func VerifyHistory(reg *op.Registry, hist []*op.Operation, eng *core.Engine, horizon op.SI) error {
	// A crash loses unforced tail records, and the restarted log reassigns
	// their LSNs (wal.Log.Restart rewinds to the durable horizon so the
	// durable log stays gap-free).  An LSN is only reused when its earlier
	// holder was never durable, so of the history entries sharing an LSN
	// exactly the last one is the durable operation — replay that one.
	lastIdx := make(map[op.SI]int, len(hist))
	for i, o := range hist {
		if o.LSN != op.NilSI {
			lastIdx[o.LSN] = i
		}
	}
	// Log absorption elides a blind write into a later one, leaving a
	// valueless tombstone at its LSN.  Tombstone and absorber become durable
	// in one force batch, but a horizon can still land between them — a
	// shipped prefix sliced mid-batch, a bit-flipped or torn batch write cut
	// between their frames.  At such horizons the durable log simply does not
	// contain the absorbed operation, so log-prefix replay (what eng
	// recovered) omits it; the execution-history oracle must omit it too.
	elided, err := danglingAbsorbed(eng.Log(), horizon)
	if err != nil {
		return fmt.Errorf("sim: oracle elision scan: %w", err)
	}
	oracle := NewOracle(reg)
	for i, o := range hist {
		if o.LSN == op.NilSI || o.LSN > horizon || lastIdx[o.LSN] != i || elided[o.LSN] {
			continue
		}
		if err := oracle.Apply(o); err != nil {
			return fmt.Errorf("sim: oracle replay: %w", err)
		}
	}
	for _, x := range oracle.Live() {
		want, _ := oracle.Value(x)
		got, err := eng.Get(x)
		if err != nil {
			return fmt.Errorf("sim: recovered engine lost object %q: %w", x, err)
		}
		if !op.Equal(got, want) {
			return fmt.Errorf("sim: object %q diverged: engine %v, oracle %v", x, got, want)
		}
	}
	return nil
}

// danglingAbsorbed scans eng's durable log and returns the LSNs of
// absorption tombstones at or below horizon whose absorbing write lies
// beyond it.  Absorption legality guarantees no record inside the elision
// interval touches the object, so the only record that could resupply the
// absorbed value by horizon is a later write of that object; when none
// exists, the operation is unrecoverable from the log prefix by design and
// the oracle replay must skip it.
func danglingAbsorbed(l *wal.Log, horizon op.SI) (map[op.SI]bool, error) {
	sc, err := l.Scan(0)
	if err != nil {
		return nil, err
	}
	tombs := make(map[op.SI]op.ObjectID)
	rewritten := make(map[op.ObjectID]op.SI) // highest write LSN <= horizon
	for {
		r, err := sc.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if r.LSN > horizon {
			break
		}
		switch r.Type {
		case wal.RecAbsorbed:
			tombs[r.LSN] = r.Absorbed.Object
		case wal.RecOperation:
			for _, w := range r.Op.WriteSet {
				rewritten[w] = r.LSN
			}
		}
	}
	elided := make(map[op.SI]bool)
	for lsn, obj := range tombs {
		if rewritten[obj] <= lsn {
			elided[lsn] = true
		}
	}
	return elided, nil
}

// DriveWorkload executes the scenario's random workload against eng (without
// crashing it) — the building block CrashTest and cmd/llrun share.
func DriveWorkload(eng *core.Engine, sc Scenario) error {
	return driveWorkload(eng, rand.New(rand.NewSource(sc.Seed)), sc)
}

// driveWorkload executes sc.Steps random steps.
func driveWorkload(eng *core.Engine, rng *rand.Rand, sc Scenario) error {
	objects := make([]op.ObjectID, sc.Objects)
	for i := range objects {
		objects[i] = op.ObjectID(fmt.Sprintf("obj%02d", i))
	}
	live := make(map[op.ObjectID]bool)
	liveList := func() []op.ObjectID {
		var out []op.ObjectID
		for _, x := range objects {
			if live[x] {
				out = append(out, x)
			}
		}
		return out
	}

	for step := 0; step < sc.Steps; step++ {
		if sc.StepHook != nil {
			if err := sc.StepHook(step); err != nil {
				return err
			}
		}
		if sc.InstallEvery > 0 && rng.Intn(sc.InstallEvery) == 0 {
			if err := eng.InstallOne(); err != nil {
				return fmt.Errorf("sim: install: %w", err)
			}
		}
		if sc.CheckpointEvery > 0 && rng.Intn(sc.CheckpointEvery) == 0 {
			if err := eng.Checkpoint(); err != nil {
				return fmt.Errorf("sim: checkpoint: %w", err)
			}
		}
		if sc.ForceEvery > 0 && rng.Intn(sc.ForceEvery) == 0 {
			if err := eng.Log().Force(); err != nil {
				return err
			}
		}
		o := randomStep(rng, objects, live, liveList(), sc)
		if o == nil {
			continue
		}
		if err := eng.Execute(o); err != nil {
			return fmt.Errorf("sim: execute %s: %w", o, err)
		}
		for _, x := range o.WriteSet {
			live[x] = o.Kind != op.KindDelete
		}
	}
	return nil
}

func randomStep(rng *rand.Rand, objects []op.ObjectID, live map[op.ObjectID]bool, liveNow []op.ObjectID, sc Scenario) *op.Operation {
	// Create dead objects opportunistically.
	var dead []op.ObjectID
	for _, x := range objects {
		if !live[x] {
			dead = append(dead, x)
		}
	}
	if len(liveNow) < 2 && len(dead) > 0 {
		v := make([]byte, sc.ValueSize)
		rng.Read(v)
		return op.NewCreate(dead[rng.Intn(len(dead))], v)
	}
	if sc.DeletePercent > 0 && rng.Intn(100) < sc.DeletePercent && len(liveNow) > 2 {
		return op.NewDelete(liveNow[rng.Intn(len(liveNow))])
	}
	if len(dead) > 0 && rng.Intn(10) == 0 {
		v := make([]byte, sc.ValueSize)
		rng.Read(v)
		return op.NewCreate(dead[rng.Intn(len(dead))], v)
	}
	x := liveNow[rng.Intn(len(liveNow))]
	y := liveNow[rng.Intn(len(liveNow))]
	switch rng.Intn(6) {
	case 0: // physical blind write
		v := make([]byte, sc.ValueSize)
		rng.Read(v)
		return op.NewPhysicalWrite(x, v)
	case 1: // physiological self-transform
		return op.NewPhysioWrite(x, op.FuncAppend, []byte{byte(rng.Intn(256))})
	case 2, 3: // A-form logical: y <- y xor x
		if x == y {
			return op.NewPhysioWrite(x, op.FuncAppend, []byte{1})
		}
		return op.NewLogical(op.FuncXor, op.EncodeParams([]byte(y), []byte(x)),
			[]op.ObjectID{x, y}, []op.ObjectID{y})
	default: // B-form logical: x <- copy(y)
		if x == y {
			return op.NewPhysioWrite(x, op.FuncAppend, []byte{2})
		}
		return op.NewLogical(op.FuncCopy, []byte(x), []op.ObjectID{y}, []op.ObjectID{x})
	}
}
