package sim

import (
	"testing"

	"logicallog/internal/cache"
	"logicallog/internal/core"
	"logicallog/internal/op"
	"logicallog/internal/recovery"
	"logicallog/internal/writegraph"
)

func TestOracleBasics(t *testing.T) {
	reg := op.NewRegistry()
	o := NewOracle(reg)
	if err := o.Apply(op.NewCreate("X", []byte("v"))); err != nil {
		t.Fatal(err)
	}
	v, live := o.Value("X")
	if !live || string(v) != "v" {
		t.Errorf("Value = %q, %v", v, live)
	}
	if err := o.Apply(op.NewDelete("X")); err != nil {
		t.Fatal(err)
	}
	if _, live := o.Value("X"); live {
		t.Error("deleted object still live")
	}
	if len(o.Live()) != 0 {
		t.Errorf("Live = %v", o.Live())
	}
	// Reading a dead object errors.
	bad := op.NewLogical(op.FuncCopy, []byte("Y"), []op.ObjectID{"X"}, []op.ObjectID{"Y"})
	if err := o.Apply(bad); err == nil {
		t.Error("oracle applied a read of a dead object")
	}
}

// configs is the matrix of engine configurations all crash tests cover.
func configs() map[string]core.Options {
	return map[string]core.Options{
		"rW/identity/rSI": {
			Policy: writegraph.PolicyRW, Strategy: cache.StrategyIdentityWrite,
			RedoTest: recovery.TestRSI, LogInstalls: true,
		},
		"rW/shadow/rSI": {
			Policy: writegraph.PolicyRW, Strategy: cache.StrategyShadow,
			RedoTest: recovery.TestRSI, LogInstalls: true,
		},
		"rW/flushtxn/vSI": {
			Policy: writegraph.PolicyRW, Strategy: cache.StrategyFlushTxn,
			RedoTest: recovery.TestVSI, LogInstalls: true,
		},
		"W/shadow/vSI": {
			Policy: writegraph.PolicyW, Strategy: cache.StrategyShadow,
			RedoTest: recovery.TestVSI, LogInstalls: true,
		},
		"rW/identity/rSI/noinstalls": {
			Policy: writegraph.PolicyRW, Strategy: cache.StrategyIdentityWrite,
			RedoTest: recovery.TestRSI, LogInstalls: false,
		},
		"physio/vSI": {
			Policy: writegraph.PolicyRW, Strategy: cache.StrategyIdentityWrite,
			RedoTest: recovery.TestVSI, LogInstalls: true, Physiological: true,
		},
		"physio/rSI": {
			Policy: writegraph.PolicyRW, Strategy: cache.StrategyIdentityWrite,
			RedoTest: recovery.TestRSI, LogInstalls: true, Physiological: true,
		},
	}
	// Note deliberately absent: TestRedoAll.  Redo-all is sound only for
	// logs containing nothing but physical writes (Section 5's example);
	// our workloads include physiological self-transforms, whose blind
	// re-execution is not idempotent — running that configuration here
	// reproduces exactly the divergence the paper's vSI test exists to
	// prevent (see TestRedoAllOnPhysicalLog in internal/recovery).
}

// TestCrashRecoveryMatrix is the central end-to-end correctness test: for
// every engine configuration and many random seeds, run a mixed workload
// with random installs/checkpoints/forces, crash, recover (twice, checking
// idempotence), and compare against the pure re-execution oracle.
func TestCrashRecoveryMatrix(t *testing.T) {
	for name, opts := range configs() {
		opts := opts
		t.Run(name, func(t *testing.T) {
			for _, seed := range seeds(t, 1, 26) {
				if err := CrashTest(opts, DefaultScenario(seed)); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestCrashEveryStep crashes after each individual step of one scenario,
// maximizing coverage of crash points (including immediately after installs
// and checkpoints).
func TestCrashEveryStep(t *testing.T) {
	opts := core.Options{
		Policy: writegraph.PolicyRW, Strategy: cache.StrategyIdentityWrite,
		RedoTest: recovery.TestRSI, LogInstalls: true,
	}
	seed := pinnedSeed(t, 424242)
	for steps := 1; steps <= 60; steps++ {
		sc := DefaultScenario(seed)
		sc.Steps = steps
		if err := CrashTest(opts, sc); err != nil {
			t.Fatalf("crash after step %d: %v", steps, err)
		}
	}
}

// TestHeavyDeleteWorkload stresses the terminated-object path (Section 5's
// transient files / applications).
func TestHeavyDeleteWorkload(t *testing.T) {
	opts := core.Options{
		Policy: writegraph.PolicyRW, Strategy: cache.StrategyIdentityWrite,
		RedoTest: recovery.TestRSI, LogInstalls: true,
	}
	for _, seed := range seeds(t, 100, 110) {
		sc := DefaultScenario(seed)
		sc.DeletePercent = 30
		sc.Steps = 120
		if err := CrashTest(opts, sc); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestNoInstallNoCheckpoint exercises recovery of a log-only history (the
// stable store never written before the crash).
func TestNoInstallNoCheckpoint(t *testing.T) {
	opts := core.DefaultOptions()
	sc := DefaultScenario(7)
	sc.InstallEvery = 0
	sc.CheckpointEvery = 0
	sc.ForceEvery = 3
	if err := CrashTest(opts, sc); err != nil {
		t.Fatal(err)
	}
}

// TestAggressiveInstall exercises the opposite extreme: install after
// almost every operation.
func TestAggressiveInstall(t *testing.T) {
	opts := core.DefaultOptions()
	for _, seed := range seeds(t, 50, 56) {
		sc := DefaultScenario(seed)
		sc.InstallEvery = 1
		sc.CheckpointEvery = 5
		if err := CrashTest(opts, sc); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestVerifyAgainstOracleDetectsDivergence(t *testing.T) {
	// Negative control: corrupt the engine state and check the verifier
	// notices.
	eng, err := core.New(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Execute(op.NewCreate("X", []byte("good"))); err != nil {
		t.Fatal(err)
	}
	if err := eng.Log().Force(); err != nil {
		t.Fatal(err)
	}
	// Divergence: overwrite X without logging (bypassing the engine's own
	// Execute) by appending an unlogged operation to history... simplest:
	// execute a second op but verify against a horizon excluding it.
	if err := eng.Execute(op.NewPhysicalWrite("X", []byte("evil"))); err != nil {
		t.Fatal(err)
	}
	// Horizon 1: oracle sees only the create; engine value is "evil".
	if err := VerifyAgainstOracle(eng, 1); err == nil {
		t.Error("verifier missed a divergence")
	}
}
