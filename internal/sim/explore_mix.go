// Scenario-mix exploration: the crash-schedule and ship-schedule explorers
// re-targeted at the recoverable storage domains.  Instead of the flat
// object workload, each schedule drives a leaf-linked B+tree and an LSM
// tree through a named scenario mix (point-lookup-heavy, scan-heavy,
// write-burst, or a custom spec), so the injected faults land inside page
// splits, merges, memtable flushes, and multi-table compactions — the
// logical operations whose read sets span objects the driver later deletes.
// After recovery the usual oracle and explainability checks run, plus a
// domain-level pass: both trees must reopen, satisfy their structural
// invariants, and scan cleanly.
package sim

import (
	"fmt"
	"hash/fnv"

	"logicallog/internal/btree"
	"logicallog/internal/core"
	"logicallog/internal/fault"
	"logicallog/internal/lsm"
	"logicallog/internal/op"
	"logicallog/internal/workload"
)

// Mix-script parameters: small enough to keep the per-config, per-mix
// schedule count CI-sized, large enough that every mix drives page splits,
// memtable flushes, and at least one multi-table compaction.
const (
	mixBootSteps = 16
	mixSteps     = 120
	mixTreeName  = "mx"
	mixTreeOrder = 4
	mixSeedBase  = 0x5ce9a1
)

// mixReadyID marks the instant both domains finished bootstrapping.  Log
// prefixes are what crashes and promotions recover, so if this object
// survived, every bootstrap operation before it did too — the post-recovery
// domain checks key off it to avoid misreading a mid-bootstrap tear (meta
// without root, manifest without memtable) as a structural violation.
const mixReadyID = op.ObjectID("mix/ready")

func mixLSMOptions() lsm.Options { return lsm.Options{FlushThreshold: 6, Fanout: 3} }

// mixSeed derives a per-mix, per-domain driver seed.  FNV keeps it stable
// across runs and distinct across mixes, which is all determinism needs.
func mixSeed(mixName string, domain int) int64 {
	h := fnv.New32a()
	h.Write([]byte(mixName))
	return mixSeedBase + int64(h.Sum32()%100000)*2 + int64(domain)
}

// registerDomains installs the B+tree and LSM transforms if absent (the
// ship path pre-registers them on a shared primary/standby registry, the
// crash path registers on the engine's fresh one).
func registerDomains(reg *op.Registry) {
	if _, ok := reg.Lookup(btree.FuncInsertLeaf); !ok {
		btree.Register(reg)
	}
	if _, ok := reg.Lookup(lsm.FuncMemPut); !ok {
		lsm.Register(reg)
	}
}

// NewDomainRegistry returns a transform registry with both storage domains
// pre-registered.  llrun -scenario installs it on the primary's options so
// a -standby engine shares the domain FuncIDs before any record arrives.
func NewDomainRegistry() *op.Registry {
	reg := op.NewRegistry()
	registerDomains(reg)
	return reg
}

// withDomainRegistry returns cfg with a pre-registered transform registry,
// shared by every engine the schedule builds — the ship standby must be
// able to resolve domain FuncIDs before the primary's script ever runs.
func withDomainRegistry(cfg NamedConfig) NamedConfig {
	cfg.Opts.Registry = NewDomainRegistry()
	return cfg
}

// mixExploreScript returns the pre-crash script driving both domains
// through the mix.  Structure mirrors runExploreScript: a bootstrap phase
// flushed and truncated off the log (anchoring the explainability check),
// then interleaved driver steps with periodic forces, minimal installs,
// non-truncating checkpoints, and full purges.
func mixExploreScript(mix workload.Mix) exploreScript {
	return func(eng *core.Engine, rec *runRecorder, rogue RogueHook) error {
		registerDomains(eng.Registry())
		tree, err := btree.New(eng, mixTreeName, mixTreeOrder)
		if err != nil {
			return fmt.Errorf("btree new: %w", err)
		}
		kv, err := lsm.New(eng, mixTreeName, mixLSMOptions())
		if err != nil {
			return fmt.Errorf("lsm new: %w", err)
		}
		btDrv, err := workload.NewMixDriver(mix, mixSeed(mix.Name, 0))
		if err != nil {
			return fmt.Errorf("btree driver: %w", err)
		}
		lsmDrv, err := workload.NewMixDriver(mix, mixSeed(mix.Name, 1))
		if err != nil {
			return fmt.Errorf("lsm driver: %w", err)
		}

		// Phase 0: base population, then flush and truncate so the initial
		// domain state exists only in the stable database.
		if err := btDrv.Steps(tree, mixBootSteps); err != nil {
			return fmt.Errorf("btree bootstrap: %w", err)
		}
		if err := lsmDrv.Steps(kv, mixBootSteps); err != nil {
			return fmt.Errorf("lsm bootstrap: %w", err)
		}
		if err := eng.Execute(op.NewCreate(mixReadyID, []byte{1})); err != nil {
			return fmt.Errorf("ready marker: %w", err)
		}
		if err := eng.FlushAll(); err != nil {
			return fmt.Errorf("base flush: %w", err)
		}
		if err := eng.Checkpoint(); err != nil {
			return fmt.Errorf("base checkpoint: %w", err)
		}
		initial := make(map[op.ObjectID][]byte)
		for id, v := range eng.Store().Snapshot() {
			initial[id] = append([]byte(nil), v.Val...)
		}
		rec.initial = initial

		for step := 0; step < mixSteps; step++ {
			if rogue != nil {
				if err := rogue(step, eng); err != nil {
					return fmt.Errorf("rogue hook at step %d: %w", step, err)
				}
			}
			if step%3 == 1 {
				if err := eng.Log().Force(); err != nil {
					return fmt.Errorf("force at step %d: %w", step, err)
				}
			}
			if step%4 == 2 {
				if err := eng.InstallOne(); err != nil {
					return fmt.Errorf("install at step %d: %w", step, err)
				}
			}
			if step%17 == 11 {
				if err := eng.CheckpointOnly(); err != nil {
					return fmt.Errorf("checkpoint at step %d: %w", step, err)
				}
			}
			if step%23 == 19 {
				if err := eng.FlushAll(); err != nil {
					return fmt.Errorf("purge at step %d: %w", step, err)
				}
			}
			if err := btDrv.Step(tree); err != nil {
				return fmt.Errorf("btree step %d: %w", step, err)
			}
			if err := lsmDrv.Step(kv); err != nil {
				return fmt.Errorf("lsm step %d: %w", step, err)
			}
		}
		if err := eng.Log().Force(); err != nil {
			return fmt.Errorf("final force: %w", err)
		}
		return nil
	}
}

// checkMixDomains is the post-recovery domain pass: if the bootstrap marker
// survived (so both domains are fully present in the recovered prefix),
// reopen each, check its structural invariants, and scan it end to end.
// It runs after oracle verification, so a failure here means the recovered
// object values are right but the domain built atop them is not — a torn
// leaf chain, a manifest naming a lost table.  The check never mutates
// state: the post-check flush re-verification still sees the recovered
// image.
func checkMixDomains(eng *core.Engine) error {
	if _, err := eng.Get(mixReadyID); err != nil {
		return nil // crashed mid-bootstrap; no complete domain to check
	}
	tree, err := btree.Open(eng, mixTreeName)
	if err != nil {
		return fmt.Errorf("recovered btree open: %w", err)
	}
	if err := tree.Check(); err != nil {
		return fmt.Errorf("recovered btree: %w", err)
	}
	if err := tree.Scan(func(k, v []byte) bool { return true }); err != nil {
		return fmt.Errorf("recovered btree scan: %w", err)
	}
	kv, err := lsm.Open(eng, mixTreeName, mixLSMOptions())
	if err != nil {
		return fmt.Errorf("recovered lsm open: %w", err)
	}
	if err := kv.Check(); err != nil {
		return fmt.Errorf("recovered lsm: %w", err)
	}
	if err := kv.Range(nil, nil, func(k, v []byte) bool { return true }); err != nil {
		return fmt.Errorf("recovered lsm scan: %w", err)
	}
	return nil
}

// DriveMixWorkload is the llrun -scenario entry point: it drives the named
// scenario mix against a leaf-linked B+tree and an LSM tree on eng, with
// the same bootstrap-then-interleave shape the explorer uses.  hook (may be
// nil) runs before every step — llrun's standby pump.  Like DriveWorkload,
// it does not force the tail: a crash afterwards loses unforced steps,
// which is the demo's point.  VerifyMixDomains checks the recovered state.
func DriveMixWorkload(eng *core.Engine, mixName string, seed int64, steps int, hook func(step int) error) error {
	mix, err := workload.ParseMix(mixName)
	if err != nil {
		return err
	}
	registerDomains(eng.Registry())
	tree, err := btree.New(eng, mixTreeName, mixTreeOrder)
	if err != nil {
		return fmt.Errorf("btree new: %w", err)
	}
	kv, err := lsm.New(eng, mixTreeName, mixLSMOptions())
	if err != nil {
		return fmt.Errorf("lsm new: %w", err)
	}
	btDrv, err := workload.NewMixDriver(mix, seed)
	if err != nil {
		return err
	}
	lsmDrv, err := workload.NewMixDriver(mix, seed+1)
	if err != nil {
		return err
	}
	if err := btDrv.Steps(tree, mixBootSteps); err != nil {
		return fmt.Errorf("btree bootstrap: %w", err)
	}
	if err := lsmDrv.Steps(kv, mixBootSteps); err != nil {
		return fmt.Errorf("lsm bootstrap: %w", err)
	}
	if err := eng.Execute(op.NewCreate(mixReadyID, []byte{1})); err != nil {
		return fmt.Errorf("ready marker: %w", err)
	}
	if err := eng.FlushAll(); err != nil {
		return fmt.Errorf("base flush: %w", err)
	}
	if err := eng.Checkpoint(); err != nil {
		return fmt.Errorf("base checkpoint: %w", err)
	}
	for step := 0; step < steps; step++ {
		if hook != nil {
			if err := hook(step); err != nil {
				return fmt.Errorf("step hook at %d: %w", step, err)
			}
		}
		var err error
		switch {
		case step%3 == 1:
			err = eng.Log().Force()
		case step%4 == 2:
			err = eng.InstallOne()
		case step%17 == 11:
			err = eng.CheckpointOnly()
		case step%23 == 19:
			err = eng.FlushAll()
		}
		if err == nil {
			err = btDrv.Step(tree)
		}
		if err == nil {
			err = lsmDrv.Step(kv)
		}
		if err != nil {
			return fmt.Errorf("step %d: %w", step, err)
		}
	}
	return nil
}

// VerifyMixDomains reopens both recoverable domains on a recovered (or
// promoted) engine and runs their structural and scan checks; it is a no-op
// when the crash predates the bootstrap marker.
func VerifyMixDomains(eng *core.Engine) error { return checkMixDomains(eng) }

// ExploreMix runs the crash-schedule exploration with a scenario mix
// driving the B+tree and LSM domains.  mixName is a built-in mix name or a
// custom spec (see workload.ParseMix).
func ExploreMix(cfg NamedConfig, mixName string, stride int) (*ExploreReport, error) {
	mix, err := workload.ParseMix(mixName)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errHarness, err)
	}
	return exploreWith(cfg, stride, nil, mixName, mixExploreScript(mix), checkMixDomains)
}

// ReplayMixSchedule re-runs one mix crash schedule from its repro token.
func ReplayMixSchedule(configName, mixName, token string) error {
	cfg, ok := LookupConfig(configName)
	if !ok {
		return fmt.Errorf("sim: unknown explorer config %q", configName)
	}
	mix, err := workload.ParseMix(mixName)
	if err != nil {
		return err
	}
	pts, err := fault.ParseToken(token)
	if err != nil {
		return err
	}
	return runScheduleWith(cfg, fault.NewPlan(pts...), nil, mixExploreScript(mix), checkMixDomains)
}

// ExploreShipMix runs the ship-schedule exploration with a scenario mix
// driving the primary's domains.  The promoted standby gets the same
// domain-level checks as the crash explorer.
func ExploreShipMix(cfg NamedConfig, mixName string, stride int) (*ShipExploreReport, error) {
	mix, err := workload.ParseMix(mixName)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errHarness, err)
	}
	return exploreShipWith(withDomainRegistry(cfg), stride, mixName, mixExploreScript(mix), checkMixDomains)
}

// ReplayShipMixSchedule re-runs one mix ship schedule from its repro text.
func ReplayShipMixSchedule(configName, mixName, schedule string) error {
	cfg, ok := LookupConfig(configName)
	if !ok {
		return fmt.Errorf("sim: unknown explorer config %q", configName)
	}
	mix, err := workload.ParseMix(mixName)
	if err != nil {
		return err
	}
	sched, err := parseShipSchedule(schedule)
	if err != nil {
		return err
	}
	_, err = runShipScheduleWith(withDomainRegistry(cfg), sched, mixExploreScript(mix), checkMixDomains)
	return err
}
