// Crash-schedule exploration: run one deterministic scripted workload to
// count its I/O boundaries, then re-run it once per boundary with a fault
// injected exactly there — a hard crash, a torn or bit-flipped append, a
// reordered batch write, a transient EIO — recover, and check the recovered
// state against the re-execution oracle and (where anchored) the paper's
// explainable-state predicate.  Every failure carries a replayable repro
// token (see fault.Plan).
package sim

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"logicallog/internal/cache"
	"logicallog/internal/core"
	"logicallog/internal/fault"
	"logicallog/internal/forensics"
	"logicallog/internal/installgraph"
	"logicallog/internal/obs/flight"
	"logicallog/internal/op"
	"logicallog/internal/recovery"
	"logicallog/internal/stable"
	"logicallog/internal/wal"
	"logicallog/internal/writegraph"
)

// NamedConfig pairs an engine configuration with a stable name usable in
// repro tokens and -fault.config flags.
type NamedConfig struct {
	Name string
	Opts core.Options
}

// ExplorerConfigs returns the six configurations the crash-schedule
// explorer covers: the paper's recommended setup, the classic-W baseline,
// the flush-transaction strategy, installation logging disabled, the
// physiological logging baseline, and the recommended setup on the
// multi-stream commit fast lane with absorption (whose merge boundaries the
// walstream channel faults).
func ExplorerConfigs() []NamedConfig {
	streamed := core.DefaultOptions()
	streamed.LogStreams = 4
	streamed.AbsorbWrites = true
	return []NamedConfig{
		{"rW-identity-rSI", core.DefaultOptions()},
		{"W-shadow-vSI", core.Options{
			Policy: writegraph.PolicyW, Strategy: cache.StrategyShadow,
			RedoTest: recovery.TestVSI, LogInstalls: true,
		}},
		{"rW-flushtxn-vSI", core.Options{
			Policy: writegraph.PolicyRW, Strategy: cache.StrategyFlushTxn,
			RedoTest: recovery.TestVSI, LogInstalls: true,
		}},
		{"rW-identity-rSI-noinstalls", core.Options{
			Policy: writegraph.PolicyRW, Strategy: cache.StrategyIdentityWrite,
			RedoTest: recovery.TestRSI, LogInstalls: false,
		}},
		{"physio-vSI", core.Options{
			Policy: writegraph.PolicyRW, Strategy: cache.StrategyIdentityWrite,
			RedoTest: recovery.TestVSI, LogInstalls: true, Physiological: true,
		}},
		{"rW-identity-rSI-streams4", streamed},
	}
}

// LookupConfig resolves an explorer configuration by name.
func LookupConfig(name string) (NamedConfig, bool) {
	for _, c := range ExplorerConfigs() {
		if c.Name == name {
			return c, true
		}
	}
	return NamedConfig{}, false
}

// RogueHook lets a test inject behavior into the scripted workload at a
// given step — the explorer self-test uses it to plant a deliberately buggy
// flush the explorer must catch.  A nil hook is a no-op.
type RogueHook func(step int, eng *core.Engine) error

// ScheduleFailure is one failed crash schedule.  Mix is empty for the
// default scripted workload; otherwise it names the scenario mix that drove
// the run.
type ScheduleFailure struct {
	Config string
	Mix    string
	Token  string
	Err    error
}

// Repro returns a shell command replaying exactly this schedule.
func (f ScheduleFailure) Repro() string {
	if f.Mix != "" {
		return fmt.Sprintf("go test ./internal/sim -run TestCrashScheduleReplay -fault.config %q -fault.mix %q -fault.token %q", f.Config, f.Mix, f.Token)
	}
	return fmt.Sprintf("go test ./internal/sim -run TestCrashScheduleReplay -fault.config %q -fault.token %q", f.Config, f.Token)
}

func (f ScheduleFailure) String() string {
	name := f.Config
	if f.Mix != "" {
		name += "/" + f.Mix
	}
	return fmt.Sprintf("[%s @ %s] %v\n    repro: %s", name, f.Token, f.Err, f.Repro())
}

// ExploreReport summarizes one configuration's exploration.
type ExploreReport struct {
	Config string
	// WALBoundaries, StableBoundaries, and StreamBoundaries count the I/O
	// boundaries of the fault-free scripted run (the boundary after I/O k is
	// fault index k).  StreamBoundaries counts stream-merge instants — the
	// staged-but-unwritten commit batches the walstream channel can crash.
	WALBoundaries, StableBoundaries, StreamBoundaries int
	// Schedules counts fault schedules executed (the fault-free counting
	// run included).
	Schedules int
	Failures  []ScheduleFailure
}

// errHarness marks explorer-infrastructure failures (the script died for a
// reason other than its injected fault), as opposed to recovery bugs.
var errHarness = errors.New("sim: explorer harness failure")

// Explore runs the full crash-schedule exploration for one configuration:
// a fault-free counting run, then one schedule per I/O boundary and fault
// variant, stepping boundaries by stride (1 = exhaustive).  Schedule
// failures are collected, not fatal; only a broken harness returns an error.
func Explore(cfg NamedConfig, stride int, rogue RogueHook) (*ExploreReport, error) {
	return exploreWith(cfg, stride, rogue, "", runExploreScript, nil)
}

// exploreWith is the exploration loop shared by the default script and the
// scenario-mix sweeps; mix names the scenario for failure repro lines ("" =
// default script) and post runs extra domain-level checks after recovery.
func exploreWith(cfg NamedConfig, stride int, rogue RogueHook, mix string, script exploreScript, post func(*core.Engine) error) (*ExploreReport, error) {
	if stride < 1 {
		stride = 1
	}
	rep := &ExploreReport{Config: cfg.Name}

	// Counting run: no faults, full verification.  Its I/O counts define
	// the boundary space the variants below enumerate.
	counting := fault.NewPlan()
	err := runScheduleWith(cfg, counting, rogue, script, post)
	rep.Schedules++
	if errors.Is(err, errHarness) {
		return nil, err
	}
	if err != nil {
		rep.Failures = append(rep.Failures, ScheduleFailure{cfg.Name, mix, counting.Token(), err})
	}
	rep.WALBoundaries = counting.Count(fault.ChanWAL)
	rep.StableBoundaries = counting.Count(fault.ChanStable)
	rep.StreamBoundaries = counting.Count(fault.ChanWALStream)

	run := func(pt fault.Point) {
		plan := fault.NewPlan(pt)
		rep.Schedules++
		if err := runScheduleWith(cfg, plan, rogue, script, post); err != nil {
			rep.Failures = append(rep.Failures, ScheduleFailure{cfg.Name, mix, plan.Token(), err})
		}
	}
	for b := 0; b < rep.WALBoundaries; b += stride {
		run(fault.Point{Chan: fault.ChanWAL, Index: b, Kind: fault.KindCrash})
		// Torn tail: a short prefix of the append lands, and separately
		// the whole append lands but the ack is lost.
		run(fault.Point{Chan: fault.ChanWAL, Index: b, Kind: fault.KindTorn, Arg: 3})
		run(fault.Point{Chan: fault.ChanWAL, Index: b, Kind: fault.KindTorn, Arg: 1 << 20})
		run(fault.Point{Chan: fault.ChanWAL, Index: b, Kind: fault.KindBitFlip, Arg: 13*b + 7})
		run(fault.Point{Chan: fault.ChanWAL, Index: b, Kind: fault.KindReorder, Arg: b})
		run(fault.Point{Chan: fault.ChanWAL, Index: b, Kind: fault.KindTransient, Arg: 1})
	}
	for b := 0; b < rep.StableBoundaries; b += stride {
		run(fault.Point{Chan: fault.ChanStable, Index: b, Kind: fault.KindCrash})
		run(fault.Point{Chan: fault.ChanStable, Index: b, Kind: fault.KindTransient, Arg: 2})
	}
	// Stream-merge boundaries: the leader has staged a merged batch that the
	// device never saw.  Crashing there must lose exactly that batch and
	// nothing durable — the schedule-equivalence proof for merged order.
	for b := 0; b < rep.StreamBoundaries; b += stride {
		run(fault.Point{Chan: fault.ChanWALStream, Index: b, Kind: fault.KindCrash})
	}
	return rep, nil
}

// ReplaySchedule re-runs one schedule from its repro token.
func ReplaySchedule(configName, token string) error {
	cfg, ok := LookupConfig(configName)
	if !ok {
		return fmt.Errorf("sim: unknown explorer config %q", configName)
	}
	pts, err := fault.ParseToken(token)
	if err != nil {
		return err
	}
	return runSchedule(cfg, fault.NewPlan(pts...), nil)
}

// runRecorder observes the scripted run: the initial stable snapshot that
// anchors the explainability check, and the cumulative installed-LSN sets
// traced from the cache manager (the natural explanation candidates).
type runRecorder struct {
	frozen    bool
	initial   map[op.ObjectID][]byte
	installed []op.SI // all LSNs installed so far, in trace order
	marks     []int   // len(installed) after each install event
}

func (r *runRecorder) trace(view *writegraph.NodeView) {
	if r.frozen {
		return
	}
	for _, o := range view.Ops {
		r.installed = append(r.installed, o.LSN)
	}
	r.marks = append(r.marks, len(r.installed))
}

// exploreScript is the workload a schedule runs before the crash.  The
// default is runExploreScript; the scenario-mix sweeps substitute a script
// that drives the B+tree and LSM domains (see explore_mix.go).
type exploreScript func(eng *core.Engine, rec *runRecorder, rogue RogueHook) error

// runSchedule executes the scripted workload under plan, crashes, heals the
// plan, recovers, and verifies oracle equivalence plus (when the run got far
// enough to anchor it) stable-state explainability.
func runSchedule(cfg NamedConfig, plan *fault.Plan, rogue RogueHook) error {
	return runScheduleWith(cfg, plan, rogue, runExploreScript, nil)
}

// runScheduleWith is runSchedule parameterized by the pre-crash script and
// an optional post-recovery domain check (run after oracle verification, so
// a domain-level failure always implicates the domain, not the engine).
func runScheduleWith(cfg NamedConfig, plan *fault.Plan, rogue RogueHook, script exploreScript, post func(*core.Engine) error) error {
	fl := flight.NewRecorder(1 << 10)
	err := runScheduleFlight(cfg, plan, rogue, script, post, fl)
	if err != nil && !errors.Is(err, errHarness) {
		err = attachForensics(err, fl, plan.Token())
	}
	return err
}

// attachForensics appends a compact flight dump to a schedule failure so the
// repro output carries the decision chain that led to the bad state.  When
// LL_FORENSICS_DIR is set (the CI sweeps set it), the full dump is also
// written to a file named after the repro token for artifact upload.
func attachForensics(err error, fl *flight.Recorder, token string) error {
	events := fl.Events()
	if dir := os.Getenv("LL_FORENSICS_DIR"); dir != "" {
		name := sanitizeToken(token) + ".flight.txt"
		if mkErr := os.MkdirAll(dir, 0o755); mkErr == nil {
			_ = os.WriteFile(filepath.Join(dir, name), []byte(forensics.Dump(events, 0)), 0o644)
		}
	}
	return fmt.Errorf("%w\n%s", err, forensics.Dump(events, 24))
}

// sanitizeToken maps a fault token to a safe file name.
func sanitizeToken(token string) string {
	if token == "" {
		return "fault-free"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, token)
}

func runScheduleFlight(cfg NamedConfig, plan *fault.Plan, rogue RogueHook, script exploreScript, post func(*core.Engine) error, fl *flight.Recorder) error {
	opts := cfg.Opts
	opts.LogDevice = plan.WrapDevice(wal.NewMemDevice())
	opts.Flight = fl
	// Deterministic per-schedule worker count: vary parallel redo across
	// the schedule space without a nondeterministic seed.
	opts.RedoWorkers = 1 + len(plan.Token())%4
	rec := &runRecorder{}
	opts.InstallTrace = rec.trace
	eng, err := core.New(opts)
	if err != nil {
		return fmt.Errorf("%w: %v", errHarness, err)
	}
	eng.Store().SetWriteProbe(plan.StableProbe())
	eng.Log().SetMergeProbe(plan.MergeProbe())

	scriptErr := script(eng, rec, rogue)
	rec.frozen = true
	// Transient EIOs are normally absorbed by the retry loops, but a script
	// path without one (e.g. a rogue hook's raw store write) may surface the
	// fault itself — that is still the injected fault, not a harness bug.
	if scriptErr != nil && !errors.Is(scriptErr, fault.ErrInjected) && !wal.IsTransient(scriptErr) {
		return fmt.Errorf("%w: script died without an injected fault: %v", errHarness, scriptErr)
	}
	if scriptErr == nil {
		if un := plan.Unfired(); len(un) > 0 {
			return fmt.Errorf("%w: script completed but points never fired: %v", errHarness, un)
		}
	}

	eng.Crash()
	plan.Heal()
	if _, err := eng.Recover(); err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	// The durable horizon is re-derived by recovery (a torn or reordered
	// final append trims the log below the pre-crash acked horizon).
	horizon := eng.Log().StableLSN()
	if err := VerifyAgainstOracle(eng, horizon); err != nil {
		return err
	}
	if rec.initial != nil {
		if err := checkExplainableState(eng, rec, fl); err != nil {
			return err
		}
	}
	if post != nil {
		if err := post(eng); err != nil {
			return err
		}
	}
	if err := eng.FlushAll(); err != nil {
		return fmt.Errorf("post-recovery flush: %w", err)
	}
	return VerifyAgainstOracle(eng, horizon)
}

// Scripted workload parameters.  The script is fully deterministic: the
// same engine configuration always issues the same I/O sequence, so a fault
// index from the counting run lands on the same I/O in every variant.
const (
	exploreObjects = 8
	exploreSteps   = 200
	exploreSeed    = 0x10fa117
)

// runExploreScript drives the deterministic mixed workload: create and
// flush a base population, truncate it off the log (anchoring the
// explainability check), then interleave logical/physiological/physical
// operations with forces, minimal installs, non-truncating checkpoints,
// deletes, and re-creates.
func runExploreScript(eng *core.Engine, rec *runRecorder, rogue RogueHook) error {
	rng := rand.New(rand.NewSource(exploreSeed))
	objects := make([]op.ObjectID, exploreObjects)
	for i := range objects {
		objects[i] = op.ObjectID(fmt.Sprintf("x%d", i))
	}
	live := make([]bool, exploreObjects)

	// Phase 0: base population, flushed and truncated off the log so the
	// initial values exist only in the stable database (with the blind
	// creations still on the log, I = {} would explain any state).
	for i, x := range objects {
		v := make([]byte, 8)
		rng.Read(v)
		if err := eng.Execute(op.NewCreate(x, v)); err != nil {
			return fmt.Errorf("create %s: %w", x, err)
		}
		live[i] = true
	}
	if err := eng.FlushAll(); err != nil {
		return fmt.Errorf("base flush: %w", err)
	}
	if err := eng.Checkpoint(); err != nil {
		return fmt.Errorf("base checkpoint: %w", err)
	}
	initial := make(map[op.ObjectID][]byte, exploreObjects)
	for id, v := range eng.Store().Snapshot() {
		initial[id] = append([]byte(nil), v.Val...)
	}
	rec.initial = initial

	for step := 0; step < exploreSteps; step++ {
		if rogue != nil {
			if err := rogue(step, eng); err != nil {
				return fmt.Errorf("rogue hook at step %d: %w", step, err)
			}
		}
		if step%3 == 1 {
			if err := eng.Log().Force(); err != nil {
				return fmt.Errorf("force at step %d: %w", step, err)
			}
		}
		if step%4 == 2 {
			if err := eng.InstallOne(); err != nil {
				return fmt.Errorf("install at step %d: %w", step, err)
			}
		}
		if step%29 == 17 {
			if err := eng.CheckpointOnly(); err != nil {
				return fmt.Errorf("checkpoint at step %d: %w", step, err)
			}
		}
		if step%43 == 37 {
			// A full purge drives multi-object stable batches through
			// whichever flush strategy the configuration uses.
			if err := eng.FlushAll(); err != nil {
				return fmt.Errorf("purge at step %d: %w", step, err)
			}
		}
		o := lifecycleOp(rng, objects, live, step)
		if o == nil {
			o = exploreOp(rng, objects, live, step)
		}
		if o == nil {
			continue
		}
		if err := eng.Execute(o); err != nil {
			return fmt.Errorf("execute %s at step %d: %w", o, step, err)
		}
		for _, w := range o.WriteSet {
			for i, x := range objects {
				if x == w {
					live[i] = o.Kind != op.KindDelete
				}
			}
		}
	}
	if err := eng.Log().Force(); err != nil {
		return fmt.Errorf("final force: %w", err)
	}
	return nil
}

// lifecycleOp occasionally deletes or re-creates an object.  x0 and x1 are
// never deleted, so exploreOp always has operands.
func lifecycleOp(rng *rand.Rand, objects []op.ObjectID, live []bool, step int) *op.Operation {
	switch step % 19 {
	case 12:
		liveCount := 0
		for _, l := range live {
			if l {
				liveCount++
			}
		}
		if liveCount <= 4 {
			return nil
		}
		if i := pickIndex(rng, live, true, 2); i >= 0 {
			return op.NewDelete(objects[i])
		}
	case 13:
		if i := pickIndex(rng, live, false, 0); i >= 0 {
			v := make([]byte, 8)
			rng.Read(v)
			return op.NewCreate(objects[i], v)
		}
	}
	return nil
}

// exploreOp builds the step's mutation over live objects, cycling through
// physical writes, physiological self-transforms, and both logical forms.
func exploreOp(rng *rand.Rand, objects []op.ObjectID, live []bool, step int) *op.Operation {
	xi := pickIndex(rng, live, true, 0)
	yi := pickIndex(rng, live, true, 0)
	if xi < 0 || yi < 0 {
		return nil
	}
	x, y := objects[xi], objects[yi]
	switch step % 5 {
	case 0:
		v := make([]byte, 8)
		rng.Read(v)
		return op.NewPhysicalWrite(x, v)
	case 1:
		return op.NewPhysioWrite(x, op.FuncAppend, []byte{byte(step)})
	case 2: // A-form logical: y <- y xor x
		if x == y {
			return op.NewPhysioWrite(x, op.FuncAppend, []byte{1})
		}
		return op.NewLogical(op.FuncXor, op.EncodeParams([]byte(y), []byte(x)),
			[]op.ObjectID{x, y}, []op.ObjectID{y})
	case 3: // B-form logical: x <- copy(y)
		if x == y {
			return op.NewPhysioWrite(x, op.FuncAppend, []byte{2})
		}
		return op.NewLogical(op.FuncCopy, []byte(x), []op.ObjectID{y}, []op.ObjectID{x})
	default:
		v := make([]byte, 4)
		rng.Read(v)
		return op.NewPhysicalWrite(y, v)
	}
}

// pickIndex picks a uniform random object index with liveness == want and
// index >= min, or -1 if none qualifies.
func pickIndex(rng *rand.Rand, live []bool, want bool, min int) int {
	var cand []int
	for i := min; i < len(live); i++ {
		if live[i] == want {
			cand = append(cand, i)
		}
	}
	if len(cand) == 0 {
		return -1
	}
	return cand[rng.Intn(len(cand))]
}

// checkExplainableState checks the paper's Theorem 3 against the recovered
// run: the stable database must be explainable — some prefix set I of the
// durable history's installation graph gives every object exposed by I
// exactly its value after the last operation of I.
//
// Exhaustive prefix-set search is infeasible at this history size, so the
// candidates come from the run itself: the cumulative installed sets traced
// from the cache manager, newest first (the stable state normally *is* the
// latest installed set), each BFS-extended a few installs deep to absorb
// flushes whose trace was lost to the crash (a flush-transaction repaired
// by recovery, a torn batch, a swing racing the fault).
func checkExplainableState(eng *core.Engine, rec *runRecorder, fl *flight.Recorder) error {
	sc, err := eng.Log().Scan(0)
	if err != nil {
		return fmt.Errorf("explainability scan: %w", err)
	}
	var history []*op.Operation
	for {
		r, err := sc.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return fmt.Errorf("explainability scan: %w", err)
		}
		if r.Type == wal.RecOperation {
			history = append(history, r.Op)
		}
	}
	ig, err := installgraph.Build(history)
	if err != nil {
		return fmt.Errorf("explainability graph: %w", err)
	}
	ig.SetFlight(fl)
	inGraph := make(map[op.SI]bool, len(history))
	for _, o := range history {
		inGraph[o.LSN] = true
	}
	snap := eng.Store().Snapshot()
	S := make(map[op.ObjectID][]byte)
	//lint:ignore replaydeterminism map copy; resulting map identical in any order
	for id, v := range snap {
		S[id] = v.Val
	}
	objects := ig.TouchedObjects()

	budget := 500
	explains := func(I installgraph.PrefixSet) (bool, error) {
		if budget <= 0 {
			return false, nil
		}
		budget--
		if !ig.IsPrefixSet(I) {
			return false, nil
		}
		return ig.Explains(eng.Registry(), I, S, rec.initial, objects)
	}

	// Candidate prefix sets: the empty set plus the cumulative installed
	// set after each traced install event, newest first.  LSNs whose log
	// records were lost to the crash cannot appear — installation forces
	// the log first — but a truncating checkpoint is absent here, so the
	// filter is a cheap safety net.
	candidates := []installgraph.PrefixSet{installgraph.NewPrefixSet()}
	for _, mark := range rec.marks {
		I := installgraph.NewPrefixSet()
		for _, lsn := range rec.installed[:mark] {
			if inGraph[lsn] {
				I[lsn] = true
			}
		}
		candidates = append(candidates, I)
	}
	// The stable store stamps every installed page with the lSI of the last
	// operation whose effect it carries, so the stamps themselves name a
	// candidate: every operation whose writeset is fully covered by the
	// stamps, closed downward under installation edges.  For a correctly
	// ordered run this is the explanation outright — crucial for domain
	// workloads, where one flush transaction installs more pages than the
	// BFS around a traced mark could ever bridge.  For a run that violated
	// flush order the stamps are incoherent and the closure fails Explains,
	// so the rogue self-tests still catch their planted bugs.  Appended
	// last: the search below walks candidates newest-first.
	candidates = append(candidates, stampCandidate(ig, history, snap))
	for i := len(candidates) - 1; i >= 0 && budget > 0; i-- {
		base := candidates[i]
		ok, err := explains(base)
		if err != nil {
			return fmt.Errorf("explainability check: %w", err)
		}
		if ok {
			return nil
		}
		if ok, err := extendExplains(ig, explains, base, 6, &budget); err != nil {
			return fmt.Errorf("explainability check: %w", err)
		} else if ok {
			return nil
		}
	}
	// An exhausted budget proves nothing: the identity-write strategy
	// installs the objects of a multi-page operation (a B+tree split, an LSM
	// compaction) separately, and a state cut between those installs has no
	// explanation at this graph's whole-operation granularity even though
	// recovery handles it exactly (the identity-write records refine the
	// graph per object; the oracle check above is the correctness net).
	// Only a completed search that found no explanation is a violation.
	if budget <= 0 {
		return nil
	}
	return fmt.Errorf("sim: stable state is not explainable by any traced prefix set (history %d ops, %d install events, budget left %d)",
		len(history), len(rec.marks), budget)
}

// stampCandidate derives a candidate prefix set from the stable store's
// version stamps: an operation is included when every object it writes
// carries a stamp at or beyond the operation's LSN (a later stamp means a
// later installed writer superseded it, which installation order permits),
// and the set is then closed downward under installation edges so
// IsPrefixSet holds by construction whenever the graph is acyclic along
// the added paths.  Deleted objects carry no stamp, so their deleters are
// left out; the BFS extension absorbs that slack.
func stampCandidate(ig *installgraph.Graph, history []*op.Operation, snap map[op.ObjectID]stable.Versioned) installgraph.PrefixSet {
	I := installgraph.NewPrefixSet()
	for _, o := range history {
		covered := true
		for _, x := range o.WriteSet {
			if v, ok := snap[x]; !ok || v.VSI < o.LSN {
				covered = false
				break
			}
		}
		if covered {
			I[o.LSN] = true
		}
	}
	queue := I.Sorted()
	for len(queue) > 0 {
		l := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, p := range ig.Predecessors(l) {
			if !I[p] {
				I[p] = true
				queue = append(queue, p)
			}
		}
	}
	return I
}

// extendExplains breadth-first extends base by up to depth minimal
// uninstalled operations, testing each extension.
func extendExplains(ig *installgraph.Graph, explains func(installgraph.PrefixSet) (bool, error), base installgraph.PrefixSet, depth int, budget *int) (bool, error) {
	frontier := []installgraph.PrefixSet{base}
	seen := map[string]bool{prefixKey(base): true}
	for d := 0; d < depth && len(frontier) > 0 && *budget > 0; d++ {
		var next []installgraph.PrefixSet
		for _, I := range frontier {
			for _, m := range ig.MinimalUninstalled(I) {
				J := ig.Extend(I, m)
				k := prefixKey(J)
				if seen[k] {
					continue
				}
				seen[k] = true
				ok, err := explains(J)
				if err != nil {
					return false, err
				}
				if ok {
					return true, nil
				}
				if *budget <= 0 {
					return false, nil
				}
				next = append(next, J)
			}
		}
		frontier = next
	}
	return false, nil
}

func prefixKey(I installgraph.PrefixSet) string {
	lsns := I.Sorted()
	b := make([]byte, 0, len(lsns)*3)
	for _, l := range lsns {
		b = append(b, fmt.Sprintf("%d,", l)...)
	}
	return string(b)
}
